package clite_test

import (
	"bytes"
	"testing"

	"clite"
	"clite/internal/benchmarks"
)

// telemetryMix builds the quickstart machine for the determinism and
// overhead checks.
func telemetryMix(t *testing.T, seed int64) *clite.Machine {
	t.Helper()
	m := clite.NewMachine(seed)
	if _, err := m.AddLC("memcached", 0.3); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddLC("img-dnn", 0.2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddBG("streamcluster"); err != nil {
		t.Fatal(err)
	}
	return m
}

type tracedRun struct {
	key     string
	score   float64
	samples int
	jsonl   string
}

func runTraced(t *testing.T, seed int64, traced bool) tracedRun {
	t.Helper()
	m := telemetryMix(t, seed)
	opts := clite.Options{BO: clite.BOOptions{Seed: seed, MaxIterations: 6}}
	var tr *clite.Tracer
	if traced {
		tr = clite.NewTracer()
		opts = clite.WithTelemetry(opts, tr, clite.NewMetrics())
	}
	res, err := clite.NewController(m, opts).Run()
	if err != nil {
		t.Fatal(err)
	}
	out := tracedRun{key: res.Best.Key(), score: res.BestScore, samples: res.SamplesUsed}
	if traced {
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		out.jsonl = buf.String()
	}
	return out
}

// TestTracedRunsAreByteIdentical pins the telemetry determinism rule:
// repeated seeded runs produce the same partition, the same score, and
// the same JSONL event stream byte for byte — trace events carry only
// monotonic steps and simulated time, never wall-clock.
func TestTracedRunsAreByteIdentical(t *testing.T) {
	a := runTraced(t, 7, true)
	b := runTraced(t, 7, true)
	if a != b {
		t.Errorf("traced runs diverged:\n  first:  key=%s score=%v samples=%d\n  second: key=%s score=%v samples=%d",
			a.key, a.score, a.samples, b.key, b.score, b.samples)
		if a.jsonl != b.jsonl {
			t.Errorf("JSONL streams differ:\n--- first ---\n%s\n--- second ---\n%s", a.jsonl, b.jsonl)
		}
	}
	if a.jsonl == "" {
		t.Fatal("traced run emitted no events")
	}
}

// TestTracingDoesNotPerturbResults pins the other half of the
// contract: attaching telemetry must not change what the controller
// computes. Tracing on and off yield the same partition, score, and
// sample count.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	off := runTraced(t, 7, false)
	on := runTraced(t, 7, true)
	if off.key != on.key || off.score != on.score || off.samples != on.samples {
		t.Errorf("tracing perturbed the run:\n  off: key=%s score=%v samples=%d\n  on:  key=%s score=%v samples=%d",
			off.key, off.score, off.samples, on.key, on.score, on.samples)
	}
}

// TestTelemetryDisabledAddsNoAllocs verifies the disabled path is
// literally free at the controller level: a run with explicitly-nil
// telemetry sinks attached allocates exactly as much as a run that
// never heard of telemetry, because every instrumented site hits a
// nil-receiver guard.
func TestTelemetryDisabledAddsNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-runtime allocation noise breaks exact-count comparison")
	}
	run := func(attachNil bool) float64 {
		return testing.AllocsPerRun(2, func() {
			m := clite.NewMachine(7)
			if _, err := m.AddLC("memcached", 0.2); err != nil {
				panic(err)
			}
			if _, err := m.AddBG("swaptions"); err != nil {
				panic(err)
			}
			opts := clite.Options{BO: clite.BOOptions{Seed: 7, MaxIterations: 2, Workers: 1}}
			if attachNil {
				opts = clite.WithTelemetry(opts, nil, nil)
			}
			if _, err := clite.NewController(m, opts).Run(); err != nil {
				panic(err)
			}
		})
	}
	// Both configurations execute the identical code path, so a
	// transient mismatch is measurement noise (GC timing); re-measure
	// before declaring it a leak.
	for attempt := 0; attempt < 3; attempt++ {
		if run(false) == run(true) {
			return
		}
	}
	t.Errorf("nil telemetry sinks changed the allocation count: plain=%v nil-attached=%v", run(false), run(true))
}

// TestTelemetryOverhead is the tier-1 overhead smoke check: CLITERun
// with tracing and metrics enabled must land within 5% of the disabled
// run. The benchmark driver is stable enough at quick sizes, but wall
// time is wall time, so the check retries before declaring a
// regression.
func TestTelemetryOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead measurement skipped in -short mode")
	}
	const tolerance = 0.05
	var offNs, onNs float64
	for attempt := 0; attempt < 3; attempt++ {
		off, on := benchmarks.TelemetryOverhead(true)
		offNs, onNs = off.NsPerOp, on.NsPerOp
		if offNs <= 0 {
			t.Fatalf("bad disabled measurement: %v ns/op", offNs)
		}
		if onNs <= offNs*(1+tolerance) {
			return
		}
	}
	t.Errorf("telemetry overhead above %.0f%%: disabled %.0f ns/op, enabled %.0f ns/op (%+.1f%%)",
		tolerance*100, offNs, onNs, 100*(onNs-offNs)/offNs)
}
