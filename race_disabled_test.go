//go:build !race

package clite_test

const raceEnabled = false
