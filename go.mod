module clite

go 1.22
