package clite_test

import (
	"testing"

	"clite/internal/benchmarks"
)

// TestBenchSmoke runs the quick form of the before/after benchmark
// suite in both modes so the harness behind `make bench` cannot rot:
// every measured path must execute and report sane numbers. Wired into
// `make tier1` via the -short run (and exercised under -race with the
// full suite).
func TestBenchSmoke(t *testing.T) {
	for _, mode := range []struct {
		name string
		cfg  benchmarks.Config
	}{
		{"baseline", benchmarks.Config{Legacy: true, Quick: true}},
		{"after", benchmarks.Config{Quick: true}},
	} {
		results := benchmarks.Run(mode.cfg)
		if len(results) == 0 {
			t.Fatalf("%s: empty suite", mode.name)
		}
		seen := map[string]bool{}
		for _, r := range results {
			if r.Name == "" || seen[r.Name] {
				t.Errorf("%s: bad or duplicate benchmark name %q", mode.name, r.Name)
			}
			seen[r.Name] = true
			if r.NsPerOp <= 0 {
				t.Errorf("%s/%s: non-positive ns/op %v", mode.name, r.Name, r.NsPerOp)
			}
			if r.GoBenchLine() == "" {
				t.Errorf("%s/%s: empty bench line", mode.name, r.Name)
			}
			if r.Name == "FleetPlace" {
				// The fleet bench must log its acceptance metrics: a live
				// throughput figure in both modes, and the shard-scaling
				// measurement only where shards exist (the baseline is the
				// monolithic single-domain fleet).
				if r.Extra["placements_per_sec"] <= 0 {
					t.Errorf("%s/FleetPlace: no throughput recorded: %v", mode.name, r.Extra)
				}
				if r.Extra["placements_per_run"] <= 0 {
					t.Errorf("%s/FleetPlace: no placements recorded: %v", mode.name, r.Extra)
				}
				scaling, logged := r.Extra["shard_scaling"]
				if mode.cfg.Legacy && logged {
					t.Errorf("baseline/FleetPlace reported shard scaling %v for the monolith", scaling)
				}
				if !mode.cfg.Legacy {
					if !logged || scaling <= 0 {
						t.Errorf("after/FleetPlace: no shard-scaling measurement: %v", r.Extra)
					}
					if r.Extra["cells"] <= 1 {
						t.Errorf("after/FleetPlace ran without cell decomposition: %v", r.Extra)
					}
				}
			}
			if r.Name != "ClusterPlace" {
				continue
			}
			// The cluster placement bench must log its work ledger: in
			// after mode the profile cache is live (lookups happen, the
			// repeated mix hits); in baseline mode the cache is pinned
			// off and no hit rate may be reported.
			if r.Extra["placements"] <= 0 {
				t.Errorf("%s/ClusterPlace: no placements recorded: %v", mode.name, r.Extra)
			}
			hitRate, logged := r.Extra["cache_hit_rate"]
			if mode.cfg.Legacy && logged {
				t.Errorf("baseline/ClusterPlace reported a cache hit rate %v with the cache off", hitRate)
			}
			if !mode.cfg.Legacy && (!logged || hitRate <= 0) {
				t.Errorf("after/ClusterPlace: repeated mixes produced no cache hits: %v", r.Extra)
			}
		}
		if !seen["ClusterPlace"] {
			t.Errorf("%s: ClusterPlace missing from the suite", mode.name)
		}
		if !seen["FleetPlace"] {
			t.Errorf("%s: FleetPlace missing from the suite", mode.name)
		}
		if !seen["CLITERun"] {
			t.Errorf("%s: CLITERun missing from the suite", mode.name)
		}
	}
}

// TestBenchSmokeTelemetry runs the quick suite with the telemetry knob
// on and checks the instrumented bench actually recorded a timeline —
// and that the flag is reflected in the result metadata cmd/bench
// serializes, so -compare can refuse to mix instrumented and
// uninstrumented files.
func TestBenchSmokeTelemetry(t *testing.T) {
	for _, r := range benchmarks.Run(benchmarks.Config{Quick: true, Telemetry: true}) {
		if r.Name != "CLITERun" {
			continue
		}
		if r.Extra["telemetry"] != 1 {
			t.Errorf("CLITERun telemetry flag not recorded: %v", r.Extra)
		}
		if r.Extra["trace_events_per_run"] <= 0 {
			t.Errorf("instrumented CLITERun produced no trace events: %v", r.Extra)
		}
		return
	}
	t.Fatal("CLITERun missing from the telemetry suite")
}
