package clite_test

import (
	"testing"

	"clite/internal/benchmarks"
)

// TestBenchSmoke runs the quick form of the before/after benchmark
// suite in both modes so the harness behind `make bench` cannot rot:
// every measured path must execute and report sane numbers. Wired into
// `make tier1` via the -short run (and exercised under -race with the
// full suite).
func TestBenchSmoke(t *testing.T) {
	for _, mode := range []struct {
		name string
		cfg  benchmarks.Config
	}{
		{"baseline", benchmarks.Config{Legacy: true, Quick: true}},
		{"after", benchmarks.Config{Quick: true}},
	} {
		results := benchmarks.Run(mode.cfg)
		if len(results) == 0 {
			t.Fatalf("%s: empty suite", mode.name)
		}
		seen := map[string]bool{}
		for _, r := range results {
			if r.Name == "" || seen[r.Name] {
				t.Errorf("%s: bad or duplicate benchmark name %q", mode.name, r.Name)
			}
			seen[r.Name] = true
			if r.NsPerOp <= 0 {
				t.Errorf("%s/%s: non-positive ns/op %v", mode.name, r.Name, r.NsPerOp)
			}
			if r.GoBenchLine() == "" {
				t.Errorf("%s/%s: empty bench line", mode.name, r.Name)
			}
		}
	}
}
