// Command clited runs the CLITE scheduler as a long-running service: a
// replicated control plane (2+ controller replicas applying the same
// deterministic command log, leader failover on simulated-time lease
// expiry) behind an HTTP/JSON API.
//
// Start a daemon:
//
//	clited -addr :8080 -replicas 3 -nodes 4 -seed 42
//
// and drive it:
//
//	curl -XPOST localhost:8080/v1/place -d '{"workload":"memcached","load":0.3}'
//	curl -XPOST localhost:8080/v1/failnode -d '{"node":0}'
//	curl localhost:8080/v1/status
//	curl localhost:8080/v1/snapshot
//	curl localhost:8080/metrics
//	curl localhost:8080/slo
//	curl localhost:8080/cells
//
// /metrics is the Prometheus text exposition; /slo and /cells are the
// SLO observability plane's live views (deterministic text: error
// budget burn per subject, per-node placement rollups), fed from the
// replica group's tracer tap and per-placement samples stamped with
// the group's simulated clock.
//
// Admin endpoints /v1/kill (kill a controller replica) and /v1/advance
// (advance the simulated clock) exist to exercise failover from the
// outside. Write requests that arrive during an election return 503
// with a Retry-After header and {"retryable":true}; requests after
// quorum loss return 503 with {"retryable":false} — the group is
// read-only until restarted. SIGINT/SIGTERM drains in-flight requests,
// flushes the -trace JSONL timeline, and exits 0.
//
// Client mode issues one request against a running daemon with
// capped-exponential-backoff retry and a wall-clock deadline:
//
//	clited -call place -to http://localhost:8080 -workload memcached -load 0.3
//	clited -call failnode -to http://localhost:8080 -node 0
//	clited -call status -to http://localhost:8080
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"clite"
	"clite/internal/cluster"
	"clite/internal/replica"
	"clite/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "clited:", err)
		os.Exit(1)
	}
}

// deathTimes collects repeated -leader-death-at flags.
type deathTimes []float64

func (d *deathTimes) String() string {
	var s []string
	for _, t := range *d {
		s = append(s, strconv.FormatFloat(t, 'g', -1, 64))
	}
	return strings.Join(s, ",")
}

func (d *deathTimes) Set(v string) error {
	t, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return fmt.Errorf("bad -leader-death-at %q: %w", v, err)
	}
	*d = append(*d, t)
	return nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("clited", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	replicas := fs.Int("replicas", 3, "controller replicas (2..7)")
	nodes := fs.Int("nodes", 4, "cluster nodes behind the scheduler")
	seed := fs.Int64("seed", 1, "deterministic seed shared by every replica")
	lease := fs.Float64("lease", 5, "leader lease in simulated seconds (bounds the failover window)")
	reqInterval := fs.Float64("request-interval", 1, "simulated seconds the clock advances per command")
	screenIters := fs.Int("screen-iters", 0, "BO budget per screening run (0 = default)")
	screenWorkers := fs.Int("screen-workers", 0, "concurrent screening workers per replica (0 = NumCPU)")
	traceOut := fs.String("trace", "", "write the replica-group telemetry timeline as JSONL on shutdown")
	var deaths deathTimes
	fs.Var(&deaths, "leader-death-at", "simulated time at which the current leader dies (repeatable)")
	deathRate := fs.Float64("death-rate", 0, "per-command probability the leader dies after serving")
	rpcLoss := fs.Float64("rpc-loss", 0, "per-request probability a submission is lost in flight")
	rpcDelay := fs.Float64("rpc-delay", 0, "per-request probability a submission is delayed")
	faultSeed := fs.Int64("fault-seed", 0, "control-fault stream seed (defaults to -seed)")

	call := fs.String("call", "", "client mode: place, failnode, status, snapshot")
	to := fs.String("to", "http://localhost:8080", "client mode: daemon base URL")
	workloadF := fs.String("workload", "", "client mode: workload name for -call place")
	load := fs.Float64("load", 0, "client mode: LC load for -call place (0 = background job)")
	node := fs.Int("node", 0, "client mode: node id for -call failnode")
	attempts := fs.Int("attempts", 8, "client mode: max attempts per request")
	timeout := fs.Duration("timeout", 30*time.Second, "client mode: wall-clock deadline across all retries")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *call != "" {
		return clientCall(out, *to, *call, *workloadF, *load, *node, *attempts, *timeout)
	}

	tr := clite.NewTracer()
	reg := clite.NewMetrics()
	store := clite.NewSLOStore(clite.SLOOptions{})
	store.BindRegistry(reg)
	store.RegisterCells(*nodes) // one obs "cell" per cluster node
	tr.SetTap(store.Sink())
	plan := clite.ControlFaultPlan{
		Seed:          *faultSeed,
		LeaderDeathAt: deaths,
		DeathRate:     *deathRate,
		RPCLoss:       *rpcLoss,
		RPCDelay:      *rpcDelay,
	}
	if plan.Seed == 0 {
		plan.Seed = *seed
	}
	g, err := clite.NewReplicaGroup(clite.ReplicaGroupOptions{
		Replicas: *replicas,
		Scheduler: clite.SchedulerOptions{
			Nodes:            *nodes,
			Seed:             *seed,
			ScreenIterations: *screenIters,
			ScreenWorkers:    *screenWorkers,
		},
		Lease:           *lease,
		RequestInterval: *reqInterval,
		Faults:          plan,
		Trace:           tr,
		Metrics:         reg,
	})
	if err != nil {
		return err
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newHandler(g, reg, store),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Fprintf(out, "clited: serving on %s (%d replicas, %d nodes, seed %d, lease %.1fs)\n",
		*addr, *replicas, *nodes, *seed, *lease)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(out, "clited: draining in-flight requests...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if *traceOut != "" {
		if err := writeTrace(tr, *traceOut); err != nil {
			return err
		}
		fmt.Fprintf(out, "clited: wrote %d trace events to %s\n", tr.Len(), *traceOut)
	}
	st := g.Status()
	fmt.Fprintf(out, "clited: shut down cleanly (term %d, %d commands, %d/%d replicas alive)\n",
		st.Term, st.Commands, st.Alive, st.Replicas)
	return nil
}

func writeTrace(tr *clite.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// apiError is the uniform JSON error body. Retryable tells the client
// whether backoff-and-retry can succeed (election pending, RPC lost)
// or the condition is durable (degraded, unplaceable).
type apiError struct {
	Error     string `json:"error"`
	Retryable bool   `json:"retryable"`
}

// placeRequest / placeResponse are the /v1/place wire types.
type placeRequest struct {
	Workload string  `json:"workload"`
	Load     float64 `json:"load"`
}

type placeResponse struct {
	Node    int     `json:"node"`
	Score   float64 `json:"score"`
	Samples int     `json:"samples"`
	QoSMet  bool    `json:"qos_met"`
}

type failNodeRequest struct {
	Node int `json:"node"`
}

type rehomeOutcome struct {
	Workload string  `json:"workload"`
	Load     float64 `json:"load"`
	From     int     `json:"from"`
	Node     int     `json:"node"` // -1 when unrehomed
	Error    string  `json:"error,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeGroupError maps the replica group's typed errors onto HTTP:
// retryable control-plane conditions are 503 with Retry-After,
// durable degradation is 503 without, cluster-level rejection is 409.
func writeGroupError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, clite.ErrUnplaceable):
		writeJSON(w, http.StatusConflict, apiError{Error: "unplaceable: no node can host the job within QoS"})
	case errors.Is(err, clite.ErrNoLeader), errors.Is(err, clite.ErrReplicaRPCLost):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error(), Retryable: true})
	case errors.Is(err, clite.ErrDegraded):
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	}
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

// newHandler wires the replica group behind the HTTP/JSON API. store
// receives one sample per committed placement (and per rehoming
// outcome), stamped with the replica log's simulated clock, so the
// /slo and /cells views track the command stream deterministically.
func newHandler(g *replica.Group, reg *telemetry.Registry, store *clite.SLOStore) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/place", func(w http.ResponseWriter, r *http.Request) {
		var req placeRequest
		if !decode(w, r, &req) {
			return
		}
		p, err := g.Place(cluster.Request{Workload: req.Workload, Load: req.Load})
		if err != nil {
			writeGroupError(w, err)
			return
		}
		viol := 0
		if !p.Result.QoSMeetable {
			viol = 1
		}
		store.ObserveCells(g.Clock(), -1, []clite.CellSample{
			{Cell: p.Node, Placed: 1, Violations: viol},
		})
		writeJSON(w, http.StatusOK, placeResponse{
			Node:    p.Node,
			Score:   p.Result.BestScore,
			Samples: p.Result.SamplesUsed,
			QoSMet:  p.Result.QoSMeetable,
		})
	})
	mux.HandleFunc("POST /v1/failnode", func(w http.ResponseWriter, r *http.Request) {
		var req failNodeRequest
		if !decode(w, r, &req) {
			return
		}
		outcomes, err := g.FailNode(req.Node)
		if err != nil {
			writeGroupError(w, err)
			return
		}
		out := make([]rehomeOutcome, 0, len(outcomes))
		var samples []clite.CellSample
		for _, o := range outcomes {
			ro := rehomeOutcome{Workload: o.Request.Workload, Load: o.Request.Load, From: o.From, Node: o.Node}
			if o.Err != nil {
				ro.Error = o.Err.Error()
				samples = append(samples, clite.CellSample{Cell: o.From, Rejected: 1})
			} else {
				samples = append(samples, clite.CellSample{Cell: o.Node, Placed: 1})
			}
			out = append(out, ro)
		}
		store.ObserveCells(g.Clock(), -1, samples)
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("POST /v1/kill", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Replica int `json:"replica"`
		}
		if !decode(w, r, &req) {
			return
		}
		if err := g.Kill(req.Replica); err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, g.Status())
	})
	mux.HandleFunc("POST /v1/advance", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Seconds float64 `json:"seconds"`
		}
		if !decode(w, r, &req) {
			return
		}
		g.Advance(req.Seconds)
		writeJSON(w, http.StatusOK, g.Status())
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, g.Status())
	})
	mux.HandleFunc("GET /v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, g.Snapshot())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		io.WriteString(w, reg.PrometheusText())
	})
	mux.HandleFunc("GET /slo", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, store.FormatSLO())
	})
	mux.HandleFunc("GET /cells", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, store.FormatCells())
	})
	return mux
}

// clientCall issues one request against a running daemon with
// capped-exponential-backoff retry (the same schedule the in-process
// replica client uses, in wall time) and a hard deadline across all
// attempts.
func clientCall(out io.Writer, base, call, workload string, load float64, node, attempts int, deadline time.Duration) error {
	var method, path string
	var body any
	switch call {
	case "place":
		if workload == "" {
			return fmt.Errorf("-call place needs -workload")
		}
		method, path, body = http.MethodPost, "/v1/place", placeRequest{Workload: workload, Load: load}
	case "failnode":
		method, path, body = http.MethodPost, "/v1/failnode", failNodeRequest{Node: node}
	case "status":
		method, path = http.MethodGet, "/v1/status"
	case "snapshot":
		method, path = http.MethodGet, "/v1/snapshot"
	default:
		return fmt.Errorf("unknown -call %q (want place, failnode, status, snapshot)", call)
	}
	resp, err := callWithRetry(base, method, path, body, attempts, deadline)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, strings.TrimSpace(resp))
	return nil
}

// callWithRetry performs the HTTP request, retrying retryable 503s and
// transport errors with the replica package's backoff schedule until
// the attempt budget or the wall-clock deadline runs out.
func callWithRetry(base, method, path string, body any, attempts int, deadline time.Duration) (string, error) {
	backoff := replica.Backoff{}
	start := time.Now()
	hc := &http.Client{Timeout: 10 * time.Second}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		var rd io.Reader
		if body != nil {
			buf, err := json.Marshal(body)
			if err != nil {
				return "", err
			}
			rd = bytes.NewReader(buf)
		}
		req, err := http.NewRequest(method, base+path, rd)
		if err != nil {
			return "", err
		}
		resp, err := hc.Do(req)
		if err != nil {
			lastErr = err
		} else {
			payload, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			if rerr != nil {
				return "", rerr
			}
			if resp.StatusCode == http.StatusOK {
				return string(payload), nil
			}
			var ae apiError
			retryable := false
			if json.Unmarshal(payload, &ae) == nil {
				retryable = ae.Retryable
			}
			if !retryable {
				return "", fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(payload)))
			}
			lastErr = fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, ae.Error)
		}
		delay := time.Duration(backoff.Delay(attempt) * float64(time.Second))
		if time.Since(start)+delay > deadline {
			break
		}
		time.Sleep(delay)
	}
	return "", fmt.Errorf("gave up after %v: %w", time.Since(start).Round(time.Millisecond), lastErr)
}
