package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"clite"
	"clite/internal/cluster"
	"clite/internal/replica"
)

// testGroup builds a small, fast 3-replica group for handler tests.
func testGroup(t *testing.T, lease float64) (*replica.Group, *clite.MetricsRegistry) {
	t.Helper()
	reg := clite.NewMetrics()
	g, err := clite.NewReplicaGroup(clite.ReplicaGroupOptions{
		Scheduler: clite.SchedulerOptions{
			Nodes:            2,
			Seed:             7,
			ScreenIterations: 12,
			ScreenWorkers:    1,
		},
		Lease:   lease,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, reg
}

// testStore mirrors run()'s observability wiring for handler tests.
func testStore(nodes int, reg *clite.MetricsRegistry) *clite.SLOStore {
	store := clite.NewSLOStore(clite.SLOOptions{})
	store.BindRegistry(reg)
	store.RegisterCells(nodes)
	return store
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestDaemonServesPlacementsAndIntrospection(t *testing.T) {
	g, reg := testGroup(t, 5)
	srv := httptest.NewServer(newHandler(g, reg, testStore(2, reg)))
	defer srv.Close()

	resp := postJSON(t, srv.URL+"/v1/place", placeRequest{Workload: "memcached", Load: 0.2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("place: status %d, want 200", resp.StatusCode)
	}
	placed := decodeBody[placeResponse](t, resp)
	if placed.Node < 0 || placed.Samples <= 0 {
		t.Fatalf("place returned %+v, want a screened node", placed)
	}

	st := decodeBody[replica.Status](t, mustGet(t, srv.URL+"/v1/status"))
	if st.Leader != 0 || st.Term != 1 || st.Commands != 1 || st.Alive != 3 {
		t.Fatalf("status = %+v, want leader 0 term 1 with 1 command", st)
	}

	snap := decodeBody[[]cluster.NodeInfo](t, mustGet(t, srv.URL+"/v1/snapshot"))
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d nodes, want 2", len(snap))
	}
	hosted := 0
	for _, n := range snap {
		hosted += len(n.Jobs)
	}
	if hosted != 1 {
		t.Fatalf("snapshot hosts %d jobs, want 1", hosted)
	}

	metricsResp := mustGet(t, srv.URL+"/metrics")
	defer metricsResp.Body.Close()
	var sb strings.Builder
	if _, err := sb.WriteString(readAll(t, metricsResp)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "replica_commands_total 1") {
		t.Fatalf("metrics exposition missing replica_commands_total:\n%s", sb.String())
	}

	// The SLO plane's live views track the committed placement.
	sloResp := mustGet(t, srv.URL+"/slo")
	sloText := readAll(t, sloResp)
	sloResp.Body.Close()
	if !strings.Contains(sloText, "windows") || !strings.Contains(sloText, "alerts") {
		t.Fatalf("/slo missing the windows subject or alert total:\n%s", sloText)
	}
	cellsResp := mustGet(t, srv.URL+"/cells")
	cellsText := readAll(t, cellsResp)
	cellsResp.Body.Close()
	if !strings.Contains(cellsText, "fleet    placed=1") {
		t.Fatalf("/cells does not account the placement:\n%s", cellsText)
	}

	// Malformed bodies are 400, not 500.
	resp, err := http.Post(srv.URL+"/v1/place", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d, want 400", resp.StatusCode)
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("GET %s: status %d, want 200", url, resp.StatusCode)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestFailoverOverHTTP(t *testing.T) {
	g, reg := testGroup(t, 5)
	srv := httptest.NewServer(newHandler(g, reg, testStore(2, reg)))
	defer srv.Close()

	resp := postJSON(t, srv.URL+"/v1/kill", map[string]int{"replica": 0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("kill: status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	// During the election the daemon answers 503 + retryable so HTTP
	// clients know backing off will succeed.
	resp = postJSON(t, srv.URL+"/v1/place", placeRequest{Workload: "memcached", Load: 0.2})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("place during election: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("election 503 is missing Retry-After")
	}
	ae := decodeBody[apiError](t, resp)
	if !ae.Retryable {
		t.Fatalf("election 503 not marked retryable: %+v", ae)
	}

	// Let the lease expire; the survivors elect and writes resume.
	resp = postJSON(t, srv.URL+"/v1/advance", map[string]float64{"seconds": 10})
	st := decodeBody[replica.Status](t, resp)
	if st.Leader != 1 || st.Term != 2 {
		t.Fatalf("after lease expiry: status %+v, want leader 1 term 2", st)
	}
	resp = postJSON(t, srv.URL+"/v1/place", placeRequest{Workload: "memcached", Load: 0.2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("place after failover: status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestQuorumLossOverHTTP(t *testing.T) {
	g, reg := testGroup(t, 5)
	srv := httptest.NewServer(newHandler(g, reg, testStore(2, reg)))
	defer srv.Close()

	postJSON(t, srv.URL+"/v1/place", placeRequest{Workload: "swaptions"}).Body.Close()
	postJSON(t, srv.URL+"/v1/kill", map[string]int{"replica": 1}).Body.Close()
	postJSON(t, srv.URL+"/v1/kill", map[string]int{"replica": 2}).Body.Close()

	resp := postJSON(t, srv.URL+"/v1/place", placeRequest{Workload: "memcached", Load: 0.2})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded place: status %d, want 503", resp.StatusCode)
	}
	ae := decodeBody[apiError](t, resp)
	if ae.Retryable {
		t.Fatalf("quorum loss must not be retryable: %+v", ae)
	}

	// Reads keep serving from the last committed snapshot.
	snap := decodeBody[[]cluster.NodeInfo](t, mustGet(t, srv.URL+"/v1/snapshot"))
	hosted := 0
	for _, n := range snap {
		hosted += len(n.Jobs)
	}
	if hosted != 1 {
		t.Fatalf("degraded snapshot hosts %d jobs, want the 1 committed before quorum loss", hosted)
	}
	st := decodeBody[replica.Status](t, mustGet(t, srv.URL+"/v1/status"))
	if !st.Degraded {
		t.Fatalf("status = %+v, want Degraded", st)
	}
}

func TestHTTPClientRetriesThroughFailover(t *testing.T) {
	// Short lease so the wall-clock retry loop (attempt → 503 → backoff)
	// carries the group past the election: every attempted submission
	// advances the simulated clock by one request interval.
	g, reg := testGroup(t, 2)
	srv := httptest.NewServer(newHandler(g, reg, testStore(2, reg)))
	defer srv.Close()

	postJSON(t, srv.URL+"/v1/kill", map[string]int{"replica": 0}).Body.Close()

	out, err := callWithRetry(srv.URL, http.MethodPost, "/v1/place",
		placeRequest{Workload: "memcached", Load: 0.2}, 8, 30*time.Second)
	if err != nil {
		t.Fatalf("callWithRetry: %v", err)
	}
	var placed placeResponse
	if err := json.Unmarshal([]byte(out), &placed); err != nil {
		t.Fatal(err)
	}
	if placed.Node < 0 {
		t.Fatalf("retried place landed nowhere: %+v", placed)
	}
	if got := reg.Counter("replica_noleader_rejects_total").Value(); got == 0 {
		t.Error("client never hit the election window; the retry path was not exercised")
	}
}

func TestFailNodeOverHTTP(t *testing.T) {
	g, reg := testGroup(t, 5)
	srv := httptest.NewServer(newHandler(g, reg, testStore(2, reg)))
	defer srv.Close()

	postJSON(t, srv.URL+"/v1/place", placeRequest{Workload: "memcached", Load: 0.2}).Body.Close()
	resp := postJSON(t, srv.URL+"/v1/failnode", failNodeRequest{Node: 0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failnode: status %d, want 200", resp.StatusCode)
	}
	outcomes := decodeBody[[]rehomeOutcome](t, resp)
	snap := decodeBody[[]cluster.NodeInfo](t, mustGet(t, srv.URL+"/v1/snapshot"))
	if !snap[0].Failed {
		t.Fatalf("node 0 not marked failed in snapshot: %+v", snap[0])
	}
	// Whether the job was on node 0 depends on the seed; the endpoint's
	// contract is that every drained job appears in the outcome list.
	for _, o := range outcomes {
		if o.From != 0 {
			t.Fatalf("outcome drained from node %d, want 0: %+v", o.From, o)
		}
	}
}

// TestGracefulShutdown drives the real run() entrypoint: SIGTERM must
// drain the server, flush the trace JSONL, and return nil (exit 0).
func TestGracefulShutdown(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	var mu sync.Mutex
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-screen-iters", "12", "-screen-workers", "1",
			"-trace", tracePath,
		}, lockedWriter{&mu, &out})
	}()

	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		started := strings.Contains(out.String(), "serving on")
		mu.Unlock()
		if started {
			break
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited before signal: %v", err)
		case <-deadline:
			t.Fatal("daemon never reported it was serving")
		case <-time.After(10 * time.Millisecond):
		}
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down within 5s of SIGTERM")
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace JSONL not flushed: %v", err)
	}
	if !strings.Contains(string(data), "leader-elected") {
		t.Fatalf("trace JSONL missing the initial election event:\n%s", data)
	}
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(out.String(), "shut down cleanly") {
		t.Fatalf("missing clean-shutdown report:\n%s", out.String())
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}
