// Command lint is the repo's custom multichecker: it runs the
// internal/analysis suite (detrand, dettaint, maporder, parcapture,
// emitorder, errwrap, telnil, floateq — see DESIGN.md §11, §16) over
// the named package patterns and fails on any unsuppressed finding.
//
// Usage:
//
//	go run ./cmd/lint [flags] <packages>
//
// Findings print one per line as
//
//	file:line: [rule] message
//
// Suppression is site-by-site via a mandatory-reason directive on the
// offending line or the line directly above:
//
//	//lint:allow <rule> <reason>
//
// The closing summary counts suppressions and calls out malformed
// (reason-less) and unused directives; malformed directives fail the
// run exactly like findings. make lint wires this into tier1.
//
// Flags beyond the basics:
//
//	-sarif          emit SARIF 2.1.0 on stdout instead of plain findings
//	-fix            apply the mechanical errwrap rewrites, then re-lint
//	-diff <ref>     lint only packages with files changed since the git
//	                ref (plus untracked); unchanged packages join the
//	                cross-package taint graph through cached facts
//	-cache <dir>    per-package fact cache (content-hash keyed); full
//	                runs warm it, -diff runs read it
//	-suppressions   print the suppression ledger (every allow directive
//	                with its reason) and exit
//	-baseline <f>   enforce the per-rule allow-directive budget in f
//	-write-baseline rewrite the baseline file from the current tree
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"clite/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable driver body: 0 for a clean tree, 1 for
// findings, malformed directives, or a blown baseline budget, 2 for
// usage/load errors.
func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("lint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	var (
		quiet         = flags.Bool("q", false, "suppress the summary line")
		sarifOut      = flags.Bool("sarif", false, "emit SARIF 2.1.0 on stdout")
		fix           = flags.Bool("fix", false, "apply mechanical fixes, then re-lint")
		diffRef       = flags.String("diff", "", "lint only packages changed since this git ref")
		cacheDir      = flags.String("cache", "", "fact cache directory (empty disables caching)")
		ledgerOut     = flags.Bool("suppressions", false, "print the suppression ledger and exit")
		baselineFile  = flags.String("baseline", "", "per-rule suppression budget file to enforce")
		writeBaseline = flags.Bool("write-baseline", false, "rewrite the baseline file from the current tree")
	)
	if err := flags.Parse(args); err != nil {
		return 2
	}
	patterns := flags.Args()
	if len(patterns) == 0 {
		fmt.Fprintln(stderr, "usage: lint [-q] [-sarif] [-fix] [-diff ref] [-cache dir] [-suppressions] [-baseline file [-write-baseline]] <packages>")
		return 2
	}
	if *writeBaseline && *baselineFile == "" {
		fmt.Fprintln(stderr, "lint: -write-baseline requires -baseline")
		return 2
	}

	var cache *analysis.FactCache
	if *cacheDir != "" {
		cache = &analysis.FactCache{Dir: *cacheDir}
	}

	// -diff never type-checks unchanged packages: patterns expand to
	// bare (dir, path) refs first, changed dirs load, the rest join
	// the taint graph as cached facts only.
	var pkgs []*analysis.Package
	var external []*analysis.PackageFact
	loader := analysis.NewLoader()
	if *diffRef != "" {
		refs, err := analysis.ExpandPatterns(patterns)
		if err != nil {
			fmt.Fprintln(stderr, "lint:", err)
			return 2
		}
		changed, err := changedDirs(*diffRef)
		if err != nil {
			fmt.Fprintln(stderr, "lint:", err)
			return 2
		}
		for _, ref := range refs {
			if changed[filepath.Clean(ref.Dir)] {
				pkg, err := loader.Load(ref.Dir, ref.Path)
				if err != nil {
					fmt.Fprintln(stderr, "lint:", err)
					return 2
				}
				if pkg != nil {
					pkgs = append(pkgs, pkg)
				}
				continue
			}
			if cache != nil {
				if hash, err := analysis.HashPackageDir(ref.Dir); err == nil {
					if pf := cache.Load(ref.Path, hash); pf != nil {
						external = append(external, pf)
					}
				}
			}
		}
	} else {
		var err error
		pkgs, err = loader.LoadPatterns(patterns)
		if err != nil {
			fmt.Fprintln(stderr, "lint:", err)
			return 2
		}
	}

	if *fix {
		edits := analysis.FixEdits(pkgs)
		if len(edits) > 0 {
			fixed, err := analysis.ApplyEdits(edits)
			if err != nil {
				fmt.Fprintln(stderr, "lint:", err)
				return 2
			}
			if !*quiet {
				for _, f := range fixed {
					fmt.Fprintln(stderr, "fixed:", f)
				}
			}
			// The fixed sources on disk are the ones to judge.
			pkgs, err = analysis.NewLoader().LoadPatterns(patterns)
			if err != nil {
				fmt.Fprintln(stderr, "lint:", err)
				return 2
			}
		}
	}

	rep, gr := analysis.RunGraph(pkgs, analysis.Rules(), external)
	if *diffRef != "" {
		// Cross-package taint findings landing in UNCHANGED packages:
		// a changed helper can push entropy into a deterministic
		// package this run never loaded.
		loaded := make(map[string]bool, len(pkgs))
		for _, p := range pkgs {
			loaded[p.Path] = true
		}
		rep.Findings = append(rep.Findings, analysis.TaintFindingsOutside(gr.Graph, loaded)...)
		analysis.SortFindings(rep.Findings)
	}
	if cache != nil {
		for _, pf := range gr.Fresh {
			if err := cache.Store(pf); err != nil {
				fmt.Fprintln(stderr, "lint: warning: fact cache:", err)
				break
			}
		}
	}

	if *ledgerOut {
		printLedger(stdout, gr.Ledger)
		return 0
	}
	if *sarifOut {
		if err := writeSARIF(stdout, rep); err != nil {
			fmt.Fprintln(stderr, "lint:", err)
			return 2
		}
	} else {
		for _, f := range rep.Findings {
			fmt.Fprintln(stdout, relativize(f).String())
		}
		for _, f := range rep.BadDirectives {
			fmt.Fprintln(stdout, relativize(f).String())
		}
	}

	failed := rep.Failed()
	if *baselineFile != "" {
		if *writeBaseline {
			if err := writeBudget(*baselineFile, gr.Ledger); err != nil {
				fmt.Fprintln(stderr, "lint:", err)
				return 2
			}
		} else {
			over, err := checkBudget(*baselineFile, gr.Ledger)
			if err != nil {
				fmt.Fprintln(stderr, "lint:", err)
				return 2
			}
			for _, line := range over {
				fmt.Fprintln(stdout, line)
				failed = true
			}
		}
	}

	if !*quiet {
		for _, f := range rep.UnusedDirectives {
			fmt.Fprintln(stderr, "note:", relativize(f).String())
		}
		fmt.Fprintln(stderr, rep.Summary())
	}
	if failed {
		return 1
	}
	return 0
}

// changedDirs asks git for the directories holding .go files changed
// since ref, plus untracked ones — the -diff re-analysis set.
func changedDirs(ref string) (map[string]bool, error) {
	dirs := map[string]bool{}
	for _, argv := range [][]string{
		{"git", "diff", "--name-only", ref, "--", "*.go"},
		{"git", "ls-files", "--others", "--exclude-standard", "--", "*.go"},
	} {
		out, err := exec.Command(argv[0], argv[1:]...).Output()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", strings.Join(argv, " "), err)
		}
		for _, line := range strings.Split(string(out), "\n") {
			if line = strings.TrimSpace(line); line != "" {
				dirs[filepath.Clean(filepath.Dir(line))] = true
			}
		}
	}
	return dirs, nil
}

// printLedger renders the suppression ledger: every allow directive
// with its reason, then per-rule totals.
func printLedger(w io.Writer, ledger []analysis.LedgerEntry) {
	counts := map[string]int{}
	for _, e := range ledger {
		fmt.Fprintf(w, "%s:%d: [%s] %s\n", relPath(e.Pos.Filename), e.Pos.Line, e.Rule, e.Reason)
		counts[e.Rule]++
	}
	rules := make([]string, 0, len(counts))
	for r := range counts {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	for _, r := range rules {
		fmt.Fprintf(w, "total %s %d\n", r, counts[r])
	}
}

// checkBudget compares the ledger's per-rule directive counts against
// the checked-in budget, returning one failure line per rule over
// budget. Rules absent from the baseline have budget zero, so a new
// rule cannot silently accrete allows.
func checkBudget(file string, ledger []analysis.LedgerEntry) ([]string, error) {
	budget, err := readBudget(file)
	if err != nil {
		return nil, err
	}
	counts := map[string]int{}
	for _, e := range ledger {
		counts[e.Rule]++
	}
	rules := make([]string, 0, len(counts))
	for r := range counts {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	var over []string
	for _, r := range rules {
		if counts[r] > budget[r] {
			over = append(over, fmt.Sprintf("%s: [budget] %d %s allows in tree, budget is %d; remove one or justify raising %s",
				file, counts[r], r, budget[r], file))
		}
	}
	return over, nil
}

// readBudget parses "rule count" lines; # comments and blanks skip.
func readBudget(file string) (map[string]int, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	budget := map[string]int{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var rule string
		var n int
		if _, err := fmt.Sscanf(line, "%s %d", &rule, &n); err != nil {
			return nil, fmt.Errorf("%s:%d: want \"rule count\", got %q", file, i+1, line)
		}
		budget[rule] = n
	}
	return budget, nil
}

// writeBudget rewrites the baseline from the current ledger.
func writeBudget(file string, ledger []analysis.LedgerEntry) error {
	counts := map[string]int{}
	for _, e := range ledger {
		counts[e.Rule]++
	}
	rules := make([]string, 0, len(counts))
	for r := range counts {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	var b strings.Builder
	b.WriteString("# lint.baseline — per-rule budget of //lint:allow directives.\n")
	b.WriteString("# make lint fails when a rule's allow count in the tree exceeds its\n")
	b.WriteString("# budget; shrinking is always free. Regenerate deliberately with\n")
	b.WriteString("#   go run ./cmd/lint -baseline lint.baseline -write-baseline ./...\n")
	for _, r := range rules {
		fmt.Fprintf(&b, "%s %d\n", r, counts[r])
	}
	return os.WriteFile(file, []byte(b.String()), 0o644)
}

// relativize rewrites the finding's filename relative to the working
// directory so output is stable and clickable regardless of how the
// pattern was spelled.
func relativize(f analysis.Finding) analysis.Finding {
	f.Pos.Filename = relPath(f.Pos.Filename)
	return f
}

func relPath(name string) string {
	wd, err := os.Getwd()
	if err != nil {
		return name
	}
	abs, err := filepath.Abs(name)
	if err != nil {
		return name
	}
	if rel, err := filepath.Rel(wd, abs); err == nil && !filepath.IsAbs(rel) {
		return rel
	}
	return name
}
