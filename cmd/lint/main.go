// Command lint is the repo's custom multichecker: it runs the
// internal/analysis suite (detrand, maporder, errwrap, telnil,
// floateq — see DESIGN.md §11) over the named package patterns and
// fails on any unsuppressed finding.
//
// Usage:
//
//	go run ./cmd/lint ./...
//
// Findings print one per line as
//
//	file:line: [rule] message
//
// Suppression is site-by-site via a mandatory-reason directive on the
// offending line or the line directly above:
//
//	//lint:allow <rule> <reason>
//
// The closing summary counts suppressions and calls out malformed
// (reason-less) and unused directives; malformed directives fail the
// run exactly like findings. make lint wires this into tier1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"clite/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable driver body: 0 for a clean tree, 1 for
// findings or malformed directives, 2 for usage/load errors.
func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("lint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	quiet := flags.Bool("q", false, "suppress the summary line")
	if err := flags.Parse(args); err != nil {
		return 2
	}
	patterns := flags.Args()
	if len(patterns) == 0 {
		fmt.Fprintln(stderr, "usage: lint [-q] <packages>   (e.g. lint ./...)")
		return 2
	}
	pkgs, err := analysis.NewLoader().LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "lint:", err)
		return 2
	}
	rep := analysis.Run(pkgs, analysis.Rules())
	for _, f := range rep.Findings {
		fmt.Fprintln(stdout, relativize(f).String())
	}
	for _, f := range rep.BadDirectives {
		fmt.Fprintln(stdout, relativize(f).String())
	}
	if !*quiet {
		for _, f := range rep.UnusedDirectives {
			fmt.Fprintln(stderr, "note:", relativize(f).String())
		}
		fmt.Fprintln(stderr, rep.Summary())
	}
	if rep.Failed() {
		return 1
	}
	return 0
}

// relativize rewrites the finding's filename relative to the working
// directory so output is stable and clickable regardless of how the
// pattern was spelled.
func relativize(f analysis.Finding) analysis.Finding {
	wd, err := os.Getwd()
	if err != nil {
		return f
	}
	abs, err := filepath.Abs(f.Pos.Filename)
	if err != nil {
		return f
	}
	if rel, err := filepath.Rel(wd, abs); err == nil && !filepath.IsAbs(rel) {
		f.Pos.Filename = rel
	}
	return f
}
