package main

import (
	"strings"
	"testing"
)

const fixtures = "../../internal/analysis/testdata/..."

// TestFixtureTreeFails drives the whole binary body over the fixture
// trees: exit 1, every known violation printed in file:line: [rule]
// form, and the summary accounting for suppressions, the malformed
// directive, and the stale allow.
func TestFixtureTreeFails(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{fixtures}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code over fixtures: got %d, want 1\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"detrand/detrand.go:13: [detrand] wall-clock read time.Now",
		"detrand/detrand.go:20: [detrand] wall-clock read time.Since",
		"detrand/detrand.go:25: [detrand] global math/rand function rand.Intn",
		"detrand/detrand.go:26: [detrand] ad-hoc generator rand.New",
		"maporder/maporder.go:16: [maporder] append to keys inside map iteration",
		"maporder/maporder.go:35: [maporder] fmt.Println inside map iteration",
		"maporder/maporder.go:43: [maporder] telemetry Tracer.Emit inside map iteration",
		"errwrap/errwrap.go:15: [errwrap] sentinel ErrWindowFailed compared with ==",
		"errwrap/errwrap.go:23: [errwrap] sentinel ErrWindowFailed as a switch case",
		"errwrap/errwrap.go:31: [errwrap] error err folded into fmt.Errorf without %w",
		"telnil/telnil.go:20: [telnil] c.score() evaluates even when Histogram c.hist is nil",
		"floateq/floateq.go:10: [floateq] exact float comparison prev == next",
		"baddirective/baddirective.go:11: [detrand] wall-clock read time.Now",
		"baddirective/baddirective.go:10: [directive] allow directive for rule detrand has no reason",
		"dettaint/dettaint.go:11: [dettaint] call to helper.Stamp transitively reaches time.Now",
		"dettaint/dettaint.go:16: [dettaint] call to helper.Jitter transitively reaches rand.Float64",
		"dettaint/helper/helper.go:15: [detrand] wall-clock read time.Now",
		"parcapture/parcapture.go:15: [parcapture] write to captured total",
		"parcapture/parcapture.go:39: [parcapture] write to captured map m",
		"emitorder/emitorder.go:15: [emitorder] Tracer.Emit on shared tracer tr",
		"emitorder/emitorder.go:22: [emitorder] call to emitorder.stamp inside par.Go closure transitively emits",
		"fixable/fixable.go:14: [errwrap] sentinel ErrStale compared with ==",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q\nstdout:\n%s", want, out)
		}
	}
	// The suppressed twins must NOT be printed as findings.
	for _, silent := range []string{
		"detrand.go:14:", "maporder.go:47:", "errwrap.go:16:", "telnil.go:22:", "floateq.go:12:",
		"dettaint.go:31:", "parcapture.go:85:", "emitorder.go:56:", "fixable.go:37:",
	} {
		if strings.Contains(out, silent) {
			t.Errorf("stdout contains suppressed finding %q\nstdout:\n%s", silent, out)
		}
	}
	sum := stderr.String()
	if !strings.Contains(sum, "30 findings, 9 suppressed, 1 bad directives, 1 unused allows") {
		t.Errorf("summary mismatch: %q", sum)
	}
	if !strings.Contains(sum, "allow directive for rule floateq suppressed nothing") {
		t.Errorf("stale allow not noted: %q", sum)
	}
}

// TestCleanPackagePasses exercises the zero exit on a package with no
// findings, and that -q silences the summary.
func TestCleanPackagePasses(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-q", "../../internal/qos"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code over internal/qos: got %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 || stderr.Len() != 0 {
		t.Errorf("clean -q run should print nothing, got stdout %q stderr %q",
			stdout.String(), stderr.String())
	}
}

// TestUsageErrors covers the exit-2 paths: no patterns and a pattern
// naming nothing loadable.
func TestUsageErrors(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no-arg exit: got %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "usage:") {
		t.Errorf("no-arg run should print usage, got %q", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"./no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad pattern exit: got %d, want 2 (stderr %q)", code, stderr.String())
	}
}
