package main

import (
	"encoding/json"
	"io"
	"path/filepath"

	"clite/internal/analysis"
)

// SARIF 2.1.0 output, the shape GitHub code scanning ingests: one run,
// the 8-rule driver catalogue, findings and malformed directives as
// error-level results, stale allows as warnings. URIs are
// wd-relative with %SRCROOT% as the base so upload works from any
// checkout path.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

// writeSARIF renders the report as a SARIF 2.1.0 log on w.
func writeSARIF(w io.Writer, rep analysis.Report) error {
	driver := sarifDriver{
		Name:           "clite-lint",
		InformationURI: "https://github.com/clite/clite/blob/main/DESIGN.md",
	}
	for _, r := range analysis.Rules() {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               r.Name,
			ShortDescription: sarifText{Text: r.Doc},
		})
	}
	results := make([]sarifResult, 0, len(rep.Findings)+len(rep.BadDirectives)+len(rep.UnusedDirectives))
	for _, f := range rep.Findings {
		results = append(results, toResult(f, "error"))
	}
	for _, f := range rep.BadDirectives {
		results = append(results, toResult(f, "error"))
	}
	for _, f := range rep.UnusedDirectives {
		results = append(results, toResult(f, "warning"))
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

func toResult(f analysis.Finding, level string) sarifResult {
	return sarifResult{
		RuleID:  f.Rule,
		Level:   level,
		Message: sarifText{Text: f.Message},
		Locations: []sarifLocation{{
			PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{
					URI:       filepath.ToSlash(relPath(f.Pos.Filename)),
					URIBaseID: "%SRCROOT%",
				},
				Region: sarifRegion{StartLine: f.Pos.Line},
			},
		}},
	}
}
