package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// --- SARIF ---

// TestSARIFShape pins the JSON shape code scanning ingests: schema,
// version, driver name, full rule catalogue, and result locations.
func TestSARIFShape(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-q", "-sarif", "../../internal/analysis/testdata/src/dettaint", "../../internal/analysis/testdata/src/dettaint/helper"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit: got %d, want 1 (stderr %q)", code, stderr.String())
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout.String()), &log); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, stdout.String())
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("version/schema: %q %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs: got %d, want 1", len(log.Runs))
	}
	drv := log.Runs[0].Tool.Driver
	if drv.Name != "clite-lint" {
		t.Errorf("driver name %q", drv.Name)
	}
	ids := map[string]bool{}
	for _, r := range drv.Rules {
		ids[r.ID] = true
	}
	for _, want := range []string{"detrand", "dettaint", "maporder", "parcapture", "emitorder", "errwrap", "telnil", "floateq"} {
		if !ids[want] {
			t.Errorf("rule catalogue missing %q (have %v)", want, ids)
		}
	}
	found := false
	for _, r := range log.Runs[0].Results {
		if r.RuleID != "dettaint" {
			continue
		}
		found = true
		if r.Level != "error" {
			t.Errorf("dettaint level %q, want error", r.Level)
		}
		loc := r.Locations[0].PhysicalLocation
		if !strings.HasSuffix(loc.ArtifactLocation.URI, "dettaint/dettaint.go") || loc.Region.StartLine == 0 {
			t.Errorf("location %+v", loc)
		}
	}
	if !found {
		t.Error("no dettaint result in SARIF output")
	}
}

// --- scratch module helpers ---

func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for name, body := range files {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func git(t *testing.T, dir string, args ...string) {
	t.Helper()
	cmd := exec.Command("git", args...)
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("git %v: %v\n%s", args, err, out)
	}
}

// inDir runs fn with the working directory switched to dir (the
// driver resolves patterns, git state, and caches relative to wd).
func inDir(t *testing.T, dir string, fn func()) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()
	fn()
}

// --- -diff ---

// TestDiffSelection builds a two-package git module where BOTH
// packages carry findings, commits it, then regresses only one
// package. -diff HEAD must report the changed package's finding and
// stay silent about the unchanged one; the full run sees both. With a
// warm fact cache, -diff must also surface a cross-package taint
// regression landing in the UNCHANGED package.
func TestDiffSelection(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": "module diffmod\n\ngo 1.22\n",
		// internal/core is a deterministic-scope package calling
		// profile.Scale: clean at commit time, the taint edge appears
		// when profile regresses.
		"internal/core/core.go": `package core

import "diffmod/internal/profile"

func Window(x int) int { return profile.Scale(x) }
`,
		"internal/profile/profile.go": `package profile

func Scale(x int) int { return x * 2 }
`,
		// stale carries a finding from day one (unchanged by the edit).
		"stale/stale.go": `package stale

import "errors"

var ErrOld = errors.New("old")

func Check(err error) bool { return err == ErrOld }
`,
	})
	git(t, dir, "init", "-q")
	git(t, dir, "-c", "user.email=lint@test", "-c", "user.name=lint", "add", ".")
	git(t, dir, "-c", "user.email=lint@test", "-c", "user.name=lint", "commit", "-q", "-m", "seed")

	inDir(t, dir, func() {
		// Full run warms the cache and sees the pre-existing finding.
		var stdout, stderr strings.Builder
		if code := run([]string{"-q", "-cache", ".lintcache", "./..."}, &stdout, &stderr); code != 1 {
			t.Fatalf("full run exit %d (stderr %q)", code, stderr.String())
		}
		if !strings.Contains(stdout.String(), "stale/stale.go:7: [errwrap]") {
			t.Fatalf("full run must see the stale finding:\n%s", stdout.String())
		}

		// Regress ONLY profile: Scale now reads the wall clock.
		writeTree(t, dir, map[string]string{
			"internal/profile/profile.go": `package profile

import "time"

func Scale(x int) int { return x * int(time.Now().Unix()) }
`,
		})

		stdout.Reset()
		stderr.Reset()
		code := run([]string{"-q", "-diff", "HEAD", "-cache", ".lintcache", "./..."}, &stdout, &stderr)
		if code != 1 {
			t.Fatalf("-diff exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
		}
		out := stdout.String()
		if !strings.Contains(out, "internal/profile/profile.go:5: [detrand]") {
			t.Errorf("-diff must lint the changed package:\n%s", out)
		}
		if strings.Contains(out, "stale/stale.go") {
			t.Errorf("-diff must not re-report unchanged packages:\n%s", out)
		}
		// The taint edge lands in core — unchanged, reconstructed from
		// cached facts.
		if !strings.Contains(out, "internal/core/core.go:5: [dettaint]") {
			t.Errorf("-diff must surface cross-package taint into the unchanged package:\n%s", out)
		}
	})
}

// --- -fix ---

// TestFixFlag exercises the driver's -fix path on a scratch module:
// first run rewrites the sources and exits clean (everything left is
// suppressed), second run has nothing to do — idempotence at the
// driver level.
func TestFixFlag(t *testing.T) {
	dir := t.TempDir()
	src, err := os.ReadFile(filepath.Join("..", "..", "internal", "analysis", "testdata", "src", "fixable", "fixable.go"))
	if err != nil {
		t.Fatal(err)
	}
	writeTree(t, dir, map[string]string{
		"go.mod":     "module fixmod\n\ngo 1.22\n",
		"fixable.go": string(src),
	})
	inDir(t, dir, func() {
		var stdout, stderr strings.Builder
		if code := run([]string{"-fix", "."}, &stdout, &stderr); code != 0 {
			t.Fatalf("-fix exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
		}
		if !strings.Contains(stderr.String(), "fixed: fixable.go") {
			t.Errorf("fixer should report the rewritten file, stderr %q", stderr.String())
		}
		after, err := os.ReadFile(filepath.Join(dir, "fixable.go"))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(after), "errors.Is(err, ErrStale)") {
			t.Errorf("fix not applied:\n%s", after)
		}
		stdout.Reset()
		stderr.Reset()
		if code := run([]string{"-fix", "."}, &stdout, &stderr); code != 0 {
			t.Fatalf("second -fix exit %d (stderr %q)", code, stderr.String())
		}
		if strings.Contains(stderr.String(), "fixed:") {
			t.Errorf("second -fix must be a no-op, stderr %q", stderr.String())
		}
	})
}

// --- -suppressions and -baseline ---

// TestSuppressionLedger pins the ledger listing: every allow with its
// reason, per-rule totals, exit 0 even though findings exist.
func TestSuppressionLedger(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-q", "-suppressions", "../../internal/analysis/testdata/src/detrand"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("-suppressions exit %d (stderr %q)", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "detrand/detrand.go:14: [detrand] fixture demonstrating a suppressed metrics-only clock read") {
		t.Errorf("ledger missing the allow with its reason:\n%s", out)
	}
	if !strings.Contains(out, "total detrand 1") {
		t.Errorf("ledger missing per-rule total:\n%s", out)
	}
}

// TestBaselineBudget covers the budget gate: within budget passes,
// over budget fails naming the rule, -write-baseline regenerates.
func TestBaselineBudget(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "lint.baseline")

	// detrand fixture: one finding (exit 1 regardless), one allow.
	if err := os.WriteFile(base, []byte("detrand 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	code := run([]string{"-q", "-baseline", base, "../../internal/analysis/testdata/src/detrand"}, &stdout, &stderr)
	if code != 1 || strings.Contains(stdout.String(), "[budget]") {
		t.Fatalf("within-budget run: exit %d, stdout %q", code, stdout.String())
	}

	// Budget zero: the same allow now blows the budget.
	if err := os.WriteFile(base, []byte("detrand 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	code = run([]string{"-q", "-baseline", base, "../../internal/analysis/testdata/src/detrand"}, &stdout, &stderr)
	if code != 1 || !strings.Contains(stdout.String(), "[budget] 1 detrand allows in tree, budget is 0") {
		t.Fatalf("over-budget run: exit %d, stdout %q", code, stdout.String())
	}

	// A clean-of-allows package with an empty baseline passes.
	if err := os.WriteFile(base, []byte("# nothing allowed\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	code = run([]string{"-q", "-baseline", base, "../../internal/qos"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("clean package with empty baseline: exit %d, stdout %q stderr %q", code, stdout.String(), stderr.String())
	}

	// -write-baseline regenerates the counts.
	stdout.Reset()
	code = run([]string{"-q", "-baseline", base, "-write-baseline", "../../internal/analysis/testdata/src/detrand"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("-write-baseline exit %d", code)
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "detrand 1") {
		t.Errorf("regenerated baseline:\n%s", data)
	}
}

// TestRepoBaselineCurrent keeps the checked-in budget honest: the
// repo tree must fit inside lint.baseline exactly as CI enforces it.
func TestRepoBaselineCurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	var stdout, stderr strings.Builder
	code := run([]string{"-q", "-baseline", "../../lint.baseline", "../../..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("repo lint with baseline: exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}
