// Command clite runs one co-location scenario under a chosen policy on
// the simulated testbed and prints the outcome: the partition found,
// per-job QoS status and performance, and the search cost.
//
// Usage:
//
//	clite -lc memcached:0.3 -lc img-dnn:0.2 -bg streamcluster -policy CLITE -seed 42
//
// Policies: CLITE (default), PARTIES, Heracles, RAND+, GENETIC, ORACLE.
//
// Fault injection (CLITE only) degrades the observation substrate to
// exercise the hardened controller:
//
//	clite -lc memcached:0.3 -bg swaptions -fault-transient 0.1 -fault-outlier 0.1 -resilient
//
// Cluster mode places the requests across a pool of nodes through the
// placement pipeline (profile cache, admission pre-filter, concurrent
// screening) instead of co-locating them on one machine:
//
//	clite -cluster 4 -lc memcached:0.2 -lc memcached:0.2 -bg swaptions
//
// with -screen-workers, -screen-iters, -no-profile-cache and
// -no-prefilter to tune or ablate the pipeline.
//
// Telemetry: -trace FILE writes the run's deterministic event timeline
// (BO iterations, observation windows, QoS violations, placement
// phases, faults, resilience actions) as JSONL; -metrics prints the
// metrics registry after the run. Both work in every mode.
//
// Observability: -slo attaches the SLO plane (internal/obs) to the
// run and prints per-job error-budget status, burn rates, and the
// alert stream after the run. Fleet mode always prints the per-epoch
// SLO ledger; -slo adds the full status block on top.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"clite"
)

// errInterrupted marks a run cut short by SIGINT/SIGTERM after a clean
// drain: in-flight work finished, partial results and telemetry were
// flushed. main maps it to its own exit code so scripts can tell an
// interrupted-but-drained run (3) from a failed one (1).
var errInterrupted = errors.New("interrupted: placement stream cut short")

// jobList collects repeated -lc / -bg flags.
type jobList []string

func (l *jobList) String() string { return strings.Join(*l, ",") }

func (l *jobList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	err := run()
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "clite:", err)
	if errors.Is(err, errInterrupted) {
		os.Exit(3)
	}
	os.Exit(1)
}

func run() error {
	var lcFlags, bgFlags jobList
	flag.Var(&lcFlags, "lc", "latency-critical job as name:load (repeatable), e.g. memcached:0.3")
	flag.Var(&bgFlags, "bg", "background job name (repeatable), e.g. streamcluster")
	policyName := flag.String("policy", "CLITE", "policy: CLITE, PARTIES, Heracles, RAND+, GENETIC, ORACLE")
	seed := flag.Int64("seed", 1, "random seed (measurement noise and search)")
	list := flag.Bool("workloads", false, "list available workloads and exit")
	faultTransient := flag.Float64("fault-transient", 0, "probability a window fails transiently (counter-read error)")
	faultOutlier := flag.Float64("fault-outlier", 0, "probability a window reports a corrupted latency spike")
	faultActuation := flag.Float64("fault-actuation", 0, "probability a window runs under a degraded partition")
	faultNodeFailAt := flag.Float64("fault-node-fail-at", 0, "simulated time (s) at which the node fails permanently (0 = never)")
	faultSeed := flag.Int64("fault-seed", 0, "fault stream seed (defaults to -seed)")
	resilient := flag.Bool("resilient", false, "harden the controller: retry, outlier re-measurement, fallback, guard pass")
	clusterNodes := flag.Int("cluster", 0, "place the jobs across this many nodes instead of one machine (0 = single-node mode)")
	fleetNodes := flag.Int("fleet", 0, "simulate a streaming fleet of this many nodes (0 = off); ignores -lc/-bg, jobs come from -fleet-shape traffic")
	fleetShards := flag.Int("fleet-shards", 0, "fleet mode: concurrent scheduler shards (0 = default 4; decisions are identical at any value)")
	fleetCellNodes := flag.Int("fleet-cell-nodes", 0, "fleet mode: nodes per scheduling cell (0 = default 64)")
	fleetShape := flag.String("fleet-shape", "diurnal", "fleet mode: traffic shape (diurnal, bursty, heavytail)")
	fleetDuration := flag.Float64("fleet-duration", 0, "fleet mode: simulated horizon in seconds (0 = default 60)")
	fleetRate := flag.Float64("fleet-rate", 0, "fleet mode: mean arrivals per simulated second (0 = nodes/64)")
	fleetDeathRate := flag.Float64("fleet-death-rate", 0, "fleet mode: node deaths per simulated second (0 = no deaths)")
	screenWorkers := flag.Int("screen-workers", 0, "cluster mode: concurrent screening workers (0 = NumCPU, 1 = sequential)")
	screenIters := flag.Int("screen-iters", 0, "cluster mode: BO budget per screening run (0 = default)")
	noCache := flag.Bool("no-profile-cache", false, "cluster mode: disable the co-location profile cache")
	noPrefilter := flag.Bool("no-prefilter", false, "cluster mode: disable the analytical admission pre-filter")
	traceOut := flag.String("trace", "", "write the telemetry event timeline as JSONL to this file")
	showMetrics := flag.Bool("metrics", false, "print the metrics registry after the run")
	showSLO := flag.Bool("slo", false, "attach the SLO plane and print budget/burn status after the run")
	flag.Parse()

	if *list {
		fmt.Println("latency-critical:", strings.Join(clite.LCWorkloads(), ", "))
		fmt.Println("background:      ", strings.Join(clite.BGWorkloads(), ", "))
		return nil
	}
	if len(lcFlags) == 0 && *fleetNodes == 0 {
		return fmt.Errorf("need at least one -lc job (try -workloads to list them)")
	}
	tel := telemetrySinks{path: *traceOut}
	if *traceOut != "" {
		tel.trace = clite.NewTracer()
	}
	if *showMetrics {
		tel.reg = clite.NewMetrics()
		tel.show = true
	}
	if *showSLO {
		// The SLO plane consumes the event stream through a tracer tap,
		// so -slo implies a tracer even when -trace wasn't asked for
		// (the timeline is only written to disk when a path was given).
		if tel.trace == nil {
			tel.trace = clite.NewTracer()
		}
		tel.slo = clite.NewSLOStore(clite.SLOOptions{})
		if tel.reg != nil {
			tel.slo.BindRegistry(tel.reg)
		}
		tel.trace.SetTap(tel.slo.Sink())
	}
	if *fleetNodes > 0 {
		if err := runFleet(clite.FleetOptions{
			Nodes:     *fleetNodes,
			CellNodes: *fleetCellNodes,
			Shards:    *fleetShards,
			Seed:      *seed,
			Duration:  *fleetDuration,
			Traffic: clite.FleetTraffic{
				Shape: clite.FleetShape(*fleetShape),
				Rate:  *fleetRate,
			},
			Deaths: clite.FleetDeathPlan{Seed: *seed, DeathRate: *fleetDeathRate},
		}, &tel); err != nil {
			return err
		}
		return tel.flush()
	}
	if *clusterNodes > 0 {
		// A signal in cluster mode drains rather than kills: the
		// in-flight placement finishes, the remaining requests are
		// skipped, and the trace JSONL still flushes before exit.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		err := runCluster(ctx, lcFlags, bgFlags, clite.SchedulerOptions{
			Nodes:               *clusterNodes,
			Seed:                *seed,
			ScreenIterations:    *screenIters,
			ScreenWorkers:       *screenWorkers,
			DisableProfileCache: *noCache,
			DisablePrefilter:    *noPrefilter,
		}, &tel)
		if err != nil && !errors.Is(err, errInterrupted) {
			return err
		}
		if ferr := tel.flush(); ferr != nil {
			return ferr
		}
		return err
	}

	m := clite.NewMachine(*seed)
	var names []string
	for _, spec := range lcFlags {
		name, load, err := parseLC(spec)
		if err != nil {
			return err
		}
		if _, err := m.AddLC(name, load); err != nil {
			return err
		}
		names = append(names, fmt.Sprintf("%s@%.0f%%", name, load*100))
	}
	for _, name := range bgFlags {
		if _, err := m.AddBG(name); err != nil {
			return err
		}
		names = append(names, name)
	}
	tel.registerSLO(m)

	plan := clite.FaultPlan{
		Seed:             *faultSeed,
		Transient:        *faultTransient,
		Outlier:          *faultOutlier,
		PartialActuation: *faultActuation,
		NodeFailAt:       *faultNodeFailAt,
	}
	if plan.Seed == 0 {
		plan.Seed = *seed
	}
	if plan.Enabled() || *resilient {
		if err := runFaulted(m, names, *policyName, *seed, plan, *resilient, &tel); err != nil {
			return err
		}
		return tel.flush()
	}

	if tel.enabled() && *policyName == "CLITE" {
		// Route through the controller so the full BO timeline (per-
		// iteration EI, termination reason) lands on the trace, not just
		// the machine's per-window events.
		fmt.Printf("co-locating %s under CLITE...\n", strings.Join(names, " + "))
		opts := clite.WithTelemetry(clite.Options{BO: clite.BOOptions{Seed: *seed}}, tel.trace, tel.reg)
		res, err := clite.NewController(m, opts).Run()
		if err != nil {
			return err
		}
		report(m, res.SamplesUsed, res.QoSMeetable, res.BestScore, res.Best, res.BestObs)
		return tel.flush()
	}

	policy, ok := clite.PolicyByName(*policyName, *seed)
	if !ok {
		return fmt.Errorf("unknown policy %q", *policyName)
	}
	if tel.enabled() {
		// Baseline policies drive the machine directly; attach the sinks
		// there so observation windows and QoS violations still flow.
		m.SetTelemetry(tel.trace, tel.reg)
	}

	fmt.Printf("co-locating %s under %s...\n", strings.Join(names, " + "), policy.Name())
	res, err := policy.Run(m)
	if err != nil {
		return err
	}
	report(m, res.SamplesUsed, res.QoSMeetable, res.BestScore, res.Best, res.BestObs)
	return tel.flush()
}

// telemetrySinks carries the optional trace/metrics sinks through the
// run modes and writes them out once the run finishes.
type telemetrySinks struct {
	trace *clite.Tracer
	reg   *clite.MetricsRegistry
	slo   *clite.SLOStore
	path  string
	show  bool
}

func (t *telemetrySinks) enabled() bool { return t.trace != nil || t.reg != nil }

// registerSLO subscribes the machine's LC jobs to the SLO plane so
// the per-job budget table covers them from the first window.
func (t *telemetrySinks) registerSLO(m *clite.Machine) {
	if t.slo == nil {
		return
	}
	for _, jt := range m.QoSTargets() {
		t.slo.RegisterJob(jt.Job, jt.Name, clite.SLO{Target: jt.Target})
	}
}

// flush writes the JSONL timeline (if -trace), prints the metrics
// registry (if -metrics), and prints the SLO status block (if -slo).
func (t *telemetrySinks) flush() error {
	if t.trace != nil && t.path != "" {
		f, err := os.Create(t.path)
		if err != nil {
			return err
		}
		if err := t.trace.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\ntrace: wrote %d events to %s\n", t.trace.Len(), t.path)
	}
	if t.show && t.reg != nil {
		fmt.Printf("\nmetrics:\n%s", clite.MetricsSummary(t.reg))
	}
	if t.slo != nil {
		fmt.Printf("\n%s", t.slo.FormatSLO())
	}
	return nil
}

// runCluster drives the warehouse-scale placement pipeline: every -lc
// and -bg request is placed in flag order across the node pool, then
// the cluster snapshot and the pipeline's work ledger are printed.
func runCluster(ctx context.Context, lcFlags, bgFlags jobList, opts clite.SchedulerOptions, tel *telemetrySinks) error {
	// The ledger is rendered straight off the scheduler's metrics
	// registry; supply one even when -metrics wasn't asked for.
	ledger := tel.reg
	if ledger == nil {
		ledger = clite.NewMetrics()
	}
	opts.Trace = tel.trace
	opts.Metrics = ledger
	sched := clite.NewScheduler(opts)
	var reqs []clite.JobRequest
	for _, spec := range lcFlags {
		name, load, err := parseLC(spec)
		if err != nil {
			return err
		}
		reqs = append(reqs, clite.JobRequest{Workload: name, Load: load})
	}
	for _, name := range bgFlags {
		reqs = append(reqs, clite.JobRequest{Workload: name})
	}
	fmt.Printf("placing %d jobs across %d nodes...\n\n", len(reqs), opts.Nodes)
	placed := 0
	for _, req := range reqs {
		if ctx.Err() != nil {
			break
		}
		label := req.Workload
		if req.IsLC() {
			label = fmt.Sprintf("%s@%.0f%%", req.Workload, req.Load*100)
		}
		p, err := sched.Place(req)
		switch {
		case err == nil:
			fmt.Printf("  %-20s -> node %d (score %.3f, %d samples)\n",
				label, p.Node, p.Result.BestScore, p.Result.SamplesUsed)
		case errors.Is(err, clite.ErrUnplaceable):
			fmt.Printf("  %-20s -> UNPLACEABLE (no node can host it within QoS)\n", label)
		default:
			return fmt.Errorf("placing %s: %w", label, err)
		}
		placed++
	}
	fmt.Println("\nnodes:")
	for _, info := range sched.Snapshot() {
		fmt.Printf("  node %d: %s\n", info.ID, strings.Join(info.Jobs, ", "))
	}
	fmt.Printf("\npipeline ledger:\n%s", clite.MetricsSummary(ledger, "cluster_"))
	if ctx.Err() != nil {
		return fmt.Errorf("%w after %d/%d placements", errInterrupted, placed, len(reqs))
	}
	return nil
}

// runFleet drives the warehouse-scale streaming simulation: traffic
// arrivals flow onto the fleet's cells through the mean-field
// pre-partitioner and each cell's placement pipeline, and the run
// ends with the fleet ledger — arrivals, placements, losses, the
// aggregated pipeline counters, and the per-shard placement ledger.
func runFleet(opts clite.FleetOptions, tel *telemetrySinks) error {
	ledger := tel.reg
	if ledger == nil {
		ledger = clite.NewMetrics()
	}
	// Fleet mode always carries the SLO plane: the barrier feeds it in
	// cell order, so the per-epoch ledger below is shard-invariant.
	store := tel.slo
	if store == nil {
		store = clite.NewSLOStore(clite.SLOOptions{})
	}
	opts.Trace = tel.trace
	opts.Metrics = ledger
	opts.Obs = store
	f, err := clite.NewFleet(opts)
	if err != nil {
		return err
	}
	fmt.Printf("simulating %d-node fleet (%s traffic, seed %d)...\n", opts.Nodes, opts.Traffic.Shape, opts.Seed)
	sum, err := f.Run()
	if err != nil {
		return err
	}
	fmt.Printf("\nfleet: %d nodes in %d cells, %d shards, %.0f s simulated (%d epochs)\n",
		sum.Nodes, sum.Cells, sum.Shards, sum.Duration, sum.Epochs)
	fmt.Printf("jobs:  %d arrivals -> %d placed, %d unplaceable, %d lost; %d departures, %d retries\n",
		sum.Arrivals, sum.Placements, sum.Rejections, sum.Lost, sum.Departures, sum.Retries)
	if sum.Deaths > 0 {
		fmt.Printf("nodes: %d died, %d jobs rehomed in-cell\n", sum.Deaths, sum.Rehomed)
	}
	fmt.Printf("pipeline: %d screens (%d warm), %d BO iterations, %d prefilter rejects, cache %d/%d hits (%d mixes memoized)\n",
		sum.Cluster.Screens, sum.Cluster.WarmScreens, sum.Cluster.BOIterations,
		sum.Cluster.PrefilterRejects, sum.Cluster.CacheHits,
		sum.Cluster.CacheHits+sum.Cluster.CacheMisses, sum.CacheEntries)
	fmt.Printf("\nshard ledger:\n%s", clite.MetricsSummary(ledger, "fleet_"))
	fmt.Printf("\nslo ledger:\n%s", store.FormatLedger())
	return nil
}

// runFaulted drives the CLITE controller through the fault injector —
// the only policy with a hardened variant, so fault mode rejects the
// baselines rather than silently running them unprotected.
func runFaulted(m *clite.Machine, names []string, policyName string, seed int64, plan clite.FaultPlan, resilient bool, tel *telemetrySinks) error {
	if policyName != "CLITE" {
		return fmt.Errorf("fault injection supports only the CLITE policy (got %q)", policyName)
	}
	mode := "baseline"
	if resilient {
		mode = "hardened"
	}
	fmt.Printf("co-locating %s under CLITE (%s) with faults %+v...\n", strings.Join(names, " + "), mode, plan)
	obs, err := clite.InjectFaults(m, plan)
	if err != nil {
		return err
	}
	ctrl := clite.NewController(obs, clite.WithTelemetry(clite.Options{
		BO:         clite.BOOptions{Seed: seed},
		Resilience: clite.Resilience{Enabled: resilient},
	}, tel.trace, tel.reg))
	res, err := ctrl.Run()
	if err != nil {
		return err
	}
	if inj, ok := obs.(*clite.FaultInjector); ok {
		fmt.Printf("\nfaults injected:   %s\n", inj.Counts())
	}
	fmt.Printf("windows attempted: %d (%d retries beyond first attempts)\n", res.Attempts, res.Retries)
	if res.FellBack {
		fmt.Println("search aborted:    returned the last known QoS-safe partition")
	}
	if len(res.Infeasible) > 0 {
		fmt.Printf("infeasible jobs:   %v (cannot meet QoS even with the whole machine)\n", res.Infeasible)
	}
	report(m, res.SamplesUsed, res.QoSMeetable, res.BestScore, res.Best, res.BestObs)
	return nil
}

// report prints the shared outcome block: search cost, QoS verdict,
// and the per-job partition table.
func report(m *clite.Machine, samples int, qosMet bool, score float64, best clite.Config, obs clite.Observation) {
	fmt.Printf("\nsamples evaluated: %d (%.0f s of observation windows)\n",
		samples, float64(m.Observations())*m.Window())
	fmt.Printf("all QoS met:       %v\n", qosMet)
	fmt.Printf("objective score:   %.3f (Eq. 3; >0.5 means every LC job inside QoS)\n\n", score)

	topo := m.Topology()
	fmt.Printf("%-14s", "job")
	for _, spec := range topo {
		fmt.Printf("  %8s", spec.Kind)
	}
	fmt.Printf("  %12s  %s\n", "p95 / thr", "status")
	for i, job := range m.Jobs() {
		fmt.Printf("%-14s", job.Workload.Name)
		for r := range topo {
			fmt.Printf("  %8d", best.Jobs[i][r])
		}
		if job.IsLC() {
			status := "QoS MET"
			if !obs.QoSMet[i] {
				status = "VIOLATED"
			}
			fmt.Printf("  %10.2fms  %s (target %.2fms)\n", obs.P95[i]*1000, status, job.QoS*1000)
		} else {
			fmt.Printf("  %9.0fop/s  %.0f%% of isolation\n", obs.Throughput[i], obs.NormPerf[i]*100)
		}
	}
}

func parseLC(spec string) (string, float64, error) {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return "", 0, fmt.Errorf("bad -lc %q, want name:load", spec)
	}
	load, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad load in -lc %q: %w", spec, err)
	}
	return parts[0], load, nil
}
