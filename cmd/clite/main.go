// Command clite runs one co-location scenario under a chosen policy on
// the simulated testbed and prints the outcome: the partition found,
// per-job QoS status and performance, and the search cost.
//
// Usage:
//
//	clite -lc memcached:0.3 -lc img-dnn:0.2 -bg streamcluster -policy CLITE -seed 42
//
// Policies: CLITE (default), PARTIES, Heracles, RAND+, GENETIC, ORACLE.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"clite"
)

// jobList collects repeated -lc / -bg flags.
type jobList []string

func (l *jobList) String() string { return strings.Join(*l, ",") }

func (l *jobList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "clite:", err)
		os.Exit(1)
	}
}

func run() error {
	var lcFlags, bgFlags jobList
	flag.Var(&lcFlags, "lc", "latency-critical job as name:load (repeatable), e.g. memcached:0.3")
	flag.Var(&bgFlags, "bg", "background job name (repeatable), e.g. streamcluster")
	policyName := flag.String("policy", "CLITE", "policy: CLITE, PARTIES, Heracles, RAND+, GENETIC, ORACLE")
	seed := flag.Int64("seed", 1, "random seed (measurement noise and search)")
	list := flag.Bool("workloads", false, "list available workloads and exit")
	flag.Parse()

	if *list {
		fmt.Println("latency-critical:", strings.Join(clite.LCWorkloads(), ", "))
		fmt.Println("background:      ", strings.Join(clite.BGWorkloads(), ", "))
		return nil
	}
	if len(lcFlags) == 0 {
		return fmt.Errorf("need at least one -lc job (try -workloads to list them)")
	}

	m := clite.NewMachine(*seed)
	var names []string
	for _, spec := range lcFlags {
		name, load, err := parseLC(spec)
		if err != nil {
			return err
		}
		if _, err := m.AddLC(name, load); err != nil {
			return err
		}
		names = append(names, fmt.Sprintf("%s@%.0f%%", name, load*100))
	}
	for _, name := range bgFlags {
		if _, err := m.AddBG(name); err != nil {
			return err
		}
		names = append(names, name)
	}

	policy, ok := clite.PolicyByName(*policyName, *seed)
	if !ok {
		return fmt.Errorf("unknown policy %q", *policyName)
	}

	fmt.Printf("co-locating %s under %s...\n", strings.Join(names, " + "), policy.Name())
	res, err := policy.Run(m)
	if err != nil {
		return err
	}

	fmt.Printf("\nsamples evaluated: %d (%.0f s of observation windows)\n",
		res.SamplesUsed, float64(m.Observations())*m.Window())
	fmt.Printf("all QoS met:       %v\n", res.QoSMeetable)
	fmt.Printf("objective score:   %.3f (Eq. 3; >0.5 means every LC job inside QoS)\n\n", res.BestScore)

	topo := m.Topology()
	fmt.Printf("%-14s", "job")
	for _, spec := range topo {
		fmt.Printf("  %8s", spec.Kind)
	}
	fmt.Printf("  %12s  %s\n", "p95 / thr", "status")
	for i, job := range m.Jobs() {
		fmt.Printf("%-14s", job.Workload.Name)
		for r := range topo {
			fmt.Printf("  %8d", res.Best.Jobs[i][r])
		}
		if job.IsLC() {
			status := "QoS MET"
			if !res.BestObs.QoSMet[i] {
				status = "VIOLATED"
			}
			fmt.Printf("  %10.2fms  %s (target %.2fms)\n", res.BestObs.P95[i]*1000, status, job.QoS*1000)
		} else {
			fmt.Printf("  %9.0fop/s  %.0f%% of isolation\n", res.BestObs.Throughput[i], res.BestObs.NormPerf[i]*100)
		}
	}
	return nil
}

func parseLC(spec string) (string, float64, error) {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return "", 0, fmt.Errorf("bad -lc %q, want name:load", spec)
	}
	load, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad load in -lc %q: %v", spec, err)
	}
	return parts[0], load, nil
}
