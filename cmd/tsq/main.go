// Command tsq (trace structural query) answers structural questions
// about recorded or in-flight JSONL telemetry traces through the
// internal/obs query engine: what does the event stream contain
// (summary), when did each job violate (violations), what spans ran
// and how do they nest (spans), which root-to-leaf span chain
// dominates the trace (critpath), which pipeline phases each
// placement walked (placements), how long did faults take to recover
// (faults), and what would the SLO plane have said (slo — replays the
// burn-rate engine over the trace).
//
//	tsq -q summary trace.jsonl
//	tsq -q violations -job 1 trace.jsonl
//	tsq -q critpath trace.jsonl
//	tsq -q slo -slo-window 60 -slo-budget 0.1 trace.jsonl
//	tsq -q violations -follow trace.jsonl   # tail a live trace
//
// -follow keeps the file open after EOF and streams matching events
// as a run appends them (violations, faults, and alerts print
// per-event; aggregate queries re-print on an interval).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"clite/internal/obs"
	"clite/internal/telemetry"
)

func main() {
	var (
		query     = flag.String("q", "summary", "query: summary | violations | spans | critpath | placements | faults | slo")
		job       = flag.Int("job", -1, "restrict violations to one job index (-1: all)")
		spanName  = flag.String("span", "", "restrict spans/placements to spans with this name (placements default: place)")
		limit     = flag.Int("n", 0, "print at most n rows (0: all)")
		follow    = flag.Bool("follow", false, "keep reading after EOF and stream new results")
		sloWindow = flag.Float64("slo-window", 60, "slo replay: assessment window, simulated seconds")
		sloBudget = flag.Float64("slo-budget", 0.1, "slo replay: error budget (bad-window fraction)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tsq [-q query] [flags] trace.jsonl")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(*query, flag.Arg(0), *job, *spanName, *limit, *follow, *sloWindow, *sloBudget); err != nil {
		fmt.Fprintln(os.Stderr, "tsq:", err)
		os.Exit(1)
	}
}

func run(query, path string, job int, spanName string, limit int, follow bool, sloWindow, sloBudget float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	if follow {
		return tail(query, f, job)
	}
	q, err := obs.Load(f)
	if err != nil {
		return err
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	switch query {
	case "summary":
		printSummary(out, q)
	case "violations":
		printViolations(out, q, job, limit)
	case "spans":
		printSpans(out, q, spanName, limit)
	case "critpath":
		printCritPath(out, q)
	case "placements":
		if spanName == "" {
			spanName = "place"
		}
		printPlacements(out, q, spanName, limit)
	case "faults":
		printFaults(out, q, limit)
	case "slo":
		printSLO(out, q, sloWindow, sloBudget)
	default:
		return fmt.Errorf("unknown query %q", query)
	}
	return nil
}

func printSummary(w io.Writer, q *obs.Query) {
	fmt.Fprintf(w, "events  %d\n", q.Len())
	fmt.Fprintf(w, "spans   %d (critical path depth %d)\n", len(q.Spans()), len(q.CriticalPath()))
	for _, kc := range q.Kinds() {
		fmt.Fprintf(w, "  %-20s %d\n", kc.Kind, kc.Count)
	}
}

func printViolations(w io.Writer, q *obs.Query, job, limit int) {
	vs := q.Violations(job)
	fmt.Fprintf(w, "violations  %d\n", len(vs))
	for i, v := range vs {
		if limit > 0 && i >= limit {
			fmt.Fprintf(w, "  ... %d more\n", len(vs)-limit)
			break
		}
		fmt.Fprintf(w, "  at=%8.2f job=%d p95=%.4f target=%.4f over=%+.1f%%\n",
			v.At, v.Job, v.P95, v.Target, 100*(v.P95-v.Target)/v.Target)
	}
}

func printSpans(w io.Writer, q *obs.Query, name string, limit int) {
	spans := q.Spans()
	printed := 0
	for _, sp := range spans {
		if name != "" && sp.Name != name {
			continue
		}
		if limit > 0 && printed >= limit {
			fmt.Fprintln(w, "  ...")
			break
		}
		open := ""
		if sp.EndStep == 0 {
			open = " (open)"
		}
		fmt.Fprintf(w, "%s%-12s id=%d node=%d steps=%d n=%d ok=%v%s\n",
			strings.Repeat("  ", sp.Depth), sp.Name, sp.ID, sp.Node, sp.Steps(q.Horizon()), sp.N, sp.OK, open)
		printed++
	}
	if printed == 0 {
		fmt.Fprintln(w, "no spans")
	}
}

func printCritPath(w io.Writer, q *obs.Query) {
	path := q.CriticalPath()
	if len(path) == 0 {
		fmt.Fprintln(w, "no spans")
		return
	}
	for i, sp := range path {
		fmt.Fprintf(w, "%s%-12s id=%d node=%d steps=%d ok=%v\n",
			strings.Repeat("  ", i), sp.Name, sp.ID, sp.Node, sp.Steps(q.Horizon()), sp.OK)
	}
}

func printPlacements(w io.Writer, q *obs.Query, name string, limit int) {
	paths := q.PlacementPaths(name)
	fmt.Fprintf(w, "placements  %d\n", len(paths))
	for i, p := range paths {
		if limit > 0 && i >= limit {
			fmt.Fprintf(w, "  ... %d more\n", len(paths)-limit)
			break
		}
		var phases []string
		for _, ph := range p.Phases {
			phases = append(phases, ph.Name)
		}
		fmt.Fprintf(w, "  span=%d node=%d steps=%d ok=%v: %s\n",
			p.Span.ID, p.Span.Node, p.Span.Steps(q.Horizon()), p.Span.OK, strings.Join(phases, " → "))
	}
}

func printFaults(w io.Writer, q *obs.Query, limit int) {
	frs := q.FaultRecoveries()
	fmt.Fprintf(w, "faults  %d\n", len(frs))
	for i, fr := range frs {
		if limit > 0 && i >= limit {
			fmt.Fprintf(w, "  ... %d more\n", len(frs)-limit)
			break
		}
		rec := "unrecovered"
		if fr.RecoveredAt >= 0 {
			rec = fmt.Sprintf("recovered at %.2f (+%.2fs)", fr.RecoveredAt, fr.RecoveredAt-fr.FaultAt)
		}
		fmt.Fprintf(w, "  at=%8.2f %-18s %s bad-windows=%d actions=%d\n",
			fr.FaultAt, fr.Kind, rec, fr.BadWindows, fr.Actions)
	}
}

// printSLO replays the burn-rate engine over the loaded trace: every
// job that ever violated is registered (its target taken from the
// violation event), then the whole stream runs through the store's
// sink, and the resulting /slo view prints. Jobs that never violate
// are absent from the per-job table but still covered by the
// machine-wide windows subject.
func printSLO(w io.Writer, q *obs.Query, window, budget float64) {
	store := obs.NewStore(obs.Options{SLO: obs.SLO{Window: window, Budget: budget}})
	for _, ev := range q.Events() {
		if ev.Kind == telemetry.KindQoSViolation {
			store.RegisterJob(ev.Job, "", obs.SLO{Target: ev.Aux, Window: window, Budget: budget})
		}
	}
	sink := store.Sink()
	for _, ev := range q.Events() {
		sink(ev)
	}
	fmt.Fprint(w, store.FormatSLO())
	if alerts := store.Alerts(); len(alerts) > 0 {
		fmt.Fprintln(w, "alert stream")
		for _, ev := range alerts {
			fmt.Fprintf(w, "  at=%8.2f %-16s subject=%s burn=%.2f/%.2f\n",
				ev.At, ev.Kind, ev.Name, ev.Value, ev.Aux)
		}
	}
}

// tail streams a growing trace: read to EOF, keep polling for
// appended lines, and print matching events as they land. Aggregate
// queries re-print a summary block per poll that saw new events.
func tail(query string, f *os.File, job int) error {
	q := obs.NewQuery()
	r := bufio.NewReader(f)
	var partial []byte
	for {
		line, err := r.ReadBytes('\n')
		if len(line) > 0 && err == nil {
			if len(partial) > 0 {
				line = append(partial, line...)
				partial = partial[:0]
			}
			var ev telemetry.Event
			if jerr := json.Unmarshal(line, &ev); jerr != nil {
				return fmt.Errorf("parse trace line: %w", jerr)
			}
			q.Append(ev)
			tailPrint(query, ev, job)
			continue
		}
		if err == io.EOF {
			// Keep partial lines until the writer finishes them.
			partial = append(partial, line...)
			time.Sleep(200 * time.Millisecond)
			continue
		}
		if err != nil {
			return err
		}
	}
}

// tailPrint streams one event if the follow-mode query selects it.
func tailPrint(query string, ev telemetry.Event, job int) {
	switch query {
	case "violations":
		if ev.Kind == telemetry.KindQoSViolation && (job < 0 || ev.Job == job) {
			fmt.Printf("at=%8.2f job=%d p95=%.4f target=%.4f\n", ev.At, ev.Job, ev.Value, ev.Aux)
		}
	case "faults":
		switch ev.Kind {
		case telemetry.KindFaultInjected:
			fmt.Printf("at=%8.2f fault %s\n", ev.At, ev.Name)
		case telemetry.KindResilienceAction:
			fmt.Printf("           action %s attempt=%d\n", ev.Name, ev.N)
		}
	default:
		// summary and aggregate queries: stream the kind ticker.
		fmt.Printf("%7d %s\n", ev.Step, ev.Kind)
	}
}
