package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clite"
)

// writeTrace records one seeded controller run and writes its JSONL
// timeline to a temp file — the input every tsq query reads.
func writeTrace(t *testing.T) string {
	t.Helper()
	m := clite.NewMachine(7)
	if _, err := m.AddLC("memcached", 0.3); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddBG("streamcluster"); err != nil {
		t.Fatal(err)
	}
	tr := clite.NewTracer()
	opts := clite.WithTelemetry(clite.Options{BO: clite.BOOptions{Seed: 7, MaxIterations: 6}}, tr, nil)
	if _, err := clite.NewController(m, opts).Run(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// runQuery executes one tsq query against the trace and returns what
// it printed.
func runQuery(t *testing.T, query, path string) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(query, path, -1, "", 0, false, 60, 0.1)
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("run(%q): %v", query, runErr)
	}
	return string(out)
}

func TestQueriesSmoke(t *testing.T) {
	path := writeTrace(t)
	for _, tc := range []struct {
		query string
		want  string
	}{
		{"summary", "events"},
		{"violations", "violations"},
		{"spans", ""},
		{"critpath", ""},
		{"placements", "placements"},
		{"faults", "faults"},
		{"slo", "windows"},
	} {
		out := runQuery(t, tc.query, path)
		if out == "" {
			t.Errorf("query %q printed nothing", tc.query)
		}
		if tc.want != "" && !strings.Contains(out, tc.want) {
			t.Errorf("query %q output missing %q:\n%s", tc.query, tc.want, out)
		}
	}
}

// The slo replay registers every violating job from the trace itself,
// so a run with violations yields a per-job budget table.
func TestSLOReplayRegistersJobs(t *testing.T) {
	path := writeTrace(t)
	out := runQuery(t, "slo", path)
	if !strings.Contains(out, "slo\n") || !strings.Contains(out, "alerts") {
		t.Errorf("slo replay output malformed:\n%s", out)
	}
}

func TestUnknownQueryFails(t *testing.T) {
	path := writeTrace(t)
	if err := run("bogus", path, -1, "", 0, false, 60, 0.1); err == nil {
		t.Error("unknown query accepted")
	}
}

func TestMissingTraceFails(t *testing.T) {
	if err := run("summary", filepath.Join(t.TempDir(), "absent.jsonl"), -1, "", 0, false, 60, 0.1); err == nil {
		t.Error("missing trace accepted")
	}
}
