package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clite/internal/benchmarks"
)

func writeDoc(t *testing.T, dir, name string, results []benchmarks.Result) string {
	t.Helper()
	doc := output{Mode: "test", Benchmarks: results}
	blob, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareExtrasDirections(t *testing.T) {
	or := benchmarks.Result{Extra: map[string]float64{
		"placements_per_sec":     100,
		"cache_hit_rate":         0.8,
		"bo_iters_per_placement": 50,
		"unknown_metric":         1,
	}}

	// Everything improved: no reasons.
	nr := benchmarks.Result{Extra: map[string]float64{
		"placements_per_sec":     150,
		"cache_hit_rate":         0.9,
		"bo_iters_per_placement": 40,
	}}
	rows, reasons := compareExtras(or, nr)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (unknown metrics skipped): %v", len(rows), rows)
	}
	if len(reasons) != 0 {
		t.Errorf("improvements flagged as regressions: %v", reasons)
	}

	// Throughput down 30%, hit rate down 30%, BO effort up 30%: all
	// three cross the 20% gate in their worse direction.
	nr = benchmarks.Result{Extra: map[string]float64{
		"placements_per_sec":     70,
		"cache_hit_rate":         0.56,
		"bo_iters_per_placement": 65,
	}}
	_, reasons = compareExtras(or, nr)
	if len(reasons) != 3 {
		t.Errorf("reasons = %v, want all three gated extras", reasons)
	}

	// Within tolerance: -10% throughput passes.
	nr = benchmarks.Result{Extra: map[string]float64{"placements_per_sec": 90}}
	_, reasons = compareExtras(or, nr)
	if len(reasons) != 0 {
		t.Errorf("10%% drop flagged: %v", reasons)
	}
}

func TestRunCompareGatesExtras(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeDoc(t, dir, "old.json", []benchmarks.Result{{
		Name: "FleetPlace", NsPerOp: 1000,
		Extra: map[string]float64{"placements_per_sec": 100},
	}})

	// Same ns/op but collapsed throughput: the extras gate must fail
	// the compare even though the built-in metrics pass.
	newPath := writeDoc(t, dir, "new.json", []benchmarks.Result{{
		Name: "FleetPlace", NsPerOp: 1000,
		Extra: map[string]float64{"placements_per_sec": 40},
	}})
	err := runCompare(oldPath, newPath)
	if err == nil || !strings.Contains(err.Error(), "FleetPlace") {
		t.Errorf("collapsed throughput not gated: %v", err)
	}

	okPath := writeDoc(t, dir, "ok.json", []benchmarks.Result{{
		Name: "FleetPlace", NsPerOp: 1100,
		Extra: map[string]float64{"placements_per_sec": 95},
	}})
	if err := runCompare(oldPath, okPath); err != nil {
		t.Errorf("within-tolerance run failed: %v", err)
	}
}
