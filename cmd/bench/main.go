// Command bench runs the hot-path benchmark suite and serializes the
// results as JSON, one file per mode:
//
//	bench -legacy -o BENCH_baseline.json   # sequential / from-scratch-refit paths
//	bench -o BENCH_after.json              # incremental / pooled / parallel paths
//
// The classic `go test -bench` lines are printed to stdout as well, so
// two runs can be diffed with benchstat. `make bench` produces both
// files.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"clite/internal/benchmarks"
)

type output struct {
	Mode    string              `json:"mode"`
	GoOS    string              `json:"goos"`
	GoArch  string              `json:"goarch"`
	NumCPU  int                 `json:"num_cpu"`
	Results []benchmarks.Result `json:"results"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run() error {
	legacy := flag.Bool("legacy", false, "drive the sequential/refit code paths (baseline mode)")
	quick := flag.Bool("quick", false, "tiny problem sizes, fixed repetitions (smoke mode)")
	out := flag.String("o", "", "write JSON results to this file (default stdout)")
	flag.Parse()

	mode := "after"
	if *legacy {
		mode = "baseline"
	}
	results := benchmarks.Run(benchmarks.Config{Legacy: *legacy, Quick: *quick})
	for _, r := range results {
		fmt.Println(r.GoBenchLine())
	}

	doc := output{
		Mode:    mode,
		GoOS:    runtime.GOOS,
		GoArch:  runtime.GOARCH,
		NumCPU:  runtime.NumCPU(),
		Results: results,
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	return os.WriteFile(*out, blob, 0o644)
}
