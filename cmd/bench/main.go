// Command bench runs the hot-path benchmark suite and serializes the
// results as JSON, one file per mode:
//
//	bench -legacy -o BENCH_baseline.json   # sequential / from-scratch-refit paths
//	bench -o BENCH_after.json              # incremental / pooled / parallel paths
//
// The classic `go test -bench` lines are printed to stdout as well, so
// two runs can be diffed with benchstat. `make bench` produces both
// files. Two result files can also be diffed directly:
//
//	bench -compare BENCH_baseline.json BENCH_after.json
//
// which prints a Δ% table per benchmark and exits non-zero when any
// shared benchmark regressed by more than 20% ns/op — the CI guard
// against silently losing a past optimization.
//
// -telemetry attaches a live tracer and metrics registry to the
// telemetry-capable benches; the flag is recorded in the JSON so
// -compare refuses to diff an instrumented run against an
// uninstrumented one. -cpuprofile and -memprofile write pprof profiles
// of the suite run for drilling into whatever the numbers surface.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"

	"clite/internal/benchmarks"
	"clite/internal/par"
)

// regressionTolerance is the fractional regression -compare accepts
// before failing, applied to ns/op, allocs/op, and bytes/op alike.
const regressionTolerance = 0.20

// Absolute noise floors for the allocation gates: a relative gate
// alone would fail 3→4 allocs/op (+33%) or a few hundred bytes of
// jitter, so a regression must clear both the relative tolerance and
// these absolute increases to count.
const (
	allocsNoiseFloor = 16   // allocs/op
	bytesNoiseFloor  = 2048 // B/op
)

// gatedExtras names the Result.Extra metrics -compare gates alongside
// ns/op, allocs/op, and bytes/op, with the direction that counts as
// better. Extras absent from either file are skipped — not every
// benchmark reports every metric.
var gatedExtras = []struct {
	name         string
	higherBetter bool
}{
	{"placements_per_sec", true},
	{"cache_hit_rate", true},
	{"bo_iters_per_placement", false},
}

// output is the result-file schema. Field order is the serialization
// order (encoding/json follows struct declaration order), so external
// tooling can rely on a stable layout: run metadata first, then the
// top-level "benchmarks" array in suite order.
type output struct {
	Mode       string              `json:"mode"`
	GoOS       string              `json:"goos"`
	GoArch     string              `json:"goarch"`
	NumCPU     int                 `json:"num_cpu"`
	GoMaxProcs int                 `json:"gomaxprocs"`
	Workers    int                 `json:"workers"`
	Telemetry  bool                `json:"telemetry"`
	GitRev     string              `json:"git_revision,omitempty"`
	Benchmarks []benchmarks.Result `json:"benchmarks"`

	// LegacyResults absorbs the pre-rename "results" key so -compare
	// and -perftable still read old baseline files; it is never
	// written (load folds it into Benchmarks).
	LegacyResults []benchmarks.Result `json:"results,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run() error {
	legacy := flag.Bool("legacy", false, "drive the sequential/refit code paths (baseline mode)")
	quick := flag.Bool("quick", false, "tiny problem sizes, fixed repetitions (smoke mode)")
	out := flag.String("o", "", "write JSON results to this file (default stdout)")
	compare := flag.Bool("compare", false, "compare two result files: bench -compare old.json new.json")
	perftable := flag.Bool("perftable", false, "render the README perf table: bench -perftable old.json new.json [-readme README.md]")
	readme := flag.String("readme", "", "with -perftable, splice the table into this file between the perftable markers")
	withTelemetry := flag.Bool("telemetry", false, "attach a live tracer and metrics registry to the telemetry-capable benches")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the suite run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the suite run to this file")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			return fmt.Errorf("-compare wants exactly two files, got %d args", flag.NArg())
		}
		return runCompare(flag.Arg(0), flag.Arg(1))
	}
	if *perftable {
		if flag.NArg() != 2 {
			return fmt.Errorf("-perftable wants exactly two files, got %d args", flag.NArg())
		}
		return runPerfTable(flag.Arg(0), flag.Arg(1), *readme)
	}

	mode := "after"
	workers := par.Count(0)
	if *legacy {
		mode = "baseline"
		workers = 1
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	results := benchmarks.Run(benchmarks.Config{Legacy: *legacy, Quick: *quick, Telemetry: *withTelemetry})
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	for _, r := range results {
		fmt.Println(r.GoBenchLine())
	}

	doc := output{
		Mode:       mode,
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Telemetry:  *withTelemetry,
		GitRev:     gitRevision(),
		Benchmarks: results,
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	return os.WriteFile(*out, blob, 0o644)
}

// gitRevision resolves the source revision: the build-info VCS stamp
// when the binary carries one, else a direct `git rev-parse`, else
// empty (results stay usable without provenance).
func gitRevision() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func load(path string) (output, error) {
	var doc output
	blob, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		doc.Benchmarks = doc.LegacyResults
	}
	doc.LegacyResults = nil
	return doc, nil
}

// runCompare prints a Δ% table over the benchmarks shared by both
// files and fails when any regressed beyond the tolerance. Benchmarks
// present in only one file are listed but never fail the run — suites
// grow over time and an old baseline should not block a new bench.
//
// Three built-in metrics are gated: ns/op on the relative tolerance
// alone, and allocs/op and bytes/op on the relative tolerance combined
// with an absolute noise floor (small counts make pure percentages
// meaningless — 3→4 allocs is +33% but not a regression worth failing
// CI over). Named Extra metrics (gatedExtras) are gated on the same
// relative tolerance in their better direction and printed as an
// indented Δ row under the owning benchmark.
func runCompare(oldPath, newPath string) error {
	oldDoc, err := load(oldPath)
	if err != nil {
		return err
	}
	newDoc, err := load(newPath)
	if err != nil {
		return err
	}
	if oldDoc.Telemetry != newDoc.Telemetry {
		return fmt.Errorf("refusing to compare %s (telemetry=%v) against %s (telemetry=%v): "+
			"instrumented and uninstrumented runs measure different paths",
			oldPath, oldDoc.Telemetry, newPath, newDoc.Telemetry)
	}
	oldBy := make(map[string]benchmarks.Result, len(oldDoc.Benchmarks))
	for _, r := range oldDoc.Benchmarks {
		oldBy[r.Name] = r
	}
	fmt.Printf("%-24s %14s %14s %9s %9s %9s\n",
		"benchmark", "old ns/op", "new ns/op", "Δns/op", "Δallocs", "Δbytes")
	var regressed []string
	for _, nr := range newDoc.Benchmarks {
		or, ok := oldBy[nr.Name]
		if !ok {
			fmt.Printf("%-24s %14s %14.0f %9s %9s %9s\n", nr.Name, "-", nr.NsPerOp, "new", "-", "-")
			continue
		}
		delete(oldBy, nr.Name)
		nsDelta := relDelta(or.NsPerOp, nr.NsPerOp)
		allocsDelta := relDelta(float64(or.AllocsPerOp), float64(nr.AllocsPerOp))
		bytesDelta := relDelta(float64(or.BytesPerOp), float64(nr.BytesPerOp))
		var reasons []string
		if nsDelta > regressionTolerance {
			reasons = append(reasons, "ns/op")
		}
		if allocsDelta > regressionTolerance && nr.AllocsPerOp-or.AllocsPerOp >= allocsNoiseFloor {
			reasons = append(reasons, "allocs/op")
		}
		if bytesDelta > regressionTolerance && nr.BytesPerOp-or.BytesPerOp >= bytesNoiseFloor {
			reasons = append(reasons, "bytes/op")
		}
		extraRows, extraReasons := compareExtras(or, nr)
		reasons = append(reasons, extraReasons...)
		mark := ""
		if len(reasons) > 0 {
			mark = "  REGRESSION(" + strings.Join(reasons, ",") + ")"
			regressed = append(regressed, nr.Name)
		}
		fmt.Printf("%-24s %14.0f %14.0f %+8.1f%% %+8.1f%% %+8.1f%%%s\n",
			nr.Name, or.NsPerOp, nr.NsPerOp,
			nsDelta*100, allocsDelta*100, bytesDelta*100, mark)
		for _, row := range extraRows {
			fmt.Println(row)
		}
	}
	for _, r := range oldDoc.Benchmarks {
		if _, unmatched := oldBy[r.Name]; unmatched {
			fmt.Printf("%-24s %14.0f %14s %9s %9s %9s\n", r.Name, r.NsPerOp, "-", "dropped", "-", "-")
		}
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%%: %s",
			len(regressed), regressionTolerance*100, strings.Join(regressed, ", "))
	}
	return nil
}

// compareExtras diffs the gated Extra metrics shared by one old and
// one new result, returning the indented Δ rows to print and the
// regression reasons (a gated extra moving more than the tolerance in
// its worse direction).
func compareExtras(or, nr benchmarks.Result) (rows, reasons []string) {
	for _, ge := range gatedExtras {
		ov, okOld := or.Extra[ge.name]
		nv, okNew := nr.Extra[ge.name]
		if !okOld || !okNew {
			continue
		}
		delta := relDelta(ov, nv)
		worse := delta < -regressionTolerance
		if !ge.higherBetter {
			worse = delta > regressionTolerance
		}
		mark := ""
		if worse {
			mark = "  REGRESSION"
			reasons = append(reasons, ge.name)
		}
		rows = append(rows, fmt.Sprintf("  %-22s %14.3f %14.3f %+8.1f%%%s",
			ge.name, ov, nv, delta*100, mark))
	}
	return rows, reasons
}

// Markers bounding the generated table in README.md; everything
// between them is owned by `make perftable` and overwritten on regen.
const (
	perftableBegin = "<!-- perftable:begin (generated by `make perftable` — do not edit by hand) -->"
	perftableEnd   = "<!-- perftable:end -->"
)

// runPerfTable renders the README performance table from a baseline
// and an after result file. With readmePath empty the markdown goes to
// stdout; otherwise it replaces the block between the perftable
// markers in that file, which is how `make perftable` keeps the README
// numbers from drifting away from BENCH_after.json.
func runPerfTable(oldPath, newPath, readmePath string) error {
	oldDoc, err := load(oldPath)
	if err != nil {
		return err
	}
	newDoc, err := load(newPath)
	if err != nil {
		return err
	}
	oldBy := make(map[string]benchmarks.Result, len(oldDoc.Benchmarks))
	for _, r := range oldDoc.Benchmarks {
		oldBy[r.Name] = r
	}
	var sb strings.Builder
	sb.WriteString("| benchmark | baseline | after | time | allocs/op |\n")
	sb.WriteString("|---|---|---|---|---|\n")
	for _, nr := range newDoc.Benchmarks {
		or, ok := oldBy[nr.Name]
		if !ok {
			fmt.Fprintf(&sb, "| `%s` | — | %s | — | %d |\n",
				nr.Name, humanNs(nr.NsPerOp), nr.AllocsPerOp)
			continue
		}
		speedup := "—"
		if nr.NsPerOp > 0 {
			speedup = fmt.Sprintf("**%.1f×**", or.NsPerOp/nr.NsPerOp)
		}
		fmt.Fprintf(&sb, "| `%s` | %s | %s | %s | %d → %d |\n",
			nr.Name, humanNs(or.NsPerOp), humanNs(nr.NsPerOp),
			speedup, or.AllocsPerOp, nr.AllocsPerOp)
	}
	table := sb.String()
	if readmePath == "" {
		_, err := os.Stdout.WriteString(table)
		return err
	}
	blob, err := os.ReadFile(readmePath)
	if err != nil {
		return err
	}
	text := string(blob)
	begin := strings.Index(text, perftableBegin)
	end := strings.Index(text, perftableEnd)
	if begin < 0 || end < 0 || end < begin {
		return fmt.Errorf("%s: perftable markers not found or out of order", readmePath)
	}
	spliced := text[:begin+len(perftableBegin)] + "\n" + table + text[end:]
	return os.WriteFile(readmePath, []byte(spliced), 0o644)
}

// humanNs renders a ns/op figure with the unit a human would pick.
func humanNs(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2f ms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1f µs", ns/1e3)
	default:
		return fmt.Sprintf("%.0f ns", ns)
	}
}

// relDelta is the fractional change from before to after, 0 when there
// is no before value to compare against.
func relDelta(before, after float64) float64 {
	if before <= 0 {
		return 0
	}
	return (after - before) / before
}
