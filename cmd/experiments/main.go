// Command experiments regenerates the tables and figures of the CLITE
// paper's evaluation (Sec. 5) on the simulated testbed.
//
// Usage:
//
//	experiments -experiment fig7          # one experiment
//	experiments -experiment all           # everything (minutes)
//	experiments -experiment fig7 -full    # paper-resolution grids
//	experiments -list                     # show the experiment index
//
// Output goes to stdout; redirect to capture (the EXPERIMENTS.md
// numbers were produced this way).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"clite"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	id := flag.String("experiment", "", "experiment id (see -list), or 'all'")
	full := flag.Bool("full", false, "paper-resolution grids instead of the quick coarse ones")
	seed := flag.Int64("seed", 1, "random seed")
	list := flag.Bool("list", false, "list experiments and exit")
	parallel := flag.Int("parallel", 0, "experiment workers: 0 = NumCPU, 1 = sequential")
	flag.Parse()

	if *list || *id == "" {
		fmt.Println("experiments (use -experiment <id>):")
		for _, e := range clite.Experiments() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Brief)
		}
		return nil
	}

	cfg := clite.ExperimentConfig{Seed: *seed, Coarse: !*full}
	var exps []clite.Experiment
	if *id == "all" {
		exps = clite.Experiments()
	} else {
		e, err := clite.LookupExperiment(*id)
		if err != nil {
			return err
		}
		exps = []clite.Experiment{e}
	}

	// Experiments fan out over the worker pool; results print in the
	// registry's paper order whatever the completion order.
	start := time.Now()
	for _, res := range clite.RunExperiments(exps, cfg, *parallel) {
		if res.Err != nil {
			return fmt.Errorf("%s: %w", res.ID, res.Err)
		}
		for _, t := range res.Tables {
			fmt.Println(t)
		}
		fmt.Printf("[%s completed]\n\n", res.ID)
	}
	fmt.Printf("[%d experiment(s) in %.1fs]\n", len(exps), time.Since(start).Seconds())
	return nil
}
