// Benchmarks regenerating every table and figure of the paper's
// evaluation (Sec. 5), one per experiment, at coarse (benchmark)
// resolution — run `go test -bench=. -benchmem` and read the reported
// time as "cost to regenerate this figure". cmd/experiments produces
// the full-resolution versions. Micro-benchmarks for the hot
// components (GP fit/predict, acquisition maximization, observation
// windows, ORACLE sweeps) sit at the bottom.
package clite_test

import (
	"testing"

	"clite"
	"clite/internal/bo"
	"clite/internal/gp"
	"clite/internal/optimize"
	"clite/internal/resource"
	"clite/internal/stats"
)

// benchExperiment runs one harness experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := clite.LookupExperiment(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tables, err := exp.Run(clite.ExperimentConfig{Seed: 1, Coarse: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
	}
}

func BenchmarkTable1Resources(b *testing.B)      { benchExperiment(b, "table1") }
func BenchmarkTable2Testbed(b *testing.B)        { benchExperiment(b, "table2") }
func BenchmarkTable3Workloads(b *testing.B)      { benchExperiment(b, "table3") }
func BenchmarkFig6QoSCurves(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkFig7Colocation(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8ColocationWithBG(b *testing.B) { benchExperiment(b, "fig8") }
func BenchmarkFig9aAllocation(b *testing.B)      { benchExperiment(b, "fig9a") }
func BenchmarkFig9bConvergence(b *testing.B)     { benchExperiment(b, "fig9b") }
func BenchmarkFig10LCPerformance(b *testing.B)   { benchExperiment(b, "fig10") }
func BenchmarkFig11Variability(b *testing.B)     { benchExperiment(b, "fig11") }
func BenchmarkFig12BGHeatmap(b *testing.B)       { benchExperiment(b, "fig12") }
func BenchmarkFig13BGPerformance(b *testing.B)   { benchExperiment(b, "fig13") }
func BenchmarkFig14MultiBG(b *testing.B)         { benchExperiment(b, "fig14") }
func BenchmarkFig15aOverhead(b *testing.B)       { benchExperiment(b, "fig15a") }
func BenchmarkFig15bQualityTrace(b *testing.B)   { benchExperiment(b, "fig15b") }
func BenchmarkFig16DynamicLoad(b *testing.B)     { benchExperiment(b, "fig16") }
func BenchmarkAblationDesignChoices(b *testing.B) {
	benchExperiment(b, "ablation")
}

// BenchmarkDOEComparison regenerates the Sec. 5.2 FFD/RSM comparison.
func BenchmarkDOEComparison(b *testing.B) { benchExperiment(b, "doe") }

// BenchmarkCLITERun measures one full controller invocation on the
// quickstart mix — the end-to-end unit of Fig. 15's overhead story.
func BenchmarkCLITERun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := clite.NewMachine(int64(i))
		if _, err := m.AddLC("memcached", 0.2); err != nil {
			b.Fatal(err)
		}
		if _, err := m.AddLC("img-dnn", 0.1); err != nil {
			b.Fatal(err)
		}
		if _, err := m.AddBG("streamcluster"); err != nil {
			b.Fatal(err)
		}
		ctrl := clite.NewController(m, clite.Options{BO: clite.BOOptions{Seed: int64(i)}})
		if _, err := ctrl.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObservationWindow measures the simulated cost of one
// observation window (the evaluation step of Algorithm 1).
func BenchmarkObservationWindow(b *testing.B) {
	m := clite.NewMachine(1)
	if _, err := m.AddLC("memcached", 0.3); err != nil {
		b.Fatal(err)
	}
	if _, err := m.AddLC("masstree", 0.2); err != nil {
		b.Fatal(err)
	}
	if _, err := m.AddBG("canneal"); err != nil {
		b.Fatal(err)
	}
	cfg := resource.EqualSplit(m.Topology(), 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Observe(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGPFit measures one per-iteration surrogate update at the
// paper's typical sample count (~50 samples, 15 dimensions), both
// ways: "incremental" extends the retained Cholesky factor of every
// hyperparameter grid point by one row and re-selects by marginal
// likelihood (the engine's steady-state path, O(grid·n²));
// "refit" rebuilds the whole grid from scratch the way every iteration
// used to (O(grid·n³)).
func BenchmarkGPFit(b *testing.B) {
	rng := stats.NewRNG(1)
	const n, window, dim = 50, 10, 15
	xs := make([][]float64, n+window)
	ys := make([]float64, n+window)
	for i := range xs {
		xs[i] = make([]float64, dim)
		for d := range xs[i] {
			xs[i][d] = rng.Float64()
		}
		ys[i] = rng.Float64()
	}
	b.Run("incremental", func(b *testing.B) {
		pool, err := gp.NewPool("matern52", 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := pool.Condition(xs[:n], ys[:n]); err != nil {
			b.Fatal(err)
		}
		i := n
		b.ResetTimer()
		for k := 0; k < b.N; k++ {
			if i == n+window {
				// Re-seed the window so steady state stays at n≈50.
				b.StopTimer()
				if err := pool.Condition(xs[:n], ys[:n]); err != nil {
					b.Fatal(err)
				}
				i = n
				b.StartTimer()
			}
			if err := pool.Observe(xs[i], ys[i]); err != nil {
				b.Fatal(err)
			}
			i++
			if _, err := pool.Best(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("refit", func(b *testing.B) {
		for k := 0; k < b.N; k++ {
			if _, err := gp.FitMLEWorkers("matern52", xs[:n], ys[:n], 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGPPredict measures one posterior evaluation, the inner-loop
// cost of acquisition maximization.
func BenchmarkGPPredict(b *testing.B) {
	rng := stats.NewRNG(2)
	const n, dim = 40, 15
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = make([]float64, dim)
		for d := range xs[i] {
			xs[i][d] = rng.Float64()
		}
		ys[i] = rng.Float64()
	}
	model, err := gp.FitMLE("matern52", xs, ys)
	if err != nil {
		b.Fatal(err)
	}
	probe := make([]float64, dim)
	for d := range probe {
		probe[d] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := model.Predict(probe); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAcquisitionMaximize measures one constrained EI
// maximization over the full partition polytope (Eq. 4–6).
func BenchmarkAcquisitionMaximize(b *testing.B) {
	topo := resource.Default()
	const nJobs = 3
	target := resource.EqualSplit(topo, nJobs).Vector()
	objective := func(x []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - target[i]
			s -= d * d
		}
		return s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		optimize.Maximize(optimize.Problem{
			Topo: topo, NJobs: nJobs,
			Objective: objective,
			FrozenJob: -1,
			RNG:       stats.NewRNG(int64(i)),
		})
	}
}

// BenchmarkOracleSweep measures the offline brute-force baseline the
// paper calls infeasible online (1000s of configurations).
func BenchmarkOracleSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := clite.NewMachine(1)
		if _, err := m.AddLC("memcached", 0.2); err != nil {
			b.Fatal(err)
		}
		if _, err := m.AddLC("img-dnn", 0.1); err != nil {
			b.Fatal(err)
		}
		if _, err := m.AddBG("streamcluster"); err != nil {
			b.Fatal(err)
		}
		p, _ := clite.PolicyByName("ORACLE", 1)
		if _, err := p.Run(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScoreFunction measures the Eq. 3 evaluation itself.
func BenchmarkScoreFunction(b *testing.B) {
	m := clite.NewMachine(3)
	if _, err := m.AddLC("memcached", 0.3); err != nil {
		b.Fatal(err)
	}
	if _, err := m.AddBG("swaptions"); err != nil {
		b.Fatal(err)
	}
	obs, err := m.ObserveIdeal(resource.EqualSplit(m.Topology(), 2))
	if err != nil {
		b.Fatal(err)
	}
	jobs := m.Jobs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clite.Score(jobs, obs)
	}
}

// BenchmarkBOEngineIteration isolates one engine loop turn (fit +
// acquisition + candidate selection) via a tiny cheap objective.
func BenchmarkBOEngineIteration(b *testing.B) {
	topo := resource.Small()
	eval := func(cfg resource.Config) (bo.Evaluation, error) {
		var s float64
		for _, a := range cfg.Jobs {
			s += float64(a[0])
		}
		return bo.Evaluation{Score: s / 20, JobPerf: []float64{1, 1}}, nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bo.Run(topo, 2, eval, bo.Options{Seed: int64(i), MaxIterations: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

var sinkTables []clite.ExperimentTable

// Example of regenerating a figure programmatically (also keeps the
// table-rendering path exercised under -bench).
func BenchmarkTableRendering(b *testing.B) {
	exp, err := clite.LookupExperiment("table3")
	if err != nil {
		b.Fatal(err)
	}
	tables, err := exp.Run(clite.ExperimentConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		for _, t := range tables {
			n += len(t.String())
		}
	}
	if n == 0 {
		b.Fatal("no output")
	}
	sinkTables = tables
}
