package clite_test

import (
	"testing"

	"clite/internal/benchmarks"
)

// TestObsOverhead is the observability plane's cost contract
// (DESIGN.md §15): tapping the SLO store onto a telemetry-enabled
// CLITERun must land within 5%, and feeding a fleet's epoch barrier
// into a store must land within 10% of the detached run. Wall time is
// wall time, so each gate retries before declaring a regression.
func TestObsOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead measurement skipped in -short mode")
	}
	gates := []struct {
		name      string
		tolerance float64
		measure   func(quick bool) (off, on benchmarks.Result)
	}{
		{"CLITERun", 0.05, benchmarks.ObsOverheadCLITE},
		{"FleetPlace", 0.10, benchmarks.ObsOverheadFleet},
	}
	for _, g := range gates {
		g := g
		t.Run(g.name, func(t *testing.T) {
			var offNs, onNs float64
			for attempt := 0; attempt < 3; attempt++ {
				off, on := g.measure(true)
				offNs, onNs = off.NsPerOp, on.NsPerOp
				if offNs <= 0 {
					t.Fatalf("bad detached measurement: %v ns/op", offNs)
				}
				if onNs <= offNs*(1+g.tolerance) {
					return
				}
			}
			t.Errorf("obs overhead on %s above %.0f%%: detached %.0f ns/op, attached %.0f ns/op (%+.1f%%)",
				g.name, g.tolerance*100, offNs, onNs, 100*(onNs-offNs)/offNs)
		})
	}
}
