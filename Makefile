# Tier-1 verification: everything must build, vet clean, and pass the
# full test suite under the race detector (the concurrent cluster
# reschedule path is exercised by TestRescheduleIsDeterministic).
.PHONY: tier1 build vet test race bench

tier1: build vet race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench . -benchtime 1x -run '^$$' .
