# Tier-1 verification: everything must build, vet clean, pass the full
# test suite under the race detector (the concurrent cluster reschedule
# path is exercised by TestRescheduleIsDeterministic; the parallel
# optimization paths by the byte-identity tests), and keep the
# benchmark harness runnable (benchsmoke).
.PHONY: tier1 build vet test race bench benchsmoke benchcompare benchfigs

tier1: build vet race benchsmoke

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# bench regenerates the before/after evidence files: baseline drives
# the retained sequential/refit paths, after the incremental/parallel
# ones. Compare with benchstat or diff the JSON.
bench:
	go run ./cmd/bench -legacy -o BENCH_baseline.json
	go run ./cmd/bench -o BENCH_after.json

# benchsmoke is the -short-guarded quick pass over the same suite —
# including the cluster placement pipeline (profile cache, admission
# pre-filter, concurrent screening) in both its legacy and cached
# modes.
benchsmoke:
	go test -short -run TestBenchSmoke .

# benchcompare diffs the two evidence files and exits non-zero when
# any shared benchmark regressed more than 20% ns/op.
benchcompare:
	go run ./cmd/bench -compare BENCH_baseline.json BENCH_after.json

# benchfigs times regenerating every paper figure once.
benchfigs:
	go test -bench . -benchtime 1x -run '^$$' .
