# Tier-1 verification: everything must build, vet clean, pass the
# custom static-analysis suite (lint: determinism, error-wrapping and
# telemetry-contract analyzers, DESIGN.md §11), pass the full test
# suite under the race detector (the concurrent cluster reschedule
# path is exercised by TestRescheduleIsDeterministic; the parallel
# optimization paths by the byte-identity tests), keep the benchmark
# harness runnable (benchsmoke), and keep the telemetry layer cheap
# (teleoverhead: CLITERun with tracing on within 5% of off).
.PHONY: tier1 build vet lint lint-diff test race bench benchsmoke benchcompare benchfigs perftable teleoverhead trace fuzzsmoke chaossmoke fleetsmoke obssmoke

tier1: build vet lint race benchsmoke teleoverhead fleetsmoke obssmoke

build:
	go build ./...

vet:
	go vet ./...

# lint runs the repo's own analyzers (cmd/lint multichecker over
# internal/analysis: detrand, dettaint, maporder, parcapture,
# emitorder, errwrap, telnil, floateq) and fails on any unsuppressed
# finding or when a rule's //lint:allow count exceeds the checked-in
# lint.baseline budget. Suppressions are site-by-site
# `//lint:allow <rule> <reason>` directives with a mandatory reason;
# the run warms the per-package fact cache that `make lint-diff`
# reads. `-suppressions` prints the full ledger.
lint:
	go run ./cmd/lint -baseline lint.baseline -cache .lintcache ./...

# lint-diff is the fast PR loop: re-analyze only packages changed
# since the ref (default origin/main), reassembling the rest of the
# cross-package taint graph from the fact cache.
LINT_DIFF_REF ?= origin/main
lint-diff:
	go run ./cmd/lint -diff $(LINT_DIFF_REF) -cache .lintcache ./...

test:
	go test ./...

race:
	go test -race ./...

# bench regenerates the before/after evidence files: baseline drives
# the retained sequential/refit paths, after the incremental/parallel
# ones. Compare with benchstat or diff the JSON.
bench:
	go run ./cmd/bench -legacy -o BENCH_baseline.json
	go run ./cmd/bench -o BENCH_after.json

# benchsmoke is the -short-guarded quick pass over the same suite —
# including the cluster placement pipeline (profile cache, admission
# pre-filter, concurrent screening) in both its legacy and cached
# modes.
benchsmoke:
	go test -short -run TestBenchSmoke .

# benchcompare diffs the two evidence files and exits non-zero when
# any shared benchmark regressed more than 20% in ns/op, or in
# allocs/op / bytes/op past their absolute noise floors.
benchcompare:
	go run ./cmd/bench -compare BENCH_baseline.json BENCH_after.json

# perftable regenerates the README performance table in place from the
# two evidence files, so the prose numbers cannot drift away from the
# recorded measurements.
perftable:
	go run ./cmd/bench -perftable -readme README.md BENCH_baseline.json BENCH_after.json

# teleoverhead measures CLITERun with telemetry off and on under the
# standard benchmark driver and fails when the enabled path costs more
# than 5% — the telemetry layer's cost contract.
teleoverhead:
	go test -run TestTelemetryOverhead .

# trace produces a sample JSONL telemetry timeline (plus the metrics
# registry dump) from the quickstart co-location run.
trace:
	go run ./cmd/clite -lc memcached:0.3 -lc img-dnn:0.2 -bg streamcluster -trace trace.jsonl -metrics

# fuzzsmoke gives each native fuzz target a few seconds from its
# seeded corpus: profile mix-key canonicalization (quantize/Store/
# LookupNear round-trip), linalg Cholesky append-vs-refit
# byte-identity, blocked-vs-scalar Cholesky byte-identity, the lint
# //lint:allow directive grammar, and the fact-cache codec round trip.
fuzzsmoke:
	go test -run '^$$' -fuzz FuzzMixKeyRoundTrip -fuzztime 5s ./internal/profile
	go test -run '^$$' -fuzz FuzzCholAppendVsRefit -fuzztime 5s ./internal/linalg
	go test -run '^$$' -fuzz FuzzBlockedCholVsScalar -fuzztime 5s ./internal/linalg
	go test -run '^$$' -fuzz FuzzDirectiveParse -fuzztime 5s ./internal/analysis
	go test -run '^$$' -fuzz FuzzFactCacheRoundTrip -fuzztime 5s ./internal/analysis

# chaossmoke runs the failover experiment's coarse sweep (scheduled
# leader death, a 25% per-command death rate, quorum loss) and fails
# if any scenario commits a decision that diverges from the
# uninterrupted single-controller reference run, never completes a
# failover, or survives quorum loss without degrading to read-only.
chaossmoke:
	go test -run TestChaosSmoke ./internal/harness

# fleetsmoke streams a small seeded fleet (128 nodes, 2 shards) and
# fails on any QoS divergence: every LC placement must report QoSOK,
# and the decision log and telemetry trace must be byte-identical
# whether one shard or several did the placing.
fleetsmoke:
	go test -run 'TestFleetSmoke|TestFleetShardInvariance' ./internal/fleet

# obssmoke gates the observability plane's contracts: a seeded
# fleet's SLO ledger, status block, cell table and alert stream must
# be byte-identical whether 1, 2 or 4 shards placed; the serving SLO
# surfaces must be byte-identical across cluster screening worker
# counts; the tsq trace query engine must answer every query mode on
# a freshly generated trace; and attaching the plane must cost ≤5% on
# CLITERun and ≤10% on FleetPlace.
obssmoke:
	go test -run 'TestObsSmoke|TestObsShardInvariance' ./internal/fleet
	go test -run TestObsScreenWorkerInvariance ./internal/cluster
	go test ./cmd/tsq
	go test -run TestObsOverhead .

# benchfigs times regenerating every paper figure once.
benchfigs:
	go test -bench . -benchtime 1x -run '^$$' .
