//go:build race

package clite_test

// raceEnabled reports whether the race detector is compiled in; its
// runtime adds measurement noise that exact allocation-count checks
// must sidestep.
const raceEnabled = true
