package clite_test

import (
	"testing"

	"clite"
)

// TestPublicAPIQuickstart exercises the documented quick-start flow
// end to end through the public facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	m := clite.NewMachine(42)
	if _, err := m.AddLC("memcached", 0.2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddLC("img-dnn", 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddBG("streamcluster"); err != nil {
		t.Fatal(err)
	}
	ctrl := clite.NewController(m, clite.Options{BO: clite.BOOptions{Seed: 42, MaxIterations: 20}})
	res, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplesUsed == 0 || res.Best.NumJobs() != 3 {
		t.Fatalf("unexpected result: %+v", res)
	}
	if err := res.Best.Validate(m.Topology()); err != nil {
		t.Fatal(err)
	}
	if got := clite.Score(m.Jobs(), res.BestObs); got != res.BestScore {
		t.Errorf("Score facade disagrees: %v vs %v", got, res.BestScore)
	}
}

func TestWorkloadCatalog(t *testing.T) {
	lc := clite.LCWorkloads()
	bg := clite.BGWorkloads()
	if len(lc) != 5 || len(bg) != 6 {
		t.Fatalf("catalog: %d LC, %d BG; want 5 and 6 (Table 3)", len(lc), len(bg))
	}
	cal, err := clite.Calibrate(lc[0])
	if err != nil {
		t.Fatal(err)
	}
	if cal.MaxQPS <= 0 || cal.QoSTarget <= 0 {
		t.Fatalf("bad calibration: %+v", cal)
	}
	if _, err := clite.Calibrate("swaptions"); err == nil {
		t.Error("calibrating a BG workload should fail")
	}
}

func TestPolicyRegistry(t *testing.T) {
	if len(clite.Baselines(1)) != 5 {
		t.Error("expected 5 baseline policies")
	}
	for _, name := range []string{"CLITE", "PARTIES", "Heracles", "RAND+", "GENETIC", "ORACLE"} {
		if _, ok := clite.PolicyByName(name, 1); !ok {
			t.Errorf("policy %q not resolvable", name)
		}
	}
	if _, ok := clite.PolicyByName("bogus", 1); ok {
		t.Error("unknown policy should not resolve")
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := clite.Experiments()
	if len(exps) != 24 {
		t.Fatalf("expected 24 experiments, got %d", len(exps))
	}
	if _, err := clite.LookupExperiment("fig7"); err != nil {
		t.Error(err)
	}
	if _, err := clite.LookupExperiment("fig99"); err == nil {
		t.Error("unknown experiment should error")
	}
	// The static tables render instantly; check end to end.
	for _, id := range []string{"table1", "table2", "table3"} {
		e, err := clite.LookupExperiment(id)
		if err != nil {
			t.Fatal(err)
		}
		tables, err := e.Run(clite.ExperimentConfig{Seed: 1, Coarse: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			t.Errorf("%s rendered empty", id)
		}
	}
}

func TestDefaultTopologyAndSpecAgree(t *testing.T) {
	topo := clite.DefaultTopology()
	spec := clite.DefaultSpec()
	if topo[0].Units != spec.LogicalCores {
		t.Errorf("core units %d != spec logical cores %d", topo[0].Units, spec.LogicalCores)
	}
	m := clite.NewCustomMachine(topo, spec, 7)
	if m.Spec().L3Ways != 11 {
		t.Error("custom machine should carry the spec")
	}
}
