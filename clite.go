// Package clite is a from-scratch Go reproduction of CLITE (Patel &
// Tiwari, HPCA 2020): a Bayesian-Optimization-based multi-resource
// partitioning controller that co-locates multiple latency-critical
// (LC) jobs with throughput-oriented background (BG) jobs on one
// server, meeting every LC job's p95 QoS target while maximizing BG
// performance.
//
// Because the paper's testbed (Intel CAT/MBA, Tailbench, PARSEC) is
// hardware, this module ships a faithful simulated substrate: a
// chip-multiprocessor machine with five partitionable resources,
// analytic workload models that reproduce the paper's
// resource-equivalence-class behaviour, queueing-based tail latency
// with measurement noise, and simulated isolation actuators. The CLITE
// controller, the baselines it is evaluated against (PARTIES,
// Heracles, RAND+, GENETIC, ORACLE), and a harness that regenerates
// every table and figure of the paper's evaluation all run on top.
//
// Quick start:
//
//	m := clite.NewMachine(42)
//	m.AddLC("memcached", 0.3) // 30% of its calibrated max load
//	m.AddLC("img-dnn", 0.2)
//	m.AddBG("streamcluster")
//	ctrl := clite.NewController(m, clite.Options{})
//	res, err := ctrl.Run()
//
// See examples/ for runnable scenarios and cmd/experiments for the
// paper reproduction.
package clite

import (
	"io"

	"clite/internal/bo"
	"clite/internal/cluster"
	"clite/internal/core"
	"clite/internal/doe"
	"clite/internal/faults"
	"clite/internal/fleet"
	"clite/internal/harness"
	"clite/internal/obs"
	"clite/internal/policies"
	"clite/internal/profile"
	"clite/internal/qos"
	"clite/internal/replica"
	"clite/internal/resource"
	"clite/internal/server"
	"clite/internal/telemetry"
	"clite/internal/workload"
)

// Machine is the simulated CMP server hosting co-located jobs.
type Machine = server.Machine

// Spec describes the simulated hardware (the paper's Table 2).
type Spec = server.Spec

// Observation is one observation window's per-job measurements.
type Observation = server.Observation

// Job is one co-located job instance.
type Job = server.Job

// Topology is the machine's set of partitionable resources.
type Topology = resource.Topology

// Config is a complete resource partition (one allocation per job).
type Config = resource.Config

// Controller is the CLITE controller bound to a machine.
type Controller = core.Controller

// Result is the outcome of a CLITE invocation.
type Result = core.Result

// Options configures the controller; the zero value reproduces the
// paper's setup.
type Options = core.Options

// BOOptions tunes the underlying Bayesian-optimization engine.
type BOOptions = bo.Options

// Policy is a co-location scheduling scheme (CLITE or a baseline).
type Policy = policies.Policy

// PolicyResult is the uniform outcome of running any policy.
type PolicyResult = policies.Result

// Calibration is an LC workload's isolation profile (knee-derived QoS
// target and maximum load, Fig. 6).
type Calibration = qos.Calibration

// NewMachine returns a simulated machine with the paper's Table 2
// configuration. The seed drives measurement noise; the same seed
// reproduces identical experiments.
func NewMachine(seed int64) *Machine {
	return server.New(resource.Default(), server.DefaultSpec(), seed)
}

// NewCustomMachine builds a machine over a custom topology and spec.
func NewCustomMachine(topo Topology, spec Spec, seed int64) *Machine {
	return server.New(topo, spec, seed)
}

// DefaultTopology returns the paper's five partitionable resources
// (cores, LLC ways, memory bandwidth, memory capacity, disk bandwidth)
// at testbed granularity.
func DefaultTopology() Topology { return resource.Default() }

// DefaultSpec returns the Table 2 hardware description.
func DefaultSpec() Spec { return server.DefaultSpec() }

// Observer is the observation contract the controller runs against: a
// Machine directly, or a fault injector wrapping one.
type Observer = server.Observer

// Resilience tunes the controller's hardening against observation
// failures, corrupted measurements, and node loss. The zero value
// leaves hardening off (the baseline controller).
type Resilience = core.Resilience

// FaultPlan configures deterministic fault injection over a machine's
// observation interface: transient window failures, corrupted-outlier
// measurements, partial actuator enforcement, and whole-node failure
// at a scheduled simulated time. The zero value injects nothing.
type FaultPlan = faults.Plan

// FaultInjector wraps a machine with a FaultPlan; it satisfies
// Observer and counts what it injected.
type FaultInjector = faults.Injector

// FaultCounts tallies the faults an injector delivered.
type FaultCounts = faults.Counts

// InjectFaults wraps a machine in a fault injector. An empty plan
// returns the machine itself, so the wrapper costs nothing when off;
// an invalid plan (negative/NaN rates, negative death times) is
// rejected with an error matching ErrInvalidFaultPlan.
func InjectFaults(m *Machine, plan FaultPlan) (Observer, error) {
	return faults.Wrap(m, plan)
}

// ErrInvalidFaultPlan marks a fault plan whose fields cannot describe
// a fault distribution; check with errors.Is.
var ErrInvalidFaultPlan = faults.ErrInvalidPlan

// NewController binds a CLITE controller to an observation source — a
// machine, or a fault injector around one.
func NewController(m Observer, opts Options) *Controller {
	return core.New(m, opts)
}

// Score evaluates the paper's Eq. 3 objective for an observation over
// the given jobs.
func Score(jobs []Job, obs Observation) float64 {
	return core.ScoreObservation(jobs, obs)
}

// Calibrate profiles an LC workload in isolation and returns its
// QPS-vs-p95 curve, knee QoS target, and maximum load.
func Calibrate(workloadName string) (Calibration, error) {
	p, err := workload.ByName(workloadName)
	if err != nil {
		return Calibration{}, err
	}
	return qos.Calibrate(p, resource.Default())
}

// LCWorkloads lists the latency-critical workload names (Table 3).
func LCWorkloads() []string {
	var names []string
	for _, p := range workload.LC() {
		names = append(names, p.Name)
	}
	return names
}

// BGWorkloads lists the background workload names (Table 3).
func BGWorkloads() []string {
	var names []string
	for _, p := range workload.BG() {
		names = append(names, p.Name)
	}
	return names
}

// CLITEPolicy returns CLITE wrapped as a Policy for side-by-side
// comparison with the baselines.
func CLITEPolicy(seed int64) Policy {
	return policies.CLITE{BO: bo.Options{Seed: seed}}
}

// Baselines returns the paper's comparison policies: PARTIES,
// Heracles, RAND+, GENETIC, and the offline ORACLE.
func Baselines(seed int64) []Policy {
	return []Policy{
		policies.PARTIES{},
		policies.Heracles{},
		policies.RandPlus{Seed: seed},
		policies.Genetic{Seed: seed},
		policies.Oracle{},
	}
}

// PolicyByName resolves a policy by its display name ("CLITE",
// "PARTIES", "Heracles", "RAND+", "GENETIC", "ORACLE").
func PolicyByName(name string, seed int64) (Policy, bool) {
	all := append([]Policy{CLITEPolicy(seed)}, Baselines(seed)...)
	for _, p := range all {
		if p.Name() == name {
			return p, true
		}
	}
	return nil, false
}

// Scheduler places a stream of job requests across a pool of
// simulated nodes, using per-node CLITE runs for admission control
// (the warehouse-scale layer of the paper's motivation).
type Scheduler = cluster.Scheduler

// SchedulerOptions sizes and seeds a cluster scheduler.
type SchedulerOptions = cluster.Options

// JobRequest asks the scheduler to place one job.
type JobRequest = cluster.Request

// NodePlacement reports where a request landed.
type NodePlacement = cluster.Placement

// ErrUnplaceable is returned when no node can host a request within
// QoS; the job belongs on another rack.
var ErrUnplaceable = cluster.ErrUnplaceable

// SchedulerStats is the placement pipeline's work ledger: what the
// profile cache, admission pre-filter, and screening runs did — and
// avoided — across the request stream.
type SchedulerStats = cluster.Stats

// ProfileCache memoizes co-location screening outcomes by canonical
// job mix and carries the per-workload solo profiles behind the
// analytical admission pre-filter. Pass one through
// SchedulerOptions.SharedProfiles to pool what several scheduler
// generations (or domains) learned.
type ProfileCache = profile.Cache

// NewProfileCache builds an empty co-location profile cache over the
// default topology.
func NewProfileCache() *ProfileCache { return profile.NewCache(resource.Default()) }

// NewScheduler builds a multi-node scheduler.
func NewScheduler(opts SchedulerOptions) *Scheduler { return cluster.New(opts) }

// NodeSnapshot is one node's jobs and health in a cluster snapshot.
type NodeSnapshot = cluster.NodeInfo

// RehomeOutcome reports what happened to one job drained from a failed
// node: the survivor that absorbed it, or ErrUnplaceable.
type RehomeOutcome = cluster.Outcome

// Fleet simulates warehouse-scale streaming placement: arrivals and
// departures from a deterministic traffic shape flow onto thousands
// of nodes carved into fixed cells, placed concurrently by scheduler
// shards with byte-identical decisions at every shard count.
type Fleet = fleet.Fleet

// FleetOptions sizes, seeds, and shapes a fleet simulation.
type FleetOptions = fleet.Options

// FleetSummary reports one fleet run: the arrival/placement ledger,
// the aggregated pipeline counters, and the committed decision log.
type FleetSummary = fleet.Summary

// FleetDecision is one committed placement of the fleet's decision
// log — the unit of the shard-count byte-identity contract.
type FleetDecision = fleet.Decision

// FleetTraffic configures the fleet's arrival stream.
type FleetTraffic = fleet.Traffic

// FleetShape names a deterministic traffic shape.
type FleetShape = fleet.Shape

// The fleet's traffic shapes: a sinusoidal day/night cycle, on/off
// flash crowds, and bounded-Pareto heavy-tailed renewal traffic.
const (
	FleetDiurnal   = fleet.ShapeDiurnal
	FleetBursty    = fleet.ShapeBursty
	FleetHeavyTail = fleet.ShapeHeavyTail
)

// FleetJobSpec is one weighted entry of a fleet traffic menu.
type FleetJobSpec = fleet.JobSpec

// FleetDeathPlan schedules whole-node deaths across a simulated
// fleet; the fleet rehomes the displaced jobs.
type FleetDeathPlan = faults.FleetPlan

// NewFleet builds a fleet simulation; run it once with Run.
func NewFleet(opts FleetOptions) (*Fleet, error) { return fleet.New(opts) }

// ReplicaGroup is a replicated control plane over 2+ identical
// scheduler replicas: the leader sequences a command log, every live
// replica applies it, and decision digests are cross-checked so a
// determinism violation surfaces as an error instead of silent
// divergence. Leader failover runs on a simulated-time lease; quorum
// loss degrades the group to read-only.
type ReplicaGroup = replica.Group

// ReplicaGroupOptions configures a replica group (size, per-replica
// scheduler options, lease, control-fault plan, telemetry sinks).
type ReplicaGroupOptions = replica.Options

// ReplicaClient wraps a group with capped-exponential-backoff retry on
// retryable control-plane errors and a simulated-time request budget.
type ReplicaClient = replica.Client

// ReplicaBackoff is the deterministic capped-exponential retry
// schedule shared by the in-process client and clited's HTTP client.
type ReplicaBackoff = replica.Backoff

// ReplicaStatus is a point-in-time view of a group's health.
type ReplicaStatus = replica.Status

// ReplicaDecision is one committed control-plane decision with its
// canonical digest.
type ReplicaDecision = replica.Decision

// ControlFaultPlan injects control-plane faults into a replica group:
// scheduled or rate-driven leader deaths, RPC loss and delay.
type ControlFaultPlan = faults.ControlPlan

// Replica-group error conditions, all checkable with errors.Is.
var (
	// ErrDegraded marks a write rejected after quorum loss; the group
	// keeps serving reads from its last committed snapshot.
	ErrDegraded = replica.ErrDegraded
	// ErrNoLeader marks a submission during a pending election;
	// retrying after the lease expires succeeds.
	ErrNoLeader = replica.ErrNoLeader
	// ErrReplicaRPCLost marks a submission dropped in flight; the
	// command was never sequenced and retrying is safe.
	ErrReplicaRPCLost = replica.ErrRPCLost
	// ErrReplicaDivergence marks replicas committing different
	// decisions for the same log entry (a broken determinism contract).
	ErrReplicaDivergence = replica.ErrDivergence
	// ErrReplicaTimeout marks a client request that exhausted its
	// retry budget without committing.
	ErrReplicaTimeout = replica.ErrTimeout
)

// NewReplicaGroup builds a replicated control plane and elects
// replica 0 as the initial leader.
func NewReplicaGroup(opts ReplicaGroupOptions) (*ReplicaGroup, error) {
	return replica.NewGroup(opts)
}

// RetryableReplicaError reports whether a replica-group error is
// transient (RPC loss, election pending): the command did not commit
// and a retry with backoff can succeed.
func RetryableReplicaError(err error) bool { return replica.Retryable(err) }

// DesignSpacePolicies returns the Sec. 5.2 design-space-exploration
// comparators (FFD and RSM) as policies.
func DesignSpacePolicies(seed int64) []Policy {
	return []Policy{doe.FFD{Seed: seed}, doe.RSM{Seed: seed}}
}

// Experiment is one reproducible table/figure from the paper.
type Experiment = harness.Experiment

// ExperimentConfig scales experiment grids (Coarse for quick runs).
type ExperimentConfig = harness.Config

// ExperimentTable is a rendered experiment result.
type ExperimentTable = harness.Table

// Experiments lists every reproducible table and figure.
func Experiments() []Experiment { return harness.Experiments() }

// LookupExperiment finds an experiment by id ("fig7", "table1", ...).
func LookupExperiment(id string) (Experiment, error) { return harness.Lookup(id) }

// ExperimentResult is one experiment's outcome from RunExperiments.
type ExperimentResult = harness.ExperimentResult

// RunExperiments executes experiments across a bounded worker pool
// (workers 0 means NumCPU, 1 sequential), returning results in input
// order regardless of completion order.
func RunExperiments(exps []Experiment, cfg ExperimentConfig, workers int) []ExperimentResult {
	return harness.RunAll(exps, cfg, workers)
}

// Tracer records a deterministic, monotonic-step event timeline (BO
// iterations, observation windows, QoS violations, placement phases,
// fault injections, resilience actions). A nil Tracer discards all
// events at zero cost, so instrumented code needs no guards.
type Tracer = telemetry.Tracer

// TraceEvent is one entry in a Tracer's timeline.
type TraceEvent = telemetry.Event

// MetricsRegistry is an allocation-light registry of named counters,
// gauges, and histograms, safe for concurrent use. A nil registry
// hands out nil handles whose methods discard at zero cost.
type MetricsRegistry = telemetry.Registry

// MetricSample is one metric in a registry snapshot.
type MetricSample = telemetry.Metric

// NewTracer returns an empty trace timeline.
func NewTracer() *Tracer { return telemetry.NewTracer() }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *MetricsRegistry { return telemetry.NewRegistry() }

// WithTelemetry returns a copy of opts with the trace and metrics
// sinks attached; the controller propagates both into the BO engine,
// the machine's observation path, and any fault injector it runs over.
// Either argument may be nil to enable just the other.
func WithTelemetry(opts Options, tr *Tracer, reg *MetricsRegistry) Options {
	opts.Trace = tr
	opts.Metrics = reg
	return opts
}

// MetricsSnapshot returns the registry's current contents, sorted by
// metric name. A nil registry yields an empty snapshot.
func MetricsSnapshot(reg *MetricsRegistry) []MetricSample {
	if reg == nil {
		return nil
	}
	return reg.Snapshot()
}

// MetricsSummary renders the registry as an aligned two-column table,
// optionally filtered to metric-name prefixes (e.g. "cluster_").
func MetricsSummary(reg *MetricsRegistry, prefixes ...string) string {
	if reg == nil {
		return ""
	}
	return reg.Summary(prefixes...)
}

// MetricsPrometheus renders the registry in the Prometheus text
// exposition format.
func MetricsPrometheus(reg *MetricsRegistry) string {
	if reg == nil {
		return ""
	}
	return reg.PrometheusText()
}

// SLOStore is the deterministic SLO observability plane: a windowed
// time-series store with error-budget burn-rate alerting, fed from a
// tracer tap (Sink + Tracer.SetTap) and the fleet's epoch barrier
// (FleetOptions.Obs). See DESIGN.md §15.
type SLOStore = obs.Store

// SLOOptions configures an SLOStore; the zero value uses the package
// defaults (1s buckets, 60s windows, 10% budget, burn threshold 2).
type SLOOptions = obs.Options

// SLO is one subject's objective: p95 target, assessment window, and
// error budget.
type SLO = obs.SLO

// SLOEpochRecord is one line of the per-epoch fleet SLO ledger.
type SLOEpochRecord = obs.EpochRecord

// CellSample is one per-cell (or per-node) rollup delta fed to an
// SLOStore via ObserveCells.
type CellSample = obs.CellSample

// TraceQuery is the indexed span model over a recorded or tailed
// JSONL trace (per-placement critical paths, violation timelines,
// fault-to-recovery spans) behind cmd/tsq.
type TraceQuery = obs.Query

// NewSLOStore returns an empty SLO store.
func NewSLOStore(opts SLOOptions) *SLOStore { return obs.NewStore(opts) }

// LoadTrace reads a JSONL event stream into a trace query engine.
func LoadTrace(r io.Reader) (*TraceQuery, error) { return obs.Load(r) }
