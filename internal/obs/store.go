package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"

	"clite/internal/telemetry"
)

// bucket is one ring slot: the unit ("good window") and violation
// counts observed during one BucketSeconds-wide slice of simulated
// time. idx is the absolute bucket index (at / BucketSeconds); a slot
// whose idx does not match the index being read is stale and counts
// as empty, which is what lets one fixed ring serve an unbounded
// timeline without ever reallocating.
type bucket struct {
	idx  int64
	good int64
	bad  int64
}

// series is one SLO subject's state: its ring of buckets, lifetime
// totals, and the burn-alert machine.
type series struct {
	kind string // "job", "cell", "fleet", "windows"
	id   int    // job or cell index; -1 for aggregates
	name string // display label ("job:memcached", "cell:3", ...)
	slo  SLO

	ring  []bucket
	width float64 // bucket seconds

	units  int64 // lifetime good+bad
	bad    int64 // lifetime bad
	lastAt float64
	maxIdx int64 // newest absolute bucket index written

	// Per-cell rollup accumulators (fed by ObserveCells).
	placed, rejected        int64
	cacheHits, cacheLookups int64
	boIterations, screens   int64

	// Job-only: last violating p95 seen (0 until the first violation).
	lastP95 float64

	// Burn-alert machine.
	alerts      int
	lastAlertAt float64
	burnActive  bool
	exhausted   bool
	firstBadAt  float64 // start of the current bad episode; -1 when clean
	ttaSum      float64 // Σ (alert time − episode start), for mean time-to-alert
	ttaN        int

	// Last evaluation, surfaced in statuses.
	burnFast, burnSlow, consumed float64
}

func newSeries(kind string, id int, name string, slo SLO, opts Options) *series {
	return &series{
		kind: kind, id: id, name: name,
		slo:        slo.withDefaults(),
		ring:       make([]bucket, opts.Buckets),
		width:      opts.BucketSeconds,
		maxIdx:     -1,
		firstBadAt: -1,
	}
}

// add credits good and bad units to the bucket containing simulated
// time at. Times are clamped monotone: merged traces interleave
// trial-machine clocks that restart at zero (cluster screening), so a
// backwards at is pulled up to the newest time seen, keeping the ring
// append-only and the stream's effect deterministic.
func (s *series) add(at float64, good, bad int64) float64 {
	if at < s.lastAt {
		at = s.lastAt
	}
	s.lastAt = at
	ib := int64(at / s.width)
	if ib < s.maxIdx {
		ib = s.maxIdx
	}
	s.maxIdx = ib
	slot := &s.ring[int(ib%int64(len(s.ring)))]
	if slot.idx != ib {
		*slot = bucket{idx: ib}
	}
	slot.good += good
	slot.bad += bad
	s.units += good + bad
	s.bad += bad
	if bad > 0 && s.firstBadAt < 0 {
		s.firstBadAt = at
	}
	return at
}

// window sums units and violations over the w simulated seconds
// ending at the newest bucket. It walks only the buckets the window
// spans, not the whole ring.
func (s *series) window(w float64) (units, bad int64) {
	if s.maxIdx < 0 {
		return 0, 0
	}
	n := int64(w / s.width)
	if n < 1 {
		n = 1
	}
	if n > int64(len(s.ring)) {
		n = int64(len(s.ring))
	}
	for i := s.maxIdx - n + 1; i <= s.maxIdx; i++ {
		if i < 0 {
			continue
		}
		b := s.ring[int(i%int64(len(s.ring)))]
		if b.idx != i {
			continue
		}
		units += b.good + b.bad
		bad += b.bad
	}
	return units, bad
}

// evaluate recomputes the burn rates at simulated time at and runs
// the alert machine, returning any alert events to record. A subject
// alerts when both the fast and the slow window burn at or above
// BurnThreshold (and the slow window holds at least MinSlowUnits
// units); it re-arms when the fast window cools below the threshold,
// the standard hysteresis so a sustained burn yields one alert, not
// one per window.
func (s *series) evaluate(at float64, opts Options) []telemetry.Event {
	uFast, bFast := s.window(s.slo.Window * opts.FastFraction)
	uSlow, bSlow := s.window(s.slo.Window)
	s.burnFast = burnRate(bFast, uFast, s.slo.Budget)
	s.burnSlow = burnRate(bSlow, uSlow, s.slo.Budget)
	s.consumed = 0
	if uSlow > 0 {
		s.consumed = float64(bSlow) / (s.slo.Budget * float64(uSlow))
	}

	var evs []telemetry.Event
	hot := uSlow >= int64(opts.MinSlowUnits) &&
		s.burnFast >= opts.BurnThreshold && s.burnSlow >= opts.BurnThreshold
	if hot {
		if !s.burnActive {
			s.burnActive = true
			s.alerts++
			s.lastAlertAt = at
			if s.firstBadAt >= 0 {
				s.ttaSum += at - s.firstBadAt
				s.ttaN++
			}
			evs = append(evs, telemetry.SLOBurnAlert(at, s.name, s.id, s.burnFast, s.burnSlow))
		}
	} else if s.burnFast < opts.BurnThreshold {
		s.burnActive = false
		s.firstBadAt = -1
	}
	if s.consumed >= 1 {
		if !s.exhausted {
			s.exhausted = true
			evs = append(evs, telemetry.BudgetExhausted(at, s.name, s.id, s.consumed))
		}
	} else {
		s.exhausted = false
	}
	return evs
}

// burnRate is badFraction ÷ budget: 1 spends the budget exactly at
// the window's end, >1 spends it early. Zero units burn nothing.
func burnRate(bad, units int64, budget float64) float64 {
	if units == 0 {
		return 0
	}
	return float64(bad) / float64(units) / budget
}

// EpochRecord is one line of the fleet SLO ledger, appended per
// ObserveCells call carrying a non-negative epoch.
type EpochRecord struct {
	Epoch          int
	At             float64
	Placed         int
	Violations     int
	Rejected       int
	BurnFast       float64 // fleet-aggregate fast-window burn after this epoch
	BurnSlow       float64
	BudgetConsumed float64
	Alerts         int // alerts fired (all subjects) at this barrier
}

// Store is the windowed time-series store at the center of the
// observability plane. Feed it through Sink (hang it on a tracer with
// SetTap), ObserveCells (fleet epoch barrier), and BindRegistry
// (metrics rollups); read it through the status accessors, the epoch
// ledger, the alert stream, and the Format* text renderers.
//
// The store locks itself; Sink runs under the tracer's lock and never
// calls back into the tracer (alerts are recorded internally), so the
// only lock order is tracer → store.
type Store struct {
	mu   sync.Mutex
	opts Options

	jobs     map[int]*series
	jobOrder []int // registration order, the deterministic iteration order
	cells    []*series
	fleet    *series
	windows  *series // machine-wide observation-window stream

	pendingBad map[int]bool // jobs that violated in the window being measured

	alerts     []telemetry.Event
	ledger     []EpochRecord
	epochs     int
	lastAt     float64
	reg        *telemetry.Registry
	lastAlerts int // alerts emitted during the current ObserveCells call
}

// NewStore returns an empty store with opts' defaults applied.
func NewStore(opts Options) *Store {
	o := opts.withDefaults()
	return &Store{
		opts:       o,
		jobs:       make(map[int]*series),
		pendingBad: make(map[int]bool),
		fleet:      newSeries("fleet", -1, "fleet", o.SLO, o),
		windows:    newSeries("windows", -1, "windows", o.SLO, o),
	}
}

// BindRegistry attaches a metrics registry for snapshot-derived
// rollups (p95 latency via interpolated histogram quantiles, cache
// hit rate, BO iterations per placement). Optional; nil detaches.
func (s *Store) BindRegistry(reg *telemetry.Registry) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.reg = reg
	s.mu.Unlock()
}

// RegisterJob declares an LC job as an SLO subject. Job registration
// is for single-machine streams, where QoSViolation/ObservationWindow
// events carry this machine's job indices; cluster and fleet streams
// interleave trial-machine indices and should use ObserveCells
// instead. Zero SLO fields default (Window 60s, Budget 0.1).
func (s *Store) RegisterJob(job int, name string, slo SLO) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[job]; ok {
		s.jobs[job].slo = slo.withDefaults()
		if name != "" {
			s.jobs[job].name = "job:" + name
		}
		return
	}
	label := fmt.Sprintf("job:%d", job)
	if name != "" {
		label = "job:" + name
	}
	s.jobs[job] = newSeries("job", job, label, slo, s.opts)
	s.jobOrder = append(s.jobOrder, job)
}

// RegisterCells declares n cells (indices 0..n-1) as SLO subjects
// with the default SLO. ObserveCells auto-grows past n, so this only
// fixes the initial shape.
func (s *Store) RegisterCells(n int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.growCells(n)
	s.mu.Unlock()
}

func (s *Store) growCells(n int) {
	for len(s.cells) < n {
		i := len(s.cells)
		s.cells = append(s.cells, newSeries("cell", i, fmt.Sprintf("cell:%d", i), s.opts.SLO, s.opts))
	}
}

// Sink returns the event-ingestion function to hang on a tracer via
// SetTap. It reacts to per-job QoS violations and observation
// windows; every other kind passes through untouched. The server
// emits a window's QoSViolation events before the ObservationWindow
// event itself, so the sink buffers pending violations and settles
// them — one unit per registered job, bad if pending — when the
// window event arrives.
func (s *Store) Sink() func(telemetry.Event) {
	if s == nil {
		return func(telemetry.Event) {}
	}
	return s.observe
}

func (s *Store) observe(ev telemetry.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch ev.Kind {
	case telemetry.KindQoSViolation:
		if js := s.jobs[ev.Job]; js != nil {
			s.pendingBad[ev.Job] = true
			js.lastP95 = ev.Value
		}
	case telemetry.KindObservationWindow:
		for _, id := range s.jobOrder {
			js := s.jobs[id]
			var good, bad int64 = 1, 0
			if s.pendingBad[id] {
				good, bad = 0, 1
				delete(s.pendingBad, id)
			}
			at := js.add(ev.At, good, bad)
			s.record(js.evaluate(at, s.opts))
		}
		var good, bad int64 = 1, 0
		if !ev.OK {
			good, bad = 0, 1
		}
		at := s.windows.add(ev.At, good, bad)
		s.record(s.windows.evaluate(at, s.opts))
		if at > s.lastAt {
			s.lastAt = at
		}
	}
}

// ObserveCells ingests one epoch's per-cell rollup deltas at the
// fleet's sequential barrier (or a daemon's per-placement feed with
// epoch -1, which skips the ledger). Samples must arrive in a
// deterministic order; the fleet feeds them in cell order.
func (s *Store) ObserveCells(at float64, epoch int, samples []CellSample) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastAlerts = 0
	var placed, violations, rejected int64
	for _, cs := range samples {
		s.growCells(cs.Cell + 1)
		c := s.cells[cs.Cell]
		c.placed += int64(cs.Placed)
		c.rejected += int64(cs.Rejected)
		c.cacheHits += int64(cs.CacheHits)
		c.cacheLookups += int64(cs.CacheLookups)
		c.boIterations += int64(cs.BOIterations)
		c.screens += int64(cs.Screens)
		good := int64(cs.Placed - cs.Violations)
		if good < 0 {
			good = 0
		}
		cat := c.add(at, good, int64(cs.Violations))
		s.record(c.evaluate(cat, s.opts))
		placed += int64(cs.Placed)
		violations += int64(cs.Violations)
		rejected += int64(cs.Rejected)
	}
	s.fleet.placed += placed
	s.fleet.rejected += rejected
	good := placed - violations
	if good < 0 {
		good = 0
	}
	fat := s.fleet.add(at, good, violations)
	s.record(s.fleet.evaluate(fat, s.opts))
	if fat > s.lastAt {
		s.lastAt = fat
	}
	if epoch >= 0 {
		s.epochs++
		s.ledger = append(s.ledger, EpochRecord{
			Epoch: epoch, At: at,
			Placed: int(placed), Violations: int(violations), Rejected: int(rejected),
			BurnFast: s.fleet.burnFast, BurnSlow: s.fleet.burnSlow,
			BudgetConsumed: s.fleet.consumed,
			Alerts:         s.lastAlerts,
		})
	}
}

// record appends alert events to the store's alert stream, stamping
// their Step with the stream's own sequence.
func (s *Store) record(evs []telemetry.Event) {
	for _, ev := range evs {
		ev.Step = int64(len(s.alerts)) + 1
		s.alerts = append(s.alerts, ev)
		s.lastAlerts++
	}
}

// JobStatus is one registered job's SLO standing.
type JobStatus struct {
	Job             int
	Name            string
	SLO             SLO
	Windows         int64 // lifetime units
	Violations      int64
	ViolationRate   float64
	LastP95         float64 // last violating p95 (0: never violated)
	Headroom        float64 // Target − LastP95 (Target when never violated)
	BurnFast        float64
	BurnSlow        float64
	BudgetConsumed  float64
	Alerts          int
	LastAlertAt     float64
	MeanTimeToAlert float64 // mean simulated seconds from episode start to alert
}

// CellStatus is one cell's rollup and SLO standing.
type CellStatus struct {
	Cell                int
	Placed              int64
	Rejected            int64
	Violations          int64
	ViolationRate       float64
	CacheHitRate        float64
	BOItersPerPlacement float64
	Screens             int64
	BurnFast            float64
	BurnSlow            float64
	BudgetConsumed      float64
	Alerts              int
}

// FleetStatus is the fleet-aggregate standing.
type FleetStatus struct {
	Epochs          int
	Placed          int64
	Rejected        int64
	Violations      int64
	ViolationRate   float64
	BurnFast        float64
	BurnSlow        float64
	BudgetConsumed  float64
	Alerts          int
	LastAlertAt     float64
	MeanTimeToAlert float64
}

func rate(bad, units int64) float64 {
	if units == 0 {
		return 0
	}
	return float64(bad) / float64(units)
}

// JobStatuses returns registered jobs' standings in registration
// order.
func (s *Store) JobStatuses() []JobStatus {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.jobOrder))
	for _, id := range s.jobOrder {
		js := s.jobs[id]
		st := JobStatus{
			Job: id, Name: strings.TrimPrefix(js.name, "job:"), SLO: js.slo,
			Windows: js.units, Violations: js.bad, ViolationRate: rate(js.bad, js.units),
			LastP95: js.lastP95, Headroom: js.slo.Target,
			BurnFast: js.burnFast, BurnSlow: js.burnSlow, BudgetConsumed: js.consumed,
			Alerts: js.alerts, LastAlertAt: js.lastAlertAt,
		}
		if js.lastP95 > 0 {
			st.Headroom = js.slo.Target - js.lastP95
		}
		if js.ttaN > 0 {
			st.MeanTimeToAlert = js.ttaSum / float64(js.ttaN)
		}
		out = append(out, st)
	}
	return out
}

// CellStatuses returns cell standings in cell order.
func (s *Store) CellStatuses() []CellStatus {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]CellStatus, 0, len(s.cells))
	for _, c := range s.cells {
		st := CellStatus{
			Cell: c.id, Placed: c.placed, Rejected: c.rejected,
			Violations: c.bad, ViolationRate: rate(c.bad, c.units),
			CacheHitRate: rate(c.cacheHits, c.cacheLookups),
			Screens:      c.screens,
			BurnFast:     c.burnFast, BurnSlow: c.burnSlow, BudgetConsumed: c.consumed,
			Alerts: c.alerts,
		}
		if c.placed > 0 {
			st.BOItersPerPlacement = float64(c.boIterations) / float64(c.placed)
		}
		out = append(out, st)
	}
	return out
}

// FleetStatus returns the fleet-aggregate standing.
func (s *Store) FleetStatus() FleetStatus {
	if s == nil {
		return FleetStatus{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.fleet
	st := FleetStatus{
		Epochs: s.epochs, Placed: f.placed, Rejected: f.rejected,
		Violations: f.bad, ViolationRate: rate(f.bad, f.units),
		BurnFast: f.burnFast, BurnSlow: f.burnSlow, BudgetConsumed: f.consumed,
		Alerts: f.alerts, LastAlertAt: f.lastAlertAt,
	}
	if f.ttaN > 0 {
		st.MeanTimeToAlert = f.ttaSum / float64(f.ttaN)
	}
	return st
}

// WindowsStatus returns the machine-wide observation-window subject's
// standing as a JobStatus with Job = -1.
func (s *Store) WindowsStatus() JobStatus {
	if s == nil {
		return JobStatus{Job: -1}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.windows
	st := JobStatus{
		Job: -1, Name: "windows", SLO: w.slo,
		Windows: w.units, Violations: w.bad, ViolationRate: rate(w.bad, w.units),
		BurnFast: w.burnFast, BurnSlow: w.burnSlow, BudgetConsumed: w.consumed,
		Alerts: w.alerts, LastAlertAt: w.lastAlertAt,
	}
	if w.ttaN > 0 {
		st.MeanTimeToAlert = w.ttaSum / float64(w.ttaN)
	}
	return st
}

// Ledger returns a copy of the per-epoch SLO ledger.
func (s *Store) Ledger() []EpochRecord {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]EpochRecord(nil), s.ledger...)
}

// Alerts returns a copy of the typed alert stream (SLOBurnAlert and
// BudgetExhausted events) in emission order.
func (s *Store) Alerts() []telemetry.Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]telemetry.Event(nil), s.alerts...)
}

// AlertCount returns the number of alert events without copying.
func (s *Store) AlertCount() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.alerts)
}

// WriteAlertsJSONL writes the alert stream as one JSON event per
// line — the same encoding as telemetry.WriteJSONL, so tsq can load
// it.
func (s *Store) WriteAlertsJSONL(w io.Writer) error {
	for _, ev := range s.Alerts() {
		b, err := json.Marshal(ev)
		if err != nil {
			return fmt.Errorf("obs: encode alert: %w", err)
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return fmt.Errorf("obs: write alert: %w", err)
		}
	}
	return nil
}

// RegistryRollup is the metrics-snapshot-derived view: what the bound
// registry says about latency, caching, and optimizer effort. Fields
// are zero when the registry lacks the metric.
type RegistryRollup struct {
	P95                 float64 // server_p95_seconds 95th percentile, interpolated
	Windows             int64   // server_windows_total
	Violations          int64   // server_qos_violations_total
	CacheHitRate        float64 // cluster cache hits ÷ (hits + misses)
	BOItersPerPlacement float64 // cluster_bo_iterations_total ÷ cluster_placements_total
}

// Rollup computes the registry-derived rollup (zero when no registry
// is bound).
func (s *Store) Rollup() RegistryRollup {
	if s == nil {
		return RegistryRollup{}
	}
	s.mu.Lock()
	reg := s.reg
	s.mu.Unlock()
	if reg == nil {
		return RegistryRollup{}
	}
	var r RegistryRollup
	var hits, near, misses, placements, boIters float64
	for _, m := range reg.Snapshot() {
		switch m.Name {
		case "server_p95_seconds":
			r.P95 = m.Quantile(0.95)
		case "server_windows_total":
			r.Windows = int64(m.Value)
		case "server_qos_violations_total":
			r.Violations = int64(m.Value)
		case "cluster_cache_hits_total":
			hits = m.Value
		case "cluster_cache_near_hits_total":
			near = m.Value
		case "cluster_cache_misses_total":
			misses = m.Value
		case "cluster_placements_total":
			placements = m.Value
		case "cluster_bo_iterations_total":
			boIters = m.Value
		}
	}
	if hits+near+misses > 0 {
		r.CacheHitRate = (hits + near) / (hits + near + misses)
	}
	if placements > 0 {
		r.BOItersPerPlacement = boIters / placements
	}
	return r
}

// FormatSLO renders the /slo view: one line per registered job, the
// machine-wide window subject, the fleet aggregate, the registry
// rollup when bound, and the alert total. Deterministic: fixed
// iteration orders, fixed float formatting.
func (s *Store) FormatSLO() string {
	var b strings.Builder
	b.WriteString("slo\n")
	for _, j := range s.JobStatuses() {
		fmt.Fprintf(&b, "  job %d %-14s target=%.4fs window=%.0fs budget=%.2f windows=%d viol=%d rate=%.4f p95=%.4f headroom=%.4f burn=%.2f/%.2f consumed=%.3f alerts=%d\n",
			j.Job, j.Name, j.SLO.Target, j.SLO.Window, j.SLO.Budget,
			j.Windows, j.Violations, j.ViolationRate, j.LastP95, j.Headroom,
			j.BurnFast, j.BurnSlow, j.BudgetConsumed, j.Alerts)
	}
	w := s.WindowsStatus()
	fmt.Fprintf(&b, "  windows         units=%d viol=%d rate=%.4f burn=%.2f/%.2f consumed=%.3f alerts=%d\n",
		w.Windows, w.Violations, w.ViolationRate, w.BurnFast, w.BurnSlow, w.BudgetConsumed, w.Alerts)
	f := s.FleetStatus()
	if f.Epochs > 0 || f.Placed > 0 {
		fmt.Fprintf(&b, "  fleet           epochs=%d placed=%d rejected=%d viol=%d rate=%.4f burn=%.2f/%.2f consumed=%.3f alerts=%d tta=%.2fs\n",
			f.Epochs, f.Placed, f.Rejected, f.Violations, f.ViolationRate,
			f.BurnFast, f.BurnSlow, f.BudgetConsumed, f.Alerts, f.MeanTimeToAlert)
	}
	if r := s.Rollup(); r != (RegistryRollup{}) {
		fmt.Fprintf(&b, "  rollup          p95=%.4fs windows=%d viol=%d cache-hit=%.3f bo-iters/placement=%.2f\n",
			r.P95, r.Windows, r.Violations, r.CacheHitRate, r.BOItersPerPlacement)
	}
	fmt.Fprintf(&b, "  alerts          %d\n", s.AlertCount())
	return b.String()
}

// FormatCells renders the /cells view: one line per cell plus the
// fleet aggregate.
func (s *Store) FormatCells() string {
	var b strings.Builder
	b.WriteString("cells\n")
	for _, c := range s.CellStatuses() {
		fmt.Fprintf(&b, "  cell %3d placed=%d rejected=%d viol=%d rate=%.4f cache-hit=%.3f bo-iters/placement=%.2f screens=%d burn=%.2f/%.2f consumed=%.3f alerts=%d\n",
			c.Cell, c.Placed, c.Rejected, c.Violations, c.ViolationRate,
			c.CacheHitRate, c.BOItersPerPlacement, c.Screens,
			c.BurnFast, c.BurnSlow, c.BudgetConsumed, c.Alerts)
	}
	f := s.FleetStatus()
	fmt.Fprintf(&b, "  fleet    placed=%d rejected=%d viol=%d rate=%.4f burn=%.2f/%.2f consumed=%.3f alerts=%d\n",
		f.Placed, f.Rejected, f.Violations, f.ViolationRate,
		f.BurnFast, f.BurnSlow, f.BudgetConsumed, f.Alerts)
	return b.String()
}

// FormatLedger renders the per-epoch SLO ledger printed by
// `clite -fleet`.
func (s *Store) FormatLedger() string {
	var b strings.Builder
	b.WriteString("epoch      at  placed  viol  rej  burn-fast  burn-slow  consumed  alerts\n")
	for _, r := range s.Ledger() {
		fmt.Fprintf(&b, "%5d  %6.1f  %6d  %4d  %3d  %9.2f  %9.2f  %8.3f  %6d\n",
			r.Epoch, r.At, r.Placed, r.Violations, r.Rejected,
			r.BurnFast, r.BurnSlow, r.BudgetConsumed, r.Alerts)
	}
	return b.String()
}
