package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"clite/internal/telemetry"
)

// Span is one matched span-begin/span-end pair in a loaded trace,
// indexed into the nesting tree the step ordering implies: a span
// begun while another is open is its child (merged streams append
// whole cell timelines sequentially, so spans nest or are disjoint,
// never interleaved).
type Span struct {
	ID        int64
	Name      string
	Node      int
	BeginStep int64
	EndStep   int64 // 0 while still open
	N         int   // work units from the end event
	OK        bool
	Parent    int // index into Spans(); -1 for roots
	Depth     int
}

// Steps is the span's step extent — the trace-structural analogue of
// duration (the tracer records order, not wall time). Open spans
// extend to the given horizon.
func (s Span) Steps(horizon int64) int64 {
	end := s.EndStep
	if end == 0 {
		end = horizon
	}
	return end - s.BeginStep
}

// FaultRecovery is one fault-to-recovery interval: a fault-injected
// event paired with the first all-QoS-met observation window after
// it, with the resilience actions and bad windows counted in between.
// RecoveredAt is -1 when the trace ends before recovery.
type FaultRecovery struct {
	Kind        string
	FaultAt     float64
	RecoveredAt float64
	BadWindows  int
	Actions     int
}

// PlacementPath is one placement span with the pipeline-phase events
// that fired inside it, in order — the per-placement critical path
// through the admission pipeline.
type PlacementPath struct {
	Span   Span
	Phases []telemetry.Event
}

// Query is the indexed span model over a recorded or tailed trace.
// Load a whole stream with Load, or feed events incrementally with
// Append (tail mode); queries may be run at any point.
type Query struct {
	events []telemetry.Event
	spans  []Span
	open   []int // indexes of currently-open spans, innermost last
}

// NewQuery returns an empty query engine.
func NewQuery() *Query { return &Query{} }

// Load reads a JSONL event stream (telemetry.WriteJSONL's encoding)
// into a fresh query engine. Blank lines are skipped; a malformed
// line fails the load.
func Load(r io.Reader) (*Query, error) {
	q := NewQuery()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev telemetry.Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		q.Append(ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: read trace: %w", err)
	}
	return q, nil
}

// Append feeds one event, maintaining the span index — the tail-mode
// entry point.
func (q *Query) Append(ev telemetry.Event) {
	q.events = append(q.events, ev)
	switch ev.Kind {
	case telemetry.KindSpanBegin:
		parent := -1
		if len(q.open) > 0 {
			parent = q.open[len(q.open)-1]
		}
		q.spans = append(q.spans, Span{
			ID: ev.Span, Name: ev.Name, Node: ev.Node,
			BeginStep: ev.Step,
			Parent:    parent, Depth: len(q.open),
		})
		q.open = append(q.open, len(q.spans)-1)
	case telemetry.KindSpanEnd:
		// Usually the innermost open span; scan outward to tolerate
		// streams stitched from multiple tracers.
		for i := len(q.open) - 1; i >= 0; i-- {
			sp := &q.spans[q.open[i]]
			if sp.ID != ev.Span {
				continue
			}
			sp.EndStep = ev.Step
			sp.N = ev.N
			sp.OK = ev.OK
			q.open = append(q.open[:i], q.open[i+1:]...)
			break
		}
	}
}

// Len returns the number of loaded events.
func (q *Query) Len() int { return len(q.events) }

// Events returns the loaded events (shared slice; do not mutate).
func (q *Query) Events() []telemetry.Event { return q.events }

// KindCount is one entry of the per-kind event tally.
type KindCount struct {
	Kind  string
	Count int
}

// Kinds returns per-kind event counts, sorted by kind name.
func (q *Query) Kinds() []KindCount {
	counts := telemetry.CountKinds(q.events)
	out := make([]KindCount, 0, len(counts))
	for _, k := range telemetry.Kinds(q.events) {
		out = append(out, KindCount{Kind: k, Count: counts[k]})
	}
	return out
}

// Spans returns the span index (shared slice; do not mutate).
func (q *Query) Spans() []Span { return q.spans }

// Horizon is the last step seen, used to extend open spans.
func (q *Query) Horizon() int64 {
	if len(q.events) == 0 {
		return 0
	}
	return q.events[len(q.events)-1].Step
}

// Violations returns the violation timeline for one job (or every
// job with job = -1), in stream order.
func (q *Query) Violations(job int) []Violation {
	var out []Violation
	for _, ev := range q.events {
		if ev.Kind != telemetry.KindQoSViolation {
			continue
		}
		if job >= 0 && ev.Job != job {
			continue
		}
		out = append(out, Violation{At: ev.At, Job: ev.Job, P95: ev.Value, Target: ev.Aux})
	}
	return out
}

// CriticalPath returns the root-to-leaf span chain with the largest
// step extent at every level — the longest structural path through
// the trace. Ties break toward the earlier span, so the result is
// deterministic. Empty when the trace has no spans.
func (q *Query) CriticalPath() []Span {
	if len(q.spans) == 0 {
		return nil
	}
	h := q.Horizon()
	children := make([][]int, len(q.spans))
	var roots []int
	for i, sp := range q.spans {
		if sp.Parent < 0 {
			roots = append(roots, i)
		} else {
			children[sp.Parent] = append(children[sp.Parent], i)
		}
	}
	widest := func(idxs []int) int {
		best, bestSteps := -1, int64(-1)
		for _, i := range idxs {
			if st := q.spans[i].Steps(h); st > bestSteps {
				best, bestSteps = i, st
			}
		}
		return best
	}
	var path []Span
	for at := widest(roots); at >= 0; at = widest(children[at]) {
		path = append(path, q.spans[at])
	}
	return path
}

// PlacementPaths returns, for every span named name (the cluster
// pipeline uses "place"), the pipeline-phase events that fired inside
// its step interval — the per-placement path through admission.
func (q *Query) PlacementPaths(name string) []PlacementPath {
	h := q.Horizon()
	var out []PlacementPath
	for _, sp := range q.spans {
		if sp.Name != name {
			continue
		}
		end := sp.EndStep
		if end == 0 {
			end = h
		}
		p := PlacementPath{Span: sp}
		// Phase events sit between the span's begin and end steps;
		// binary-search the first candidate since events are
		// step-ordered.
		lo := sort.Search(len(q.events), func(i int) bool { return q.events[i].Step > sp.BeginStep })
		for i := lo; i < len(q.events) && q.events[i].Step < end; i++ {
			if q.events[i].Kind == telemetry.KindPlacementPhase {
				p.Phases = append(p.Phases, q.events[i])
			}
		}
		out = append(out, p)
	}
	return out
}

// FaultRecoveries pairs each fault-injected event with the first
// all-QoS-met observation window after it. Overlapping faults each
// get their own record; a clean window closes all of them. Bad
// windows and resilience actions between fault and recovery are
// counted per record.
func (q *Query) FaultRecoveries() []FaultRecovery {
	var out []FaultRecovery
	var open []int // indexes into out
	for _, ev := range q.events {
		switch ev.Kind {
		case telemetry.KindFaultInjected:
			out = append(out, FaultRecovery{Kind: ev.Name, FaultAt: ev.At, RecoveredAt: -1})
			open = append(open, len(out)-1)
		case telemetry.KindResilienceAction:
			for _, i := range open {
				out[i].Actions++
			}
		case telemetry.KindObservationWindow:
			if ev.OK {
				for _, i := range open {
					out[i].RecoveredAt = ev.At
				}
				open = open[:0]
			} else {
				for _, i := range open {
					out[i].BadWindows++
				}
			}
		}
	}
	return out
}
