// Package obs is the SLO observability plane (DESIGN.md §15): a
// deterministic, windowed view of "how close is each job to violating
// its QoS target, and is it getting worse" layered on the raw
// internal/telemetry streams.
//
// Three pieces:
//
//   - Store: a ring-buffered, simulated-time-bucketed time-series
//     store. It subscribes to a Tracer via Tracer.SetTap (per-job
//     violation and observation-window events), takes per-cell rollup
//     samples from the fleet's epoch barrier (ObserveCells), and can
//     bind a metrics Registry for latency/cache/BO rollups. Memory is
//     allocation-bounded: every subject owns one fixed ring of
//     Options.Buckets buckets and the ledger grows one small record
//     per epoch.
//
//   - SLO engine: every subject carries an SLO{Target, Window,
//     Budget}. The store computes error-budget consumption and
//     multi-window burn rates (a fast window paired with the full SLO
//     window, the classic 5m/1h shape scaled to simulated time) and
//     emits typed SLOBurnAlert / BudgetExhausted telemetry events.
//     Alerts fire at deterministic simulated times in deterministic
//     order, so the alert stream is byte-identical under a fixed seed
//     across fleet shard counts and cluster screen workers.
//
//   - Query: an indexed span model over recorded or tailed JSONL
//     traces answering structural questions — per-placement critical
//     paths, violation timelines, fault-to-recovery spans — surfaced
//     by cmd/tsq.
//
// Determinism contract. The store derives everything from simulated
// time and the tap's stream order, never wall clock. Because the
// tracer tap sees events in final (merged) stream order, and the
// fleet feeds ObserveCells at the sequential epoch barrier in cell
// order, every store output — statuses, the epoch ledger, the alert
// stream, the formatted /slo and /cells text — is a pure function of
// the event stream and is therefore byte-identical whenever the
// trace is.
package obs

// SLO is one subject's service-level objective: hold the job's p95 at
// or under Target while spending at most a Budget fraction of
// observation windows in violation, assessed over a sliding Window of
// simulated seconds.
type SLO struct {
	// Target is the p95 latency objective in seconds. Informational
	// for the burn math (the server already classifies each window
	// against the job's QoS target); surfaced in statuses.
	Target float64
	// Window is the sliding assessment window in simulated seconds.
	// Defaults to 60.
	Window float64
	// Budget is the allowed bad fraction of units inside Window — the
	// error budget. Defaults to 0.1 (10% of windows may violate).
	Budget float64
}

// withDefaults fills zero fields with the package defaults.
func (s SLO) withDefaults() SLO {
	if s.Window <= 0 {
		s.Window = 60
	}
	if s.Budget <= 0 {
		s.Budget = 0.1
	}
	return s
}

// Options configures a Store. The zero value is usable: every field
// defaults as documented.
type Options struct {
	// BucketSeconds is the ring bucket width in simulated seconds.
	// Defaults to 1.
	BucketSeconds float64
	// Buckets is the ring capacity per subject — the longest lookback,
	// in buckets, any SLO window may use. Defaults to 256.
	Buckets int
	// SLO is the default objective applied to subjects registered
	// without their own (cells, the fleet aggregate, the machine-wide
	// window stream).
	SLO SLO
	// BurnThreshold is the burn rate at or above which — in both the
	// fast and the slow window — a subject alerts. Burn rate 1 spends
	// the budget exactly at the window's end, so the default of 2
	// alerts when the budget would be gone in half the window.
	BurnThreshold float64
	// FastFraction is the fast window's size as a fraction of the SLO
	// window. Defaults to 1/12 — the 5m/1h pairing scaled to
	// simulated time.
	FastFraction float64
	// MinSlowUnits is the minimum number of units the slow window must
	// hold before a subject may alert, suppressing the startup regime
	// where one bad unit out of two reads as a catastrophic burn rate.
	// Defaults to 5.
	MinSlowUnits int
}

func (o Options) withDefaults() Options {
	if o.BucketSeconds <= 0 {
		o.BucketSeconds = 1
	}
	if o.Buckets <= 0 {
		o.Buckets = 256
	}
	o.SLO = o.SLO.withDefaults()
	if o.BurnThreshold <= 0 {
		o.BurnThreshold = 2
	}
	if o.FastFraction <= 0 || o.FastFraction > 1 {
		o.FastFraction = 1.0 / 12
	}
	if o.MinSlowUnits <= 0 {
		o.MinSlowUnits = 5
	}
	return o
}

// CellSample is one cell's rollup delta for one fleet epoch, fed to
// Store.ObserveCells at the sequential epoch barrier. Counts are
// per-epoch deltas, not lifetime totals.
type CellSample struct {
	Cell         int
	Placed       int // placements committed this epoch
	Violations   int // placements whose screening verdict was not QoS-clean
	Rejected     int // arrivals rejected by this cell
	CacheHits    int // profile-cache hits (full + near)
	CacheLookups int // profile-cache lookups
	BOIterations int // optimizer iterations spent
	Screens      int // screening runs executed
}

// Violation is one entry of a job's violation timeline (Query) — a
// window in which the job's measured p95 exceeded its target.
type Violation struct {
	At     float64
	Job    int
	P95    float64
	Target float64
}
