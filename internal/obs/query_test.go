package obs

import (
	"bytes"
	"strings"
	"testing"

	"clite/internal/telemetry"
)

// buildTrace records a small placement run: an outer place span
// holding two phases and a nested screen span, a violation, and a
// fault that recovers two windows later.
func buildTrace() *telemetry.Tracer {
	tr := telemetry.NewTracer()
	place := tr.Begin("place", 0)
	tr.Emit(telemetry.PlacementPhase("prefilter", 0, 1, true))
	screen := tr.Begin("screen", 0)
	tr.Emit(telemetry.BOIteration(0, 0.4, 0.2, 1))
	tr.Emit(telemetry.BOIteration(1, 0.1, 0.6, 2))
	tr.End("screen", 0, screen, 2, true)
	tr.Emit(telemetry.PlacementPhase("commit", 0, 1, true))
	tr.End("place", 0, place, 1, true)

	tr.Emit(telemetry.FaultInjected(3.0, "transient"))
	tr.Emit(telemetry.QoSViolation(3.5, 1, 0.0052, 0.0040))
	tr.Emit(telemetry.ObservationWindow(3.5, 1, false))
	tr.Emit(telemetry.ResilienceAction("retry", 1))
	tr.Emit(telemetry.ObservationWindow(4.5, 0, true))
	return tr
}

func loadTrace(t *testing.T, tr *telemetry.Tracer) *Query {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestLoadRoundTripAndSpans(t *testing.T) {
	tr := buildTrace()
	q := loadTrace(t, tr)
	if q.Len() != tr.Len() {
		t.Fatalf("loaded %d events, tracer has %d", q.Len(), tr.Len())
	}
	spans := q.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Name != "place" || spans[0].Parent != -1 || spans[0].Depth != 0 {
		t.Errorf("outer span: %+v", spans[0])
	}
	if spans[1].Name != "screen" || spans[1].Parent != 0 || spans[1].Depth != 1 {
		t.Errorf("nested span: %+v", spans[1])
	}
	if spans[1].EndStep == 0 || spans[1].N != 2 || !spans[1].OK {
		t.Errorf("screen end fields: %+v", spans[1])
	}
	if spans[0].Steps(q.Horizon()) <= spans[1].Steps(q.Horizon()) {
		t.Errorf("outer span not wider: %d vs %d",
			spans[0].Steps(q.Horizon()), spans[1].Steps(q.Horizon()))
	}
}

func TestCriticalPath(t *testing.T) {
	q := loadTrace(t, buildTrace())
	path := q.CriticalPath()
	if len(path) != 2 || path[0].Name != "place" || path[1].Name != "screen" {
		names := make([]string, len(path))
		for i, sp := range path {
			names[i] = sp.Name
		}
		t.Errorf("critical path = %v, want [place screen]", names)
	}
}

func TestOpenSpanExtendsToHorizon(t *testing.T) {
	tr := telemetry.NewTracer()
	tr.Begin("place", 1)
	tr.Emit(telemetry.BOIteration(0, 0.5, 0.1, 1))
	q := loadTrace(t, tr)
	sp := q.Spans()[0]
	if sp.EndStep != 0 {
		t.Fatalf("span closed unexpectedly: %+v", sp)
	}
	if got := sp.Steps(q.Horizon()); got != 1 {
		t.Errorf("open span steps = %d, want 1", got)
	}
}

func TestViolationsTimeline(t *testing.T) {
	q := loadTrace(t, buildTrace())
	all := q.Violations(-1)
	if len(all) != 1 {
		t.Fatalf("violations = %d, want 1", len(all))
	}
	v := all[0]
	if v.Job != 1 || v.At != 3.5 || v.P95 != 0.0052 || v.Target != 0.0040 {
		t.Errorf("violation = %+v", v)
	}
	if got := q.Violations(0); len(got) != 0 {
		t.Errorf("job filter leaked: %v", got)
	}
	if got := q.Violations(1); len(got) != 1 {
		t.Errorf("job filter dropped: %v", got)
	}
}

func TestPlacementPaths(t *testing.T) {
	q := loadTrace(t, buildTrace())
	paths := q.PlacementPaths("place")
	if len(paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(paths))
	}
	var names []string
	for _, ph := range paths[0].Phases {
		names = append(names, ph.Name)
	}
	if len(names) != 2 || names[0] != "prefilter" || names[1] != "commit" {
		t.Errorf("phases = %v, want [prefilter commit]", names)
	}
}

func TestFaultRecoveries(t *testing.T) {
	q := loadTrace(t, buildTrace())
	frs := q.FaultRecoveries()
	if len(frs) != 1 {
		t.Fatalf("recoveries = %d, want 1", len(frs))
	}
	fr := frs[0]
	if fr.Kind != "transient" || fr.FaultAt != 3.0 {
		t.Errorf("fault fields: %+v", fr)
	}
	if fr.RecoveredAt != 4.5 || fr.BadWindows != 1 || fr.Actions != 1 {
		t.Errorf("recovery fields: %+v", fr)
	}
}

func TestFaultUnrecovered(t *testing.T) {
	tr := telemetry.NewTracer()
	tr.Emit(telemetry.FaultInjected(1.0, "node-failure"))
	tr.Emit(telemetry.ObservationWindow(2.0, 1, false))
	q := loadTrace(t, tr)
	frs := q.FaultRecoveries()
	if len(frs) != 1 || frs[0].RecoveredAt != -1 || frs[0].BadWindows != 1 {
		t.Errorf("unrecovered fault: %+v", frs)
	}
}

func TestKindsSorted(t *testing.T) {
	q := loadTrace(t, buildTrace())
	kinds := q.Kinds()
	if len(kinds) == 0 {
		t.Fatal("no kinds")
	}
	for i := 1; i < len(kinds); i++ {
		if kinds[i-1].Kind >= kinds[i].Kind {
			t.Errorf("kinds unsorted: %v", kinds)
		}
	}
	total := 0
	for _, kc := range kinds {
		total += kc.Count
	}
	if total != q.Len() {
		t.Errorf("kind counts total %d, events %d", total, q.Len())
	}
}

func TestLoadRejectsMalformedLine(t *testing.T) {
	_, err := Load(strings.NewReader("{\"kind\":\"bo-iteration\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line-2 parse failure", err)
	}
}

// Append must keep queries usable mid-stream — the tsq -follow path.
func TestAppendIncremental(t *testing.T) {
	q := NewQuery()
	q.Append(telemetry.Event{Kind: telemetry.KindSpanBegin, Name: "place", Span: 1, Step: 1, Node: 0})
	if len(q.Spans()) != 1 || q.Spans()[0].EndStep != 0 {
		t.Fatalf("open span not indexed: %+v", q.Spans())
	}
	q.Append(telemetry.Event{Kind: telemetry.KindSpanEnd, Name: "place", Span: 1, Step: 5, N: 1, OK: true, Node: 0})
	if sp := q.Spans()[0]; sp.EndStep != 5 || !sp.OK {
		t.Errorf("span not closed: %+v", sp)
	}
}
