package obs

import (
	"bytes"
	"strings"
	"testing"

	"clite/internal/telemetry"
)

// feedWindow pushes one observation window for the machine at time at,
// preceded by violation events for the given jobs — the order the
// server emits them.
func feedWindow(sink func(telemetry.Event), at float64, badJobs ...int) {
	for _, j := range badJobs {
		sink(telemetry.QoSViolation(at, j, 0.005, 0.004))
	}
	sink(telemetry.ObservationWindow(at, 1, len(badJobs) == 0))
}

func TestSinkSettlesWindowsPerJob(t *testing.T) {
	s := NewStore(Options{})
	s.RegisterJob(0, "memcached", SLO{Target: 0.004})
	s.RegisterJob(1, "img-dnn", SLO{Target: 0.038})
	sink := s.Sink()

	feedWindow(sink, 1.0, 0) // job 0 violates
	feedWindow(sink, 2.0)    // clean
	feedWindow(sink, 3.0, 0, 1)

	js := s.JobStatuses()
	if len(js) != 2 {
		t.Fatalf("JobStatuses len = %d, want 2", len(js))
	}
	if js[0].Windows != 3 || js[0].Violations != 2 {
		t.Errorf("job 0: windows=%d viol=%d, want 3/2", js[0].Windows, js[0].Violations)
	}
	if js[1].Windows != 3 || js[1].Violations != 1 {
		t.Errorf("job 1: windows=%d viol=%d, want 3/1", js[1].Windows, js[1].Violations)
	}
	if js[0].Name != "memcached" || js[1].Name != "img-dnn" {
		t.Errorf("names = %q, %q", js[0].Name, js[1].Name)
	}
	// The machine-wide windows subject counts whole windows, not jobs.
	w := s.WindowsStatus()
	if w.Windows != 3 || w.Violations != 2 {
		t.Errorf("windows subject: units=%d viol=%d, want 3/2", w.Windows, w.Violations)
	}
	// Headroom reflects the last violating p95.
	if js[0].LastP95 != 0.005 {
		t.Errorf("job 0 LastP95 = %v", js[0].LastP95)
	}
	if got, want := js[0].Headroom, 0.004-0.005; got != want {
		t.Errorf("job 0 headroom = %v, want %v", got, want)
	}
}

// Violations for unregistered jobs must not leak into any subject —
// cluster traces interleave trial-machine job indices.
func TestSinkIgnoresUnregisteredJobs(t *testing.T) {
	s := NewStore(Options{})
	s.RegisterJob(0, "", SLO{})
	sink := s.Sink()
	feedWindow(sink, 1.0, 7) // job 7 never registered
	js := s.JobStatuses()
	if js[0].Violations != 0 || js[0].Windows != 1 {
		t.Errorf("job 0: %+v", js[0])
	}
}

// The burn machine: alert once MinSlowUnits units exist and both
// windows burn hot, stay silent while the episode persists, re-arm
// after the fast window cools, and alert again on the next episode.
func TestBurnAlertHysteresis(t *testing.T) {
	s := NewStore(Options{})
	s.RegisterJob(0, "", SLO{Target: 0.004}) // window 60 → fast window 5
	sink := s.Sink()

	burnAlerts := func() int {
		n := 0
		for _, ev := range s.Alerts() {
			if ev.Kind == telemetry.KindSLOBurnAlert && ev.Job == 0 {
				n++
			}
		}
		return n
	}

	// Four bad windows: below MinSlowUnits (5), no alert yet.
	for at := 1.0; at <= 4; at++ {
		feedWindow(sink, at, 0)
	}
	if got := burnAlerts(); got != 0 {
		t.Fatalf("alerts after 4 units = %d, want 0 (startup suppression)", got)
	}
	// Fifth bad window crosses MinSlowUnits: burn 10× in both windows.
	feedWindow(sink, 5.0, 0)
	if got := burnAlerts(); got != 1 {
		t.Fatalf("alerts after 5 bad units = %d, want 1", got)
	}
	// Sustained burn: no re-fire.
	for at := 6.0; at <= 8; at++ {
		feedWindow(sink, at, 0)
	}
	if got := burnAlerts(); got != 1 {
		t.Fatalf("alerts during sustained burn = %d, want 1", got)
	}
	// Six clean windows empty the fast window (last 5 buckets): re-arm.
	for at := 9.0; at <= 14; at++ {
		feedWindow(sink, at)
	}
	// One bad window re-heats the fast window (1/5 bad ÷ 0.1 = 2.0,
	// at the threshold) while the slow window is still hot.
	feedWindow(sink, 15.0, 0)
	if got := burnAlerts(); got != 2 {
		t.Errorf("alerts after second episode = %d, want 2", got)
	}
	st := s.JobStatuses()[0]
	if st.Alerts != 2 || st.LastAlertAt != 15.0 {
		t.Errorf("status alerts=%d lastAt=%v, want 2 at 15", st.Alerts, st.LastAlertAt)
	}
	// Both episodes alerted on their first bad window, so the mean
	// time-to-alert collapses to the episode length so far: (4+0)/2.
	if st.MeanTimeToAlert != 2.0 {
		t.Errorf("mean time-to-alert = %v, want 2.0", st.MeanTimeToAlert)
	}
}

// Budget exhaustion fires once per exhaustion episode and re-arms when
// consumption drops back under 1.
func TestBudgetExhaustedRearm(t *testing.T) {
	s := NewStore(Options{})
	s.RegisterJob(0, "", SLO{Target: 0.004, Window: 10, Budget: 0.5})
	sink := s.Sink()

	exhausted := func() int {
		n := 0
		for _, ev := range s.Alerts() {
			if ev.Kind == telemetry.KindBudgetExhausted && ev.Job == 0 {
				n++
			}
		}
		return n
	}

	// 3 bad of 4 → consumed = 3/(0.5·4) = 1.5 ≥ 1: one event.
	feedWindow(sink, 1.0, 0)
	feedWindow(sink, 2.0, 0)
	feedWindow(sink, 3.0, 0)
	feedWindow(sink, 4.0)
	if got := exhausted(); got != 1 {
		t.Fatalf("exhaustions = %d, want 1", got)
	}
	// Still exhausted: no re-fire.
	feedWindow(sink, 5.0, 0)
	if got := exhausted(); got != 1 {
		t.Fatalf("exhaustions during episode = %d, want 1", got)
	}
	// Clean windows push the bad units out of the 10 s window; once
	// consumed < 1 the machine re-arms, and a fresh bad burst re-fires.
	for at := 6.0; at <= 14; at++ {
		feedWindow(sink, at)
	}
	for at := 15.0; at <= 20; at++ {
		feedWindow(sink, at, 0)
	}
	if got := exhausted(); got != 2 {
		t.Errorf("exhaustions after second episode = %d, want 2", got)
	}
}

// Merged traces interleave trial-machine clocks that restart at zero;
// a backwards timestamp must clamp to the newest time, never rewind
// the ring.
func TestMonotoneClampOnMergedClocks(t *testing.T) {
	s := NewStore(Options{})
	s.RegisterJob(0, "", SLO{})
	sink := s.Sink()
	feedWindow(sink, 10.0, 0)
	feedWindow(sink, 0.5) // trial-machine clock restarted
	feedWindow(sink, 11.0)
	js := s.JobStatuses()[0]
	if js.Windows != 3 || js.Violations != 1 {
		t.Errorf("after clamp: windows=%d viol=%d, want 3/1", js.Windows, js.Violations)
	}
}

// The ring is fixed-size: a window wider than the ring only sees the
// newest Buckets buckets, and old slots are reused without growing.
func TestRingBounded(t *testing.T) {
	s := NewStore(Options{Buckets: 4})
	s.RegisterJob(0, "", SLO{Window: 1000})
	sink := s.Sink()
	// 10 windows, the first 6 bad — only the last 4 (all clean) are
	// still inside the ring.
	for at := 1.0; at <= 6; at++ {
		feedWindow(sink, at, 0)
	}
	for at := 7.0; at <= 10; at++ {
		feedWindow(sink, at)
	}
	js := s.JobStatuses()[0]
	if js.Windows != 10 || js.Violations != 6 {
		t.Errorf("lifetime: windows=%d viol=%d, want 10/6", js.Windows, js.Violations)
	}
	if js.BurnSlow != 0 {
		t.Errorf("slow burn = %v, want 0 (bad units aged out of the ring)", js.BurnSlow)
	}
}

func TestObserveCellsLedgerAndStatuses(t *testing.T) {
	s := NewStore(Options{})
	s.RegisterCells(2)
	s.ObserveCells(1.0, 0, []CellSample{
		{Cell: 0, Placed: 3, Violations: 1, CacheHits: 2, CacheLookups: 4, BOIterations: 30, Screens: 2},
		{Cell: 1, Placed: 2, Rejected: 1, CacheLookups: 1, BOIterations: 10, Screens: 1},
	})
	s.ObserveCells(2.0, 1, []CellSample{
		{Cell: 2, Placed: 1}, // auto-grows past RegisterCells
	})
	// Daemon-style feed: epoch -1 updates series but skips the ledger.
	s.ObserveCells(3.0, -1, []CellSample{{Cell: 0, Placed: 1}})

	led := s.Ledger()
	if len(led) != 2 {
		t.Fatalf("ledger len = %d, want 2", len(led))
	}
	if led[0].Placed != 5 || led[0].Violations != 1 || led[0].Rejected != 1 {
		t.Errorf("epoch 0 record: %+v", led[0])
	}
	if led[1].Epoch != 1 || led[1].Placed != 1 {
		t.Errorf("epoch 1 record: %+v", led[1])
	}

	cs := s.CellStatuses()
	if len(cs) != 3 {
		t.Fatalf("cells = %d, want 3", len(cs))
	}
	if cs[0].Placed != 4 || cs[0].Violations != 1 || cs[0].CacheHitRate != 0.5 {
		t.Errorf("cell 0: %+v", cs[0])
	}
	if got := cs[0].BOItersPerPlacement; got != 30.0/4 {
		t.Errorf("cell 0 bo-iters/placement = %v", got)
	}

	f := s.FleetStatus()
	if f.Epochs != 2 || f.Placed != 7 || f.Violations != 1 || f.Rejected != 1 {
		t.Errorf("fleet: %+v", f)
	}

	out := s.FormatLedger()
	if lines := strings.Count(out, "\n"); lines != 3 { // header + 2 rows
		t.Errorf("ledger lines = %d, want 3:\n%s", lines, out)
	}
	if !strings.Contains(s.FormatCells(), "cell   2 placed=1") {
		t.Errorf("FormatCells missing grown cell:\n%s", s.FormatCells())
	}
}

// Identical feeds must render identical bytes — the property the
// shard- and worker-invariance tests at higher layers lean on.
func TestFormattersDeterministic(t *testing.T) {
	build := func() *Store {
		s := NewStore(Options{})
		s.RegisterJob(0, "memcached", SLO{Target: 0.004})
		s.RegisterJob(1, "xapian", SLO{Target: 0.008})
		sink := s.Sink()
		for at := 1.0; at <= 12; at++ {
			if int(at)%3 != 0 {
				feedWindow(sink, at, 0)
			} else {
				feedWindow(sink, at, 1)
			}
		}
		s.ObserveCells(12.5, 0, []CellSample{{Cell: 0, Placed: 2, Violations: 1}})
		return s
	}
	a, b := build(), build()
	if a.FormatSLO() != b.FormatSLO() {
		t.Errorf("FormatSLO differs:\n%s\nvs\n%s", a.FormatSLO(), b.FormatSLO())
	}
	if a.FormatLedger() != b.FormatLedger() {
		t.Errorf("FormatLedger differs")
	}
	var ja, jb bytes.Buffer
	if err := a.WriteAlertsJSONL(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteAlertsJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	if ja.String() != jb.String() {
		t.Errorf("alert JSONL differs:\n%s\nvs\n%s", ja.String(), jb.String())
	}
	if a.AlertCount() == 0 {
		t.Error("expected alerts from a 2/3-bad feed")
	}
	// Alert steps are the stream's own sequence, 1-based.
	for i, ev := range a.Alerts() {
		if ev.Step != int64(i)+1 {
			t.Errorf("alert %d step = %d", i, ev.Step)
		}
	}
}

// A nil store must swallow every call — the fleet and the daemons
// attach it optionally.
func TestNilStoreSafe(t *testing.T) {
	var s *Store
	s.RegisterJob(0, "x", SLO{})
	s.RegisterCells(4)
	s.BindRegistry(nil)
	s.ObserveCells(1, 0, []CellSample{{Cell: 0, Placed: 1}})
	s.Sink()(telemetry.ObservationWindow(1, 1, true))
	if s.JobStatuses() != nil || s.CellStatuses() != nil || s.Ledger() != nil || s.Alerts() != nil {
		t.Error("nil store returned non-nil data")
	}
	if s.AlertCount() != 0 {
		t.Error("nil store alert count")
	}
	_ = s.FleetStatus()
	_ = s.WindowsStatus()
	_ = s.Rollup()
}

// The registry rollup reads the server/cluster metrics by name and
// interpolates the p95 from histogram buckets.
func TestRegistryRollup(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("server_p95_seconds", []float64{0.001, 0.01, 0.1})
	for i := 0; i < 100; i++ {
		h.Observe(0.005)
	}
	reg.Counter("server_windows_total").Add(100)
	reg.Counter("server_qos_violations_total").Add(7)
	reg.Counter("cluster_cache_hits_total").Add(6)
	reg.Counter("cluster_cache_misses_total").Add(4)
	reg.Counter("cluster_placements_total").Add(5)
	reg.Counter("cluster_bo_iterations_total").Add(50)

	s := NewStore(Options{})
	s.BindRegistry(reg)
	r := s.Rollup()
	if r.Windows != 100 || r.Violations != 7 {
		t.Errorf("rollup counters: %+v", r)
	}
	if r.CacheHitRate != 0.6 {
		t.Errorf("cache hit rate = %v, want 0.6", r.CacheHitRate)
	}
	if r.BOItersPerPlacement != 10 {
		t.Errorf("bo iters/placement = %v, want 10", r.BOItersPerPlacement)
	}
	// All observations sit in the (0.001, 0.01] bucket; the p95 must
	// interpolate inside it, not snap to a bound.
	if r.P95 <= 0.001 || r.P95 > 0.01 {
		t.Errorf("p95 = %v, want within (0.001, 0.01]", r.P95)
	}
	if !strings.Contains(s.FormatSLO(), "rollup") {
		t.Errorf("FormatSLO missing rollup line:\n%s", s.FormatSLO())
	}
}
