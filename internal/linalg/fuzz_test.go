package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzCholAppendVsRefit fuzzes the packed factor's central contract:
// growing a factor row by row with AppendRow is byte-identical to
// refactoring the full matrix from scratch (same arithmetic, same
// jitter), and the two factors solve identically. The BO engine's
// incremental GP conditioning rests on exactly this agreement.
func FuzzCholAppendVsRefit(f *testing.F) {
	f.Add(int64(1), uint8(8), 0.5)
	f.Add(int64(7), uint8(1), 1.0)
	f.Add(int64(42), uint8(24), 0.05)
	f.Add(int64(-3), uint8(13), 3.0)
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint8, ridge float64) {
		n := 1 + int(nRaw%24)
		if math.IsNaN(ridge) || math.IsInf(ridge, 0) || ridge <= 0 {
			ridge = 0.5
		}
		ridge = math.Min(ridge, 10)
		rng := rand.New(rand.NewSource(seed))
		a := randomSPDRidge(rng, n, ridge)

		fresh, jitter, err := CholeskyPacked(a, 1e-2)
		if err != nil {
			t.Skip("matrix not factorable even with jitter")
		}
		grown := NewChol(n)
		for m := 1; m <= n; m++ {
			row := make([]float64, m-1)
			for j := 0; j < m-1; j++ {
				row[j] = a.At(m-1, j)
			}
			if err := grown.AppendRow(row, a.At(m-1, m-1)+jitter); err != nil {
				t.Fatalf("AppendRow at m=%d (jitter %g): %v", m, jitter, err)
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if math.Float64bits(fresh.At(i, j)) != math.Float64bits(grown.At(i, j)) {
					t.Fatalf("n=%d L(%d,%d): refit %v grown %v", n, i, j, fresh.At(i, j), grown.At(i, j))
				}
			}
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x1, x2 := make([]float64, n), make([]float64, n)
		fresh.SolveInto(b, x1)
		grown.SolveInto(b, x2)
		for i := range x1 {
			if math.Float64bits(x1[i]) != math.Float64bits(x2[i]) {
				t.Fatalf("solve diverged at %d: refit %v grown %v", i, x1[i], x2[i])
			}
		}
	})
}
