package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randomSPD builds a random symmetric positive-definite n×n matrix
// A = BᵀB + ridge·I.
func randomSPDRidge(rng *rand.Rand, n int, ridge float64) *Matrix {
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for k := 0; k < n; k++ {
				sum += b.At(k, i) * b.At(k, j)
			}
			a.Set(i, j, sum)
		}
		a.Set(i, i, a.At(i, i)+ridge)
	}
	return a
}

// TestCholeskyPackedMatchesDense asserts the packed factorization is
// byte-identical to the dense one (same arithmetic, same jitter).
func TestCholeskyPackedMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(30)
		a := randomSPDRidge(rng, n, 0.5)
		dense, jd, err := Cholesky(a, 1e-2)
		if err != nil {
			t.Fatalf("dense Cholesky: %v", err)
		}
		packed, jp, err := CholeskyPacked(a, 1e-2)
		if err != nil {
			t.Fatalf("packed Cholesky: %v", err)
		}
		if jd != jp {
			t.Fatalf("jitter diverged: dense %g packed %g", jd, jp)
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if dense.At(i, j) != packed.At(i, j) {
					t.Fatalf("n=%d L(%d,%d): dense %v packed %v", n, i, j, dense.At(i, j), packed.At(i, j))
				}
			}
		}
	}
}

// TestAppendRowMatchesRefactorization grows a factor row by row and
// checks every intermediate factor is byte-identical to factoring the
// corresponding leading principal submatrix from scratch.
func TestAppendRowMatchesRefactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 24
	a := randomSPDRidge(rng, n, 1.0)
	grown := NewChol(n)
	for m := 1; m <= n; m++ {
		row := make([]float64, m-1)
		for j := 0; j < m-1; j++ {
			row[j] = a.At(m-1, j)
		}
		if err := grown.AppendRow(row, a.At(m-1, m-1)); err != nil {
			t.Fatalf("AppendRow at m=%d: %v", m, err)
		}
		sub := NewMatrix(m, m)
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				sub.Set(i, j, a.At(i, j))
			}
		}
		fresh, _, err := CholeskyPacked(sub, 0)
		if err != nil {
			t.Fatalf("fresh factor at m=%d: %v", m, err)
		}
		for i := 0; i < m; i++ {
			for j := 0; j <= i; j++ {
				if fresh.At(i, j) != grown.At(i, j) {
					t.Fatalf("m=%d L(%d,%d): fresh %v grown %v", m, i, j, fresh.At(i, j), grown.At(i, j))
				}
			}
		}
	}
}

// TestAppendRowRejectsNonPositivePivot feeds a duplicate row (singular
// extension) and expects a clean refusal that leaves the factor usable.
func TestAppendRowRejectsNonPositivePivot(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 2)
	c, _, err := CholeskyPacked(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	// New point identical to row 0 but with its self-covariance
	// understated: the Schur complement is −0.1, decisively not
	// positive (exact 0 is at the mercy of rounding).
	if err := c.AppendRow([]float64{2, 1}, 1.9); err != ErrNotPositiveDefinite {
		t.Fatalf("want ErrNotPositiveDefinite, got %v", err)
	}
	if c.N() != 2 {
		t.Fatalf("failed append should not grow the factor: n=%d", c.N())
	}
	// The factor must still solve correctly after the rejected append.
	x := make([]float64, 2)
	c.SolveInto([]float64{3, 3}, x)
	for i, want := range []float64{1, 1} {
		if math.Abs(x[i]-want) > 1e-12 {
			t.Fatalf("solve after rejected append: x=%v", x)
		}
	}
}

// TestPackedSolvesMatchDense compares the packed in-place solves and
// LogDet against the existing dense routines.
func TestPackedSolvesMatchDense(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(20)
		a := randomSPDRidge(rng, n, 0.5)
		dense, _, err := Cholesky(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		packed, _, err := CholeskyPacked(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}

		wantLower := SolveLower(dense, b)
		gotLower := make([]float64, n)
		packed.SolveLowerInto(b, gotLower)
		wantFull := CholeskySolve(dense, b)
		gotFull := make([]float64, n)
		packed.SolveInto(b, gotFull)
		for i := 0; i < n; i++ {
			if wantLower[i] != gotLower[i] {
				t.Fatalf("SolveLowerInto[%d]: want %v got %v", i, wantLower[i], gotLower[i])
			}
			if wantFull[i] != gotFull[i] {
				t.Fatalf("SolveInto[%d]: want %v got %v", i, wantFull[i], gotFull[i])
			}
		}
		if want, got := LogDetFromCholesky(dense), packed.LogDet(); want != got {
			t.Fatalf("LogDet: want %v got %v", want, got)
		}

		// Aliasing: solving in place over b must give the same answer.
		alias := append([]float64(nil), b...)
		packed.SolveInto(alias, alias)
		for i := 0; i < n; i++ {
			if alias[i] != gotFull[i] {
				t.Fatalf("aliased SolveInto[%d]: want %v got %v", i, gotFull[i], alias[i])
			}
		}
	}
}
