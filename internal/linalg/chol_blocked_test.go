package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// TestBlockedCholMatchesScalar pins the blocked factorization's
// contract at sizes straddling the dispatch threshold: bit-equal
// factors and solves against the scalar reference path.
func TestBlockedCholMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, cholBlockThreshold - 1, cholBlockThreshold,
		cholBlock*2 - 1, cholBlock * 2, cholBlock*3 + 5} {
		a := randomSPDRidge(rng, n, 0.5)
		scalar := NewChol(n)
		if !scalar.factorScalar(a, 0) {
			t.Fatalf("n=%d: scalar factorization failed", n)
		}
		blocked := NewChol(n)
		if !blocked.factorBlocked(a, 0) {
			t.Fatalf("n=%d: blocked factorization failed", n)
		}
		assertCholBitEqual(t, n, scalar, blocked)

		// The public entry must dispatch to a path that agrees too.
		viaFactor := NewChol(n)
		if _, err := viaFactor.Factor(a, 1e-2); err != nil {
			t.Fatalf("n=%d: Factor: %v", n, err)
		}
		assertCholBitEqual(t, n, scalar, viaFactor)

		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x1, x2 := make([]float64, n), make([]float64, n)
		scalar.SolveInto(b, x1)
		blocked.SolveInto(b, x2)
		for i := range x1 {
			if math.Float64bits(x1[i]) != math.Float64bits(x2[i]) {
				t.Fatalf("n=%d solve diverged at %d: scalar %v blocked %v", n, i, x1[i], x2[i])
			}
		}
	}
}

// TestBlockedCholReusesStorage verifies Factor is allocation-free at
// steady state: refactoring into the same receiver must not grow its
// backing array.
func TestBlockedCholReusesStorage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := cholBlockThreshold + 3
	a := randomSPDRidge(rng, n, 0.5)
	c := NewChol(n)
	if _, err := c.Factor(a, 1e-2); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := c.Factor(a, 1e-2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Factor allocated %.1f times per run", allocs)
	}
}

// TestBlockedCholNonSPDFallsBackToJitter exercises the failure path:
// a rank-deficient matrix must still factor once the jitter ladder
// kicks in, identically on both paths.
func TestBlockedCholNonSPDFallsBackToJitter(t *testing.T) {
	n := cholBlockThreshold + 2
	a := NewMatrix(n, n) // all-zero: not PD, factorable with jitter
	blocked, jb, err := CholeskyPacked(a, 1e-2)
	if err != nil {
		t.Fatalf("jittered factorization failed: %v", err)
	}
	scalar := NewChol(n)
	if !scalar.factorScalar(a, jb) {
		t.Fatalf("scalar factorization failed at jitter %g", jb)
	}
	assertCholBitEqual(t, n, scalar, blocked)
}

func assertCholBitEqual(t *testing.T, n int, want, got *Chol) {
	t.Helper()
	if want.N() != n || got.N() != n {
		t.Fatalf("dimension mismatch: want %d/%d, n=%d", want.N(), got.N(), n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if math.Float64bits(want.At(i, j)) != math.Float64bits(got.At(i, j)) {
				t.Fatalf("n=%d L(%d,%d): scalar %v blocked %v", n, i, j, want.At(i, j), got.At(i, j))
			}
		}
	}
}

// FuzzBlockedCholVsScalar fuzzes the blocked factorization's contract
// across sizes, conditioning, and jitter: factor and solve must agree
// bit for bit with the scalar reference path. This is the §13
// determinism argument for swapping the factorization under the BO
// engine without perturbing a single decision.
func FuzzBlockedCholVsScalar(f *testing.F) {
	f.Add(int64(1), uint8(60), 0.5)
	f.Add(int64(7), uint8(cholBlockThreshold), 1.0)
	f.Add(int64(42), uint8(100), 0.05)
	f.Add(int64(-3), uint8(31), 3.0)
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint8, ridge float64) {
		n := 1 + int(nRaw)%96
		if math.IsNaN(ridge) || math.IsInf(ridge, 0) || ridge <= 0 {
			ridge = 0.5
		}
		ridge = math.Min(ridge, 10)
		rng := rand.New(rand.NewSource(seed))
		a := randomSPDRidge(rng, n, ridge)

		blocked := NewChol(n)
		jitter, err := blocked.Factor(a, 1e-2)
		if err != nil {
			t.Skip("matrix not factorable even with jitter")
		}
		scalar := NewChol(n)
		if !scalar.factorScalar(a, jitter) {
			t.Fatalf("n=%d: scalar failed at the jitter (%g) the dispatcher accepted", n, jitter)
		}
		assertCholBitEqual(t, n, scalar, blocked)
		// Below the dispatch threshold Factor takes the scalar path, so
		// force the blocked one directly — it must agree at every size.
		direct := NewChol(n)
		if !direct.factorBlocked(a, jitter) {
			t.Fatalf("n=%d: blocked failed at the jitter (%g) the dispatcher accepted", n, jitter)
		}
		assertCholBitEqual(t, n, scalar, direct)

		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x1, x2 := make([]float64, n), make([]float64, n)
		scalar.SolveInto(b, x1)
		blocked.SolveInto(b, x2)
		for i := range x1 {
			if math.Float64bits(x1[i]) != math.Float64bits(x2[i]) {
				t.Fatalf("n=%d solve diverged at %d: scalar %v blocked %v", n, i, x1[i], x2[i])
			}
		}
	})
}
