package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"clite/internal/stats"
)

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if got := m.At(1, 2); got != 7 {
		t.Errorf("At(1,2) = %v, want 7", got)
	}
	if got := m.Row(1); got[2] != 7 {
		t.Errorf("Row(1)[2] = %v, want 7", got[2])
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("Clone should not alias the original")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	y := m.MulVec([]float64{1, 0, -1})
	if y[0] != -2 || y[1] != -2 {
		t.Errorf("MulVec = %v, want [-2 -2]", y)
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestCholeskyKnown(t *testing.T) {
	// A = [[4,12,-16],[12,37,-43],[-16,-43,98]] has the classic factor
	// L = [[2,0,0],[6,1,0],[-8,5,3]].
	a := NewMatrix(3, 3)
	copy(a.Data, []float64{4, 12, -16, 12, 37, -43, -16, -43, 98})
	l, jitter, err := Cholesky(a, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if jitter != 0 {
		t.Errorf("unexpected jitter %v", jitter)
	}
	want := []float64{2, 0, 0, 6, 1, 0, -8, 5, 3}
	for i, w := range want {
		if math.Abs(l.Data[i]-w) > 1e-9 {
			t.Fatalf("L = %v, want %v", l.Data, want)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, _, err := Cholesky(a, 1e-8); err == nil {
		t.Error("expected failure for indefinite matrix")
	}
}

func TestCholeskyJitterRecoversSingular(t *testing.T) {
	// Rank-1 matrix: needs jitter to factor.
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 1, 1, 1})
	l, jitter, err := Cholesky(a, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	if jitter <= 0 {
		t.Error("expected positive jitter")
	}
	if l.At(0, 0) <= 0 {
		t.Error("invalid factor")
	}
}

func TestCholeskyNonSquare(t *testing.T) {
	if _, _, err := Cholesky(NewMatrix(2, 3), 1); err == nil {
		t.Error("expected error for non-square input")
	}
}

func TestSolveRoundTrip(t *testing.T) {
	a := NewMatrix(3, 3)
	copy(a.Data, []float64{4, 12, -16, 12, 37, -43, -16, -43, 98})
	l, _, err := Cholesky(a, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -2, 0.5}
	b := a.MulVec(want)
	got := CholeskySolve(l, b)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("CholeskySolve = %v, want %v", got, want)
		}
	}
}

func TestLogDetFromCholesky(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{2, 0, 0, 8}) // det = 16
	l, _, err := Cholesky(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := LogDetFromCholesky(l); math.Abs(got-math.Log(16)) > 1e-12 {
		t.Errorf("LogDet = %v, want log 16", got)
	}
}

// randomSPD builds A = Bᵀ·B + n·I, which is symmetric positive
// definite for any B.
func randomSPD(rng *stats.RNG, n int) *Matrix {
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.Normal(0, 1)
	}
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for k := 0; k < n; k++ {
				sum += b.At(k, i) * b.At(k, j)
			}
			if i == j {
				sum += float64(n)
			}
			a.Set(i, j, sum)
		}
	}
	return a
}

func TestCholeskySolvePropertyRandomSPD(t *testing.T) {
	rng := stats.NewRNG(99)
	f := func(seedByte uint8, sizeByte uint8) bool {
		n := 1 + int(sizeByte%12)
		local := rng.Split(int64(seedByte)*13 + int64(sizeByte))
		a := randomSPD(local, n)
		l, _, err := Cholesky(a, 1e-4)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = local.Normal(0, 2)
		}
		b := a.MulVec(x)
		got := CholeskySolve(l, b)
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-6 {
				return false
			}
		}
		// Reconstruction: L·Lᵀ ≈ A.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var sum float64
				for k := 0; k <= min(i, j); k++ {
					sum += l.At(i, k) * l.At(j, k)
				}
				if math.Abs(sum-a.At(i, j)) > 1e-6*(1+math.Abs(a.At(i, j))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTriangularSolves(t *testing.T) {
	l := NewMatrix(3, 3)
	copy(l.Data, []float64{2, 0, 0, 6, 1, 0, -8, 5, 3})
	x := SolveLower(l, []float64{2, 7, 3})
	// Forward substitution: x0=1, x1=7-6=1, x2=(3+8-5)/3=2.
	want := []float64{1, 1, 2}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("SolveLower = %v, want %v", x, want)
		}
	}
	// SolveUpperT then satisfies Lᵀ·y = b.
	b := []float64{4, 5, 6}
	y := SolveUpperT(l, b)
	for i := 0; i < 3; i++ {
		var sum float64
		for k := 0; k < 3; k++ {
			sum += l.At(k, i) * y[k]
		}
		if math.Abs(sum-b[i]) > 1e-9 {
			t.Fatalf("SolveUpperT residual at %d: %v", i, sum-b[i])
		}
	}
}
