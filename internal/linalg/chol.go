package linalg

import (
	"fmt"
	"math"
)

// Chol is a growable lower-triangular Cholesky factor in packed
// row-major storage: row i holds its i+1 entries at offset i·(i+1)/2.
// Packing is what makes the factor growable — appending a row is a
// single amortized slice append, so conditioning a GP on one more
// sample costs the O(n²) forward substitution of AppendRow instead of
// the O(n³) refactorization a dense refit pays.
//
// The arithmetic (loop order, operation order) deliberately mirrors
// the dense Cholesky in matrix.go, so a factor grown row by row is
// byte-identical to one factored from scratch with the same jitter.
type Chol struct {
	n    int
	data []float64 // len == n·(n+1)/2
}

// NewChol returns an empty factor with capacity for an n×n matrix
// preallocated (n may be 0).
func NewChol(n int) *Chol {
	return &Chol{data: make([]float64, 0, n*(n+1)/2)}
}

// N returns the factor's current dimension.
func (c *Chol) N() int { return c.n }

// Row returns a view of packed row i (i+1 entries).
func (c *Chol) Row(i int) []float64 {
	off := i * (i + 1) / 2
	return c.data[off : off+i+1]
}

// At returns L(i, j) for j ≤ i.
func (c *Chol) At(i, j int) float64 { return c.data[i*(i+1)/2+j] }

// Clone returns a deep copy.
func (c *Chol) Clone() *Chol {
	return &Chol{n: c.n, data: append([]float64(nil), c.data...)}
}

// Reset empties the factor, keeping its storage for reuse.
func (c *Chol) Reset() {
	c.n = 0
	c.data = c.data[:0]
}

// CholeskyPacked factors a symmetric positive-definite matrix into a
// packed lower-triangular factor, retrying with progressively larger
// diagonal jitter exactly like Cholesky. It returns the factor and
// the jitter applied; callers that later AppendRow must add the same
// jitter to appended diagonal entries to stay consistent.
func CholeskyPacked(a *Matrix, maxJitter float64) (*Chol, float64, error) {
	if a.Rows != a.Cols {
		return nil, 0, fmt.Errorf("linalg: Cholesky needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	c := NewChol(a.Rows)
	jitter := 0.0
	for attempt := 0; attempt < 8; attempt++ {
		if c.factorInto(a, jitter) {
			return c, jitter, nil
		}
		//lint:allow floateq jitter is an exact sentinel: assigned only the literal 0 or discrete *100 steps, never computed
		if jitter == 0 {
			jitter = 1e-10
		} else {
			jitter *= 100
		}
		if jitter > maxJitter {
			break
		}
	}
	return nil, jitter, ErrNotPositiveDefinite
}

// factorInto (re)factors a+jitter·I into c, reporting success. The
// computation matches choleskyOnce term for term.
func (c *Chol) factorInto(a *Matrix, jitter float64) bool {
	n := a.Rows
	c.Reset()
	for i := 0; i < n; i++ {
		for t := 0; t <= i; t++ {
			c.data = append(c.data, 0)
		}
		li := c.Row(i)
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			if i == j {
				sum += jitter
			}
			lj := c.Row(j)
			for k := 0; k < j; k++ {
				sum -= li[k] * lj[k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					c.Reset()
					return false
				}
				li[j] = math.Sqrt(sum)
			} else {
				li[j] = sum / lj[j]
			}
		}
		c.n++
	}
	return true
}

// AppendRow grows the factor from n to n+1: k is the new sample's
// covariance against the n existing ones and diag its self-covariance
// (noise and jitter already added by the caller). Appending the last
// row of a Cholesky factorization *is* a forward substitution, so the
// result is byte-identical to refactoring the extended matrix — when
// the trailing pivot stays positive. A non-positive pivot leaves the
// factor untouched and returns ErrNotPositiveDefinite; the caller
// falls back to a full refactorization (which may pick fresh jitter).
func (c *Chol) AppendRow(k []float64, diag float64) error {
	if len(k) != c.n {
		panic(fmt.Sprintf("linalg: AppendRow got %d covariances for dimension %d", len(k), c.n))
	}
	off := len(c.data)
	c.data = append(c.data, k...)
	c.data = append(c.data, 0)
	row := c.data[off : off+c.n+1]
	// w_j = (k_j − Σ_{t<j} L(j,t)·w_t) / L(j,j), computed in place.
	for j := 0; j < c.n; j++ {
		sum := row[j]
		lj := c.Row(j)
		for t := 0; t < j; t++ {
			sum -= lj[t] * row[t]
		}
		row[j] = sum / lj[j]
	}
	d := diag
	for t := 0; t < c.n; t++ {
		d -= row[t] * row[t]
	}
	if d <= 0 || math.IsNaN(d) {
		c.data = c.data[:off]
		return ErrNotPositiveDefinite
	}
	row[c.n] = math.Sqrt(d)
	c.n++
	return nil
}

// SolveLowerInto solves L·x = b by forward substitution into x, which
// must have length N. x may alias b (each b[i] is read before x[i] is
// written).
func (c *Chol) SolveLowerInto(b, x []float64) {
	n := c.n
	if len(b) != n || len(x) != n {
		panic(fmt.Sprintf("linalg: SolveLowerInto dimension mismatch %d/%d vs %d", len(b), len(x), n))
	}
	for i := 0; i < n; i++ {
		sum := b[i]
		row := c.Row(i)
		for k := 0; k < i; k++ {
			sum -= row[k] * x[k]
		}
		x[i] = sum / row[i]
	}
}

// SolveUpperTInto solves Lᵀ·x = b by backward substitution into x
// (the stored factor is L; its transpose is implied). x may alias b.
func (c *Chol) SolveUpperTInto(b, x []float64) {
	n := c.n
	if len(b) != n || len(x) != n {
		panic(fmt.Sprintf("linalg: SolveUpperTInto dimension mismatch %d/%d vs %d", len(b), len(x), n))
	}
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for k := i + 1; k < n; k++ {
			sum -= c.At(k, i) * x[k]
		}
		x[i] = sum / c.At(i, i)
	}
}

// SolveInto solves A·x = b given this factor of A, into x. x may
// alias b; no scratch is needed because both substitutions are
// aliasing-safe.
func (c *Chol) SolveInto(b, x []float64) {
	c.SolveLowerInto(b, x)
	c.SolveUpperTInto(x, x)
}

// LogDet returns log|A| = 2·Σ log L(i,i).
func (c *Chol) LogDet() float64 {
	var sum float64
	for i := 0; i < c.n; i++ {
		sum += math.Log(c.At(i, i))
	}
	return 2 * sum
}
