package linalg

import (
	"fmt"
	"math"
)

// Chol is a growable lower-triangular Cholesky factor in packed
// row-major storage: row i holds its i+1 entries at offset i·(i+1)/2.
// Packing is what makes the factor growable — appending a row is a
// single amortized slice append, so conditioning a GP on one more
// sample costs the O(n²) forward substitution of AppendRow instead of
// the O(n³) refactorization a dense refit pays.
//
// The arithmetic (loop order, operation order) deliberately mirrors
// the dense Cholesky in matrix.go, so a factor grown row by row is
// byte-identical to one factored from scratch with the same jitter.
type Chol struct {
	n    int
	data []float64 // len == n·(n+1)/2
}

// NewChol returns an empty factor with capacity for an n×n matrix
// preallocated (n may be 0).
func NewChol(n int) *Chol {
	return &Chol{data: make([]float64, 0, n*(n+1)/2)}
}

// N returns the factor's current dimension.
func (c *Chol) N() int { return c.n }

// Row returns a view of packed row i (i+1 entries).
func (c *Chol) Row(i int) []float64 {
	off := i * (i + 1) / 2
	return c.data[off : off+i+1]
}

// At returns L(i, j) for j ≤ i.
func (c *Chol) At(i, j int) float64 { return c.data[i*(i+1)/2+j] }

// Clone returns a deep copy.
func (c *Chol) Clone() *Chol {
	return &Chol{n: c.n, data: append([]float64(nil), c.data...)}
}

// Reset empties the factor, keeping its storage for reuse.
func (c *Chol) Reset() {
	c.n = 0
	c.data = c.data[:0]
}

// CholeskyPacked factors a symmetric positive-definite matrix into a
// packed lower-triangular factor, retrying with progressively larger
// diagonal jitter exactly like Cholesky. It returns the factor and
// the jitter applied; callers that later AppendRow must add the same
// jitter to appended diagonal entries to stay consistent.
func CholeskyPacked(a *Matrix, maxJitter float64) (*Chol, float64, error) {
	c := NewChol(a.Rows)
	jitter, err := c.Factor(a, maxJitter)
	if err != nil {
		return nil, jitter, err
	}
	return c, jitter, nil
}

// Factor (re)factors a+jitter·I into the receiver with the same
// jitter ladder as CholeskyPacked, reusing the receiver's storage —
// the allocation-free form for callers that refactor repeatedly (the
// GP hyperparameter pool). It returns the jitter applied; on failure
// the receiver is left empty.
func (c *Chol) Factor(a *Matrix, maxJitter float64) (float64, error) {
	if a.Rows != a.Cols {
		return 0, fmt.Errorf("linalg: Cholesky needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	jitter := 0.0
	for attempt := 0; attempt < 8; attempt++ {
		if c.factorInto(a, jitter) {
			return jitter, nil
		}
		//lint:allow floateq jitter is an exact sentinel: assigned only the literal 0 or discrete *100 steps, never computed
		if jitter == 0 {
			jitter = 1e-10
		} else {
			jitter *= 100
		}
		if jitter > maxJitter {
			break
		}
	}
	return jitter, ErrNotPositiveDefinite
}

// cholBlockThreshold is the dimension at and above which factorInto
// switches to the blocked factorization; below it the scalar loops win
// (no prefill pass, no tile bookkeeping).
const cholBlockThreshold = 48

// cholBlock is the tile edge of the blocked factorization: 32 packed
// rows of ≤32 columns keep the active panel and one update tile within
// L1 while amortizing loop overhead.
const cholBlock = 32

// factorInto (re)factors a+jitter·I into c, reporting success. The
// computation matches choleskyOnce term for term: above the size
// threshold the blocked form is used, which reorders the schedule
// across elements but keeps every element's own operation chain
// identical, so the result is bit-equal to the scalar path (see the
// FuzzBlockedCholVsScalar invariant).
func (c *Chol) factorInto(a *Matrix, jitter float64) bool {
	if a.Rows >= cholBlockThreshold {
		return c.factorBlocked(a, jitter)
	}
	return c.factorScalar(a, jitter)
}

// factorScalar is the reference row-by-row factorization (the
// AppendRow-compatible operation order); the blocked path must agree
// with it bit for bit at any size.
func (c *Chol) factorScalar(a *Matrix, jitter float64) bool {
	n := a.Rows
	c.Reset()
	for i := 0; i < n; i++ {
		for t := 0; t <= i; t++ {
			c.data = append(c.data, 0)
		}
		li := c.Row(i)
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			if i == j {
				sum += jitter
			}
			lj := c.Row(j)
			for k := 0; k < j; k++ {
				sum -= li[k] * lj[k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					c.Reset()
					return false
				}
				li[j] = math.Sqrt(sum)
			} else {
				li[j] = sum / lj[j]
			}
		}
		c.n++
	}
	return true
}

// factorBlocked is the cache-tiled left-looking factorization. Every
// element's value is a single running accumulator that subtracts the
// k-products in strictly increasing k — first the tiled bulk update
// (k-tiles in ascending order), then the in-panel tail — which is the
// exact operation sequence the scalar loop performs per element, so
// the two paths agree byte for byte. Only the traversal across
// elements changes: the bulk update streams contiguous packed rows
// tile by tile instead of re-walking full-length prefix rows per
// element, which is what makes large factorizations cache-friendly.
func (c *Chol) factorBlocked(a *Matrix, jitter float64) bool {
	n := a.Rows
	need := n * (n + 1) / 2
	c.n = 0
	if cap(c.data) < need {
		c.data = make([]float64, need)
	} else {
		c.data = c.data[:need]
	}
	// Prefill the packed lower triangle with a (+ jitter·I): the
	// accumulators start exactly where the scalar path starts them.
	idx := 0
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			c.data[idx] = a.At(i, j)
			idx++
		}
		c.data[idx] = a.At(i, i) + jitter
		idx++
	}
	for jb := 0; jb < n; jb += cholBlock {
		jend := jb + cholBlock
		if jend > n {
			jend = n
		}
		// Bulk update: fold the k < jb products into block columns
		// [jb, jend), k-tiles ascending so each accumulator sees its
		// products in increasing k.
		for kb := 0; kb < jb; kb += cholBlock {
			kend := kb + cholBlock
			if kend > jb {
				kend = jb
			}
			for i := jb; i < n; i++ {
				li := c.Row(i)
				jmax := jend
				if i+1 < jmax {
					jmax = i + 1
				}
				for j := jb; j < jmax; j++ {
					lj := c.data[j*(j+1)/2:]
					s := li[j]
					for k := kb; k < kend; k++ {
						s -= li[k] * lj[k]
					}
					li[j] = s
				}
			}
		}
		// Panel factorization: finish columns [jb, jend) with the
		// in-panel k tail and the pivot/scale steps, column by column.
		for j := jb; j < jend; j++ {
			lj := c.Row(j)
			s := lj[j]
			for k := jb; k < j; k++ {
				s -= lj[k] * lj[k]
			}
			if s <= 0 || math.IsNaN(s) {
				c.Reset()
				return false
			}
			d := math.Sqrt(s)
			lj[j] = d
			for i := j + 1; i < n; i++ {
				li := c.Row(i)
				si := li[j]
				for k := jb; k < j; k++ {
					si -= li[k] * lj[k]
				}
				li[j] = si / d
			}
		}
	}
	c.n = n
	return true
}

// AppendRow grows the factor from n to n+1: k is the new sample's
// covariance against the n existing ones and diag its self-covariance
// (noise and jitter already added by the caller). Appending the last
// row of a Cholesky factorization *is* a forward substitution, so the
// result is byte-identical to refactoring the extended matrix — when
// the trailing pivot stays positive. A non-positive pivot leaves the
// factor untouched and returns ErrNotPositiveDefinite; the caller
// falls back to a full refactorization (which may pick fresh jitter).
func (c *Chol) AppendRow(k []float64, diag float64) error {
	if len(k) != c.n {
		panic(fmt.Sprintf("linalg: AppendRow got %d covariances for dimension %d", len(k), c.n))
	}
	off := len(c.data)
	c.data = append(c.data, k...)
	c.data = append(c.data, 0)
	row := c.data[off : off+c.n+1]
	// w_j = (k_j − Σ_{t<j} L(j,t)·w_t) / L(j,j), computed in place.
	for j := 0; j < c.n; j++ {
		sum := row[j]
		lj := c.Row(j)
		for t := 0; t < j; t++ {
			sum -= lj[t] * row[t]
		}
		row[j] = sum / lj[j]
	}
	d := diag
	for t := 0; t < c.n; t++ {
		d -= row[t] * row[t]
	}
	if d <= 0 || math.IsNaN(d) {
		c.data = c.data[:off]
		return ErrNotPositiveDefinite
	}
	row[c.n] = math.Sqrt(d)
	c.n++
	return nil
}

// SolveLowerInto solves L·x = b by forward substitution into x, which
// must have length N. x may alias b (each b[i] is read before x[i] is
// written).
func (c *Chol) SolveLowerInto(b, x []float64) {
	n := c.n
	if len(b) != n || len(x) != n {
		panic(fmt.Sprintf("linalg: SolveLowerInto dimension mismatch %d/%d vs %d", len(b), len(x), n))
	}
	for i := 0; i < n; i++ {
		sum := b[i]
		row := c.Row(i)
		for k := 0; k < i; k++ {
			sum -= row[k] * x[k]
		}
		x[i] = sum / row[i]
	}
}

// SolveUpperTInto solves Lᵀ·x = b by backward substitution into x
// (the stored factor is L; its transpose is implied). x may alias b.
func (c *Chol) SolveUpperTInto(b, x []float64) {
	n := c.n
	if len(b) != n || len(x) != n {
		panic(fmt.Sprintf("linalg: SolveUpperTInto dimension mismatch %d/%d vs %d", len(b), len(x), n))
	}
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for k := i + 1; k < n; k++ {
			sum -= c.At(k, i) * x[k]
		}
		x[i] = sum / c.At(i, i)
	}
}

// SolveInto solves A·x = b given this factor of A, into x. x may
// alias b; no scratch is needed because both substitutions are
// aliasing-safe.
func (c *Chol) SolveInto(b, x []float64) {
	c.SolveLowerInto(b, x)
	c.SolveUpperTInto(x, x)
}

// LogDet returns log|A| = 2·Σ log L(i,i).
func (c *Chol) LogDet() float64 {
	var sum float64
	for i := 0; i < c.n; i++ {
		sum += math.Log(c.At(i, i))
	}
	return 2 * sum
}
