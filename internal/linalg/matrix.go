// Package linalg implements the dense linear algebra the
// Gaussian-process surrogate needs: matrices, Cholesky factorization,
// and triangular solves. It is deliberately small — the GP never holds
// more than a few hundred samples, so cache-oblivious O(n³) kernels
// with contiguous row-major storage are plenty.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization
// encounters a non-positive pivot even after jitter.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Resize reshapes m to rows×cols, reusing its backing storage when
// capacity allows. The contents are unspecified afterwards; callers
// must overwrite every element. This is the allocation-free form of
// NewMatrix for code that rebuilds a matrix repeatedly (the GP refit
// path).
func (m *Matrix) Resize(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", rows, cols))
	}
	m.Rows, m.Cols = rows, cols
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	} else {
		m.Data = m.Data[:n]
	}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes y = M·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %d vs %d", len(x), m.Cols))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var sum float64
		for j, v := range row {
			sum += v * x[j]
		}
		y[i] = sum
	}
	return y
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var sum float64
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ for a
// symmetric positive-definite matrix A. If the factorization stalls on
// a non-positive pivot it retries with progressively larger diagonal
// jitter (up to maxJitter), which is the standard way to keep GP
// kernel matrices factorizable as sample points cluster together.
// It returns the factor and the jitter actually applied.
func Cholesky(a *Matrix, maxJitter float64) (*Matrix, float64, error) {
	if a.Rows != a.Cols {
		return nil, 0, fmt.Errorf("linalg: Cholesky needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	jitter := 0.0
	for attempt := 0; attempt < 8; attempt++ {
		l, err := choleskyOnce(a, jitter)
		if err == nil {
			return l, jitter, nil
		}
		//lint:allow floateq jitter is an exact sentinel: assigned only the literal 0 or discrete *100 steps, never computed
		if jitter == 0 {
			jitter = 1e-10
		} else {
			jitter *= 100
		}
		if jitter > maxJitter {
			break
		}
	}
	return nil, jitter, ErrNotPositiveDefinite
}

func choleskyOnce(a *Matrix, jitter float64) (*Matrix, error) {
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			if i == j {
				sum += jitter
			}
			li, lj := l.Row(i), l.Row(j)
			for k := 0; k < j; k++ {
				sum -= li[k] * lj[k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotPositiveDefinite
				}
				l.Set(i, j, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveLower solves L·x = b for lower-triangular L by forward
// substitution.
func SolveLower(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic(fmt.Sprintf("linalg: SolveLower dimension mismatch %d vs %d", len(b), n))
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			sum -= row[k] * x[k]
		}
		x[i] = sum / row[i]
	}
	return x
}

// SolveUpperT solves Lᵀ·x = b for lower-triangular L by backward
// substitution (L is stored, its transpose is implied).
func SolveUpperT(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic(fmt.Sprintf("linalg: SolveUpperT dimension mismatch %d vs %d", len(b), n))
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x
}

// CholeskySolve solves A·x = b given the Cholesky factor L of A.
func CholeskySolve(l *Matrix, b []float64) []float64 {
	return SolveUpperT(l, SolveLower(l, b))
}

// LogDetFromCholesky returns log|A| = 2·Σ log L(i,i) given the
// Cholesky factor L of A.
func LogDetFromCholesky(l *Matrix) float64 {
	var sum float64
	for i := 0; i < l.Rows; i++ {
		sum += math.Log(l.At(i, i))
	}
	return 2 * sum
}
