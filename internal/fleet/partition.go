package fleet

import (
	"math"

	"clite/internal/profile"
	"clite/internal/resource"
)

// partitioner is the fleet's mean-field pre-partitioner. At warehouse
// scale the per-node BO machinery is far too expensive to consult for
// the question "which region of the fleet should even try this job?",
// so — following the mean-field treatment of core allocation in
// PAPERS.md ("Mean field optimal Core Allocation across Malleable
// jobs") — the fleet is summarized by one scalar per cell: the
// estimated resident demand in node-equivalents, derived from the
// profile cache's analytical solo profiles. An arrival is routed to
// the cell with the lowest relative demand (a water-filling rule that
// equalizes load across the fleet in expectation), and only that
// cell's scheduler pays the per-node pipeline — prefilter, cache,
// BO — to refine the decision. The estimate is optimistic exactly the
// way the admission pre-filter is: solo minima lower-bound any
// feasible share, so relative demand orders cells correctly even
// though it cannot prove feasibility.
type partitioner struct {
	topo resource.Topology
	hub  *profile.Cache
	// demand[c] sums the resident jobs' solo-profile node fractions;
	// live[c] counts the cell's surviving nodes.
	demand []float64
	live   []int
}

func newPartitioner(topo resource.Topology, hub *profile.Cache, cells []*cell) *partitioner {
	p := &partitioner{
		topo:   topo,
		hub:    hub,
		demand: make([]float64, len(cells)),
		live:   make([]int, len(cells)),
	}
	for i, c := range cells {
		p.live[i] = c.nodes
	}
	return p
}

// jobDemand estimates one job's footprint as a fraction of a node:
// the largest per-resource share of its solo-profile minimum. A job
// whose solo profile is infeasible is charged a whole node — it will
// be rejected by every cell's pre-filter, but the estimate must stay
// finite so the arrival still routes somewhere deterministic.
func (p *partitioner) jobDemand(workload string, load float64) (float64, error) {
	s, err := p.hub.Solo(workload, load)
	if err != nil {
		return 0, err
	}
	if !s.Feasible {
		return 1, nil
	}
	d := 0.0
	for r, spec := range p.topo {
		if frac := float64(s.MinUnits[r]) / float64(spec.Units); frac > d {
			d = frac
		}
	}
	return d, nil
}

// assign routes one arrival: the live, non-excluded cell with the
// lowest relative demand (estimated demand over surviving nodes),
// ties to the lowest cell index. Returns -1 when every cell is
// excluded or dead. The walk is a pure function of the partitioner's
// state, which evolves only in the sequential event loop and at epoch
// barriers — never inside the concurrent placement phase — so routing
// is byte-identical for every shard count.
func (p *partitioner) assign(excluded []bool) int {
	best := -1
	bestLoad := math.Inf(1)
	for c := range p.demand {
		if p.live[c] <= 0 || (excluded != nil && excluded[c]) {
			continue
		}
		rel := p.demand[c] / float64(p.live[c])
		if rel < bestLoad {
			best, bestLoad = c, rel
		}
	}
	return best
}

// add charges a job's demand to a cell (optimistically, at assignment
// time; the barrier refunds it if the placement fails).
func (p *partitioner) add(cell int, d float64) { p.demand[cell] += d }

// sub refunds a job's demand (failed placement, departure, or a
// death-displaced job leaving the cell).
func (p *partitioner) sub(cell int, d float64) {
	p.demand[cell] -= d
	if p.demand[cell] < 0 {
		p.demand[cell] = 0
	}
}

// kill marks one node of a cell dead.
func (p *partitioner) kill(cell int) {
	if p.live[cell] > 0 {
		p.live[cell]--
	}
}

// total returns the fleet-wide demand estimate in node-equivalents.
func (p *partitioner) total() float64 {
	s := 0.0
	for _, d := range p.demand {
		s += d
	}
	return s
}
