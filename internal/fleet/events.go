package fleet

import "container/heap"

// evKind discriminates the discrete-event queue's entries.
type evKind uint8

const (
	evArrival evKind = iota
	evDeparture
	evDeath
)

// event is one entry of the simulation's event queue. Ordering is
// (at, seq): seq is assigned at push time by the single sequential
// event loop, so ties break identically on every run and the drain
// order is a pure function of the seed.
type event struct {
	at   float64
	seq  int64
	kind evKind
	job  *job // arrival (fresh or retry) and departure events
	node int  // death events: global node id
	gen  int  // departure events: the placement generation this departure belongs to
}

// eventQueue is a binary min-heap over (at, seq).
type eventQueue struct {
	evs []*event
	seq int64
}

func (q *eventQueue) Len() int { return len(q.evs) }

func (q *eventQueue) Less(i, j int) bool {
	if q.evs[i].at != q.evs[j].at {
		return q.evs[i].at < q.evs[j].at
	}
	return q.evs[i].seq < q.evs[j].seq
}

func (q *eventQueue) Swap(i, j int) { q.evs[i], q.evs[j] = q.evs[j], q.evs[i] }

func (q *eventQueue) Push(x any) { q.evs = append(q.evs, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := q.evs
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	q.evs = old[:n-1]
	return ev
}

// push enqueues an event, stamping its sequence number.
func (q *eventQueue) push(ev *event) {
	q.seq++
	ev.seq = q.seq
	heap.Push(q, ev)
}

// peekAt returns the earliest event time (ok=false when empty).
func (q *eventQueue) peekAt() (float64, bool) {
	if len(q.evs) == 0 {
		return 0, false
	}
	return q.evs[0].at, true
}

// pop removes and returns the earliest event.
func (q *eventQueue) pop() *event {
	return heap.Pop(q).(*event)
}
