package fleet

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"clite/internal/faults"
	"clite/internal/profile"
	"clite/internal/resource"
	"clite/internal/telemetry"
)

// smallOpts is a fleet small enough for unit tests: four cells, a few
// simulated seconds, a handful of arrivals.
func smallOpts(seed int64, shards int) Options {
	return Options{
		Nodes:     128,
		CellNodes: 32,
		Shards:    shards,
		Seed:      seed,
		Duration:  6,
		Epoch:     1,
		Traffic:   Traffic{Rate: 2},
	}
}

// runFleet executes one fleet and returns its summary plus the JSONL
// rendering of its trace.
func runFleet(t *testing.T, opts Options) (Summary, []byte) {
	t.Helper()
	tr := telemetry.NewTracer()
	opts.Trace = tr
	f, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sum, err := f.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return sum, buf.Bytes()
}

func TestFleetSmoke(t *testing.T) {
	sum, trace := runFleet(t, smallOpts(42, 2))
	if sum.Arrivals == 0 {
		t.Fatal("no arrivals generated")
	}
	if sum.Placements == 0 {
		t.Fatal("no placements committed")
	}
	if sum.Placements > sum.Arrivals+sum.Retries {
		t.Fatalf("placements %d exceed arrivals %d + retries %d",
			sum.Placements, sum.Arrivals, sum.Retries)
	}
	if sum.Cells != 4 || sum.Nodes != 128 {
		t.Fatalf("geometry: got %d cells over %d nodes", sum.Cells, sum.Nodes)
	}
	if len(sum.Decisions) != sum.Placements {
		t.Fatalf("decision log has %d entries for %d placements",
			len(sum.Decisions), sum.Placements)
	}
	for _, d := range sum.Decisions {
		if d.Node < 0 || d.Node >= sum.Nodes {
			t.Fatalf("decision for job %d names node %d outside the fleet", d.Job, d.Node)
		}
		if got := d.Node / 32; got != d.Cell {
			t.Fatalf("decision for job %d: node %d is in cell %d, decision says %d",
				d.Job, d.Node, got, d.Cell)
		}
		if d.Attempt < 1 {
			t.Fatalf("decision for job %d has attempt %d", d.Job, d.Attempt)
		}
		if d.Load > 0 && !d.QoSOK {
			t.Fatalf("LC job %d (%s@%v) admitted without QoS", d.Job, d.Workload, d.Load)
		}
	}
	if len(trace) == 0 {
		t.Fatal("empty trace stream")
	}
	counts := telemetry.CountKinds(mustEvents(t, trace))
	for _, kind := range []string{telemetry.KindJobArrival, telemetry.KindFleetEpoch} {
		if counts[kind] == 0 {
			t.Fatalf("trace has no %s events (kinds: %v)", kind, counts)
		}
	}
}

// mustEvents reparses a JSONL trace into events — enough structure
// for kind counting.
func mustEvents(t *testing.T, jsonl []byte) []telemetry.Event {
	t.Helper()
	var events []telemetry.Event
	for _, line := range bytes.Split(bytes.TrimSpace(jsonl), []byte("\n")) {
		var ev telemetry.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("parse trace line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	return events
}

// TestFleetShardInvariance is the fleet's headline contract: the
// decision log and the full telemetry trace are byte-identical
// whatever the shard count, because shards only decide which cells
// place concurrently, never what any cell decides.
func TestFleetShardInvariance(t *testing.T) {
	baseSum, baseTrace := runFleet(t, smallOpts(7, 1))
	if baseSum.Placements == 0 {
		t.Fatal("baseline placed nothing; the invariance check would be vacuous")
	}
	for _, shards := range []int{2, 4} {
		sum, trace := runFleet(t, smallOpts(7, shards))
		if !reflect.DeepEqual(sum.Decisions, baseSum.Decisions) {
			t.Fatalf("%d shards diverged from 1 shard: %d vs %d decisions",
				shards, len(sum.Decisions), len(baseSum.Decisions))
		}
		if !bytes.Equal(trace, baseTrace) {
			t.Fatalf("%d-shard trace stream is not byte-identical to 1 shard", shards)
		}
		if sum.Cluster != baseSum.Cluster {
			t.Fatalf("%d-shard pipeline counters diverged: %+v vs %+v",
				shards, sum.Cluster, baseSum.Cluster)
		}
	}
}

// TestFleetSeededReplay checks the other half of determinism: the
// same seed replays byte-identically, a different seed does not.
func TestFleetSeededReplay(t *testing.T) {
	_, a := runFleet(t, smallOpts(11, 2))
	_, b := runFleet(t, smallOpts(11, 2))
	if !bytes.Equal(a, b) {
		t.Fatal("identical seeds produced different trace streams")
	}
	_, c := runFleet(t, smallOpts(12, 2))
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical trace streams")
	}
}

func TestFleetTrafficShapes(t *testing.T) {
	for _, shape := range []Shape{ShapeDiurnal, ShapeBursty, ShapeHeavyTail} {
		opts := smallOpts(5, 2)
		opts.Traffic.Shape = shape
		sum, _ := runFleet(t, opts)
		if sum.Arrivals == 0 {
			t.Fatalf("shape %s generated no arrivals", shape)
		}
	}
}

// TestFleetDeaths drives a fleet through node deaths and checks the
// job accounting stays closed: every displaced job is rehomed,
// re-placed, rejected, or lost — never silently dropped — and the
// death schedule itself replays deterministically.
func TestFleetDeaths(t *testing.T) {
	opts := smallOpts(3, 2)
	opts.Duration = 8
	opts.Deaths = faults.FleetPlan{Seed: 3, DeathRate: 0.75, MaxDeaths: 4}
	sum, trace := runFleet(t, opts)
	if sum.Deaths == 0 {
		t.Fatal("death plan scheduled nothing")
	}
	if sum.Deaths > 4 {
		t.Fatalf("MaxDeaths=4 but %d nodes died", sum.Deaths)
	}
	sum2, trace2 := runFleet(t, opts)
	if !bytes.Equal(trace, trace2) {
		t.Fatal("fleet with deaths did not replay byte-identically")
	}
	if sum.Rehomed != sum2.Rehomed || sum.Lost != sum2.Lost {
		t.Fatalf("death outcomes did not replay: %d/%d rehomed, %d/%d lost",
			sum.Rehomed, sum2.Rehomed, sum.Lost, sum2.Lost)
	}
}

// TestFleetSharedProfiles runs two fleets over one hub cache: the
// second inherits the first's screening memos, so it screens less.
func TestFleetSharedProfiles(t *testing.T) {
	opts := smallOpts(21, 2)
	first, _ := runFleet(t, opts)
	if first.CacheEntries == 0 {
		t.Fatal("first fleet cached nothing")
	}

	hub := warmHub(t, opts)
	opts2 := opts
	opts2.SharedProfiles = hub
	second, _ := runFleet(t, opts2)
	if second.CacheEntries < first.CacheEntries {
		t.Fatalf("shared hub shrank: %d < %d", second.CacheEntries, first.CacheEntries)
	}
	if second.Cluster.CacheHits+second.Cluster.CacheNearHits <= first.Cluster.CacheHits+first.Cluster.CacheNearHits {
		t.Fatalf("warm hub produced no extra cache hits: %d vs %d",
			second.Cluster.CacheHits+second.Cluster.CacheNearHits,
			first.Cluster.CacheHits+first.Cluster.CacheNearHits)
	}
}

// warmHub pre-warms a hub cache by running one fleet against it.
func warmHub(t *testing.T, opts Options) *profile.Cache {
	t.Helper()
	hub := profile.NewCache(resource.Default())
	opts.SharedProfiles = hub
	f, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := f.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return hub
}

func TestFleetOptionValidation(t *testing.T) {
	bad := smallOpts(1, 1)
	bad.Traffic.Shape = "square-wave"
	if _, err := New(bad); err == nil {
		t.Fatal("unknown traffic shape accepted")
	}
	bad = smallOpts(1, 1)
	bad.Deaths = faults.FleetPlan{DeathRate: -1}
	if _, err := New(bad); err == nil {
		t.Fatal("negative death rate accepted")
	}
	f, err := New(smallOpts(1, 1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := f.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, err := f.Run(); err == nil {
		t.Fatal("second Run on the same Fleet accepted")
	}
}
