package fleet

import (
	"fmt"
	"math"

	"clite/internal/stats"
)

// Shape names a deterministic traffic shape for the arrival stream.
// The shapes stand in for the load millions of users put on a real
// warehouse front door: a diurnal cycle, bursty on/off flash crowds,
// and heavy-tailed renewal traffic whose quiet stretches and pile-ups
// both dwarf the Poisson prediction.
type Shape string

const (
	// ShapeDiurnal modulates a Poisson stream with a sinusoidal
	// day/night cycle (non-homogeneous Poisson via thinning).
	ShapeDiurnal Shape = "diurnal"
	// ShapeBursty alternates exponential on/off phases: bursts arrive
	// at BurstFactor times the base rate, gaps at a trickle.
	ShapeBursty Shape = "bursty"
	// ShapeHeavyTail draws bounded-Pareto interarrival gaps and
	// service times (α = 1.5), the instantaneous-demand regime where
	// mean-based planning fails.
	ShapeHeavyTail Shape = "heavytail"
)

// JobSpec is one entry of the traffic menu: a workload, its offered
// load (0 for BG jobs), and a draw weight.
type JobSpec struct {
	Workload string
	Load     float64
	Weight   int
}

// Traffic configures the arrival stream. The zero value is filled
// with defaults by (Traffic).withDefaults.
type Traffic struct {
	// Shape selects the arrival process (default ShapeDiurnal).
	Shape Shape
	// Rate is the mean arrival rate in jobs per simulated second
	// (default Nodes/64 — roughly one arrival per cell per second).
	Rate float64
	// MeanDuration is the mean service time in simulated seconds
	// (default 90).
	MeanDuration float64
	// Menu is the weighted job menu (default: the Table 3 staples at
	// cache-friendly quantized loads).
	Menu []JobSpec
	// Period is the diurnal cycle length in simulated seconds
	// (default 240).
	Period float64
	// Amplitude is the diurnal swing as a fraction of Rate, in [0,1)
	// (default 0.8).
	Amplitude float64
	// BurstFactor is the bursty shape's on-phase rate multiplier
	// (default 4).
	BurstFactor float64
	// BurstLen and GapLen are the bursty shape's mean phase lengths in
	// simulated seconds (defaults 10 and 30).
	BurstLen, GapLen float64
}

// DefaultMenu is the traffic menu used when none is given: the
// paper's staple LC jobs at low quantized loads (so the profile cache
// sees the same mixes over and over, the warehouse steady state) plus
// the PARSEC background fillers.
func DefaultMenu() []JobSpec {
	return []JobSpec{
		{Workload: "memcached", Load: 0.2, Weight: 3},
		{Workload: "img-dnn", Load: 0.2, Weight: 2},
		{Workload: "memcached", Load: 0.4, Weight: 1},
		{Workload: "xapian", Load: 0.2, Weight: 1},
		{Workload: "swaptions", Weight: 3},
		{Workload: "streamcluster", Weight: 2},
		{Workload: "blackscholes", Weight: 1},
	}
}

func (t Traffic) withDefaults(nodes int) Traffic {
	if t.Shape == "" {
		t.Shape = ShapeDiurnal
	}
	if t.Rate <= 0 {
		t.Rate = float64(nodes) / 64
	}
	if t.MeanDuration <= 0 {
		t.MeanDuration = 90
	}
	if len(t.Menu) == 0 {
		t.Menu = DefaultMenu()
	}
	if t.Period <= 0 {
		t.Period = 240
	}
	if t.Amplitude <= 0 || t.Amplitude >= 1 {
		t.Amplitude = 0.8
	}
	if t.BurstFactor <= 1 {
		t.BurstFactor = 4
	}
	if t.BurstLen <= 0 {
		t.BurstLen = 10
	}
	if t.GapLen <= 0 {
		t.GapLen = 30
	}
	return t
}

func (t Traffic) validate() error {
	switch t.Shape {
	case ShapeDiurnal, ShapeBursty, ShapeHeavyTail:
	default:
		return fmt.Errorf("fleet: unknown traffic shape %q (want %s, %s or %s)",
			t.Shape, ShapeDiurnal, ShapeBursty, ShapeHeavyTail)
	}
	total := 0
	for _, j := range t.Menu {
		if j.Weight < 0 {
			return fmt.Errorf("fleet: negative menu weight for %s", j.Workload)
		}
		total += j.Weight
	}
	if total <= 0 {
		return fmt.Errorf("fleet: traffic menu has no positive weights")
	}
	return nil
}

// arrival is one generated job arrival.
type arrival struct {
	at       float64
	workload string
	load     float64
	duration float64
}

// generator streams arrivals one at a time — the fleet never
// materializes a whole trace up front, so 10k-node runs hold only the
// event horizon in memory. All entropy comes from streams split off
// one seed, so a seeded generator replays the same arrival sequence
// whatever consumes it.
type generator struct {
	cfg         Traffic
	gaps        *stats.RNG // interarrival stream
	picks       *stats.RNG // menu stream
	durs        *stats.RNG // service-time stream
	totalWeight int
	t           float64
	// bursty phase state
	inBurst  bool
	phaseEnd float64
}

func newGenerator(cfg Traffic, seed int64) *generator {
	root := stats.NewRNG(seed)
	g := &generator{
		cfg:   cfg,
		gaps:  root.Split(1),
		picks: root.Split(2),
		durs:  root.Split(3),
	}
	for _, j := range cfg.Menu {
		g.totalWeight += j.Weight
	}
	if cfg.Shape == ShapeBursty {
		g.inBurst = false
		g.phaseEnd = g.gaps.Exponential(cfg.GapLen)
	}
	return g
}

// next returns the next arrival of the stream.
func (g *generator) next() arrival {
	switch g.cfg.Shape {
	case ShapeBursty:
		g.t += g.burstyGap()
	case ShapeHeavyTail:
		g.t += boundedPareto(g.gaps, 1/g.cfg.Rate)
	default: // diurnal: non-homogeneous Poisson by thinning
		g.t += g.diurnalGap()
	}
	a := arrival{at: g.t}
	a.workload, a.load = g.pick()
	a.duration = g.duration()
	return a
}

// diurnalGap advances a thinned Poisson stream under the sinusoidal
// rate λ(t) = Rate·(1 + Amplitude·sin(2πt/Period)).
func (g *generator) diurnalGap() float64 {
	lambdaMax := g.cfg.Rate * (1 + g.cfg.Amplitude)
	t := g.t
	for {
		t += g.gaps.Exponential(1 / lambdaMax)
		lambda := g.cfg.Rate * (1 + g.cfg.Amplitude*math.Sin(2*math.Pi*t/g.cfg.Period))
		if g.gaps.Float64()*lambdaMax <= lambda {
			return t - g.t
		}
	}
}

// burstyGap advances the on/off modulated stream. Phases have
// exponential lengths; the exponential gap's memorylessness makes
// redrawing at a phase boundary distribution-correct.
func (g *generator) burstyGap() float64 {
	start := g.t
	t := g.t
	for {
		rate := g.cfg.Rate * g.cfg.BurstFactor
		if !g.inBurst {
			rate = g.cfg.Rate / 4
		}
		gap := g.gaps.Exponential(1 / rate)
		if t+gap < g.phaseEnd {
			return t + gap - start
		}
		t = g.phaseEnd
		g.inBurst = !g.inBurst
		mean := g.cfg.GapLen
		if g.inBurst {
			mean = g.cfg.BurstLen
		}
		g.phaseEnd = t + g.gaps.Exponential(mean)
	}
}

// boundedPareto draws a Pareto(α=1.5) variate with the given mean,
// capped at 50× the mean so one draw cannot freeze the stream.
func boundedPareto(rng *stats.RNG, mean float64) float64 {
	const alpha = 1.5
	xm := mean * (alpha - 1) / alpha
	u := 1 - rng.Float64() // (0, 1]
	v := xm * math.Pow(u, -1/alpha)
	if limit := 50 * mean; v > limit {
		v = limit
	}
	return v
}

// pick draws one menu entry by weight.
func (g *generator) pick() (string, float64) {
	n := g.picks.Intn(g.totalWeight)
	for _, j := range g.cfg.Menu {
		n -= j.Weight
		if n < 0 {
			return j.Workload, j.Load
		}
	}
	last := g.cfg.Menu[len(g.cfg.Menu)-1]
	return last.Workload, last.Load
}

// duration draws one service time: exponential for diurnal/bursty
// traffic, bounded Pareto for the heavy-tailed shape.
func (g *generator) duration() float64 {
	if g.cfg.Shape == ShapeHeavyTail {
		return boundedPareto(g.durs, g.cfg.MeanDuration)
	}
	return g.durs.Exponential(g.cfg.MeanDuration)
}
