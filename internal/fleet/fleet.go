// Package fleet scales the cluster scheduler to warehouse size: a
// discrete-event simulation that streams job arrivals and departures
// from deterministic traffic shapes onto thousands of simulated
// nodes, placed by scheduler shards that run concurrently and still
// produce byte-identical decisions at every shard count.
//
// The scaling unit is the cell, not the shard (DESIGN.md §14). The
// fleet is carved into fixed-size cells of CellNodes nodes; each cell
// is one cluster.Scheduler with a private overlay profile cache and a
// private tracer. Shards are worker groups over cells — shard s runs
// the cells c ≡ s (mod Shards) — so the shard count is purely a
// concurrency knob: it decides how many cells place in parallel,
// never which cell a job lands in or what any cell decides.
//
// Time advances in epochs. Each epoch has three strictly ordered
// parts:
//
//   - a sequential event drain: arrivals, departures, and node deaths
//     up to the epoch boundary pop in (time, seq) order; the
//     mean-field pre-partitioner routes each arrival to a cell from
//     solo-profile load estimates;
//   - a concurrent placement phase: par.Go runs the shards, each cell
//     placing its assigned arrivals through the full per-node
//     pipeline (pre-filter → cache → BO) against only its own state;
//   - a sequential barrier in cell index order: outcomes commit,
//     departures and retries are scheduled, cell traces merge into
//     the fleet trace, and newly screened profile entries sync
//     through the hub cache to every cell (first write wins).
//
// Cells never share mutable state inside the concurrent phase — the
// overlay caches delegate only the immutable analytical profiles to
// the hub — so the decision stream is a pure function of the seed.
package fleet

import (
	"errors"
	"fmt"
	"math"

	"clite/internal/cluster"
	"clite/internal/faults"
	"clite/internal/obs"
	"clite/internal/par"
	"clite/internal/profile"
	"clite/internal/resource"
	"clite/internal/server"
	"clite/internal/telemetry"
)

// Options configures a fleet simulation.
type Options struct {
	// Nodes is the fleet size (default 1024).
	Nodes int
	// CellNodes is the cell size in nodes (default 64). Cells are the
	// decision-granularity unit: changing CellNodes changes decisions,
	// changing Shards never does.
	CellNodes int
	// Shards is the number of concurrent worker groups over the cells
	// (default 4, clamped to the cell count). A pure concurrency knob.
	Shards int
	// Seed drives every stream in the simulation: traffic, per-cell
	// schedulers, and measurement noise.
	Seed int64
	// Duration is the simulated horizon in seconds (default 60).
	Duration float64
	// Epoch is the barrier interval in simulated seconds (default 1):
	// arrivals inside one epoch place concurrently, commit at its end.
	Epoch float64
	// Traffic shapes the arrival stream (zero value: diurnal defaults).
	Traffic Traffic
	// ScreenIterations bounds each cell's per-screen BO budget
	// (default 12 — tighter than a lone cluster's 24; the fleet leans
	// on the cache and the pre-filter for throughput).
	ScreenIterations int
	// MaxAttempts bounds how many cells a job may try before it is
	// lost (default 3). Attempt 1 is the pre-partitioner's pick; later
	// attempts exclude every cell that rejected the job.
	MaxAttempts int
	// Deaths schedules whole-node losses (zero value: no deaths).
	Deaths faults.FleetPlan
	// SharedProfiles optionally supplies the hub profile cache, so
	// successive fleets — or a fleet and its surrounding tooling — pool
	// screening memos. nil builds a private hub.
	SharedProfiles *profile.Cache
	// Trace, when non-nil, receives the fleet timeline: arrival,
	// departure, and epoch events interleaved with every cell's
	// placement stream, merged at barriers in cell order.
	Trace *telemetry.Tracer
	// Metrics, when non-nil, backs the fleet counters (fleet_* plus
	// the per-shard placement ledger).
	Metrics *telemetry.Registry
	// Obs, when non-nil, receives per-cell rollup samples at every
	// epoch barrier (in cell order, on the sequential tail) and an SLO
	// ledger entry per epoch. Because the feed happens only at the
	// barrier, the store's contents are byte-identical for every shard
	// count.
	Obs *obs.Store
}

func (o Options) withDefaults() Options {
	if o.Nodes <= 0 {
		o.Nodes = 1024
	}
	if o.CellNodes <= 0 {
		o.CellNodes = 64
	}
	if o.CellNodes > o.Nodes {
		o.CellNodes = o.Nodes
	}
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.Duration <= 0 {
		o.Duration = 60
	}
	if o.Epoch <= 0 {
		o.Epoch = 1
	}
	if o.ScreenIterations <= 0 {
		o.ScreenIterations = 12
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	o.Traffic = o.Traffic.withDefaults(o.Nodes)
	return o
}

// job is one streamed job's lifecycle record.
type job struct {
	id       int64
	workload string
	load     float64
	duration float64
	arriveAt float64
	demand   float64

	attempts int
	excluded []bool // cells that rejected the job
	placed   bool
	cell     int // owning cell while placed
	node     int // global node id while placed
	gen      int // placement generation, matches departure events
	gone     bool
}

func (j *job) request() cluster.Request {
	return cluster.Request{Workload: j.workload, Load: j.load}
}

// pending is one cell-assigned arrival awaiting the concurrent
// placement phase; the placing shard writes only p and err.
type pending struct {
	job *job
	p   cluster.Placement
	err error
}

// cell is one scheduling domain: a fixed slice of the fleet's nodes
// under one cluster.Scheduler, with a private overlay cache and
// tracer.
type cell struct {
	index int
	start int // global id of the cell's first node
	nodes int
	sched *cluster.Scheduler
	cache *profile.Cache
	trace *telemetry.Tracer
	mark  int // overlay journal mark for barrier sync
	queue []pending
	prev  cluster.Stats // last barrier's stats snapshot, for obs deltas
}

// Decision is one committed placement, the unit of the fleet's
// byte-identity contract: the decision stream is identical for every
// shard count.
type Decision struct {
	Job      int64   `json:"job"`
	At       float64 `json:"at"` // arrival time, simulated seconds
	Workload string  `json:"workload"`
	Load     float64 `json:"load"`
	Cell     int     `json:"cell"`
	Node     int     `json:"node"` // global node id
	Attempt  int     `json:"attempt"`
	QoSOK    bool    `json:"qos_ok"`
}

// Summary reports one fleet run.
type Summary struct {
	Nodes    int
	Cells    int
	Shards   int
	Duration float64
	Epochs   int

	// Arrivals partitions into Placements, Rejections (no cell could
	// host within QoS after MaxAttempts or all cells were excluded),
	// and Lost (displaced or retried jobs whose service time ran out
	// before they landed). Retries counts extra placement attempts.
	Arrivals   int
	Placements int
	Rejections int
	Lost       int
	Retries    int
	Departures int

	// Deaths counts nodes lost; Rehomed the displaced jobs that found
	// a new node (within the cell or across cells).
	Deaths  int
	Rehomed int

	// Cluster aggregates the per-cell pipeline counters; CacheEntries
	// is the hub cache's distinct-mix count; Demand is the
	// partitioner's final fleet-wide load estimate.
	Cluster      cluster.Stats
	CacheEntries int
	Demand       float64

	// Decisions is the committed placement log in barrier order.
	Decisions []Decision
}

// counters is the registry-backed fleet ledger.
type counters struct {
	arrivals, placements *telemetry.Counter
	rejections, lost     *telemetry.Counter
	retries, departures  *telemetry.Counter
	deaths, rehomed      *telemetry.Counter
	epochs               *telemetry.Counter
	shardPlacements      []*telemetry.Counter
}

func newCounters(reg *telemetry.Registry, shards int) counters {
	c := counters{
		arrivals:   reg.Counter("fleet_arrivals_total"),
		placements: reg.Counter("fleet_placements_total"),
		rejections: reg.Counter("fleet_rejections_total"),
		lost:       reg.Counter("fleet_lost_total"),
		retries:    reg.Counter("fleet_retries_total"),
		departures: reg.Counter("fleet_departures_total"),
		deaths:     reg.Counter("fleet_deaths_total"),
		rehomed:    reg.Counter("fleet_rehomed_total"),
		epochs:     reg.Counter("fleet_epochs_total"),
	}
	for s := 0; s < shards; s++ {
		c.shardPlacements = append(c.shardPlacements,
			reg.Counter(fmt.Sprintf("fleet_shard_%d_placements_total", s)))
	}
	return c
}

// Fleet is one configured simulation. Build with New, run once with
// Run.
type Fleet struct {
	opts   Options
	cells  []*cell
	hub    *profile.Cache
	part   *partitioner
	gen    *generator
	queue  eventQueue
	jobs   []*job
	dead   []bool
	trace  *telemetry.Tracer
	stats  counters
	hubMrk int
	ran    bool
}

// New builds a fleet over opts.Nodes nodes carved into fixed-size
// cells. Cell schedulers run their own screening sequentially
// (ScreenWorkers 1): the fleet's concurrency axis is cells, and
// nesting pools would oversubscribe the machine without adding any
// parallel slack.
func New(opts Options) (*Fleet, error) {
	opts = opts.withDefaults()
	if err := opts.Traffic.validate(); err != nil {
		return nil, err
	}
	if err := opts.Deaths.Validate(); err != nil {
		return nil, err
	}
	hub := opts.SharedProfiles
	if hub == nil {
		hub = profile.NewCache(resource.Default())
	}
	cals := server.NewCalibrations()
	numCells := (opts.Nodes + opts.CellNodes - 1) / opts.CellNodes
	if opts.Shards > numCells {
		opts.Shards = numCells
	}
	f := &Fleet{
		opts:  opts,
		hub:   hub,
		gen:   newGenerator(opts.Traffic, opts.Seed),
		dead:  make([]bool, opts.Nodes),
		trace: opts.Trace,
		stats: newCounters(opts.Metrics, opts.Shards),
	}
	for i := 0; i < numCells; i++ {
		start := i * opts.CellNodes
		n := opts.CellNodes
		if start+n > opts.Nodes {
			n = opts.Nodes - start
		}
		overlay := profile.NewOverlay(hub)
		var ct *telemetry.Tracer
		if f.trace != nil {
			ct = telemetry.NewTracer()
		}
		f.cells = append(f.cells, &cell{
			index: i,
			start: start,
			nodes: n,
			cache: overlay,
			trace: ct,
			sched: cluster.New(cluster.Options{
				Nodes:              n,
				Seed:               opts.Seed + int64(i)*1_000_003,
				ScreenIterations:   opts.ScreenIterations,
				ScreenWorkers:      1,
				SharedProfiles:     overlay,
				SharedCalibrations: cals,
				Trace:              ct,
			}),
		})
	}
	f.part = newPartitioner(resource.Default(), hub, f.cells)
	opts.Obs.RegisterCells(numCells)
	return f, nil
}

// cellOf maps a global node id to its cell.
func (f *Fleet) cellOf(node int) *cell {
	return f.cells[node/f.opts.CellNodes]
}

// Run executes the simulation to its horizon and returns the summary.
// A fleet runs once; decisions depend on cache state, so re-running
// the same Fleet would not replay.
func (f *Fleet) Run() (Summary, error) {
	if f.ran {
		return Summary{}, errors.New("fleet: already ran; build a new Fleet")
	}
	f.ran = true
	for _, d := range f.opts.Deaths.Schedule(f.opts.Nodes, f.opts.Duration) {
		f.queue.push(&event{at: d.At, kind: evDeath, node: d.Node})
	}
	f.pushNextArrival()

	sum := Summary{
		Nodes:    f.opts.Nodes,
		Cells:    len(f.cells),
		Shards:   f.opts.Shards,
		Duration: f.opts.Duration,
	}
	epochs := int(math.Ceil(f.opts.Duration / f.opts.Epoch))
	for e := 0; e < epochs; e++ {
		epochEnd := float64(e+1) * f.opts.Epoch
		if e == epochs-1 {
			epochEnd = f.opts.Duration
		}
		if err := f.drain(epochEnd, &sum); err != nil {
			return Summary{}, err
		}
		f.placeEpoch()
		if err := f.barrier(e, epochEnd, &sum); err != nil {
			return Summary{}, err
		}
	}
	sum.Epochs = epochs
	sum.CacheEntries = f.hub.Len()
	sum.Demand = f.part.total()
	for _, c := range f.cells {
		s := c.sched.Stats()
		sum.Cluster.Placements += s.Placements
		sum.Cluster.Rejections += s.Rejections
		sum.Cluster.PrefilterRejects += s.PrefilterRejects
		sum.Cluster.CacheHits += s.CacheHits
		sum.Cluster.CacheMisses += s.CacheMisses
		sum.Cluster.CacheNearHits += s.CacheNearHits
		sum.Cluster.Screens += s.Screens
		sum.Cluster.WarmScreens += s.WarmScreens
		sum.Cluster.BOIterations += s.BOIterations
		sum.Cluster.VerifyWindows += s.VerifyWindows
	}
	return sum, nil
}

// pushNextArrival generates and enqueues the next traffic arrival, if
// it falls inside the horizon.
func (f *Fleet) pushNextArrival() {
	a := f.gen.next()
	if a.at >= f.opts.Duration {
		return
	}
	j := &job{
		id:       int64(len(f.jobs)),
		workload: a.workload,
		load:     a.load,
		duration: a.duration,
		arriveAt: a.at,
		cell:     -1,
		node:     -1,
		excluded: make([]bool, len(f.cells)),
	}
	f.jobs = append(f.jobs, j)
	f.queue.push(&event{at: a.at, kind: evArrival, job: j})
}

// drain is the epoch's sequential part: pop every event before the
// boundary in (time, seq) order and route it. All partitioner and
// registry mutation happens here or at the barrier — never inside the
// concurrent phase.
func (f *Fleet) drain(epochEnd float64, sum *Summary) error {
	for {
		at, ok := f.queue.peekAt()
		if !ok || at >= epochEnd {
			return nil
		}
		ev := f.queue.pop()
		switch ev.kind {
		case evArrival:
			f.onArrival(ev, sum)
		case evDeparture:
			if err := f.onDeparture(ev, sum); err != nil {
				return err
			}
		case evDeath:
			if err := f.onDeath(ev, sum); err != nil {
				return err
			}
		}
	}
}

// onArrival routes one arrival (fresh or retry) to a cell. Fresh
// arrivals also prime the next one, keeping exactly one future
// arrival in the queue — the stream never materializes.
func (f *Fleet) onArrival(ev *event, sum *Summary) {
	j := ev.job
	fresh := j.attempts == 0
	if fresh {
		f.stats.arrivals.Inc()
		sum.Arrivals++
		f.pushNextArrival()
	} else {
		f.stats.retries.Inc()
		sum.Retries++
	}
	if j.gone || j.arriveAt+j.duration <= ev.at {
		// The job's service time ran out while it waited for a retry.
		j.gone = true
		f.stats.lost.Inc()
		sum.Lost++
		return
	}
	if j.demand == 0 {
		d, err := f.part.jobDemand(j.workload, j.load)
		if err != nil {
			// An unknown workload cannot be placed anywhere; reject.
			f.stats.rejections.Inc()
			sum.Rejections++
			return
		}
		j.demand = d
	}
	c := f.part.assign(j.excluded)
	if c < 0 {
		f.stats.rejections.Inc()
		sum.Rejections++
		return
	}
	j.attempts++
	j.cell = c
	f.part.add(c, j.demand)
	f.trace.Emit(telemetry.JobArrival(ev.at, j.workload, c, j.attempts, j.load))
	f.cells[c].queue = append(f.cells[c].queue, pending{job: j})
}

// onDeparture releases a placed job's node share at the end of its
// service time. Stale events — the job was displaced by a node death
// and re-placed since — are ignored; a departure for a job still
// waiting on a retry marks it gone.
func (f *Fleet) onDeparture(ev *event, sum *Summary) error {
	j := ev.job
	if ev.gen != j.gen {
		return nil
	}
	if !j.placed {
		j.gone = true
		return nil
	}
	c := f.cells[j.cell]
	if err := c.sched.Remove(j.node-c.start, j.request()); err != nil {
		return fmt.Errorf("fleet: departure of job %d: %w", j.id, err)
	}
	j.placed = false
	f.part.sub(j.cell, j.demand)
	f.trace.Emit(telemetry.JobDeparture(ev.at, j.workload, j.node))
	f.stats.departures.Inc()
	sum.Departures++
	j.node, j.cell = -1, -1
	return nil
}

// onDeath fails one node and resettles its jobs. The owning cell's
// scheduler rehomes within the cell; jobs it cannot keep re-enter the
// event queue as retries at the death's own timestamp, so they try
// another cell in this same epoch. Deaths drawn for an already-dead
// node are skipped (the plan's stream stays draw-independent).
func (f *Fleet) onDeath(ev *event, sum *Summary) error {
	if f.dead[ev.node] {
		return nil
	}
	f.dead[ev.node] = true
	c := f.cellOf(ev.node)
	f.part.kill(c.index)
	f.stats.deaths.Inc()
	sum.Deaths++
	outcomes, err := c.sched.FailNode(ev.node - c.start)
	if err != nil {
		return fmt.Errorf("fleet: death of node %d: %w", ev.node, err)
	}
	for _, o := range outcomes {
		j := f.matchDisplaced(ev.node, o.Request)
		if j == nil {
			return fmt.Errorf("fleet: death of node %d displaced unknown job %s", ev.node, o.Request.Workload)
		}
		if o.Err == nil {
			// Rehomed within the cell; same demand, new node.
			j.node = c.start + o.Node
			j.gen++
			f.queue.push(&event{at: j.departAt(ev.at), kind: evDeparture, job: j, gen: j.gen})
			f.stats.rehomed.Inc()
			sum.Rehomed++
			continue
		}
		if !errors.Is(o.Err, cluster.ErrUnplaceable) {
			return fmt.Errorf("fleet: rehoming job %d: %w", j.id, o.Err)
		}
		// The cell is full; send the job back through the partitioner,
		// excluding the cell that just turned it away.
		j.placed = false
		j.node, j.cell = -1, -1
		j.gen++
		f.part.sub(c.index, j.demand)
		j.excluded[c.index] = true
		f.queue.push(&event{at: ev.at, kind: evArrival, job: j})
	}
	return nil
}

// matchDisplaced finds the lowest-id placed job on the failed node
// matching the drained request. Identical requests are
// interchangeable, so lowest-id matching keeps displacement
// deterministic. A matched job is updated by the caller and no longer
// matches, so no claim set is needed.
func (f *Fleet) matchDisplaced(node int, req cluster.Request) *job {
	for _, j := range f.jobs {
		if j.placed && !j.gone && j.node == node &&
			j.workload == req.Workload && j.load == req.Load {
			return j
		}
	}
	return nil
}

// departAt schedules a placed job's departure: its service time from
// arrival, but never before the current instant (a displaced job
// whose time already ran out departs immediately at its re-placement
// commit).
func (j *job) departAt(now float64) float64 {
	at := j.arriveAt + j.duration
	if at < now {
		return now
	}
	return at
}

// placeEpoch is the concurrent phase: each shard walks its cells
// (c ≡ s mod Shards) and each cell places its queued arrivals in
// order. A shard writes only to its own cells' queues, cells share no
// mutable state, so the phase is race-free and its outcomes are
// independent of the shard count.
func (f *Fleet) placeEpoch() {
	par.Go(f.opts.Shards, func(s int) {
		for ci := s; ci < len(f.cells); ci += f.opts.Shards {
			c := f.cells[ci]
			for i := range c.queue {
				//lint:allow emitorder each cell's scheduler traces into that cell's private tracer, MergeDrained at the barrier in cell index order
				c.queue[i].p, c.queue[i].err = c.sched.Place(c.queue[i].job.request())
			}
		}
	})
}

// barrier is the epoch's sequential tail, in cell index order: merge
// cell traces, commit outcomes, schedule departures and retries, and
// sync newly screened profile entries up to the hub and back down to
// every cell. Everything here is a pure function of the cells' (own)
// deterministic state, so the barrier output is byte-identical for
// every shard count.
func (f *Fleet) barrier(epoch int, epochEnd float64, sum *Summary) error {
	placed := 0
	var samples []obs.CellSample
	if f.opts.Obs != nil {
		samples = make([]obs.CellSample, 0, len(f.cells))
	}
	for _, c := range f.cells {
		f.trace.MergeDrain(c.trace, c.start)
		cellPlaced, cellViol, cellRejected := 0, 0, 0
		for i := range c.queue {
			p := &c.queue[i]
			j := p.job
			if p.err == nil {
				j.placed = true
				j.node = c.start + p.p.Node
				j.gen++
				f.queue.push(&event{at: j.departAt(epochEnd), kind: evDeparture, job: j, gen: j.gen})
				f.stats.placements.Inc()
				f.stats.shardPlacements[c.index%f.opts.Shards].Inc()
				sum.Placements++
				placed++
				cellPlaced++
				if !p.p.Result.QoSMeetable {
					cellViol++
				}
				sum.Decisions = append(sum.Decisions, Decision{
					Job: j.id, At: j.arriveAt, Workload: j.workload, Load: j.load,
					Cell: c.index, Node: j.node, Attempt: j.attempts,
					QoSOK: p.p.Result.QoSMeetable,
				})
				continue
			}
			cellRejected++
			if !errors.Is(p.err, cluster.ErrUnplaceable) {
				return fmt.Errorf("fleet: placing job %d: %w", j.id, p.err)
			}
			f.part.sub(c.index, j.demand)
			j.excluded[c.index] = true
			j.cell = -1
			switch {
			case j.arriveAt+j.duration <= epochEnd:
				// Too short-lived to survive another epoch of waiting.
				j.gone = true
				f.stats.lost.Inc()
				sum.Lost++
			case j.attempts >= f.opts.MaxAttempts || epochEnd >= f.opts.Duration:
				f.stats.rejections.Inc()
				sum.Rejections++
			default:
				f.queue.push(&event{at: epochEnd, kind: evArrival, job: j})
			}
		}
		c.queue = c.queue[:0]
		if f.opts.Obs != nil {
			// Per-cell rollup delta since the last barrier, read on the
			// sequential tail so the sample stream is shard-invariant.
			s := c.sched.Stats()
			d := s
			d.CacheHits -= c.prev.CacheHits
			d.CacheNearHits -= c.prev.CacheNearHits
			d.CacheMisses -= c.prev.CacheMisses
			d.BOIterations -= c.prev.BOIterations
			d.Screens -= c.prev.Screens
			c.prev = s
			samples = append(samples, obs.CellSample{
				Cell:         c.index,
				Placed:       cellPlaced,
				Violations:   cellViol,
				Rejected:     cellRejected,
				CacheHits:    d.CacheHits + d.CacheNearHits,
				CacheLookups: d.CacheHits + d.CacheNearHits + d.CacheMisses,
				BOIterations: d.BOIterations,
				Screens:      d.Screens,
			})
		}
	}

	// Cache sync: adopt each cell's new screening memos into the hub
	// in cell order (first write wins — the same rule the scheduler
	// itself applies to equivalent candidates), then fan the hub's new
	// entries back to every cell. After this point all cells enter the
	// next epoch with identical cache contents.
	for _, c := range f.cells {
		entries, mark := c.cache.EntriesSince(c.mark)
		c.mark = mark
		for _, e := range entries {
			f.hub.Store(e)
		}
	}
	fresh, hubMark := f.hub.EntriesSince(f.hubMrk)
	f.hubMrk = hubMark
	for _, c := range f.cells {
		for _, e := range fresh {
			if c.cache.Store(e) {
				// Adopted entries join the overlay's journal; advance the
				// mark past them so the next barrier does not echo them
				// back to the hub.
				c.mark++
			}
		}
	}

	f.opts.Obs.ObserveCells(epochEnd, epoch, samples)
	if f.trace != nil {
		f.trace.Emit(telemetry.FleetEpoch(epochEnd, epoch, placed, f.part.total()))
	}
	f.stats.epochs.Inc()
	return nil
}
