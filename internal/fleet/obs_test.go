package fleet

import (
	"bytes"
	"testing"

	"clite/internal/obs"
)

// runFleetObs executes one fleet with the SLO plane attached and
// returns the store's three textual outputs plus the alert stream —
// the byte surfaces the invariance contract covers.
func runFleetObs(t *testing.T, opts Options) (ledger, slo, cells string, alerts []byte) {
	t.Helper()
	store := obs.NewStore(obs.Options{})
	opts.Obs = store
	f, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := f.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := store.WriteAlertsJSONL(&buf); err != nil {
		t.Fatalf("WriteAlertsJSONL: %v", err)
	}
	return store.FormatLedger(), store.FormatSLO(), store.FormatCells(), buf.Bytes()
}

// TestObsSmoke: a seeded fleet feeds the SLO plane one ledger row per
// epoch, with placement totals that match the fleet summary.
func TestObsSmoke(t *testing.T) {
	store := obs.NewStore(obs.Options{})
	opts := smallOpts(42, 2)
	opts.Obs = store
	f, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sum, err := f.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	led := store.Ledger()
	if len(led) != sum.Epochs {
		t.Fatalf("ledger rows = %d, epochs = %d", len(led), sum.Epochs)
	}
	placed := 0
	for _, r := range led {
		placed += r.Placed
	}
	if placed != sum.Placements {
		t.Fatalf("ledger placed %d, summary placed %d", placed, sum.Placements)
	}
	fs := store.FleetStatus()
	if fs.Epochs != sum.Epochs || int(fs.Placed) != sum.Placements {
		t.Fatalf("fleet status %+v disagrees with summary %+v", fs, sum)
	}
	if cs := store.CellStatuses(); len(cs) != sum.Cells {
		t.Fatalf("cell statuses = %d, cells = %d", len(cs), sum.Cells)
	}
}

// TestObsShardInvariance is the observability acceptance bar: the SLO
// ledger, the alert stream, and the /slo and /cells views are
// byte-identical whatever the shard count, because the barrier feeds
// the store sequentially in cell order.
func TestObsShardInvariance(t *testing.T) {
	baseLedger, baseSLO, baseCells, baseAlerts := runFleetObs(t, smallOpts(7, 1))
	if baseLedger == "" {
		t.Fatal("baseline produced no ledger")
	}
	for _, shards := range []int{2, 4} {
		ledger, slo, cells, alerts := runFleetObs(t, smallOpts(7, shards))
		if ledger != baseLedger {
			t.Errorf("%d-shard SLO ledger diverged:\n%s\nvs\n%s", shards, ledger, baseLedger)
		}
		if slo != baseSLO {
			t.Errorf("%d-shard /slo view diverged:\n%s\nvs\n%s", shards, slo, baseSLO)
		}
		if cells != baseCells {
			t.Errorf("%d-shard /cells view diverged:\n%s\nvs\n%s", shards, cells, baseCells)
		}
		if !bytes.Equal(alerts, baseAlerts) {
			t.Errorf("%d-shard alert stream diverged:\n%s\nvs\n%s", shards, alerts, baseAlerts)
		}
	}
}
