package bo

import (
	"testing"

	"clite/internal/resource"
)

// TestBatchedEIMatchesScalar runs the engine with the batched
// acquisition path (gradient probes scored through one PredictBatch
// call) and with DisableBatchedEI (per-point posterior calls) and
// demands the entire decision sequence be identical: batching
// restructures only the scheduling across probe points, never a
// point's operation chain, so any divergence is a bug.
func TestBatchedEIMatchesScalar(t *testing.T) {
	topo := resource.Small()
	for seed := int64(1); seed <= 4; seed++ {
		opts := Options{Seed: seed, MaxIterations: 20}
		batched := traceOf(t, topo, 3, opts)
		scalar := opts
		scalar.DisableBatchedEI = true
		diffTraces(t, "batched vs scalar EI", batched, traceOf(t, topo, 3, scalar))
	}
}

// TestRunnerReuseMatchesFreshRuns drives one Runner through several
// runs (alternating worker counts to exercise the pool rebuild) and
// demands each matches a fresh bo.Run byte for byte: arena reuse must
// be invisible in every decision.
func TestRunnerReuseMatchesFreshRuns(t *testing.T) {
	topo := resource.Small()
	r, err := NewRunner(topo, 3)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	for seed := int64(1); seed <= 4; seed++ {
		opts := Options{Seed: seed, MaxIterations: 16, Workers: int(seed%2)*3 + 1}
		want := traceOf(t, topo, 3, opts)
		res, err := r.Run(bowlEval(topo, mustTarget(topo, 3, opts.Seed+100)), opts)
		if err != nil {
			t.Fatalf("Runner.Run: %v", err)
		}
		got := runTrace{
			bestKey:   res.Best.Config.Key(),
			bestScore: res.Best.Eval.Score,
			iters:     res.Iterations,
			converged: res.Converged,
		}
		for _, s := range res.Samples {
			got.keys = append(got.keys, s.Config.Key())
			got.scores = append(got.scores, s.Eval.Score)
		}
		diffTraces(t, "reused runner vs fresh run", want, got)
	}
}

// TestRunnerSteadyStateAllocs pins the warmed Runner's allocation
// behaviour: with an allocation-free evaluator, a whole run through
// reused arenas must stay within a small fixed budget (the per-run
// RNG and acquisition boxing plus a handful of per-iteration closure
// captures) — nothing may scale with samples or iterations anymore.
func TestRunnerSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are nondeterministic under -race (sync.Pool shedding)")
	}
	topo := resource.Small()
	const nJobs = 2
	target := mustTarget(topo, nJobs, 55)
	norm := 0.0
	for _, a := range target.Jobs {
		for r := range a {
			u := float64(topo[r].Units)
			norm += u * u
		}
	}
	// The engine copies JobPerf out of every Evaluation, so the
	// evaluator may reuse one slice across calls.
	jobPerf := make([]float64, nJobs)
	eval := func(cfg resource.Config) (Evaluation, error) {
		var d float64
		for j := range cfg.Jobs {
			var dj float64
			for r := range cfg.Jobs[j] {
				diff := float64(cfg.Jobs[j][r] - target.Jobs[j][r])
				dj += diff * diff
			}
			jobPerf[j] = 1 - dj/norm
			d += dj
		}
		return Evaluation{Score: 1 - d/norm, JobPerf: jobPerf}, nil
	}
	r, err := NewRunner(topo, nJobs)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	opts := Options{Seed: 7, MaxIterations: 6, Workers: 1}
	run := func() {
		if _, err := r.Run(eval, opts); err != nil {
			t.Fatalf("Runner.Run: %v", err)
		}
	}
	run() // warm the arenas
	allocs := testing.AllocsPerRun(5, run)
	// ~6 bootstrap evaluations + 6 iterations + the closing fit; the
	// old engine allocated ~850 per iteration. The budget covers the
	// per-run fixtures (RNG, acquisition boxing, telemetry lookups)
	// and a few closure captures per Maximize call.
	if allocs > 60 {
		t.Fatalf("steady-state Run allocated %.1f times (want ≤ 60 fixed costs)", allocs)
	}
}
