//go:build race

package bo

// raceEnabled gates allocation-count assertions: sync.Pool sheds items
// under the race detector, making counts nondeterministic.
const raceEnabled = true
