package bo

import (
	"testing"

	"clite/internal/resource"
)

func TestExtraBootstrapIsEvaluatedFirst(t *testing.T) {
	topo := resource.Small()
	nJobs := 2
	warm := resource.Config{Jobs: []resource.Allocation{{7, 2, 6}, {3, 8, 4}}}
	var evaluated []string
	eval := func(cfg resource.Config) (Evaluation, error) {
		evaluated = append(evaluated, cfg.Key())
		return Evaluation{Score: 0.6, JobPerf: []float64{1, 1}}, nil
	}
	_, err := Run(topo, nJobs, eval, Options{
		Seed: 1, MaxIterations: 1,
		ExtraBootstrap: []resource.Config{warm},
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range evaluated {
		if k == warm.Key() {
			found = true
		}
	}
	if !found {
		t.Error("warm-start configuration was never evaluated")
	}
}

func TestExtraBootstrapValidated(t *testing.T) {
	topo := resource.Small()
	bad := resource.Config{Jobs: []resource.Allocation{{20, 2, 6}, {3, 8, 4}}} // breaks sums
	_, err := Run(topo, 2, func(resource.Config) (Evaluation, error) {
		return Evaluation{Score: 0.5, JobPerf: []float64{1, 1}}, nil
	}, Options{Seed: 1, MaxIterations: 1, ExtraBootstrap: []resource.Config{bad}})
	if err == nil {
		t.Error("infeasible warm start should be rejected")
	}
}

func TestSeedConfigsReplaceBootstrap(t *testing.T) {
	topo := resource.Small()
	nJobs := 2
	seedA := resource.Config{Jobs: []resource.Allocation{{7, 2, 6}, {3, 8, 4}}}
	seedB := resource.Config{Jobs: []resource.Allocation{{4, 6, 5}, {6, 4, 5}}}
	var evaluated []string
	_, err := Run(topo, nJobs, func(cfg resource.Config) (Evaluation, error) {
		evaluated = append(evaluated, cfg.Key())
		return Evaluation{Score: 0.6, JobPerf: []float64{1, 1}}, nil
	}, Options{
		Seed: 1, MaxIterations: 1, RandomBootstrapExtra: -1,
		SeedConfigs: []resource.Config{seedA, seedB},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two seeds + one acquisition iteration: the engineered
	// equal-split/extremum samples must not appear.
	if len(evaluated) != 3 {
		t.Fatalf("%d evaluations, want 3 (2 seeds + 1 iteration): %v", len(evaluated), evaluated)
	}
	if evaluated[0] != seedA.Key() || evaluated[1] != seedB.Key() {
		t.Errorf("seeds not evaluated first in order: %v", evaluated[:2])
	}
	engineered := resource.EqualSplit(topo, nJobs).Key()
	for _, k := range evaluated {
		if k == engineered {
			t.Error("engineered bootstrap ran despite SeedConfigs")
		}
	}
}

func TestSeedConfigsValidated(t *testing.T) {
	topo := resource.Small()
	bad := resource.Config{Jobs: []resource.Allocation{{20, 2, 6}, {3, 8, 4}}} // breaks sums
	_, err := Run(topo, 2, func(resource.Config) (Evaluation, error) {
		return Evaluation{Score: 0.5, JobPerf: []float64{1, 1}}, nil
	}, Options{Seed: 1, MaxIterations: 1, SeedConfigs: []resource.Config{bad}})
	if err == nil {
		t.Error("invalid seed config should be rejected")
	}
}

func TestRandomBootstrapExtraControlsSeedCount(t *testing.T) {
	topo := resource.Small()
	nJobs := 2
	count := func(extra int) int {
		n := 0
		_, err := Run(topo, nJobs, func(resource.Config) (Evaluation, error) {
			n++
			return Evaluation{Score: 0.6, JobPerf: []float64{1, 1}}, nil
		}, Options{Seed: 5, MaxIterations: 1, RandomBootstrapExtra: extra})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	withDefault := count(0) // default: 3 random extras
	withNone := count(-1)
	if withDefault <= withNone {
		t.Errorf("default random extras (%d evals) should exceed disabled (%d)", withDefault, withNone)
	}
	// Disabled: equal split + 2 extrema + 1 acquisition = 4 evals.
	if withNone != nJobs+2 {
		t.Errorf("disabled extras: %d evals, want %d", withNone, nJobs+2)
	}
}

func TestStagnationWindowDisabled(t *testing.T) {
	// With stagnation disabled and a flat objective the run should hit
	// the iteration cap rather than converge early — but only after
	// feasibility (score > 0.5) per the termination gating, so use a
	// "feasible" flat score.
	topo := resource.Small()
	res, err := Run(topo, 2, func(resource.Config) (Evaluation, error) {
		return Evaluation{Score: 0.7, JobPerf: []float64{1, 1}}, nil
	}, Options{Seed: 7, MaxIterations: 12, StagnationWindow: -1, TerminationEI: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged && res.Iterations < 12 {
		t.Errorf("flat run converged at %d iterations with stagnation disabled (EI rule?)", res.Iterations)
	}
}
