package bo

import (
	"testing"

	"clite/internal/resource"
)

// runTrace captures everything downstream code consumes from a Run.
type runTrace struct {
	keys      []string
	scores    []float64
	bestKey   string
	bestScore float64
	iters     int
	converged bool
}

func traceOf(t *testing.T, topo resource.Topology, nJobs int, opts Options) runTrace {
	t.Helper()
	target := mustTarget(topo, nJobs, opts.Seed+100)
	res, err := Run(topo, nJobs, bowlEval(topo, target), opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	tr := runTrace{
		bestKey:   res.Best.Config.Key(),
		bestScore: res.Best.Eval.Score,
		iters:     res.Iterations,
		converged: res.Converged,
	}
	for _, s := range res.Samples {
		tr.keys = append(tr.keys, s.Config.Key())
		tr.scores = append(tr.scores, s.Eval.Score)
	}
	return tr
}

func diffTraces(t *testing.T, label string, a, b runTrace) {
	t.Helper()
	if len(a.keys) != len(b.keys) {
		t.Fatalf("%s: sample counts diverged: %d vs %d", label, len(a.keys), len(b.keys))
	}
	for i := range a.keys {
		if a.keys[i] != b.keys[i] || a.scores[i] != b.scores[i] {
			t.Fatalf("%s: sample %d diverged: %s (%v) vs %s (%v)",
				label, i, a.keys[i], a.scores[i], b.keys[i], b.scores[i])
		}
	}
	if a.bestKey != b.bestKey || a.bestScore != b.bestScore {
		t.Fatalf("%s: best diverged: %s (%v) vs %s (%v)",
			label, a.bestKey, a.bestScore, b.bestKey, b.bestScore)
	}
	if a.iters != b.iters || a.converged != b.converged {
		t.Fatalf("%s: termination diverged: (%d,%v) vs (%d,%v)",
			label, a.iters, a.converged, b.iters, b.converged)
	}
}

// TestIncrementalFitMatchesRefit runs the engine with the incremental
// surrogate path (rank-1 Cholesky appends against the retained grid of
// models) and with DisableIncrementalFit (fresh O(n³) refits every
// iteration) and demands the entire decision sequence — every sampled
// configuration, every score, the termination point, and the returned
// best — be identical. The surrogate posteriors agree to rounding
// error, so any divergence means the incremental path changed an
// argmax somewhere.
func TestIncrementalFitMatchesRefit(t *testing.T) {
	topo := resource.Small()
	for seed := int64(1); seed <= 4; seed++ {
		opts := Options{Seed: seed, MaxIterations: 20}
		inc := traceOf(t, topo, 3, opts)
		ref := opts
		ref.DisableIncrementalFit = true
		refit := traceOf(t, topo, 3, ref)
		diffTraces(t, "incremental vs refit", inc, refit)
	}
}

// TestParallelRunIsByteIdentical runs the engine sequentially
// (Workers=1) and with a worker pool (Workers=8) and demands identical
// traces: the parallel surrogate conditioning and acquisition search
// must not leak goroutine scheduling into any decision.
func TestParallelRunIsByteIdentical(t *testing.T) {
	topo := resource.Small()
	for seed := int64(1); seed <= 3; seed++ {
		seq := traceOf(t, topo, 3, Options{Seed: seed, MaxIterations: 16, Workers: 1})
		par := traceOf(t, topo, 3, Options{Seed: seed, MaxIterations: 16, Workers: 8})
		diffTraces(t, "sequential vs parallel", seq, par)
	}
}
