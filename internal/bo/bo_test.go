package bo

import (
	"errors"
	"math"
	"testing"

	"clite/internal/resource"
	"clite/internal/stats"
)

func TestAcquisitionEIKnownValues(t *testing.T) {
	ei := EI{Zeta: 0}
	// σ=0 → 0 (Eq. 2's second branch).
	if got := ei.Value(5, 0, 1); got != 0 {
		t.Errorf("EI with σ=0 = %v, want 0", got)
	}
	// mean == best, σ=1: EI = φ(0) = 0.3989...
	if got := ei.Value(1, 1, 1); math.Abs(got-0.3989422804014327) > 1e-9 {
		t.Errorf("EI = %v, want φ(0)", got)
	}
	// Far above best: EI ≈ improvement.
	if got := ei.Value(10, 0.1, 1); math.Abs(got-9) > 0.01 {
		t.Errorf("EI = %v, want ≈9", got)
	}
	// Far below best: EI ≈ 0 but non-negative.
	if got := ei.Value(-10, 0.1, 1); got < 0 || got > 1e-6 {
		t.Errorf("EI = %v, want ≈0+", got)
	}
}

func TestAcquisitionZetaEncouragesExploration(t *testing.T) {
	// With a larger ζ, a merely-average point scores relatively lower,
	// shifting preference toward high-variance points.
	meanish := func(zeta float64) float64 { return EI{Zeta: zeta}.Value(1.01, 0.01, 1) }
	uncertain := func(zeta float64) float64 { return EI{Zeta: zeta}.Value(1.0, 0.3, 1) }
	smallZetaRatio := uncertain(0.001) / meanish(0.001)
	bigZetaRatio := uncertain(0.2) / meanish(0.2)
	if bigZetaRatio <= smallZetaRatio {
		t.Errorf("larger ζ should favour uncertainty: %v vs %v", bigZetaRatio, smallZetaRatio)
	}
}

func TestAcquisitionPIAndUCB(t *testing.T) {
	pi := PI{Zeta: 0}
	if got := pi.Value(2, 1, 1); math.Abs(got-0.8413447460685429) > 1e-9 {
		t.Errorf("PI = %v, want Φ(1)", got)
	}
	if got := pi.Value(2, 0, 1); got != 0 {
		t.Errorf("PI with σ=0 = %v", got)
	}
	ucb := UCB{Beta: 2}
	if got := ucb.Value(1, 0.5, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("UCB = %v, want 1", got)
	}
	if got := ucb.Value(0, 0.1, 10); got != 0 {
		t.Errorf("UCB should clamp at 0: %v", got)
	}
	for _, a := range []Acquisition{EI{Zeta: 0.01}, PI{Zeta: 0.01}, UCB{Beta: 2}} {
		if a.Name() == "" {
			t.Error("acquisitions must be named")
		}
	}
}

// bowlEval builds a deterministic objective over configs: a concave
// bowl peaked at `target` with per-job performance curves, emulating
// the Eq. 3 score shape (bounded to [0,1]).
func bowlEval(topo resource.Topology, target resource.Config) EvalFunc {
	norm := 0.0
	for _, a := range target.Jobs {
		for r := range a {
			u := float64(topo[r].Units)
			norm += u * u
		}
	}
	return func(cfg resource.Config) (Evaluation, error) {
		var d float64
		jobPerf := make([]float64, len(cfg.Jobs))
		for j := range cfg.Jobs {
			var dj float64
			for r := range cfg.Jobs[j] {
				diff := float64(cfg.Jobs[j][r] - target.Jobs[j][r])
				dj += diff * diff
			}
			jobPerf[j] = 1 - dj/norm
			d += dj
		}
		return Evaluation{Score: 1 - d/norm, JobPerf: jobPerf}, nil
	}
}

func mustTarget(topo resource.Topology, nJobs int, seed int64) resource.Config {
	return resource.Random(topo, nJobs, stats.NewRNG(seed))
}

func TestRunValidation(t *testing.T) {
	topo := resource.Small()
	if _, err := Run(topo, 0, nil, Options{}); err == nil {
		t.Error("zero jobs should fail")
	}
	if _, err := Run(topo, 50, nil, Options{}); err == nil {
		t.Error("more jobs than units should fail")
	}
}

func TestRunPropagatesEvalErrors(t *testing.T) {
	topo := resource.Small()
	boom := errors.New("boom")
	_, err := Run(topo, 2, func(resource.Config) (Evaluation, error) {
		return Evaluation{}, boom
	}, Options{Seed: 1})
	if !errors.Is(err, boom) {
		t.Errorf("expected eval error to propagate, got %v", err)
	}
}

func TestBootstrapIsEngineeredByDefault(t *testing.T) {
	topo := resource.Small()
	nJobs := 3
	var first []resource.Config
	eval := func(cfg resource.Config) (Evaluation, error) {
		if len(first) < nJobs+1 {
			first = append(first, cfg.Clone())
		}
		return Evaluation{Score: 0.5, JobPerf: []float64{0.5, 0.5, 0.5}}, nil
	}
	if _, err := Run(topo, nJobs, eval, Options{Seed: 2, MaxIterations: 1}); err != nil {
		t.Fatal(err)
	}
	if !first[0].Equal(resource.EqualSplit(topo, nJobs)) {
		t.Errorf("first bootstrap sample should be the equal split: %v", first[0])
	}
	for j := 0; j < nJobs; j++ {
		if !first[j+1].Equal(resource.Extremum(topo, nJobs, j)) {
			t.Errorf("bootstrap sample %d should be job %d's extremum: %v", j+1, j, first[j+1])
		}
	}
}

func TestRandomBootstrapAblation(t *testing.T) {
	topo := resource.Small()
	nJobs := 2
	var first resource.Config
	got := false
	eval := func(cfg resource.Config) (Evaluation, error) {
		if !got {
			first = cfg.Clone()
			got = true
		}
		return Evaluation{Score: 0.5, JobPerf: []float64{0.5, 0.5}}, nil
	}
	if _, err := Run(topo, nJobs, eval, Options{Seed: 3, MaxIterations: 1, RandomBootstrap: true}); err != nil {
		t.Fatal(err)
	}
	if first.Equal(resource.EqualSplit(topo, nJobs)) {
		t.Error("random bootstrap should not start with the equal split (for this seed)")
	}
}

func TestRunFindsBowlOptimum(t *testing.T) {
	topo := resource.Small()
	nJobs := 2
	target := mustTarget(topo, nJobs, 99)
	res, err := Run(topo, nJobs, bowlEval(topo, target), Options{Seed: 4, MaxIterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Eval.Score < 0.98 {
		t.Errorf("BO best score = %v (best config %v, target %v)", res.Best.Eval.Score, res.Best.Config, target)
	}
	for _, s := range res.Samples {
		if err := s.Config.Validate(topo); err != nil {
			t.Fatalf("sampled infeasible config: %v", err)
		}
	}
}

func TestRunBeatsRandomSearchAtEqualBudget(t *testing.T) {
	topo := resource.Default()
	nJobs := 3
	target := mustTarget(topo, nJobs, 7)
	eval := bowlEval(topo, target)
	res, err := Run(topo, nJobs, eval, Options{Seed: 5, MaxIterations: 25})
	if err != nil {
		t.Fatal(err)
	}
	budget := len(res.Samples)
	rng := stats.NewRNG(5)
	bestRandom := math.Inf(-1)
	for i := 0; i < budget; i++ {
		ev, _ := eval(resource.Random(topo, nJobs, rng))
		if ev.Score > bestRandom {
			bestRandom = ev.Score
		}
	}
	if res.Best.Eval.Score <= bestRandom {
		t.Errorf("BO (%v) should beat random search (%v) at %d samples", res.Best.Eval.Score, bestRandom, budget)
	}
}

func TestRunConvergesAndTracksEI(t *testing.T) {
	topo := resource.Small()
	nJobs := 2
	target := mustTarget(topo, nJobs, 13)
	res, err := Run(topo, nJobs, bowlEval(topo, target), Options{Seed: 6, MaxIterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("smooth bowl should trigger EI-drop termination within 60 iterations")
	}
	if res.Iterations >= 60 {
		t.Error("termination should fire before the cap")
	}
	if len(res.EITrace) != res.Iterations {
		t.Errorf("EI trace length %d vs iterations %d", len(res.EITrace), res.Iterations)
	}
	// The trace should end below its peak (the drop in expected
	// improvement that triggers termination).
	peak := stats.Max(res.EITrace)
	last := res.EITrace[len(res.EITrace)-1]
	if last >= peak {
		t.Errorf("EI should drop by termination: peak %v, last %v", peak, last)
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	topo := resource.Small()
	nJobs := 2
	target := mustTarget(topo, nJobs, 21)
	run := func() Result {
		res, err := Run(topo, nJobs, bowlEval(topo, target), Options{Seed: 77, MaxIterations: 15})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if !a.Samples[i].Config.Equal(b.Samples[i].Config) {
			t.Fatalf("sample %d differs between identical runs", i)
		}
	}
}

func TestRunNeverRepeatsConfigurations(t *testing.T) {
	topo := resource.Small()
	nJobs := 3
	target := mustTarget(topo, nJobs, 31)
	res, err := Run(topo, nJobs, bowlEval(topo, target), Options{Seed: 8, MaxIterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, s := range res.Samples {
		k := s.Config.Key()
		if seen[k] {
			t.Fatalf("configuration %s sampled twice", k)
		}
		seen[k] = true
	}
}

func TestDropoutVariantsStillOptimize(t *testing.T) {
	topo := resource.Small()
	nJobs := 3
	target := mustTarget(topo, nJobs, 41)
	for _, opts := range []Options{
		{Seed: 9, MaxIterations: 30, DisableDropout: true},
		{Seed: 9, MaxIterations: 30, RandomDropout: true},
		{Seed: 9, MaxIterations: 30, KernelFamily: "rbf"},
		{Seed: 9, MaxIterations: 30, Acquisition: PI{Zeta: 0.01}},
		{Seed: 9, MaxIterations: 30, Acquisition: UCB{Beta: 2}},
	} {
		res, err := Run(topo, nJobs, bowlEval(topo, target), opts)
		if err != nil {
			t.Fatalf("options %+v: %v", opts, err)
		}
		if res.Best.Eval.Score < 0.9 {
			t.Errorf("options %+v: best score %v too low", opts, res.Best.Eval.Score)
		}
	}
}

func TestRunSingleJobDegenerateSpace(t *testing.T) {
	// One job owns everything: the space has a single configuration.
	topo := resource.Small()
	calls := 0
	eval := func(cfg resource.Config) (Evaluation, error) {
		calls++
		return Evaluation{Score: 1, JobPerf: []float64{1}}, nil
	}
	res, err := Run(topo, 1, eval, Options{Seed: 10, MaxIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Eval.Score != 1 {
		t.Error("single-job run should trivially succeed")
	}
}
