// Package bo implements CLITE's Bayesian-optimization engine
// (Algorithm 1 and the Sec. 4 design): a Gaussian-process surrogate
// over partition configurations, an Expected-Improvement acquisition
// with the ζ exploration factor, engineered bootstrap samples,
// dropout-copy dimensionality reduction, constrained acquisition
// maximization, and the EI-drop termination rule.
package bo

import (
	"fmt"

	"clite/internal/stats"
)

// Acquisition maps a posterior prediction (mean, std) and the
// incumbent best objective value to a "how promising is this point"
// score; the BO engine samples the feasible point that maximizes it.
type Acquisition interface {
	Value(mean, std, best float64) float64
	Name() string
}

// EI is Expected Improvement with the exploration factor ζ (Eq. 2 of
// the paper; low values such as 0.01 work well in practice, per
// Lizotte). It is the paper's choice: near-ideal exploration/
// exploitation balance at low evaluation cost.
type EI struct {
	Zeta float64
}

// Value implements Acquisition, computing Eq. 2:
// E(x) = (μ−x̂−ζ)·Ω(z) + σ·ω(z) with z = (μ−x̂−ζ)/σ, and 0 when σ = 0.
func (e EI) Value(mean, std, best float64) float64 {
	if std <= 0 {
		return 0
	}
	improve := mean - best - e.Zeta
	z := improve / std
	return improve*stats.NormCDF(z) + std*stats.NormPDF(z)
}

// Name implements Acquisition.
func (e EI) Name() string { return fmt.Sprintf("ei(zeta=%g)", e.Zeta) }

// PI is Probability of Improvement — the cheap acquisition the paper
// notes "often gets stuck in local optima"; kept for ablation.
type PI struct {
	Zeta float64
}

// Value implements Acquisition.
func (p PI) Value(mean, std, best float64) float64 {
	if std <= 0 {
		return 0
	}
	return stats.NormCDF((mean - best - p.Zeta) / std)
}

// Name implements Acquisition.
func (p PI) Name() string { return fmt.Sprintf("pi(zeta=%g)", p.Zeta) }

// UCB is the Upper Confidence Bound acquisition, expressed as expected
// improvement over the incumbent so that the engine's termination rule
// applies uniformly: value = max(0, μ + β·σ − x̂).
type UCB struct {
	Beta float64
}

// Value implements Acquisition.
func (u UCB) Value(mean, std, best float64) float64 {
	v := mean + u.Beta*std - best
	if v < 0 {
		return 0
	}
	return v
}

// Name implements Acquisition.
func (u UCB) Name() string { return fmt.Sprintf("ucb(beta=%g)", u.Beta) }
