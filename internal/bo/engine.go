package bo

import (
	"fmt"
	"math"
	"sync"
	"time"

	"clite/internal/gp"
	"clite/internal/optimize"
	"clite/internal/resource"
	"clite/internal/stats"
	"clite/internal/telemetry"
)

// Evaluation is what evaluating one configuration on the live system
// returns to the engine: the scalar objective score (Eq. 3), plus the
// per-job normalized performance the dropout-copy heuristic needs to
// decide which job is "performing the best so far".
type Evaluation struct {
	Score   float64
	JobPerf []float64
}

// EvalFunc runs the system under a configuration for one observation
// window and scores it.
type EvalFunc func(resource.Config) (Evaluation, error)

// Sample is one evaluated configuration.
type Sample struct {
	Config resource.Config
	Eval   Evaluation
}

// Options tunes the engine. The zero value reproduces the paper's
// configuration; the Disable*/Random* switches exist for the ablation
// benchmarks.
type Options struct {
	// Acquisition defaults to EI with ζ = 0.01 (Sec. 4).
	Acquisition Acquisition
	// KernelFamily defaults to "matern52" (Sec. 4); "rbf" for ablation.
	KernelFamily string
	// MaxIterations bounds post-bootstrap samples (default 64).
	MaxIterations int
	// TerminationEI is the relative expected-improvement drop
	// threshold (default 0.01 — "can be as low as 1%"). It is scaled
	// down with the number of co-located jobs, since "the curve of
	// drop in the expected improvement is slower as the number of
	// co-located jobs increase" (Sec. 4).
	TerminationEI float64
	// TerminationPatience is how many consecutive below-threshold
	// iterations end the search (default 2).
	TerminationPatience int
	// MinIterations is how many acquisition steps must run before the
	// termination rules may fire (default 2·Njobs+4): with only the
	// bootstrap samples conditioned, the surrogate's expected
	// improvement is not yet a trustworthy convergence signal.
	MinIterations int
	// StagnationWindow terminates the run when the incumbent has not
	// improved by at least 1% of the observed score range for this
	// many consecutive iterations (default 10). Measurement noise puts
	// a floor under the surrogate's expected improvement, so the
	// EI-drop rule alone can fail to fire on a noisy system; the
	// stagnation guard bounds the overhead in that regime. Set
	// negative to disable (ablation).
	StagnationWindow int
	// DisableDropout turns dropout-copy off (ablation).
	DisableDropout bool
	// RandomDropout freezes a uniformly random job instead of the
	// best-performing one (the generic dropout-copy of Li et al.,
	// kept as an ablation of CLITE's refinement).
	RandomDropout bool
	// RandomBootstrap replaces the engineered bootstrap set (equal
	// split + per-job extrema) with random samples (ablation).
	RandomBootstrap bool
	// RandomBootstrapExtra adds this many random configurations on top
	// of the engineered bootstrap (default 3; negative disables). The
	// engineered samples bracket the space's extremes but all sit on
	// its boundary; a few uniform draws give the surrogate interior
	// coverage and often land a balanced feasible starting basin.
	RandomBootstrapExtra int
	// ExploitEvery interleaves a pure posterior-mean maximization
	// every N-th iteration (default 3; negative disables).
	ExploitEvery int
	// ExtraBootstrap configurations are evaluated alongside the
	// engineered bootstrap set. Re-invocations after a load change pass
	// the previously converged partition here, so the search starts
	// from the old operating point instead of from scratch (Fig. 16).
	ExtraBootstrap []resource.Config
	// SeedConfigs replaces the whole bootstrap set (engineered or
	// random) with the given configurations: the warm-start path for
	// searches that already know where the promising region is — e.g.
	// a cluster scheduler re-screening a job mix that near-matches a
	// cached co-location profile. The engine pays one evaluation per
	// distinct seed instead of the Njobs+4 engineered bootstrap
	// samples. Because the engineered extremum samples are skipped,
	// the cannot-meet-QoS-under-maximum-allocation detection does not
	// run; callers should seed only from previously feasible runs.
	// ExtraBootstrap is still appended on top.
	SeedConfigs []resource.Config
	// RandomNeighborFallback uses a random unseen neighbour instead of
	// the objective-ranked one when integer rounding collapses onto an
	// already-sampled configuration (ablation).
	RandomNeighborFallback bool
	// Workers bounds the worker pools inside the decision loop —
	// surrogate conditioning across the hyperparameter grid and the
	// acquisition multi-starts. 0 means NumCPU, 1 forces the
	// sequential paths; results are byte-identical either way
	// (DESIGN.md §8).
	Workers int
	// DisableIncrementalFit refits the surrogate from scratch every
	// iteration (the pre-incremental O(n³) path) instead of extending
	// the retained Cholesky factors by one row. Kept as an ablation
	// and benchmarking switch; the incremental-conditioning tests pin
	// the two paths to each other.
	DisableIncrementalFit bool
	// Trace, when non-nil, receives the per-iteration timeline
	// (BOIteration and Termination events). Events carry only
	// iteration numbers and scores — never wall-clock readings — so a
	// traced run stays byte-identical to an untraced one.
	Trace *telemetry.Tracer
	// Metrics, when non-nil, receives counters and histograms
	// (iterations, fit sizes, acquisition wall time). Unlike the
	// trace, metric values may include wall-clock durations; they are
	// a profile, not part of the deterministic result.
	Metrics *telemetry.Registry
	// Seed drives all stochastic choices.
	Seed int64
}

func (o Options) acquisition() Acquisition {
	if o.Acquisition != nil {
		return o.Acquisition
	}
	return EI{Zeta: 0.01}
}

func (o Options) kernelFamily() string {
	if o.KernelFamily != "" {
		return o.KernelFamily
	}
	return "matern52"
}

func (o Options) maxIterations() int {
	if o.MaxIterations > 0 {
		return o.MaxIterations
	}
	return 80
}

func (o Options) terminationEI() float64 {
	if o.TerminationEI > 0 {
		return o.TerminationEI
	}
	return 0.01
}

func (o Options) terminationPatience() int {
	if o.TerminationPatience > 0 {
		return o.TerminationPatience
	}
	return 2
}

func (o Options) exploitEvery() int {
	if o.ExploitEvery != 0 {
		return o.ExploitEvery
	}
	return 3
}

func (o Options) stagnationWindow() int {
	if o.StagnationWindow != 0 {
		return o.StagnationWindow
	}
	return 24
}

func (o Options) minIterations(nJobs int) int {
	if o.MinIterations > 0 {
		return o.MinIterations
	}
	// The paper's EI curves drop more slowly with more co-located
	// jobs; scale the floor accordingly.
	return 2*nJobs + 4
}

// Result is the outcome of one BO run.
type Result struct {
	Best       Sample
	Samples    []Sample // in evaluation order, bootstrap included
	Iterations int      // post-bootstrap acquisition steps taken
	Converged  bool     // true if the EI-drop rule fired (vs. iteration cap)
	EITrace    []float64
}

// dropoutKeepBestProb is the probability that dropout-copy freezes the
// best-performing job rather than a random one — the "small
// probabilistic factor" the paper credits for CLITE's small residual
// run-to-run variability (Sec. 5.2, Fig. 11).
const dropoutKeepBestProb = 0.85

// Run executes Algorithm 1 over the feasible partition space.
func Run(topo resource.Topology, nJobs int, eval EvalFunc, opts Options) (Result, error) {
	if nJobs < 1 {
		return Result{}, fmt.Errorf("bo: need at least one job, got %d", nJobs)
	}
	for _, spec := range topo {
		if spec.Units < nJobs {
			return Result{}, fmt.Errorf("bo: resource %s has %d units for %d jobs", spec.Kind, spec.Units, nJobs)
		}
	}
	rng := stats.NewRNG(opts.Seed)
	acq := opts.acquisition()

	e := newEngine(topo, nJobs, opts)

	// Telemetry handles resolve to nil when disabled; every emit below
	// is a nil-guarded no-op in that case.
	trace := opts.Trace
	mIters := opts.Metrics.Counter("bo_iterations_total")
	mCollisions := opts.Metrics.Counter("bo_seen_collisions_total")
	mAcqTime := opts.Metrics.Histogram("bo_acq_seconds", telemetry.LatencyBuckets())
	mBest := opts.Metrics.Gauge("bo_best_score")

	// Bootstrap (Sec. 4): equal division plus each job's extremum —
	// Njobs+1 samples ("the number of initial samples is chosen to the
	// number of colocated jobs + 1").
	var boot []resource.Config
	if len(opts.SeedConfigs) > 0 {
		for _, cfg := range opts.SeedConfigs {
			if err := cfg.Validate(topo); err != nil {
				return Result{}, fmt.Errorf("bo: seed config: %w", err)
			}
			boot = append(boot, cfg.Clone())
		}
	} else if opts.RandomBootstrap {
		for len(boot) < nJobs+1 {
			boot = append(boot, resource.Random(topo, nJobs, rng))
		}
	} else {
		boot = append(boot, resource.EqualSplit(topo, nJobs))
		for j := 0; j < nJobs; j++ {
			boot = append(boot, resource.Extremum(topo, nJobs, j))
		}
		extra := opts.RandomBootstrapExtra
		if extra == 0 {
			extra = 3
		}
		for i := 0; i < extra; i++ {
			boot = append(boot, resource.Random(topo, nJobs, rng))
		}
	}
	for _, cfg := range opts.ExtraBootstrap {
		if err := cfg.Validate(topo); err != nil {
			return Result{}, fmt.Errorf("bo: extra bootstrap: %w", err)
		}
		boot = append(boot, cfg.Clone())
	}
	for _, cfg := range boot {
		if e.seen[cfg.Key()] {
			continue
		}
		if err := e.evaluate(cfg, eval); err != nil {
			return Result{}, err
		}
	}

	threshold := opts.terminationEI() / float64(nJobs)
	patience := 0
	stagnant := 0
	prevBest := math.Inf(-1)
	result := Result{}
	reason := "iteration-cap"
	for iter := 0; iter < opts.maxIterations(); iter++ {
		model, err := e.fit(opts.kernelFamily())
		if err != nil {
			return Result{}, err
		}
		// With noisy observations the raw best sample is biased high
		// (it is partly a lucky draw); the incumbent for both the
		// acquisition and the stagnation guard is therefore the best
		// posterior mean over the sampled points.
		_, bestMean := e.bestByPosterior(model)

		// Stagnation bookkeeping happens up front so that every kind of
		// sample — acquisition, exploitation, reshuffle probe — counts:
		// a probe that lifted the incumbent resets the counter through
		// the refitted posterior.
		scale := math.Max(e.best().Eval.Score-e.worst().Eval.Score, 0.01)
		if bestMean > prevBest+0.002*scale {
			prevBest = bestMean
			stagnant = 0
		} else {
			stagnant++
		}

		frozenJob := -1
		var frozenAlloc resource.Allocation
		// Dropout-copy needs at least three jobs: with two, the sum
		// constraint makes freezing one job pin the other completely.
		if !opts.DisableDropout && nJobs > 2 {
			frozenJob, frozenAlloc = e.chooseDropout(rng, opts.RandomDropout)
		}

		eiObjective := func(x []float64) float64 {
			s := e.scratch.Get().(*predictScratch)
			s.norm = e.normalizeInto(s.norm, x)
			mean, std, err := model.PredictWith(&s.buf, s.norm)
			e.scratch.Put(s)
			if err != nil {
				return math.Inf(-1)
			}
			return acq.Value(mean, std, bestMean)
		}

		// Once a QoS-meeting configuration exists, every third step is
		// a direct reshuffle probe: move units from the job doing best
		// to the job doing worst, across all resources at once ("CLITE
		// does not stop after meeting QoS targets, it reshuffles
		// resources to improve every job's performance", Sec. 5.2).
		// The GP cannot see across the QoS cliff until such a point is
		// sampled, so this structured exploration is what lets the
		// engine keep converting LC slack into BG throughput.
		probed := false
		if e.best().Eval.Score > 0.5 && iter%3 == 1 {
			if cand, ok := e.reshuffleProbe(rng); ok {
				probeEI := eiObjective(cand.Vector())
				result.EITrace = append(result.EITrace, probeEI)
				if err := e.evaluate(cand, eval); err != nil {
					return Result{}, err
				}
				result.Iterations++
				mIters.Inc()
				if trace != nil {
					trace.Emit(telemetry.BOIteration(iter, probeEI, e.best().Eval.Score, len(e.samples)))
				}
				probed = true
			}
		}
		if probed {
			// Probe samples do not inform the EI-drop rule (the rule is
			// about the acquisition surface, which the probe bypassed);
			// termination is evaluated on the next regular iteration.
			continue
		}
		// Every third step is pure exploitation — climb the posterior
		// mean itself. EI alone dithers near its noise floor once the
		// model is decent; interleaving mean-climbing steps converts
		// model knowledge into score steadily without giving up the
		// exploration the other two thirds provide.
		objective := eiObjective
		if ee := opts.exploitEvery(); ee > 0 && iter%ee == ee-1 {
			objective = func(x []float64) float64 {
				s := e.scratch.Get().(*predictScratch)
				s.norm = e.normalizeInto(s.norm, x)
				mean, _, err := model.PredictWith(&s.buf, s.norm)
				e.scratch.Put(s)
				if err != nil {
					return math.Inf(-1)
				}
				return mean
			}
		}
		starts := e.warmStarts()
		starts = append(starts, e.rebalanceStarts(e.best())...)
		problem := optimize.Problem{
			Topo: topo, NJobs: nJobs,
			Objective:   objective,
			FrozenJob:   frozenJob,
			FrozenAlloc: frozenAlloc,
			Starts:      starts,
			RNG:         rng,
			Workers:     opts.Workers,
		}
		// Wall-clock timing is metrics-only (a profile, never part of
		// the deterministic trace), so the clock read is skipped
		// entirely when no registry is attached.
		var acqStart time.Time
		if mAcqTime != nil {
			acqStart = time.Now() //lint:allow detrand metrics-only acq-latency histogram; a profile, never part of the deterministic trace
		}
		xStar := optimize.Maximize(problem)
		if mAcqTime != nil {
			mAcqTime.Observe(time.Since(acqStart).Seconds()) //lint:allow detrand metrics-only wall-clock duration feeding the histogram above
		}
		// The trace and the termination rule are always in EI units,
		// whichever objective picked the candidate.
		eiStar := eiObjective(xStar)
		result.EITrace = append(result.EITrace, eiStar)

		cfg := resource.RoundFeasible(topo, nJobs, xStar)
		if e.seen[cfg.Key()] {
			// Integer rounding collapsed onto an already-sampled
			// configuration; probe an unseen neighbour instead so the
			// window is not wasted re-measuring a known point.
			mCollisions.Inc()
			if opts.RandomNeighborFallback {
				cfg = e.perturb(cfg, rng)
			} else {
				cfg = e.bestUnseenNeighbor(cfg, objective, rng)
			}
		}
		if err := e.evaluate(cfg, eval); err != nil {
			return Result{}, err
		}
		result.Iterations++
		mIters.Inc()
		if trace != nil {
			trace.Emit(telemetry.BOIteration(iter, eiStar, e.best().Eval.Score, len(e.samples)))
		}

		// Termination: the expected-improvement drop rule. EI is in
		// score units, so the threshold is scaled by the observed
		// score range — before any configuration meets QoS the whole
		// surface lives in a thin slice near zero and an absolute
		// threshold would fire instantly.
		// Neither rule may fire while no sampled configuration has met
		// every QoS target (score ≤ 0.5 in the Eq. 3 convention):
		// while the engine is still hunting for feasibility it gets
		// the whole iteration budget — giving up early on barely-
		// co-locatable mixes is exactly the PARTIES failure mode
		// CLITE exists to avoid (Fig. 9b).
		feasibilityFound := e.best().Eval.Score > 0.5
		// The EI-drop rule additionally requires a few flat iterations:
		// a low acquisition maximum right after a reshuffle probe
		// improved the incumbent is the model catching up, not
		// convergence.
		if feasibilityFound && result.Iterations >= opts.minIterations(nJobs) &&
			eiStar < threshold*scale && stagnant >= 4 {
			patience++
			if patience >= opts.terminationPatience() {
				result.Converged = true
				reason = "ei-drop"
				break
			}
		} else {
			patience = 0
		}
		// Stagnation guard: measurement noise keeps EI bounded away
		// from zero, so also stop once the incumbent has been flat
		// (the counter is maintained at the top of the loop).
		if w := opts.stagnationWindow(); w > 0 && feasibilityFound &&
			result.Iterations >= opts.minIterations(nJobs) && stagnant >= w {
			result.Converged = true
			reason = "stagnation"
			break
		}
	}
	result.Samples = e.samples
	// Return the posterior-mean best under the final model: with
	// measurement noise, the raw argmax sample is the luckiest draw,
	// not the best configuration.
	if model, err := e.fit(opts.kernelFamily()); err == nil {
		idx, _ := e.bestByPosterior(model)
		result.Best = e.samples[idx]
	} else {
		result.Best = e.best()
	}
	mBest.Set(result.Best.Eval.Score)
	trace.Emit(telemetry.Termination(reason, len(result.Samples), result.Best.Eval.Score))
	return result, nil
}

// engine holds the sample set and bookkeeping for one run, plus the
// incremental surrogate state: normalized inputs are computed once per
// evaluation (not once per refit), and the Cholesky factors of the
// hyperparameter grid are retained and extended by one row per
// observation instead of being rebuilt from scratch.
type engine struct {
	topo    resource.Topology
	nJobs   int
	opts    Options
	samples []Sample
	seen    map[string]bool

	// normXs[i]/ys[i] cache the normalized input vector and score of
	// samples[i]. The rows are allocated once in evaluate and never
	// mutated, which is what lets the GPs reference them directly
	// under the Fit ownership contract.
	normXs [][]float64
	ys     []float64

	// fixed is the fixed-hyperparameter surrogate used below
	// mleMinSamples; pool holds one incrementally-conditioned GP per
	// hyperparameter grid point above it. fixedN/poolN track how many
	// samples each has been conditioned on.
	fixed  *gp.GP
	fixedN int
	pool   *gp.Pool
	poolN  int

	// scratch pools per-goroutine prediction buffers for the
	// acquisition objectives: Maximize calls them from concurrent
	// ascents, and each evaluation needs a normalized copy of the
	// candidate plus GP solve vectors.
	scratch sync.Pool

	// means/stds/batchBuf serve bestByPosterior's bulk scoring of the
	// sampled set.
	means, stds []float64
	batchBuf    gp.PredictBuf

	// Fit-path metrics (nil when no registry is attached): conditioned
	// sample counts per fit, incremental row appends, and from-scratch
	// (re)conditions — the incremental-vs-refit ledger.
	mFitSamples *telemetry.Histogram
	mFitAppends *telemetry.Counter
	mFitRefits  *telemetry.Counter
}

func newEngine(topo resource.Topology, nJobs int, opts Options) *engine {
	e := &engine{topo: topo, nJobs: nJobs, opts: opts, seen: map[string]bool{}}
	e.scratch.New = func() any { return new(predictScratch) }
	e.mFitSamples = opts.Metrics.Histogram("bo_fit_samples", telemetry.IterationBuckets())
	e.mFitAppends = opts.Metrics.Counter("bo_fit_appends_total")
	e.mFitRefits = opts.Metrics.Counter("bo_fit_refits_total")
	return e
}

// predictScratch is one goroutine's worth of objective scratch.
type predictScratch struct {
	norm []float64
	buf  gp.PredictBuf
}

func (e *engine) evaluate(cfg resource.Config, eval EvalFunc) error {
	ev, err := eval(cfg)
	if err != nil {
		return fmt.Errorf("bo: evaluating %v: %w", cfg, err)
	}
	cfg = cfg.Clone()
	e.samples = append(e.samples, Sample{Config: cfg, Eval: ev})
	e.seen[cfg.Key()] = true
	e.normXs = append(e.normXs, e.normalizeInto(nil, cfg.Vector()))
	e.ys = append(e.ys, ev.Score)
	return nil
}

// normalizeInto maps a job-major unit vector into [0,1] per dimension
// for the GP, writing into dst (grown as needed) and returning it.
func (e *engine) normalizeInto(dst, x []float64) []float64 {
	if cap(dst) < len(x) {
		dst = make([]float64, len(x))
	}
	dst = dst[:len(x)]
	nres := len(e.topo)
	for i, v := range x {
		dst[i] = v / float64(e.topo[i%nres].Units)
	}
	return dst
}

// normalize is normalizeInto with fresh storage.
func (e *engine) normalize(x []float64) []float64 {
	return e.normalizeInto(nil, x)
}

// mleMinSamples is the sample count below which hyperparameters are
// held at a fixed mid-range setting: marginal likelihood over a
// handful of points reliably prefers the over-smooth explanation,
// which collapses posterior variance and stalls exploration.
const mleMinSamples = 10

// fixedHyperModel builds the below-mleMinSamples surrogate (mid-range
// length scale, mid-range noise; deliberately not a grid point so the
// regimes stay distinguishable in tests).
func fixedHyperModel(family string) (*gp.GP, error) {
	kernel, err := gp.KernelByName(family, 0.25, 1.0)
	if err != nil {
		return nil, err
	}
	return gp.New(kernel, 1e-3), nil
}

// fit returns the surrogate conditioned on every sample so far. The
// default path is incremental: the retained Cholesky factors are
// extended by one row per new observation (O(grid·n²) per iteration),
// and model selection over the hyperparameter grid is recomputed from
// the cached log marginal likelihoods. DisableIncrementalFit falls
// back to refitting everything from scratch (O(grid·n³)); the two
// paths select the same model — the equivalence test pins it.
func (e *engine) fit(family string) (*gp.GP, error) {
	n := len(e.samples)
	e.mFitSamples.Observe(float64(n))
	if e.opts.DisableIncrementalFit {
		e.mFitRefits.Inc()
		if n < mleMinSamples {
			model, err := fixedHyperModel(family)
			if err != nil {
				return nil, err
			}
			if err := model.Fit(e.normXs[:n], e.ys[:n]); err != nil {
				return nil, err
			}
			return model, nil
		}
		return gp.FitMLEWorkers(family, e.normXs[:n], e.ys[:n], e.opts.Workers)
	}
	if n < mleMinSamples {
		if e.fixed == nil {
			model, err := fixedHyperModel(family)
			if err != nil {
				return nil, err
			}
			e.fixed = model
		}
		if e.fixedN == 0 {
			e.mFitRefits.Inc()
			if err := e.fixed.Fit(e.normXs[:n], e.ys[:n]); err != nil {
				return nil, err
			}
		} else {
			e.mFitAppends.Add(int64(n - e.fixedN))
			for i := e.fixedN; i < n; i++ {
				if err := e.fixed.Append(e.normXs[i], e.ys[i]); err != nil {
					return nil, err
				}
			}
		}
		e.fixedN = n
		return e.fixed, nil
	}
	if e.pool == nil {
		pool, err := gp.NewPool(family, e.opts.Workers)
		if err != nil {
			return nil, err
		}
		e.mFitRefits.Inc()
		if err := pool.Condition(e.normXs[:n], e.ys[:n]); err != nil {
			return nil, err
		}
		e.pool = pool
		e.poolN = n
	} else {
		e.mFitAppends.Add(int64(n - e.poolN))
		for i := e.poolN; i < n; i++ {
			if err := e.pool.Observe(e.normXs[i], e.ys[i]); err != nil {
				return nil, err
			}
		}
		e.poolN = n
	}
	return e.pool.Best()
}

func (e *engine) best() Sample {
	best := e.samples[0]
	for _, s := range e.samples[1:] {
		if s.Eval.Score > best.Eval.Score {
			best = s
		}
	}
	return best
}

// bestByPosterior returns the sample index whose GP posterior mean is
// highest, and that mean. It scores the whole sampled set through the
// batched prediction path against the cached normalized inputs.
func (e *engine) bestByPosterior(model *gp.GP) (int, float64) {
	n := len(e.samples)
	if cap(e.means) < n {
		e.means = make([]float64, n)
		e.stds = make([]float64, n)
	}
	e.means, e.stds = e.means[:n], e.stds[:n]
	if err := model.PredictBatch(e.normXs[:n], e.means, e.stds, &e.batchBuf); err != nil {
		return 0, math.Inf(-1)
	}
	bestIdx, bestMean := 0, math.Inf(-1)
	for i, mean := range e.means {
		if mean > bestMean {
			bestMean = mean
			bestIdx = i
		}
	}
	return bestIdx, bestMean
}

func (e *engine) worst() Sample {
	worst := e.samples[0]
	for _, s := range e.samples[1:] {
		if s.Eval.Score < worst.Eval.Score {
			worst = s
		}
	}
	return worst
}

// freezeRank orders samples for dropout-copy: a job "performed best"
// in the sample where it came closest to (or met) its goal, and among
// samples where it already met the goal, in the one with the highest
// overall score — freezing the most over-provisioned allocation would
// anchor the search on waste.
func freezeRank(s Sample, job int) float64 {
	perf := 0.0
	if job < len(s.Eval.JobPerf) {
		perf = s.Eval.JobPerf[job]
	}
	if perf > 1 {
		perf = 1
	}
	return perf*1000 + s.Eval.Score
}

// chooseDropout implements the paper's refinement of dropout-copy:
// usually freeze the job that has performed best so far (at the
// allocation where it did), occasionally a random one.
func (e *engine) chooseDropout(rng *stats.RNG, random bool) (int, resource.Allocation) {
	job := rng.Intn(e.nJobs)
	if !random && rng.Float64() < dropoutKeepBestProb {
		bestPerf := math.Inf(-1)
		for j := 0; j < e.nJobs; j++ {
			for _, s := range e.samples {
				if j < len(s.Eval.JobPerf) && s.Eval.JobPerf[j] > bestPerf {
					bestPerf = s.Eval.JobPerf[j]
					job = j
				}
			}
		}
	}
	// Freeze at the allocation where the chosen job performed best.
	bestRank := math.Inf(-1)
	alloc := e.samples[0].Config.Jobs[job]
	for _, s := range e.samples {
		if r := freezeRank(s, job); r > bestRank {
			bestRank = r
			alloc = s.Config.Jobs[job]
		}
	}
	// Freezing a near-maximal allocation (e.g. the job's bootstrap
	// extremum) would leave the remaining jobs pinned at one unit each
	// — no search space at all. Skip dropout in that case.
	slack := 0
	for r := range e.topo {
		slack += e.topo[r].Units - alloc[r] - (e.nJobs - 1)
	}
	if slack < 2 {
		return -1, nil
	}
	return job, alloc.Clone()
}

// reshuffleProbe builds an unseen configuration that moves k units of
// ONE resource from a comfortably-performing job to the worst-
// performing job of the best QoS-meeting sample. Single-resource jumps
// compose across iterations into the coordinated reallocation the
// paper describes, while never yanking a donor's entire resource mix
// at once (which almost always breaks the donor's QoS).
func (e *engine) reshuffleProbe(rng *stats.RNG) (resource.Config, bool) {
	// Base on the best sample that meets QoS (score > 0.5).
	var base *Sample
	for i := range e.samples {
		s := &e.samples[i]
		if s.Eval.Score > 0.5 && (base == nil || s.Eval.Score > base.Eval.Score) {
			base = s
		}
	}
	if base == nil || e.nJobs < 2 || len(base.Eval.JobPerf) < e.nJobs {
		return resource.Config{}, false
	}
	poor := 0
	for j := 1; j < e.nJobs; j++ {
		if base.Eval.JobPerf[j] < base.Eval.JobPerf[poor] {
			poor = j
		}
	}
	// Donors: jobs meeting their goal comfortably (perf ≥ 1 means an
	// LC job inside its QoS target); fall back to everyone but poor.
	isDonor := func(j int) bool { return j != poor && base.Eval.JobPerf[j] >= 1 }
	anyDonor := false
	for j := 0; j < e.nJobs; j++ {
		if isDonor(j) {
			anyDonor = true
			break
		}
	}
	if !anyDonor {
		isDonor = func(j int) bool { return j != poor }
	}
	for _, r := range rng.Perm(len(e.topo)) {
		// Donor for this resource: the meeting job holding most of it.
		donor := -1
		for j := 0; j < e.nJobs; j++ {
			if isDonor(j) && base.Config.Jobs[j][r] > 1 &&
				(donor < 0 || base.Config.Jobs[j][r] > base.Config.Jobs[donor][r]) {
				donor = j
			}
		}
		if donor < 0 {
			continue
		}
		for _, k := range []int{3, 2, 1} {
			n := k
			if m := base.Config.Jobs[donor][r] - 1; n > m {
				n = m
			}
			if n <= 0 {
				continue
			}
			cand := base.Config.Clone()
			if !cand.Transfer(r, donor, poor, n) {
				continue
			}
			if !e.seen[cand.Key()] {
				return cand, true
			}
		}
	}
	return resource.Config{}, false
}

// rebalanceStarts builds warm starts that move mass from the job
// performing best in the incumbent toward the job performing worst,
// across every resource at once. Single-unit neighbourhood moves are
// axis steps — exactly the coordinate-descent myopia the paper
// criticizes — so these coordinated multi-resource jumps give the
// acquisition maximizer a line of sight across the QoS cliff.
func (e *engine) rebalanceStarts(best Sample) [][]float64 {
	if e.nJobs < 2 || len(best.Eval.JobPerf) < e.nJobs {
		return nil
	}
	rich, poor := 0, 0
	for j := 1; j < e.nJobs; j++ {
		if best.Eval.JobPerf[j] > best.Eval.JobPerf[rich] {
			rich = j
		}
		if best.Eval.JobPerf[j] < best.Eval.JobPerf[poor] {
			poor = j
		}
	}
	if rich == poor {
		return nil
	}
	v := best.Config.Vector()
	nres := len(e.topo)
	var starts [][]float64
	for _, frac := range []float64{0.25, 0.5} {
		s := append([]float64(nil), v...)
		for r := 0; r < nres; r++ {
			give := frac * (s[rich*nres+r] - 1)
			if give <= 0 {
				continue
			}
			s[rich*nres+r] -= give
			s[poor*nres+r] += give
		}
		starts = append(starts, s)
	}
	return starts
}

// warmStarts seeds the acquisition maximizer with the best few samples.
func (e *engine) warmStarts() [][]float64 {
	idx := make([]int, len(e.samples))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection of the top three by score.
	for k := 0; k < len(idx) && k < 3; k++ {
		for i := k + 1; i < len(idx); i++ {
			if e.samples[idx[i]].Eval.Score > e.samples[idx[k]].Eval.Score {
				idx[k], idx[i] = idx[i], idx[k]
			}
		}
	}
	n := 3
	if len(idx) < n {
		n = len(idx)
	}
	starts := make([][]float64, 0, 2*n)
	for _, i := range idx[:n] {
		v := e.samples[i].Config.Vector()
		starts = append(starts, v)
		// A smoothed copy nudged toward the equal split escapes the
		// zero-EI plateau that sits exactly on a sampled point.
		nres := len(e.topo)
		blend := make([]float64, len(v))
		for d := range v {
			even := float64(e.topo[d%nres].Units) / float64(e.nJobs)
			blend[d] = 0.7*v[d] + 0.3*even
		}
		starts = append(starts, blend)
	}
	return starts
}

// bestUnseenNeighbor scans the single-unit-transfer neighbourhood of
// cfg and returns the unseen feasible neighbour the current objective
// ranks highest, falling back to random perturbation when the whole
// neighbourhood has been sampled.
func (e *engine) bestUnseenNeighbor(cfg resource.Config, objective func([]float64) float64, rng *stats.RNG) resource.Config {
	var best resource.Config
	bestVal := math.Inf(-1)
	for r := range e.topo {
		for from := 0; from < e.nJobs; from++ {
			for to := 0; to < e.nJobs; to++ {
				cand := cfg.Clone()
				if !cand.Transfer(r, from, to, 1) {
					continue
				}
				if e.seen[cand.Key()] {
					continue
				}
				if v := objective(cand.Vector()); v > bestVal {
					bestVal = v
					best = cand
				}
			}
		}
	}
	if bestVal > math.Inf(-1) && best.NumJobs() > 0 {
		return best
	}
	return e.perturb(cfg, rng)
}

// perturb returns an unseen configuration near cfg by moving single
// units between random jobs; it falls back to a fully random
// configuration if the neighbourhood is exhausted.
func (e *engine) perturb(cfg resource.Config, rng *stats.RNG) resource.Config {
	for attempt := 0; attempt < 64; attempt++ {
		cand := cfg.Clone()
		moves := 1 + rng.Intn(2)
		for k := 0; k < moves; k++ {
			r := rng.Intn(len(e.topo))
			from := rng.Intn(e.nJobs)
			to := rng.Intn(e.nJobs)
			cand.Transfer(r, from, to, 1)
		}
		if !e.seen[cand.Key()] && cand.Validate(e.topo) == nil {
			return cand
		}
	}
	for attempt := 0; attempt < 256; attempt++ {
		cand := resource.Random(e.topo, e.nJobs, rng)
		if !e.seen[cand.Key()] {
			return cand
		}
	}
	return cfg
}
