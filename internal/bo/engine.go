package bo

import (
	"fmt"
	"math"
	"sync"
	"time"

	"clite/internal/gp"
	"clite/internal/optimize"
	"clite/internal/resource"
	"clite/internal/stats"
	"clite/internal/telemetry"
)

// Evaluation is what evaluating one configuration on the live system
// returns to the engine: the scalar objective score (Eq. 3), plus the
// per-job normalized performance the dropout-copy heuristic needs to
// decide which job is "performing the best so far".
type Evaluation struct {
	Score   float64
	JobPerf []float64
}

// EvalFunc runs the system under a configuration for one observation
// window and scores it.
type EvalFunc func(resource.Config) (Evaluation, error)

// Sample is one evaluated configuration.
type Sample struct {
	Config resource.Config
	Eval   Evaluation
}

// Options tunes the engine. The zero value reproduces the paper's
// configuration; the Disable*/Random* switches exist for the ablation
// benchmarks.
type Options struct {
	// Acquisition defaults to EI with ζ = 0.01 (Sec. 4).
	Acquisition Acquisition
	// KernelFamily defaults to "matern52" (Sec. 4); "rbf" for ablation.
	KernelFamily string
	// MaxIterations bounds post-bootstrap samples (default 64).
	MaxIterations int
	// TerminationEI is the relative expected-improvement drop
	// threshold (default 0.01 — "can be as low as 1%"). It is scaled
	// down with the number of co-located jobs, since "the curve of
	// drop in the expected improvement is slower as the number of
	// co-located jobs increase" (Sec. 4).
	TerminationEI float64
	// TerminationPatience is how many consecutive below-threshold
	// iterations end the search (default 2).
	TerminationPatience int
	// MinIterations is how many acquisition steps must run before the
	// termination rules may fire (default 2·Njobs+4): with only the
	// bootstrap samples conditioned, the surrogate's expected
	// improvement is not yet a trustworthy convergence signal.
	MinIterations int
	// StagnationWindow terminates the run when the incumbent has not
	// improved by at least 1% of the observed score range for this
	// many consecutive iterations (default 10). Measurement noise puts
	// a floor under the surrogate's expected improvement, so the
	// EI-drop rule alone can fail to fire on a noisy system; the
	// stagnation guard bounds the overhead in that regime. Set
	// negative to disable (ablation).
	StagnationWindow int
	// DisableDropout turns dropout-copy off (ablation).
	DisableDropout bool
	// RandomDropout freezes a uniformly random job instead of the
	// best-performing one (the generic dropout-copy of Li et al.,
	// kept as an ablation of CLITE's refinement).
	RandomDropout bool
	// RandomBootstrap replaces the engineered bootstrap set (equal
	// split + per-job extrema) with random samples (ablation).
	RandomBootstrap bool
	// RandomBootstrapExtra adds this many random configurations on top
	// of the engineered bootstrap (default 3; negative disables). The
	// engineered samples bracket the space's extremes but all sit on
	// its boundary; a few uniform draws give the surrogate interior
	// coverage and often land a balanced feasible starting basin.
	RandomBootstrapExtra int
	// ExploitEvery interleaves a pure posterior-mean maximization
	// every N-th iteration (default 3; negative disables).
	ExploitEvery int
	// ExtraBootstrap configurations are evaluated alongside the
	// engineered bootstrap set. Re-invocations after a load change pass
	// the previously converged partition here, so the search starts
	// from the old operating point instead of from scratch (Fig. 16).
	ExtraBootstrap []resource.Config
	// SeedConfigs replaces the whole bootstrap set (engineered or
	// random) with the given configurations: the warm-start path for
	// searches that already know where the promising region is — e.g.
	// a cluster scheduler re-screening a job mix that near-matches a
	// cached co-location profile. The engine pays one evaluation per
	// distinct seed instead of the Njobs+4 engineered bootstrap
	// samples. Because the engineered extremum samples are skipped,
	// the cannot-meet-QoS-under-maximum-allocation detection does not
	// run; callers should seed only from previously feasible runs.
	// ExtraBootstrap is still appended on top.
	SeedConfigs []resource.Config
	// RandomNeighborFallback uses a random unseen neighbour instead of
	// the objective-ranked one when integer rounding collapses onto an
	// already-sampled configuration (ablation).
	RandomNeighborFallback bool
	// Workers bounds the worker pools inside the decision loop —
	// surrogate conditioning across the hyperparameter grid and the
	// acquisition multi-starts. 0 means NumCPU, 1 forces the
	// sequential paths; results are byte-identical either way
	// (DESIGN.md §8).
	Workers int
	// DisableIncrementalFit refits the surrogate from scratch every
	// iteration (the pre-incremental O(n³) path) instead of extending
	// the retained Cholesky factors by one row. Kept as an ablation
	// and benchmarking switch; the incremental-conditioning tests pin
	// the two paths to each other.
	DisableIncrementalFit bool
	// DisableBatchedEI routes the acquisition maximizer's
	// finite-difference probes through per-point posterior calls
	// instead of one batched PredictBatch per gradient (the
	// pre-batching path). Decisions are byte-identical either way —
	// the batched path restructures only scheduling, never a point's
	// operation chain — so this is purely a benchmarking/ablation
	// switch; the decision-identity test pins the two paths.
	DisableBatchedEI bool
	// Trace, when non-nil, receives the per-iteration timeline
	// (BOIteration and Termination events). Events carry only
	// iteration numbers and scores — never wall-clock readings — so a
	// traced run stays byte-identical to an untraced one.
	Trace *telemetry.Tracer
	// Metrics, when non-nil, receives counters and histograms
	// (iterations, fit sizes, acquisition wall time). Unlike the
	// trace, metric values may include wall-clock durations; they are
	// a profile, not part of the deterministic result.
	Metrics *telemetry.Registry
	// Seed drives all stochastic choices.
	Seed int64
}

func (o Options) acquisition() Acquisition {
	if o.Acquisition != nil {
		return o.Acquisition
	}
	return EI{Zeta: 0.01}
}

func (o Options) kernelFamily() string {
	if o.KernelFamily != "" {
		return o.KernelFamily
	}
	return "matern52"
}

func (o Options) maxIterations() int {
	if o.MaxIterations > 0 {
		return o.MaxIterations
	}
	return 80
}

func (o Options) terminationEI() float64 {
	if o.TerminationEI > 0 {
		return o.TerminationEI
	}
	return 0.01
}

func (o Options) terminationPatience() int {
	if o.TerminationPatience > 0 {
		return o.TerminationPatience
	}
	return 2
}

func (o Options) exploitEvery() int {
	if o.ExploitEvery != 0 {
		return o.ExploitEvery
	}
	return 3
}

func (o Options) stagnationWindow() int {
	if o.StagnationWindow != 0 {
		return o.StagnationWindow
	}
	return 24
}

func (o Options) minIterations(nJobs int) int {
	if o.MinIterations > 0 {
		return o.MinIterations
	}
	// The paper's EI curves drop more slowly with more co-located
	// jobs; scale the floor accordingly.
	return 2*nJobs + 4
}

// Result is the outcome of one BO run.
type Result struct {
	Best       Sample
	Samples    []Sample // in evaluation order, bootstrap included
	Iterations int      // post-bootstrap acquisition steps taken
	Converged  bool     // true if the EI-drop rule fired (vs. iteration cap)
	EITrace    []float64
}

// dropoutKeepBestProb is the probability that dropout-copy freezes the
// best-performing job rather than a random one — the "small
// probabilistic factor" the paper credits for CLITE's small residual
// run-to-run variability (Sec. 5.2, Fig. 11).
const dropoutKeepBestProb = 0.85

// Run executes Algorithm 1 over the feasible partition space.
func Run(topo resource.Topology, nJobs int, eval EvalFunc, opts Options) (Result, error) {
	r, err := NewRunner(topo, nJobs)
	if err != nil {
		return Result{}, err
	}
	return r.Run(eval, opts)
}

// Runner executes repeated BO runs over one (topology, job count),
// reusing every engine arena across runs: the sample and
// normalized-input arenas, the seen-set buckets, the surrogate pool's
// retained kernel matrices and Cholesky factors, the acquisition
// maximizer's start vectors, and all per-iteration scratch. A run
// through a warmed Runner allocates close to nothing beyond what the
// caller's EvalFunc does — the BOEngineIteration benchmark pins this.
//
// Aliasing contract: the returned Result (Samples, EITrace, Best)
// references the Runner's arenas and is valid only until the next Run
// call; callers that keep results across runs must copy them. A
// Runner serves one Run at a time. Results are identical to bo.Run —
// the one-shot form is simply a fresh Runner per call.
type Runner struct {
	e *engine
}

// NewRunner validates the space and returns an empty Runner.
func NewRunner(topo resource.Topology, nJobs int) (*Runner, error) {
	if nJobs < 1 {
		return nil, fmt.Errorf("bo: need at least one job, got %d", nJobs)
	}
	for _, spec := range topo {
		if spec.Units < nJobs {
			return nil, fmt.Errorf("bo: resource %s has %d units for %d jobs", spec.Kind, spec.Units, nJobs)
		}
	}
	return &Runner{e: newEngine(topo, nJobs)}, nil
}

// Run executes Algorithm 1 over the feasible partition space.
func (r *Runner) Run(eval EvalFunc, opts Options) (Result, error) {
	e := r.e
	topo, nJobs := e.topo, e.nJobs
	rng := stats.NewRNG(opts.Seed)
	acq := opts.acquisition()

	e.reset(opts)

	// Telemetry handles resolve to nil when disabled; every emit below
	// is a nil-guarded no-op in that case.
	trace := opts.Trace
	mIters := opts.Metrics.Counter("bo_iterations_total")
	mCollisions := opts.Metrics.Counter("bo_seen_collisions_total")
	mAcqTime := opts.Metrics.Histogram("bo_acq_seconds", telemetry.LatencyBuckets())
	mBest := opts.Metrics.Gauge("bo_best_score")

	// Bootstrap (Sec. 4): equal division plus each job's extremum —
	// Njobs+1 samples ("the number of initial samples is chosen to the
	// number of colocated jobs + 1"). The configs live in the engine's
	// boot arena; evaluate copies what it keeps.
	if len(opts.SeedConfigs) > 0 {
		for _, cfg := range opts.SeedConfigs {
			if err := cfg.Validate(topo); err != nil {
				return Result{}, fmt.Errorf("bo: seed config: %w", err)
			}
			e.bootSlot().CopyFrom(cfg)
		}
	} else if opts.RandomBootstrap {
		for i := 0; i < nJobs+1; i++ {
			resource.RandomInto(topo, nJobs, rng, e.bootSlot(), &e.cutsBuf)
		}
	} else {
		resource.EqualSplitInto(topo, nJobs, e.bootSlot())
		for j := 0; j < nJobs; j++ {
			resource.ExtremumInto(topo, nJobs, j, e.bootSlot())
		}
		extra := opts.RandomBootstrapExtra
		if extra == 0 {
			extra = 3
		}
		for i := 0; i < extra; i++ {
			resource.RandomInto(topo, nJobs, rng, e.bootSlot(), &e.cutsBuf)
		}
	}
	for _, cfg := range opts.ExtraBootstrap {
		if err := cfg.Validate(topo); err != nil {
			return Result{}, fmt.Errorf("bo: extra bootstrap: %w", err)
		}
		e.bootSlot().CopyFrom(cfg)
	}
	for i := 0; i < e.nBoot; i++ {
		cfg := e.bootCfgs[i]
		if e.seen.has(cfg) {
			continue
		}
		if err := e.evaluate(cfg, eval); err != nil {
			return Result{}, err
		}
	}

	threshold := opts.terminationEI() / float64(nJobs)
	patience := 0
	stagnant := 0
	prevBest := math.Inf(-1)
	result := Result{EITrace: e.eiTrace[:0]}
	reason := "iteration-cap"
	e.acq = acq
	for iter := 0; iter < opts.maxIterations(); iter++ {
		model, err := e.fit(opts.kernelFamily())
		if err != nil {
			return Result{}, err
		}
		// With noisy observations the raw best sample is biased high
		// (it is partly a lucky draw); the incumbent for both the
		// acquisition and the stagnation guard is therefore the best
		// posterior mean over the sampled points.
		_, bestMean := e.bestByPosterior(model)

		// Stagnation bookkeeping happens up front so that every kind of
		// sample — acquisition, exploitation, reshuffle probe — counts:
		// a probe that lifted the incumbent resets the counter through
		// the refitted posterior.
		scale := math.Max(e.best().Eval.Score-e.worst().Eval.Score, 0.01)
		if bestMean > prevBest+0.002*scale {
			prevBest = bestMean
			stagnant = 0
		} else {
			stagnant++
		}

		frozenJob := -1
		var frozenAlloc resource.Allocation
		// Dropout-copy needs at least three jobs: with two, the sum
		// constraint makes freezing one job pin the other completely.
		if !opts.DisableDropout && nJobs > 2 {
			frozenJob, frozenAlloc = e.chooseDropout(rng, opts.RandomDropout)
		}

		// The objectives are engine methods bound once at construction;
		// the per-iteration state they read is published here.
		e.curModel, e.curBestMean = model, bestMean
		eiObjective := e.eiObjFn

		// Once a QoS-meeting configuration exists, every third step is
		// a direct reshuffle probe: move units from the job doing best
		// to the job doing worst, across all resources at once ("CLITE
		// does not stop after meeting QoS targets, it reshuffles
		// resources to improve every job's performance", Sec. 5.2).
		// The GP cannot see across the QoS cliff until such a point is
		// sampled, so this structured exploration is what lets the
		// engine keep converting LC slack into BG throughput.
		probed := false
		if e.best().Eval.Score > 0.5 && iter%3 == 1 {
			if cand, ok := e.reshuffleProbe(rng); ok {
				e.xVec = cand.VectorInto(e.xVec)
				probeEI := eiObjective(e.xVec)
				result.EITrace = append(result.EITrace, probeEI)
				if err := e.evaluate(cand, eval); err != nil {
					return Result{}, err
				}
				result.Iterations++
				mIters.Inc()
				if trace != nil {
					trace.Emit(telemetry.BOIteration(iter, probeEI, e.best().Eval.Score, len(e.samples)))
				}
				probed = true
			}
		}
		if probed {
			// Probe samples do not inform the EI-drop rule (the rule is
			// about the acquisition surface, which the probe bypassed);
			// termination is evaluated on the next regular iteration.
			continue
		}
		// Every third step is pure exploitation — climb the posterior
		// mean itself. EI alone dithers near its noise floor once the
		// model is decent; interleaving mean-climbing steps converts
		// model knowledge into score steadily without giving up the
		// exploration the other two thirds provide.
		objective := eiObjective
		batchObjective := e.eiBatchFn
		if ee := opts.exploitEvery(); ee > 0 && iter%ee == ee-1 {
			objective = e.meanObjFn
			batchObjective = e.meanBatchFn
		}
		if opts.DisableBatchedEI {
			batchObjective = nil
		}
		starts := e.collectStarts(e.best())
		problem := optimize.Problem{
			Topo: topo, NJobs: nJobs,
			Objective:      objective,
			BatchObjective: batchObjective,
			FrozenJob:      frozenJob,
			FrozenAlloc:    frozenAlloc,
			Starts:         starts,
			RNG:            rng,
			Workers:        opts.Workers,
			Scratch:        &e.maxScratch,
		}
		// Wall-clock timing is metrics-only (a profile, never part of
		// the deterministic trace), so the clock read is skipped
		// entirely when no registry is attached.
		var acqStart time.Time
		if mAcqTime != nil {
			acqStart = time.Now() //lint:allow detrand metrics-only acq-latency histogram; a profile, never part of the deterministic trace
		}
		xStar := optimize.Maximize(problem)
		if mAcqTime != nil {
			mAcqTime.Observe(time.Since(acqStart).Seconds()) //lint:allow detrand metrics-only wall-clock duration feeding the histogram above
		}
		// The trace and the termination rule are always in EI units,
		// whichever objective picked the candidate.
		eiStar := eiObjective(xStar)
		result.EITrace = append(result.EITrace, eiStar)

		resource.RoundFeasibleInto(topo, nJobs, xStar, &e.roundCfg, &e.roundScratch)
		cfg := e.roundCfg
		if e.seen.has(cfg) {
			// Integer rounding collapsed onto an already-sampled
			// configuration; probe an unseen neighbour instead so the
			// window is not wasted re-measuring a known point.
			mCollisions.Inc()
			if opts.RandomNeighborFallback {
				cfg = e.perturb(cfg, rng)
			} else {
				cfg = e.bestUnseenNeighbor(cfg, objective, rng)
			}
		}
		if err := e.evaluate(cfg, eval); err != nil {
			return Result{}, err
		}
		result.Iterations++
		mIters.Inc()
		if trace != nil {
			trace.Emit(telemetry.BOIteration(iter, eiStar, e.best().Eval.Score, len(e.samples)))
		}

		// Termination: the expected-improvement drop rule. EI is in
		// score units, so the threshold is scaled by the observed
		// score range — before any configuration meets QoS the whole
		// surface lives in a thin slice near zero and an absolute
		// threshold would fire instantly.
		// Neither rule may fire while no sampled configuration has met
		// every QoS target (score ≤ 0.5 in the Eq. 3 convention):
		// while the engine is still hunting for feasibility it gets
		// the whole iteration budget — giving up early on barely-
		// co-locatable mixes is exactly the PARTIES failure mode
		// CLITE exists to avoid (Fig. 9b).
		feasibilityFound := e.best().Eval.Score > 0.5
		// The EI-drop rule additionally requires a few flat iterations:
		// a low acquisition maximum right after a reshuffle probe
		// improved the incumbent is the model catching up, not
		// convergence.
		if feasibilityFound && result.Iterations >= opts.minIterations(nJobs) &&
			eiStar < threshold*scale && stagnant >= 4 {
			patience++
			if patience >= opts.terminationPatience() {
				result.Converged = true
				reason = "ei-drop"
				break
			}
		} else {
			patience = 0
		}
		// Stagnation guard: measurement noise keeps EI bounded away
		// from zero, so also stop once the incumbent has been flat
		// (the counter is maintained at the top of the loop).
		if w := opts.stagnationWindow(); w > 0 && feasibilityFound &&
			result.Iterations >= opts.minIterations(nJobs) && stagnant >= w {
			result.Converged = true
			reason = "stagnation"
			break
		}
	}
	result.Samples = e.samples
	// Return the posterior-mean best under the final model: with
	// measurement noise, the raw argmax sample is the luckiest draw,
	// not the best configuration.
	if model, err := e.fit(opts.kernelFamily()); err == nil {
		idx, _ := e.bestByPosterior(model)
		result.Best = e.samples[idx]
	} else {
		result.Best = e.best()
	}
	mBest.Set(result.Best.Eval.Score)
	trace.Emit(telemetry.Termination(reason, len(result.Samples), result.Best.Eval.Score))
	// Keep the (possibly regrown) trace storage for the next run.
	e.eiTrace = result.EITrace
	return result, nil
}

// engine holds the sample set and bookkeeping for one run, plus the
// incremental surrogate state: normalized inputs are computed once per
// evaluation (not once per refit), and the Cholesky factors of the
// hyperparameter grid are retained and extended by one row per
// observation instead of being rebuilt from scratch. Everything below
// the surrogate state is a reusable arena: a Runner keeps the engine
// across Run calls, so a warmed run allocates close to nothing.
type engine struct {
	topo    resource.Topology
	nJobs   int
	opts    Options
	samples []Sample
	seen    seenSet

	// normXs[i]/ys[i] cache the normalized input vector and score of
	// samples[i]. Within one run a row is written once in evaluate and
	// never mutated, which is what lets the GPs reference it directly
	// under the Fit ownership contract; reset rewinds the arena and
	// forces a from-scratch re-Condition before any stale reference
	// could be read.
	normXs [][]float64
	ys     []float64

	// fixed is the fixed-hyperparameter surrogate used below
	// mleMinSamples; pool holds one incrementally-conditioned GP per
	// hyperparameter grid point above it. fixedN/poolN track how many
	// samples each has been conditioned on; poolWorkers is the worker
	// count the retained pool was built with.
	fixed       *gp.GP
	fixedN      int
	pool        *gp.Pool
	poolN       int
	poolWorkers int

	// scratch pools per-goroutine prediction buffers for the
	// acquisition objectives: Maximize calls them from concurrent
	// ascents, and each evaluation needs a normalized copy of the
	// candidate plus GP solve vectors.
	scratch sync.Pool

	// means/stds/batchBuf serve bestByPosterior's bulk scoring of the
	// sampled set.
	means, stds []float64
	batchBuf    gp.PredictBuf

	// Per-iteration acquisition state published by Run and read by the
	// objective methods below. The method values are bound once in
	// newEngine so the hot loop never materializes fresh closures.
	acq         Acquisition
	curModel    *gp.GP
	curBestMean float64
	eiObjFn     func([]float64) float64
	meanObjFn   func([]float64) float64
	eiBatchFn   func([][]float64, []float64)
	meanBatchFn func([][]float64, []float64)

	// Config/vector arenas for the decision loop. Each scratch config
	// is owned by exactly one call path; evaluate copies whatever it
	// keeps, so a scratch is free again by the next iteration.
	bootCfgs           []resource.Config // bootstrap arena (nBoot in use)
	nBoot              int
	xVec               []float64       // candidate flattening (Run loop, neighbours)
	vecScratch         []float64       // evaluate's flattening scratch
	rebalVec           []float64       // incumbent vector for rebalance starts
	probeCfg           resource.Config // reshuffleProbe candidate
	roundCfg           resource.Config // RoundFeasibleInto target
	candCfg            resource.Config // neighbour/perturb candidate
	neighborCfg        resource.Config // bestUnseenNeighbor winner
	frozenAllocScratch resource.Allocation
	roundScratch       resource.RoundScratch
	permBuf            []int // reshuffleProbe's resource order
	cutsBuf            []int // RandomInto's cut points
	idxBuf             []int // collectStarts' top-k selection

	// Acquisition multi-start arena: fixed-dim rows handed to
	// optimize.Maximize (which copies them into its own scratch).
	startRows  [][]float64
	nStarts    int
	starts     [][]float64
	maxScratch optimize.Scratch
	eiTrace    []float64 // EITrace storage carried across runs

	// Fit-path metrics (nil when no registry is attached): conditioned
	// sample counts per fit, incremental row appends, and from-scratch
	// (re)conditions — the incremental-vs-refit ledger.
	mFitSamples *telemetry.Histogram
	mFitAppends *telemetry.Counter
	mFitRefits  *telemetry.Counter
}

func newEngine(topo resource.Topology, nJobs int) *engine {
	e := &engine{topo: topo, nJobs: nJobs}
	e.scratch.New = func() any { return new(predictScratch) }
	e.eiObjFn = e.eiObjective
	e.meanObjFn = e.meanObjective
	e.eiBatchFn = e.eiBatch
	e.meanBatchFn = e.meanBatch
	return e
}

// reset rewinds the engine for a fresh run while keeping every arena:
// sample and normalized-input storage, seen-set buckets, the retained
// surrogates (zeroing fixedN/poolN forces a from-scratch re-Condition
// on first fit), and all per-iteration scratch.
func (e *engine) reset(opts Options) {
	e.opts = opts
	e.samples = e.samples[:0]
	e.normXs = e.normXs[:0]
	e.ys = e.ys[:0]
	e.seen.init(e.topo, e.nJobs)
	e.fixedN = 0
	e.poolN = 0
	e.nBoot = 0
	if e.pool != nil && opts.Workers != e.poolWorkers {
		// The pool's worker count is fixed at construction; a run with a
		// different setting rebuilds it.
		e.pool = nil
	}
	e.mFitSamples = opts.Metrics.Histogram("bo_fit_samples", telemetry.IterationBuckets())
	e.mFitAppends = opts.Metrics.Counter("bo_fit_appends_total")
	e.mFitRefits = opts.Metrics.Counter("bo_fit_refits_total")
}

// seenSet tracks evaluated configurations. When the flattened config
// fits 16 bytes (nJobs·Nres ≤ 16 dimensions, every unit count ≤ 255 —
// true for every topology in this repo), configs pack into a [2]uint64
// key and membership checks allocate nothing; otherwise it falls back
// to the string Key form. init keeps the map buckets across runs.
type seenSet struct {
	packed map[[2]uint64]struct{}
	str    map[string]struct{}
}

func (s *seenSet) init(topo resource.Topology, nJobs int) {
	pack := nJobs*len(topo) <= 16
	for _, spec := range topo {
		if spec.Units > 255 {
			pack = false
		}
	}
	if pack {
		if s.packed == nil {
			s.packed = make(map[[2]uint64]struct{})
		} else {
			clear(s.packed)
		}
		s.str = nil
	} else {
		if s.str == nil {
			s.str = make(map[string]struct{})
		} else {
			clear(s.str)
		}
		s.packed = nil
	}
}

// packKey packs one byte per unit count, job-major — bijective under
// the init preconditions, so packed membership equals Key membership.
func packKey(cfg resource.Config) [2]uint64 {
	var k [2]uint64
	idx := 0
	for _, a := range cfg.Jobs {
		for _, u := range a {
			k[idx>>3] |= uint64(uint8(u)) << ((idx & 7) * 8)
			idx++
		}
	}
	return k
}

func (s *seenSet) has(cfg resource.Config) bool {
	if s.packed != nil {
		_, ok := s.packed[packKey(cfg)]
		return ok
	}
	_, ok := s.str[cfg.Key()]
	return ok
}

func (s *seenSet) add(cfg resource.Config) {
	if s.packed != nil {
		s.packed[packKey(cfg)] = struct{}{}
		return
	}
	s.str[cfg.Key()] = struct{}{}
}

// bootSlot returns the next bootstrap-arena config, reusing storage
// from earlier runs.
func (e *engine) bootSlot() *resource.Config {
	if e.nBoot == len(e.bootCfgs) {
		e.bootCfgs = append(e.bootCfgs, resource.Config{})
	}
	c := &e.bootCfgs[e.nBoot]
	e.nBoot++
	return c
}

// predictScratch is one goroutine's worth of objective scratch. The
// batch fields serve the batched acquisition path: one normalized row
// per candidate plus the PredictBatch outputs.
type predictScratch struct {
	norm []float64
	buf  gp.PredictBuf

	normFlat []float64
	normRows [][]float64
	means    []float64
	stds     []float64
}

// eiObjective scores one continuous candidate under the published
// per-iteration state (curModel, curBestMean, acq).
func (e *engine) eiObjective(x []float64) float64 {
	s := e.scratch.Get().(*predictScratch)
	s.norm = e.normalizeInto(s.norm, x)
	mean, std, err := e.curModel.PredictWith(&s.buf, s.norm)
	e.scratch.Put(s)
	if err != nil {
		return math.Inf(-1)
	}
	return e.acq.Value(mean, std, e.curBestMean)
}

// meanObjective is the pure-exploitation objective: the posterior mean.
func (e *engine) meanObjective(x []float64) float64 {
	s := e.scratch.Get().(*predictScratch)
	s.norm = e.normalizeInto(s.norm, x)
	mean, _, err := e.curModel.PredictWith(&s.buf, s.norm)
	e.scratch.Put(s)
	if err != nil {
		return math.Inf(-1)
	}
	return mean
}

// batchEval scores a candidate batch through one PredictBatch call.
// Per-point operation chains are identical to the scalar objectives —
// batching restructures only the scheduling across points — so the
// outputs are bit-equal to calling the scalar objective per row (the
// decision-identity test pins this through whole runs).
func (e *engine) batchEval(xs [][]float64, out []float64, meanOnly bool) {
	m := len(xs)
	if m == 0 {
		return
	}
	s := e.scratch.Get().(*predictScratch)
	dim := len(xs[0])
	if cap(s.normFlat) < m*dim {
		s.normFlat = make([]float64, m*dim)
	}
	if cap(s.normRows) < m {
		s.normRows = make([][]float64, 0, m)
	}
	s.normRows = s.normRows[:0]
	for j, x := range xs {
		row := e.normalizeInto(s.normFlat[j*dim:(j+1)*dim:(j+1)*dim], x)
		s.normRows = append(s.normRows, row)
	}
	if cap(s.means) < m {
		s.means = make([]float64, m)
		s.stds = make([]float64, m)
	}
	means, stds := s.means[:m], s.stds[:m]
	if err := e.curModel.PredictBatch(s.normRows, means, stds, &s.buf); err != nil {
		for i := range out {
			out[i] = math.Inf(-1)
		}
	} else if meanOnly {
		copy(out, means)
	} else {
		for i := range out {
			out[i] = e.acq.Value(means[i], stds[i], e.curBestMean)
		}
	}
	e.scratch.Put(s)
}

func (e *engine) eiBatch(xs [][]float64, out []float64)   { e.batchEval(xs, out, false) }
func (e *engine) meanBatch(xs [][]float64, out []float64) { e.batchEval(xs, out, true) }

func (e *engine) evaluate(cfg resource.Config, eval EvalFunc) error {
	ev, err := eval(cfg)
	if err != nil {
		return fmt.Errorf("bo: evaluating %v: %w", cfg, err)
	}
	// Arena append: reuse the retired Sample's config and JobPerf
	// storage when rewinding left one in place. JobPerf is copied, so
	// evaluators may reuse their slice across calls.
	i := len(e.samples)
	if i < cap(e.samples) {
		e.samples = e.samples[:i+1]
	} else {
		e.samples = append(e.samples, Sample{})
	}
	s := &e.samples[i]
	s.Config.CopyFrom(cfg)
	s.Eval.Score = ev.Score
	s.Eval.JobPerf = append(s.Eval.JobPerf[:0], ev.JobPerf...)
	e.seen.add(s.Config)
	e.vecScratch = s.Config.VectorInto(e.vecScratch)
	if i < cap(e.normXs) {
		e.normXs = e.normXs[:i+1]
		e.normXs[i] = e.normalizeInto(e.normXs[i], e.vecScratch)
	} else {
		e.normXs = append(e.normXs, e.normalizeInto(nil, e.vecScratch))
	}
	e.ys = append(e.ys[:i], ev.Score)
	return nil
}

// normalizeInto maps a job-major unit vector into [0,1] per dimension
// for the GP, writing into dst (grown as needed) and returning it.
func (e *engine) normalizeInto(dst, x []float64) []float64 {
	if cap(dst) < len(x) {
		dst = make([]float64, len(x))
	}
	dst = dst[:len(x)]
	nres := len(e.topo)
	for i, v := range x {
		dst[i] = v / float64(e.topo[i%nres].Units)
	}
	return dst
}

// mleMinSamples is the sample count below which hyperparameters are
// held at a fixed mid-range setting: marginal likelihood over a
// handful of points reliably prefers the over-smooth explanation,
// which collapses posterior variance and stalls exploration.
const mleMinSamples = 10

// fixedHyperModel builds the below-mleMinSamples surrogate (mid-range
// length scale, mid-range noise; deliberately not a grid point so the
// regimes stay distinguishable in tests).
func fixedHyperModel(family string) (*gp.GP, error) {
	kernel, err := gp.KernelByName(family, 0.25, 1.0)
	if err != nil {
		return nil, err
	}
	return gp.New(kernel, 1e-3), nil
}

// fit returns the surrogate conditioned on every sample so far. The
// default path is incremental: the retained Cholesky factors are
// extended by one row per new observation (O(grid·n²) per iteration),
// and model selection over the hyperparameter grid is recomputed from
// the cached log marginal likelihoods. DisableIncrementalFit falls
// back to refitting everything from scratch (O(grid·n³)); the two
// paths select the same model — the equivalence test pins it.
func (e *engine) fit(family string) (*gp.GP, error) {
	n := len(e.samples)
	e.mFitSamples.Observe(float64(n))
	if e.opts.DisableIncrementalFit {
		e.mFitRefits.Inc()
		if n < mleMinSamples {
			model, err := fixedHyperModel(family)
			if err != nil {
				return nil, err
			}
			if err := model.Fit(e.normXs[:n], e.ys[:n]); err != nil {
				return nil, err
			}
			return model, nil
		}
		return gp.FitMLEWorkers(family, e.normXs[:n], e.ys[:n], e.opts.Workers)
	}
	if n < mleMinSamples {
		if e.fixed == nil {
			model, err := fixedHyperModel(family)
			if err != nil {
				return nil, err
			}
			e.fixed = model
		}
		if e.fixedN == 0 {
			e.mFitRefits.Inc()
			if err := e.fixed.Fit(e.normXs[:n], e.ys[:n]); err != nil {
				return nil, err
			}
		} else {
			e.mFitAppends.Add(int64(n - e.fixedN))
			for i := e.fixedN; i < n; i++ {
				if err := e.fixed.Append(e.normXs[i], e.ys[i]); err != nil {
					return nil, err
				}
			}
		}
		e.fixedN = n
		return e.fixed, nil
	}
	if e.pool == nil {
		pool, err := gp.NewPool(family, e.opts.Workers)
		if err != nil {
			return nil, err
		}
		e.pool = pool
		e.poolWorkers = e.opts.Workers
	}
	if e.poolN == 0 {
		// First pool fit of this run: condition from scratch. A pool
		// retained across Runner.Run calls re-Conditions here, reusing
		// its kernel matrices and Cholesky factors in place.
		e.mFitRefits.Inc()
		if err := e.pool.Condition(e.normXs[:n], e.ys[:n]); err != nil {
			return nil, err
		}
	} else {
		e.mFitAppends.Add(int64(n - e.poolN))
		for i := e.poolN; i < n; i++ {
			if err := e.pool.Observe(e.normXs[i], e.ys[i]); err != nil {
				return nil, err
			}
		}
	}
	e.poolN = n
	return e.pool.Best()
}

func (e *engine) best() Sample {
	best := e.samples[0]
	for _, s := range e.samples[1:] {
		if s.Eval.Score > best.Eval.Score {
			best = s
		}
	}
	return best
}

// bestByPosterior returns the sample index whose GP posterior mean is
// highest, and that mean. It scores the whole sampled set through the
// batched prediction path against the cached normalized inputs.
func (e *engine) bestByPosterior(model *gp.GP) (int, float64) {
	n := len(e.samples)
	if cap(e.means) < n {
		e.means = make([]float64, n)
		e.stds = make([]float64, n)
	}
	e.means, e.stds = e.means[:n], e.stds[:n]
	if err := model.PredictBatch(e.normXs[:n], e.means, e.stds, &e.batchBuf); err != nil {
		return 0, math.Inf(-1)
	}
	bestIdx, bestMean := 0, math.Inf(-1)
	for i, mean := range e.means {
		if mean > bestMean {
			bestMean = mean
			bestIdx = i
		}
	}
	return bestIdx, bestMean
}

func (e *engine) worst() Sample {
	worst := e.samples[0]
	for _, s := range e.samples[1:] {
		if s.Eval.Score < worst.Eval.Score {
			worst = s
		}
	}
	return worst
}

// freezeRank orders samples for dropout-copy: a job "performed best"
// in the sample where it came closest to (or met) its goal, and among
// samples where it already met the goal, in the one with the highest
// overall score — freezing the most over-provisioned allocation would
// anchor the search on waste.
func freezeRank(s Sample, job int) float64 {
	perf := 0.0
	if job < len(s.Eval.JobPerf) {
		perf = s.Eval.JobPerf[job]
	}
	if perf > 1 {
		perf = 1
	}
	return perf*1000 + s.Eval.Score
}

// chooseDropout implements the paper's refinement of dropout-copy:
// usually freeze the job that has performed best so far (at the
// allocation where it did), occasionally a random one.
func (e *engine) chooseDropout(rng *stats.RNG, random bool) (int, resource.Allocation) {
	job := rng.Intn(e.nJobs)
	if !random && rng.Float64() < dropoutKeepBestProb {
		bestPerf := math.Inf(-1)
		for j := 0; j < e.nJobs; j++ {
			for _, s := range e.samples {
				if j < len(s.Eval.JobPerf) && s.Eval.JobPerf[j] > bestPerf {
					bestPerf = s.Eval.JobPerf[j]
					job = j
				}
			}
		}
	}
	// Freeze at the allocation where the chosen job performed best.
	bestRank := math.Inf(-1)
	alloc := e.samples[0].Config.Jobs[job]
	for _, s := range e.samples {
		if r := freezeRank(s, job); r > bestRank {
			bestRank = r
			alloc = s.Config.Jobs[job]
		}
	}
	// Freezing a near-maximal allocation (e.g. the job's bootstrap
	// extremum) would leave the remaining jobs pinned at one unit each
	// — no search space at all. Skip dropout in that case.
	slack := 0
	for r := range e.topo {
		slack += e.topo[r].Units - alloc[r] - (e.nJobs - 1)
	}
	if slack < 2 {
		return -1, nil
	}
	// The frozen allocation is read only during this iteration's
	// Maximize call, so a reused scratch copy suffices.
	e.frozenAllocScratch = append(e.frozenAllocScratch[:0], alloc...)
	return job, e.frozenAllocScratch
}

// reshuffleProbe builds an unseen configuration that moves k units of
// ONE resource from a comfortably-performing job to the worst-
// performing job of the best QoS-meeting sample. Single-resource jumps
// compose across iterations into the coordinated reallocation the
// paper describes, while never yanking a donor's entire resource mix
// at once (which almost always breaks the donor's QoS).
func (e *engine) reshuffleProbe(rng *stats.RNG) (resource.Config, bool) {
	// Base on the best sample that meets QoS (score > 0.5).
	var base *Sample
	for i := range e.samples {
		s := &e.samples[i]
		if s.Eval.Score > 0.5 && (base == nil || s.Eval.Score > base.Eval.Score) {
			base = s
		}
	}
	if base == nil || e.nJobs < 2 || len(base.Eval.JobPerf) < e.nJobs {
		return resource.Config{}, false
	}
	poor := 0
	for j := 1; j < e.nJobs; j++ {
		if base.Eval.JobPerf[j] < base.Eval.JobPerf[poor] {
			poor = j
		}
	}
	// Donors: jobs meeting their goal comfortably (perf ≥ 1 means an
	// LC job inside its QoS target); fall back to everyone but poor.
	isDonor := func(j int) bool { return j != poor && base.Eval.JobPerf[j] >= 1 }
	anyDonor := false
	for j := 0; j < e.nJobs; j++ {
		if isDonor(j) {
			anyDonor = true
			break
		}
	}
	if !anyDonor {
		isDonor = func(j int) bool { return j != poor }
	}
	e.permBuf = rng.PermInto(len(e.topo), e.permBuf)
	for _, r := range e.permBuf {
		// Donor for this resource: the meeting job holding most of it.
		donor := -1
		for j := 0; j < e.nJobs; j++ {
			if isDonor(j) && base.Config.Jobs[j][r] > 1 &&
				(donor < 0 || base.Config.Jobs[j][r] > base.Config.Jobs[donor][r]) {
				donor = j
			}
		}
		if donor < 0 {
			continue
		}
		for _, k := range [...]int{3, 2, 1} {
			n := k
			if m := base.Config.Jobs[donor][r] - 1; n > m {
				n = m
			}
			if n <= 0 {
				continue
			}
			e.probeCfg.CopyFrom(base.Config)
			if !e.probeCfg.Transfer(r, donor, poor, n) {
				continue
			}
			if !e.seen.has(e.probeCfg) {
				return e.probeCfg, true
			}
		}
	}
	return resource.Config{}, false
}

// startSlot returns the next fixed-dimension row of the multi-start
// arena.
func (e *engine) startSlot() []float64 {
	if e.nStarts == len(e.startRows) {
		e.startRows = append(e.startRows, make([]float64, e.nJobs*len(e.topo)))
	}
	row := e.startRows[e.nStarts]
	e.nStarts++
	return row
}

// collectStarts seeds the acquisition maximizer: the best few samples
// (each paired with a smoothed copy), then coordinated rebalance
// jumps off the incumbent. Rows live in the start arena; Maximize
// copies them into its own scratch, so they are free again next
// iteration.
func (e *engine) collectStarts(best Sample) [][]float64 {
	e.nStarts = 0
	e.starts = e.starts[:0]
	n := len(e.samples)
	if cap(e.idxBuf) < n {
		e.idxBuf = make([]int, n)
	}
	idx := e.idxBuf[:n]
	for i := range idx {
		idx[i] = i
	}
	// Partial selection of the top three by score.
	for k := 0; k < n && k < 3; k++ {
		for i := k + 1; i < n; i++ {
			if e.samples[idx[i]].Eval.Score > e.samples[idx[k]].Eval.Score {
				idx[k], idx[i] = idx[i], idx[k]
			}
		}
	}
	top := 3
	if n < top {
		top = n
	}
	nres := len(e.topo)
	for _, i := range idx[:top] {
		v := e.samples[i].Config.VectorInto(e.startSlot())
		e.starts = append(e.starts, v)
		// A smoothed copy nudged toward the equal split escapes the
		// zero-EI plateau that sits exactly on a sampled point.
		blend := e.startSlot()
		for d := range v {
			even := float64(e.topo[d%nres].Units) / float64(e.nJobs)
			blend[d] = 0.7*v[d] + 0.3*even
		}
		e.starts = append(e.starts, blend)
	}
	// Rebalance starts move mass from the job performing best in the
	// incumbent toward the job performing worst, across every resource
	// at once. Single-unit neighbourhood moves are axis steps — exactly
	// the coordinate-descent myopia the paper criticizes — so these
	// coordinated multi-resource jumps give the acquisition maximizer a
	// line of sight across the QoS cliff.
	if e.nJobs < 2 || len(best.Eval.JobPerf) < e.nJobs {
		return e.starts
	}
	rich, poor := 0, 0
	for j := 1; j < e.nJobs; j++ {
		if best.Eval.JobPerf[j] > best.Eval.JobPerf[rich] {
			rich = j
		}
		if best.Eval.JobPerf[j] < best.Eval.JobPerf[poor] {
			poor = j
		}
	}
	if rich == poor {
		return e.starts
	}
	e.rebalVec = best.Config.VectorInto(e.rebalVec)
	for _, frac := range [...]float64{0.25, 0.5} {
		s := e.startSlot()
		copy(s, e.rebalVec)
		for r := 0; r < nres; r++ {
			give := frac * (s[rich*nres+r] - 1)
			if give <= 0 {
				continue
			}
			s[rich*nres+r] -= give
			s[poor*nres+r] += give
		}
		e.starts = append(e.starts, s)
	}
	return e.starts
}

// bestUnseenNeighbor scans the single-unit-transfer neighbourhood of
// cfg and returns the unseen feasible neighbour the current objective
// ranks highest, falling back to random perturbation when the whole
// neighbourhood has been sampled.
func (e *engine) bestUnseenNeighbor(cfg resource.Config, objective func([]float64) float64, rng *stats.RNG) resource.Config {
	found := false
	bestVal := math.Inf(-1)
	for r := range e.topo {
		for from := 0; from < e.nJobs; from++ {
			for to := 0; to < e.nJobs; to++ {
				e.candCfg.CopyFrom(cfg)
				if !e.candCfg.Transfer(r, from, to, 1) {
					continue
				}
				if e.seen.has(e.candCfg) {
					continue
				}
				e.xVec = e.candCfg.VectorInto(e.xVec)
				if v := objective(e.xVec); v > bestVal {
					bestVal = v
					e.neighborCfg.CopyFrom(e.candCfg)
					found = true
				}
			}
		}
	}
	if found {
		return e.neighborCfg
	}
	return e.perturb(cfg, rng)
}

// perturb returns an unseen configuration near cfg by moving single
// units between random jobs; it falls back to a fully random
// configuration if the neighbourhood is exhausted.
func (e *engine) perturb(cfg resource.Config, rng *stats.RNG) resource.Config {
	for attempt := 0; attempt < 64; attempt++ {
		e.candCfg.CopyFrom(cfg)
		moves := 1 + rng.Intn(2)
		for k := 0; k < moves; k++ {
			r := rng.Intn(len(e.topo))
			from := rng.Intn(e.nJobs)
			to := rng.Intn(e.nJobs)
			e.candCfg.Transfer(r, from, to, 1)
		}
		if !e.seen.has(e.candCfg) && e.candCfg.Validate(e.topo) == nil {
			return e.candCfg
		}
	}
	for attempt := 0; attempt < 256; attempt++ {
		resource.RandomInto(e.topo, e.nJobs, rng, &e.candCfg, &e.cutsBuf)
		if !e.seen.has(e.candCfg) {
			return e.candCfg
		}
	}
	return cfg
}
