package doe

import (
	"math"
	"testing"

	"clite/internal/core"
	"clite/internal/policies"
	"clite/internal/resource"
	"clite/internal/server"
)

func easyMix(t *testing.T, seed int64) *server.Machine {
	t.Helper()
	m := server.New(resource.Default(), server.DefaultSpec(), seed)
	if _, err := m.AddLC("memcached", 0.2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddLC("img-dnn", 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddBG("streamcluster"); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPolicyInterfaces(t *testing.T) {
	var _ policies.Policy = FFD{}
	var _ policies.Policy = RSM{}
	if (FFD{}).Name() != "FFD" || (RSM{}).Name() != "RSM" {
		t.Error("bad names")
	}
}

func TestFFDUsesItsBudgetAndStaysFeasible(t *testing.T) {
	m := easyMix(t, 1)
	res, err := FFD{Samples: 48, Seed: 1}.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplesUsed != 48 {
		t.Errorf("FFD used %d samples, want its 48-sample design", res.SamplesUsed)
	}
	for _, step := range res.History {
		if err := step.Config.Validate(m.Topology()); err != nil {
			t.Fatalf("FFD sampled infeasible config: %v", err)
		}
	}
}

func TestRSMUsesPaperScaleBudget(t *testing.T) {
	m := easyMix(t, 2)
	res, err := RSM{Seed: 2}.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Sec. 5.2: 130 samples for the Box-Behnken design — 2–8×
	// the budget of CLITE and the other online techniques.
	if res.SamplesUsed < 100 {
		t.Errorf("RSM used %d samples; the paper's point is that it needs 130+", res.SamplesUsed)
	}
	if err := res.Best.Validate(m.Topology()); err != nil {
		t.Fatal(err)
	}
}

func TestQuadraticFitRecoversPlantedSurface(t *testing.T) {
	// Plant a separable quadratic in normalized coordinates and verify
	// the fitted model predicts held-out points.
	topo := resource.Small()
	nJobs := 2
	truth := func(v []float64) float64 {
		var s float64
		for i, x := range v {
			n := x / float64(topo[i%len(topo)].Units)
			s += -float64(i+1) * (n - 0.5) * (n - 0.5)
		}
		return s
	}
	var hist []core.Step
	cfgSeen := map[string]bool{}
	resource.ForEachConfig(topo, nJobs, 2, func(cfg resource.Config) bool {
		if cfgSeen[cfg.Key()] {
			return true
		}
		cfgSeen[cfg.Key()] = true
		hist = append(hist, core.Step{Config: cfg.Clone(), Score: truth(cfg.Vector())})
		return len(hist) < 200
	})
	model, err := fitQuadratic(topo, hist)
	if err != nil {
		t.Fatal(err)
	}
	holdout := resource.EqualSplit(topo, nJobs)
	got := model.predict(holdout.Vector())
	want := truth(holdout.Vector())
	if math.Abs(got-want) > 0.05 {
		t.Errorf("quadratic fit predicts %v, want %v", got, want)
	}
}

func TestFitQuadraticRejectsEmptyHistory(t *testing.T) {
	if _, err := fitQuadratic(resource.Small(), nil); err == nil {
		t.Error("expected error on empty history")
	}
}

func TestParity(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 2: 1, 3: 0, 7: 1, 255: 0}
	for x, want := range cases {
		if got := parity(x); got != want {
			t.Errorf("parity(%d) = %d, want %d", x, got, want)
		}
	}
}

// TestDOENeedsMoreSamplesThanCLITEForWorseResults reproduces the
// paper's Sec. 5.2 verdict at test scale: the static designs spend a
// larger budget than CLITE without matching the oracle.
func TestDOEBudgetsExceedCLITE(t *testing.T) {
	m := easyMix(t, 3)
	clite := policies.CLITE{}
	cRes, err := clite.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	rRes, err := RSM{Seed: 3}.Run(easyMix(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if rRes.SamplesUsed <= cRes.SamplesUsed {
		t.Errorf("RSM (%d) should need more samples than CLITE (%d)", rRes.SamplesUsed, cRes.SamplesUsed)
	}
}
