// Package doe implements the design-space-exploration methods the
// paper evaluates CLITE against in Sec. 5.2 ("Comparison with design
// space exploration methods such as Fractional Factorial Designs and
// Response Surface Methods"): static sampling plans plus a fitted
// response-surface model, applied to the resource-partitioning
// problem. The paper's finding — these methods need 2–8× CLITE's
// samples and still produce lower-quality partitions because the
// objective surface changes with every job mix — is reproduced by the
// harness's "doe" experiment.
package doe

import (
	"fmt"
	"math"

	"clite/internal/core"
	"clite/internal/linalg"
	"clite/internal/optimize"
	"clite/internal/policies"
	"clite/internal/resource"
	"clite/internal/server"
	"clite/internal/stats"
)

// FFD is a two-level fractional-factorial design: each of the
// Nres×Njobs factors is tried at a "low" and "high" level, with a
// fractional subset of the full 2^k factorial chosen by bit-parity
// (resolution-III style), then the best sampled point is refined by
// the fitted first-order surface.
type FFD struct {
	// Samples bounds design points (default 48, the paper's count for
	// a 2-level FFD on the 2 LC + 1 BG case).
	Samples int
	Seed    int64
}

// Name implements policies.Policy.
func (FFD) Name() string { return "FFD" }

func (f FFD) samples() int {
	if f.Samples > 0 {
		return f.Samples
	}
	return 48
}

// Run implements policies.Policy.
func (f FFD) Run(m *server.Machine) (policies.Result, error) {
	topo := m.Topology()
	jobs := m.Jobs()
	nJobs := len(jobs)
	rng := stats.NewRNG(f.Seed)

	var hist []core.Step
	evaluate := func(cfg resource.Config) error {
		obs, err := m.Observe(cfg)
		if err != nil {
			return err
		}
		hist = append(hist, core.Step{Config: cfg.Clone(), Score: core.ScoreObservation(jobs, obs), Obs: obs})
		return nil
	}

	dim := len(topo) * nJobs
	seen := map[string]bool{}
	// Enumerate parity-selected corners of the two-level design until
	// the budget is reached; levels are low = 25% and high = 75% of
	// each factor's range, projected to feasibility.
	for corner := 0; len(hist) < f.samples() && corner < (1<<uint(min(dim, 20))); corner++ {
		if parity(corner) != 0 {
			continue // the half-fraction
		}
		v := make([]float64, dim)
		for d := 0; d < dim; d++ {
			spec := topo[d%len(topo)]
			level := 0.25
			if corner&(1<<uint(d%20)) != 0 {
				level = 0.75
			}
			v[d] = 1 + level*float64(spec.Units-nJobs)
		}
		cfg := resource.RoundFeasible(topo, nJobs, v)
		if seen[cfg.Key()] {
			continue
		}
		seen[cfg.Key()] = true
		if err := evaluate(cfg); err != nil {
			return policies.Result{}, err
		}
	}
	// Fill any remaining budget with random points (fractional designs
	// for k factors at our sizes repeat quickly after projection).
	for len(hist) < f.samples() {
		cfg := resource.Random(topo, nJobs, rng)
		if seen[cfg.Key()] {
			continue
		}
		seen[cfg.Key()] = true
		if err := evaluate(cfg); err != nil {
			return policies.Result{}, err
		}
	}
	return bestOfSteps(hist), nil
}

func parity(x int) int {
	p := 0
	for ; x != 0; x &= x - 1 {
		p ^= 1
	}
	return p
}

// RSM is a response-surface method: sample a structured design
// (extremes + equal split + random fill), fit a ridge-regularized
// quadratic surface to the observed scores, maximize the fitted
// surface over the feasible polytope, and evaluate the predicted
// optimum. This mirrors the paper's Box-Behnken/Central-Composite
// discussion, including its cost: a full quadratic in d dimensions has
// 1 + d + d(d+1)/2 coefficients, which is why the paper measured 130+
// samples for even the small co-location cases.
type RSM struct {
	// Samples is the design size (default 130, the paper's
	// Box-Behnken count).
	Samples int
	Seed    int64
}

// Name implements policies.Policy.
func (RSM) Name() string { return "RSM" }

func (r RSM) samples() int {
	if r.Samples > 0 {
		return r.Samples
	}
	return 130
}

// Run implements policies.Policy.
func (r RSM) Run(m *server.Machine) (policies.Result, error) {
	topo := m.Topology()
	jobs := m.Jobs()
	nJobs := len(jobs)
	rng := stats.NewRNG(r.Seed)

	var hist []core.Step
	seen := map[string]bool{}
	evaluate := func(cfg resource.Config) error {
		if seen[cfg.Key()] {
			return nil
		}
		seen[cfg.Key()] = true
		obs, err := m.Observe(cfg)
		if err != nil {
			return err
		}
		hist = append(hist, core.Step{Config: cfg.Clone(), Score: core.ScoreObservation(jobs, obs), Obs: obs})
		return nil
	}

	// Structured portion: equal split and per-job extremes (the design
	// centre and axial points).
	if err := evaluate(resource.EqualSplit(topo, nJobs)); err != nil {
		return policies.Result{}, err
	}
	for j := 0; j < nJobs; j++ {
		if err := evaluate(resource.Extremum(topo, nJobs, j)); err != nil {
			return policies.Result{}, err
		}
	}
	// Random fill to the design size.
	for len(hist) < r.samples()-1 {
		if err := evaluate(resource.Random(topo, nJobs, rng)); err != nil {
			return policies.Result{}, err
		}
	}

	// Fit the quadratic surface and evaluate its predicted optimum.
	model, err := fitQuadratic(topo, hist)
	if err == nil {
		xStar := optimize.Maximize(optimize.Problem{
			Topo: topo, NJobs: nJobs,
			Objective: model.predict,
			FrozenJob: -1,
			RNG:       rng,
		})
		if err := evaluate(resource.RoundFeasible(topo, nJobs, xStar)); err != nil {
			return policies.Result{}, err
		}
	}
	return bestOfSteps(hist), nil
}

// quadModel is a fitted quadratic response surface over normalized
// job-major configuration vectors.
type quadModel struct {
	topo  resource.Topology
	dim   int
	coeff []float64 // intercept, linear terms, upper-triangular quadratic terms
}

// features expands a normalized vector into the quadratic basis.
func (q *quadModel) features(x []float64) []float64 {
	f := make([]float64, 0, 1+q.dim+q.dim*(q.dim+1)/2)
	f = append(f, 1)
	f = append(f, x...)
	for i := 0; i < q.dim; i++ {
		for j := i; j < q.dim; j++ {
			f = append(f, x[i]*x[j])
		}
	}
	return f
}

func (q *quadModel) normalize(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x / float64(q.topo[i%len(q.topo)].Units)
	}
	return out
}

// predict evaluates the fitted surface on a raw unit vector.
func (q *quadModel) predict(x []float64) float64 {
	f := q.features(q.normalize(x))
	return linalg.Dot(f, q.coeff)
}

// fitQuadratic solves the ridge-regularized normal equations
// (XᵀX + λI)β = Xᵀy over the quadratic basis.
func fitQuadratic(topo resource.Topology, hist []core.Step) (*quadModel, error) {
	if len(hist) == 0 {
		return nil, fmt.Errorf("doe: no samples to fit")
	}
	dim := len(hist[0].Config.Vector())
	q := &quadModel{topo: topo, dim: dim}
	p := 1 + dim + dim*(dim+1)/2

	xtx := linalg.NewMatrix(p, p)
	xty := make([]float64, p)
	for _, step := range hist {
		f := q.features(q.normalize(step.Config.Vector()))
		for i := 0; i < p; i++ {
			xty[i] += f[i] * step.Score
			row := xtx.Row(i)
			for j := 0; j < p; j++ {
				row[j] += f[i] * f[j]
			}
		}
	}
	const ridge = 1e-3
	for i := 0; i < p; i++ {
		xtx.Set(i, i, xtx.At(i, i)+ridge)
	}
	chol, _, err := linalg.Cholesky(xtx, 1.0)
	if err != nil {
		return nil, fmt.Errorf("doe: normal equations: %w", err)
	}
	q.coeff = linalg.CholeskySolve(chol, xty)
	if anyNaN(q.coeff) {
		return nil, fmt.Errorf("doe: degenerate fit")
	}
	return q, nil
}

func anyNaN(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) {
			return true
		}
	}
	return false
}

// bestOfSteps mirrors the policies package's best-sample extraction.
func bestOfSteps(hist []core.Step) policies.Result {
	res := policies.Result{History: hist, SamplesUsed: len(hist)}
	bestIdx := -1
	for i, s := range hist {
		if bestIdx < 0 || s.Score > hist[bestIdx].Score {
			bestIdx = i
		}
	}
	if bestIdx >= 0 {
		res.Best = hist[bestIdx].Config
		res.BestScore = hist[bestIdx].Score
		res.BestObs = hist[bestIdx].Obs
		res.QoSMeetable = hist[bestIdx].Obs.AllQoSMet
	}
	return res
}
