// Package par is the repo's one bounded worker pool. Every parallel
// path in the controller (GP hyperparameter grid, acquisition
// multi-starts, ORACLE sweep shards, the experiment registry) funnels
// through it, and all of them follow the same determinism rules
// (DESIGN.md §8):
//
//   - workers only write to index-addressed slots they own, never to
//     shared accumulators;
//   - every reduction over those slots happens after the pool drains,
//     sequentially, in index order;
//   - any randomness is drawn from per-shard RNGs seeded before the
//     pool starts (stats.RNG.Split), never from a shared stream.
//
// Under those rules the output is byte-identical whatever the worker
// count or goroutine schedule, so "go fast" and "stay reproducible"
// stop being a trade-off.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Count resolves a requested worker count: 0 (or negative) means
// runtime.NumCPU(), and the result is clamped to at least 1.
func Count(requested int) int {
	if requested > 0 {
		return requested
	}
	if n := runtime.NumCPU(); n > 1 {
		return n
	}
	return 1
}

// ForEach invokes fn(i) for every i in [0, n), fanning the indices out
// over min(workers, n) goroutines (workers ≤ 0 means NumCPU). Indices
// are handed out dynamically, so uneven work items still balance; fn
// must confine its writes to state owned by index i. With one worker
// (or one item) everything runs inline on the caller's goroutine.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Count(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Go runs fn(0) … fn(k−1) concurrently, one goroutine per shard, and
// waits for all of them. It is the static-sharding counterpart of
// ForEach for callers that keep per-shard state (caches, RNGs) keyed
// by the shard id. With k == 1 the shard runs inline.
func Go(k int, fn func(shard int)) {
	if k <= 0 {
		return
	}
	if k == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(k)
	for s := 0; s < k; s++ {
		go func(s int) {
			defer wg.Done()
			fn(s)
		}(s)
	}
	wg.Wait()
}
