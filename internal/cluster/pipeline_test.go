package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"

	"clite/internal/telemetry"
)

// stream is a repetitive request mix: the warehouse case the profile
// cache exists for.
func stream() []Request {
	return []Request{
		{Workload: "memcached", Load: 0.2},
		{Workload: "swaptions"},
		{Workload: "memcached", Load: 0.2},
		{Workload: "swaptions"},
		{Workload: "img-dnn", Load: 0.2},
		{Workload: "memcached", Load: 0.2},
	}
}

type placed struct {
	node  int
	key   string
	score float64
	err   string
}

func runStream(t *testing.T, opts Options, reqs []Request) ([]placed, Stats) {
	t.Helper()
	s := New(opts)
	out := make([]placed, 0, len(reqs))
	for _, r := range reqs {
		p, err := s.Place(r)
		rec := placed{node: -1}
		if err != nil {
			rec.err = err.Error()
		} else {
			rec.node = p.Node
			rec.key = p.Result.Best.Key()
			rec.score = p.Result.BestScore
		}
		out = append(out, rec)
	}
	return out, s.Stats()
}

// TestPlacementsByteIdenticalAcrossWorkerCounts pins the §8/§9
// determinism contract: the placement stream, the partition each job
// got, and every pipeline counter must not depend on how many
// screening workers ran.
func TestPlacementsByteIdenticalAcrossWorkerCounts(t *testing.T) {
	reqs := stream()
	seq, seqStats := runStream(t, Options{Nodes: 3, Seed: 11, ScreenIterations: 8, ScreenWorkers: 1}, reqs)
	parl, parStats := runStream(t, Options{Nodes: 3, Seed: 11, ScreenIterations: 8, ScreenWorkers: 8}, reqs)
	for i := range seq {
		if seq[i] != parl[i] {
			t.Errorf("request %d diverged: sequential %+v, parallel %+v", i, seq[i], parl[i])
		}
	}
	if seqStats != parStats {
		t.Errorf("stats diverged:\n  1 worker: %+v\n  8 workers: %+v", seqStats, parStats)
	}
}

// TestProfileCacheSkipsRepeatScreens checks the headline saving: a
// repeated job mix must be admitted from the cache (one verification
// window), not re-screened with a fresh BO run.
func TestProfileCacheSkipsRepeatScreens(t *testing.T) {
	s := New(Options{Nodes: 3, Seed: 5, ScreenIterations: 8})
	first, err := s.Place(Request{Workload: "memcached", Load: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	cold := s.Stats()
	if cold.Screens == 0 || cold.BOIterations == 0 {
		t.Fatalf("cold placement ran no screen: %+v", cold)
	}
	// The empty nodes present the same solo mix: exact cache hit.
	second, err := s.Place(Request{Workload: "memcached", Load: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if second.Node == first.Node {
		t.Errorf("repeat landed on the same node %d (expected a fresh node first in order)", second.Node)
	}
	warm := s.Stats()
	if warm.Screens != cold.Screens || warm.BOIterations != cold.BOIterations {
		t.Errorf("repeat mix paid a BO screen: cold %+v, warm %+v", cold, warm)
	}
	if warm.CacheHits == 0 {
		t.Errorf("no cache hit recorded: %+v", warm)
	}
	if warm.VerifyWindows != cold.VerifyWindows+1 {
		t.Errorf("repeat LC mix should cost exactly one verification window: cold %+v, warm %+v", cold, warm)
	}
	if !second.Result.Best.Equal(first.Result.Best) {
		t.Error("cached placement should reuse the memoized partition")
	}
}

// TestNearMissWarmStartsScreening checks that a mix close to a cached
// one screens warm from the donor's partitions instead of cold.
func TestNearMissWarmStartsScreening(t *testing.T) {
	s := New(Options{Nodes: 2, Seed: 7, ScreenIterations: 8})
	if _, err := s.Place(Request{Workload: "memcached", Load: 0.2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(Request{Workload: "memcached", Load: 0.3}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.CacheNearHits == 0 || st.WarmScreens == 0 {
		t.Errorf("0.3 should warm-start from the cached 0.2 profile: %+v", st)
	}
}

// TestPrefilterRejectsWithoutScreening checks the zero-BO rejection
// path: a hopeless request must bounce off the analytical bound on
// every node without a single screening run.
func TestPrefilterRejectsWithoutScreening(t *testing.T) {
	s := New(Options{Nodes: 3, Seed: 9})
	_, err := s.Place(Request{Workload: "memcached", Load: 1.4})
	if !errors.Is(err, ErrUnplaceable) {
		t.Fatalf("err = %v, want ErrUnplaceable", err)
	}
	st := s.Stats()
	if st.Screens != 0 || st.BOIterations != 0 {
		t.Errorf("hopeless request paid BO cycles: %+v", st)
	}
	if st.PrefilterRejects != 3 {
		t.Errorf("PrefilterRejects = %d, want 3 (one per node)", st.PrefilterRejects)
	}
	if st.Rejections != 1 {
		t.Errorf("Rejections = %d, want 1", st.Rejections)
	}
}

// TestAblationSwitchesDisableTheLayers makes sure the benchmarking
// switches really turn the layers off.
func TestAblationSwitchesDisableTheLayers(t *testing.T) {
	s := New(Options{
		Nodes: 2, Seed: 3, ScreenIterations: 8,
		DisableProfileCache: true, DisablePrefilter: true,
	})
	for i := 0; i < 2; i++ {
		if _, err := s.Place(Request{Workload: "memcached", Load: 0.2}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.CacheHits+st.CacheMisses+st.CacheNearHits != 0 {
		t.Errorf("cache consulted despite DisableProfileCache: %+v", st)
	}
	if st.PrefilterRejects != 0 {
		t.Errorf("prefilter ran despite DisablePrefilter: %+v", st)
	}
	if st.Screens != 2 {
		t.Errorf("Screens = %d, want 2 (every placement cold)", st.Screens)
	}
	if s.CacheLen() != 0 {
		t.Errorf("cache stored %d entries while disabled", s.CacheLen())
	}
}

// TestConcurrentPlaceIsSafe drives Place from many goroutines; run
// under -race this pins the locking. Placements serialize internally,
// so every accepted job must be visible afterwards.
func TestConcurrentPlaceIsSafe(t *testing.T) {
	s := New(Options{Nodes: 4, Seed: 13, ScreenIterations: 8})
	reqs := []Request{
		{Workload: "swaptions"},
		{Workload: "memcached", Load: 0.2},
		{Workload: "swaptions"},
		{Workload: "img-dnn", Load: 0.2},
		{Workload: "swaptions"},
		{Workload: "memcached", Load: 0.2},
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted := 0
	for _, r := range reqs {
		wg.Add(1)
		go func(r Request) {
			defer wg.Done()
			_, err := s.Place(r)
			if err != nil && !errors.Is(err, ErrUnplaceable) {
				t.Errorf("Place(%v): %v", r, err)
			}
			if err == nil {
				mu.Lock()
				accepted++
				mu.Unlock()
			}
			s.Snapshot()
		}(r)
	}
	wg.Wait()
	if got := s.Jobs(); got != accepted {
		t.Errorf("Jobs() = %d after %d accepted placements", got, accepted)
	}
	st := s.Stats()
	if st.Placements != accepted {
		t.Errorf("Stats.Placements = %d, want %d", st.Placements, accepted)
	}
}

// TestRehomeAfterFailureIsWorkerCountInvariant extends the byte-
// identity contract to the reschedule path.
func TestRehomeAfterFailureIsWorkerCountInvariant(t *testing.T) {
	run := func(workers int) ([]Outcome, Stats) {
		s := New(Options{Nodes: 3, Seed: 21, ScreenIterations: 8, ScreenWorkers: workers})
		for _, r := range stream()[:4] {
			if _, err := s.Place(r); err != nil {
				t.Fatal(err)
			}
		}
		out, err := s.FailNode(0)
		if err != nil {
			t.Fatal(err)
		}
		return out, s.Stats()
	}
	seq, seqStats := run(1)
	parl, parStats := run(8)
	if len(seq) != len(parl) {
		t.Fatalf("outcome counts diverge: %d vs %d", len(seq), len(parl))
	}
	for i := range seq {
		if seq[i].Node != parl[i].Node || seq[i].Request != parl[i].Request {
			t.Errorf("outcome %d diverged: %+v vs %+v", i, seq[i], parl[i])
		}
	}
	if seqStats != parStats {
		t.Errorf("stats diverged:\n  1 worker: %+v\n  8 workers: %+v", seqStats, parStats)
	}
}

// TestClusterTraceByteIdenticalAcrossWorkerCounts extends the §8
// determinism contract to the telemetry layer: the JSONL event stream
// from a traced placement run — including per-screen sub-traces merged
// at commit — must not depend on how many screening workers ran.
func TestClusterTraceByteIdenticalAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) string {
		tr := telemetry.NewTracer()
		s := New(Options{Nodes: 3, Seed: 11, ScreenIterations: 8, ScreenWorkers: workers, Trace: tr})
		for _, r := range stream() {
			if _, err := s.Place(r); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq := run(1)
	parl := run(8)
	if seq != parl {
		t.Errorf("trace streams diverged between 1 and 8 workers:\n--- 1 worker ---\n%s\n--- 8 workers ---\n%s", seq, parl)
	}
	if seq == "" {
		t.Fatal("traced run emitted no events")
	}
	kinds := telemetry.CountKinds(telemetryEventsFromJSONL(t, seq))
	for _, want := range []string{telemetry.KindPlacementPhase, telemetry.KindSpanBegin, telemetry.KindSpanEnd, telemetry.KindBOIteration} {
		if kinds[want] == 0 {
			t.Errorf("trace missing %q events (got kinds %v)", want, kinds)
		}
	}
}

func telemetryEventsFromJSONL(t *testing.T, s string) []telemetry.Event {
	t.Helper()
	var evs []telemetry.Event
	dec := json.NewDecoder(strings.NewReader(s))
	for dec.More() {
		var e telemetry.Event
		if err := dec.Decode(&e); err != nil {
			t.Fatal(err)
		}
		evs = append(evs, e)
	}
	return evs
}

// TestStatsViewMatchesExternalRegistry pins the Stats migration: the
// struct is a view over the cluster_* counters, so an externally
// supplied registry must show exactly the same numbers.
func TestStatsViewMatchesExternalRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := New(Options{Nodes: 3, Seed: 5, ScreenIterations: 8, Metrics: reg})
	for _, r := range stream() {
		if _, err := s.Place(r); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	want := map[string]int{
		"cluster_placements_total":        st.Placements,
		"cluster_rejections_total":        st.Rejections,
		"cluster_prefilter_rejects_total": st.PrefilterRejects,
		"cluster_cache_hits_total":        st.CacheHits,
		"cluster_cache_misses_total":      st.CacheMisses,
		"cluster_cache_near_hits_total":   st.CacheNearHits,
		"cluster_screens_total":           st.Screens,
		"cluster_warm_screens_total":      st.WarmScreens,
		"cluster_bo_iterations_total":     st.BOIterations,
		"cluster_verify_windows_total":    st.VerifyWindows,
	}
	for name, v := range want {
		if got := int(reg.Counter(name).Value()); got != v {
			t.Errorf("%s: registry has %d, Stats view has %d", name, got, v)
		}
	}
	if st.Placements == 0 || st.Screens == 0 {
		t.Errorf("expected non-trivial pipeline activity, got %+v", st)
	}
}
