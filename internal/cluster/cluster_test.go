package cluster

import (
	"errors"
	"testing"
)

func TestRequestClassification(t *testing.T) {
	if !(Request{Workload: "memcached", Load: 0.2}).IsLC() {
		t.Error("loaded request should be LC")
	}
	if (Request{Workload: "canneal"}).IsLC() {
		t.Error("zero-load request should be BG")
	}
}

func TestPlaceSpreadsAcrossNodes(t *testing.T) {
	s := New(Options{Nodes: 3, Seed: 1})
	var nodes []int
	for i := 0; i < 3; i++ {
		p, err := s.Place(Request{Workload: "memcached", Load: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, p.Node)
	}
	// Least-loaded placement must use all three nodes before doubling
	// up anywhere.
	seen := map[int]bool{}
	for _, n := range nodes {
		if seen[n] {
			t.Fatalf("node %d reused before the cluster filled: %v", n, nodes)
		}
		seen[n] = true
	}
	if s.Jobs() != 3 {
		t.Errorf("Jobs() = %d, want 3", s.Jobs())
	}
}

func TestPlaceValidation(t *testing.T) {
	s := New(Options{Nodes: 1, Seed: 2})
	if _, err := s.Place(Request{Workload: "memcached", Load: -1}); err == nil {
		t.Error("negative load should be rejected")
	}
	if _, err := s.Place(Request{Workload: "not-a-workload", Load: 0.2}); err == nil {
		t.Error("unknown workload should be rejected")
	}
}

func TestPlaceRejectsHopelessJob(t *testing.T) {
	s := New(Options{Nodes: 2, Seed: 3})
	// 140% of the knee cannot meet QoS anywhere, even alone.
	_, err := s.Place(Request{Workload: "memcached", Load: 1.4})
	if !errors.Is(err, ErrUnplaceable) {
		t.Fatalf("expected ErrUnplaceable, got %v", err)
	}
	if s.Jobs() != 0 {
		t.Error("rejected job must not occupy a node")
	}
}

func TestPlaceBGJobsAlwaysAdmissible(t *testing.T) {
	s := New(Options{Nodes: 1, Seed: 4})
	for _, bg := range []string{"swaptions", "canneal"} {
		if _, err := s.Place(Request{Workload: bg}); err != nil {
			t.Fatalf("BG job %s should place: %v", bg, err)
		}
	}
	snap := s.Snapshot()
	if len(snap[0].Jobs) != 2 {
		t.Fatalf("snapshot jobs = %v", snap[0].Jobs)
	}
}

func TestClusterPacksUntilSaturation(t *testing.T) {
	// One node, repeated heavy LC jobs: the first placements succeed,
	// then the scheduler starts rejecting — the admission behaviour a
	// warehouse scheduler builds on.
	s := New(Options{Nodes: 1, Seed: 5, ScreenIterations: 16})
	accepted := 0
	for i := 0; i < 4; i++ {
		_, err := s.Place(Request{Workload: "memcached", Load: 0.45})
		if err == nil {
			accepted++
			continue
		}
		if !errors.Is(err, ErrUnplaceable) {
			t.Fatal(err)
		}
		break
	}
	if accepted == 0 {
		t.Error("a 45% memcached should fit on an empty node")
	}
	if accepted >= 4 {
		t.Error("four 45% memcacheds cannot share one node; admission control failed")
	}
}

func TestSnapshotReportsState(t *testing.T) {
	s := New(Options{Nodes: 2, Seed: 6})
	if _, err := s.Place(Request{Workload: "img-dnn", Load: 0.2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(Request{Workload: "streamcluster"}); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d nodes", len(snap))
	}
	labeled := 0
	for _, n := range snap {
		labeled += len(n.Jobs)
		for _, j := range n.Jobs {
			if j == "img-dnn@20%" || j == "streamcluster" {
				continue
			}
			t.Errorf("unexpected job label %q", j)
		}
	}
	if labeled != 2 {
		t.Errorf("snapshot lists %d jobs, want 2", labeled)
	}
}
