package cluster

import (
	"errors"
	"fmt"
	"testing"

	"clite/internal/faults"
)

func TestRequestClassification(t *testing.T) {
	if !(Request{Workload: "memcached", Load: 0.2}).IsLC() {
		t.Error("loaded request should be LC")
	}
	if (Request{Workload: "canneal"}).IsLC() {
		t.Error("zero-load request should be BG")
	}
}

func TestPlaceSpreadsAcrossNodes(t *testing.T) {
	s := New(Options{Nodes: 3, Seed: 1})
	var nodes []int
	for i := 0; i < 3; i++ {
		p, err := s.Place(Request{Workload: "memcached", Load: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, p.Node)
	}
	// Least-loaded placement must use all three nodes before doubling
	// up anywhere.
	seen := map[int]bool{}
	for _, n := range nodes {
		if seen[n] {
			t.Fatalf("node %d reused before the cluster filled: %v", n, nodes)
		}
		seen[n] = true
	}
	if s.Jobs() != 3 {
		t.Errorf("Jobs() = %d, want 3", s.Jobs())
	}
}

func TestPlaceValidation(t *testing.T) {
	s := New(Options{Nodes: 1, Seed: 2})
	if _, err := s.Place(Request{Workload: "memcached", Load: -1}); err == nil {
		t.Error("negative load should be rejected")
	}
	if _, err := s.Place(Request{Workload: "not-a-workload", Load: 0.2}); err == nil {
		t.Error("unknown workload should be rejected")
	}
}

func TestPlaceRejectsHopelessJob(t *testing.T) {
	s := New(Options{Nodes: 2, Seed: 3})
	// 140% of the knee cannot meet QoS anywhere, even alone.
	_, err := s.Place(Request{Workload: "memcached", Load: 1.4})
	if !errors.Is(err, ErrUnplaceable) {
		t.Fatalf("expected ErrUnplaceable, got %v", err)
	}
	if s.Jobs() != 0 {
		t.Error("rejected job must not occupy a node")
	}
}

func TestPlaceBGJobsAlwaysAdmissible(t *testing.T) {
	s := New(Options{Nodes: 1, Seed: 4})
	for _, bg := range []string{"swaptions", "canneal"} {
		if _, err := s.Place(Request{Workload: bg}); err != nil {
			t.Fatalf("BG job %s should place: %v", bg, err)
		}
	}
	snap := s.Snapshot()
	if len(snap[0].Jobs) != 2 {
		t.Fatalf("snapshot jobs = %v", snap[0].Jobs)
	}
}

func TestClusterPacksUntilSaturation(t *testing.T) {
	// One node, repeated heavy LC jobs: the first placements succeed,
	// then the scheduler starts rejecting — the admission behaviour a
	// warehouse scheduler builds on.
	s := New(Options{Nodes: 1, Seed: 5, ScreenIterations: 16})
	accepted := 0
	for i := 0; i < 4; i++ {
		_, err := s.Place(Request{Workload: "memcached", Load: 0.45})
		if err == nil {
			accepted++
			continue
		}
		if !errors.Is(err, ErrUnplaceable) {
			t.Fatal(err)
		}
		break
	}
	if accepted == 0 {
		t.Error("a 45% memcached should fit on an empty node")
	}
	if accepted >= 4 {
		t.Error("four 45% memcacheds cannot share one node; admission control failed")
	}
}

func TestFailNodeReschedulesAcrossSurvivors(t *testing.T) {
	s := New(Options{Nodes: 3, Seed: 11, ScreenIterations: 16})
	var first Placement
	for i := 0; i < 3; i++ {
		p, err := s.Place(Request{Workload: "img-dnn", Load: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = p
		}
	}
	outcomes, err := s.FailNode(first.Node)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 1 {
		t.Fatalf("drained %d jobs, want 1: %+v", len(outcomes), outcomes)
	}
	o := outcomes[0]
	if o.Err != nil {
		t.Fatalf("light LC job must rehome onto a survivor: %v", o.Err)
	}
	if o.From != first.Node || o.Node == first.Node || o.Node < 0 {
		t.Errorf("outcome %+v: must move off the failed node", o)
	}
	if s.Jobs() != 3 {
		t.Errorf("Jobs() = %d after reschedule, want 3", s.Jobs())
	}
	for _, info := range s.Snapshot() {
		if info.ID == first.Node {
			if !info.Failed || len(info.Jobs) != 0 {
				t.Errorf("failed node snapshot %+v: want Failed and empty", info)
			}
		} else if info.Failed {
			t.Errorf("survivor %d marked failed", info.ID)
		}
	}
	// The failed node takes no further placements.
	p, err := s.Place(Request{Workload: "swaptions"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Node == first.Node {
		t.Error("Place landed a job on a failed node")
	}
}

func TestFailNodeValidation(t *testing.T) {
	s := New(Options{Nodes: 2, Seed: 12})
	if _, err := s.FailNode(7); err == nil {
		t.Error("unknown node id must be rejected")
	}
	if _, err := s.FailNode(0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FailNode(0); err == nil {
		t.Error("double failure must be rejected")
	}
}

func TestAllNodesFailedIsUnplaceable(t *testing.T) {
	s := New(Options{Nodes: 2, Seed: 13})
	for id := 0; id < 2; id++ {
		if _, err := s.FailNode(id); err != nil {
			t.Fatal(err)
		}
	}
	_, err := s.Place(Request{Workload: "swaptions"})
	if !errors.Is(err, ErrUnplaceable) {
		t.Fatalf("a fully failed cluster must reject everything, got %v", err)
	}
}

func TestRescheduleReportsUnplaceableJobs(t *testing.T) {
	// Two nodes, each saturated with a heavy LC job; when one node
	// dies its job cannot squeeze next to the other heavy job, and the
	// outcome must say so without erroring the whole reschedule.
	s := New(Options{Nodes: 2, Seed: 14, ScreenIterations: 16})
	for i := 0; i < 2; i++ {
		if _, err := s.Place(Request{Workload: "memcached", Load: 0.6}); err != nil {
			t.Fatal(err)
		}
	}
	outcomes, err := s.FailNode(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 1 {
		t.Fatalf("outcomes = %+v", outcomes)
	}
	if !errors.Is(outcomes[0].Err, ErrUnplaceable) {
		t.Errorf("outcome error = %v, want ErrUnplaceable", outcomes[0].Err)
	}
	if outcomes[0].Node != -1 {
		t.Errorf("unplaceable outcome must carry Node -1: %+v", outcomes[0])
	}
	if s.Jobs() != 1 {
		t.Errorf("Jobs() = %d, want 1 (the survivor keeps its own job)", s.Jobs())
	}
}

// clusterState flattens placements for comparison: per-node job labels
// plus failure flags.
func clusterState(s *Scheduler) string {
	out := ""
	for _, n := range s.Snapshot() {
		out += fmt.Sprintf("%d failed=%v %v\n", n.ID, n.Failed, n.Jobs)
	}
	return out
}

func TestRescheduleIsDeterministic(t *testing.T) {
	// Same seed ⇒ same placements, same reschedule outcomes, same final
	// map — even though rehoming screens the survivors concurrently.
	// This test is the race-detector workout for that fan-out.
	run := func() (string, string) {
		s := New(Options{Nodes: 3, Seed: 15, ScreenIterations: 12})
		reqs := []Request{
			{Workload: "img-dnn", Load: 0.2},
			{Workload: "memcached", Load: 0.2},
			{Workload: "swaptions"},
			{Workload: "xapian", Load: 0.2},
		}
		for _, r := range reqs {
			if _, err := s.Place(r); err != nil {
				t.Fatal(err)
			}
		}
		outcomes, err := s.FailNode(0)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", outcomes), clusterState(s)
	}
	o1, s1 := run()
	o2, s2 := run()
	if o1 != o2 {
		t.Errorf("reschedule outcomes diverge:\n%s\nvs\n%s", o1, o2)
	}
	if s1 != s2 {
		t.Errorf("final placement map diverges:\n%s\nvs\n%s", s1, s2)
	}
}

func TestScreeningUnderFaultsStillAdmits(t *testing.T) {
	s := New(Options{Nodes: 2, Seed: 16, ScreenIterations: 16, Faults: faults.Plan{
		Seed: 99, Transient: 0.10, Outlier: 0.10,
	}})
	p, err := s.Place(Request{Workload: "img-dnn", Load: 0.2})
	if err != nil {
		t.Fatalf("a light LC job must still screen through a 10%%/10%% fault mix: %v", err)
	}
	if !p.Result.QoSMeetable {
		t.Error("admitted placement should carry a QoS-meeting screening result")
	}
}

func TestSnapshotReportsState(t *testing.T) {
	s := New(Options{Nodes: 2, Seed: 6})
	if _, err := s.Place(Request{Workload: "img-dnn", Load: 0.2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(Request{Workload: "streamcluster"}); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d nodes", len(snap))
	}
	labeled := 0
	for _, n := range snap {
		labeled += len(n.Jobs)
		for _, j := range n.Jobs {
			if j == "img-dnn@20%" || j == "streamcluster" {
				continue
			}
			t.Errorf("unexpected job label %q", j)
		}
	}
	if labeled != 2 {
		t.Errorf("snapshot lists %d jobs, want 2", labeled)
	}
}

// exhaustionScenario builds the survivor-exhaustion fixture: two nodes
// each saturated with two 45% memcacheds, then node 0 dies. The
// survivor has no headroom left, so the reschedule finds a home for
// nothing — the exhaustion path the warehouse layer must survive.
func exhaustionScenario(t *testing.T, workers int) (*Scheduler, []Outcome, Stats) {
	t.Helper()
	s := New(Options{Nodes: 2, Seed: 21, ScreenIterations: 16, ScreenWorkers: workers})
	for i := 0; i < 4; i++ {
		if _, err := s.Place(Request{Workload: "memcached", Load: 0.45}); err != nil {
			t.Fatalf("fixture: placement %d failed: %v (two 45%% memcacheds must fit per node)", i, err)
		}
	}
	for _, info := range s.Snapshot() {
		if len(info.Jobs) != 2 {
			t.Fatalf("fixture: node %d hosts %v; want both nodes saturated before the failure", info.ID, info.Jobs)
		}
	}
	outcomes, err := s.FailNode(0)
	if err != nil {
		t.Fatal(err)
	}
	return s, outcomes, s.Stats()
}

func TestFailNodeSurvivorExhaustion(t *testing.T) {
	s, outcomes, st := exhaustionScenario(t, 1)

	// Every drained job must surface in the outcome stream — none
	// silently dropped — each reported unrehomed with ErrUnplaceable,
	// not aborting the reschedule.
	if len(outcomes) != 2 {
		t.Fatalf("drained 2 jobs but got %d outcomes: %+v", len(outcomes), outcomes)
	}
	for i, o := range outcomes {
		if o.From != 0 {
			t.Errorf("outcome %d drained from node %d, want 0", i, o.From)
		}
		if !errors.Is(o.Err, ErrUnplaceable) {
			t.Errorf("outcome %d: err = %v, want ErrUnplaceable (survivor is full)", i, o.Err)
		}
		if o.Node != -1 {
			t.Errorf("unrehomed outcome %d must carry Node -1, got %d", i, o.Node)
		}
	}

	// Ledger consistency: the failed node is empty, the job count
	// matches what the survivor hosts, the Place-call partition is
	// untouched by the reschedule, and the reschedule's screening work
	// is on the books.
	snap := s.Snapshot()
	if !snap[0].Failed || len(snap[0].Jobs) != 0 {
		t.Errorf("failed node snapshot %+v: want Failed and empty", snap[0])
	}
	if s.Jobs() != 2 || len(snap[1].Jobs) != 2 {
		t.Errorf("Jobs() = %d, survivor hosts %d; want 2 and 2", s.Jobs(), len(snap[1].Jobs))
	}
	if st.Placements != 4 || st.Rejections != 0 {
		t.Errorf("Place ledger = %d placements / %d rejections; FailNode must not touch it", st.Placements, st.Rejections)
	}
	if st.Screens == 0 || st.BOIterations == 0 {
		t.Errorf("stats = %+v: the reschedule's screening work is missing from the ledger", st)
	}

	// The cluster stays coherent after exhaustion: another heavy LC job
	// is cleanly rejected and lands in the Rejections column.
	if _, err := s.Place(Request{Workload: "memcached", Load: 0.45}); !errors.Is(err, ErrUnplaceable) {
		t.Fatalf("post-exhaustion placement: err = %v, want ErrUnplaceable", err)
	}
	if after := s.Stats(); after.Placements != 4 || after.Rejections != 1 {
		t.Errorf("post-rejection ledger = %d/%d, want 4 placements / 1 rejection", after.Placements, after.Rejections)
	}
}

func TestFailNodeSurvivorExhaustionDeterministicAcrossWorkers(t *testing.T) {
	// The exhaustion reschedule screens survivors concurrently; the
	// outcome stream, final map, and ledger must be byte-identical for
	// 1 worker vs many.
	s1, o1, st1 := exhaustionScenario(t, 1)
	s4, o4, st4 := exhaustionScenario(t, 4)
	if fmt.Sprintf("%+v", o1) != fmt.Sprintf("%+v", o4) {
		t.Errorf("outcomes diverge across worker counts:\n%+v\nvs\n%+v", o1, o4)
	}
	if clusterState(s1) != clusterState(s4) {
		t.Errorf("final placement map diverges:\n%s\nvs\n%s", clusterState(s1), clusterState(s4))
	}
	if st1 != st4 {
		t.Errorf("stats ledgers diverge:\n%+v\nvs\n%+v", st1, st4)
	}
}
