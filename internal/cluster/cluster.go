// Package cluster is the warehouse-scale layer above the single-node
// controller: a small scheduler that places a stream of job requests
// across multiple simulated nodes, running CLITE on each node to
// decide whether a candidate co-location is QoS-feasible and, if so,
// under what partition. It operationalizes the paper's Sec. 4 note
// that jobs which cannot meet QoS on a node "can be immediately
// scheduled elsewhere without wasting any BO cycles", and the
// introduction's warehouse-scale motivation: higher utilization comes
// from safely packing more LC and BG jobs per node.
//
// Placement throughput comes from three layers that each shave BO
// cycles off the admission path (DESIGN.md §9):
//
//   - an analytical admission pre-filter (profile.Cache.Admissible)
//     rejects candidate nodes whose job mix cannot fit even under a
//     per-job optimistic bound, with zero BO iterations;
//   - a co-location profile cache keyed by the canonicalized job mix
//     memoizes screening outcomes: an exact hit skips BO entirely
//     (one verification window instead of a full search), a near hit
//     warm-starts BO from the donor's best partitions;
//   - surviving candidates are screened concurrently over internal/par
//     with an index-ordered reduction, so the chosen node is
//     byte-identical to the sequential first-feasible scan whatever
//     the worker count.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"clite/internal/bo"
	"clite/internal/core"
	"clite/internal/faults"
	"clite/internal/par"
	"clite/internal/profile"
	"clite/internal/resource"
	"clite/internal/server"
	"clite/internal/telemetry"
)

// Request asks the scheduler to place one job.
type Request struct {
	// Workload is a Table 3 workload name.
	Workload string
	// Load is the offered load for LC workloads (fraction of the
	// calibrated maximum); it must be 0 for BG workloads.
	Load float64
}

// IsLC reports whether the request is latency-critical (has a load).
func (r Request) IsLC() bool { return r.Load > 0 }

// Placement reports where a request landed and the partition found.
type Placement struct {
	Node   int
	Result core.Result
}

// ErrUnplaceable is returned when no node can host the request while
// keeping every co-located LC job inside its QoS target.
var ErrUnplaceable = errors.New("cluster: no node can host the job within QoS")

// Options configures the scheduler.
type Options struct {
	// Nodes is the cluster size (default 4).
	Nodes int
	// Seed drives all nodes' measurement noise and searches.
	Seed int64
	// ScreenIterations bounds the BO budget spent deciding whether a
	// candidate co-location is feasible (default 24: enough for the
	// bootstrap plus a focused feasibility hunt, cheap enough to try
	// several nodes).
	ScreenIterations int
	// ScreenWorkers bounds how many candidate nodes are screened
	// concurrently (0 means NumCPU). With 1 worker the scan is the
	// sequential first-feasible loop with early exit; with more, all
	// surviving candidates screen speculatively and an index-ordered
	// reduction picks the same node the sequential scan would — the
	// placement stream, the profile-cache contents, and the Stats
	// counters are byte-identical for every worker count (DESIGN.md
	// §8/§9).
	ScreenWorkers int
	// DisableProfileCache turns off the co-location profile cache:
	// every candidate is screened cold, nothing is memoized. Kept as
	// an ablation and benchmarking switch.
	DisableProfileCache bool
	// DisablePrefilter turns off the analytical admission pre-filter,
	// sending every candidate node straight to screening. Kept as an
	// ablation and benchmarking switch.
	DisablePrefilter bool
	// SharedProfiles optionally supplies an external co-location
	// profile cache, letting several scheduling domains — or successive
	// scheduler generations — pool what their screens learned. It must
	// have been built over the same topology the scheduler uses
	// (resource.Default()). nil keeps a private per-scheduler cache.
	SharedProfiles *profile.Cache
	// SharedCalibrations optionally supplies an external QoS
	// calibration store, so a fleet of schedulers pays each workload's
	// calibration sweep once rather than once per scheduler.
	// Calibrations are pure per-workload functions of the topology, so
	// sharing them never perturbs a decision. nil keeps a private
	// per-scheduler store.
	SharedCalibrations *server.Calibrations
	// Faults optionally injects observation faults into every
	// screening run — the warehouse's measurement plane is no more
	// reliable than its nodes. When the plan is enabled, screening
	// runs use the hardened controller (retry, outlier re-measurement,
	// guard pass); when it is empty the screening path is byte-for-
	// byte the unhardened one. Per-screen fault streams are derived
	// deterministically from Plan.Seed, the node id, and the node's
	// occupancy. NodeFailAt applies to each screening run's private
	// clock; whole-node loss at the cluster level is expressed with
	// FailNode instead.
	Faults faults.Plan
	// Trace, when non-nil, receives the cluster timeline: per-phase
	// PlacementPhase events plus, for every committed screen, the full
	// per-screen event stream (BO iterations, observation windows, QoS
	// violations) recorded into a private tracer during the screen and
	// merged here in commit order. Speculative screens discarded by the
	// index-ordered reduction never reach the trace, so the stream is
	// byte-identical for every ScreenWorkers setting.
	Trace *telemetry.Tracer
	// Metrics, when non-nil, backs the Stats counters. When nil the
	// scheduler keeps a private registry, so Stats always works; pass a
	// shared registry to fold cluster counters into a wider dump.
	// Counters cover committed work only, like Stats always has.
	Metrics *telemetry.Registry
}

func (o Options) nodes() int {
	if o.Nodes > 0 {
		return o.Nodes
	}
	return 4
}

func (o Options) screenIterations() int {
	if o.ScreenIterations > 0 {
		return o.ScreenIterations
	}
	return 24
}

// Stats counts the work the placement pipeline did and, more to the
// point, the work it avoided. All counters cover committed work only —
// speculative screens discarded by the index-ordered reduction are
// never counted — so the numbers are identical for every ScreenWorkers
// setting.
//
// Stats is a point-in-time view assembled from the scheduler's
// telemetry counters (cluster_* in the registry); the struct survives
// as the stable API over the registry-backed storage.
type Stats struct {
	// Placements and Rejections partition the Place call stream.
	Placements int
	Rejections int
	// PrefilterRejects counts candidate nodes dismissed analytically,
	// each one a full BO screen that never ran.
	PrefilterRejects int
	// CacheHits / CacheMisses count exact profile-cache lookups per
	// candidate node; CacheNearHits counts screens that warm-started
	// from a near-miss donor's partitions.
	CacheHits     int
	CacheMisses   int
	CacheNearHits int
	// Screens counts BO screening runs; WarmScreens is the subset
	// that started from cached seed partitions.
	Screens     int
	WarmScreens int
	// BOIterations sums the evaluated configurations (bootstrap
	// included) across all committed screens — the Fig. 15a overhead
	// metric at cluster scale.
	BOIterations int
	// VerifyWindows counts single-observation validations of cached
	// partitions (the price of an exact cache hit).
	VerifyWindows int
}

// node tracks one machine's accepted jobs. Machines are rebuilt per
// placement trial — simulated machines are cheap, and a fresh build is
// the cleanest way to express "what if this job also ran here".
type node struct {
	id       int
	seed     int64 // machine seed, fixed at construction
	requests []Request
	scratch  []Request // reused per-trial request slice (build)
	last     core.Result
	lastOK   bool
	failed   bool
}

// Scheduler places jobs across a fixed pool of simulated nodes. All
// public methods are safe for concurrent use; calls serialize on an
// internal lock so a concurrent request stream observes the same
// placements as the equivalent sequential one.
type Scheduler struct {
	mu       sync.Mutex
	opts     Options
	topo     resource.Topology
	spec     server.Spec
	nodes    []*node
	cals     *server.Calibrations
	profiles *profile.Cache
	stats    statCounters
	trace    *telemetry.Tracer
}

// statCounters is the registry-backed storage behind Stats: one handle
// per ledger entry, resolved once at New. All increments happen under
// the scheduler lock (assess/verify/commit/admit run locked), so the
// counts are exact and committed-work-only by construction.
type statCounters struct {
	placements, rejections *telemetry.Counter
	prefilterRejects       *telemetry.Counter
	cacheHits, cacheMisses *telemetry.Counter
	cacheNearHits          *telemetry.Counter
	screens, warmScreens   *telemetry.Counter
	boIterations           *telemetry.Counter
	verifyWindows          *telemetry.Counter
}

func newStatCounters(reg *telemetry.Registry) statCounters {
	return statCounters{
		placements:       reg.Counter("cluster_placements_total"),
		rejections:       reg.Counter("cluster_rejections_total"),
		prefilterRejects: reg.Counter("cluster_prefilter_rejects_total"),
		cacheHits:        reg.Counter("cluster_cache_hits_total"),
		cacheMisses:      reg.Counter("cluster_cache_misses_total"),
		cacheNearHits:    reg.Counter("cluster_cache_near_hits_total"),
		screens:          reg.Counter("cluster_screens_total"),
		warmScreens:      reg.Counter("cluster_warm_screens_total"),
		boIterations:     reg.Counter("cluster_bo_iterations_total"),
		verifyWindows:    reg.Counter("cluster_verify_windows_total"),
	}
}

// New builds a scheduler over opts.Nodes empty nodes.
func New(opts Options) *Scheduler {
	topo := resource.Default()
	profiles := opts.SharedProfiles
	if profiles == nil {
		profiles = profile.NewCache(topo)
	}
	reg := opts.Metrics
	if reg == nil {
		// A private registry keeps the Stats view working when the
		// caller wired no telemetry.
		reg = telemetry.NewRegistry()
	}
	cals := opts.SharedCalibrations
	if cals == nil {
		cals = server.NewCalibrations()
	}
	s := &Scheduler{
		opts:     opts,
		topo:     topo,
		spec:     server.DefaultSpec(),
		cals:     cals,
		profiles: profiles,
		stats:    newStatCounters(reg),
		trace:    opts.Trace,
	}
	for i := 0; i < opts.nodes(); i++ {
		s.nodes = append(s.nodes, &node{id: i, seed: opts.Seed + int64(i)*1009})
	}
	return s
}

// Stats returns a snapshot of the pipeline counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Placements:       int(s.stats.placements.Value()),
		Rejections:       int(s.stats.rejections.Value()),
		PrefilterRejects: int(s.stats.prefilterRejects.Value()),
		CacheHits:        int(s.stats.cacheHits.Value()),
		CacheMisses:      int(s.stats.cacheMisses.Value()),
		CacheNearHits:    int(s.stats.cacheNearHits.Value()),
		Screens:          int(s.stats.screens.Value()),
		WarmScreens:      int(s.stats.warmScreens.Value()),
		BOIterations:     int(s.stats.boIterations.Value()),
		VerifyWindows:    int(s.stats.verifyWindows.Value()),
	}
}

// CacheLen returns the number of distinct job mixes the profile cache
// has memoized.
func (s *Scheduler) CacheLen() int { return s.profiles.Len() }

// build constructs the machine hosting the node's jobs plus an
// optional extra request. The request slice is assembled in the node's
// scratch buffer — each node is built at most once per placement
// trial, so the buffer is never shared across goroutines — and the
// machine shares the scheduler-wide calibration cache, so each
// workload pays its QoS calibration sweep once per cluster rather than
// once per trial.
func (s *Scheduler) build(n *node, extra *Request) (*server.Machine, error) {
	m := server.NewShared(s.topo, s.spec, n.seed, s.cals)
	reqs := n.requests
	if extra != nil {
		n.scratch = append(n.scratch[:0], n.requests...)
		n.scratch = append(n.scratch, *extra)
		reqs = n.scratch
	}
	for _, r := range reqs {
		var err error
		if r.IsLC() {
			_, err = m.AddLC(r.Workload, r.Load)
		} else {
			_, err = m.AddBG(r.Workload)
		}
		if err != nil {
			return nil, err
		}
	}
	return m, nil
}

// faultPlan derives the per-screen fault stream from the cluster-level
// plan. The derivation depends only on the node id and its occupancy —
// never on wall time or goroutine order — so concurrent screening
// stays deterministic.
func (s *Scheduler) faultPlan(n *node) faults.Plan {
	p := s.opts.Faults
	if !p.Enabled() {
		return p
	}
	p.Seed += int64(n.id)*7919 + int64(len(n.requests))*104729
	return p
}

// screen runs a budget-bounded CLITE invocation to decide feasibility,
// warm-started from seeds when the profile cache knew a nearby mix.
// The substrate flag marks runs that died on their observation plane
// (the window was lost, not the co-location disproved): the candidate
// is treated as infeasible for this placement but nothing is cached.
func (s *Scheduler) screen(n *node, extra Request, seeds []resource.Config) (res core.Result, ok, substrate bool, trace *telemetry.Tracer, err error) {
	m, err := s.build(n, &extra)
	if err != nil {
		return core.Result{}, false, false, nil, err
	}
	// Screens may run speculatively and be discarded by the reduction,
	// so each records into a private tracer; commit merges the winner's
	// stream into the cluster trace in index order. The shared metrics
	// registry is deliberately NOT passed down — per-screen metric
	// updates from discarded speculative runs would make counter values
	// depend on the worker count.
	if s.trace != nil {
		trace = telemetry.NewTracer()
	}
	obs, err := faults.Wrap(m, s.faultPlan(n))
	if err != nil {
		return core.Result{}, false, false, nil, err
	}
	ctrl := core.New(obs, core.Options{
		BO: bo.Options{
			Seed:          s.opts.Seed + int64(n.id)*31 + int64(len(n.requests)),
			MaxIterations: s.opts.screenIterations(),
		},
		Resilience: core.Resilience{Enabled: s.opts.Faults.Enabled()},
		Trace:      trace,
	})
	res, err = ctrl.RunWarm(seeds)
	if err != nil {
		// A screening run that dies on its observation substrate proves
		// nothing about the co-location itself; treat the node as
		// infeasible for this request rather than failing the placement.
		if errors.Is(err, server.ErrObservationFailed) || errors.Is(err, server.ErrNodeFailed) {
			return core.Result{}, false, true, trace, nil
		}
		return core.Result{}, false, false, nil, err
	}
	// A BG-only node has no QoS gate; any partition is acceptable.
	allBG := !extra.IsLC()
	for _, r := range n.requests {
		if r.IsLC() {
			allBG = false
		}
	}
	ok = res.QoSMeetable || (allBG && len(res.Infeasible) == 0)
	return res, ok, false, trace, nil
}

// candKind is a candidate node's state after the sequential assessment
// pass.
type candKind int

const (
	// candScreen needs a BO screening run (possibly warm-started).
	candScreen candKind = iota
	// candCached has a feasible cache entry pending verification.
	candCached
	// candSkip is out: pre-filter reject or cached-infeasible mix.
	candSkip
)

// candidate pairs a node with everything the pipeline learned about
// hosting the request there.
type candidate struct {
	n     *node
	jobs  []profile.Job
	key   string
	kind  candKind
	entry *profile.Entry    // candCached: the feasible hit
	seeds []resource.Config // candScreen: warm-start partitions, if any

	// resolved after screening / verification (rehome path).
	ok  bool
	res core.Result
}

func mixOf(n *node, req Request) []profile.Job {
	jobs := make([]profile.Job, 0, len(n.requests)+1)
	for _, r := range n.requests {
		jobs = append(jobs, profile.Job{Workload: r.Workload, Load: r.Load})
	}
	return append(jobs, profile.Job{Workload: req.Workload, Load: req.Load})
}

func allBG(jobs []profile.Job) bool {
	for _, j := range jobs {
		if j.IsLC() {
			return false
		}
	}
	return true
}

// assess is phase 0 of the pipeline: sequentially classify every
// candidate node via the pre-filter and the profile cache. It runs
// under the scheduler lock before any goroutine is spawned, so lookup
// order — and with it every Stats counter — is deterministic.
func (s *Scheduler) assess(nodes []*node, req Request) ([]*candidate, error) {
	cands := make([]*candidate, 0, len(nodes))
	for _, n := range nodes {
		c := &candidate{n: n, jobs: mixOf(n, req)}
		cands = append(cands, c)
		if !s.opts.DisablePrefilter {
			ok, err := s.profiles.Admissible(c.jobs)
			if err != nil {
				return nil, err
			}
			if !ok {
				c.kind = candSkip
				s.stats.prefilterRejects.Inc()
				s.trace.Emit(telemetry.PlacementPhase("prefilter-reject", n.id, len(c.jobs), false))
				continue
			}
		}
		if s.opts.DisableProfileCache {
			c.kind = candScreen
			continue
		}
		c.key = profile.Key(c.jobs)
		if e, ok := s.profiles.Lookup(c.key); ok {
			s.stats.cacheHits.Inc()
			s.trace.Emit(telemetry.PlacementPhase("cache-hit", n.id, len(c.jobs), e.Feasible))
			if e.Feasible {
				c.kind = candCached
				c.entry = e
			} else {
				c.kind = candSkip
			}
			continue
		}
		s.stats.cacheMisses.Inc()
		c.kind = candScreen
		if donor, ok := s.profiles.LookupNear(c.jobs, profile.NearTolerance); ok {
			if seeds := donor.SeedsFor(len(c.jobs)); len(seeds) > 0 {
				c.seeds = seeds
				s.stats.cacheNearHits.Inc()
				s.trace.Emit(telemetry.PlacementPhase("cache-near-hit", n.id, len(seeds), true))
			}
		}
	}
	return cands, nil
}

// verify spends one observation window checking that a cached
// partition still meets QoS on this node — the guard against load
// quantization blurring two mixes into one key, at one window instead
// of a full BO run. Any error demotes the candidate to a full screen.
func (s *Scheduler) verify(n *node, req Request, e *profile.Entry) bool {
	m, err := s.build(n, &req)
	if err != nil {
		return false
	}
	s.stats.verifyWindows.Inc()
	observer, err := faults.Wrap(m, s.faultPlan(n))
	if err != nil {
		return false
	}
	obs, err := observer.Observe(e.Result.Best)
	ok := err == nil && obs.AllQoSMet
	s.trace.Emit(telemetry.PlacementPhase("verify", n.id, 1, ok))
	return ok
}

// demote turns a failed cached candidate into a warm screen seeded
// from its own entry.
func (c *candidate) demote() {
	c.kind = candScreen
	c.seeds = c.entry.SeedsFor(len(c.jobs))
}

// reps selects the screening representatives among the candidates:
// the candScreen ones, deduplicated by mix key when the profile cache
// is on (feasibility is a property of the job mix, so one screen per
// distinct mix decides the whole group; the representative is the
// earliest candidate, which is also the one the first-feasible rule
// would pick).
func (s *Scheduler) reps(cands []*candidate) []*candidate {
	var out []*candidate
	seen := make(map[string]bool, len(cands))
	for _, c := range cands {
		if c.kind != candScreen {
			continue
		}
		if !s.opts.DisableProfileCache && c.key != "" {
			if seen[c.key] {
				continue
			}
			seen[c.key] = true
		}
		out = append(out, c)
	}
	return out
}

// screenOut is one representative's screening outcome. done
// distinguishes "screened" from "never reached" on the sequential
// early-exit path.
type screenOut struct {
	res       core.Result
	ok        bool
	substrate bool
	trace     *telemetry.Tracer // the screen's private event stream (nil when tracing is off)
	err       error
	done      bool
}

// screenReps is phase 2: screen the representatives, sequentially with
// early exit when one worker is requested (and the caller admits on
// the first feasible result — the Place path), speculatively in
// parallel otherwise. Rehome passes earlyExit=false because it weighs
// every survivor, so all representatives screen whatever the worker
// count. Workers write only to their own index-addressed slot
// (DESIGN.md §8); nothing is committed here.
func (s *Scheduler) screenReps(reps []*candidate, req Request, earlyExit bool) []screenOut {
	results := make([]screenOut, len(reps))
	if earlyExit && par.Count(s.opts.ScreenWorkers) == 1 {
		for i, c := range reps {
			res, ok, substrate, trace, err := s.screen(c.n, req, c.seeds)
			results[i] = screenOut{res: res, ok: ok, substrate: substrate, trace: trace, err: err, done: true}
			if err != nil || ok {
				break
			}
		}
		return results
	}
	par.ForEach(s.opts.ScreenWorkers, len(reps), func(i int) {
		c := reps[i]
		res, ok, substrate, trace, err := s.screen(c.n, req, c.seeds)
		results[i] = screenOut{res: res, ok: ok, substrate: substrate, trace: trace, err: err, done: true}
	})
	return results
}

// commit folds one representative's outcome into the stats and the
// profile cache. Only results the index-ordered reduction actually
// reached are committed — the deterministic prefix — so cache contents
// and counters never depend on the worker count. Substrate failures
// prove nothing about the mix and are never cached.
func (s *Scheduler) commit(c *candidate, r screenOut) {
	if r.err != nil {
		return
	}
	s.stats.screens.Inc()
	if len(c.seeds) > 0 {
		s.stats.warmScreens.Inc()
	}
	s.stats.boIterations.Add(int64(r.res.SamplesUsed))
	// The committed screen's private event stream joins the cluster
	// trace here, under the lock, in reduction order — the only point
	// where speculative work becomes observable.
	s.trace.Merge(r.trace, c.n.id)
	s.trace.Emit(telemetry.PlacementPhase("screen", c.n.id, r.res.SamplesUsed, r.ok))
	if r.substrate || s.opts.DisableProfileCache || c.key == "" {
		return
	}
	e := &profile.Entry{Key: c.key, Jobs: c.jobs, Feasible: r.ok, Result: r.res}
	if r.ok {
		e.Seeds = profile.SeedsFromResult(r.res)
	}
	s.profiles.Store(e)
}

// admit records the placement on the node.
func (s *Scheduler) admit(n *node, req Request, res core.Result) Placement {
	n.requests = append(n.requests, req)
	n.last = res
	n.lastOK = true
	s.stats.placements.Inc()
	s.trace.Emit(telemetry.PlacementPhase("admit", n.id, len(n.requests), true))
	return Placement{Node: n.id, Result: res}
}

// Place finds a node for the request, preferring the least-loaded
// nodes, and returns the partition found there. Candidates flow
// through the pipeline: the analytical pre-filter and the profile
// cache dismiss or settle what they can; a feasible exact hit is
// validated with a single observation window; only the remaining
// unknowns pay a BO screen, concurrently, with an index-ordered
// reduction that admits the request onto the earliest feasible
// candidate — the same node the sequential first-feasible scan picks.
// If no node qualifies the request is rejected with ErrUnplaceable
// (schedule it in the next rack).
func (s *Scheduler) Place(req Request) (p Placement, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.Load < 0 || req.Load > 1.5 {
		return Placement{}, fmt.Errorf("cluster: load %v out of range", req.Load)
	}
	span := s.trace.Begin("place", -1)
	defer func() { s.trace.End("place", -1, span, 1, err == nil) }()
	order := s.live()
	sort.SliceStable(order, func(i, j int) bool {
		return len(order[i].requests) < len(order[j].requests)
	})
	cands, err := s.assess(order, req)
	if err != nil {
		return Placement{}, err
	}

	// Phase 1: walk the cached-feasible candidates in placement order
	// and verify until one holds up. That index is the cutoff — no
	// candidate after it can win, because the verified hit costs zero
	// further BO cycles and sits earlier in the order. Failed
	// verifications demote to warm screens and stay in the race.
	cutoff := len(cands)
	var verified *candidate
	for i, c := range cands {
		if c.kind != candCached {
			continue
		}
		if allBG(c.jobs) || s.verify(c.n, req, c.entry) {
			cutoff, verified = i, c
			break
		}
		c.demote()
	}

	// Phase 2: screen the surviving unknowns before the cutoff.
	reps := s.reps(cands[:cutoff])
	results := s.screenReps(reps, req, true)

	// Phase 3: sequential index-order reduction. Commit exactly the
	// prefix the sequential scan would have screened, then admit onto
	// the earliest feasible candidate.
	for i, c := range reps {
		r := results[i]
		if !r.done {
			break
		}
		s.commit(c, r)
		if r.err != nil {
			return Placement{}, r.err
		}
		if r.ok {
			return s.admit(c.n, req, r.res), nil
		}
	}
	if verified != nil {
		return s.admit(verified.n, req, verified.entry.Result), nil
	}
	s.stats.rejections.Inc()
	s.trace.Emit(telemetry.PlacementPhase("reject", -1, len(cands), false))
	return Placement{}, ErrUnplaceable
}

// ErrNotPlaced is returned by Remove when the node hosts no matching
// request to release.
var ErrNotPlaced = errors.New("cluster: no matching request placed on that node")

// Remove releases one placed request from a node — the departure path
// of a streaming workload: a job's service time ends and its resources
// return to the pool. The first request matching (Workload, Load) in
// placement order is removed; identical requests are interchangeable,
// so taking the earliest keeps removal deterministic. The node's last
// screened partition describes a mix that no longer exists, so it is
// dropped: the next placement trial rebuilds the machine from the
// surviving requests (and a shrunken mix can only be easier to
// satisfy, never harder).
func (s *Scheduler) Remove(id int, req Request) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= len(s.nodes) {
		return fmt.Errorf("cluster: no node %d", id)
	}
	n := s.nodes[id]
	if n.failed {
		return fmt.Errorf("cluster: node %d has failed", id)
	}
	for i, r := range n.requests {
		if r.Workload != req.Workload || r.Load != req.Load {
			continue
		}
		n.requests = append(n.requests[:i], n.requests[i+1:]...)
		n.last = core.Result{}
		n.lastOK = false
		s.trace.Emit(telemetry.PlacementPhase("release", id, len(n.requests), true))
		return nil
	}
	return fmt.Errorf("%w: %s on node %d", ErrNotPlaced, req.Workload, id)
}

// live returns the non-failed nodes in id order.
func (s *Scheduler) live() []*node {
	out := make([]*node, 0, len(s.nodes))
	for _, n := range s.nodes {
		if !n.failed {
			out = append(out, n)
		}
	}
	return out
}

// Outcome reports the fate of one job during the reschedule that
// follows a node failure.
type Outcome struct {
	// Request is the drained job.
	Request Request
	// From is the failed node it was drained from.
	From int
	// Node is the surviving node that absorbed it (-1 when none could
	// within QoS).
	Node int
	// Err is nil on success and ErrUnplaceable (or a screening error)
	// when the job could not be rehomed.
	Err error
}

// FailNode marks a node as permanently lost — the warehouse-scale
// fault the single-node controller cannot absorb — drains its
// placements, and reschedules them across the survivors. LC jobs are
// rehomed first so they get first pick of the remaining headroom;
// relative order is preserved within each class, keeping the
// reschedule deterministic for a given seed. Each drained job gets an
// Outcome whether or not it found a new home; jobs that fit nowhere
// are reported with ErrUnplaceable rather than aborting the rest of
// the reschedule (the paper's Sec. 4 ejection path: schedule them in
// the next rack).
func (s *Scheduler) FailNode(id int) ([]Outcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= len(s.nodes) {
		return nil, fmt.Errorf("cluster: no node %d", id)
	}
	n := s.nodes[id]
	if n.failed {
		return nil, fmt.Errorf("cluster: node %d already failed", id)
	}
	n.failed = true
	drained := n.requests
	n.requests = nil
	n.last = core.Result{}
	n.lastOK = false
	s.trace.Emit(telemetry.PlacementPhase("fail-node", id, len(drained), false))

	order := make([]Request, 0, len(drained))
	for _, r := range drained {
		if r.IsLC() {
			order = append(order, r)
		}
	}
	for _, r := range drained {
		if !r.IsLC() {
			order = append(order, r)
		}
	}
	outcomes := make([]Outcome, 0, len(order))
	for _, r := range order {
		p, err := s.rehome(r)
		if err != nil {
			outcomes = append(outcomes, Outcome{Request: r, From: id, Node: -1, Err: err})
			continue
		}
		outcomes = append(outcomes, Outcome{Request: r, From: id, Node: p.Node})
	}
	return outcomes, nil
}

// rehome finds a new node for one drained request. Unlike the
// admission path, which admits onto the earliest feasible node, a
// reschedule weighs every survivor — each drained LC job is unserved
// until it lands, so all candidates are assessed and the unknowns
// screened concurrently — and the selection rule (least-loaded
// feasible node, ties to the lowest id) is a pure function of the
// index-ordered results, so the outcome does not depend on goroutine
// interleaving. Because every representative is screened, all results
// are committed to the profile cache.
func (s *Scheduler) rehome(req Request) (Placement, error) {
	live := s.live()
	if len(live) == 0 {
		return Placement{}, ErrUnplaceable
	}
	cands, err := s.assess(live, req)
	if err != nil {
		return Placement{}, err
	}
	for _, c := range cands {
		if c.kind != candCached {
			continue
		}
		if allBG(c.jobs) || s.verify(c.n, req, c.entry) {
			c.ok, c.res = true, c.entry.Result
			continue
		}
		c.demote()
	}
	reps := s.reps(cands)
	results := s.screenReps(reps, req, false)
	byKey := make(map[string]screenOut, len(reps))
	for i, c := range reps {
		r := results[i]
		s.commit(c, r)
		if r.err != nil {
			return Placement{}, r.err
		}
		c.ok, c.res = r.ok, r.res
		if c.key != "" {
			byKey[c.key] = r
		}
	}
	// Non-representative members of a deduplicated mix group inherit
	// their representative's verdict.
	for _, c := range cands {
		if c.kind != candScreen || c.ok || c.key == "" {
			continue
		}
		if r, found := byKey[c.key]; found {
			c.ok, c.res = r.ok, r.res
		}
	}
	pick := -1
	for i, c := range cands {
		if !c.ok {
			continue
		}
		if pick < 0 || len(live[i].requests) < len(live[pick].requests) {
			pick = i
		}
	}
	if pick < 0 {
		return Placement{}, ErrUnplaceable
	}
	c := cands[pick]
	n := c.n
	n.requests = append(n.requests, req)
	n.last = c.res
	n.lastOK = true
	s.trace.Emit(telemetry.PlacementPhase("rehome", n.id, len(n.requests), true))
	return Placement{Node: n.id, Result: c.res}, nil
}

// NodeInfo is a snapshot of one node's state.
type NodeInfo struct {
	ID     int
	Jobs   []string
	QoSMet bool
	// Failed marks a node lost to FailNode; it hosts nothing and takes
	// no further placements.
	Failed bool
	// BGPerf is the mean isolation-normalized BG throughput under the
	// node's current partition (0 when the node hosts no BG job).
	BGPerf float64
}

// Snapshot reports every node's jobs and health.
func (s *Scheduler) Snapshot() []NodeInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]NodeInfo, 0, len(s.nodes))
	for _, n := range s.nodes {
		info := NodeInfo{ID: n.id, QoSMet: n.lastOK, Failed: n.failed}
		for _, r := range n.requests {
			label := r.Workload
			if r.IsLC() {
				label = fmt.Sprintf("%s@%.0f%%", r.Workload, r.Load*100)
			}
			info.Jobs = append(info.Jobs, label)
		}
		if n.lastOK && n.last.BestObs.NormPerf != nil {
			var sum float64
			cnt := 0
			for i, r := range n.requests {
				if !r.IsLC() && i < len(n.last.BestObs.NormPerf) {
					sum += n.last.BestObs.NormPerf[i]
					cnt++
				}
			}
			if cnt > 0 {
				info.BGPerf = sum / float64(cnt)
			}
		}
		out = append(out, info)
	}
	return out
}

// Jobs returns the total number of placed jobs.
func (s *Scheduler) Jobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, n := range s.nodes {
		total += len(n.requests)
	}
	return total
}
