// Package cluster is the warehouse-scale layer above the single-node
// controller: a small scheduler that places a stream of job requests
// across multiple simulated nodes, running CLITE on each node to
// decide whether a candidate co-location is QoS-feasible and, if so,
// under what partition. It operationalizes the paper's Sec. 4 note
// that jobs which cannot meet QoS on a node "can be immediately
// scheduled elsewhere without wasting any BO cycles", and the
// introduction's warehouse-scale motivation: higher utilization comes
// from safely packing more LC and BG jobs per node.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"clite/internal/bo"
	"clite/internal/core"
	"clite/internal/faults"
	"clite/internal/resource"
	"clite/internal/server"
)

// Request asks the scheduler to place one job.
type Request struct {
	// Workload is a Table 3 workload name.
	Workload string
	// Load is the offered load for LC workloads (fraction of the
	// calibrated maximum); it must be 0 for BG workloads.
	Load float64
}

// IsLC reports whether the request is latency-critical (has a load).
func (r Request) IsLC() bool { return r.Load > 0 }

// Placement reports where a request landed and the partition found.
type Placement struct {
	Node   int
	Result core.Result
}

// ErrUnplaceable is returned when no node can host the request while
// keeping every co-located LC job inside its QoS target.
var ErrUnplaceable = errors.New("cluster: no node can host the job within QoS")

// Options configures the scheduler.
type Options struct {
	// Nodes is the cluster size (default 4).
	Nodes int
	// Seed drives all nodes' measurement noise and searches.
	Seed int64
	// ScreenIterations bounds the BO budget spent deciding whether a
	// candidate co-location is feasible (default 24: enough for the
	// bootstrap plus a focused feasibility hunt, cheap enough to try
	// several nodes).
	ScreenIterations int
	// Faults optionally injects observation faults into every
	// screening run — the warehouse's measurement plane is no more
	// reliable than its nodes. When the plan is enabled, screening
	// runs use the hardened controller (retry, outlier re-measurement,
	// guard pass); when it is empty the screening path is byte-for-
	// byte the unhardened one. Per-screen fault streams are derived
	// deterministically from Plan.Seed, the node id, and the node's
	// occupancy. NodeFailAt applies to each screening run's private
	// clock; whole-node loss at the cluster level is expressed with
	// FailNode instead.
	Faults faults.Plan
}

func (o Options) nodes() int {
	if o.Nodes > 0 {
		return o.Nodes
	}
	return 4
}

func (o Options) screenIterations() int {
	if o.ScreenIterations > 0 {
		return o.ScreenIterations
	}
	return 24
}

// node tracks one machine's accepted jobs. Machines are rebuilt per
// placement trial — simulated machines are cheap, and a fresh build is
// the cleanest way to express "what if this job also ran here".
type node struct {
	id       int
	requests []Request
	last     core.Result
	lastOK   bool
	failed   bool
}

// Scheduler places jobs across a fixed pool of simulated nodes.
type Scheduler struct {
	opts  Options
	nodes []*node
}

// New builds a scheduler over opts.Nodes empty nodes.
func New(opts Options) *Scheduler {
	s := &Scheduler{opts: opts}
	for i := 0; i < opts.nodes(); i++ {
		s.nodes = append(s.nodes, &node{id: i})
	}
	return s
}

// build constructs the machine hosting the node's jobs plus an
// optional extra request.
func (s *Scheduler) build(n *node, extra *Request) (*server.Machine, error) {
	m := server.New(resource.Default(), server.DefaultSpec(), s.opts.Seed+int64(n.id)*1009)
	reqs := n.requests
	if extra != nil {
		reqs = append(append([]Request(nil), reqs...), *extra)
	}
	for _, r := range reqs {
		var err error
		if r.IsLC() {
			_, err = m.AddLC(r.Workload, r.Load)
		} else {
			_, err = m.AddBG(r.Workload)
		}
		if err != nil {
			return nil, err
		}
	}
	return m, nil
}

// faultPlan derives the per-screen fault stream from the cluster-level
// plan. The derivation depends only on the node id and its occupancy —
// never on wall time or goroutine order — so concurrent screening
// stays deterministic.
func (s *Scheduler) faultPlan(n *node) faults.Plan {
	p := s.opts.Faults
	if !p.Enabled() {
		return p
	}
	p.Seed += int64(n.id)*7919 + int64(len(n.requests))*104729
	return p
}

// screen runs a budget-bounded CLITE invocation to decide feasibility.
func (s *Scheduler) screen(n *node, extra Request) (core.Result, bool, error) {
	m, err := s.build(n, &extra)
	if err != nil {
		return core.Result{}, false, err
	}
	ctrl := core.New(faults.Wrap(m, s.faultPlan(n)), core.Options{
		BO: bo.Options{
			Seed:          s.opts.Seed + int64(n.id)*31 + int64(len(n.requests)),
			MaxIterations: s.opts.screenIterations(),
		},
		Resilience: core.Resilience{Enabled: s.opts.Faults.Enabled()},
	})
	res, err := ctrl.Run()
	if err != nil {
		// A screening run that dies on its observation substrate proves
		// nothing about the co-location itself; treat the node as
		// infeasible for this request rather than failing the placement.
		if errors.Is(err, server.ErrObservationFailed) || errors.Is(err, server.ErrNodeFailed) {
			return core.Result{}, false, nil
		}
		return core.Result{}, false, err
	}
	// A BG-only node has no QoS gate; any partition is acceptable.
	allBG := !extra.IsLC()
	for _, r := range n.requests {
		if r.IsLC() {
			allBG = false
		}
	}
	ok := res.QoSMeetable || (allBG && len(res.Infeasible) == 0)
	return res, ok, nil
}

// Place finds a node for the request, preferring the least-loaded
// nodes, and returns the partition CLITE found there. The request is
// admitted onto the first node whose screening run meets every QoS
// target; if none qualifies the request is rejected with
// ErrUnplaceable (schedule it in the next rack).
func (s *Scheduler) Place(req Request) (Placement, error) {
	if req.Load < 0 || req.Load > 1.5 {
		return Placement{}, fmt.Errorf("cluster: load %v out of range", req.Load)
	}
	order := s.live()
	sort.SliceStable(order, func(i, j int) bool {
		return len(order[i].requests) < len(order[j].requests)
	})
	for _, n := range order {
		res, ok, err := s.screen(n, req)
		if err != nil {
			return Placement{}, err
		}
		if !ok {
			continue
		}
		n.requests = append(n.requests, req)
		n.last = res
		n.lastOK = true
		return Placement{Node: n.id, Result: res}, nil
	}
	return Placement{}, ErrUnplaceable
}

// live returns the non-failed nodes in id order.
func (s *Scheduler) live() []*node {
	out := make([]*node, 0, len(s.nodes))
	for _, n := range s.nodes {
		if !n.failed {
			out = append(out, n)
		}
	}
	return out
}

// Outcome reports the fate of one job during the reschedule that
// follows a node failure.
type Outcome struct {
	// Request is the drained job.
	Request Request
	// From is the failed node it was drained from.
	From int
	// Node is the surviving node that absorbed it (-1 when none could
	// within QoS).
	Node int
	// Err is nil on success and ErrUnplaceable (or a screening error)
	// when the job could not be rehomed.
	Err error
}

// FailNode marks a node as permanently lost — the warehouse-scale
// fault the single-node controller cannot absorb — drains its
// placements, and reschedules them across the survivors. LC jobs are
// rehomed first so they get first pick of the remaining headroom;
// relative order is preserved within each class, keeping the
// reschedule deterministic for a given seed. Each drained job gets an
// Outcome whether or not it found a new home; jobs that fit nowhere
// are reported with ErrUnplaceable rather than aborting the rest of
// the reschedule (the paper's Sec. 4 ejection path: schedule them in
// the next rack).
func (s *Scheduler) FailNode(id int) ([]Outcome, error) {
	if id < 0 || id >= len(s.nodes) {
		return nil, fmt.Errorf("cluster: no node %d", id)
	}
	n := s.nodes[id]
	if n.failed {
		return nil, fmt.Errorf("cluster: node %d already failed", id)
	}
	n.failed = true
	drained := n.requests
	n.requests = nil
	n.last = core.Result{}
	n.lastOK = false

	order := make([]Request, 0, len(drained))
	for _, r := range drained {
		if r.IsLC() {
			order = append(order, r)
		}
	}
	for _, r := range drained {
		if !r.IsLC() {
			order = append(order, r)
		}
	}
	outcomes := make([]Outcome, 0, len(order))
	for _, r := range order {
		p, err := s.rehome(r)
		if err != nil {
			outcomes = append(outcomes, Outcome{Request: r, From: id, Node: -1, Err: err})
			continue
		}
		outcomes = append(outcomes, Outcome{Request: r, From: id, Node: p.Node})
	}
	return outcomes, nil
}

// rehome finds a new node for one drained request. Unlike the
// admission path, which screens nodes one at a time and stops at the
// first fit, a reschedule is latency-sensitive — every drained LC job
// is unserved until it lands — so all survivors are screened
// concurrently. Each screening run builds its own machine and the
// selection rule (least-loaded feasible node, ties to the lowest id)
// is a pure function of the screen results, so the outcome does not
// depend on goroutine interleaving.
func (s *Scheduler) rehome(req Request) (Placement, error) {
	live := s.live()
	if len(live) == 0 {
		return Placement{}, ErrUnplaceable
	}
	type screened struct {
		res core.Result
		ok  bool
		err error
	}
	results := make([]screened, len(live))
	var wg sync.WaitGroup
	for i, n := range live {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			res, ok, err := s.screen(n, req)
			results[i] = screened{res: res, ok: ok, err: err}
		}(i, n)
	}
	wg.Wait()
	pick := -1
	for i, r := range results {
		if r.err != nil {
			return Placement{}, r.err
		}
		if !r.ok {
			continue
		}
		if pick < 0 || len(live[i].requests) < len(live[pick].requests) {
			pick = i
		}
	}
	if pick < 0 {
		return Placement{}, ErrUnplaceable
	}
	n := live[pick]
	n.requests = append(n.requests, req)
	n.last = results[pick].res
	n.lastOK = true
	return Placement{Node: n.id, Result: results[pick].res}, nil
}

// NodeInfo is a snapshot of one node's state.
type NodeInfo struct {
	ID     int
	Jobs   []string
	QoSMet bool
	// Failed marks a node lost to FailNode; it hosts nothing and takes
	// no further placements.
	Failed bool
	// BGPerf is the mean isolation-normalized BG throughput under the
	// node's current partition (0 when the node hosts no BG job).
	BGPerf float64
}

// Snapshot reports every node's jobs and health.
func (s *Scheduler) Snapshot() []NodeInfo {
	out := make([]NodeInfo, 0, len(s.nodes))
	for _, n := range s.nodes {
		info := NodeInfo{ID: n.id, QoSMet: n.lastOK, Failed: n.failed}
		for _, r := range n.requests {
			label := r.Workload
			if r.IsLC() {
				label = fmt.Sprintf("%s@%.0f%%", r.Workload, r.Load*100)
			}
			info.Jobs = append(info.Jobs, label)
		}
		if n.lastOK && n.last.BestObs.NormPerf != nil {
			var sum float64
			cnt := 0
			for i, r := range n.requests {
				if !r.IsLC() && i < len(n.last.BestObs.NormPerf) {
					sum += n.last.BestObs.NormPerf[i]
					cnt++
				}
			}
			if cnt > 0 {
				info.BGPerf = sum / float64(cnt)
			}
		}
		out = append(out, info)
	}
	return out
}

// Jobs returns the total number of placed jobs.
func (s *Scheduler) Jobs() int {
	total := 0
	for _, n := range s.nodes {
		total += len(n.requests)
	}
	return total
}
