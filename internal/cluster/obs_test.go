package cluster

import (
	"bytes"
	"testing"

	"clite/internal/obs"
	"clite/internal/telemetry"
)

// TestObsScreenWorkerInvariance extends the §8 determinism contract
// to the SLO plane: a store tapped onto the scheduler's tracer sees
// merged events in commit order, so its /slo view and alert stream
// must not depend on how many screening workers ran.
func TestObsScreenWorkerInvariance(t *testing.T) {
	run := func(workers int) (string, []byte) {
		tr := telemetry.NewTracer()
		store := obs.NewStore(obs.Options{})
		tr.SetTap(store.Sink())
		s := New(Options{Nodes: 3, Seed: 11, ScreenIterations: 8, ScreenWorkers: workers, Trace: tr})
		for _, r := range stream() {
			if _, err := s.Place(r); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := store.WriteAlertsJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return store.FormatSLO(), buf.Bytes()
	}
	seqSLO, seqAlerts := run(1)
	for _, workers := range []int{4, 8} {
		slo, alerts := run(workers)
		if slo != seqSLO {
			t.Errorf("%d-worker /slo view diverged:\n%s\nvs\n%s", workers, slo, seqSLO)
		}
		if !bytes.Equal(alerts, seqAlerts) {
			t.Errorf("%d-worker alert stream diverged", workers)
		}
	}
	// The tapped store actually observed the run: screening windows
	// flow through the machine-wide subject.
	if seqSLO == "" {
		t.Fatal("empty /slo view")
	}
}
