package qos

import (
	"testing"

	"clite/internal/resource"
	"clite/internal/workload"
)

func TestCalibrateRejectsBGJobs(t *testing.T) {
	if _, err := Calibrate(workload.MustByName("canneal"), resource.Default()); err == nil {
		t.Error("expected error calibrating a background job")
	}
}

func TestCalibrateProducesSaneKnees(t *testing.T) {
	topo := resource.Default()
	for _, p := range workload.LC() {
		cal, err := Calibrate(p, topo)
		if err != nil {
			t.Fatal(err)
		}
		if cal.MaxQPS <= 0 || cal.QoSTarget <= 0 {
			t.Fatalf("%s: degenerate calibration %+v", p.Name, cal)
		}
		if len(cal.Curve) != sweepPoints {
			t.Fatalf("%s: curve has %d points", p.Name, len(cal.Curve))
		}
		// Knee must sit in the interior of the sweep: past half
		// saturation but before the final explosion.
		saturation := cal.Curve[len(cal.Curve)-1].QPS
		frac := cal.MaxQPS / saturation
		if frac < 0.5 || frac > 0.97 {
			t.Errorf("%s: knee at %.0f%% of saturation, want interior", p.Name, frac*100)
		}
		// The QoS target must leave meaningful headroom over idle
		// latency (the paper's knee targets are several × idle).
		idle := cal.Curve[0].P95
		if cal.QoSTarget < 2*idle {
			t.Errorf("%s: QoS target %v too close to idle %v", p.Name, cal.QoSTarget, idle)
		}
	}
}

func TestCurvesAreMonotone(t *testing.T) {
	topo := resource.Default()
	for _, p := range workload.LC() {
		cal, err := Calibrate(p, topo)
		if err != nil {
			t.Fatal(err)
		}
		prev := 0.0
		for i, pt := range cal.Curve {
			if pt.P95 < prev-1e-9 {
				t.Fatalf("%s: curve not monotone at point %d", p.Name, i)
			}
			prev = pt.P95
		}
	}
}

func TestCalibrationIsDeterministic(t *testing.T) {
	topo := resource.Default()
	p := workload.MustByName("memcached")
	a, _ := Calibrate(p, topo)
	b, _ := Calibrate(p, topo)
	if a.MaxQPS != b.MaxQPS || a.QoSTarget != b.QoSTarget {
		t.Error("calibration must be deterministic")
	}
}

func TestQoSMetAtModerateLoadViolatedAtOverload(t *testing.T) {
	topo := resource.Default()
	full := workload.FullMachine(topo)
	for _, p := range workload.LC() {
		cal, err := Calibrate(p, topo)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.P95(full, 0.5*cal.MaxQPS, 2.0); got > cal.QoSTarget {
			t.Errorf("%s: p95 %v at 50%% load should meet target %v", p.Name, got, cal.QoSTarget)
		}
		if got := p.P95(full, 1.3*cal.MaxQPS, 2.0); got <= cal.QoSTarget {
			t.Errorf("%s: p95 %v at 130%% load should violate target %v", p.Name, got, cal.QoSTarget)
		}
	}
}

func TestCalibrateAllCoversEveryLCWorkload(t *testing.T) {
	cals := CalibrateAll(resource.Default())
	if len(cals) != len(workload.LC()) {
		t.Fatalf("calibrated %d workloads, want %d", len(cals), len(workload.LC()))
	}
	for _, p := range workload.LC() {
		if _, ok := cals[p.Name]; !ok {
			t.Errorf("missing calibration for %s", p.Name)
		}
	}
}

func TestKneeIndexEdgeCases(t *testing.T) {
	if got := kneeIndex([]Point{{1, 1}, {2, 2}}); got != 1 {
		t.Errorf("short curve knee = %d, want last index", got)
	}
	flat := []Point{{1, 1}, {2, 1}, {3, 1}, {4, 1}}
	if got := kneeIndex(flat); got != 3 {
		t.Errorf("flat curve knee = %d, want last index", got)
	}
	// A curve that is steep from the start exercises the chord fallback.
	steep := []Point{{1, 1}, {2, 8}, {3, 64}, {4, 512}}
	got := kneeIndex(steep)
	if got < 0 || got >= len(steep) {
		t.Errorf("chord fallback returned %d", got)
	}
}

func TestMemcachedOutpacesImgDNN(t *testing.T) {
	// Sanity anchor from Fig. 6: memcached's max load is an order of
	// magnitude above img-dnn's, and its QoS target far tighter.
	topo := resource.Default()
	mc, _ := Calibrate(workload.MustByName("memcached"), topo)
	id, _ := Calibrate(workload.MustByName("img-dnn"), topo)
	if mc.MaxQPS < 5*id.MaxQPS {
		t.Errorf("memcached maxQPS %v should dwarf img-dnn's %v", mc.MaxQPS, id.MaxQPS)
	}
	if mc.QoSTarget > id.QoSTarget {
		t.Errorf("memcached target %v should be tighter than img-dnn's %v", mc.QoSTarget, id.QoSTarget)
	}
}
