// Package qos implements the paper's Fig. 6 methodology for deriving
// QoS targets: each latency-critical workload is run in isolation
// across a sweep of offered loads, producing a QPS-vs-p95 curve; the
// 95th-percentile QoS tail-latency target is the knee of that curve
// and the corresponding QPS is the workload's maximum load. All load
// fractions elsewhere in the system ("memcached at 40%") are fractions
// of this calibrated maximum.
package qos

import (
	"fmt"
	"math"

	"clite/internal/resource"
	"clite/internal/workload"
)

// Point is one sample of the isolation load sweep.
type Point struct {
	QPS float64
	P95 float64 // seconds
}

// Calibration is the result of profiling one LC workload in isolation.
type Calibration struct {
	Workload  string
	MaxQPS    float64 // QPS at the knee — the workload's "100% load"
	QoSTarget float64 // p95 seconds at the knee
	Curve     []Point // the full sweep, for Fig. 6 reproduction
}

// window is the observation window used for the analytic curve; it
// only matters for the saturated region of the sweep.
const window = 2.0

// sweepPoints is the resolution of the load sweep.
const sweepPoints = 48

// Calibrate profiles the workload on the full machine. It is
// deterministic (no measurement noise): this step happens once per
// workload, offline, exactly as the paper does before any co-location
// experiments, and is "not specific to the co-location method being
// evaluated" (Sec. 5.1).
func Calibrate(p *workload.Profile, t resource.Topology) (Calibration, error) {
	if p.Class != workload.LatencyCritical {
		return Calibration{}, fmt.Errorf("qos: %s is not latency-critical", p.Name)
	}
	full := workload.FullMachine(t)
	capacity := saturationQPS(p, full)
	cal := Calibration{Workload: p.Name}
	for i := 1; i <= sweepPoints; i++ {
		lambda := capacity * float64(i) / float64(sweepPoints)
		cal.Curve = append(cal.Curve, Point{QPS: lambda, P95: p.P95(full, lambda, window)})
	}
	knee := kneeIndex(cal.Curve)
	cal.MaxQPS = cal.Curve[knee].QPS
	cal.QoSTarget = cal.Curve[knee].P95
	return cal, nil
}

// saturationQPS finds the offered load at which the workload's queue
// saturates on the given allocation, by bisection on utilization.
func saturationQPS(p *workload.Profile, alloc workload.Alloc) float64 {
	lo, hi := 1.0, 1.0
	for p.Queue(alloc, hi).Utilization(hi) < 1 && hi < 1e9 {
		hi *= 2
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if p.Queue(alloc, mid).Utilization(mid) < 1 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// kneeLatencyMultiple operationalizes "the knee of the curve": the
// highest load whose p95 is still within this multiple of the
// low-load p95. For M/M/c-shaped curves this lands near 80%
// utilization — the flat-to-exploding transition the paper's Fig. 6
// knees sit on — and leaves the post-knee headroom that makes
// high-load co-locations borderline rather than trivially impossible.
const kneeLatencyMultiple = 4.0

func kneeIndex(curve []Point) int {
	n := len(curve)
	if n < 3 {
		return n - 1
	}
	idle := curve[0].P95
	knee := -1
	for i, pt := range curve {
		if pt.P95 <= kneeLatencyMultiple*idle {
			knee = i
		}
	}
	if knee > 0 {
		return knee
	}
	return chordKneeIndex(curve)
}

// chordKneeIndex is the Kneedle-style fallback: the point with the
// maximum vertical distance below the chord between the curve's
// endpoints, in normalized coordinates. It is used when the curve is
// already steep at its lowest sampled load.
func chordKneeIndex(curve []Point) int {
	n := len(curve)
	x0, xn := curve[0].QPS, curve[n-1].QPS
	y0, yn := curve[0].P95, curve[n-1].P95
	if xn == x0 || yn == y0 {
		return n - 1
	}
	best, bestGap := 0, math.Inf(-1)
	for i, pt := range curve {
		xNorm := (pt.QPS - x0) / (xn - x0)
		yNorm := (pt.P95 - y0) / (yn - y0)
		if gap := xNorm - yNorm; gap > bestGap {
			bestGap = gap
			best = i
		}
	}
	return best
}

// CalibrateAll calibrates every LC workload on the topology, returning
// results keyed by workload name.
func CalibrateAll(t resource.Topology) map[string]Calibration {
	out := make(map[string]Calibration)
	for _, p := range workload.LC() {
		cal, err := Calibrate(p, t)
		if err != nil {
			// LC() only returns latency-critical profiles.
			panic(err)
		}
		out[p.Name] = cal
	}
	return out
}
