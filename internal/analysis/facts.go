package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file is the second-generation engine's data layer: per-package
// exported facts and the lightweight call graph over them
// (DESIGN.md §16). A fact set is everything the flow-aware rules need
// to know about a package without re-type-checking it:
//
//   - which functions directly read the wall clock, draw from global
//     math/rand, or contain order-sensitive map iteration (the taint
//     sources dettaint propagates);
//   - the static intra-module call edges out of every function, with
//     call-site positions (the graph dettaint and emitorder walk);
//   - which functions emit onto a trace stream they did not create
//     locally, and which construct a private tracer (the boundary of
//     the private-tracer-merge-in-commit-order pattern).
//
// Facts are a pure function of a package's own source (callee names
// are resolved symbols, but symbols are stable across dependency
// edits), so they cache on a content hash and a -diff run can reason
// about the whole module while type-checking only the changed
// packages.

// Taint source kinds.
const (
	TaintClock    = "clock"
	TaintRand     = "rand"
	TaintMapOrder = "map-order"
)

// Source is one direct determinism-taint site inside a function.
type Source struct {
	Kind string `json:"kind"` // clock | rand | map-order
	What string `json:"what"` // e.g. "time.Now", "rand.Intn", "append inside map range"
	File string `json:"file"`
	Line int    `json:"line"`
}

// CallEdge is one static call out of a function to another function
// in the same module. Interface dispatch and function values cannot
// be resolved statically and carry no edge (DESIGN.md §16 documents
// the soundness bound).
type CallEdge struct {
	Callee  string `json:"callee"` // package-qualified name
	File    string `json:"file"`
	Line    int    `json:"line"`
	Allowed bool   `json:"allowed,omitempty"` // a dettaint allow covers the call site
}

// FuncFact is everything the flow-aware rules export about one
// function.
type FuncFact struct {
	Name string `json:"name"` // qualified: pkgpath.Func or pkgpath.Recv.Method
	Pkg  string `json:"pkg"`
	File string `json:"file"`
	Line int    `json:"line"`

	Sources []Source   `json:"sources,omitempty"`
	Calls   []CallEdge `json:"calls,omitempty"`

	// EmitsTrace: the body emits/merges onto a tracer it did not
	// construct locally (the stream may be shared).
	EmitsTrace bool   `json:"emits_trace,omitempty"`
	EmitWhat   string `json:"emit_what,omitempty"`
	EmitFile   string `json:"emit_file,omitempty"`
	EmitLine   int    `json:"emit_line,omitempty"`

	// TracerBoundary: the body constructs a fresh telemetry.NewTracer,
	// the signature of the private-tracer pattern; emit taint from its
	// callees is assumed contained and not propagated through it.
	TracerBoundary bool `json:"tracer_boundary,omitempty"`
}

// PackageFact is one package's exported fact set.
type PackageFact struct {
	Path  string     `json:"path"`
	Hash  string     `json:"hash"` // content hash of the non-test sources
	Funcs []FuncFact `json:"funcs"`
}

// modRoot returns the first element of an import path — the module
// root for intra-module paths.
func modRoot(path string) string {
	if i := strings.Index(path, "/"); i >= 0 {
		return path[:i]
	}
	return path
}

// statsPackage reports whether path is the sanctioned entropy package:
// taint never propagates out of internal/stats, because stats.RNG is
// the seeded stream every deterministic component is told to use.
func statsPackage(path string) bool {
	return strings.HasSuffix(path, "/internal/stats")
}

// telemetryPackage reports whether path is the telemetry package
// itself (its own internals manage the stream locks and are not
// emit-taint carriers).
func telemetryPackage(path string) bool {
	return strings.HasSuffix(path, "/internal/telemetry")
}

// ExtractFacts computes the package's fact set. sup (may be nil)
// supplies the suppression directives: sources and emit sites covered
// by a matching allow are dropped at extraction so a reasoned
// suppression kills taint at its origin instead of leaking findings
// into every transitive caller; call edges covered by a dettaint
// allow are kept but flagged, so the loaded-package rule path still
// drives the normal directive accounting while cached-fact consumers
// skip them.
func ExtractFacts(pkg *Package, sup *suppressions) *PackageFact {
	p := &Pass{Pkg: pkg}
	pf := &PackageFact{Path: pkg.Path}
	// Facts are a pure function of the package's own sources, so the
	// content hash alone keys the cache — no invalidation protocol.
	if hash, err := HashPackageDir(pkg.Dir); err == nil {
		pf.Hash = hash
	}
	covered := func(rules []string, pos ast.Node) bool {
		if sup == nil {
			return false
		}
		position := p.position(pos.Pos())
		for _, r := range rules {
			if sup.covered(Finding{Pos: position, Rule: r}) {
				return true
			}
		}
		return false
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ff := FuncFact{
				Name: p.declQualifiedName(fd),
				Pkg:  pkg.Path,
				File: p.position(fd.Pos()).Filename,
				Line: p.position(fd.Pos()).Line,
			}
			p.extractBody(fd.Body, &ff, covered)
			// Order-sensitive map iteration is a taint source of its
			// own kind: reuse the maporder detector over the body.
			for _, f := range p.mapRangesIn(fd.Body) {
				if sup != nil && (sup.covered(Finding{Pos: f.Pos, Rule: "maporder"}) ||
					sup.covered(Finding{Pos: f.Pos, Rule: "dettaint"})) {
					continue
				}
				ff.Sources = append(ff.Sources, Source{
					Kind: TaintMapOrder, What: "order-sensitive map iteration",
					File: f.Pos.Filename, Line: f.Pos.Line,
				})
				break // one source per function is enough to taint it
			}
			pf.Funcs = append(pf.Funcs, ff)
		}
	}
	sort.Slice(pf.Funcs, func(i, j int) bool { return pf.Funcs[i].Name < pf.Funcs[j].Name })
	return pf
}

// extractBody walks one function body for direct taint sources, call
// edges, and trace-emission facts.
func (p *Pass) extractBody(body *ast.BlockStmt, ff *FuncFact, covered func([]string, ast.Node) bool) {
	// Locals assigned from telemetry.NewTracer() are private streams;
	// emitting on them is the sanctioned pattern, not an emit fact.
	private := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) {
					break
				}
				if call, ok := rhs.(*ast.CallExpr); ok && p.isNewTracerCall(call) {
					if id, ok := as.Lhs[i].(*ast.Ident); ok {
						if obj := p.objectOf(id); obj != nil {
							private[obj] = true
						}
					}
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if p.isNewTracerCall(call) {
			ff.TracerBoundary = true
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			// Direct clock / global-rand sources.
			if id, ok := sel.X.(*ast.Ident); ok {
				if pn := p.pkgNameOf(id); pn != nil {
					switch path := pn.Imported().Path(); {
					case path == "time" && clockFuncs[sel.Sel.Name]:
						if !covered([]string{"detrand", "dettaint"}, sel) {
							pos := p.position(sel.Pos())
							ff.Sources = append(ff.Sources, Source{
								Kind: TaintClock, What: "time." + sel.Sel.Name,
								File: pos.Filename, Line: pos.Line,
							})
						}
						return true
					case path == "math/rand" || path == "math/rand/v2":
						if !covered([]string{"detrand", "dettaint"}, sel) {
							pos := p.position(sel.Pos())
							ff.Sources = append(ff.Sources, Source{
								Kind: TaintRand, What: "rand." + sel.Sel.Name,
								File: pos.Filename, Line: pos.Line,
							})
						}
						return true
					}
				}
			}
			// Trace emissions on a stream the function did not create.
			if handle, ok := telemetryHandle(p.typeOf(sel.X)); ok && handle == "Tracer" &&
				tracerEmitMethods[sel.Sel.Name] {
				if !p.isPrivateTracerExpr(sel.X, private) && !ff.EmitsTrace &&
					!covered([]string{"emitorder"}, sel) {
					pos := p.position(sel.Pos())
					ff.EmitsTrace = true
					ff.EmitWhat = "Tracer." + sel.Sel.Name
					ff.EmitFile = pos.Filename
					ff.EmitLine = pos.Line
				}
				return true
			}
		}
		// Static intra-module call edge.
		callee := p.resolvedCallee(call)
		if callee == nil {
			return true
		}
		cPkg := callee.Pkg()
		if cPkg == nil || modRoot(cPkg.Path()) != modRoot(p.Pkg.Path) {
			return true
		}
		pos := p.position(call.Pos())
		ff.Calls = append(ff.Calls, CallEdge{
			Callee: qualifiedFuncName(callee),
			File:   pos.Filename, Line: pos.Line,
			Allowed: covered([]string{"dettaint"}, call),
		})
		return true
	})
}

// tracerEmitMethods are the Tracer methods that append to the event
// stream. Merge and MergeDrain count: they are emission points on the
// destination stream.
var tracerEmitMethods = map[string]bool{
	"Emit": true, "Begin": true, "End": true, "Merge": true, "MergeDrain": true,
}

// isNewTracerCall reports whether call is telemetry.NewTracer(...).
func (p *Pass) isNewTracerCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "NewTracer" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn := p.pkgNameOf(id)
	return pn != nil && telemetryPackage(pn.Imported().Path())
}

// isPrivateTracerExpr reports whether the tracer expression's root is
// a local known to hold a freshly constructed tracer.
func (p *Pass) isPrivateTracerExpr(e ast.Expr, private map[types.Object]bool) bool {
	if id, ok := rootIdent(e); ok {
		if obj := p.objectOf(id); obj != nil {
			return private[obj]
		}
	}
	return false
}

// rootIdent peels selectors, indexes, parens, stars and type asserts
// down to the base identifier of an expression chain.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v, true
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.TypeAssertExpr:
			e = v.X
		default:
			return nil, false
		}
	}
}

// objectOf resolves an identifier to its object via Uses or Defs.
func (p *Pass) objectOf(id *ast.Ident) types.Object {
	if obj, ok := p.Pkg.Info.Uses[id]; ok {
		return obj
	}
	if obj, ok := p.Pkg.Info.Defs[id]; ok {
		return obj
	}
	return nil
}

// resolvedCallee returns the statically resolved *types.Func a call
// targets, or nil for interface dispatch, function values, builtins
// and conversions.
func (p *Pass) resolvedCallee(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = p.Pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Pkg.Info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if recv := sig.Recv(); recv != nil {
		if types.IsInterface(recv.Type()) {
			return nil // dynamic dispatch: no static edge
		}
	}
	return fn
}

// qualifiedFuncName renders a *types.Func as pkgpath.Name or
// pkgpath.Recv.Name.
func qualifiedFuncName(f *types.Func) string {
	name := f.Name()
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if pt, ok := t.(*types.Pointer); ok {
			t = pt.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if f.Pkg() == nil {
		return name
	}
	return f.Pkg().Path() + "." + name
}

// declQualifiedName renders a declaration's qualified name matching
// qualifiedFuncName's spelling.
func (p *Pass) declQualifiedName(fd *ast.FuncDecl) string {
	if obj, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
		return qualifiedFuncName(obj)
	}
	return p.Pkg.Path + "." + fd.Name.Name
}

// --- the call graph ---

// FactGraph indexes fact sets by function for transitive queries.
type FactGraph struct {
	funcs map[string]*FuncFact
	pkgs  map[string]*PackageFact

	taintMemo map[string]*TaintTrace
	emitMemo  map[string]*EmitTrace
}

// NewGraph builds a graph over the given fact sets. Later duplicates
// of a package path are ignored (loaded facts win over cached ones
// when the caller appends cache entries after fresh extractions).
func NewGraph(facts []*PackageFact) *FactGraph {
	g := &FactGraph{
		funcs:     map[string]*FuncFact{},
		pkgs:      map[string]*PackageFact{},
		taintMemo: map[string]*TaintTrace{},
		emitMemo:  map[string]*EmitTrace{},
	}
	for _, pf := range facts {
		if pf == nil || g.pkgs[pf.Path] != nil {
			continue
		}
		g.pkgs[pf.Path] = pf
		for i := range pf.Funcs {
			ff := &pf.Funcs[i]
			if g.funcs[ff.Name] == nil {
				g.funcs[ff.Name] = ff
			}
		}
	}
	return g
}

// Package returns the fact set for an import path, or nil.
func (g *FactGraph) Package(path string) *PackageFact { return g.pkgs[path] }

// Func returns the fact for a qualified function name, or nil.
func (g *FactGraph) Func(name string) *FuncFact { return g.funcs[name] }

// Packages returns every package path in the graph, sorted.
func (g *FactGraph) Packages() []string {
	out := make([]string, 0, len(g.pkgs))
	for p := range g.pkgs {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// TaintTrace describes how a function transitively reaches a
// determinism-taint source.
type TaintTrace struct {
	Chain []string // qualified names, queried function first
	Src   Source
}

// Taint reports whether the named function transitively reaches a
// clock/rand/map-order source, returning the (shortest-discovered)
// chain, or nil when clean. internal/stats is exempt: it is the
// sanctioned seeded entropy source.
func (g *FactGraph) Taint(name string) *TaintTrace {
	return g.taint(name, map[string]bool{})
}

func (g *FactGraph) taint(name string, onPath map[string]bool) *TaintTrace {
	if tr, ok := g.taintMemo[name]; ok {
		return tr
	}
	ff := g.funcs[name]
	if ff == nil || statsPackage(ff.Pkg) || onPath[name] {
		return nil
	}
	if len(ff.Sources) > 0 {
		tr := &TaintTrace{Chain: []string{name}, Src: ff.Sources[0]}
		g.taintMemo[name] = tr
		return tr
	}
	onPath[name] = true
	defer delete(onPath, name)
	for _, e := range ff.Calls {
		if sub := g.taint(e.Callee, onPath); sub != nil {
			tr := &TaintTrace{Chain: append([]string{name}, sub.Chain...), Src: sub.Src}
			g.taintMemo[name] = tr
			return tr
		}
	}
	g.taintMemo[name] = nil
	return nil
}

// EmitTrace describes how a function transitively emits onto a trace
// stream it does not own.
type EmitTrace struct {
	Chain []string
	What  string
	File  string
	Line  int
}

// Emits reports whether the named function transitively emits trace
// events outside the private-tracer pattern. Propagation stops at
// tracer boundaries: a function that constructs a fresh tracer is
// assumed to implement the private-stream half of the contract (the
// merge-in-commit-order half stays a review/suppression concern).
func (g *FactGraph) Emits(name string) *EmitTrace {
	return g.emits(name, map[string]bool{})
}

func (g *FactGraph) emits(name string, onPath map[string]bool) *EmitTrace {
	if tr, ok := g.emitMemo[name]; ok {
		return tr
	}
	ff := g.funcs[name]
	if ff == nil || telemetryPackage(ff.Pkg) || onPath[name] {
		return nil
	}
	if ff.EmitsTrace {
		tr := &EmitTrace{Chain: []string{name}, What: ff.EmitWhat, File: ff.EmitFile, Line: ff.EmitLine}
		g.emitMemo[name] = tr
		return tr
	}
	if ff.TracerBoundary {
		g.emitMemo[name] = nil
		return nil
	}
	onPath[name] = true
	defer delete(onPath, name)
	for _, e := range ff.Calls {
		if sub := g.emits(e.Callee, onPath); sub != nil {
			tr := &EmitTrace{Chain: append([]string{name}, sub.Chain...), What: sub.What, File: sub.File, Line: sub.Line}
			g.emitMemo[name] = tr
			return tr
		}
	}
	g.emitMemo[name] = nil
	return nil
}

// chainString renders a call chain for a finding message, eliding the
// middle of very deep chains.
func chainString(chain []string) string {
	short := make([]string, len(chain))
	for i, c := range chain {
		short[i] = shortFuncName(c)
	}
	if len(short) > 6 {
		short = append(short[:3], append([]string{"…"}, short[len(short)-2:]...)...)
	}
	return strings.Join(short, " → ")
}

// shortFuncName compresses pkgpath.Func to leafpkg.Func.
func shortFuncName(q string) string {
	i := strings.LastIndex(q, "/")
	if i < 0 {
		return q
	}
	return q[i+1:]
}
