package analysis

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// sharedLoader type-checks stdlib imports from source once per test
// process; every fixture load reuses it.
var (
	loaderOnce sync.Once
	loader     *Loader
)

func fixture(t *testing.T, name string) *Package {
	t.Helper()
	loaderOnce.Do(func() { loader = NewLoader() })
	dir := filepath.Join("testdata", "src", name)
	pkg, err := loader.Load(dir, "clite/internal/analysis/testdata/src/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s has no files", name)
	}
	return pkg
}

// expect is one expected raw finding: line number plus a fragment the
// message must contain.
type expect struct {
	line int
	frag string
}

// ruleByName fetches a rule from the shipped suite, so the tests
// exercise exactly what cmd/lint runs.
func ruleByName(t *testing.T, name string) *Rule {
	t.Helper()
	for _, r := range Rules() {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("no rule %q in Rules()", name)
	return nil
}

// TestRuleFixtures asserts the exact findings each rule raises on its
// fixture package, before suppression: every listed line must be
// found, and nothing else may be.
func TestRuleFixtures(t *testing.T) {
	cases := []struct {
		rule    string
		fixture string
		want    []expect
	}{
		{"detrand", "detrand", []expect{
			{13, "wall-clock read time.Now"},
			{14, "wall-clock read time.Now"}, // suppressed downstream, still a raw finding
			{20, "wall-clock read time.Since"},
			{25, "global math/rand function rand.Intn"},
			{26, "ad-hoc generator rand.New"},
			{26, "ad-hoc generator rand.NewSource"},
		}},
		{"maporder", "maporder", []expect{
			{16, "append to keys inside map iteration"},
			{35, "fmt.Println inside map iteration"},
			{43, "telemetry Tracer.Emit inside map iteration"},
			{47, "telemetry Tracer.Emit inside map iteration"}, // suppressed downstream
		}},
		{"errwrap", "errwrap", []expect{
			{15, "sentinel ErrWindowFailed compared with =="},
			{16, "sentinel ErrWindowFailed compared with !="}, // suppressed downstream
			{23, "sentinel ErrWindowFailed as a switch case"},
			{31, "error err folded into fmt.Errorf without %w"},
		}},
		{"telnil", "telnil", []expect{
			{20, "c.score() evaluates even when Histogram c.hist is nil"},
			{22, "c.score() evaluates even when Tracer c.trace is nil"}, // suppressed downstream
		}},
		{"floateq", "floateq", []expect{
			{10, "exact float comparison prev == next"},
			{12, "exact float comparison prev != next"}, // suppressed downstream
		}},
	}
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			pkg := fixture(t, tc.fixture)
			got := ruleByName(t, tc.rule).Run(&Pass{Pkg: pkg})
			sortFindings(got)
			if len(got) != len(tc.want) {
				for _, f := range got {
					t.Logf("got: %s", f)
				}
				t.Fatalf("%s: got %d findings, want %d", tc.rule, len(got), len(tc.want))
			}
			for i, w := range tc.want {
				f := got[i]
				if f.Pos.Line != w.line || !strings.Contains(f.Message, w.frag) {
					t.Errorf("%s finding %d: got line %d %q, want line %d containing %q",
						tc.rule, i, f.Pos.Line, f.Message, w.line, w.frag)
				}
				if f.Rule != tc.rule {
					t.Errorf("finding %d tagged %q, want %q", i, f.Rule, tc.rule)
				}
			}
		})
	}
}

// TestSuppression runs the full suite through Run, which applies the
// allow directives: each fixture carries exactly one suppressed
// finding, and suppression must not eat the unsuppressed ones.
func TestSuppression(t *testing.T) {
	cases := []struct {
		fixture        string
		findings       int
		suppressed     int
		badDirectives  int
		unusedAllows   int
		suppressedRule string
	}{
		{"detrand", 5, 1, 0, 0, "detrand"},
		{"maporder", 3, 1, 0, 0, "maporder"},
		{"errwrap", 3, 1, 0, 0, "errwrap"},
		{"telnil", 1, 1, 0, 0, "telnil"},
		{"floateq", 1, 1, 0, 0, "floateq"},
		{"baddirective", 1, 0, 1, 1, ""},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			pkg := fixture(t, tc.fixture)
			rep := Run([]*Package{pkg}, Rules())
			if len(rep.Findings) != tc.findings {
				for _, f := range rep.Findings {
					t.Logf("finding: %s", f)
				}
				t.Errorf("findings: got %d, want %d", len(rep.Findings), tc.findings)
			}
			if len(rep.Suppressed) != tc.suppressed {
				t.Errorf("suppressed: got %d, want %d", len(rep.Suppressed), tc.suppressed)
			}
			if len(rep.BadDirectives) != tc.badDirectives {
				t.Errorf("bad directives: got %d, want %d", len(rep.BadDirectives), tc.badDirectives)
			}
			if len(rep.UnusedDirectives) != tc.unusedAllows {
				t.Errorf("unused allows: got %d, want %d", len(rep.UnusedDirectives), tc.unusedAllows)
			}
			if tc.suppressedRule != "" && len(rep.Suppressed) > 0 &&
				rep.Suppressed[0].Rule != tc.suppressedRule {
				t.Errorf("suppressed rule: got %q, want %q", rep.Suppressed[0].Rule, tc.suppressedRule)
			}
			if !rep.Failed() {
				t.Error("report with findings should fail")
			}
		})
	}
}

// TestScope pins the package lists the scoped rules guard, so a
// refactor cannot silently drop a package out of the determinism set.
func TestScope(t *testing.T) {
	det := ruleByName(t, "detrand")
	for _, p := range []string{"core", "bo", "gp", "cluster", "server", "telemetry", "profile", "linalg", "optimize", "replica", "faults", "fleet", "obs",
		"isolation", "latsim", "workload", "qos", "resource", "policies", "doe"} {
		if !det.InScope("clite/internal/" + p) {
			t.Errorf("detrand must cover clite/internal/%s", p)
		}
	}
	dt := ruleByName(t, "dettaint")
	if !dt.InScope("clite/internal/policies") {
		t.Error("dettaint must cover clite/internal/policies (placement decisions replay in tier-1)")
	}
	tn := ruleByName(t, "telnil")
	if !tn.InScope("clite/internal/obs") {
		t.Error("telnil must cover clite/internal/obs (the SLO plane rides the hot path)")
	}
	if !tn.InScope("clite/internal/fleet") {
		t.Error("telnil must cover clite/internal/fleet")
	}
	for _, p := range []string{"stats", "harness"} {
		if det.InScope("clite/internal/" + p) {
			t.Errorf("detrand must not cover clite/internal/%s (stats owns the RNG; the harness is not replay-critical)", p)
		}
	}
	if !det.InScope("clite/internal/analysis/testdata/src/anything") {
		t.Error("fixture trees must always be in scope")
	}
	fe := ruleByName(t, "floateq")
	if fe.InScope("clite/internal/server") {
		t.Error("floateq is scoped to the numeric kernels, not server")
	}
	if !fe.InScope("clite/internal/linalg") {
		t.Error("floateq must cover linalg")
	}
}

// TestDirectiveGrammar covers the parser corners: missing rule,
// missing reason, and the one-line-above placement.
func TestDirectiveGrammar(t *testing.T) {
	pkg := fixture(t, "baddirective")
	sup := collectDirectives(pkg)
	if len(sup.bad) != 1 {
		t.Fatalf("bad directives: got %d, want 1", len(sup.bad))
	}
	if !strings.Contains(sup.bad[0].Message, "no reason") {
		t.Errorf("bad directive message %q should name the missing reason", sup.bad[0].Message)
	}
	if len(sup.all) != 1 {
		t.Fatalf("parsed directives: got %d, want 1 (the stale one)", len(sup.all))
	}
	if sup.all[0].rule != "floateq" || sup.all[0].reason == "" {
		t.Errorf("stale directive parsed as rule=%q reason=%q", sup.all[0].rule, sup.all[0].reason)
	}
}
