package analysis

import (
	"go/ast"
	"go/types"
)

// MapOrder hunts the classic byte-identity killer: ranging over a map
// while doing something order-sensitive in the body. Three body
// shapes are order-sensitive:
//
//   - appending to a slice declared outside the loop (the slice's
//     element order then depends on Go's randomized map iteration) —
//     unless the slice is passed to a sort.* / slices.Sort* call
//     later in the same function, which is the sanctioned
//     collect-then-sort idiom;
//   - emitting telemetry events (the JSONL trace is a deterministic
//     byte stream; event order inside the loop cannot be repaired
//     afterwards);
//   - writing output (fmt print family, io-style Write methods) —
//     likewise unrepairable after the fact.
//
// Map ranges that fold into order-insensitive accumulators (sums,
// map-to-map merges, max scans) are fine and not flagged.
func MapOrder() *Rule {
	return &Rule{
		Name: "maporder",
		Doc:  "no order-sensitive work (append/emit/write) inside map iteration without a sort",
		Run:  runMapOrder,
	}
}

var sortFuncs = map[string]map[string]bool{
	"sort":   {"Slice": true, "SliceStable": true, "Sort": true, "Stable": true, "Strings": true, "Ints": true, "Float64s": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

var printFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runMapOrder(p *Pass) []Finding {
	var out []Finding
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			out = append(out, p.mapRangesIn(body)...)
			return true
		})
	}
	return out
}

// mapRangesIn checks every map-range directly inside fn (nested
// function literals are visited by the outer Inspect walk).
func (p *Pass) mapRangesIn(fn *ast.BlockStmt) []Finding {
	var out []Finding
	ast.Inspect(fn, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != nil {
			return false // handled by its own walk
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.typeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		out = append(out, p.checkMapRangeBody(fn, rng)...)
		return true
	})
	return out
}

func (p *Pass) checkMapRangeBody(fn *ast.BlockStmt, rng *ast.RangeStmt) []Finding {
	var out []Finding
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(call) || len(call.Args) == 0 {
					continue
				}
				target, ok := call.Args[0].(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.Pkg.Info.Uses[target]
				if obj == nil || !declaredOutside(obj, rng) {
					continue
				}
				if p.sortedLater(fn, rng, obj) {
					continue
				}
				out = append(out, p.finding("maporder", call.Pos(),
					"append to %s inside map iteration leaks the randomized order; collect then sort, or range sorted keys",
					target.Name))
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				name := sel.Sel.Name
				if handle, ok := telemetryHandle(p.typeOf(sel.X)); ok &&
					(name == "Emit" || name == "Begin" || name == "End") {
					out = append(out, p.finding("maporder", n.Pos(),
						"telemetry %s.%s inside map iteration makes the trace depend on map order; iterate sorted keys",
						handle, name))
					return true
				}
				if writeMethods[name] && p.isWriterReceiver(sel.X) {
					out = append(out, p.finding("maporder", n.Pos(),
						"%s inside map iteration writes output in randomized order; iterate sorted keys", name))
					return true
				}
				if id, ok := sel.X.(*ast.Ident); ok {
					if pn := p.pkgNameOf(id); pn != nil && pn.Imported().Path() == "fmt" && printFuncs[name] {
						out = append(out, p.finding("maporder", n.Pos(),
							"fmt.%s inside map iteration writes output in randomized order; iterate sorted keys", name))
					}
				}
			}
		}
		return true
	})
	return out
}

// isBuiltinAppend reports whether call invokes the predeclared append.
func isBuiltinAppend(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

// isWriterReceiver reports whether the receiver plausibly writes
// externally visible bytes: it has a concrete method set including
// Write([]byte) (int, error) or is an io.Writer-style interface.
func (p *Pass) isWriterReceiver(recv ast.Expr) bool {
	t := p.typeOf(recv)
	if t == nil {
		return false
	}
	// A method named Write/WriteString resolved on the receiver is
	// enough signal; the method-name check upstream did the rest.
	return true
}

// declaredOutside reports whether obj was declared outside the range
// statement's extent.
func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// sortedLater reports whether, after the range ends, the enclosing
// function passes obj to a sort call — the sanctioned
// collect-then-sort idiom.
func (p *Pass) sortedLater(fn *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn := p.pkgNameOf(id)
		if pn == nil {
			return true
		}
		names := sortFuncs[pn.Imported().Path()]
		if names == nil || !names[sel.Sel.Name] {
			return true
		}
		for _, arg := range call.Args {
			found := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if mid, ok := m.(*ast.Ident); ok && p.Pkg.Info.Uses[mid] == obj {
					found = true
					return false
				}
				return true
			})
			if found {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}
