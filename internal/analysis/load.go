package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package as the rules see it:
// non-test files only (the rules guard shipping code; tests freely
// use exact comparisons and wall clocks).
type Package struct {
	Dir   string
	Path  string // module-qualified import path
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages. One Loader shares a
// FileSet and a source importer across all packages it loads, so the
// (expensive) from-source type checking of stdlib and intra-repo
// imports happens once per process.
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a loader backed by the stdlib source importer —
// the only importer that needs neither compiled export data nor any
// dependency outside the standard library.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Load parses the non-test .go files in dir and type-checks them as
// the package with the given import path.
func (l *Loader) Load(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", path, err)
	}
	return &Package{Dir: dir, Path: path, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// PackageRef names a package on disk without loading it: the -diff
// driver expands patterns first and type-checks only what changed.
type PackageRef struct {
	Dir  string
	Path string // module-qualified import path
}

// LoadPatterns expands go-style package patterns (a directory, or a
// directory suffixed with /... for a recursive walk) relative to the
// working directory and loads every package they name. Like the go
// tool, the recursive form skips testdata, vendor, hidden, and
// underscore-prefixed directories; naming a testdata directory
// explicitly (or walking a pattern rooted inside one) does load it,
// which is how the driver's own tests lint the fixture trees.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	refs, err := ExpandPatterns(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, ref := range refs {
		pkg, err := l.Load(ref.Dir, ref.Path)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// ExpandPatterns resolves patterns to the package directories they
// name, with module-qualified import paths, without parsing anything.
func ExpandPatterns(patterns []string) ([]PackageRef, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		rec := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			rec = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		if !rec {
			dirs[filepath.Clean(pat)] = true
			continue
		}
		err := filepath.WalkDir(pat, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := d.Name()
			if p != pat && (base == "testdata" || base == "vendor" ||
				strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				dirs[filepath.Clean(p)] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	refs := make([]PackageRef, 0, len(sorted))
	for _, dir := range sorted {
		path, err := importPathFor(dir)
		if err != nil {
			return nil, err
		}
		refs = append(refs, PackageRef{Dir: dir, Path: path})
	}
	return refs, nil
}

// hasGoFiles reports whether dir directly contains a buildable
// non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") &&
			!strings.HasSuffix(n, "_test.go") && !strings.HasPrefix(n, ".") {
			return true
		}
	}
	return false
}

// importPathFor derives the module-qualified import path of dir by
// locating the enclosing go.mod.
func importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	root := abs
	for {
		data, err := os.ReadFile(filepath.Join(root, "go.mod"))
		if err == nil {
			mod := modulePath(string(data))
			if mod == "" {
				return "", fmt.Errorf("analysis: no module line in %s/go.mod", root)
			}
			rel, err := filepath.Rel(root, abs)
			if err != nil {
				return "", err
			}
			if rel == "." {
				return mod, nil
			}
			return mod + "/" + filepath.ToSlash(rel), nil
		}
		parent := filepath.Dir(root)
		if parent == root {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		root = parent
	}
}

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}
