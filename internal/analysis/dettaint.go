package analysis

import (
	"fmt"
	"go/token"
)

// DetTaint is the transitive completion of detrand: a function in a
// deterministic package that calls into ANOTHER package whose callee
// transitively reaches a wall-clock read, a global math/rand draw, or
// order-sensitive map iteration is a finding — the cross-package
// helper loophole the intra-package rules cannot see. The finding
// lands on the outgoing call edge (the point where the deterministic
// package takes the dependency), with the full laundering chain in
// the message.
//
// Division of labour with detrand: a source inside a deterministic
// package is detrand's finding at the source line; dettaint only
// reports edges that LEAVE the function's package, so each package
// sees its own entry point into the taint and nothing is double
// reported within one package. A //lint:allow detrand (or dettaint)
// on the source kills the taint at extraction, so a reasoned
// metrics-only clock never cascades findings into its callers;
// internal/stats never carries taint at all (stats.RNG is the
// sanctioned seeded stream).
func DetTaint() *Rule {
	return &Rule{
		Name:    "dettaint",
		Doc:     "no transitive wall-clock/global-rand/map-order dependence from deterministic packages",
		InScope: scopeTo(detPackages),
		Run:     runDetTaint,
	}
}

func runDetTaint(p *Pass) []Finding {
	if p.Graph == nil {
		return nil
	}
	pf := p.Graph.Package(p.Pkg.Path)
	if pf == nil {
		return nil
	}
	return taintFindingsFor(p.Graph, pf, false)
}

// taintFindingsFor computes the dettaint findings for one package's
// fact set. skipAllowed drops edges carrying a dettaint allow flag —
// the cached-fact path, where no directive machinery runs; the loaded
// path keeps them so the normal suppression accounting applies.
func taintFindingsFor(g *FactGraph, pf *PackageFact, skipAllowed bool) []Finding {
	var out []Finding
	for i := range pf.Funcs {
		ff := &pf.Funcs[i]
		for _, e := range ff.Calls {
			if skipAllowed && e.Allowed {
				continue
			}
			callee := g.Func(e.Callee)
			if callee == nil || callee.Pkg == ff.Pkg || statsPackage(callee.Pkg) {
				continue
			}
			tr := g.Taint(e.Callee)
			if tr == nil {
				continue
			}
			out = append(out, Finding{
				Pos:  token.Position{Filename: e.File, Line: e.Line},
				Rule: "dettaint",
				Message: fmt.Sprintf("call to %s transitively reaches %s at %s:%d (%s); deterministic package %s must use simulated time and stats.RNG",
					shortFuncName(e.Callee), tr.Src.What, tr.Src.File, tr.Src.Line,
					chainString(tr.Chain), leafName(ff.Pkg)),
			})
		}
	}
	return out
}

// TaintFindingsOutside computes dettaint findings from facts alone
// for every in-scope package in the graph NOT in the loaded set — the
// -diff path, where unchanged packages exist only as cached facts.
// Allow-flagged edges (suppressed when the facts were built) are
// skipped.
func TaintFindingsOutside(g *FactGraph, loaded map[string]bool) []Finding {
	inScope := scopeTo(detPackages)
	var out []Finding
	for _, path := range g.Packages() {
		if loaded[path] || !inScope(path) {
			continue
		}
		out = append(out, taintFindingsFor(g, g.Package(path), true)...)
	}
	sortFindings(out)
	return out
}
