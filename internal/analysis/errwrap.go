package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrWrap enforces the fault-taxonomy discipline from the resilience
// layer: sentinel errors (package-level `var ErrX = errors.New(...)`
// values like server.ErrObservationFailed, server.ErrNodeFailed,
// cluster.ErrUnplaceable) travel through retry/fallback layers
// wrapped in context, so
//
//   - comparing a sentinel with == or != (or a switch case) misses
//     every wrapped occurrence; errors.Is is mandatory, and
//   - fmt.Errorf that folds an error into a new message must use %w,
//     or the taxonomy match downstream silently breaks.
func ErrWrap() *Rule {
	return &Rule{
		Name: "errwrap",
		Doc:  "sentinel errors need errors.Is, and fmt.Errorf propagation needs %w",
		Run:  runErrWrap,
	}
}

func runErrWrap(p *Pass) []Finding {
	var out []Finding
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, pair := range [2][2]ast.Expr{{n.X, n.Y}, {n.Y, n.X}} {
					if name, ok := p.sentinelError(pair[0]); ok && !isNilIdent(pair[1]) {
						out = append(out, p.finding("errwrap", n.Pos(),
							"sentinel %s compared with %s; wrapped errors never match — use errors.Is(err, %s)",
							name, n.Op, name))
						break
					}
				}
			case *ast.SwitchStmt:
				if n.Tag == nil || !isErrorType(p.typeOf(n.Tag)) {
					return true
				}
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, v := range cc.List {
						if name, ok := p.sentinelError(v); ok {
							out = append(out, p.finding("errwrap", v.Pos(),
								"sentinel %s as a switch case; wrapped errors never match — use errors.Is", name))
						}
					}
				}
			case *ast.CallExpr:
				out = append(out, p.checkErrorf(n)...)
			}
			return true
		})
	}
	return out
}

// sentinelError reports whether e references a package-level error
// variable following the ErrX naming convention.
func (p *Pass) sentinelError(e ast.Expr) (string, bool) {
	var id *ast.Ident
	name := ""
	switch e := e.(type) {
	case *ast.Ident:
		id, name = e, e.Name
	case *ast.SelectorExpr:
		if x, ok := e.X.(*ast.Ident); ok && p.pkgNameOf(x) != nil {
			id, name = e.Sel, x.Name+"."+e.Sel.Name
		}
	}
	if id == nil || !strings.HasPrefix(id.Name, "Err") || len(id.Name) < 4 {
		return "", false
	}
	obj, ok := p.Pkg.Info.Uses[id].(*types.Var)
	if !ok || obj.Parent() == nil || obj.Parent().Parent() != types.Universe {
		return "", false
	}
	if !isErrorType(obj.Type()) {
		return "", false
	}
	return name, true
}

// checkErrorf flags fmt.Errorf calls that pass an error argument
// without a %w verb in a constant format string.
func (p *Pass) checkErrorf(call *ast.CallExpr) []Finding {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return nil
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	if pn := p.pkgNameOf(x); pn == nil || pn.Imported().Path() != "fmt" {
		return nil
	}
	if len(call.Args) < 2 {
		return nil
	}
	tv, ok := p.Pkg.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return nil // non-constant format: cannot see the verbs
	}
	format := constant.StringVal(tv.Value)
	if strings.Contains(format, "%w") {
		return nil
	}
	var out []Finding
	for _, arg := range call.Args[1:] {
		t := p.typeOf(arg)
		if t == nil || !isErrorType(t) {
			continue
		}
		if tv, ok := p.Pkg.Info.Types[arg]; ok && tv.IsNil() {
			continue
		}
		out = append(out, p.finding("errwrap", arg.Pos(),
			"error %s folded into fmt.Errorf without %%w; downstream errors.Is against the fault taxonomy breaks",
			types.ExprString(arg)))
	}
	return out
}
