// Package analysis is the repo's custom static-analysis suite: a
// zero-dependency (stdlib go/ast + go/parser + go/types only, no
// golang.org/x/tools) set of analyzers that machine-check the
// codebase's load-bearing invariants — deterministic replay of seeded
// runs, the fault-taxonomy error-wrapping discipline, and the
// allocation-free-when-disabled telemetry contract — on every
// `make tier1` instead of only when a runtime byte-identity test
// happens to drive the offending path.
//
// The suite is catalogued in DESIGN.md §11 (intra-package rules) and
// §16 (the fact/call-graph engine and flow-aware rules). The rules:
//
//   - detrand: no wall-clock or global math/rand in deterministic
//     packages; internal/stats.RNG is the one sanctioned entropy
//     source.
//   - dettaint: the transitive completion of detrand over the fact
//     call graph — a deterministic package may not reach a clock,
//     global-rand, or order-sensitive map-iteration site through a
//     helper in ANY other package.
//   - maporder: no map iteration whose body appends to an outer
//     slice, emits telemetry, or writes output without a sort —
//     the classic byte-identity killer.
//   - parcapture: closures handed to par.Go/par.ForEach write only
//     slot-indexed state, capture only settled variables, and draw
//     only from per-shard RNG streams.
//   - emitorder: no trace emission (direct or transitive) from a par
//     closure outside the private-tracer-merge-in-commit-order
//     pattern.
//   - errwrap: sentinel errors compared with errors.Is, never ==,
//     and fmt.Errorf propagating an error must use %w.
//   - telnil: telemetry handle calls whose arguments do work must be
//     nil-guarded so disabled telemetry stays free.
//   - floateq: no ==/!= between floats in the numeric packages
//     outside approved tolerance helpers.
//
// Findings are suppressed site-by-site with a mandatory-reason
// directive:
//
//	//lint:allow <rule> <reason>
//
// placed on the offending line or the line directly above it. The
// cmd/lint driver counts suppressions in its summary and fails the
// build on any unsuppressed finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at one source position.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the finding in the driver's file:line: [rule] message
// format.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Message)
}

// Pass is one rule's view of one type-checked package. Graph carries
// the module-wide fact call graph for the flow-aware rules; the
// intra-package rules ignore it (and it may be nil when a rule is
// driven standalone in tests).
type Pass struct {
	Pkg   *Package
	Graph *FactGraph
}

// Rule is one analyzer. Run inspects the package and returns raw
// findings; the runner applies scope filtering and suppression.
type Rule struct {
	Name string
	Doc  string
	// InScope reports whether the rule applies to the package with
	// the given import path. Fixture trees (any path containing a
	// "testdata" element) are always in scope so the driver's own
	// tests can exercise scoped rules. A nil InScope means the rule
	// applies everywhere.
	InScope func(path string) bool
	Run     func(*Pass) []Finding
}

// Rules returns the full suite in reporting order.
func Rules() []*Rule {
	return []*Rule{
		DetRand(),
		DetTaint(),
		MapOrder(),
		ParCapture(),
		EmitOrder(),
		ErrWrap(),
		TelNil(),
		FloatEq(),
	}
}

// detPackages are the packages whose seeded runs must replay
// byte-identically (DESIGN.md §11, §16). internal/stats is
// deliberately absent: stats.RNG is the sanctioned seeded entropy
// source. The simulated-substrate packages (isolation, latsim,
// workload, qos, resource, policies, doe) joined in PR 10: every
// byte they produce feeds the deterministic decision paths.
var detPackages = []string{
	"core", "bo", "gp", "cluster", "server",
	"telemetry", "profile", "linalg", "optimize",
	"replica", "faults", "fleet", "obs",
	"isolation", "latsim", "workload", "qos",
	"resource", "policies", "doe",
}

// numericPackages are the floating-point kernels where exact ==
// comparisons are almost always a bug.
var numericPackages = []string{"linalg", "gp", "bo", "optimize"}

// hotPathPackages run inside the per-window controller loop, where
// the telemetry layer's disabled-means-free contract is load-bearing.
// fleet and replica joined in PR 10: the epoch barrier and the
// command-log fast path both sit on instrumented hot loops.
var hotPathPackages = []string{"core", "bo", "server", "cluster", "faults", "obs", "fleet", "replica"}

// scopeTo returns an InScope predicate matching the listed leaf
// package names under internal/, plus every fixture tree.
func scopeTo(names []string) func(string) bool {
	return func(path string) bool {
		if isFixturePath(path) {
			return true
		}
		for _, n := range names {
			if path == "clite/internal/"+n || strings.HasSuffix(path, "/internal/"+n) {
				return true
			}
		}
		return false
	}
}

// isFixturePath reports whether the import path points into a
// testdata tree, which is always in scope for every rule.
func isFixturePath(path string) bool {
	for _, el := range strings.Split(path, "/") {
		if el == "testdata" {
			return true
		}
	}
	return false
}

// Report is the outcome of running the suite over a set of packages.
type Report struct {
	// Findings are the unsuppressed violations, sorted by position.
	Findings []Finding
	// Suppressed are violations matched by a valid allow directive.
	Suppressed []Finding
	// BadDirectives are malformed allow directives (missing rule or
	// reason); they fail the run like findings do.
	BadDirectives []Finding
	// UnusedDirectives are well-formed allows that matched nothing;
	// reported in the summary but not fatal, so a fix that removes a
	// violation does not break the build before the allow is pruned.
	UnusedDirectives []Finding
}

// Failed reports whether the run should exit non-zero.
func (r Report) Failed() bool {
	return len(r.Findings) > 0 || len(r.BadDirectives) > 0
}

// Summary renders the one-line closing count.
func (r Report) Summary() string {
	return fmt.Sprintf("lint: %d findings, %d suppressed, %d bad directives, %d unused allows",
		len(r.Findings), len(r.Suppressed), len(r.BadDirectives), len(r.UnusedDirectives))
}

// Run executes every rule over every package, applies suppression
// directives, and returns the sorted report. The fact graph is built
// from the loaded packages alone; see RunGraph for supplying cached
// facts of packages outside the load set.
func Run(pkgs []*Package, rules []*Rule) Report {
	rep, _ := RunGraph(pkgs, rules, nil)
	return rep
}

// RunGraph is Run with externally supplied fact sets (from the fact
// cache) joined into the call graph after the loaded packages' own
// freshly extracted facts, so the flow-aware rules reason about the
// whole module while only the loaded packages are type-checked. It
// returns the report plus the freshly extracted facts (hashless; the
// driver stamps hashes before caching) and the graph.
func RunGraph(pkgs []*Package, rules []*Rule, external []*PackageFact) (Report, *GraphResult) {
	var rep Report
	sups := make(map[*Package]*suppressions, len(pkgs))
	fresh := make([]*PackageFact, 0, len(pkgs))
	for _, pkg := range pkgs {
		sups[pkg] = collectDirectives(pkg)
		fresh = append(fresh, ExtractFacts(pkg, sups[pkg]))
	}
	graph := NewGraph(append(append([]*PackageFact{}, fresh...), external...))
	for _, pkg := range pkgs {
		sup := sups[pkg]
		rep.BadDirectives = append(rep.BadDirectives, sup.bad...)
		for _, rule := range rules {
			if rule.InScope != nil && !rule.InScope(pkg.Path) {
				continue
			}
			for _, f := range rule.Run(&Pass{Pkg: pkg, Graph: graph}) {
				if sup.allows(f) {
					rep.Suppressed = append(rep.Suppressed, f)
				} else {
					rep.Findings = append(rep.Findings, f)
				}
			}
		}
		rep.UnusedDirectives = append(rep.UnusedDirectives, sup.unused()...)
	}
	for _, fs := range [][]Finding{rep.Findings, rep.Suppressed, rep.BadDirectives, rep.UnusedDirectives} {
		sortFindings(fs)
	}
	var ledger []LedgerEntry
	for _, pkg := range pkgs {
		ledger = append(ledger, sups[pkg].ledger()...)
	}
	sort.Slice(ledger, func(i, j int) bool {
		a, b := ledger[i], ledger[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return rep, &GraphResult{Graph: graph, Fresh: fresh, Ledger: ledger}
}

// GraphResult carries the engine artifacts a driver needs beyond the
// report: the assembled graph, the freshly extracted facts (for the
// cache), and the suppression ledger.
type GraphResult struct {
	Graph  *FactGraph
	Fresh  []*PackageFact
	Ledger []LedgerEntry
}

// SortFindings orders findings by file, line, column, rule — the
// stable order every driver output mode relies on.
func SortFindings(fs []Finding) { sortFindings(fs) }

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// --- shared AST/type helpers used by several rules ---

// pkgNameOf resolves an identifier to the package it names, or nil.
func (p *Pass) pkgNameOf(id *ast.Ident) *types.PkgName {
	if obj, ok := p.Pkg.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn
		}
	}
	return nil
}

// typeOf returns the type of e, or nil.
func (p *Pass) typeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// position converts a token.Pos.
func (p *Pass) position(pos token.Pos) token.Position {
	return p.Pkg.Fset.Position(pos)
}

// finding builds a Finding at pos.
func (p *Pass) finding(rule string, pos token.Pos, format string, args ...any) Finding {
	return Finding{Pos: p.position(pos), Rule: rule, Message: fmt.Sprintf(format, args...)}
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// telemetryHandle reports whether t is a pointer to one of the
// telemetry handle types (Tracer, Counter, Gauge, Histogram) from the
// repo's telemetry package, and returns the type name.
func telemetryHandle(t types.Type) (string, bool) {
	pt, ok := t.(*types.Pointer)
	if !ok {
		return "", false
	}
	named, ok := pt.Elem().(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/telemetry") {
		return "", false
	}
	switch obj.Name() {
	case "Tracer", "Counter", "Gauge", "Histogram":
		return obj.Name(), true
	}
	return "", false
}

// isTelemetryPkgFunc reports whether the call's callee is a function
// from the telemetry package (the cheap by-value event constructors).
func (p *Pass) isTelemetryPkgFunc(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn := p.pkgNameOf(id)
	return pn != nil && strings.HasSuffix(pn.Imported().Path(), "internal/telemetry")
}

// isConversionOrBuiltin reports whether the call is a type conversion
// or a call to a predeclared builtin (len, cap, int64(...), ...).
func (p *Pass) isConversionOrBuiltin(call *ast.CallExpr) bool {
	if tv, ok := p.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj, ok := p.Pkg.Info.Uses[fun]; ok {
			if _, ok := obj.(*types.Builtin); ok {
				return true
			}
			if _, ok := obj.(*types.TypeName); ok {
				return true
			}
		}
	case *ast.SelectorExpr:
		if obj, ok := p.Pkg.Info.Uses[fun.Sel]; ok {
			if _, ok := obj.(*types.TypeName); ok {
				return true
			}
		}
	}
	return false
}
