package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ParCapture machine-checks the closure discipline every concurrency
// PR hand-audits (internal/par's package doc, DESIGN.md §8): workers
// fanned out by par.Go / par.ForEach may only write index-addressed
// state they own, and may only read captured state that is immutable
// for the pool's lifetime. Concretely, inside a function literal
// passed to par.Go or par.ForEach:
//
//   - a write to a captured variable is a finding unless some index
//     on the write path is derived from the worker/slot parameter
//     (out[i] = …, results[i].field = …, and locals computed from the
//     slot like `for j := s; …; j += k { res[j] = … }` are fine;
//     total += x, out[0] = …, and writes through captured pointers
//     are findings);
//   - a write to a captured map is always a finding — concurrent map
//     writes race whatever the key;
//   - a read of a captured variable that the enclosing function
//     REASSIGNS outside the closure is a finding: par closures
//     capture configuration, and configuration must be settled at a
//     single declaration before the pool starts, or the next refactor
//     that moves the assignment below the pool launch silently races;
//   - a draw from a captured *stats.RNG is a finding — shared streams
//     make the draw sequence depend on goroutine schedule; split
//     per-shard streams (RNG.Split) before the pool starts.
//
// The rule is syntactic over one closure: writes hidden behind method
// calls on captured receivers are out of reach (and are exactly what
// the byte-identity tier-1 tests exist for).
func ParCapture() *Rule {
	return &Rule{
		Name: "parcapture",
		Doc:  "par.Go/par.ForEach closures: slot-indexed writes only, immutable captures, per-shard RNGs",
		Run:  runParCapture,
	}
}

// parClosure is one function literal handed to par.Go or par.ForEach,
// with the function body enclosing the call (for the reassigned-
// capture scan).
type parClosure struct {
	call   *ast.CallExpr
	method string // "Go" or "ForEach"
	fn     *ast.FuncLit
	encl   *ast.BlockStmt // innermost enclosing function body
}

// parClosures finds every par.Go/par.ForEach call in the file whose
// final argument is a function literal.
func (p *Pass) parClosures(file *ast.File) []parClosure {
	var out []parClosure
	var enclosing []*ast.BlockStmt
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncDecl:
			if v.Body == nil {
				return true
			}
			enclosing = append(enclosing, v.Body)
			ast.Inspect(v.Body, walk)
			enclosing = enclosing[:len(enclosing)-1]
			return false
		case *ast.FuncLit:
			enclosing = append(enclosing, v.Body)
			ast.Inspect(v.Body, walk)
			enclosing = enclosing[:len(enclosing)-1]
			return false
		case *ast.CallExpr:
			sel, ok := v.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Go" && sel.Sel.Name != "ForEach") {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn := p.pkgNameOf(id)
			if pn == nil || !strings.HasSuffix(pn.Imported().Path(), "internal/par") {
				return true
			}
			if len(v.Args) == 0 || len(enclosing) == 0 {
				return true
			}
			lit, ok := v.Args[len(v.Args)-1].(*ast.FuncLit)
			if !ok {
				return true
			}
			out = append(out, parClosure{call: v, method: sel.Sel.Name, fn: lit, encl: enclosing[len(enclosing)-1]})
			return true
		}
		return true
	}
	ast.Inspect(file, walk)
	return out
}

func runParCapture(p *Pass) []Finding {
	var out []Finding
	for _, file := range p.Pkg.Files {
		for _, pc := range p.parClosures(file) {
			out = append(out, p.checkParClosure(pc)...)
		}
	}
	return out
}

func (p *Pass) checkParClosure(pc parClosure) []Finding {
	var out []Finding
	slot := p.slotDerived(pc.fn)
	capturedReads := map[types.Object]*ast.Ident{}

	ast.Inspect(pc.fn.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if v.Tok == token.DEFINE {
				break
			}
			for _, lhs := range v.Lhs {
				if f, bad := p.checkParWrite(pc, lhs, slot); bad {
					out = append(out, f)
				}
			}
		case *ast.IncDecStmt:
			if f, bad := p.checkParWrite(pc, v.X, slot); bad {
				out = append(out, f)
			}
		case *ast.CallExpr:
			// delete(m, k) on a captured map.
			if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "delete" && len(v.Args) == 2 {
				if _, ok := p.Pkg.Info.Uses[id].(*types.Builtin); ok {
					if f, bad := p.checkParWrite(pc, v.Args[0], slot); bad {
						out = append(out, f)
					}
				}
			}
			// Draws from a captured shared RNG. A slot-derived index
			// anywhere on the receiver path (rngs[i].Float64()) marks a
			// per-shard stream split before the pool, which is the
			// sanctioned pattern.
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok && p.isStatsRNG(p.typeOf(sel.X)) {
				if root, ok := rootIdent(sel.X); ok {
					obj := p.objectOf(root)
					if obj != nil && p.capturedVar(obj, pc.fn) && !slot[obj] &&
						!p.slotIndexedPath(sel.X, slot) {
						out = append(out, p.finding("parcapture", v.Pos(),
							"draw from shared RNG %s inside par.%s closure makes the stream depend on goroutine schedule; Split per-shard streams before the pool starts",
							types.ExprString(sel.X), pc.method))
					}
				}
			}
		case *ast.Ident:
			if obj := p.objectOf(v); obj != nil && p.capturedLocalVar(obj, pc) {
				if capturedReads[obj] == nil {
					capturedReads[obj] = v
				}
			}
		}
		return true
	})

	// Reads of captured locals the enclosing function reassigns.
	// Source order, not map order, so finding order is reproducible.
	reads := make([]*ast.Ident, 0, len(capturedReads))
	for _, id := range capturedReads {
		reads = append(reads, id)
	}
	sort.Slice(reads, func(i, j int) bool { return reads[i].Pos() < reads[j].Pos() })
	for _, id := range reads {
		obj := p.objectOf(id)
		if line, ok := p.reassignedOutside(obj, pc); ok {
			out = append(out, p.finding("parcapture", id.Pos(),
				"par.%s closure reads captured %s, which is reassigned outside the closure (line %d); settle it in a single declaration before the pool starts",
				pc.method, obj.Name(), line))
		}
	}
	return out
}

// slotDerived computes the closure-local variables derived from the
// worker/slot parameter: the parameters themselves, then (to a
// fixpoint) any local defined or assigned from an expression that
// mentions a slot-derived variable — `for j := s; …`, `c := cells[ci]`.
func (p *Pass) slotDerived(fn *ast.FuncLit) map[types.Object]bool {
	slot := map[types.Object]bool{}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			if obj := p.objectOf(name); obj != nil {
				slot[obj] = true
			}
		}
	}
	usesSlot := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := p.objectOf(id); obj != nil && slot[obj] {
					found = true
					return false
				}
			}
			return !found
		})
		return found
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range v.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := p.objectOf(id)
					if obj == nil || slot[obj] || !withinNode(obj.Pos(), fn) {
						continue
					}
					rhs := v.Rhs[0]
					if len(v.Rhs) == len(v.Lhs) {
						rhs = v.Rhs[i]
					}
					if usesSlot(rhs) {
						slot[obj] = true
						changed = true
					}
				}
			case *ast.RangeStmt:
				if v.X == nil || !usesSlot(v.X) {
					return true
				}
				for _, e := range []ast.Expr{v.Key, v.Value} {
					if id, ok := e.(*ast.Ident); ok {
						if obj := p.objectOf(id); obj != nil && !slot[obj] && withinNode(obj.Pos(), fn) {
							slot[obj] = true
							changed = true
						}
					}
				}
			}
			return true
		})
	}
	return slot
}

// checkParWrite classifies one write target inside a par closure.
func (p *Pass) checkParWrite(pc parClosure, lhs ast.Expr, slot map[types.Object]bool) (Finding, bool) {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return Finding{}, false
	}
	root, ok := rootIdent(lhs)
	if !ok {
		return Finding{}, false
	}
	obj := p.objectOf(root)
	if obj == nil || !p.capturedVar(obj, pc.fn) || slot[obj] {
		return Finding{}, false
	}
	// Walk the access path: a captured-map write is always a finding;
	// a slice/array index derived from the slot sanctions the write.
	slotIndexed := false
	e := lhs
	for {
		switch v := e.(type) {
		case *ast.IndexExpr:
			if t := p.typeOf(v.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					return p.finding("parcapture", lhs.Pos(),
						"write to captured map %s inside par.%s closure races whatever the key; collect into index-addressed slots and merge after the pool drains",
						root.Name, pc.method), true
				}
			}
			if p.exprUsesAny(v.Index, slot) {
				slotIndexed = true
			}
			e = v.X
			continue
		case *ast.SelectorExpr:
			e = v.X
			continue
		case *ast.ParenExpr:
			e = v.X
			continue
		case *ast.StarExpr:
			e = v.X
			continue
		}
		break
	}
	if slotIndexed {
		return Finding{}, false
	}
	return p.finding("parcapture", lhs.Pos(),
		"write to captured %s inside par.%s closure is not indexed by the worker/slot parameter; workers may only write slots they own (DESIGN.md §8)",
		types.ExprString(lhs), pc.method), true
}

// slotIndexedPath reports whether any index on the access path of e
// is derived from the worker/slot parameter.
func (p *Pass) slotIndexedPath(e ast.Expr, slot map[types.Object]bool) bool {
	for {
		switch v := e.(type) {
		case *ast.IndexExpr:
			if p.exprUsesAny(v.Index, slot) {
				return true
			}
			e = v.X
			continue
		case *ast.SelectorExpr:
			e = v.X
			continue
		case *ast.ParenExpr:
			e = v.X
			continue
		case *ast.StarExpr:
			e = v.X
			continue
		}
		return false
	}
}

// exprUsesAny reports whether e mentions any object in set.
func (p *Pass) exprUsesAny(e ast.Expr, set map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.objectOf(id); obj != nil && set[obj] {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// capturedVar reports whether obj is a variable declared outside the
// closure (captured), including package-level variables.
func (p *Pass) capturedVar(obj types.Object, fn *ast.FuncLit) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return !withinNode(obj.Pos(), fn)
}

// capturedLocalVar reports whether obj is a function-scoped variable
// of the enclosing function captured by the closure (package-level
// vars are excluded from the reassignment scan: their writers live
// anywhere and the scan would be meaningless).
func (p *Pass) capturedLocalVar(obj types.Object, pc parClosure) bool {
	if !p.capturedVar(obj, pc.fn) {
		return false
	}
	return withinPos(obj.Pos(), pc.encl.Pos(), pc.encl.End())
}

// reassignedOutside reports whether the enclosing function reassigns
// obj outside the closure: plain `=` assignment, ++/--, or a range
// clause re-using the variable. Declarations (`:=`, var) do not
// count — a single settled initialization is the sanctioned shape.
func (p *Pass) reassignedOutside(obj types.Object, pc parClosure) (int, bool) {
	line, found := 0, false
	ast.Inspect(pc.encl, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if n == ast.Node(pc.fn) {
			return false // the closure itself is exempt
		}
		hit := func(e ast.Expr) {
			if id, ok := e.(*ast.Ident); ok && p.objectOf(id) == obj {
				line, found = p.position(id.Pos()).Line, true
			}
		}
		switch v := n.(type) {
		case *ast.AssignStmt:
			if v.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range v.Lhs {
				hit(lhs)
			}
		case *ast.IncDecStmt:
			hit(v.X)
		case *ast.RangeStmt:
			if v.Tok == token.ASSIGN {
				hit(v.Key)
				hit(v.Value)
			}
		}
		return !found
	})
	return line, found
}

// isStatsRNG reports whether t is (a pointer to) internal/stats.RNG.
func (p *Pass) isStatsRNG(t types.Type) bool {
	if t == nil {
		return false
	}
	if pt, ok := t.(*types.Pointer); ok {
		t = pt.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "RNG" && obj.Pkg() != nil && statsPackage(obj.Pkg().Path())
}

// withinNode reports whether pos falls inside n's extent.
func withinNode(pos token.Pos, n ast.Node) bool {
	return withinPos(pos, n.Pos(), n.End())
}

func withinPos(pos, lo, hi token.Pos) bool {
	return pos >= lo && pos <= hi
}
