package analysis

import (
	"go/ast"
	"go/types"
)

// TelNil preserves the telemetry layer's disabled-means-free contract
// in the hot-path packages. Handles (*telemetry.Tracer, *Counter,
// *Gauge, *Histogram) are nil-safe, so instrumentation sites may call
// them unconditionally — but Go still evaluates the arguments first.
// An argument that itself does work (any non-builtin call outside the
// telemetry package's cheap by-value event constructors) runs even
// when the handle is nil, which is exactly the cost the contract
// forbids on a disabled hot path. Such calls must sit inside an
// explicit `if handle != nil` guard, the idiom the BO engine uses for
// its wall-clock acquisition histogram.
func TelNil() *Rule {
	return &Rule{
		Name:    "telnil",
		Doc:     "telemetry handle calls with working arguments must be nil-guarded on the hot path",
		InScope: scopeTo(hotPathPackages),
		Run:     runTelNil,
	}
}

func runTelNil(p *Pass) []Finding {
	var out []Finding
	for _, file := range p.Pkg.Files {
		var guards []guard // stack of enclosing nil-guarded expressions
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			if ifs, ok := n.(*ast.IfStmt); ok {
				// Walk Init/Cond/Else normally, but the then-branch
				// under any receivers the condition proves non-nil.
				if ifs.Init != nil {
					ast.Inspect(ifs.Init, walk)
				}
				ast.Inspect(ifs.Cond, walk)
				before := len(guards)
				guards = append(guards, nonNilGuards(ifs.Cond)...)
				ast.Inspect(ifs.Body, walk)
				guards = guards[:before]
				if ifs.Else != nil {
					ast.Inspect(ifs.Else, walk)
				}
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			handle, ok := telemetryHandle(p.typeOf(sel.X))
			if !ok {
				return true
			}
			recv := types.ExprString(sel.X)
			if guarded(guards, recv) {
				return true
			}
			for _, arg := range call.Args {
				if c := p.workingCall(arg); c != nil {
					out = append(out, p.finding("telnil", call.Pos(),
						"%s evaluates even when %s %s is nil; guard with `if %s != nil` to keep disabled telemetry free",
						types.ExprString(c), handle, recv, recv))
					break
				}
			}
			return true
		}
		ast.Inspect(file, walk)
	}
	return out
}

// guard records one expression proven non-nil by an enclosing if.
type guard struct{ expr string }

// nonNilGuards extracts `x != nil` conjuncts from a condition.
func nonNilGuards(cond ast.Expr) []guard {
	var out []guard
	var visit func(e ast.Expr)
	visit = func(e ast.Expr) {
		be, ok := e.(*ast.BinaryExpr)
		if !ok {
			return
		}
		switch {
		case be.Op.String() == "&&":
			visit(be.X)
			visit(be.Y)
		case be.Op.String() == "!=":
			if isNilIdent(be.Y) {
				out = append(out, guard{expr: types.ExprString(be.X)})
			} else if isNilIdent(be.X) {
				out = append(out, guard{expr: types.ExprString(be.Y)})
			}
		}
	}
	visit(cond)
	return out
}

func guarded(guards []guard, recv string) bool {
	for _, g := range guards {
		if g.expr == recv {
			return true
		}
	}
	return false
}

// workingCall returns a call inside arg that does work the contract
// cares about: any call that is not a builtin, not a conversion, and
// not one of the telemetry package's by-value event constructors.
func (p *Pass) workingCall(arg ast.Expr) ast.Expr {
	var found ast.Expr
	ast.Inspect(arg, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if p.isConversionOrBuiltin(call) || p.isTelemetryPkgFunc(call) {
			return true
		}
		found = call
		return false
	})
	return found
}
