package analysis

import (
	"go/ast"
	"strings"
)

// DetRand enforces the determinism contract's entropy rule: the
// packages whose seeded runs must replay byte-identically may not
// read the wall clock (time.Now / Since / Until) or draw from
// math/rand — global functions, rand.New, or the package import at
// all. internal/stats.RNG is the single sanctioned entropy source;
// every component splits its own stream off a root seed there.
//
// Wall-clock reads that feed metrics only (never the deterministic
// trace) are suppressed site-by-site, e.g. the acquisition-latency
// histogram in internal/bo.
func DetRand() *Rule {
	return &Rule{
		Name:    "detrand",
		Doc:     "no wall clock or math/rand in deterministic packages; use internal/stats.RNG",
		InScope: scopeTo(detPackages),
		Run:     runDetRand,
	}
}

// clockFuncs are the time package functions that read the wall clock.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runDetRand(p *Pass) []Finding {
	var out []Finding
	for _, file := range p.Pkg.Files {
		randUsed := map[string]bool{} // local name of a math/rand import that had selector uses
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn := p.pkgNameOf(id)
			if pn == nil {
				return true
			}
			switch path := pn.Imported().Path(); {
			case path == "time" && clockFuncs[sel.Sel.Name]:
				out = append(out, p.finding("detrand", sel.Pos(),
					"wall-clock read time.%s in deterministic package %s; use simulated time (or //lint:allow with a metrics-only rationale)",
					sel.Sel.Name, leafName(p.Pkg.Path)))
			case path == "math/rand" || path == "math/rand/v2":
				randUsed[id.Name] = true
				what := "global math/rand function rand." + sel.Sel.Name
				if sel.Sel.Name == "New" || sel.Sel.Name == "NewSource" || sel.Sel.Name == "NewPCG" {
					what = "ad-hoc generator rand." + sel.Sel.Name
				}
				out = append(out, p.finding("detrand", sel.Pos(),
					"%s in deterministic package %s; internal/stats.RNG is the sanctioned seeded stream",
					what, leafName(p.Pkg.Path)))
			}
			return true
		})
		// An unused (blank or side-effect) math/rand import is still a
		// smell worth one finding so it cannot hide.
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path != "math/rand" && path != "math/rand/v2" {
				continue
			}
			name := "rand"
			if imp.Name != nil {
				name = imp.Name.Name
			}
			if !randUsed[name] {
				out = append(out, p.finding("detrand", imp.Pos(),
					"math/rand imported in deterministic package %s; internal/stats.RNG is the sanctioned seeded stream",
					leafName(p.Pkg.Path)))
			}
		}
	}
	return out
}

// leafName returns the last element of an import path.
func leafName(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
