package analysis

import (
	"go/token"
	"strings"
)

// directivePrefix is the suppression marker. The full grammar is
//
//	//lint:allow <rule> <reason>
//
// where <rule> is one analyzer name and <reason> is mandatory free
// text explaining why the site is intentional. The directive covers
// findings on its own line (trailing comment) or on the line
// immediately below (standalone comment line).
const directivePrefix = "lint:allow"

// directive is one parsed allow comment.
type directive struct {
	pos    token.Position
	rule   string
	reason string
	used   bool
}

// suppressions indexes a package's directives by file and line.
type suppressions struct {
	byLine map[string]map[int]*directive
	all    []*directive
	bad    []Finding
}

// collectDirectives scans every comment in the package for allow
// directives, reporting malformed ones (no rule, or no reason) as
// BadDirectives findings.
func collectDirectives(pkg *Package) *suppressions {
	s := &suppressions{byLine: map[string]map[int]*directive{}}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					s.bad = append(s.bad, Finding{Pos: pos, Rule: "directive",
						Message: "allow directive names no rule (want //lint:allow <rule> <reason>)"})
					continue
				}
				if len(fields) < 2 {
					s.bad = append(s.bad, Finding{Pos: pos, Rule: "directive",
						Message: "allow directive for rule " + fields[0] +
							" has no reason; the reason is mandatory"})
					continue
				}
				d := &directive{pos: pos, rule: fields[0],
					reason: strings.Join(fields[1:], " ")}
				if s.byLine[pos.Filename] == nil {
					s.byLine[pos.Filename] = map[int]*directive{}
				}
				s.byLine[pos.Filename][pos.Line] = d
				s.all = append(s.all, d)
			}
		}
	}
	return s
}

// allows reports whether a directive covers the finding: same rule,
// same file, on the finding's line or the line above it.
func (s *suppressions) allows(f Finding) bool {
	lines := s.byLine[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		if d := lines[line]; d != nil && d.rule == f.Rule {
			d.used = true
			return true
		}
	}
	return false
}

// unused returns findings describing directives that matched nothing.
func (s *suppressions) unused() []Finding {
	var out []Finding
	for _, d := range s.all {
		if !d.used {
			out = append(out, Finding{Pos: d.pos, Rule: "directive",
				Message: "allow directive for rule " + d.rule + " suppressed nothing"})
		}
	}
	return out
}
