package analysis

import (
	"go/token"
	"strings"
)

// directivePrefix is the suppression marker. The full grammar is
//
//	//lint:allow <rule> <reason>
//
// where <rule> is one analyzer name and <reason> is mandatory free
// text explaining why the site is intentional. The directive covers
// findings on its own line (trailing comment) or on the line
// immediately below (standalone comment line).
const directivePrefix = "lint:allow"

// directive is one parsed allow comment.
type directive struct {
	pos    token.Position
	rule   string
	reason string
	used   bool
}

// suppressions indexes a package's directives by file and line.
type suppressions struct {
	byLine map[string]map[int]*directive
	all    []*directive
	bad    []Finding
}

// collectDirectives scans every comment in the package for allow
// directives, reporting malformed ones (no rule, or no reason) as
// BadDirectives findings.
func collectDirectives(pkg *Package) *suppressions {
	s := &suppressions{byLine: map[string]map[int]*directive{}}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rule, reason, badMsg := parseAllowDirective(text)
				if badMsg != "" {
					s.bad = append(s.bad, Finding{Pos: pos, Rule: "directive", Message: badMsg})
					continue
				}
				d := &directive{pos: pos, rule: rule, reason: reason}
				if s.byLine[pos.Filename] == nil {
					s.byLine[pos.Filename] = map[int]*directive{}
				}
				s.byLine[pos.Filename][pos.Line] = d
				s.all = append(s.all, d)
			}
		}
	}
	return s
}

// parseAllowDirective parses the directive body (the text after
// //lint:allow): first field is the rule, the rest the mandatory
// reason. badMsg is non-empty exactly when the directive is
// malformed.
func parseAllowDirective(body string) (rule, reason, badMsg string) {
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return "", "", "allow directive names no rule (want //lint:allow <rule> <reason>)"
	}
	if len(fields) < 2 {
		return "", "", "allow directive for rule " + fields[0] +
			" has no reason; the reason is mandatory"
	}
	return fields[0], strings.Join(fields[1:], " "), ""
}

// allows reports whether a directive covers the finding: same rule,
// same file, on the finding's line or the line above it.
func (s *suppressions) allows(f Finding) bool {
	lines := s.byLine[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		if d := lines[line]; d != nil && d.rule == f.Rule {
			d.used = true
			return true
		}
	}
	return false
}

// covered reports whether a directive covers the finding without
// marking it used — the fact extractor's probe, which must not eat
// the unused-directive accounting the reporting path owns.
func (s *suppressions) covered(f Finding) bool {
	lines := s.byLine[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		if d := lines[line]; d != nil && d.rule == f.Rule {
			return true
		}
	}
	return false
}

// Ledger renders every parsed directive as one rule/location/reason
// entry, sorted by position — the cmd/lint -suppressions view.
func (s *suppressions) ledger() []LedgerEntry {
	var out []LedgerEntry
	for _, d := range s.all {
		out = append(out, LedgerEntry{Pos: d.pos, Rule: d.rule, Reason: d.reason})
	}
	return out
}

// LedgerEntry is one suppression directive in the ledger.
type LedgerEntry struct {
	Pos    token.Position
	Rule   string
	Reason string
}

// unused returns findings describing directives that matched nothing.
func (s *suppressions) unused() []Finding {
	var out []Finding
	for _, d := range s.all {
		if !d.used {
			out = append(out, Finding{Pos: d.pos, Rule: "directive",
				Message: "allow directive for rule " + d.rule + " suppressed nothing"})
		}
	}
	return out
}
