package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// graphFixture loads the named fixture packages together and runs the
// full suite over them with the shared fact graph, returning the
// report and graph result.
func graphFixture(t *testing.T, names ...string) (Report, *GraphResult) {
	t.Helper()
	var pkgs []*Package
	for _, name := range names {
		pkgs = append(pkgs, fixture(t, name))
	}
	rep, gr := RunGraph(pkgs, Rules(), nil)
	return rep, gr
}

// byRule filters findings down to one rule.
func byRule(fs []Finding, rule string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Rule == rule {
			out = append(out, f)
		}
	}
	return out
}

func checkExpect(t *testing.T, rule string, got []Finding, want []expect) {
	t.Helper()
	if len(got) != len(want) {
		for _, f := range got {
			t.Logf("got: %s", f)
		}
		t.Fatalf("%s: got %d findings, want %d", rule, len(got), len(want))
	}
	for i, w := range want {
		f := got[i]
		if f.Pos.Line != w.line || !strings.Contains(f.Message, w.frag) {
			t.Errorf("%s finding %d: got line %d %q, want line %d containing %q",
				rule, i, f.Pos.Line, f.Message, w.line, w.frag)
		}
	}
}

// TestDetTaintFixture pins the cross-package laundering detection:
// clock one hop down, global rand two hops down, map order through a
// helper — and that clean helpers and the suppressed edge stay quiet.
func TestDetTaintFixture(t *testing.T) {
	rep, _ := graphFixture(t, "dettaint", "dettaint/helper")
	checkExpect(t, "dettaint", byRule(rep.Findings, "dettaint"), []expect{
		{11, "transitively reaches time.Now"},
		{16, "transitively reaches rand.Float64"},
		{21, "order-sensitive map iteration"},
	})
	sup := byRule(rep.Suppressed, "dettaint")
	if len(sup) != 1 || sup[0].Pos.Line != 31 {
		t.Fatalf("suppressed dettaint: got %v, want one at line 31", sup)
	}
	// The chain in the two-hop message must name the intermediate hop.
	for _, f := range byRule(rep.Findings, "dettaint") {
		if f.Pos.Line == 16 && !strings.Contains(f.Message, "Jitter") {
			t.Errorf("two-hop finding should show the chain through Jitter: %q", f.Message)
		}
	}
	if len(byRule(rep.UnusedDirectives, "dettaint")) != 0 {
		t.Error("the dettaint allow must count as used")
	}
}

// TestDetTaintGraph exercises the fact graph directly: taint
// propagation, memoization of the clean path, and the stats
// exemption.
func TestDetTaintGraph(t *testing.T) {
	_, gr := graphFixture(t, "dettaint", "dettaint/helper")
	g := gr.Graph
	const helper = "clite/internal/analysis/testdata/src/dettaint/helper"
	if tr := g.Taint(helper + ".Stamp"); tr == nil || tr.Src.Kind != TaintClock {
		t.Fatalf("Stamp taint = %+v, want clock", tr)
	}
	if tr := g.Taint(helper + ".Jitter"); tr == nil || tr.Src.Kind != TaintRand || len(tr.Chain) < 2 {
		t.Fatalf("Jitter taint = %+v, want rand through draw", tr)
	}
	if tr := g.Taint(helper + ".Pure"); tr != nil {
		t.Fatalf("Pure must be taint-free, got %+v", tr)
	}
	if tr := g.Taint("clite/internal/stats.NewRNG"); tr != nil {
		t.Fatalf("stats is the sanctioned entropy owner, got taint %+v", tr)
	}
}

// TestParCaptureFixture pins the closure-capture findings and the
// sanctioned shapes (slot-indexed writes, slot-derived loop index,
// split per-shard RNGs).
func TestParCaptureFixture(t *testing.T) {
	rep, _ := graphFixture(t, "parcapture")
	checkExpect(t, "parcapture", byRule(rep.Findings, "parcapture"), []expect{
		{15, "write to captured total"},
		{39, "write to captured map m"},
		{53, "reads captured scale, which is reassigned outside the closure (line 49)"},
		{62, "draw from shared RNG r"},
	})
	sup := byRule(rep.Suppressed, "parcapture")
	if len(sup) != 1 || sup[0].Pos.Line != 85 {
		t.Fatalf("suppressed parcapture: got %v, want one at line 85", sup)
	}
}

// TestEmitOrderFixture pins the shared-tracer findings — direct and
// laundered through a helper — and the two sanctioned patterns
// (closure-private tracer, per-slot tracer).
func TestEmitOrderFixture(t *testing.T) {
	rep, _ := graphFixture(t, "emitorder")
	checkExpect(t, "emitorder", byRule(rep.Findings, "emitorder"), []expect{
		{15, "Tracer.Emit on shared tracer tr"},
		{22, "transitively emits"},
	})
	sup := byRule(rep.Suppressed, "emitorder")
	if len(sup) != 1 || sup[0].Pos.Line != 56 {
		t.Fatalf("suppressed emitorder: got %v, want one at line 56", sup)
	}
}

// TestFactCacheRoundTrip pins the cache contract: facts encode,
// decode bit-identically, and the dettaint findings computed from
// cached facts alone match the loaded-path findings (minus the
// allow-flagged edge, which the cache path skips).
func TestFactCacheRoundTrip(t *testing.T) {
	rep, gr := graphFixture(t, "dettaint", "dettaint/helper")
	dir := t.TempDir()
	cache := &FactCache{Dir: dir}
	var cached []*PackageFact
	for _, pf := range gr.Fresh {
		if err := cache.Store(pf); err != nil {
			t.Fatal(err)
		}
		got := cache.Load(pf.Path, pf.Hash)
		if got == nil {
			t.Fatalf("cache miss for %s right after store", pf.Path)
		}
		if got.Hash != pf.Hash || len(got.Funcs) != len(pf.Funcs) {
			t.Fatalf("cache round-trip mangled %s", pf.Path)
		}
		cached = append(cached, got)
	}
	if pf := cache.Load("clite/internal/nosuch", "feed"); pf != nil {
		t.Fatal("stale hash must miss")
	}
	g := NewGraph(cached)
	outside := TaintFindingsOutside(g, map[string]bool{})
	want := byRule(rep.Findings, "dettaint")
	if len(outside) != len(want) {
		t.Fatalf("cached-path dettaint: got %d findings, want %d", len(outside), len(want))
	}
	for i := range want {
		if outside[i].Pos.Line != want[i].Pos.Line {
			t.Errorf("cached finding %d at line %d, want %d", i, outside[i].Pos.Line, want[i].Pos.Line)
		}
	}
}

// TestHashPackageDir pins that the hash tracks content, not mtimes.
func TestHashPackageDir(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "a.go")
	if err := os.WriteFile(file, []byte("package a\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	h1, err := HashPackageDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := HashPackageDir(dir)
	if err != nil || h1 != h2 {
		t.Fatalf("hash not stable: %s vs %s (%v)", h1, h2, err)
	}
	if err := os.WriteFile(file, []byte("package a // changed\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	h3, err := HashPackageDir(dir)
	if err != nil || h3 == h1 {
		t.Fatalf("hash must change with content (%v)", err)
	}
	// Test files do not contribute: the rules never see them.
	if err := os.WriteFile(filepath.Join(dir, "a_test.go"), []byte("package a\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	h4, err := HashPackageDir(dir)
	if err != nil || h4 != h3 {
		t.Fatalf("test files must not affect the hash (%v)", err)
	}
}

// TestFixFixture copies the fixable tree into a scratch module, runs
// the mechanical fixer, and asserts (a) the result is errwrap-clean
// modulo the deliberately suppressed site, (b) the errors import was
// inserted, and (c) a second fixer pass is a no-op — idempotence.
func TestFixFixture(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixmod\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(filepath.Join("testdata", "src", "fixable", "fixable.go"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fixable.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	load := func() *Package {
		pkg, err := NewLoader().Load(dir, "fixmod")
		if err != nil {
			t.Fatalf("loading scratch module: %v", err)
		}
		return pkg
	}

	pkg := load()
	edits := FixEdits([]*Package{pkg})
	if len(edits) == 0 {
		t.Fatal("fixer found nothing to fix in the fixable fixture")
	}
	changed, err := ApplyEdits(edits)
	if err != nil {
		t.Fatalf("applying fixes: %v", err)
	}
	if len(changed) != 1 {
		t.Fatalf("changed files = %v, want just fixable.go", changed)
	}

	fixed := load()
	rep := Run([]*Package{fixed}, Rules())
	if got := byRule(rep.Findings, "errwrap"); len(got) != 0 {
		for _, f := range got {
			t.Logf("residual: %s", f)
		}
		t.Fatalf("fixed tree still has %d errwrap findings", len(got))
	}
	if len(rep.Suppressed) != 1 {
		t.Fatalf("the suppressed site must survive the fixer untouched, got %d suppressed", len(rep.Suppressed))
	}
	out, err := os.ReadFile(filepath.Join(dir, "fixable.go"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(out)
	for _, frag := range []string{`"errors"`, "errors.Is(err, ErrStale)", "!errors.Is(err, ErrStale)", "step %d failed: %w", "job %v: %w"} {
		if !strings.Contains(text, frag) {
			t.Errorf("fixed source missing %q", frag)
		}
	}
	if again := FixEdits([]*Package{fixed}); len(again) != 0 {
		t.Fatalf("fixer is not idempotent: second pass wants %d edits", len(again))
	}
}
