package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/format"
	"go/token"
	"os"
	"sort"
	"strconv"
	"strings"
)

// The -fix engine: mechanical rewrites for the errwrap rule's two
// fully mechanical shapes —
//
//   - `err == ErrX` → `errors.Is(err, ErrX)` (and != → !errors.Is),
//     adding the "errors" import when missing;
//   - fmt.Errorf("... %v ...", err) → the error argument's verb
//     rewritten to %w.
//
// Switch-case sentinels stay manual (turning a switch into an
// if/else chain is a judgement call), and suppressed sites are never
// touched: a reasoned //lint:allow is an explicit human decision the
// fixer must not override. Fixing is idempotent — a second pass over
// fixed sources produces zero edits — which the driver tests pin.

// Edit is one byte-range replacement in a file.
type Edit struct {
	File     string
	Off, End int // byte offsets into the original file
	Text     string
}

// FixEdits computes the mechanical errwrap edits for the loaded
// packages, skipping sites covered by an allow directive.
func FixEdits(pkgs []*Package) []Edit {
	var edits []Edit
	for _, pkg := range pkgs {
		p := &Pass{Pkg: pkg}
		sup := collectDirectives(pkg)
		needErrors := map[*ast.File]bool{}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					if e, ok := p.sentinelCompareEdit(n, sup); ok {
						edits = append(edits, e)
						needErrors[file] = true
					}
				case *ast.CallExpr:
					edits = append(edits, p.errorfVerbEdits(n, sup)...)
				}
				return true
			})
		}
		for file, need := range needErrors {
			if need && !importsPath(file, "errors") {
				if e, ok := p.addImportEdit(file, "errors"); ok {
					edits = append(edits, e)
				}
			}
		}
	}
	sort.Slice(edits, func(i, j int) bool {
		if edits[i].File != edits[j].File {
			return edits[i].File < edits[j].File
		}
		return edits[i].Off < edits[j].Off
	})
	return edits
}

// sentinelCompareEdit rewrites one `x ==/!= ErrX` comparison.
func (p *Pass) sentinelCompareEdit(n *ast.BinaryExpr, sup *suppressions) (Edit, bool) {
	if n.Op != token.EQL && n.Op != token.NEQ {
		return Edit{}, false
	}
	if sup.covered(Finding{Pos: p.position(n.Pos()), Rule: "errwrap"}) {
		return Edit{}, false
	}
	var sentinel, errExpr ast.Expr
	for _, pair := range [2][2]ast.Expr{{n.X, n.Y}, {n.Y, n.X}} {
		if _, ok := p.sentinelError(pair[0]); ok && !isNilIdent(pair[1]) {
			sentinel, errExpr = pair[0], pair[1]
			break
		}
	}
	if sentinel == nil {
		return Edit{}, false
	}
	neg := ""
	if n.Op == token.NEQ {
		neg = "!"
	}
	pos, end := p.position(n.Pos()), p.position(n.End())
	return Edit{
		File: pos.Filename,
		Off:  pos.Offset, End: end.Offset,
		Text: fmt.Sprintf("%serrors.Is(%s, %s)", neg, exprText(errExpr), exprText(sentinel)),
	}, true
}

// exprText renders an expression back to source.
func exprText(e ast.Expr) string {
	var b strings.Builder
	// format.Node over a bare expression never fails for parsed input.
	if err := format.Node(&b, token.NewFileSet(), e); err != nil {
		return ""
	}
	return b.String()
}

// errorfVerbEdits rewrites the verbs of error arguments in one
// fmt.Errorf call from %v/%s to %w.
func (p *Pass) errorfVerbEdits(call *ast.CallExpr, sup *suppressions) []Edit {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return nil
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	if pn := p.pkgNameOf(x); pn == nil || pn.Imported().Path() != "fmt" {
		return nil
	}
	if len(call.Args) < 2 {
		return nil
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return nil // named constant / concatenation: not mechanical
	}
	tv, ok := p.Pkg.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return nil
	}
	formatStr := constant.StringVal(tv.Value)
	if strings.Contains(formatStr, "%w") || strings.Contains(formatStr, "*") {
		return nil // already wrapping, or width/precision stars skew arg counting
	}
	verbs := formatVerbs(formatStr)
	changed := false
	for i, arg := range call.Args[1:] {
		t := p.typeOf(arg)
		if t == nil || !isErrorType(t) {
			continue
		}
		if tv, ok := p.Pkg.Info.Types[arg]; ok && tv.IsNil() {
			continue
		}
		if sup.covered(Finding{Pos: p.position(arg.Pos()), Rule: "errwrap"}) {
			continue
		}
		if i >= len(verbs) {
			continue
		}
		if v := formatStr[verbs[i].start:verbs[i].end]; v == "%v" || v == "%s" {
			formatStr = formatStr[:verbs[i].start] + "%w" + formatStr[verbs[i].end:]
			changed = true
		}
	}
	if !changed {
		return nil
	}
	pos, end := p.position(lit.Pos()), p.position(lit.End())
	return []Edit{{
		File: pos.Filename,
		Off:  pos.Offset, End: end.Offset,
		Text: strconv.Quote(formatStr),
	}}
}

// verbSpan is one argument-consuming verb's extent in a format string.
type verbSpan struct{ start, end int }

// formatVerbs locates the argument-consuming verbs of a format
// string, in order. %% is skipped; flags and digits between % and the
// verb letter are included in the span.
func formatVerbs(s string) []verbSpan {
	var out []verbSpan
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			continue
		}
		j := i + 1
		for j < len(s) && strings.ContainsRune("+-# 0123456789.", rune(s[j])) {
			j++
		}
		if j >= len(s) {
			break
		}
		if s[j] == '%' {
			i = j
			continue
		}
		out = append(out, verbSpan{start: i, end: j + 1})
		i = j
	}
	return out
}

// importsPath reports whether the file imports the given path.
func importsPath(file *ast.File, path string) bool {
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) == path {
			return true
		}
	}
	return false
}

// addImportEdit inserts an import into the file's first import
// declaration (or a fresh one after the package clause).
func (p *Pass) addImportEdit(file *ast.File, path string) (Edit, bool) {
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if gd.Lparen.IsValid() {
			pos := p.position(gd.Lparen)
			return Edit{File: pos.Filename, Off: pos.Offset + 1, End: pos.Offset + 1,
				Text: "\n\t" + strconv.Quote(path)}, true
		}
		// Single-import form: wrap it into a block.
		if len(gd.Specs) == 1 {
			spec := gd.Specs[0].(*ast.ImportSpec)
			pos, end := p.position(gd.Pos()), p.position(spec.End())
			return Edit{File: pos.Filename, Off: pos.Offset, End: end.Offset,
				Text: fmt.Sprintf("import (\n\t%s\n\t%s\n)", strconv.Quote(path), spec.Path.Value)}, true
		}
	}
	// No import declaration at all: add one after the package clause.
	pos := p.position(file.Name.End())
	return Edit{File: pos.Filename, Off: pos.Offset, End: pos.Offset,
		Text: "\n\nimport " + strconv.Quote(path)}, true
}

// ApplyEdits applies the edits to disk, gofmt-ing each touched file,
// and returns the list of files changed. Overlapping edits in one
// file abort that file (they indicate a detector bug, not a fixable
// tree).
func ApplyEdits(edits []Edit) ([]string, error) {
	byFile := map[string][]Edit{}
	for _, e := range edits {
		byFile[e.File] = append(byFile[e.File], e)
	}
	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	var changed []string
	for _, f := range files {
		es := byFile[f]
		sort.Slice(es, func(i, j int) bool { return es[i].Off < es[j].Off })
		for i := 1; i < len(es); i++ {
			if es[i].Off < es[i-1].End {
				return changed, fmt.Errorf("analysis: overlapping fixes in %s at byte %d", f, es[i].Off)
			}
		}
		src, err := os.ReadFile(f)
		if err != nil {
			return changed, err
		}
		var b strings.Builder
		last := 0
		for _, e := range es {
			if e.Off < last || e.End > len(src) {
				return changed, fmt.Errorf("analysis: fix out of range in %s (byte %d of %d)", f, e.End, len(src))
			}
			b.Write(src[last:e.Off])
			b.WriteString(e.Text)
			last = e.End
		}
		b.Write(src[last:])
		out, err := format.Source([]byte(b.String()))
		if err != nil {
			return changed, fmt.Errorf("analysis: fixed %s does not parse: %w", f, err)
		}
		if err := os.WriteFile(f, out, 0o644); err != nil {
			return changed, err
		}
		changed = append(changed, f)
	}
	return changed, nil
}
