package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The fact cache persists one PackageFact per package, keyed by a
// content hash of the package's non-test sources. Facts are a pure
// function of those sources (resolved callee names are stable
// symbols), so a hash hit means the cached entry is exact — no
// staleness window, no invalidation protocol. The -diff driver leans
// on this: it type-checks only the changed packages and reassembles
// the rest of the module's call graph from cache, which is what keeps
// a one-package lint under the 10-second PR budget while dettaint
// still sees cross-package taint in both directions.

// cacheFormatVersion is bumped whenever FuncFact gains fields, so old
// entries miss instead of decoding partially.
const cacheFormatVersion = 1

// cacheEnvelope is the on-disk shape: a version gate around the fact
// set.
type cacheEnvelope struct {
	Version int          `json:"version"`
	Fact    *PackageFact `json:"fact"`
}

// EncodeFacts renders a fact set to its canonical cache bytes.
func EncodeFacts(pf *PackageFact) ([]byte, error) {
	return json.MarshalIndent(cacheEnvelope{Version: cacheFormatVersion, Fact: pf}, "", "\t")
}

// DecodeFacts parses cache bytes. A wrong version, malformed JSON, or
// an empty fact is an error — callers treat any error as a cache miss.
func DecodeFacts(data []byte) (*PackageFact, error) {
	var env cacheEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("analysis: decoding facts: %w", err)
	}
	if env.Version != cacheFormatVersion {
		return nil, fmt.Errorf("analysis: fact cache version %d, want %d", env.Version, cacheFormatVersion)
	}
	if env.Fact == nil || env.Fact.Path == "" {
		return nil, fmt.Errorf("analysis: fact cache entry has no package")
	}
	return env.Fact, nil
}

// HashPackageDir hashes the non-test .go sources of dir: file names
// and contents in sorted order. The hash keys the fact cache.
func HashPackageDir(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s %d\n", n, len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// FactCache is a directory of per-package fact files.
type FactCache struct {
	Dir string
}

// entryPath flattens an import path into a file name.
func (c *FactCache) entryPath(pkgPath string) string {
	return filepath.Join(c.Dir, strings.ReplaceAll(pkgPath, "/", "__")+".facts.json")
}

// Load returns the cached facts for pkgPath if present and still
// matching wantHash; any miss (absent, stale, undecodable) returns
// nil.
func (c *FactCache) Load(pkgPath, wantHash string) *PackageFact {
	if c == nil || c.Dir == "" {
		return nil
	}
	data, err := os.ReadFile(c.entryPath(pkgPath))
	if err != nil {
		return nil
	}
	pf, err := DecodeFacts(data)
	if err != nil || pf.Path != pkgPath || pf.Hash != wantHash {
		return nil
	}
	return pf
}

// Store writes the fact set (pf.Hash must be set by the caller).
func (c *FactCache) Store(pf *PackageFact) error {
	if c == nil || c.Dir == "" || pf == nil {
		return nil
	}
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return err
	}
	data, err := EncodeFacts(pf)
	if err != nil {
		return err
	}
	tmp := c.entryPath(pf.Path) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, c.entryPath(pf.Path))
}
