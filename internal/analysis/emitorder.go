package analysis

import (
	"go/ast"
	"go/types"
)

// EmitOrder guards the byte-identical trace contract inside the
// worker pool: telemetry events appended to a SHARED tracer from a
// par.Go/par.ForEach closure land in goroutine-schedule order, which
// silently breaks the decision-log/trace byte-identity every tier-1
// invariance test pins. The sanctioned pattern (DESIGN.md §10) is a
// private tracer per unit of speculative work, merged into the shared
// stream sequentially in commit order after the pool drains.
//
// Inside a closure passed to par.Go or par.ForEach:
//
//   - a Tracer emit (Emit/Begin/End/Merge/MergeDrain) is a finding
//     unless the receiver is a tracer constructed inside the closure
//     (telemetry.NewTracer — the private stream) or a slot-indexed
//     element of a captured container (a per-slot tracer);
//   - a call to a function that TRANSITIVELY emits onto a tracer it
//     did not construct is a finding, resolved over the fact graph,
//     with the chain in the message. Propagation stops at tracer
//     boundaries: a callee that constructs a fresh tracer is assumed
//     to implement the private-stream pattern.
//
// The analyzer cannot see that a captured scheduler's tracer is
// itself private to the worker's cell (the fleet's cells-own-their-
// scheduler design); such sites take a //lint:allow emitorder naming
// the merge point.
func EmitOrder() *Rule {
	return &Rule{
		Name: "emitorder",
		Doc:  "par closures must trace into private tracers merged in commit order",
		Run:  runEmitOrder,
	}
}

func runEmitOrder(p *Pass) []Finding {
	var out []Finding
	for _, file := range p.Pkg.Files {
		for _, pc := range p.parClosures(file) {
			out = append(out, p.checkEmitOrder(pc)...)
		}
	}
	return out
}

func (p *Pass) checkEmitOrder(pc parClosure) []Finding {
	var out []Finding
	slot := p.slotDerived(pc.fn)

	// Tracers constructed inside the closure are private streams.
	private := map[types.Object]bool{}
	ast.Inspect(pc.fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			if call, ok := rhs.(*ast.CallExpr); ok && p.isNewTracerCall(call) {
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					if obj := p.objectOf(id); obj != nil {
						private[obj] = true
					}
				}
			}
		}
		return true
	})

	ast.Inspect(pc.fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if handle, ok := telemetryHandle(p.typeOf(sel.X)); ok && handle == "Tracer" &&
				tracerEmitMethods[sel.Sel.Name] {
				if !p.privateOrSlotTracer(sel.X, private, slot, pc.fn) {
					out = append(out, p.finding("emitorder", call.Pos(),
						"Tracer.%s on shared tracer %s inside par.%s closure orders the trace by goroutine schedule; record into a private tracer and merge in commit order (DESIGN.md §10)",
						sel.Sel.Name, types.ExprString(sel.X), pc.method))
				}
				return true
			}
		}
		// Transitive emissions through the call graph.
		if p.Graph == nil {
			return true
		}
		callee := p.resolvedCallee(call)
		if callee == nil || callee.Pkg() == nil ||
			modRoot(callee.Pkg().Path()) != modRoot(p.Pkg.Path) {
			return true
		}
		if tr := p.Graph.Emits(qualifiedFuncName(callee)); tr != nil {
			out = append(out, p.finding("emitorder", call.Pos(),
				"call to %s inside par.%s closure transitively emits %s at %s:%d (%s) onto a tracer it does not own; route speculative work through a private tracer merged in commit order",
				shortFuncName(qualifiedFuncName(callee)), pc.method,
				tr.What, tr.File, tr.Line, chainString(tr.Chain)))
		}
		return true
	})
	return out
}

// privateOrSlotTracer reports whether the tracer expression is a
// sanctioned stream for a par worker: a closure-local private tracer,
// or a slot-indexed element of a captured per-slot container.
func (p *Pass) privateOrSlotTracer(e ast.Expr, private map[types.Object]bool, slot map[types.Object]bool, fn *ast.FuncLit) bool {
	root, ok := rootIdent(e)
	if !ok {
		return false
	}
	obj := p.objectOf(root)
	if obj == nil {
		return false
	}
	if private[obj] || slot[obj] {
		return true
	}
	// trs[i].… — any slot-derived index on the access path sanctions
	// the emit as per-slot state.
	return p.slotIndexedPath(e, slot)
}
