package analysis

import (
	"strings"
	"testing"
)

// FuzzDirectiveParse hammers the //lint:allow grammar: for any body
// the parser must classify it as exactly one of well-formed (rule and
// reason both non-empty, rule free of whitespace) or malformed (a
// non-empty diagnostic), and a well-formed parse must round-trip
// through its canonical rendering.
func FuzzDirectiveParse(f *testing.F) {
	f.Add("detrand metrics-only clock read")
	f.Add(" dettaint   reason with   runs of spaces ")
	f.Add("floateq")
	f.Add("")
	f.Add("\t\n")
	f.Add("rule nbsp-is-not-a-separator")
	f.Fuzz(func(t *testing.T, body string) {
		rule, reason, badMsg := parseAllowDirective(body)
		if badMsg != "" {
			if rule != "" || reason != "" {
				t.Fatalf("malformed parse leaked rule=%q reason=%q", rule, reason)
			}
			return
		}
		if rule == "" || reason == "" {
			t.Fatalf("well-formed parse with empty part: rule=%q reason=%q", rule, reason)
		}
		if strings.IndexFunc(rule, func(r rune) bool { return r == ' ' || r == '\t' || r == '\n' || r == '\r' }) >= 0 {
			t.Fatalf("rule %q contains whitespace", rule)
		}
		rule2, reason2, bad2 := parseAllowDirective(rule + " " + reason)
		if bad2 != "" || rule2 != rule || reason2 != reason {
			t.Fatalf("canonical rendering does not round-trip: %q %q %q", rule2, reason2, bad2)
		}
	})
}

// FuzzFactCacheRoundTrip feeds arbitrary bytes to the cache decoder:
// it must never panic, and anything it accepts must survive an
// encode/decode round trip with path, hash, and function set intact.
func FuzzFactCacheRoundTrip(f *testing.F) {
	seed, err := EncodeFacts(&PackageFact{
		Path: "clite/internal/core",
		Hash: "abc123",
		Funcs: []FuncFact{{
			Name: "clite/internal/core.Window",
			Pkg:  "clite/internal/core",
			File: "internal/core/core.go", Line: 10,
			Sources: []Source{{Kind: TaintClock, What: "time.Now", File: "internal/core/core.go", Line: 11}},
			Calls:   []CallEdge{{Callee: "clite/internal/profile.Scale", File: "internal/core/core.go", Line: 12}},
		}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"fact":{"path":"p"}}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		pf, err := DecodeFacts(data)
		if err != nil {
			return // any malformed input is just a cache miss
		}
		out, err := EncodeFacts(pf)
		if err != nil {
			t.Fatalf("re-encoding accepted facts: %v", err)
		}
		pf2, err := DecodeFacts(out)
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
		if pf2.Path != pf.Path || pf2.Hash != pf.Hash || len(pf2.Funcs) != len(pf.Funcs) {
			t.Fatalf("round trip drifted: %+v vs %+v", pf, pf2)
		}
	})
}
