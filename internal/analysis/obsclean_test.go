package analysis

import "testing"

// TestObsSuppressionFree pins the observability plane's lint bar: the
// obs package sits in both the determinism (detrand) and hot-path
// (telnil) scopes and must stay clean without a single //lint:allow —
// the SLO plane has no sanctioned wall-clock or unguarded-telemetry
// sites at all.
func TestObsSuppressionFree(t *testing.T) {
	// Tests run with the package directory as cwd; ../obs is the
	// observability plane's source tree.
	pkgs, err := NewLoader().LoadPatterns([]string{"../obs"})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	rep := Run(pkgs, Rules())
	for _, f := range rep.Findings {
		t.Errorf("finding: %s", f.String())
	}
	for _, f := range rep.Suppressed {
		t.Errorf("suppression (obs must be suppression-free): %s", f.String())
	}
	for _, f := range rep.BadDirectives {
		t.Errorf("bad directive: %s", f.String())
	}
}
