package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatEq flags == and != between floating-point expressions in the
// numeric kernels (linalg, gp, bo, optimize), where accumulated
// rounding makes exact comparison a latent bug. Two escapes:
//
//   - the NaN idiom x != x is structurally recognized;
//   - approved tolerance helpers (functions whose name contains
//     "approx", "almost", "tol", or "close") may compare exactly,
//     since that is where the epsilon logic lives.
//
// Intentional exact comparisons elsewhere (bit-exact sentinels,
// comparisons against a stored copy of the same computation) take a
// //lint:allow floateq with the rationale.
func FloatEq() *Rule {
	return &Rule{
		Name:    "floateq",
		Doc:     "no exact float ==/!= in numeric packages outside tolerance helpers",
		InScope: scopeTo(numericPackages),
		Run:     runFloatEq,
	}
}

func runFloatEq(p *Pass) []Finding {
	var out []Finding
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			if toleranceHelper(fn.Name.Name) || fn.Body == nil {
				return true
			}
			ast.Inspect(fn.Body, func(m ast.Node) bool {
				be, ok := m.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !p.isFloat(be.X) || !p.isFloat(be.Y) {
					return true
				}
				if be.Op == token.NEQ && types.ExprString(be.X) == types.ExprString(be.Y) {
					return true // x != x: the NaN check idiom
				}
				out = append(out, p.finding("floateq", be.Pos(),
					"exact float comparison %s %s %s; use a tolerance helper (or //lint:allow floateq with the bit-exactness rationale)",
					types.ExprString(be.X), be.Op, types.ExprString(be.Y)))
				return true
			})
			return true
		})
	}
	return out
}

// toleranceHelper reports whether the function name marks an approved
// epsilon-comparison helper.
func toleranceHelper(name string) bool {
	l := strings.ToLower(name)
	for _, frag := range []string{"approx", "almost", "tol", "close"} {
		if strings.Contains(l, frag) {
			return true
		}
	}
	return false
}

// isFloat reports whether e has floating-point type.
func (p *Pass) isFloat(e ast.Expr) bool {
	t := p.typeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
