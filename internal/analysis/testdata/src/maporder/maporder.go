// Package maporder is a lint fixture: order-sensitive work inside
// map iteration, plus the sanctioned collect-then-sort idiom.
package maporder

import (
	"fmt"
	"sort"

	"clite/internal/telemetry"
)

// Leak appends map keys in iteration order and never sorts: finding.
func Leak(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// Sorted is the sanctioned idiom: collect, then sort. No finding.
func Sorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Print writes output mid-iteration: finding (a later sort cannot
// repair bytes already written).
func Print(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// Emit records telemetry events in map order: finding, plus a
// suppressed twin.
func Emit(tr *telemetry.Tracer, m map[int]float64) {
	for job, p95 := range m {
		tr.Emit(telemetry.QoSViolation(0, job, p95, 0))
	}
	for job, p95 := range m {
		//lint:allow maporder fixture demonstrating a suppressed order-dependent emit
		tr.Emit(telemetry.QoSViolation(0, job, p95, 0))
	}
}

// Fold accumulates order-insensitively: no finding.
func Fold(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Local appends to a slice declared inside the loop body: no finding
// (the slice dies each iteration, so order cannot leak).
func Local(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var doubled []int
		doubled = append(doubled, vs...)
		n += len(doubled)
	}
	return n
}
