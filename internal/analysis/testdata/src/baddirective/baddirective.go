// Package baddirective is a lint fixture: malformed and unused allow
// directives, which the driver must report (malformed ones fatally).
package baddirective

import "time"

// Reasonless carries an allow with no reason: the finding below stays
// unsuppressed AND the directive itself is reported.
func Reasonless() int64 {
	//lint:allow detrand
	return time.Now().UnixNano()
}

// Stale carries a well-formed allow that matches nothing: counted as
// unused, not fatal.
func Stale() int {
	//lint:allow floateq stale directive left behind after a fix
	return 42
}
