// Package errwrap is a lint fixture: sentinel comparisons outside
// errors.Is and fmt.Errorf propagation without %w.
package errwrap

import (
	"errors"
	"fmt"
)

// ErrWindowFailed mimics the fault-taxonomy sentinels.
var ErrWindowFailed = errors.New("errwrap fixture: window failed")

// Compare hits the == and != forms: two findings, one suppressed.
func Compare(err error) (bool, bool) {
	eq := err == ErrWindowFailed
	ne := err != ErrWindowFailed //lint:allow errwrap fixture demonstrating a suppressed bare comparison
	return eq, ne
}

// Switched hits the switch-case form: finding.
func Switched(err error) bool {
	switch err {
	case ErrWindowFailed:
		return true
	}
	return false
}

// Propagate folds err in without %w: finding.
func Propagate(err error) error {
	return fmt.Errorf("observing window: %v", err)
}

// Wrapped uses %w and errors.Is: no findings.
func Wrapped(err error) error {
	if errors.Is(err, ErrWindowFailed) {
		return fmt.Errorf("observing window: %w", err)
	}
	if err != nil { // nil checks are fine
		return err
	}
	return nil
}
