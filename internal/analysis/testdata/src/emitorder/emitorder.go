// Package emitorder is a lint fixture: telemetry emitted from par
// worker pools onto shared tracers (schedule-ordered, breaks trace
// byte-identity) versus the sanctioned private-tracer-merge-in-
// commit-order pattern.
package emitorder

import (
	"clite/internal/par"
	"clite/internal/telemetry"
)

// Shared emits directly onto the captured shared tracer.
func Shared(tr *telemetry.Tracer, n int) {
	par.ForEach(2, n, func(i int) {
		tr.Emit(telemetry.BOIteration(i, 0, 0, n))
	})
}

// Laundered reaches the shared tracer through a helper call.
func Laundered(tr *telemetry.Tracer, n int) {
	par.Go(2, func(s int) {
		stamp(tr, s)
	})
}

func stamp(tr *telemetry.Tracer, node int) {
	tr.Emit(telemetry.BOIteration(node, 0, 0, 0))
}

// Private is the sanctioned pattern: each worker records into a
// tracer it constructs, merged into the shared stream in slot order
// after the pool drains.
func Private(tr *telemetry.Tracer, n int) {
	locals := make([]*telemetry.Tracer, n)
	par.ForEach(2, n, func(i int) {
		t := telemetry.NewTracer()
		t.Emit(telemetry.BOIteration(i, 0, 0, 0))
		locals[i] = t
	})
	for i, lt := range locals {
		tr.Merge(lt, i)
	}
}

// Slotted emits into per-slot tracers allocated before the pool.
func Slotted(trs []*telemetry.Tracer, n int) {
	par.ForEach(2, n, func(i int) {
		trs[i].Emit(telemetry.BOIteration(i, 0, 0, 0))
	})
}

// Allowed is the reasoned escape hatch: a pool of one worker cannot
// interleave.
func Allowed(tr *telemetry.Tracer, n int) {
	par.Go(1, func(s int) {
		tr.Emit(telemetry.BOIteration(s, 0, 0, 0)) //lint:allow emitorder fixture demonstrating a reasoned single-worker emit
	})
}
