// Package telnil is a lint fixture: telemetry handle calls whose
// arguments do work without a nil guard on the receiver.
package telnil

import "clite/internal/telemetry"

// Controller mimics a hot-path struct holding telemetry handles.
type Controller struct {
	trace *telemetry.Tracer
	hist  *telemetry.Histogram
	iters *telemetry.Counter
}

// score stands in for a non-trivial computation.
func (c *Controller) score() float64 { return 0.5 }

// Unguarded evaluates score() even when the handle is nil: one plain
// finding on the histogram and one suppressed on the tracer.
func (c *Controller) Unguarded() {
	c.hist.Observe(c.score())
	//lint:allow telnil fixture demonstrating a suppressed working-argument emit
	c.trace.Emit(telemetry.Termination("done", 1, c.score()))
}

// Guarded is the sanctioned idiom: no findings.
func (c *Controller) Guarded() {
	if c.hist != nil {
		c.hist.Observe(c.score())
	}
	if c.trace != nil && c.score() > 0 {
		c.trace.Emit(telemetry.Termination("done", 1, c.score()))
	}
}

// Cheap arguments need no guard: field reads, conversions, builtins,
// and the telemetry package's by-value event constructors.
func (c *Controller) Cheap(n int, at float64) {
	c.iters.Add(int64(n))
	c.hist.Observe(at)
	c.trace.Emit(telemetry.ObservationWindow(at, n, true))
}
