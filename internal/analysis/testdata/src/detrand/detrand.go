// Package detrand is a lint fixture: entropy-rule violations in a
// package the driver treats as deterministic (testdata trees are
// always in scope).
package detrand

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock: one plain finding and one suppressed.
func Stamp() (int64, int64) {
	bad := time.Now().UnixNano()
	ok := time.Now().UnixNano() //lint:allow detrand fixture demonstrating a suppressed metrics-only clock read
	return bad, ok
}

// Elapsed uses the derived clock readers, which are wall reads too.
func Elapsed(t0 time.Time) float64 {
	return time.Since(t0).Seconds()
}

// Draw uses the global math/rand stream and an ad-hoc generator.
func Draw() int {
	n := rand.Intn(10)
	r := rand.New(rand.NewSource(1))
	return n + r.Intn(10)
}

// Deadline is fine: constructing a duration is not a clock read.
func Deadline() time.Duration {
	return 5 * time.Second
}
