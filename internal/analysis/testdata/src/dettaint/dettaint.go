// Package dettaint is a lint fixture: a deterministic package
// (fixture trees are always in scope) that launders wall-clock reads,
// global math/rand draws, and map-iteration order through the helper
// subpackage — edges only the cross-package taint rule can see.
package dettaint

import "clite/internal/analysis/testdata/src/dettaint/helper"

// Window stamps itself via helper.Stamp: one-hop clock laundering.
func Window() int64 {
	return helper.Stamp()
}

// Sample draws entropy two hops down (helper.Jitter calls draw).
func Sample() float64 {
	return helper.Jitter()
}

// Keys depends on map iteration order through helper.Leak.
func Keys(m map[string]int) []string {
	return helper.Leak(m)
}

// Scale is clean: helper.Pure carries no taint.
func Scale(x int) int {
	return helper.Pure(x)
}

// Stamped is the reasoned escape hatch for a metrics-only clock.
func Stamped() int64 {
	return helper.Stamp() //lint:allow dettaint fixture demonstrating a reasoned cross-package clock read
}
