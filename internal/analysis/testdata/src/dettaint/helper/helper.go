// Package helper is the laundering layer of the dettaint fixture:
// exported helpers that reach entropy the deterministic caller
// package cannot see lexically. The direct sources here are detrand/
// maporder findings in THIS package; dettaint reports the caller's
// edge into them.
package helper

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock directly: a one-hop laundering target.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Jitter reaches the global math/rand stream two hops down.
func Jitter() float64 {
	return draw()
}

func draw() float64 {
	return rand.Float64()
}

// Leak returns map keys in iteration order: order-sensitive output.
func Leak(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// Pure carries no taint anywhere below it.
func Pure(x int) int {
	return x * 2
}
