// Package parcapture is a lint fixture: closure-capture discipline
// violations in par.Go / par.ForEach worker pools, plus the
// sanctioned shapes the rule must leave alone.
package parcapture

import (
	"clite/internal/par"
	"clite/internal/stats"
)

// Sum accumulates into a captured scalar: schedule-dependent.
func Sum(xs []float64) float64 {
	total := 0.0
	par.ForEach(4, len(xs), func(i int) {
		total += xs[i]
	})
	return total
}

// Index is clean: slot-indexed writes, including through a local loop
// index derived from the shard parameter.
func Index(xs []float64) []float64 {
	out := make([]float64, len(xs))
	par.ForEach(4, len(xs), func(i int) {
		out[i] = 2 * xs[i]
	})
	par.Go(2, func(s int) {
		for j := s; j < len(xs); j += 2 {
			out[j] = xs[j]
		}
	})
	return out
}

// Tally writes a captured map: races whatever the key.
func Tally(keys []string) map[string]int {
	m := map[string]int{}
	par.ForEach(2, len(keys), func(i int) {
		m[keys[i]] = i
	})
	return m
}

// Config reads a captured local the enclosing function reassigns
// outside the closure.
func Config(xs []float64, wide bool) []float64 {
	scale := 1.0
	if wide {
		scale = 2.0
	}
	out := make([]float64, len(xs))
	par.ForEach(2, len(xs), func(i int) {
		out[i] = scale * xs[i]
	})
	return out
}

// Draw pulls from a captured shared RNG stream.
func Draw(r *stats.RNG, n int) []float64 {
	out := make([]float64, n)
	par.ForEach(2, n, func(i int) {
		out[i] = r.Float64()
	})
	return out
}

// DrawSplit splits per-shard streams before the pool: sanctioned.
func DrawSplit(r *stats.RNG, n int) []float64 {
	out := make([]float64, n)
	rngs := make([]*stats.RNG, n)
	for i := range rngs {
		rngs[i] = r.Split(int64(i))
	}
	par.ForEach(2, n, func(i int) {
		out[i] = rngs[i].Float64()
	})
	return out
}

// Allowed is the reasoned escape hatch: a pool of one worker.
func Allowed(xs []float64) float64 {
	total := 0.0
	par.Go(1, func(s int) {
		for _, x := range xs {
			total += x //lint:allow parcapture fixture demonstrating a reasoned single-worker accumulator
		}
	})
	return total
}
