// Package floateq is a lint fixture: exact floating-point comparison
// in a numeric kernel, plus the approved escapes.
package floateq

import "math"

// Converged compares computed floats exactly: one plain finding and
// one suppressed.
func Converged(prev, next float64) bool {
	bad := prev == next
	//lint:allow floateq fixture demonstrating a suppressed bit-exact sentinel comparison
	same := prev != next
	return bad || same
}

// IsNaN uses the x != x idiom: no finding.
func IsNaN(x float64) bool {
	return x != x
}

// approxEqual is an approved tolerance helper: exact comparison
// inside it is where the epsilon logic lives. No finding.
func approxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// Near delegates to the helper: no finding.
func Near(a, b float64) bool {
	return approxEqual(a, b, 1e-9)
}

// Ints may compare exactly: no finding.
func Ints(a, b int) bool {
	return a == b
}
