// Package fixable is the -fix fixture: every errwrap shape the
// mechanical fixer rewrites, plus the shapes it must leave alone.
// The fix driver test copies this tree, runs the fixer, and asserts
// the rewritten source is errwrap-clean and a second pass is a no-op.
package fixable

import "fmt"

// ErrStale is the fixture sentinel.
var ErrStale = fmt.Errorf("stale window")

// Check compares sentinels with == and !=: both rewrite to errors.Is.
func Check(err error) (bool, bool) {
	eq := err == ErrStale
	ne := err != ErrStale
	return eq, ne
}

// Wrap folds an error into fmt.Errorf with %v: rewrites to %w.
func Wrap(err error, step int) error {
	return fmt.Errorf("step %d failed: %v", step, err)
}

// Mixed has a non-error %v before the error %s: only the error verb
// rewrites.
func Mixed(err error, name string) error {
	return fmt.Errorf("job %v: %s", name, err)
}

// Kept is already wrapping and must not change.
func Kept(err error) error {
	return fmt.Errorf("kept: %w", err)
}

// Suppressed carries a reasoned allow: the fixer must not touch it.
func Suppressed(err error) bool {
	return err == ErrStale //lint:allow errwrap fixture demonstrating a site the fixer must skip
}
