package resource

import (
	"testing"

	"clite/internal/stats"
)

// TestRandomIntoMatchesRandom pins RandomInto to Random: from equal
// RNG states the two must consume the identical draw sequence and
// produce the identical configuration stream.
func TestRandomIntoMatchesRandom(t *testing.T) {
	topo := Default()
	for _, nJobs := range []int{1, 2, 3, 5} {
		a := stats.NewRNG(99)
		b := stats.NewRNG(99)
		var cfg Config
		var cuts []int
		for i := 0; i < 50; i++ {
			want := Random(topo, nJobs, a)
			RandomInto(topo, nJobs, b, &cfg, &cuts)
			if !want.Equal(cfg) {
				t.Fatalf("nJobs=%d draw %d: Random %v vs RandomInto %v", nJobs, i, want, cfg)
			}
		}
	}
}

// TestRoundFeasibleIntoMatches pins RoundFeasibleInto to RoundFeasible
// over a spread of continuous vectors, including out-of-bounds and
// tie-heavy (integral) ones.
func TestRoundFeasibleIntoMatches(t *testing.T) {
	topo := Default()
	rng := stats.NewRNG(7)
	for _, nJobs := range []int{2, 3, 4} {
		var cfg Config
		var scratch RoundScratch
		for i := 0; i < 200; i++ {
			v := make([]float64, nJobs*len(topo))
			for d := range v {
				switch i % 3 {
				case 0:
					v[d] = rng.Float64() * float64(topo[d%len(topo)].Units)
				case 1: // integral values: every fractional part ties at 0
					v[d] = float64(rng.Intn(topo[d%len(topo)].Units + 2))
				default: // wildly infeasible
					v[d] = rng.Float64()*60 - 10
				}
			}
			want := RoundFeasible(topo, nJobs, v)
			RoundFeasibleInto(topo, nJobs, v, &cfg, &scratch)
			if !want.Equal(cfg) {
				t.Fatalf("nJobs=%d case %d: RoundFeasible %v vs Into %v (v=%v)", nJobs, i, want, cfg, v)
			}
		}
	}
}

// TestEqualSplitExtremumInto pins the bootstrap Into-variants to their
// allocating forms.
func TestEqualSplitExtremumInto(t *testing.T) {
	topo := Default()
	for _, nJobs := range []int{1, 2, 3, 5} {
		var cfg Config
		EqualSplitInto(topo, nJobs, &cfg)
		if want := EqualSplit(topo, nJobs); !want.Equal(cfg) {
			t.Fatalf("EqualSplitInto nJobs=%d: %v vs %v", nJobs, cfg, want)
		}
		for f := 0; f < nJobs; f++ {
			ExtremumInto(topo, nJobs, f, &cfg)
			if want := Extremum(topo, nJobs, f); !want.Equal(cfg) {
				t.Fatalf("ExtremumInto nJobs=%d favored=%d: %v vs %v", nJobs, f, cfg, want)
			}
		}
	}
}

// TestVectorInto pins VectorInto to Vector and checks storage reuse.
func TestVectorInto(t *testing.T) {
	topo := Small()
	cfg := EqualSplit(topo, 2)
	var dst []float64
	dst = cfg.VectorInto(dst)
	want := cfg.Vector()
	if len(dst) != len(want) {
		t.Fatalf("length %d vs %d", len(dst), len(want))
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("element %d: %v vs %v", i, dst[i], want[i])
		}
	}
	allocs := testing.AllocsPerRun(10, func() { dst = cfg.VectorInto(dst) })
	if allocs != 0 {
		t.Fatalf("steady-state VectorInto allocated %.1f times per run", allocs)
	}
}

// TestForEachConfigShardUnion verifies the sharded enumeration is an
// exact index-preserving partition of ForEachConfig: for every worker
// count, the union of shards visits the same (index, config) pairs.
func TestForEachConfigShardUnion(t *testing.T) {
	topo := Small()
	const nJobs, stride = 2, 2
	var refKeys []string
	ForEachConfig(topo, nJobs, stride, func(cfg Config) bool {
		refKeys = append(refKeys, cfg.Key())
		return true
	})
	for _, shards := range []int{1, 2, 3, 4, 7} {
		got := make([]string, len(refKeys))
		count := 0
		for s := 0; s < shards; s++ {
			ForEachConfigShard(topo, nJobs, stride, s, shards, func(idx int, cfg Config) bool {
				if idx < 0 || idx >= len(got) {
					t.Fatalf("shard %d/%d: index %d out of range %d", s, shards, idx, len(got))
				}
				if got[idx] != "" {
					t.Fatalf("shard %d/%d: index %d visited twice", s, shards, idx)
				}
				got[idx] = cfg.Key()
				count++
				return true
			})
		}
		if count != len(refKeys) {
			t.Fatalf("shards=%d visited %d configs, want %d", shards, count, len(refKeys))
		}
		for i := range refKeys {
			if got[i] != refKeys[i] {
				t.Fatalf("shards=%d index %d: %q vs %q", shards, i, got[i], refKeys[i])
			}
		}
	}
}
