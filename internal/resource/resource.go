// Package resource defines the vocabulary of multi-resource
// partitioning used throughout the CLITE reproduction: the shared
// resource kinds of a chip-multiprocessor server (Table 1 of the
// paper), machine topologies that say how many allocatable units each
// resource has, per-job allocations, and whole-machine partition
// configurations with feasibility checking, enumeration and counting.
package resource

import (
	"fmt"
	"math"
	"strings"
)

// Kind identifies one shared server resource that can be partitioned
// among co-located jobs.
type Kind int

// The shared resources from Table 1 of the paper.
const (
	Cores Kind = iota // CPU cores, partitioned by core affinity
	LLCWays
	MemBandwidth
	MemCapacity
	DiskBandwidth
	NetBandwidth
	numKinds
)

// String returns the short human-readable name of the resource.
func (k Kind) String() string {
	switch k {
	case Cores:
		return "cores"
	case LLCWays:
		return "llc-ways"
	case MemBandwidth:
		return "mem-bw"
	case MemCapacity:
		return "mem-cap"
	case DiskBandwidth:
		return "disk-bw"
	case NetBandwidth:
		return "net-bw"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// IsolationTool names the Linux/Intel isolation mechanism the paper
// uses to enforce a partition of this resource (Table 1).
func (k Kind) IsolationTool() string {
	switch k {
	case Cores:
		return "taskset"
	case LLCWays:
		return "Intel CAT"
	case MemBandwidth:
		return "Intel MBA"
	case MemCapacity:
		return "memory cgroups"
	case DiskBandwidth:
		return "blkio cgroups"
	case NetBandwidth:
		return "qdisc"
	default:
		return "unknown"
	}
}

// AllocationMethod names how the resource is divided (Table 1).
func (k Kind) AllocationMethod() string {
	switch k {
	case Cores:
		return "core affinity"
	case LLCWays:
		return "way partitioning"
	case MemBandwidth:
		return "bandwidth limiting"
	case MemCapacity:
		return "capacity division"
	case DiskBandwidth:
		return "I/O bandwidth limiting"
	case NetBandwidth:
		return "network bandwidth limiting"
	default:
		return "unknown"
	}
}

// Spec describes one partitionable resource dimension of a machine.
type Spec struct {
	Kind      Kind
	Units     int     // number of allocatable units
	UnitValue float64 // physical size of one unit, in UnitLabel units
	UnitLabel string  // e.g. "cores", "ways", "GB/s", "GB"
}

// Topology is the ordered list of partitionable resources on a server.
// All allocation vectors in this package are indexed in topology order.
type Topology []Spec

// Default returns the topology of the paper's testbed (Table 2): an
// Intel Xeon Silver 4114 — 20 logical cores, an 11-way set-associative
// 14 MB LLC, and memory bandwidth, memory capacity and disk bandwidth
// each split into 10 units (the granularity of Intel MBA's 10% steps
// and of the cgroup limits the paper applies).
func Default() Topology {
	return Topology{
		{Kind: Cores, Units: 20, UnitValue: 1, UnitLabel: "cores"},
		{Kind: LLCWays, Units: 11, UnitValue: 14080.0 / 11 / 1024, UnitLabel: "MB"},
		{Kind: MemBandwidth, Units: 10, UnitValue: 2.0, UnitLabel: "GB/s"},
		{Kind: MemCapacity, Units: 10, UnitValue: 4.6, UnitLabel: "GB"},
		{Kind: DiskBandwidth, Units: 10, UnitValue: 0.2, UnitLabel: "GB/s"},
	}
}

// Small returns a reduced three-resource topology used by tests and by
// exhaustive-search experiments where the full space would be
// intractable. It matches the paper's worked example of "three
// resources, each with 10 units".
func Small() Topology {
	return Topology{
		{Kind: Cores, Units: 10, UnitValue: 1, UnitLabel: "cores"},
		{Kind: LLCWays, Units: 10, UnitValue: 1.28, UnitLabel: "MB"},
		{Kind: MemBandwidth, Units: 10, UnitValue: 2.0, UnitLabel: "GB/s"},
	}
}

// Index returns the position of kind in the topology, or -1.
func (t Topology) Index(kind Kind) int {
	for i, s := range t {
		if s.Kind == kind {
			return i
		}
	}
	return -1
}

// TotalUnits returns the unit count of resource r.
func (t Topology) TotalUnits(r int) int { return t[r].Units }

// Dims returns the number of search-space dimensions for nJobs
// co-located jobs: Nres × Njobs (the paper's definition; the sum
// constraint makes Njobs−1 of them free per resource).
func (t Topology) Dims(nJobs int) int { return len(t) * nJobs }

// ConfigCount returns the total number of feasible partition
// configurations for nJobs jobs, the paper's
// Nconf = ∏_r C(Nunits(r)−1, Njobs−1). It saturates at MaxInt64 on
// overflow.
func (t Topology) ConfigCount(nJobs int) int64 {
	if nJobs <= 0 {
		return 0
	}
	total := int64(1)
	for _, s := range t {
		c := binomial(int64(s.Units-1), int64(nJobs-1))
		if c == 0 {
			return 0
		}
		if total > math.MaxInt64/c {
			return math.MaxInt64
		}
		total *= c
	}
	return total
}

func binomial(n, k int64) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	result := int64(1)
	for i := int64(1); i <= k; i++ {
		if result > math.MaxInt64/(n-k+i) {
			return math.MaxInt64
		}
		result = result * (n - k + i) / i
	}
	return result
}

// Allocation is one job's share of every resource, in topology order
// and expressed in units.
type Allocation []int

// Clone returns a copy of the allocation.
func (a Allocation) Clone() Allocation {
	c := make(Allocation, len(a))
	copy(c, a)
	return c
}

// Config is a complete partition of the machine: one Allocation per
// co-located job. Jobs[j][r] is the share of resource r given to job j.
type Config struct {
	Jobs []Allocation
}

// NewConfig returns a config with nJobs all-zero allocations over the
// given topology.
func NewConfig(t Topology, nJobs int) Config {
	jobs := make([]Allocation, nJobs)
	for j := range jobs {
		jobs[j] = make(Allocation, len(t))
	}
	return Config{Jobs: jobs}
}

// Clone deep-copies the config.
func (c Config) Clone() Config {
	jobs := make([]Allocation, len(c.Jobs))
	for j, a := range c.Jobs {
		jobs[j] = a.Clone()
	}
	return Config{Jobs: jobs}
}

// CopyFrom overwrites c with src's values, reusing c's storage when
// the shapes match (the scratch-config idiom of the hot paths);
// allocations are only made when c is smaller than src.
func (c *Config) CopyFrom(src Config) {
	if cap(c.Jobs) < len(src.Jobs) {
		c.Jobs = make([]Allocation, len(src.Jobs))
	}
	c.Jobs = c.Jobs[:len(src.Jobs)]
	for j, a := range src.Jobs {
		if cap(c.Jobs[j]) < len(a) {
			c.Jobs[j] = make(Allocation, len(a))
		}
		c.Jobs[j] = c.Jobs[j][:len(a)]
		copy(c.Jobs[j], a)
	}
}

// Reshape sizes c to nJobs allocations of nRes resources each,
// reusing storage like CopyFrom. Contents are unspecified; callers
// must overwrite every entry.
func (c *Config) Reshape(nJobs, nRes int) {
	if cap(c.Jobs) < nJobs {
		c.Jobs = make([]Allocation, nJobs)
	}
	c.Jobs = c.Jobs[:nJobs]
	for j := range c.Jobs {
		if cap(c.Jobs[j]) < nRes {
			c.Jobs[j] = make(Allocation, nRes)
		}
		c.Jobs[j] = c.Jobs[j][:nRes]
	}
}

// NumJobs returns the number of co-located jobs in the config.
func (c Config) NumJobs() int { return len(c.Jobs) }

// Equal reports whether two configs allocate identically.
func (c Config) Equal(o Config) bool {
	if len(c.Jobs) != len(o.Jobs) {
		return false
	}
	for j := range c.Jobs {
		if len(c.Jobs[j]) != len(o.Jobs[j]) {
			return false
		}
		for r := range c.Jobs[j] {
			if c.Jobs[j][r] != o.Jobs[j][r] {
				return false
			}
		}
	}
	return true
}

// Key returns a compact string key for use in maps/dedup caches.
func (c Config) Key() string {
	var b strings.Builder
	for j, a := range c.Jobs {
		if j > 0 {
			b.WriteByte('|')
		}
		for r, u := range a {
			if r > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", u)
		}
	}
	return b.String()
}

// String renders the config for logs: "job0[c=4 w=3 ...] job1[...]".
func (c Config) String() string { return c.Key() }

// Validate checks feasibility against the topology: every job gets at
// least one unit of every resource and each resource's units sum to
// exactly the topology's total.
func (c Config) Validate(t Topology) error {
	for j, a := range c.Jobs {
		if len(a) != len(t) {
			return fmt.Errorf("resource: job %d has %d resource entries, topology has %d", j, len(a), len(t))
		}
	}
	for r, s := range t {
		sum := 0
		for j, a := range c.Jobs {
			if a[r] < 1 {
				return fmt.Errorf("resource: job %d gets %d units of %s, minimum is 1", j, a[r], s.Kind)
			}
			sum += a[r]
		}
		if sum != s.Units {
			return fmt.Errorf("resource: %s units sum to %d, want %d", s.Kind, sum, s.Units)
		}
	}
	return nil
}

// Vector flattens the config to a float64 vector in job-major order
// (job 0's resources, then job 1's, ...), the input representation of
// the Bayesian-optimization surrogate.
func (c Config) Vector() []float64 {
	if len(c.Jobs) == 0 {
		return nil
	}
	v := make([]float64, 0, len(c.Jobs)*len(c.Jobs[0]))
	for _, a := range c.Jobs {
		for _, u := range a {
			v = append(v, float64(u))
		}
	}
	return v
}

// VectorInto is Vector writing into dst (reused when capacity allows)
// — the allocation-free form for hot loops that flatten repeatedly.
func (c Config) VectorInto(dst []float64) []float64 {
	if len(c.Jobs) == 0 {
		return dst[:0]
	}
	n := len(c.Jobs) * len(c.Jobs[0])
	if cap(dst) < n {
		dst = make([]float64, 0, n)
	}
	dst = dst[:0]
	for _, a := range c.Jobs {
		for _, u := range a {
			dst = append(dst, float64(u))
		}
	}
	return dst
}

// EqualSplitInto is EqualSplit writing into a reused config.
func EqualSplitInto(t Topology, nJobs int, c *Config) {
	c.Reshape(nJobs, len(t))
	for r, s := range t {
		base := s.Units / nJobs
		rem := s.Units % nJobs
		for j := 0; j < nJobs; j++ {
			c.Jobs[j][r] = base
			if j < rem {
				c.Jobs[j][r]++
			}
		}
	}
}

// ExtremumInto is Extremum writing into a reused config.
func ExtremumInto(t Topology, nJobs, favored int, c *Config) {
	c.Reshape(nJobs, len(t))
	for r, s := range t {
		for j := 0; j < nJobs; j++ {
			if j == favored {
				c.Jobs[j][r] = s.Units - (nJobs - 1)
			} else {
				c.Jobs[j][r] = 1
			}
		}
	}
}

// FromVector reconstructs a config from a flattened vector produced by
// Vector (or by the continuous acquisition optimizer before rounding).
// Values are rounded to the nearest integer; it does NOT enforce
// feasibility — use RoundFeasible for that.
func FromVector(t Topology, nJobs int, v []float64) (Config, error) {
	if len(v) != nJobs*len(t) {
		return Config{}, fmt.Errorf("resource: vector length %d, want %d", len(v), nJobs*len(t))
	}
	c := NewConfig(t, nJobs)
	for j := 0; j < nJobs; j++ {
		for r := range t {
			c.Jobs[j][r] = int(math.Round(v[j*len(t)+r]))
		}
	}
	return c, nil
}

// EqualSplit divides every resource as evenly as possible among nJobs
// jobs (the first kind of bootstrapping sample in Sec. 4 of the
// paper). Remainder units go to the lowest-indexed jobs.
func EqualSplit(t Topology, nJobs int) Config {
	c := NewConfig(t, nJobs)
	for r, s := range t {
		base := s.Units / nJobs
		rem := s.Units % nJobs
		for j := 0; j < nJobs; j++ {
			c.Jobs[j][r] = base
			if j < rem {
				c.Jobs[j][r]++
			}
		}
	}
	return c
}

// Extremum gives job `favored` the maximum possible allocation of
// every resource while every other job keeps exactly one unit (the
// second kind of bootstrapping sample in Sec. 4).
func Extremum(t Topology, nJobs, favored int) Config {
	c := NewConfig(t, nJobs)
	for r, s := range t {
		for j := 0; j < nJobs; j++ {
			if j == favored {
				c.Jobs[j][r] = s.Units - (nJobs - 1)
			} else {
				c.Jobs[j][r] = 1
			}
		}
	}
	return c
}

// MaxUnitsPerJob returns the paper's Eq. 5 upper bound for one job's
// share of resource r: Nunits(r) − Njobs + 1.
func MaxUnitsPerJob(t Topology, nJobs, r int) int {
	return t[r].Units - nJobs + 1
}

// Distance returns the Euclidean distance between two configs in unit
// space, used by RAND+ to discard near-duplicate samples.
func Distance(a, b Config) float64 {
	var sum float64
	for j := range a.Jobs {
		for r := range a.Jobs[j] {
			d := float64(a.Jobs[j][r] - b.Jobs[j][r])
			sum += d * d
		}
	}
	return math.Sqrt(sum)
}

// Transfer moves n units of resource r from job `from` to job `to`,
// returning false (and leaving c untouched) if that would drop the
// donor below one unit. PARTIES' FSM and GENETIC's mutation operator
// are built on this primitive.
func (c Config) Transfer(r, from, to, n int) bool {
	if n <= 0 || from == to {
		return false
	}
	if c.Jobs[from][r]-n < 1 {
		return false
	}
	c.Jobs[from][r] -= n
	c.Jobs[to][r] += n
	return true
}
