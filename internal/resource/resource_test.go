package resource

import (
	"testing"
	"testing/quick"

	"clite/internal/stats"
)

func TestKindStringsAndTools(t *testing.T) {
	cases := []struct {
		k      Kind
		name   string
		tool   string
		method string
	}{
		{Cores, "cores", "taskset", "core affinity"},
		{LLCWays, "llc-ways", "Intel CAT", "way partitioning"},
		{MemBandwidth, "mem-bw", "Intel MBA", "bandwidth limiting"},
		{MemCapacity, "mem-cap", "memory cgroups", "capacity division"},
		{DiskBandwidth, "disk-bw", "blkio cgroups", "I/O bandwidth limiting"},
		{NetBandwidth, "net-bw", "qdisc", "network bandwidth limiting"},
	}
	for _, c := range cases {
		if c.k.String() != c.name {
			t.Errorf("String() = %q, want %q", c.k.String(), c.name)
		}
		if c.k.IsolationTool() != c.tool {
			t.Errorf("IsolationTool() = %q, want %q", c.k.IsolationTool(), c.tool)
		}
		if c.k.AllocationMethod() != c.method {
			t.Errorf("AllocationMethod() = %q, want %q", c.k.AllocationMethod(), c.method)
		}
	}
}

func TestDefaultTopology(t *testing.T) {
	topo := Default()
	if len(topo) != 5 {
		t.Fatalf("Default topology has %d resources, want 5", len(topo))
	}
	if topo[topo.Index(Cores)].Units != 20 {
		t.Error("default cores should be 20 (Table 2: 20 logical cores)")
	}
	if topo[topo.Index(LLCWays)].Units != 11 {
		t.Error("default LLC should have 11 ways (Table 2)")
	}
	if topo.Index(NetBandwidth) != -1 {
		t.Error("network bandwidth should not be in the default topology")
	}
}

func TestConfigCountMatchesPaperExample(t *testing.T) {
	// Paper Sec. 2: four jobs, three resources with 10 units each →
	// 592,704 configurations (= C(9,3)³ = 84³).
	topo := Small()
	if got := topo.ConfigCount(4); got != 592704 {
		t.Errorf("ConfigCount(4) = %d, want 592704", got)
	}
	if got := topo.ConfigCount(1); got != 1 {
		t.Errorf("ConfigCount(1) = %d, want 1", got)
	}
	if got := topo.ConfigCount(0); got != 0 {
		t.Errorf("ConfigCount(0) = %d, want 0", got)
	}
	// More jobs than the smallest resource's units: infeasible.
	if got := topo.ConfigCount(11); got != 0 {
		t.Errorf("ConfigCount(11) = %d, want 0", got)
	}
}

func TestDims(t *testing.T) {
	// Paper: 3 resources × 4 jobs → 12-dimensional space.
	if got := Small().Dims(4); got != 12 {
		t.Errorf("Dims = %d, want 12", got)
	}
}

func TestEqualSplit(t *testing.T) {
	topo := Default()
	cfg := EqualSplit(topo, 4)
	if err := cfg.Validate(topo); err != nil {
		t.Fatal(err)
	}
	// 11 ways / 4 jobs: three jobs get 3 ways, one gets 2 (the paper's
	// example: "3 set ways for all jobs except one in an 11-way cache").
	wi := topo.Index(LLCWays)
	threes, twos := 0, 0
	for _, a := range cfg.Jobs {
		switch a[wi] {
		case 3:
			threes++
		case 2:
			twos++
		}
	}
	if threes != 3 || twos != 1 {
		t.Errorf("LLC split = %v, want three 3s and one 2", cfg)
	}
}

func TestExtremum(t *testing.T) {
	topo := Default()
	cfg := Extremum(topo, 3, 1)
	if err := cfg.Validate(topo); err != nil {
		t.Fatal(err)
	}
	ci := topo.Index(Cores)
	if cfg.Jobs[1][ci] != 18 || cfg.Jobs[0][ci] != 1 || cfg.Jobs[2][ci] != 1 {
		t.Errorf("Extremum cores = %v", cfg)
	}
	if MaxUnitsPerJob(topo, 3, ci) != 18 {
		t.Errorf("MaxUnitsPerJob = %d, want 18", MaxUnitsPerJob(topo, 3, ci))
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	topo := Small()
	cfg := EqualSplit(topo, 2)
	cfg.Jobs[0][0] = 0
	cfg.Jobs[1][0] = 10
	if err := cfg.Validate(topo); err == nil {
		t.Error("expected error for zero allocation")
	}
	cfg = EqualSplit(topo, 2)
	cfg.Jobs[0][1] = 9 // breaks sum
	if err := cfg.Validate(topo); err == nil {
		t.Error("expected error for broken sum")
	}
	bad := Config{Jobs: []Allocation{{1, 2}}}
	if err := bad.Validate(topo); err == nil {
		t.Error("expected error for wrong arity")
	}
}

func TestVectorRoundTrip(t *testing.T) {
	topo := Small()
	cfg := EqualSplit(topo, 3)
	v := cfg.Vector()
	if len(v) != 9 {
		t.Fatalf("vector length = %d, want 9", len(v))
	}
	back, err := FromVector(topo, 3, v)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(cfg) {
		t.Errorf("round trip mismatch: %v vs %v", back, cfg)
	}
	if _, err := FromVector(topo, 3, v[:5]); err == nil {
		t.Error("expected error for short vector")
	}
}

func TestKeyAndEqual(t *testing.T) {
	topo := Small()
	a := EqualSplit(topo, 2)
	b := EqualSplit(topo, 2)
	if a.Key() != b.Key() || !a.Equal(b) {
		t.Error("identical configs should compare equal")
	}
	b.Jobs[0][0]++
	b.Jobs[1][0]--
	if a.Key() == b.Key() || a.Equal(b) {
		t.Error("different configs should not compare equal")
	}
	if a.Equal(Config{}) {
		t.Error("configs with different job counts should differ")
	}
}

func TestCloneIsDeep(t *testing.T) {
	topo := Small()
	a := EqualSplit(topo, 2)
	b := a.Clone()
	b.Jobs[0][0] = 99
	if a.Jobs[0][0] == 99 {
		t.Error("Clone must not alias")
	}
}

func TestTransfer(t *testing.T) {
	topo := Small()
	cfg := EqualSplit(topo, 2) // 5/5 per resource
	if !cfg.Transfer(0, 0, 1, 2) {
		t.Fatal("transfer should succeed")
	}
	if cfg.Jobs[0][0] != 3 || cfg.Jobs[1][0] != 7 {
		t.Errorf("after transfer: %v", cfg)
	}
	if err := cfg.Validate(topo); err != nil {
		t.Fatal(err)
	}
	if cfg.Transfer(0, 0, 1, 3) {
		t.Error("transfer below one unit must fail")
	}
	if cfg.Jobs[0][0] != 3 {
		t.Error("failed transfer must not mutate")
	}
	if cfg.Transfer(0, 0, 0, 1) {
		t.Error("self transfer must fail")
	}
	if cfg.Transfer(0, 1, 0, 0) {
		t.Error("zero-unit transfer must fail")
	}
}

func TestDistance(t *testing.T) {
	topo := Small()
	a := EqualSplit(topo, 2)
	if got := Distance(a, a); got != 0 {
		t.Errorf("Distance(a,a) = %v", got)
	}
	b := a.Clone()
	b.Transfer(0, 0, 1, 2) // changes two entries by 2 → distance √8
	if got := Distance(a, b); got < 2.82 || got > 2.83 {
		t.Errorf("Distance = %v, want √8", got)
	}
}

func TestForEachCompositionCountsAndValidity(t *testing.T) {
	count := 0
	ForEachComposition(6, 3, 1, func(shares []int) bool {
		sum := 0
		for _, s := range shares {
			if s < 1 {
				t.Fatalf("share < 1: %v", shares)
			}
			sum += s
		}
		if sum != 6 {
			t.Fatalf("bad sum: %v", shares)
		}
		count++
		return true
	})
	// C(5,2) = 10 compositions of 6 into 3 positive parts.
	if count != 10 {
		t.Errorf("composition count = %d, want 10", count)
	}
}

func TestForEachCompositionEarlyStop(t *testing.T) {
	count := 0
	done := ForEachComposition(6, 3, 1, func([]int) bool {
		count++
		return count < 3
	})
	if done || count != 3 {
		t.Errorf("early stop: done=%v count=%d", done, count)
	}
}

func TestForEachCompositionStrideCoarsens(t *testing.T) {
	fine, coarse := 0, 0
	ForEachComposition(10, 2, 1, func([]int) bool { fine++; return true })
	ForEachComposition(10, 2, 3, func(shares []int) bool {
		coarse++
		if shares[0]+shares[1] != 10 {
			t.Fatalf("bad sum with stride: %v", shares)
		}
		return true
	})
	if coarse >= fine {
		t.Errorf("stride should reduce samples: %d vs %d", coarse, fine)
	}
	if coarse == 0 {
		t.Error("stride enumeration produced nothing")
	}
}

func TestForEachConfigMatchesConfigCount(t *testing.T) {
	topo := Topology{
		{Kind: Cores, Units: 5},
		{Kind: LLCWays, Units: 4},
	}
	count := int64(0)
	ForEachConfig(topo, 2, 1, func(c Config) bool {
		if err := c.Validate(topo); err != nil {
			t.Fatal(err)
		}
		count++
		return true
	})
	if want := topo.ConfigCount(2); count != want {
		t.Errorf("enumerated %d configs, formula says %d", count, want)
	}
}

func TestForEachConfigReusesBuffer(t *testing.T) {
	topo := Topology{{Kind: Cores, Units: 3}}
	var first Config
	i := 0
	ForEachConfig(topo, 2, 1, func(c Config) bool {
		if i == 0 {
			first = c // intentionally NOT cloned
		}
		i++
		return true
	})
	// Documented behaviour: the callback config is reused, so `first`
	// now reflects the last enumerated config, not the first.
	if i > 1 && first.Jobs[0][0] == 1 {
		t.Error("expected the non-cloned config to have been overwritten (documented reuse)")
	}
}

func TestRandomConfigAlwaysFeasible(t *testing.T) {
	rng := stats.NewRNG(3)
	topo := Default()
	for i := 0; i < 500; i++ {
		nJobs := 2 + rng.Intn(4)
		cfg := Random(topo, nJobs, rng)
		if err := cfg.Validate(topo); err != nil {
			t.Fatalf("random config infeasible: %v (%v)", err, cfg)
		}
	}
}

func TestRandomConfigCoversSpace(t *testing.T) {
	rng := stats.NewRNG(5)
	topo := Topology{{Kind: Cores, Units: 4}}
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		seen[Random(topo, 2, rng).Key()] = true
	}
	// Compositions of 4 into 2 parts: 1+3, 2+2, 3+1.
	if len(seen) != 3 {
		t.Errorf("random sampling found %d distinct configs, want 3", len(seen))
	}
}

func TestRoundFeasibleProperty(t *testing.T) {
	topo := Default()
	rng := stats.NewRNG(17)
	f := func(seed int64, jobsByte uint8) bool {
		nJobs := 2 + int(jobsByte%4)
		local := rng.Split(seed)
		v := make([]float64, nJobs*len(topo))
		for i := range v {
			v[i] = local.Float64() * 25 // may exceed caps and violate sums
		}
		cfg := RoundFeasible(topo, nJobs, v)
		return cfg.Validate(topo) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRoundFeasiblePreservesExactInput(t *testing.T) {
	topo := Small()
	cfg := EqualSplit(topo, 2)
	got := RoundFeasible(topo, 2, cfg.Vector())
	if !got.Equal(cfg) {
		t.Errorf("RoundFeasible changed an already-feasible config: %v -> %v", cfg, got)
	}
}
