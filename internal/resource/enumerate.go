package resource

import (
	"sort"

	"clite/internal/stats"
)

// ForEachComposition enumerates the ways to split `units` whole units
// among `parts` jobs with every part ≥ 1, invoking fn for each. With
// stride > 1 only every stride-th value is tried for the first
// parts−1 shares (the last share absorbs the remainder), which is how
// the ORACLE policy coarsens otherwise intractable spaces. fn returns
// false to stop early; ForEachComposition reports whether enumeration
// ran to completion. The slice passed to fn is reused across calls.
func ForEachComposition(units, parts, stride int, fn func([]int) bool) bool {
	if parts <= 0 || units < parts {
		return true
	}
	if stride < 1 {
		stride = 1
	}
	shares := make([]int, parts)
	var rec func(idx, remaining int) bool
	rec = func(idx, remaining int) bool {
		if idx == parts-1 {
			shares[idx] = remaining
			return fn(shares)
		}
		// Leave at least one unit for each remaining job.
		maxHere := remaining - (parts - 1 - idx)
		for v := 1; v <= maxHere; v += stride {
			shares[idx] = v
			if !rec(idx+1, remaining-v) {
				return false
			}
		}
		return true
	}
	return rec(0, units)
}

// ForEachConfig enumerates the cross product of per-resource
// compositions over the topology — every feasible Config when
// stride == 1, a coarse grid otherwise. fn returns false to stop; the
// Config passed to fn is reused, so clone it before retaining.
// ForEachConfig reports whether enumeration completed.
func ForEachConfig(t Topology, nJobs, stride int, fn func(Config) bool) bool {
	if nJobs <= 0 {
		return true
	}
	cfg := NewConfig(t, nJobs)
	var rec func(r int) bool
	rec = func(r int) bool {
		if r == len(t) {
			return fn(cfg)
		}
		return ForEachComposition(t[r].Units, nJobs, stride, func(shares []int) bool {
			for j := 0; j < nJobs; j++ {
				cfg.Jobs[j][r] = shares[j]
			}
			return rec(r + 1)
		})
	}
	return rec(0)
}

// CompositionCount returns how many compositions ForEachComposition
// enumerates for the given units/parts/stride.
func CompositionCount(units, parts, stride int) int {
	n := 0
	ForEachComposition(units, parts, stride, func([]int) bool {
		n++
		return true
	})
	return n
}

// ForEachConfigShard enumerates shard `shard` of `shards` disjoint
// slices of exactly the sequence ForEachConfig walks, passing each
// config's global enumeration index alongside it. Sharding is by the
// first resource's composition index (outer loop) modulo shards, so a
// shard pays the inner cross-product cost only for its own residue
// class — the union over all shards is the full enumeration, each
// index visited exactly once, in increasing order within a shard.
// This is what lets the ORACLE sweep fan out without every worker
// re-walking the whole grid. fn returns false to stop this shard; the
// Config is reused across calls, so clone it before retaining.
func ForEachConfigShard(t Topology, nJobs, stride, shard, shards int, fn func(idx int, cfg Config) bool) bool {
	if nJobs <= 0 {
		return true
	}
	if shards < 1 {
		shards = 1
	}
	cfg := NewConfig(t, nJobs)
	if len(t) == 0 {
		if shard == 0 {
			return fn(0, cfg)
		}
		return true
	}
	inner := 1
	for r := 1; r < len(t); r++ {
		inner *= CompositionCount(t[r].Units, nJobs, stride)
	}
	var rec func(r, base int) bool
	idx := 0
	rec = func(r, base int) bool {
		if r == len(t) {
			ok := fn(base+idx, cfg)
			idx++
			return ok
		}
		return ForEachComposition(t[r].Units, nJobs, stride, func(shares []int) bool {
			for j := 0; j < nJobs; j++ {
				cfg.Jobs[j][r] = shares[j]
			}
			return rec(r+1, base)
		})
	}
	outer := 0
	return ForEachComposition(t[0].Units, nJobs, stride, func(shares []int) bool {
		o := outer
		outer++
		if o%shards != shard {
			return true
		}
		for j := 0; j < nJobs; j++ {
			cfg.Jobs[j][0] = shares[j]
		}
		idx = 0
		return rec(1, o*inner)
	})
}

// Random draws a partition configuration uniformly at random from the
// space of feasible configs: per resource, a uniform composition of
// Units into nJobs positive parts (via a random (nJobs−1)-subset of
// cut positions).
func Random(t Topology, nJobs int, rng *stats.RNG) Config {
	c := NewConfig(t, nJobs)
	var cuts []int
	randomInto(t, nJobs, rng, &c, &cuts)
	return c
}

// RandomInto is Random writing into a reused config, with the cut
// scratch threaded through *cuts — the allocation-free form for the
// acquisition maximizer's random restarts. It consumes the identical
// RNG sequence as Random (same draws, same duplicate rejections), so
// the two produce the same configuration stream from the same state.
func RandomInto(t Topology, nJobs int, rng *stats.RNG, c *Config, cuts *[]int) {
	c.Reshape(nJobs, len(t))
	randomInto(t, nJobs, rng, c, cuts)
}

func randomInto(t Topology, nJobs int, rng *stats.RNG, c *Config, cutsBuf *[]int) {
	for r, s := range t {
		cuts := randomCuts(s.Units, nJobs, rng, cutsBuf)
		prev := 0
		for j := 0; j < nJobs; j++ {
			c.Jobs[j][r] = cuts[j] - prev
			prev = cuts[j]
		}
	}
}

// randomCuts returns nJobs ascending cut positions in (0, units] with
// the last fixed at units, such that consecutive differences are ≥ 1.
// Duplicate draws are rejected by a linear membership scan (nJobs is
// tiny), which keeps the buffer from *buf the only storage touched.
func randomCuts(units, nJobs int, rng *stats.RNG, buf *[]int) []int {
	// Choose nJobs−1 distinct values from 1..units−1.
	cuts := (*buf)[:0]
	for len(cuts) < nJobs-1 {
		v := 1 + rng.Intn(units-1)
		dup := false
		for _, u := range cuts {
			if u == v {
				dup = true
				break
			}
		}
		if !dup {
			cuts = append(cuts, v)
		}
	}
	cuts = append(cuts, units)
	sort.Ints(cuts)
	*buf = cuts
	return cuts
}

// RoundFeasible converts a continuous job-major vector (as produced by
// the acquisition optimizer) into a feasible integer Config: per
// resource it rounds by largest remainder while enforcing the [1,
// Units−Njobs+1] per-job bounds and the exact unit sum. This is the
// integer-projection step that follows the paper's SLSQP-style
// continuous maximization of Eq. 4–6.
func RoundFeasible(t Topology, nJobs int, v []float64) Config {
	c := NewConfig(t, nJobs)
	var s RoundScratch
	roundFeasibleInto(t, nJobs, v, &c, &s)
	return c
}

// jobFrac is one job's fractional remainder during largest-remainder
// rounding.
type jobFrac struct {
	job  int
	frac float64
}

// RoundScratch holds RoundFeasibleInto's reusable buffers.
type RoundScratch struct {
	floors []int
	fracs  []jobFrac
}

func (s *RoundScratch) grow(n int) {
	if cap(s.floors) < n {
		s.floors = make([]int, n)
		s.fracs = make([]jobFrac, n)
	}
	s.floors = s.floors[:n]
	s.fracs = s.fracs[:n]
}

// RoundFeasibleInto is RoundFeasible writing into a reused config with
// caller-owned scratch — the allocation-free form for the BO engine's
// per-iteration integer projection. Results are identical to
// RoundFeasible.
func RoundFeasibleInto(t Topology, nJobs int, v []float64, c *Config, s *RoundScratch) {
	c.Reshape(nJobs, len(t))
	roundFeasibleInto(t, nJobs, v, c, s)
}

func roundFeasibleInto(t Topology, nJobs int, v []float64, c *Config, scratch *RoundScratch) {
	nres := len(t)
	scratch.grow(nJobs)
	floors, fracs := scratch.floors, scratch.fracs
	for r, s := range t {
		maxPer := MaxUnitsPerJob(t, nJobs, r)
		// Start from clamped floors.
		sum := 0
		for j := 0; j < nJobs; j++ {
			x := v[j*nres+r]
			if x < 1 {
				x = 1
			}
			if x > float64(maxPer) {
				x = float64(maxPer)
			}
			f := int(x)
			floors[j] = f
			fracs[j] = jobFrac{job: j, frac: x - float64(f)}
			sum += f
		}
		// Distribute the deficit to the largest fractional parts
		// (largest-remainder rounding), respecting the per-job cap.
		// The stable insertion sort reproduces what sort.Slice did
		// here for any realistic job count (pdqsort IS insertion sort
		// below its 12-element cutoff), without its allocations.
		deficit := s.Units - sum
		for i := 1; i < nJobs; i++ {
			for j := i; j > 0 && fracs[j].frac > fracs[j-1].frac; j-- {
				fracs[j], fracs[j-1] = fracs[j-1], fracs[j]
			}
		}
		for i := 0; deficit > 0; i = (i + 1) % nJobs {
			j := fracs[i].job
			if floors[j] < maxPer {
				floors[j]++
				deficit--
			} else if allAtCap(floors, maxPer) {
				break
			}
		}
		// If we overshot (floors summed above Units because of the
		// ≥1 clamps), take units back from the largest shares.
		for deficit < 0 {
			j := argMaxInt(floors)
			if floors[j] <= 1 {
				break
			}
			floors[j]--
			deficit++
		}
		for j := 0; j < nJobs; j++ {
			c.Jobs[j][r] = floors[j]
		}
	}
}

func allAtCap(xs []int, cap int) bool {
	for _, x := range xs {
		if x < cap {
			return false
		}
	}
	return true
}

func argMaxInt(xs []int) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
