package resource

import (
	"sort"

	"clite/internal/stats"
)

// ForEachComposition enumerates the ways to split `units` whole units
// among `parts` jobs with every part ≥ 1, invoking fn for each. With
// stride > 1 only every stride-th value is tried for the first
// parts−1 shares (the last share absorbs the remainder), which is how
// the ORACLE policy coarsens otherwise intractable spaces. fn returns
// false to stop early; ForEachComposition reports whether enumeration
// ran to completion. The slice passed to fn is reused across calls.
func ForEachComposition(units, parts, stride int, fn func([]int) bool) bool {
	if parts <= 0 || units < parts {
		return true
	}
	if stride < 1 {
		stride = 1
	}
	shares := make([]int, parts)
	var rec func(idx, remaining int) bool
	rec = func(idx, remaining int) bool {
		if idx == parts-1 {
			shares[idx] = remaining
			return fn(shares)
		}
		// Leave at least one unit for each remaining job.
		maxHere := remaining - (parts - 1 - idx)
		for v := 1; v <= maxHere; v += stride {
			shares[idx] = v
			if !rec(idx+1, remaining-v) {
				return false
			}
		}
		return true
	}
	return rec(0, units)
}

// ForEachConfig enumerates the cross product of per-resource
// compositions over the topology — every feasible Config when
// stride == 1, a coarse grid otherwise. fn returns false to stop; the
// Config passed to fn is reused, so clone it before retaining.
// ForEachConfig reports whether enumeration completed.
func ForEachConfig(t Topology, nJobs, stride int, fn func(Config) bool) bool {
	if nJobs <= 0 {
		return true
	}
	cfg := NewConfig(t, nJobs)
	var rec func(r int) bool
	rec = func(r int) bool {
		if r == len(t) {
			return fn(cfg)
		}
		return ForEachComposition(t[r].Units, nJobs, stride, func(shares []int) bool {
			for j := 0; j < nJobs; j++ {
				cfg.Jobs[j][r] = shares[j]
			}
			return rec(r + 1)
		})
	}
	return rec(0)
}

// Random draws a partition configuration uniformly at random from the
// space of feasible configs: per resource, a uniform composition of
// Units into nJobs positive parts (via a random (nJobs−1)-subset of
// cut positions).
func Random(t Topology, nJobs int, rng *stats.RNG) Config {
	c := NewConfig(t, nJobs)
	for r, s := range t {
		cuts := randomCuts(s.Units, nJobs, rng)
		prev := 0
		for j := 0; j < nJobs; j++ {
			c.Jobs[j][r] = cuts[j] - prev
			prev = cuts[j]
		}
	}
	return c
}

// randomCuts returns nJobs ascending cut positions in (0, units] with
// the last fixed at units, such that consecutive differences are ≥ 1.
func randomCuts(units, nJobs int, rng *stats.RNG) []int {
	// Choose nJobs−1 distinct values from 1..units−1.
	chosen := make(map[int]bool, nJobs-1)
	cuts := make([]int, 0, nJobs)
	for len(cuts) < nJobs-1 {
		v := 1 + rng.Intn(units-1)
		if !chosen[v] {
			chosen[v] = true
			cuts = append(cuts, v)
		}
	}
	cuts = append(cuts, units)
	sort.Ints(cuts)
	return cuts
}

// RoundFeasible converts a continuous job-major vector (as produced by
// the acquisition optimizer) into a feasible integer Config: per
// resource it rounds by largest remainder while enforcing the [1,
// Units−Njobs+1] per-job bounds and the exact unit sum. This is the
// integer-projection step that follows the paper's SLSQP-style
// continuous maximization of Eq. 4–6.
func RoundFeasible(t Topology, nJobs int, v []float64) Config {
	c := NewConfig(t, nJobs)
	nres := len(t)
	for r, s := range t {
		maxPer := MaxUnitsPerJob(t, nJobs, r)
		// Start from clamped floors.
		type rem struct {
			job  int
			frac float64
		}
		floors := make([]int, nJobs)
		fracs := make([]rem, nJobs)
		sum := 0
		for j := 0; j < nJobs; j++ {
			x := v[j*nres+r]
			if x < 1 {
				x = 1
			}
			if x > float64(maxPer) {
				x = float64(maxPer)
			}
			f := int(x)
			floors[j] = f
			fracs[j] = rem{job: j, frac: x - float64(f)}
			sum += f
		}
		// Distribute the deficit to the largest fractional parts
		// (largest-remainder rounding), respecting the per-job cap.
		deficit := s.Units - sum
		sort.Slice(fracs, func(a, b int) bool { return fracs[a].frac > fracs[b].frac })
		for i := 0; deficit > 0; i = (i + 1) % nJobs {
			j := fracs[i].job
			if floors[j] < maxPer {
				floors[j]++
				deficit--
			} else if allAtCap(floors, maxPer) {
				break
			}
		}
		// If we overshot (floors summed above Units because of the
		// ≥1 clamps), take units back from the largest shares.
		for deficit < 0 {
			j := argMaxInt(floors)
			if floors[j] <= 1 {
				break
			}
			floors[j]--
			deficit++
		}
		for j := 0; j < nJobs; j++ {
			c.Jobs[j][r] = floors[j]
		}
	}
	return c
}

func allAtCap(xs []int, cap int) bool {
	for _, x := range xs {
		if x < cap {
			return false
		}
	}
	return true
}

func argMaxInt(xs []int) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
