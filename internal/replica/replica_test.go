package replica

import (
	"errors"
	"fmt"
	"testing"

	"clite/internal/cluster"
	"clite/internal/faults"
	"clite/internal/telemetry"
)

// testSched is the scheduler config every test group replicates: small
// cluster, tight screening budget, fixed seed.
func testSched(seed int64) cluster.Options {
	return cluster.Options{Nodes: 3, Seed: seed, ScreenIterations: 12, ScreenWorkers: 1}
}

var testReqs = []cluster.Request{
	{Workload: "img-dnn", Load: 0.2},
	{Workload: "memcached", Load: 0.2},
	{Workload: "swaptions"},
	{Workload: "xapian", Load: 0.2},
	{Workload: "memcached", Load: 0.2},
}

// referenceDigests replays the request stream through one plain,
// unreplicated scheduler — the uninterrupted single-controller run the
// acceptance criterion compares against.
func referenceDigests(t *testing.T, opts cluster.Options, reqs []cluster.Request) []string {
	t.Helper()
	s := cluster.New(opts)
	var out []string
	for _, req := range reqs {
		p, err := s.Place(req)
		unplaceable := errors.Is(err, cluster.ErrUnplaceable)
		if err != nil && !unplaceable {
			t.Fatal(err)
		}
		out = append(out, PlaceDigest(req, p, unplaceable))
	}
	return out
}

func digestsOf(ds []Decision) []string {
	var out []string
	for _, d := range ds {
		out = append(out, d.Digest)
	}
	return out
}

func TestGroupMatchesUnreplicatedScheduler(t *testing.T) {
	g, err := NewGroup(Options{Scheduler: testSched(21)})
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range testReqs {
		if _, err := g.Place(req); err != nil && !errors.Is(err, cluster.ErrUnplaceable) {
			t.Fatal(err)
		}
	}
	want := referenceDigests(t, testSched(21), testReqs)
	got := digestsOf(g.Decisions())
	if len(got) != len(want) {
		t.Fatalf("committed %d decisions, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("decision %d diverges from the unreplicated run:\n  group: %s\n  ref:   %s", i, got[i], want[i])
		}
	}
	st := g.Status()
	if st.Leader != 0 || st.Term != 1 || st.Degraded {
		t.Errorf("healthy group status %+v: want leader 0, term 1, not degraded", st)
	}
	if st.Commands != len(testReqs) {
		t.Errorf("commands %d, want %d", st.Commands, len(testReqs))
	}
}

func TestFailoverKeepsDecisionsByteIdentical(t *testing.T) {
	// The acceptance scenario: the leader is killed mid-stream by a
	// scheduled controller-death fault; the client retries through the
	// outage; the surviving replicas elect within the lease window and
	// the full decision stream is byte-identical to the uninterrupted
	// single-controller run.
	tr, reg := telemetry.NewTracer(), telemetry.NewRegistry()
	g, err := NewGroup(Options{
		Scheduler: testSched(22),
		Lease:     5,
		Faults:    faults.ControlPlan{LeaderDeathAt: []float64{2.5}},
		Trace:     tr,
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := &Client{Group: g}
	for _, req := range testReqs {
		if _, err := c.Place(req); err != nil && !errors.Is(err, cluster.ErrUnplaceable) {
			t.Fatal(err)
		}
	}
	want := referenceDigests(t, testSched(22), testReqs)
	got := digestsOf(g.Decisions())
	if len(got) != len(want) {
		t.Fatalf("committed %d decisions through the failover, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("decision %d diverges across the failover:\n  group: %s\n  ref:   %s", i, got[i], want[i])
		}
	}
	st := g.Status()
	if st.Leader != 1 || st.Term != 2 {
		t.Errorf("after failover: %+v, want leader 1 term 2", st)
	}
	if st.Alive != 2 || st.Degraded {
		t.Errorf("2/3 alive keeps quorum: %+v", st)
	}
	// The trace must carry the full failover timeline with a bounded
	// unavailability window: lease plus the client's retry
	// discretization (max backoff delay + one request interval).
	var died, elected, completed int
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case telemetry.KindReplicaDied:
			died++
		case telemetry.KindLeaderElected:
			elected++
		case telemetry.KindFailoverComplete:
			completed++
			bound := 5.0 + (Backoff{}).max() + 1.0
			if ev.Value <= 0 || ev.Value > bound {
				t.Errorf("unavailability window %v outside (0, %v]", ev.Value, bound)
			}
		}
	}
	if died != 1 || elected != 2 || completed != 1 {
		t.Errorf("events died=%d elected=%d completed=%d, want 1/2/1", died, elected, completed)
	}
	if reg.Counter("replica_client_retries_total").Value() == 0 {
		t.Error("the outage must have cost the client at least one retry")
	}
	if v := reg.Counter("replica_divergences_total").Value(); v != 0 {
		t.Errorf("divergences = %d, want 0", v)
	}
}

func TestFailNodeReplicatedMatchesReference(t *testing.T) {
	run := func(replicated bool) string {
		opts := testSched(23)
		var outcomes []cluster.Outcome
		if replicated {
			g, err := NewGroup(Options{Scheduler: opts})
			if err != nil {
				t.Fatal(err)
			}
			for _, req := range testReqs[:3] {
				if _, err := g.Place(req); err != nil {
					t.Fatal(err)
				}
			}
			outcomes, err = g.FailNode(0)
			if err != nil {
				t.Fatal(err)
			}
		} else {
			s := cluster.New(opts)
			for _, req := range testReqs[:3] {
				if _, err := s.Place(req); err != nil {
					t.Fatal(err)
				}
			}
			var err error
			outcomes, err = s.FailNode(0)
			if err != nil {
				t.Fatal(err)
			}
		}
		return FailDigest(0, outcomes)
	}
	if got, want := run(true), run(false); got != want {
		t.Errorf("replicated fail-node diverges:\n  group: %s\n  ref:   %s", got, want)
	}
}

func TestQuorumLossDegradesReadOnly(t *testing.T) {
	g, err := NewGroup(Options{Scheduler: testSched(24)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Place(testReqs[0]); err != nil {
		t.Fatal(err)
	}
	snapBefore := g.Snapshot()
	if err := g.Kill(1); err != nil {
		t.Fatal(err)
	}
	// 2/3 alive: still writable.
	if _, err := g.Place(testReqs[1]); err != nil {
		t.Fatalf("quorum of 2/3 must keep serving writes: %v", err)
	}
	if err := g.Kill(2); err != nil {
		t.Fatal(err)
	}
	// 1/3 alive: reads serve, writes reject with the typed sentinel.
	_, err = g.Place(testReqs[2])
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("want ErrDegraded, got %v", err)
	}
	if Retryable(err) {
		t.Error("ErrDegraded is not transient; clients must not spin on it")
	}
	if _, err := g.FailNode(0); !errors.Is(err, ErrDegraded) {
		t.Errorf("degraded FailNode: want ErrDegraded, got %v", err)
	}
	st := g.Status()
	if !st.Degraded || st.Alive != 1 {
		t.Errorf("status %+v: want degraded with 1 alive", st)
	}
	if st.Commands != 2 {
		t.Errorf("commands %d, want the 2 committed before quorum loss", st.Commands)
	}
	snap := g.Snapshot()
	if len(snap) == 0 {
		t.Fatal("degraded group must keep serving the last-safe snapshot")
	}
	if len(snapBefore) != len(snap) {
		t.Errorf("snapshot shape changed: %d vs %d nodes", len(snapBefore), len(snap))
	}
	// Killing the survivor too: reads still serve from the cache.
	if err := g.Kill(0); err != nil {
		t.Fatal(err)
	}
	if len(g.Snapshot()) == 0 {
		t.Error("snapshot must survive even total controller loss")
	}
	if (g.Stats() != cluster.Stats{}) {
		t.Error("stats with every replica dead should be zeros")
	}
}

func TestRPCFaultsRetryDeterministically(t *testing.T) {
	run := func() ([]string, int64, int64) {
		reg := telemetry.NewRegistry()
		g, err := NewGroup(Options{
			Scheduler: testSched(25),
			Faults:    faults.ControlPlan{Seed: 7, RPCLoss: 0.3, RPCDelay: 0.3, RPCDelayMean: 0.4},
			Metrics:   reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		c := &Client{Group: g}
		for _, req := range testReqs {
			if _, err := c.Place(req); err != nil && !errors.Is(err, cluster.ErrUnplaceable) {
				t.Fatal(err)
			}
		}
		return digestsOf(g.Decisions()),
			reg.Counter("replica_rpc_lost_total").Value(),
			reg.Counter("replica_rpc_delayed_total").Value()
	}
	d1, lost1, delayed1 := run()
	d2, lost2, delayed2 := run()
	if fmt.Sprint(d1) != fmt.Sprint(d2) || lost1 != lost2 || delayed1 != delayed2 {
		t.Fatalf("lossy runs diverge: (%v,%d,%d) vs (%v,%d,%d)", d1, lost1, delayed1, d2, lost2, delayed2)
	}
	if lost1 == 0 {
		t.Error("a 30% loss rate over 5+ submissions should drop at least one RPC")
	}
	// The decision stream itself must be unperturbed by the RPC faults.
	want := referenceDigests(t, testSched(25), testReqs)
	for i := range want {
		if d1[i] != want[i] {
			t.Errorf("decision %d perturbed by RPC faults:\n  got:  %s\n  want: %s", i, d1[i], want[i])
		}
	}
}

func TestClientTimesOutDuringEndlessOutage(t *testing.T) {
	// A lease far beyond the client's budget: the election cannot
	// complete within the timeout, so the client must give up with the
	// typed timeout error, not spin forever.
	g, err := NewGroup(Options{
		Scheduler: testSched(26),
		Lease:     1e6,
		Faults:    faults.ControlPlan{LeaderDeathAt: []float64{0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := &Client{Group: g, MaxAttempts: 20, Timeout: 10}
	_, err = c.Place(testReqs[0])
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if !errors.Is(err, ErrNoLeader) {
		t.Errorf("the wrapped last error should still identify the outage: %v", err)
	}
}

func TestBackoffSchedule(t *testing.T) {
	b := Backoff{Base: 0.25, Max: 4}
	want := []float64{0.25, 0.5, 1, 2, 4, 4, 4}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
	if d := (Backoff{}).Delay(0); d != 0.25 {
		t.Errorf("zero-value base delay = %v, want 0.25", d)
	}
}

func TestNewGroupValidation(t *testing.T) {
	if _, err := NewGroup(Options{Replicas: 1}); err == nil {
		t.Error("a single replica is not a replicated group")
	}
	if _, err := NewGroup(Options{Replicas: 99}); err == nil {
		t.Error("absurd group sizes must be rejected")
	}
	_, err := NewGroup(Options{Faults: faults.ControlPlan{DeathRate: -1}})
	if !errors.Is(err, faults.ErrInvalidPlan) {
		t.Errorf("invalid control plan: want ErrInvalidPlan, got %v", err)
	}
	_, err = NewGroup(Options{Scheduler: cluster.Options{Faults: faults.Plan{Transient: 2}}})
	if !errors.Is(err, faults.ErrInvalidPlan) {
		t.Errorf("invalid scheduler fault plan: want ErrInvalidPlan, got %v", err)
	}
	if err := (&Group{}).Kill(0); err == nil {
		t.Error("kill on an empty group must error, not panic")
	}
}

func TestKillValidation(t *testing.T) {
	g, err := NewGroup(Options{Scheduler: testSched(27)})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Kill(9); err == nil {
		t.Error("unknown replica id must be rejected")
	}
	if err := g.Kill(2); err != nil {
		t.Fatal(err)
	}
	if err := g.Kill(2); err == nil {
		t.Error("double kill must be rejected")
	}
}
