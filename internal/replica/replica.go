// Package replica wraps the cluster scheduler in a replicated control
// plane: a small group of controller replicas that run the same
// deterministic scheduler as a replicated state machine, so a
// warehouse-scale deployment survives the controller itself dying.
//
// The design leans on the property every other layer of this repo
// already enforces (and cmd/lint machine-checks): placement decisions
// are a pure function of (seed, request stream). Replication is
// therefore cheap — no consensus rounds over proposals are needed,
// only agreement on the command log. The leader sequences incoming
// requests into the log; every live replica applies the same log to
// its own scheduler and the group cross-checks that the resulting
// decisions are byte-identical (a digest mismatch is ErrDivergence —
// by construction it never fires, and the failover harness experiment
// proves that under leader churn).
//
// Time is simulated, never wall-clock: the group's clock advances with
// the request stream (Options.RequestInterval per submission) and with
// explicit Advance calls, so a seeded run — elections, deaths,
// unavailability windows and all — replays byte-identically. The
// leader holds a lease that it implicitly renews while alive; when a
// controller-death fault kills it, the group serves nothing until the
// lease expires (clients see retryable ErrNoLeader and back off), then
// deterministically elects the lowest-id live replica. Losing the
// quorum instead degrades the group to read-only: snapshots and cached
// last-safe placements still serve, writes are rejected with a typed
// ErrDegraded.
package replica

import (
	"errors"
	"fmt"
	"strings"

	"clite/internal/cluster"
)

// Op is a command kind in the replicated log.
type Op string

const (
	// OpPlace asks the scheduler to place one job request.
	OpPlace Op = "place"
	// OpFailNode marks a cluster node as lost and reschedules its jobs.
	OpFailNode Op = "fail-node"
)

// Command is one entry of the replicated log: the leader assigns the
// index, every replica applies the same entry in index order.
type Command struct {
	Index int             `json:"index"`
	Op    Op              `json:"op"`
	Req   cluster.Request `json:"req,omitempty"`  // OpPlace
	Node  int             `json:"node,omitempty"` // OpFailNode
}

// Decision is the committed outcome of one command. Digest is the
// canonical byte string the group compares across replicas; two
// replicas disagreeing on a digest is divergence.
type Decision struct {
	Index int
	Op    Op
	// Digest canonically serializes the outcome (see PlaceDigest and
	// FailDigest); replicas must agree on it byte-for-byte.
	Digest string
	// Placement is the OpPlace outcome when the job landed.
	Placement cluster.Placement
	// Unplaceable marks an OpPlace the whole cluster rejected — still a
	// committed, replicated decision.
	Unplaceable bool
	// Outcomes is the OpFailNode reschedule report.
	Outcomes []cluster.Outcome
}

// PlaceDigest canonically serializes a placement decision. The best
// partition is included in full: two replicas that picked the same
// node but a different partition have diverged just the same.
func PlaceDigest(req cluster.Request, p cluster.Placement, unplaceable bool) string {
	if unplaceable {
		return fmt.Sprintf("place %s@%g -> unplaceable", req.Workload, req.Load)
	}
	return fmt.Sprintf("place %s@%g -> node=%d qos=%v score=%.17g samples=%d cfg=%v",
		req.Workload, req.Load, p.Node, p.Result.QoSMeetable,
		p.Result.BestScore, p.Result.SamplesUsed, p.Result.Best.Jobs)
}

// FailDigest canonically serializes a fail-node reschedule: every
// drained job's new home (or its unrehomed verdict), in order.
func FailDigest(node int, outcomes []cluster.Outcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fail-node %d ->", node)
	for _, o := range outcomes {
		dst := fmt.Sprintf("node=%d", o.Node)
		if o.Err != nil {
			dst = "unrehomed"
		}
		fmt.Fprintf(&b, " [%s@%g from=%d %s]", o.Request.Workload, o.Request.Load, o.From, dst)
	}
	return b.String()
}

// Replica is one controller instance: a deterministic scheduler plus
// the log prefix it has applied. Replicas never talk to each other —
// the Group sequences the log and drives every live replica through
// it in lockstep.
type Replica struct {
	id      int
	sched   *cluster.Scheduler
	applied int
	alive   bool
}

// ID returns the replica's id.
func (r *Replica) ID() int { return r.id }

// Alive reports whether the replica is still up.
func (r *Replica) Alive() bool { return r.alive }

// Applied returns the number of log entries the replica has applied.
func (r *Replica) Applied() int { return r.applied }

// apply runs one command against the replica's scheduler and returns
// the decision. Sentinel rejections (ErrUnplaceable) are decisions,
// not errors; anything else is a hard error that fails the submission.
func (r *Replica) apply(cmd Command) (Decision, error) {
	if cmd.Index != r.applied {
		return Decision{}, fmt.Errorf("replica %d: log gap: applying %d, expected %d: %w",
			r.id, cmd.Index, r.applied, ErrDivergence)
	}
	d := Decision{Index: cmd.Index, Op: cmd.Op}
	switch cmd.Op {
	case OpPlace:
		p, err := r.sched.Place(cmd.Req)
		switch {
		case err == nil:
			d.Placement = p
		case errors.Is(err, cluster.ErrUnplaceable):
			d.Unplaceable = true
		default:
			return Decision{}, err
		}
		d.Digest = PlaceDigest(cmd.Req, p, d.Unplaceable)
	case OpFailNode:
		outcomes, err := r.sched.FailNode(cmd.Node)
		if err != nil {
			return Decision{}, err
		}
		d.Outcomes = outcomes
		d.Digest = FailDigest(cmd.Node, outcomes)
	default:
		return Decision{}, fmt.Errorf("replica %d: unknown op %q", r.id, cmd.Op)
	}
	r.applied++
	return d, nil
}
