package replica

import (
	"errors"
	"fmt"

	"clite/internal/cluster"
)

// ErrTimeout marks a request whose retry budget ran out before the
// group could serve it: the cumulative backoff exceeded the client's
// per-request timeout. The last transport error is wrapped alongside,
// so errors.Is matches both. Check with errors.Is.
var ErrTimeout = errors.New("replica: request timed out")

// Backoff is a capped exponential backoff schedule. It is a pure
// function of the attempt number — no jitter, no wall clock — so
// seeded runs that retry replay byte-identically. The zero value uses
// the defaults (0.25s base, 4s cap).
type Backoff struct {
	// Base is the delay before the first retry, in (simulated) seconds.
	Base float64
	// Max caps the exponential growth.
	Max float64
}

func (b Backoff) base() float64 {
	if b.Base > 0 {
		return b.Base
	}
	return 0.25
}

func (b Backoff) max() float64 {
	if b.Max > 0 {
		return b.Max
	}
	return 4
}

// Delay returns the wait before retry number attempt (attempt 0 is
// the first retry): Base·2^attempt capped at Max.
func (b Backoff) Delay(attempt int) float64 {
	d := b.base()
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= b.max() {
			return b.max()
		}
	}
	if d > b.max() {
		return b.max()
	}
	return d
}

// Client submits commands to a group with retry: transient errors
// (RPC loss, election pending) back off exponentially — advancing the
// group's simulated clock, which is exactly what lets a pending
// election complete — until the per-request timeout is spent. Typed
// rejections (ErrDegraded, cluster.ErrUnplaceable) and hard errors
// surface immediately.
type Client struct {
	// Group is the control plane the client talks to.
	Group *Group
	// MaxAttempts bounds submissions per request (default 8).
	MaxAttempts int
	// Backoff shapes the retry delays.
	Backoff Backoff
	// Timeout is the per-request budget in simulated seconds of
	// cumulative backoff (default 30s).
	Timeout float64
}

func (c *Client) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 8
}

func (c *Client) timeout() float64 {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 30
}

// do retries fn until it succeeds, fails hard, or the retry budget
// (attempts or cumulative backoff time) runs out.
func (c *Client) do(fn func() error) error {
	waited := 0.0
	var last error
	for attempt := 0; attempt < c.maxAttempts(); attempt++ {
		err := fn()
		if err == nil || !Retryable(err) {
			return err
		}
		last = err
		delay := c.Backoff.Delay(attempt)
		if waited+delay > c.timeout() {
			break
		}
		waited += delay
		c.Group.counters.retries.Inc()
		c.Group.Advance(delay)
	}
	return fmt.Errorf("replica: gave up after %.2fs of backoff: %w (last: %w)", waited, ErrTimeout, last)
}

// Place submits a placement request with retry.
func (c *Client) Place(req cluster.Request) (cluster.Placement, error) {
	var p cluster.Placement
	err := c.do(func() error {
		var err error
		p, err = c.Group.Place(req)
		return err
	})
	return p, err
}

// FailNode submits a node-loss command with retry.
func (c *Client) FailNode(node int) ([]cluster.Outcome, error) {
	var out []cluster.Outcome
	err := c.do(func() error {
		var err error
		out, err = c.Group.FailNode(node)
		return err
	})
	return out, err
}
