package replica

import (
	"errors"
	"fmt"
	"sync"

	"clite/internal/cluster"
	"clite/internal/faults"
	"clite/internal/telemetry"
)

// ErrDegraded marks a write rejected because the group lost its
// quorum: fewer than a majority of replicas are alive, so no new
// decisions may commit. Reads (Snapshot, Status, Decisions) keep
// serving from the last committed state. Check with errors.Is.
var ErrDegraded = errors.New("replica: quorum lost, group is read-only")

// ErrNoLeader marks a submission that arrived while the group had no
// leader — the previous one died and its lease has not expired yet.
// The request was not sequenced; retrying after a backoff succeeds
// once the deterministic election completes. Check with errors.Is.
var ErrNoLeader = errors.New("replica: no leader, election pending")

// ErrRPCLost marks a submission the (simulated) RPC fabric dropped in
// flight; the command was never sequenced and retrying is safe. Check
// with errors.Is.
var ErrRPCLost = errors.New("replica: rpc lost in flight")

// ErrDivergence marks two replicas committing different decisions for
// the same log entry. Placement is a deterministic function of (seed,
// request stream), so this never fires unless that contract is broken
// — which is exactly why the group cross-checks it on every command.
var ErrDivergence = errors.New("replica: replicas diverged")

// Retryable reports whether the error is transient from the client's
// point of view: the command was not committed and a retry with
// backoff can succeed (RPC loss, election pending).
func Retryable(err error) bool {
	return errors.Is(err, ErrRPCLost) || errors.Is(err, ErrNoLeader)
}

// Options configures a replica group.
type Options struct {
	// Replicas is the group size (default 3). Two tolerate zero deaths
	// with quorum; three tolerate one.
	Replicas int
	// Scheduler configures every replica's scheduler identically —
	// same seed, same knobs — which is what makes the replicas a
	// replicated state machine. Trace, Metrics and SharedProfiles are
	// stripped: replicas must not share mutable state or sinks, and the
	// group emits its own telemetry instead.
	Scheduler cluster.Options
	// Lease is the leader lease in simulated seconds (default 5). A
	// dead leader's lease must expire before the survivors elect, so
	// Lease bounds the unavailability window of a failover.
	Lease float64
	// RequestInterval is how far the simulated clock advances per
	// submitted command (default 1s) — the request stream is the
	// group's heartbeat.
	RequestInterval float64
	// Faults injects control-plane faults: scheduled or rate-driven
	// leader deaths, RPC loss and delay.
	Faults faults.ControlPlan
	// Trace, when non-nil, receives LeaderElected / ReplicaDied /
	// FailoverComplete events on the group's simulated timeline.
	Trace *telemetry.Tracer
	// Metrics, when non-nil, backs the replica_* counters; nil keeps a
	// private registry.
	Metrics *telemetry.Registry
}

func (o Options) replicas() int {
	if o.Replicas > 0 {
		return o.Replicas
	}
	return 3
}

func (o Options) lease() float64 {
	if o.Lease > 0 {
		return o.Lease
	}
	return 5
}

func (o Options) requestInterval() float64 {
	if o.RequestInterval > 0 {
		return o.RequestInterval
	}
	return 1
}

// groupCounters are the registry-backed replica_* counters.
type groupCounters struct {
	commands, applies   *telemetry.Counter
	deaths, elections   *telemetry.Counter
	divergences         *telemetry.Counter
	rpcLost, rpcDelayed *telemetry.Counter
	degradedRejects     *telemetry.Counter
	noLeaderRejects     *telemetry.Counter
	retries             *telemetry.Counter
}

func newGroupCounters(reg *telemetry.Registry) groupCounters {
	return groupCounters{
		commands:        reg.Counter("replica_commands_total"),
		applies:         reg.Counter("replica_applies_total"),
		deaths:          reg.Counter("replica_deaths_total"),
		elections:       reg.Counter("replica_elections_total"),
		divergences:     reg.Counter("replica_divergences_total"),
		rpcLost:         reg.Counter("replica_rpc_lost_total"),
		rpcDelayed:      reg.Counter("replica_rpc_delayed_total"),
		degradedRejects: reg.Counter("replica_degraded_rejects_total"),
		noLeaderRejects: reg.Counter("replica_noleader_rejects_total"),
		retries:         reg.Counter("replica_client_retries_total"),
	}
}

// Group is a replicated control plane over 2+ scheduler replicas. All
// methods are safe for concurrent use; submissions serialize on an
// internal lock, so a concurrent client stream commits the same log a
// sequential one would.
type Group struct {
	mu        sync.Mutex
	opts      Options
	replicas  []*Replica
	log       []Command
	decisions []Decision
	clock     float64
	term      int
	leader    int     // replica id, -1 while an election is pending
	deathAt   float64 // when the last leader died (unavailability start)
	ctl       *faults.ControlInjector
	trace     *telemetry.Tracer
	counters  groupCounters
	lastSnap  []cluster.NodeInfo // last committed snapshot, serves reads when degraded
}

// NewGroup builds a group of identical scheduler replicas and elects
// replica 0 as the initial leader. Invalid control-fault plans are
// rejected with an error wrapping faults.ErrInvalidPlan.
func NewGroup(opts Options) (*Group, error) {
	if opts.Replicas < 0 || opts.Replicas == 1 || opts.Replicas > 7 {
		return nil, fmt.Errorf("replica: group size %d out of range (want 2..7)", opts.Replicas)
	}
	ctl, err := faults.NewControl(opts.Faults)
	if err != nil {
		return nil, err
	}
	if err := opts.Scheduler.Faults.Validate(); err != nil {
		return nil, err
	}
	// Replicas must not share sinks or caches: each gets a pristine
	// copy of the scheduler options, so their state machines stay
	// independent and byte-identical.
	sopts := opts.Scheduler
	sopts.Trace = nil
	sopts.Metrics = nil
	sopts.SharedProfiles = nil
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	g := &Group{
		opts:     opts,
		ctl:      ctl,
		trace:    opts.Trace,
		counters: newGroupCounters(reg),
		leader:   -1,
		deathAt:  -1,
	}
	for i := 0; i < opts.replicas(); i++ {
		g.replicas = append(g.replicas, &Replica{id: i, sched: cluster.New(sopts), alive: true})
	}
	g.elect()
	return g, nil
}

// elect deterministically promotes the lowest-id live replica. Called
// under the lock (and from NewGroup before the group escapes).
func (g *Group) elect() {
	for _, r := range g.replicas {
		if !r.alive {
			continue
		}
		g.term++
		g.leader = r.id
		g.counters.elections.Inc()
		g.trace.Emit(telemetry.LeaderElected(g.clock, r.id, g.term))
		if g.deathAt >= 0 {
			g.trace.Emit(telemetry.FailoverComplete(g.clock, r.id, g.term, g.clock-g.deathAt))
			g.deathAt = -1
		}
		return
	}
}

// killLeader marks the current leader dead and starts the
// unavailability window. Called under the lock.
func (g *Group) killLeader(cause string) {
	if g.leader < 0 {
		return
	}
	g.kill(g.leader, cause)
}

// kill marks replica id dead. If it was the leader, the group has no
// leader until the lease expires and the survivors elect.
func (g *Group) kill(id int, cause string) {
	r := g.replicas[id]
	if !r.alive {
		return
	}
	r.alive = false
	g.counters.deaths.Inc()
	if g.trace != nil {
		g.trace.Emit(telemetry.ReplicaDied(g.clock, id, cause, g.alive()))
	}
	if g.leader == id {
		g.leader = -1
		g.deathAt = g.clock
	}
}

// alive counts live replicas. Called under the lock.
func (g *Group) alive() int {
	n := 0
	for _, r := range g.replicas {
		if r.alive {
			n++
		}
	}
	return n
}

// quorum reports whether a majority of the configured replicas is
// still alive. Called under the lock.
func (g *Group) quorum() bool {
	return g.alive() >= len(g.replicas)/2+1
}

// step settles the group at the current clock: fire scheduled deaths
// that have come due, then complete a pending election once the dead
// leader's lease has expired. Called under the lock whenever time has
// advanced.
func (g *Group) step() {
	for g.ctl.DeathDue(g.clock) {
		g.killLeader("scheduled")
	}
	if g.leader < 0 && g.quorum() && g.deathAt >= 0 && g.clock >= g.deathAt+g.opts.lease() {
		g.elect()
	}
}

// Advance lets simulated time pass — a client backing off, a harness
// idling between arrivals — and settles any election that came due.
func (g *Group) Advance(dt float64) {
	if dt <= 0 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.clock += dt
	g.step()
}

// submit sequences one command through the leader and applies it on
// every live replica, cross-checking decision digests.
func (g *Group) submit(cmd Command) (Decision, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	// The request's arrival is the clock: time passes, deaths and
	// elections that came due settle first.
	g.clock += g.opts.requestInterval()
	g.step()
	if lost, delay := g.ctl.RollRPC(); lost {
		g.counters.rpcLost.Inc()
		return Decision{}, fmt.Errorf("replica: submission at t=%.1fs: %w", g.clock, ErrRPCLost)
	} else if delay > 0 {
		g.counters.rpcDelayed.Inc()
		g.clock += delay
		g.step() // the delay may have crossed a death or an election
	}
	if !g.quorum() {
		// Writes stop the moment the majority is gone, leader or not —
		// a minority must never commit new decisions.
		g.counters.degradedRejects.Inc()
		return Decision{}, fmt.Errorf("replica: %d/%d replicas alive: %w",
			g.alive(), len(g.replicas), ErrDegraded)
	}
	if g.leader < 0 {
		g.counters.noLeaderRejects.Inc()
		return Decision{}, fmt.Errorf("replica: leader died at t=%.1fs, lease expires t=%.1fs: %w",
			g.deathAt, g.deathAt+g.opts.lease(), ErrNoLeader)
	}

	// The leader sequences and applies first; its decision is the
	// canonical one the followers must match.
	lead := g.replicas[g.leader]
	cmd.Index = lead.applied
	canonical, err := lead.apply(cmd)
	if err != nil {
		return Decision{}, err
	}
	g.counters.applies.Inc()
	for _, r := range g.replicas {
		if !r.alive || r.id == g.leader {
			continue
		}
		d, err := r.apply(cmd)
		if err != nil {
			g.counters.divergences.Inc()
			return Decision{}, fmt.Errorf("replica %d failed applying index %d: %v: %w",
				r.id, cmd.Index, err, ErrDivergence)
		}
		g.counters.applies.Inc()
		if d.Digest != canonical.Digest {
			g.counters.divergences.Inc()
			return Decision{}, fmt.Errorf("replica %d decision %q != leader %d decision %q at index %d: %w",
				r.id, d.Digest, g.leader, canonical.Digest, cmd.Index, ErrDivergence)
		}
	}
	g.log = append(g.log, cmd)
	g.decisions = append(g.decisions, canonical)
	g.counters.commands.Inc()
	g.lastSnap = lead.sched.Snapshot()
	// Serving the command renews the lease implicitly; then the
	// post-command death die rolls — the failover experiment's knob for
	// killing leaders mid-stream.
	if g.ctl.RollDeath(g.alive()) {
		g.killLeader("rate")
	}
	return canonical, nil
}

// Place sequences a placement command through the group. The
// cluster-level rejection surfaces as cluster.ErrUnplaceable exactly
// like the unreplicated scheduler's Place; control-plane conditions
// surface as ErrRPCLost / ErrNoLeader (retryable) or ErrDegraded.
func (g *Group) Place(req cluster.Request) (cluster.Placement, error) {
	d, err := g.submit(Command{Op: OpPlace, Req: req})
	if err != nil {
		return cluster.Placement{}, err
	}
	if d.Unplaceable {
		return cluster.Placement{}, cluster.ErrUnplaceable
	}
	return d.Placement, nil
}

// FailNode sequences a node-loss command through the group: every
// replica drains and reschedules the node's jobs identically.
func (g *Group) FailNode(node int) ([]cluster.Outcome, error) {
	d, err := g.submit(Command{Op: OpFailNode, Node: node})
	if err != nil {
		return nil, err
	}
	return d.Outcomes, nil
}

// Kill marks a replica dead by fiat — the harness's quorum-loss lever
// and clited's admin endpoint. Killing the leader starts a failover;
// killing past the quorum degrades the group to read-only.
func (g *Group) Kill(id int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if id < 0 || id >= len(g.replicas) {
		return fmt.Errorf("replica: no replica %d", id)
	}
	if !g.replicas[id].alive {
		return fmt.Errorf("replica: replica %d already dead", id)
	}
	g.kill(id, "kill")
	return nil
}

// Status is a point-in-time view of the group's health.
type Status struct {
	// Leader is the current leader's replica id (-1 during a failover).
	Leader int
	// Term counts elections; it starts at 1.
	Term int
	// Clock is the group's simulated time in seconds.
	Clock float64
	// Alive counts live replicas out of Replicas.
	Alive    int
	Replicas int
	// Degraded reports quorum loss: the group serves reads only.
	Degraded bool
	// Commands counts committed log entries.
	Commands int
}

// Status reports the group's health. It serves even when degraded.
func (g *Group) Status() Status {
	g.mu.Lock()
	defer g.mu.Unlock()
	return Status{
		Leader:   g.leader,
		Term:     g.term,
		Clock:    g.clock,
		Alive:    g.alive(),
		Replicas: len(g.replicas),
		Degraded: !g.quorum(),
		Commands: len(g.decisions),
	}
}

// Clock returns the group's simulated time in seconds — the timestamp
// the daemon's observability feed stamps per-placement samples with,
// so the SLO plane shares the replica log's clock rather than reading
// wall time.
func (g *Group) Clock() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.clock
}

// Snapshot returns the cluster state as of the last committed command.
// It keeps serving after quorum loss — the graceful-degradation read
// path — from the last-safe snapshot cached at commit time.
func (g *Group) Snapshot() []cluster.NodeInfo {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]cluster.NodeInfo(nil), g.lastSnap...)
}

// Decisions returns the committed decision stream (the harness
// compares its digests against an unreplicated reference run).
func (g *Group) Decisions() []Decision {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]Decision(nil), g.decisions...)
}

// Stats returns the leader's scheduler ledger; during a failover it
// falls back to the lowest-id live replica (all live replicas carry
// identical ledgers), and to zeros when every replica is dead.
func (g *Group) Stats() cluster.Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	id := g.leader
	if id < 0 {
		for _, r := range g.replicas {
			if r.alive {
				id = r.id
				break
			}
		}
	}
	if id < 0 {
		return cluster.Stats{}
	}
	return g.replicas[id].sched.Stats()
}
