package faults

import (
	"errors"
	"math"
	"testing"
)

func TestPlanValidateRejectsGarbage(t *testing.T) {
	nan := math.NaN()
	bad := []Plan{
		{Transient: -0.1},
		{Outlier: nan},
		{PartialActuation: 1.5},
		{OutlierScale: -1},
		{OutlierScale: nan},
		{NodeFailAt: -3},
		{NodeFailAt: nan},
	}
	for _, p := range bad {
		err := p.Validate()
		if !errors.Is(err, ErrInvalidPlan) {
			t.Errorf("plan %+v: want ErrInvalidPlan, got %v", p, err)
		}
		if _, err := New(newMachine(t, 1), p); !errors.Is(err, ErrInvalidPlan) {
			t.Errorf("New(%+v) must reject the plan, got %v", p, err)
		}
		if _, err := Wrap(newMachine(t, 1), p); !errors.Is(err, ErrInvalidPlan) {
			t.Errorf("Wrap(%+v) must reject the plan, got %v", p, err)
		}
	}
	good := []Plan{
		{}, // zero value injects nothing and is valid
		{Transient: 0.2, Outlier: 0.1, PartialActuation: 0.05},
		{NodeFailAt: 10, OutlierScale: 4},
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("plan %+v should validate: %v", p, err)
		}
	}
}

func TestControlPlanValidate(t *testing.T) {
	nan := math.NaN()
	bad := []ControlPlan{
		{DeathRate: -0.1},
		{DeathRate: nan},
		{RPCLoss: 2},
		{RPCDelay: -1},
		{LeaderDeathAt: []float64{0}},  // zero death time is meaningless
		{LeaderDeathAt: []float64{-5}}, // so is a negative one
		{LeaderDeathAt: []float64{3, nan}},
		{RPCDelayMean: -0.5},
		{MaxDeaths: -1},
	}
	for _, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrInvalidPlan) {
			t.Errorf("control plan %+v: want ErrInvalidPlan, got %v", p, err)
		}
		if _, err := NewControl(p); !errors.Is(err, ErrInvalidPlan) {
			t.Errorf("NewControl(%+v) must reject the plan, got %v", p, err)
		}
	}
	good := []ControlPlan{
		{},
		{LeaderDeathAt: []float64{4, 9}, RPCLoss: 0.1},
		{DeathRate: 0.05, MaxDeaths: 1, RPCDelay: 0.2, RPCDelayMean: 0.3},
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("control plan %+v should validate: %v", p, err)
		}
	}
	if (ControlPlan{}).Enabled() {
		t.Error("zero control plan must be disabled")
	}
	for _, p := range good[1:] {
		if !p.Enabled() {
			t.Errorf("control plan %+v should be enabled", p)
		}
	}
}

func TestControlInjectorDeterminism(t *testing.T) {
	run := func() (deaths int, lost int, delayed float64) {
		inj, err := NewControl(ControlPlan{Seed: 5, DeathRate: 0.2, RPCLoss: 0.2, RPCDelay: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if inj.RollDeath(3) {
				deaths++
			}
			l, d := inj.RollRPC()
			if l {
				lost++
			}
			delayed += d
		}
		return
	}
	d1, l1, dl1 := run()
	d2, l2, dl2 := run()
	if d1 != d2 || l1 != l2 || dl1 != dl2 {
		t.Fatalf("control fault stream diverges: (%d,%d,%v) vs (%d,%d,%v)", d1, l1, dl1, d2, l2, dl2)
	}
	if d1 == 0 || l1 == 0 || dl1 == 0 {
		t.Errorf("50 rolls at these rates should fire every class: deaths=%d lost=%d delay=%v", d1, l1, dl1)
	}
}

func TestControlInjectorScheduledDeaths(t *testing.T) {
	inj, err := NewControl(ControlPlan{LeaderDeathAt: []float64{9, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if inj.DeathDue(3.9) {
		t.Error("no death before the first scheduled time")
	}
	if !inj.DeathDue(4) {
		t.Error("first scheduled death (sorted) must fire at t=4")
	}
	if inj.DeathDue(8) {
		t.Error("second death not due yet")
	}
	if !inj.DeathDue(12) {
		t.Error("second scheduled death must fire")
	}
	if inj.DeathDue(100) {
		t.Error("schedule exhausted")
	}
}

func TestRollDeathRespectsBudgetAndLastReplica(t *testing.T) {
	inj, err := NewControl(ControlPlan{Seed: 1, DeathRate: 1, MaxDeaths: 2})
	if err != nil {
		t.Fatal(err)
	}
	kills := 0
	for i := 0; i < 10; i++ {
		if inj.RollDeath(3) {
			kills++
		}
	}
	if kills != 2 {
		t.Errorf("MaxDeaths=2 must cap rate-driven deaths, got %d", kills)
	}
	inj2, err := NewControl(ControlPlan{Seed: 1, DeathRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	if inj2.RollDeath(1) {
		t.Error("rate-driven deaths must never kill the last replica")
	}
}
