package faults

import (
	"errors"
	"testing"

	"clite/internal/resource"
	"clite/internal/server"
)

func newMachine(t *testing.T, seed int64) *server.Machine {
	t.Helper()
	m := server.New(resource.Default(), server.DefaultSpec(), seed)
	if _, err := m.AddLC("memcached", 0.3); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddLC("img-dnn", 0.2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddBG("streamcluster"); err != nil {
		t.Fatal(err)
	}
	return m
}

func mustNew(t *testing.T, m *server.Machine, plan Plan) *Injector {
	t.Helper()
	inj, err := New(m, plan)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func mustWrap(t *testing.T, m *server.Machine, plan Plan) server.Observer {
	t.Helper()
	obs, err := Wrap(m, plan)
	if err != nil {
		t.Fatal(err)
	}
	return obs
}

func TestWrapEmptyPlanIsPassthrough(t *testing.T) {
	m := newMachine(t, 1)
	obs := mustWrap(t, m, Plan{})
	if obs != server.Observer(m) {
		t.Fatal("empty plan must return the machine itself (zero-cost when off)")
	}
	if (Plan{}).Enabled() {
		t.Error("zero plan must be disabled")
	}
	for _, p := range []Plan{
		{Transient: 0.1}, {Outlier: 0.1}, {PartialActuation: 0.1}, {NodeFailAt: 10},
	} {
		if !p.Enabled() {
			t.Errorf("plan %+v should be enabled", p)
		}
		if _, isInjector := mustWrap(t, m, p).(*Injector); !isInjector {
			t.Errorf("plan %+v should wrap", p)
		}
	}
}

func TestTransientFailureSpendsWindow(t *testing.T) {
	m := newMachine(t, 2)
	inj := mustNew(t, m, Plan{Seed: 7, Transient: 1})
	cfg := resource.EqualSplit(m.Topology(), 3)
	_, err := inj.Observe(cfg)
	if !errors.Is(err, server.ErrObservationFailed) {
		t.Fatalf("want ErrObservationFailed, got %v", err)
	}
	if errors.Is(err, server.ErrNodeFailed) {
		t.Error("transient failure must not look permanent")
	}
	if m.Clock() != server.DefaultWindow || m.Observations() != 1 {
		t.Errorf("failed window must still spend time: clock=%v obs=%d", m.Clock(), m.Observations())
	}
	if c := inj.Counts(); c.Transient != 1 || c.Windows != 1 {
		t.Errorf("counts = %+v", c)
	}
}

func TestOutlierCorruptsOneLCJob(t *testing.T) {
	clean := newMachine(t, 3)
	faulty := newMachine(t, 3)
	cfg := resource.EqualSplit(clean.Topology(), 3)
	want, err := clean.Observe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inj := mustNew(t, faulty, Plan{Seed: 9, Outlier: 1, OutlierScale: 8})
	got, err := inj.Observe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same machine seed ⇒ same underlying measurement; exactly one LC
	// job's p95 must be inflated by at least 4× (half the scale).
	spiked := 0
	for i := 0; i < 2; i++ {
		switch {
		case got.P95[i] == want.P95[i]:
		case got.P95[i] >= 4*want.P95[i]:
			spiked++
		default:
			t.Errorf("job %d p95 %v vs clean %v: neither untouched nor spiked", i, got.P95[i], want.P95[i])
		}
	}
	if spiked != 1 {
		t.Errorf("want exactly one spiked LC job, got %d", spiked)
	}
	if got.Throughput[2] != want.Throughput[2] {
		t.Error("BG job must be untouched when an LC job exists")
	}
	if inj.Counts().Outlier != 1 {
		t.Errorf("counts = %+v", inj.Counts())
	}
}

func TestPartialActuationReportsRequestedConfig(t *testing.T) {
	m := newMachine(t, 4)
	inj := mustNew(t, m, Plan{Seed: 11, PartialActuation: 1})
	cfg := resource.EqualSplit(m.Topology(), 3)
	obs, err := inj.Observe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !obs.Config.Equal(cfg) {
		t.Error("observation must report the requested partition, not the degraded one")
	}
	if inj.Counts().PartialActuation != 1 {
		t.Errorf("counts = %+v", inj.Counts())
	}
	// Across several degraded windows, at least one perturbation must
	// land on a resource the jobs are sensitive to and change the
	// measurement relative to a clean machine with the same noise seed.
	clean := newMachine(t, 4)
	want, _ := clean.Observe(cfg)
	same := obsEqual(obs, want)
	for i := 0; i < 5 && same; i++ {
		got, err := inj.Observe(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := clean.Observe(cfg)
		if err != nil {
			t.Fatal(err)
		}
		same = obsEqual(got, ref)
	}
	if same {
		t.Error("degraded actuation should change at least one measurement")
	}
}

func obsEqual(a, b server.Observation) bool {
	for i := range a.P95 {
		if a.P95[i] != b.P95[i] || a.Throughput[i] != b.Throughput[i] {
			return false
		}
	}
	return true
}

func TestNodeFailureAtScheduledTime(t *testing.T) {
	m := newMachine(t, 5)
	inj := mustNew(t, m, Plan{Seed: 13, NodeFailAt: 3})
	cfg := resource.EqualSplit(m.Topology(), 3)
	if _, err := inj.Observe(cfg); err != nil {
		t.Fatalf("window before the failure time must succeed: %v", err)
	}
	if _, err := inj.Observe(cfg); err != nil {
		t.Fatalf("second window (t=2s < 3s at entry): %v", err)
	}
	_, err := inj.Observe(cfg)
	if !errors.Is(err, server.ErrNodeFailed) {
		t.Fatalf("want ErrNodeFailed at t=%v, got %v", m.Clock(), err)
	}
	if !inj.Counts().NodeFailed {
		t.Error("counts should record the node loss")
	}
	// Permanent: every later observe fails without spending windows.
	before := m.Observations()
	if _, err := inj.Observe(cfg); !errors.Is(err, server.ErrNodeFailed) {
		t.Fatal("node failure must be permanent")
	}
	if m.Observations() != before {
		t.Error("dead node must not run windows")
	}
}

func TestInjectionIsDeterministic(t *testing.T) {
	run := func() (Counts, []bool) {
		m := newMachine(t, 6)
		inj := mustNew(t, m, Plan{Seed: 17, Transient: 0.3, Outlier: 0.2, PartialActuation: 0.2})
		cfg := resource.EqualSplit(m.Topology(), 3)
		var failed []bool
		for i := 0; i < 40; i++ {
			_, err := inj.Observe(cfg)
			failed = append(failed, err != nil)
		}
		return inj.Counts(), failed
	}
	c1, f1 := run()
	c2, f2 := run()
	if c1 != c2 {
		t.Fatalf("counts diverge: %+v vs %+v", c1, c2)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("fault sequence diverges at window %d", i)
		}
	}
	if c1.Transient == 0 || c1.Outlier == 0 || c1.PartialActuation == 0 {
		t.Errorf("40 windows at these rates should hit every class: %+v", c1)
	}
}
