// Package faults is a deterministic, seeded fault-injection layer over
// the simulated machine's observation path. The paper's testbed is a
// perfectly instrumented lab node; a warehouse-scale deployment is not:
// counter reads fail, latency samples come back corrupted, isolation
// actuators occasionally apply a degraded partition, and whole nodes
// die. The injector wraps a *server.Machine behind the server.Observer
// interface and injects exactly those fault classes, with per-class
// probabilities and a scheduled node-loss time, so the controller and
// scheduler layers above can be hardened — and tested — against them.
//
// Determinism: the injector owns its own RNG stream derived from
// Plan.Seed, independent of the machine's measurement-noise stream, so
// the same plan over the same machine replays the same fault sequence.
// Zero-cost when off: Wrap returns the machine itself for an empty
// plan, so disabled fault injection cannot perturb any result.
package faults

import (
	"errors"
	"fmt"
	"math"

	"clite/internal/resource"
	"clite/internal/server"
	"clite/internal/stats"
	"clite/internal/telemetry"
)

// ErrInvalidPlan marks a fault plan whose fields cannot describe a
// fault distribution: a negative or NaN rate, a probability above 1,
// or a non-positive scheduled death time. Constructors reject such
// plans up front — wrapped so callers check errors.Is(err,
// ErrInvalidPlan) — instead of silently producing undefined injection
// behavior deep inside a run.
var ErrInvalidPlan = errors.New("faults: invalid plan")

// checkRate validates one probability field: finite and within [0,1].
func checkRate(name string, v float64) error {
	if math.IsNaN(v) || v < 0 || v > 1 {
		return fmt.Errorf("%w: %s rate %v outside [0,1]", ErrInvalidPlan, name, v)
	}
	return nil
}

// Plan configures the injector: per-class probabilities (per
// observation window) plus the node-loss schedule. The zero value
// injects nothing.
type Plan struct {
	// Seed drives the injector's own fault stream (independent of the
	// machine's measurement noise).
	Seed int64
	// Transient is the probability that a window's counters fail to
	// read: the window is spent (time passes, the partition was
	// applied) but the observation is lost and Observe returns an
	// error matching server.ErrObservationFailed.
	Transient float64
	// Outlier is the probability that a window reports a corrupted
	// measurement: one LC job's p95 comes back inflated by roughly
	// OutlierScale (a latency spike far outside the noise model), or a
	// BG job's throughput deflated when no LC job is present.
	Outlier float64
	// OutlierScale is the spike magnitude (default 8×); the actual
	// factor is drawn uniformly in [0.5, 1.5]×OutlierScale.
	OutlierScale float64
	// PartialActuation is the probability that isolation applies a
	// degraded partition for one window: a few units of one resource
	// land on the wrong job while the observation still reports the
	// requested configuration.
	PartialActuation float64
	// NodeFailAt is the simulated time (seconds) at which the node
	// fails permanently; every later Observe returns an error matching
	// server.ErrNodeFailed. Zero means the node never fails.
	NodeFailAt float64
}

// Enabled reports whether the plan injects anything at all.
func (p Plan) Enabled() bool {
	return p.Transient > 0 || p.Outlier > 0 || p.PartialActuation > 0 || p.NodeFailAt > 0
}

// Validate rejects plans whose fields cannot describe a fault
// distribution. Errors wrap ErrInvalidPlan. The zero value is valid
// (it injects nothing); NodeFailAt zero means "never" and is valid,
// but negative or NaN death times are not.
func (p Plan) Validate() error {
	if err := checkRate("transient", p.Transient); err != nil {
		return err
	}
	if err := checkRate("outlier", p.Outlier); err != nil {
		return err
	}
	if err := checkRate("partial-actuation", p.PartialActuation); err != nil {
		return err
	}
	if math.IsNaN(p.OutlierScale) || p.OutlierScale < 0 {
		return fmt.Errorf("%w: outlier scale %v negative or NaN", ErrInvalidPlan, p.OutlierScale)
	}
	if math.IsNaN(p.NodeFailAt) || p.NodeFailAt < 0 {
		return fmt.Errorf("%w: node-fail time %v negative or NaN (0 means never)", ErrInvalidPlan, p.NodeFailAt)
	}
	return nil
}

func (p Plan) outlierScale() float64 {
	if p.OutlierScale > 0 {
		return p.OutlierScale
	}
	return 8
}

// Counts tallies the faults injected so far, per class.
type Counts struct {
	Transient        int
	Outlier          int
	PartialActuation int
	NodeFailed       bool
	// Windows counts Observe calls that reached the injector.
	Windows int
}

// String renders the tally compactly.
func (c Counts) String() string {
	s := fmt.Sprintf("windows=%d transient=%d outlier=%d partial-actuation=%d",
		c.Windows, c.Transient, c.Outlier, c.PartialActuation)
	if c.NodeFailed {
		s += " node-failed"
	}
	return s
}

// Injector wraps a machine and injects the plan's faults into its
// observation path. It implements server.Observer.
type Injector struct {
	m      *server.Machine
	plan   Plan
	rng    *stats.RNG
	counts Counts
	trace  *telemetry.Tracer
	mFault *telemetry.Counter
}

var _ server.Observer = (*Injector)(nil)

// New returns an injector over the machine, rejecting invalid plans
// with an error wrapping ErrInvalidPlan. Use Wrap to get the
// zero-cost passthrough for empty plans.
func New(m *server.Machine, plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{m: m, plan: plan, rng: stats.NewRNG(plan.Seed)}, nil
}

// Wrap returns the machine itself when the plan injects nothing — the
// fault layer is strictly zero-cost when off — and an Injector
// otherwise. Invalid plans are rejected with an error wrapping
// ErrInvalidPlan rather than silently injecting garbage.
func Wrap(m *server.Machine, plan Plan) (server.Observer, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if !plan.Enabled() {
		return m, nil
	}
	return &Injector{m: m, plan: plan, rng: stats.NewRNG(plan.Seed)}, nil
}

// SetTelemetry attaches telemetry sinks: the injector emits a
// FaultInjected event per fired fault and counts them, and forwards
// the sinks to the wrapped machine so its per-window events flow too.
// The core controller calls this through the telemetrySink interface.
func (f *Injector) SetTelemetry(tr *telemetry.Tracer, reg *telemetry.Registry) {
	f.trace = tr
	f.mFault = reg.Counter("faults_injected_total")
	f.m.SetTelemetry(tr, reg)
}

// inject records one fired fault of the given class on the attached
// telemetry (no-op when detached).
func (f *Injector) inject(kind string) {
	f.mFault.Inc()
	//lint:allow telnil Clock() is a plain field read and inject only runs when a fault actually fires, off the disabled hot path
	f.trace.Emit(telemetry.FaultInjected(f.m.Clock(), kind))
}

// Counts returns the per-class injection tally.
func (f *Injector) Counts() Counts { return f.counts }

// Plan returns the injector's configuration.
func (f *Injector) Plan() Plan { return f.plan }

// Machine exposes the wrapped machine (tests and harnesses use it for
// ground-truth ObserveIdeal checks).
func (f *Injector) Machine() *server.Machine { return f.m }

// Delegated Observer surface.

// Topology implements server.Observer.
func (f *Injector) Topology() resource.Topology { return f.m.Topology() }

// Jobs implements server.Observer.
func (f *Injector) Jobs() []server.Job { return f.m.Jobs() }

// NumJobs implements server.Observer.
func (f *Injector) NumJobs() int { return f.m.NumJobs() }

// Window implements server.Observer.
func (f *Injector) Window() float64 { return f.m.Window() }

// Clock implements server.Observer.
func (f *Injector) Clock() float64 { return f.m.Clock() }

// Observations implements server.Observer.
func (f *Injector) Observations() int { return f.m.Observations() }

// AdvanceClock implements server.Observer.
func (f *Injector) AdvanceClock(seconds float64) { f.m.AdvanceClock(seconds) }

// Observe implements server.Observer: it rolls the plan's fault die
// once per window and either fails the window, degrades its actuation,
// corrupts its measurement, or passes it through untouched. Fault
// classes share a single uniform draw, checked in the order transient →
// partial actuation → outlier, so their probabilities compose additively
// (and are effectively capped at 1 in total).
func (f *Injector) Observe(cfg resource.Config) (server.Observation, error) {
	if f.plan.NodeFailAt > 0 && f.m.Clock() >= f.plan.NodeFailAt {
		if !f.counts.NodeFailed {
			f.inject("node-failure")
		}
		f.counts.NodeFailed = true
		return server.Observation{}, fmt.Errorf(
			"faults: node lost at t=%.1fs (scheduled %.1fs): %w",
			f.m.Clock(), f.plan.NodeFailAt, server.ErrNodeFailed)
	}
	f.counts.Windows++
	u := f.rng.Float64()
	switch {
	case u < f.plan.Transient:
		// The window is spent — the partition was applied and time
		// passed — but the counters never came back.
		if _, err := f.m.Observe(cfg); err != nil {
			return server.Observation{}, err
		}
		f.counts.Transient++
		f.inject("transient")
		return server.Observation{}, fmt.Errorf(
			"faults: counter read failed at t=%.1fs: %w", f.m.Clock(), server.ErrObservationFailed)
	case u < f.plan.Transient+f.plan.PartialActuation:
		degraded, changed := f.degrade(cfg)
		obs, err := f.m.Observe(degraded)
		if err != nil {
			return obs, err
		}
		if changed {
			f.counts.PartialActuation++
			f.inject("partial-actuation")
			// The controller believes its request was applied.
			obs.Config = cfg.Clone()
		}
		return obs, nil
	case u < f.plan.Transient+f.plan.PartialActuation+f.plan.Outlier:
		obs, err := f.m.Observe(cfg)
		if err != nil {
			return obs, err
		}
		f.corrupt(&obs)
		return obs, nil
	}
	return f.m.Observe(cfg)
}

// degrade perturbs the partition the way a glitched actuator would:
// a couple of units of one resource land on the wrong job for this
// window. The result stays feasible (every job keeps at least one
// unit). Reports false when no perturbation is possible (single job).
func (f *Injector) degrade(cfg resource.Config) (resource.Config, bool) {
	n := cfg.NumJobs()
	if n < 2 {
		return cfg, false
	}
	out := cfg.Clone()
	topo := f.m.Topology()
	for _, r := range f.rng.Perm(len(topo)) {
		from := f.rng.Intn(n)
		to := f.rng.Intn(n)
		if to == from {
			to = (to + 1) % n
		}
		units := 1 + f.rng.Intn(2)
		if m := out.Jobs[from][r] - 1; units > m {
			units = m
		}
		if units <= 0 {
			continue
		}
		if out.Transfer(r, from, to, units) {
			return out, true
		}
	}
	return cfg, false
}

// corrupt turns the observation into a believable outlier: one LC
// job's p95 spikes by ~OutlierScale (its normalized performance drops
// accordingly and its QoS verdict is re-derived); with no LC job
// present, one BG job's throughput collapses instead.
func (f *Injector) corrupt(obs *server.Observation) {
	jobs := f.m.Jobs()
	var lc, bg []int
	for i, j := range jobs {
		if j.IsLC() {
			lc = append(lc, i)
		} else {
			bg = append(bg, i)
		}
	}
	scale := f.plan.outlierScale() * (0.5 + f.rng.Float64())
	if scale < 2 {
		scale = 2
	}
	switch {
	case len(lc) > 0:
		i := lc[f.rng.Intn(len(lc))]
		obs.P95[i] *= scale
		obs.NormPerf[i] /= scale
		obs.QoSMet[i] = obs.P95[i] <= jobs[i].QoS
	case len(bg) > 0:
		i := bg[f.rng.Intn(len(bg))]
		obs.Throughput[i] /= scale
		obs.NormPerf[i] /= scale
	default:
		return
	}
	obs.AllQoSMet = true
	for _, met := range obs.QoSMet {
		if !met {
			obs.AllQoSMet = false
		}
	}
	f.counts.Outlier++
	f.inject("outlier")
}
