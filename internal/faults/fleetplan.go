package faults

import (
	"fmt"

	"clite/internal/stats"
)

// FleetPlan schedules whole-node deaths across a simulated fleet —
// the warehouse-scale fault the fleet layer must absorb by rehoming
// the dead node's jobs (within the owning cell first, across cells
// when the survivors are full). Deaths are drawn once, up front, from
// a seeded stream, so the same plan over the same fleet replays the
// same death schedule whatever the shard count.
type FleetPlan struct {
	// Seed drives the death schedule's own RNG stream.
	Seed int64
	// DeathRate is the fleet-wide node-death rate in deaths per
	// simulated second (exponential gaps). 0 disables deaths.
	DeathRate float64
	// MaxDeaths caps the schedule (0 means unlimited within the
	// horizon).
	MaxDeaths int
}

// Enabled reports whether the plan schedules any deaths.
func (p FleetPlan) Enabled() bool { return p.DeathRate > 0 }

// Validate rejects plans whose fields cannot describe a death
// schedule, wrapped so callers check errors.Is(err, ErrInvalidPlan).
func (p FleetPlan) Validate() error {
	if p.DeathRate < 0 || p.DeathRate != p.DeathRate {
		return fmt.Errorf("%w: fleet death rate %v must be a finite non-negative number", ErrInvalidPlan, p.DeathRate)
	}
	if p.MaxDeaths < 0 {
		return fmt.Errorf("%w: fleet max deaths %d must be non-negative", ErrInvalidPlan, p.MaxDeaths)
	}
	return nil
}

// NodeDeath is one scheduled node loss: the simulated time it strikes
// and the global node index it takes.
type NodeDeath struct {
	At   float64
	Node int
}

// Schedule materializes the death schedule for a fleet of the given
// size over [0, horizon) simulated seconds: exponential inter-death
// gaps at DeathRate, node picked uniformly per death. A node can be
// drawn twice; the fleet skips deaths aimed at an already-dead node,
// which keeps the drawn stream — and with it every later draw —
// independent of how earlier deaths resolved.
func (p FleetPlan) Schedule(nodes int, horizon float64) []NodeDeath {
	if !p.Enabled() || nodes <= 0 || horizon <= 0 {
		return nil
	}
	rng := stats.NewRNG(p.Seed).Split(0x5eed)
	var out []NodeDeath
	t := 0.0
	for {
		t += rng.Exponential(1 / p.DeathRate)
		if t >= horizon {
			return out
		}
		out = append(out, NodeDeath{At: t, Node: rng.Intn(nodes)})
		if p.MaxDeaths > 0 && len(out) >= p.MaxDeaths {
			return out
		}
	}
}
