package faults

import (
	"fmt"
	"math"
	"sort"

	"clite/internal/stats"
)

// ControlPlan configures fault injection against the control plane
// itself — the replicated scheduler service of internal/replica —
// rather than a node's observation path. It models the two failure
// classes a warehouse-scale controller fleet actually sees: controller
// replicas dying (scheduled, or at a per-command rate against the
// current leader) and the RPC fabric losing or delaying requests. The
// zero value injects nothing.
type ControlPlan struct {
	// Seed drives the control-fault stream, independent of every
	// scheduler and machine stream.
	Seed int64
	// LeaderDeathAt lists simulated times (seconds, each strictly
	// positive) at which the then-current leader replica dies. Deaths
	// are permanent; the group fails over or, without a quorum,
	// degrades to read-only.
	LeaderDeathAt []float64
	// DeathRate is the per-command probability that the leader dies
	// immediately after sequencing a command — the knob the failover
	// experiment sweeps.
	DeathRate float64
	// MaxDeaths bounds rate-driven deaths (scheduled LeaderDeathAt
	// deaths always fire). Zero means replicas-1: leave at least one
	// replica to observe the degraded state.
	MaxDeaths int
	// RPCLoss is the per-request probability that a submission is lost
	// in flight: the client gets ErrRPCLost and should retry with
	// backoff.
	RPCLoss float64
	// RPCDelay is the per-request probability that a submission is
	// delayed by RPCDelayMean simulated seconds before it is served.
	RPCDelay float64
	// RPCDelayMean is the mean added latency for delayed requests, in
	// simulated seconds (default 0.5s when RPCDelay > 0).
	RPCDelayMean float64
}

// Enabled reports whether the plan injects any control-plane fault.
func (p ControlPlan) Enabled() bool {
	return len(p.LeaderDeathAt) > 0 || p.DeathRate > 0 || p.RPCLoss > 0 || p.RPCDelay > 0
}

// Validate rejects plans whose fields cannot describe a control-fault
// distribution: NaN or out-of-range rates, zero-or-negative scheduled
// death times, negative delay magnitudes. Errors wrap ErrInvalidPlan.
func (p ControlPlan) Validate() error {
	if err := checkRate("death", p.DeathRate); err != nil {
		return err
	}
	if err := checkRate("rpc-loss", p.RPCLoss); err != nil {
		return err
	}
	if err := checkRate("rpc-delay", p.RPCDelay); err != nil {
		return err
	}
	for _, t := range p.LeaderDeathAt {
		if math.IsNaN(t) || t <= 0 {
			return fmt.Errorf("%w: leader death time %v must be strictly positive", ErrInvalidPlan, t)
		}
	}
	if math.IsNaN(p.RPCDelayMean) || p.RPCDelayMean < 0 {
		return fmt.Errorf("%w: rpc delay mean %v negative or NaN", ErrInvalidPlan, p.RPCDelayMean)
	}
	if p.MaxDeaths < 0 {
		return fmt.Errorf("%w: max deaths %d negative", ErrInvalidPlan, p.MaxDeaths)
	}
	return nil
}

func (p ControlPlan) delayMean() float64 {
	if p.RPCDelayMean > 0 {
		return p.RPCDelayMean
	}
	return 0.5
}

// ControlInjector rolls the control-plane fault dice for a replica
// group. It owns its own RNG stream derived from ControlPlan.Seed, so
// the same plan over the same request stream replays the same fault
// sequence; it never reads wall-clock time.
type ControlInjector struct {
	plan       ControlPlan
	rng        *stats.RNG
	deaths     []float64 // scheduled, ascending, not yet fired
	rateDeaths int
}

// NewControl returns an injector for the plan, rejecting invalid
// plans with an error wrapping ErrInvalidPlan.
func NewControl(plan ControlPlan) (*ControlInjector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	deaths := append([]float64(nil), plan.LeaderDeathAt...)
	sort.Float64s(deaths)
	return &ControlInjector{plan: plan, rng: stats.NewRNG(plan.Seed), deaths: deaths}, nil
}

// Plan returns the injector's configuration.
func (c *ControlInjector) Plan() ControlPlan { return c.plan }

// DeathDue reports whether a scheduled leader death has come due at
// simulated time now, consuming it when so.
func (c *ControlInjector) DeathDue(now float64) bool {
	if len(c.deaths) == 0 || now < c.deaths[0] {
		return false
	}
	c.deaths = c.deaths[1:]
	return true
}

// RollDeath rolls the per-command leader-death die, honoring the
// MaxDeaths budget for rate-driven deaths. alive is the number of
// replicas still up; the injector never kills the last one by rate.
func (c *ControlInjector) RollDeath(alive int) bool {
	if c.plan.DeathRate <= 0 || alive <= 1 {
		return false
	}
	if max := c.plan.MaxDeaths; max > 0 && c.rateDeaths >= max {
		return false
	}
	if c.rng.Float64() >= c.plan.DeathRate {
		return false
	}
	c.rateDeaths++
	return true
}

// RollRPC rolls the RPC fault dice for one submission: lost reports a
// dropped request, delay is the added simulated latency (0 when the
// request flows clean). A lost request consumes no delay draw, so the
// fault stream replays identically whatever the caller does about the
// loss.
func (c *ControlInjector) RollRPC() (lost bool, delay float64) {
	if c.plan.RPCLoss > 0 && c.rng.Float64() < c.plan.RPCLoss {
		return true, 0
	}
	if c.plan.RPCDelay > 0 && c.rng.Float64() < c.plan.RPCDelay {
		return false, c.rng.Exponential(c.plan.delayMean())
	}
	return false, 0
}
