package policies

import (
	"clite/internal/bo"
	"clite/internal/core"
	"clite/internal/server"
)

// CLITE wraps the core controller behind the Policy interface.
type CLITE struct {
	// BO tunes the underlying Bayesian-optimization engine; the zero
	// value is the paper's configuration.
	BO bo.Options
}

// Name implements Policy.
func (CLITE) Name() string { return "CLITE" }

// Run implements Policy.
func (p CLITE) Run(m *server.Machine) (Result, error) {
	ctrl := core.New(m, core.Options{BO: p.BO})
	res, err := ctrl.Run()
	if err != nil {
		return Result{}, err
	}
	out := bestOf(res.History)
	// A job that cannot meet QoS even with the whole machine makes
	// the mix un-co-locatable regardless of what the best bootstrap
	// sample scored.
	if len(res.Infeasible) > 0 {
		out.QoSMeetable = false
	}
	return out, nil
}
