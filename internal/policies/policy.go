// Package policies implements the co-location scheduling policies the
// paper evaluates CLITE against (Sec. 5.1): PARTIES' finite-state-
// machine coordinate descent, Heracles' single-LC controller, RAND+
// de-duplicated random search, GENETIC crossover/mutation search, and
// the offline ORACLE brute force — plus a Policy wrapper around CLITE
// itself so the experiment harness can treat all schemes uniformly.
//
// Every policy consumes the same black-box machine interface and is
// scored with the same Eq. 3 function, so the comparisons measure
// search strategy, not instrumentation.
package policies

import (
	"clite/internal/core"
	"clite/internal/resource"
	"clite/internal/server"
)

// Result is the uniform outcome of running any policy on a machine.
type Result struct {
	// Best is the partition the policy settled on.
	Best resource.Config
	// BestScore is its Eq. 3 score (noise-free scores for ORACLE,
	// measured scores for the online policies).
	BestScore float64
	// BestObs is the observation behind BestScore.
	BestObs server.Observation
	// SamplesUsed counts configurations evaluated (Fig. 15a).
	SamplesUsed int
	// QoSMeetable reports whether the best configuration met every LC
	// job's QoS target.
	QoSMeetable bool
	// History is the evaluation trace in sample order.
	History []core.Step
}

// Policy is a co-location scheduling scheme.
type Policy interface {
	// Name is the scheme's display name ("CLITE", "PARTIES", ...).
	Name() string
	// Run searches for a partition for the jobs currently placed on
	// the machine.
	Run(m *server.Machine) (Result, error)
}

// recordStep appends an observation to a history trace.
func recordStep(history []core.Step, jobs []server.Job, cfg resource.Config, obs server.Observation) ([]core.Step, float64) {
	score := core.ScoreObservation(jobs, obs)
	return append(history, core.Step{Config: cfg.Clone(), Score: score, Obs: obs}), score
}

// finalOf builds a Result whose Best is the trace's LAST configuration
// — for policies whose answer is whatever they stabilized on rather
// than the best transient they visited.
func finalOf(history []core.Step) Result {
	res := Result{History: history, SamplesUsed: len(history)}
	if n := len(history); n > 0 {
		last := history[n-1]
		res.Best = last.Config
		res.BestScore = last.Score
		res.BestObs = last.Obs
		res.QoSMeetable = last.Obs.AllQoSMet
	}
	return res
}

// bestOf extracts the Result fields from a history trace.
func bestOf(history []core.Step) Result {
	res := Result{History: history, SamplesUsed: len(history)}
	bestIdx := -1
	for i, s := range history {
		if bestIdx < 0 || s.Score > history[bestIdx].Score {
			bestIdx = i
		}
	}
	if bestIdx >= 0 {
		res.Best = history[bestIdx].Config
		res.BestScore = history[bestIdx].Score
		res.BestObs = history[bestIdx].Obs
		res.QoSMeetable = history[bestIdx].Obs.AllQoSMet
	}
	return res
}
