package policies

import (
	"clite/internal/core"
	"clite/internal/resource"
	"clite/internal/server"
	"clite/internal/stats"
)

// RandPlus is the paper's RAND+ baseline: uniformly random
// configurations with a Euclidean-distance de-duplication filter, a
// pre-set sample budget ("set to be higher than the average number of
// samples collected by CLITE"), and best-score selection.
type RandPlus struct {
	// Samples is the pre-set budget (default 80).
	Samples int
	// MinDistance discards candidates closer than this (in unit space)
	// to any already-sampled configuration (default 2.0).
	MinDistance float64
	// Seed drives the sampling stream.
	Seed int64
}

// Name implements Policy.
func (RandPlus) Name() string { return "RAND+" }

func (p RandPlus) samples() int {
	if p.Samples > 0 {
		return p.Samples
	}
	return 120
}

func (p RandPlus) minDistance() float64 {
	if p.MinDistance > 0 {
		return p.MinDistance
	}
	return 2.0
}

// Run implements Policy.
func (p RandPlus) Run(m *server.Machine) (Result, error) {
	topo := m.Topology()
	jobs := m.Jobs()
	nJobs := len(jobs)
	rng := stats.NewRNG(p.Seed)

	var hist []core.Step
	var sampled []resource.Config
	for len(hist) < p.samples() {
		cfg := resource.Random(topo, nJobs, rng)
		tooClose := false
		// A candidate too close to a previous sample carries little
		// new information; retry (bounded, so degenerate spaces with
		// few distinct points still terminate).
		for _, prev := range sampled {
			if resource.Distance(cfg, prev) < p.minDistance() {
				tooClose = true
				break
			}
		}
		if tooClose {
			cfg = resource.Random(topo, nJobs, rng) // one retry, then accept
		}
		obs, err := m.Observe(cfg)
		if err != nil {
			return Result{}, err
		}
		hist, _ = recordStep(hist, jobs, cfg, obs)
		sampled = append(sampled, cfg.Clone())
	}
	return bestOf(hist), nil
}
