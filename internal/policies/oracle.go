package policies

import (
	"math"

	"clite/internal/core"
	"clite/internal/par"
	"clite/internal/resource"
	"clite/internal/server"
)

// Oracle is the paper's offline brute-force scheme: it scores
// configurations exhaustively with noise-free measurements and returns
// the best one. The paper notes it needs "typically 1000s of samples"
// and is infeasible online; here it exists as the normalizing baseline
// for every figure.
//
// Implementation note (documented in DESIGN.md §13): full enumeration
// of the default space is ~10⁸–10⁹ configurations, so Oracle
// enumerates a strided grid sized to Budget and then refines the
// winner by steepest-ascent unit transfers. Because isolation makes
// per-job performance a function of the job's own allocation only,
// per-job measurements are memoized — and because the grid is a cross
// product of per-resource compositions, the set of allocations job j
// can take is itself a small cross product, so the whole memo is
// precomputed up front into a dense mixed-radix table. The sweep then
// runs without a single hash probe: per configuration it is a few
// table lookups, the log-domain Eq. 3 sums (core.ScoreTerm), and a
// comparison that only leaves the log domain (calls Exp) when a
// candidate actually ascends — monotonicity of Exp makes the skip
// exact, not approximate.
//
// The sweep shards across workers by enumeration index: shard s owns
// the outer-composition residue class o ≡ s mod W and enumerates only
// its own blocks (resource.ForEachConfigShard), so a worker pays the
// inner cross-product cost for 1/W of the grid instead of re-walking
// all of it. Shards share the immutable precomputed table and never
// coordinate. The merge rule — highest score, ties to the lowest
// global enumeration index — reproduces the sequential first-maximum
// semantics exactly, so the result is byte-identical whatever the
// worker count (DESIGN.md §8, §13).
type Oracle struct {
	// Budget caps the number of grid configurations enumerated
	// (default 200,000); the stride is chosen to fit it.
	Budget int
	// Workers bounds the sweep's shard count: 0 means NumCPU, 1
	// forces the sequential path.
	Workers int
	// Legacy drives the pre-table sweep retained for the benchmark
	// baseline: every shard walks the full enumeration claiming its
	// residue class, per-job measurements are memoized in string-keyed
	// maps, and every configuration is re-scored through
	// core.ScoreJobs. Results are identical either way.
	Legacy bool
}

// Name implements Policy.
func (Oracle) Name() string { return "ORACLE" }

func (o Oracle) budget() int {
	if o.Budget > 0 {
		return o.Budget
	}
	return 200000
}

// measEntry is one memoized per-job measurement plus its precomputed
// Eq. 3 log term, so scoring a configuration needs no logarithms.
type measEntry struct {
	meas server.JobMeasurement
	term core.ScoreTerm
}

// tableCapPerJob bounds the precomputed table: a job whose grid
// allocation space exceeds it falls back to map memoization.
const tableCapPerJob = 1 << 16

// measTable is the dense precomputed memo: for each job, every
// allocation the strided grid can assign it, measured once, indexed
// mixed-radix by per-resource value rank. Shards read it concurrently
// without synchronization — it is immutable after build.
type measTable struct {
	// ranks[j][r][v] is the rank of unit value v for job j in resource
	// r (−1 when the grid never assigns it); dims[j][r] is the number
	// of distinct values.
	ranks   [][][]int16
	dims    [][]int
	entries [][]measEntry
}

// lookup returns job j's precomputed entry for alloc, or ok=false when
// any component lies off the grid (hill-climb probes do).
func (t *measTable) lookup(j int, a resource.Allocation) (measEntry, bool) {
	idx := 0
	ranks := t.ranks[j]
	for r, v := range a {
		rv := ranks[r]
		if v < 0 || v >= len(rv) {
			return measEntry{}, false
		}
		rk := rv[v]
		if rk < 0 {
			return measEntry{}, false
		}
		idx = idx*t.dims[j][r] + int(rk)
	}
	return t.entries[j][idx], true
}

// measTable resolves the sweep's shared table: nil in legacy mode
// (shards memoize lazily), the dense precomputed table otherwise.
func (o Oracle) measTable(m *server.Machine, topo resource.Topology, nJobs, stride int) (*measTable, error) {
	if o.Legacy {
		return nil, nil
	}
	return buildMeasTable(m, topo, nJobs, stride)
}

// buildMeasTable precomputes every per-job measurement the strided
// grid can need. It returns nil when the space is degenerate or too
// large to tabulate (the sweep then memoizes lazily instead).
func buildMeasTable(m *server.Machine, topo resource.Topology, nJobs, stride int) (*measTable, error) {
	nres := len(topo)
	if nJobs <= 0 || nres == 0 {
		return nil, nil
	}
	t := &measTable{
		ranks:   make([][][]int16, nJobs),
		dims:    make([][]int, nJobs),
		entries: make([][]measEntry, nJobs),
	}
	// Collect, per (job, resource), the distinct unit values the
	// composition enumeration assigns.
	seen := make([][][]bool, nJobs)
	for j := 0; j < nJobs; j++ {
		seen[j] = make([][]bool, nres)
		t.ranks[j] = make([][]int16, nres)
		t.dims[j] = make([]int, nres)
		for r := range topo {
			seen[j][r] = make([]bool, topo[r].Units+1)
		}
	}
	for r := range topo {
		resource.ForEachComposition(topo[r].Units, nJobs, stride, func(shares []int) bool {
			for j, v := range shares {
				seen[j][r][v] = true
			}
			return true
		})
	}
	for j := 0; j < nJobs; j++ {
		total := 1
		for r := range topo {
			rv := make([]int16, topo[r].Units+1)
			dim := 0
			for v := range rv {
				if seen[j][r][v] {
					rv[v] = int16(dim)
					dim++
				} else {
					rv[v] = -1
				}
			}
			t.ranks[j][r] = rv
			t.dims[j][r] = dim
			if total *= dim; total == 0 {
				return nil, nil // empty grid; nothing to sweep
			}
			if total > tableCapPerJob || dim > math.MaxInt16 {
				return nil, nil
			}
		}
		t.entries[j] = make([]measEntry, total)
	}
	// Fill each job's table by walking its value-set cross product.
	jobs := m.Jobs()
	alloc := make(resource.Allocation, nres)
	for j := 0; j < nJobs; j++ {
		var fill func(r, idx int) error
		fill = func(r, idx int) error {
			if r == nres {
				v, err := m.MeasureJobIdeal(j, alloc)
				if err != nil {
					return err
				}
				t.entries[j][idx] = measEntry{
					meas: v,
					term: core.MakeScoreTerm(jobs[j], v.P95, v.QoSMet, v.NormPerf),
				}
				return nil
			}
			for v, rk := range t.ranks[j][r] {
				if rk < 0 {
					continue
				}
				alloc[r] = v
				if err := fill(r+1, idx*t.dims[j][r]+int(rk)); err != nil {
					return err
				}
			}
			return nil
		}
		if err := fill(0, 0); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// oracleSweep is one shard's worth of sweep state: the shared
// measurement table, lazy fallback caches, reusable per-job scoring
// columns, and the shard-local winner.
type oracleSweep struct {
	m    *server.Machine
	jobs []server.Job

	table  *measTable
	caches []map[string]measEntry
	keyBuf []byte

	legacy   bool
	nLC, nBG int
	p95      []float64
	qosMet   []bool
	norm     []float64
	scratch  core.ScoreScratch

	examined int
	err      error

	best      resource.Config
	bestScore float64
	bestIdx   int
	// Log-domain winner key: the relevant per-class log sum of the
	// current best, used to skip Exp for non-ascending candidates.
	bestMet bool
	bestSum float64
	have    bool
}

func newOracleSweep(m *server.Machine, jobs []server.Job, table *measTable, legacy bool) *oracleSweep {
	nJobs := len(jobs)
	sw := &oracleSweep{
		m:         m,
		jobs:      jobs,
		table:     table,
		legacy:    legacy,
		caches:    make([]map[string]measEntry, nJobs),
		p95:       make([]float64, nJobs),
		qosMet:    make([]bool, nJobs),
		norm:      make([]float64, nJobs),
		bestScore: math.Inf(-1),
	}
	for j := range sw.caches {
		sw.caches[j] = make(map[string]measEntry)
	}
	for _, job := range jobs {
		if job.IsLC() {
			sw.nLC++
		} else {
			sw.nBG++
		}
	}
	return sw
}

// measure returns job j's memoized ideal measurement under alloc: the
// precomputed table when the allocation is on-grid, a string-keyed
// memo otherwise (hill-climb probes leave the grid). The fallback is
// probed through the reused key buffer — map lookups with a
// string(buf) index do not allocate; only a miss materializes the key.
func (sw *oracleSweep) measure(j int, alloc resource.Allocation) measEntry {
	if sw.table != nil {
		if e, ok := sw.table.lookup(j, alloc); ok {
			return e
		}
	}
	sw.keyBuf = appendAllocKey(sw.keyBuf[:0], alloc)
	if v, ok := sw.caches[j][string(sw.keyBuf)]; ok {
		return v
	}
	v, err := sw.m.MeasureJobIdeal(j, alloc)
	if err != nil && sw.err == nil {
		sw.err = err
	}
	e := measEntry{
		meas: v,
		term: core.MakeScoreTerm(sw.jobs[j], v.P95, v.QoSMet, v.NormPerf),
	}
	sw.caches[j][string(sw.keyBuf)] = e
	return e
}

// sums accumulates cfg's per-class Eq. 3 log sums in job order —
// exactly the order core.ScoreJobs appends to its per-class slices,
// so closing them with core.ScoreFromSums is bit-identical to
// ScoreJobs.
func (sw *oracleSweep) sums(cfg resource.Config) (lcRatioSum, lcPerfSum, bgPerfSum float64, allMet bool) {
	allMet = true
	for j := range sw.jobs {
		t := sw.measure(j, cfg.Jobs[j]).term
		if t.LC {
			lcRatioSum += t.LogRatio
			lcPerfSum += t.LogPerf
			if !t.QoSMet {
				allMet = false
			}
		} else {
			bgPerfSum += t.LogPerf
		}
	}
	return lcRatioSum, lcPerfSum, bgPerfSum, allMet
}

// score computes the exact Eq. 3 score of cfg without materializing an
// Observation. The default path closes the memoized log-term sums
// (bit-identical to ScoreJobs, see core.ScoreFromSums); the legacy
// path lands per-job measurements in the reused columns and runs
// ScoreJobs against the reused scratch.
func (sw *oracleSweep) score(cfg resource.Config) float64 {
	sw.examined++
	if !sw.legacy {
		lcR, lcP, bgP, allMet := sw.sums(cfg)
		return core.ScoreFromSums(lcR, lcP, bgP, sw.nLC, sw.nBG, allMet)
	}
	for j := range sw.jobs {
		meas := sw.measure(j, cfg.Jobs[j]).meas
		sw.p95[j] = meas.P95
		sw.qosMet[j] = meas.QoSMet
		sw.norm[j] = meas.NormPerf
	}
	return core.ScoreJobs(sw.jobs, sw.p95, sw.qosMet, sw.norm, &sw.scratch)
}

// consider scores one sweep candidate in the log domain and promotes
// it to the shard winner when it strictly improves. The skip is
// exact: within a QoS class the score is Exp of the relevant sum (a
// monotone map), and an all-met configuration always outscores an
// unmet one (its score is strictly above ½, the unmet ceiling), so a
// candidate whose (met, sum) key does not exceed the winner's cannot
// have a strictly greater score and Exp need not be called.
func (sw *oracleSweep) consider(idx int, cfg resource.Config) {
	sw.examined++
	lcR, lcP, bgP, allMet := sw.sums(cfg)
	sum := lcR
	if allMet {
		if sw.nBG > 0 {
			sum = bgP
		} else {
			sum = lcP
		}
	}
	if sw.have {
		if sw.bestMet && !allMet {
			return
		}
		if sw.bestMet == allMet && sum <= sw.bestSum {
			return
		}
	}
	// Reaching here the candidate's (met, sum) key strictly exceeds
	// the winner's (or there is no winner yet), so the key always
	// advances — even when Exp rounds the scores equal and the winner
	// itself is kept (future skips against the larger key remain
	// exact, since a score between the two keys cannot be strictly
	// greater either).
	sc := core.ScoreFromSums(lcR, lcP, bgP, sw.nLC, sw.nBG, allMet)
	sw.bestMet, sw.bestSum = allMet, sum
	if sc > sw.bestScore {
		sw.bestScore = sc
		if sw.best.NumJobs() == 0 {
			sw.best = cfg.Clone()
		} else {
			sw.best.CopyFrom(cfg)
		}
		sw.bestIdx = idx
	}
	sw.have = true
}

// observe materializes the full Observation for cfg from the cache —
// the one-per-run form the Result carries.
func (sw *oracleSweep) observe(cfg resource.Config) server.Observation {
	nJobs := len(sw.jobs)
	obs := server.Observation{
		Config:     cfg.Clone(),
		P95:        make([]float64, nJobs),
		Throughput: make([]float64, nJobs),
		QoSMet:     make([]bool, nJobs),
		NormPerf:   make([]float64, nJobs),
		AllQoSMet:  true,
	}
	for j := 0; j < nJobs; j++ {
		meas := sw.measure(j, cfg.Jobs[j]).meas
		obs.P95[j] = meas.P95
		obs.Throughput[j] = meas.Throughput
		obs.QoSMet[j] = meas.QoSMet
		obs.NormPerf[j] = meas.NormPerf
		if !meas.QoSMet {
			obs.AllQoSMet = false
		}
	}
	return obs
}

// absorb merges another shard's fallback caches and examined count
// into sw. Merging is a per-key overwrite of identical values
// (measurements are pure functions of (job, alloc)), so map iteration
// order is irrelevant to the outcome.
func (sw *oracleSweep) absorb(other *oracleSweep) {
	sw.examined += other.examined
	for j := range sw.caches {
		for k, v := range other.caches[j] {
			sw.caches[j][k] = v
		}
	}
}

// Run implements Policy.
func (o Oracle) Run(m *server.Machine) (Result, error) {
	topo := m.Topology()
	jobs := m.Jobs()
	nJobs := len(jobs)
	stride := o.chooseStride(topo, nJobs)
	workers := par.Count(o.Workers)

	// Precompute the dense measurement table the sweep reads (shared,
	// immutable, settled in one declaration: the par workers below
	// capture it). Legacy mode and oversized spaces get a nil table and
	// memoize lazily per shard instead.
	table, err := o.measTable(m, topo, nJobs, stride)
	if err != nil {
		return Result{}, err
	}

	// Grid sweep: shard by enumeration index. Shards never coordinate
	// (no scheduling sensitivity); the default path block-shards the
	// enumeration itself so each worker walks only its share, while the
	// legacy path re-walks the full grid per shard claiming its residue
	// class.
	shards := make([]*oracleSweep, workers)
	par.Go(workers, func(s int) {
		sw := newOracleSweep(m, jobs, table, o.Legacy)
		shards[s] = sw
		if o.Legacy {
			idx := 0
			resource.ForEachConfig(topo, nJobs, stride, func(cfg resource.Config) bool {
				if idx%workers == s {
					if sc := sw.score(cfg); sc > sw.bestScore {
						sw.bestScore = sc
						sw.best = cfg.Clone()
						sw.bestIdx = idx
					}
				}
				idx++
				return true
			})
			return
		}
		resource.ForEachConfigShard(topo, nJobs, stride, s, workers, func(idx int, cfg resource.Config) bool {
			sw.consider(idx, cfg)
			return true
		})
	})

	// Merge, in shard order: the winner is the highest score, ties
	// resolved to the lowest enumeration index — exactly the "first
	// maximum in enumeration order" a sequential sweep picks.
	merged := shards[0]
	var best resource.Config
	bestScore, bestIdx := math.Inf(-1), math.MaxInt
	var firstErr error
	for _, sw := range shards {
		if sw.err != nil && firstErr == nil {
			firstErr = sw.err
		}
		if sw.bestScore > bestScore || (sw.bestScore == bestScore && sw.bestIdx < bestIdx) {
			bestScore, bestIdx, best = sw.bestScore, sw.bestIdx, sw.best
		}
		if sw == merged {
			continue
		}
		merged.absorb(sw)
	}
	if firstErr != nil {
		return Result{}, firstErr
	}

	// Refine: steepest-ascent unit transfers from the grid winner and
	// from the equal split (the grid can miss narrow ridges). The
	// climbs run sequentially against the merged caches.
	for _, start := range []resource.Config{best, resource.EqualSplit(topo, nJobs)} {
		cfg, score := o.hillClimb(topo, nJobs, start, merged.score)
		if score > bestScore {
			bestScore = score
			best = cfg
		}
	}
	if merged.err != nil {
		return Result{}, merged.err
	}

	finalScore := merged.score(best)
	finalObs := merged.observe(best)
	return Result{
		Best:        best,
		BestScore:   finalScore,
		BestObs:     finalObs,
		SamplesUsed: merged.examined,
		QoSMeetable: finalObs.AllQoSMet,
	}, nil
}

// chooseStride returns the smallest stride whose grid fits the budget.
func (o Oracle) chooseStride(topo resource.Topology, nJobs int) int {
	for stride := 1; stride < 8; stride++ {
		total := 1.0
		for _, spec := range topo {
			total *= float64(resource.CompositionCount(spec.Units, nJobs, stride))
			if total > float64(o.budget()) {
				break
			}
		}
		if total <= float64(o.budget()) {
			return stride
		}
	}
	return 8
}

// hillClimb performs steepest-ascent over single-unit transfers. The
// candidate is a scratch config rebuilt by CopyFrom per probe, so the
// climb allocates only its two working configs.
func (o Oracle) hillClimb(topo resource.Topology, nJobs int, start resource.Config,
	scoreOf func(resource.Config) float64) (resource.Config, float64) {
	best := start.Clone()
	bestScore := scoreOf(best)
	cand := start.Clone()
	for {
		improved := false
		for r := range topo {
			for from := 0; from < nJobs; from++ {
				for to := 0; to < nJobs; to++ {
					cand.CopyFrom(best)
					if !cand.Transfer(r, from, to, 1) {
						continue
					}
					if s := scoreOf(cand); s > bestScore {
						bestScore = s
						best, cand = cand, best
						improved = true
					}
				}
			}
		}
		if !improved {
			return best, bestScore
		}
	}
}

// appendAllocKey appends a compact cache key for alloc to buf.
func appendAllocKey(buf []byte, a resource.Allocation) []byte {
	for _, u := range a {
		buf = append(buf, byte(u), byte(u>>8), ',')
	}
	return buf
}
