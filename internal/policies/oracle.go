package policies

import (
	"math"

	"clite/internal/core"
	"clite/internal/resource"
	"clite/internal/server"
)

// Oracle is the paper's offline brute-force scheme: it scores
// configurations exhaustively with noise-free measurements and returns
// the best one. The paper notes it needs "typically 1000s of samples"
// and is infeasible online; here it exists as the normalizing baseline
// for every figure.
//
// Implementation note (documented in DESIGN.md): full enumeration of
// the default space is ~10⁸–10⁹ configurations, so Oracle enumerates a
// strided grid sized to Budget and then refines the winner by
// steepest-ascent unit transfers. Because isolation makes per-job
// performance a function of the job's own allocation only, per-job
// measurements are memoized, which is what keeps the sweep tractable.
type Oracle struct {
	// Budget caps the number of grid configurations enumerated
	// (default 200,000); the stride is chosen to fit it.
	Budget int
}

// Name implements Policy.
func (Oracle) Name() string { return "ORACLE" }

func (o Oracle) budget() int {
	if o.Budget > 0 {
		return o.Budget
	}
	return 200000
}

// Run implements Policy.
func (o Oracle) Run(m *server.Machine) (Result, error) {
	topo := m.Topology()
	jobs := m.Jobs()
	nJobs := len(jobs)

	// Per-job measurement cache: alloc key → measurement.
	caches := make([]map[string]server.JobMeasurement, nJobs)
	for j := range caches {
		caches[j] = make(map[string]server.JobMeasurement)
	}
	var measureErr error
	measure := func(j int, alloc resource.Allocation) server.JobMeasurement {
		key := allocKey(alloc)
		if v, ok := caches[j][key]; ok {
			return v
		}
		v, err := m.MeasureJobIdeal(j, alloc)
		if err != nil && measureErr == nil {
			measureErr = err
		}
		caches[j][key] = v
		return v
	}

	examined := 0
	scoreOf := func(cfg resource.Config) (float64, server.Observation) {
		obs := server.Observation{
			Config:     cfg.Clone(),
			P95:        make([]float64, nJobs),
			Throughput: make([]float64, nJobs),
			QoSMet:     make([]bool, nJobs),
			NormPerf:   make([]float64, nJobs),
			AllQoSMet:  true,
		}
		for j := 0; j < nJobs; j++ {
			meas := measure(j, cfg.Jobs[j])
			obs.P95[j] = meas.P95
			obs.Throughput[j] = meas.Throughput
			obs.QoSMet[j] = meas.QoSMet
			obs.NormPerf[j] = meas.NormPerf
			if !meas.QoSMet {
				obs.AllQoSMet = false
			}
		}
		examined++
		return core.ScoreObservation(jobs, obs), obs
	}

	stride := o.chooseStride(topo, nJobs)
	var best resource.Config
	bestScore := math.Inf(-1)
	resource.ForEachConfig(topo, nJobs, stride, func(cfg resource.Config) bool {
		if s, _ := scoreOf(cfg); s > bestScore {
			bestScore = s
			best = cfg.Clone()
		}
		return true
	})
	if measureErr != nil {
		return Result{}, measureErr
	}

	// Refine: steepest-ascent unit transfers from the grid winner and
	// from the equal split (the grid can miss narrow ridges).
	for _, start := range []resource.Config{best, resource.EqualSplit(topo, nJobs)} {
		cfg, score := o.hillClimb(topo, nJobs, start, scoreOf)
		if score > bestScore {
			bestScore = score
			best = cfg
		}
	}
	if measureErr != nil {
		return Result{}, measureErr
	}

	finalScore, finalObs := scoreOf(best)
	return Result{
		Best:        best,
		BestScore:   finalScore,
		BestObs:     finalObs,
		SamplesUsed: examined,
		QoSMeetable: finalObs.AllQoSMet,
	}, nil
}

// chooseStride returns the smallest stride whose grid fits the budget.
func (o Oracle) chooseStride(topo resource.Topology, nJobs int) int {
	for stride := 1; stride < 8; stride++ {
		total := 1.0
		for _, spec := range topo {
			count := 0
			resource.ForEachComposition(spec.Units, nJobs, stride, func([]int) bool {
				count++
				return true
			})
			total *= float64(count)
			if total > float64(o.budget()) {
				break
			}
		}
		if total <= float64(o.budget()) {
			return stride
		}
	}
	return 8
}

// hillClimb performs steepest-ascent over single-unit transfers.
func (o Oracle) hillClimb(topo resource.Topology, nJobs int, start resource.Config,
	scoreOf func(resource.Config) (float64, server.Observation)) (resource.Config, float64) {
	best := start.Clone()
	bestScore, _ := scoreOf(best)
	for {
		improved := false
		for r := range topo {
			for from := 0; from < nJobs; from++ {
				for to := 0; to < nJobs; to++ {
					cand := best.Clone()
					if !cand.Transfer(r, from, to, 1) {
						continue
					}
					if s, _ := scoreOf(cand); s > bestScore {
						bestScore = s
						best = cand
						improved = true
					}
				}
			}
		}
		if !improved {
			return best, bestScore
		}
	}
}

func allocKey(a resource.Allocation) string {
	buf := make([]byte, 0, len(a)*3)
	for _, u := range a {
		buf = append(buf, byte(u), ',')
	}
	return string(buf)
}
