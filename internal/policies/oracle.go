package policies

import (
	"math"

	"clite/internal/core"
	"clite/internal/par"
	"clite/internal/resource"
	"clite/internal/server"
)

// Oracle is the paper's offline brute-force scheme: it scores
// configurations exhaustively with noise-free measurements and returns
// the best one. The paper notes it needs "typically 1000s of samples"
// and is infeasible online; here it exists as the normalizing baseline
// for every figure.
//
// Implementation note (documented in DESIGN.md): full enumeration of
// the default space is ~10⁸–10⁹ configurations, so Oracle enumerates a
// strided grid sized to Budget and then refines the winner by
// steepest-ascent unit transfers. Because isolation makes per-job
// performance a function of the job's own allocation only, per-job
// measurements are memoized, which is what keeps the sweep tractable.
//
// The grid sweep shards across workers by enumeration index (shard s
// scores every configuration with index ≡ s mod W), each shard scoring
// against its own measurement cache and scratch. The merge rule —
// highest score, ties to the lowest enumeration index — reproduces the
// sequential first-maximum semantics exactly, so the result is
// byte-identical whatever the worker count (DESIGN.md §8). Each config
// is scored allocation-free: no Observation is materialized and cache
// keys are probed through a reused byte buffer.
type Oracle struct {
	// Budget caps the number of grid configurations enumerated
	// (default 200,000); the stride is chosen to fit it.
	Budget int
	// Workers bounds the sweep's shard count: 0 means NumCPU, 1
	// forces the sequential path.
	Workers int
}

// Name implements Policy.
func (Oracle) Name() string { return "ORACLE" }

func (o Oracle) budget() int {
	if o.Budget > 0 {
		return o.Budget
	}
	return 200000
}

// oracleSweep is one shard's worth of sweep state: per-job measurement
// caches, reusable per-job measurement columns, scoring scratch, and
// the shard-local winner.
type oracleSweep struct {
	m    *server.Machine
	jobs []server.Job

	caches  []map[string]server.JobMeasurement
	keyBuf  []byte
	p95     []float64
	qosMet  []bool
	norm    []float64
	scratch core.ScoreScratch

	examined int
	err      error

	best      resource.Config
	bestScore float64
	bestIdx   int
}

func newOracleSweep(m *server.Machine, jobs []server.Job) *oracleSweep {
	nJobs := len(jobs)
	sw := &oracleSweep{
		m:         m,
		jobs:      jobs,
		caches:    make([]map[string]server.JobMeasurement, nJobs),
		p95:       make([]float64, nJobs),
		qosMet:    make([]bool, nJobs),
		norm:      make([]float64, nJobs),
		bestScore: math.Inf(-1),
	}
	for j := range sw.caches {
		sw.caches[j] = make(map[string]server.JobMeasurement)
	}
	return sw
}

// measure returns job j's memoized ideal measurement under alloc. The
// cache is probed through the reused key buffer — map lookups with a
// string(buf) index do not allocate; only a miss materializes the key.
func (sw *oracleSweep) measure(j int, alloc resource.Allocation) server.JobMeasurement {
	sw.keyBuf = appendAllocKey(sw.keyBuf[:0], alloc)
	if v, ok := sw.caches[j][string(sw.keyBuf)]; ok {
		return v
	}
	v, err := sw.m.MeasureJobIdeal(j, alloc)
	if err != nil && sw.err == nil {
		sw.err = err
	}
	sw.caches[j][string(sw.keyBuf)] = v
	return v
}

// score computes the Eq. 3 score of cfg without materializing an
// Observation: per-job measurements land in the reused columns and
// ScoreJobs runs against the reused scratch.
func (sw *oracleSweep) score(cfg resource.Config) float64 {
	for j := range sw.jobs {
		meas := sw.measure(j, cfg.Jobs[j])
		sw.p95[j] = meas.P95
		sw.qosMet[j] = meas.QoSMet
		sw.norm[j] = meas.NormPerf
	}
	sw.examined++
	return core.ScoreJobs(sw.jobs, sw.p95, sw.qosMet, sw.norm, &sw.scratch)
}

// observe materializes the full Observation for cfg from the cache —
// the one-per-run form the Result carries.
func (sw *oracleSweep) observe(cfg resource.Config) server.Observation {
	nJobs := len(sw.jobs)
	obs := server.Observation{
		Config:     cfg.Clone(),
		P95:        make([]float64, nJobs),
		Throughput: make([]float64, nJobs),
		QoSMet:     make([]bool, nJobs),
		NormPerf:   make([]float64, nJobs),
		AllQoSMet:  true,
	}
	for j := 0; j < nJobs; j++ {
		meas := sw.measure(j, cfg.Jobs[j])
		obs.P95[j] = meas.P95
		obs.Throughput[j] = meas.Throughput
		obs.QoSMet[j] = meas.QoSMet
		obs.NormPerf[j] = meas.NormPerf
		if !meas.QoSMet {
			obs.AllQoSMet = false
		}
	}
	return obs
}

// Run implements Policy.
func (o Oracle) Run(m *server.Machine) (Result, error) {
	topo := m.Topology()
	jobs := m.Jobs()
	nJobs := len(jobs)
	stride := o.chooseStride(topo, nJobs)
	workers := par.Count(o.Workers)

	// Grid sweep: shard by enumeration index. Every shard walks the
	// same deterministic enumeration and claims its residue class, so
	// no coordination (and no scheduling sensitivity) exists between
	// shards.
	shards := make([]*oracleSweep, workers)
	par.Go(workers, func(s int) {
		sw := newOracleSweep(m, jobs)
		shards[s] = sw
		idx := 0
		resource.ForEachConfig(topo, nJobs, stride, func(cfg resource.Config) bool {
			if idx%workers == s {
				if sc := sw.score(cfg); sc > sw.bestScore {
					sw.bestScore = sc
					sw.best = cfg.Clone()
					sw.bestIdx = idx
				}
			}
			idx++
			return true
		})
	})

	// Merge, in shard order: the winner is the highest score, ties
	// resolved to the lowest enumeration index — exactly the "first
	// maximum in enumeration order" a sequential sweep picks.
	merged := shards[0]
	var best resource.Config
	bestScore, bestIdx := math.Inf(-1), math.MaxInt
	var firstErr error
	for _, sw := range shards {
		if sw.err != nil && firstErr == nil {
			firstErr = sw.err
		}
		if sw.bestScore > bestScore || (sw.bestScore == bestScore && sw.bestIdx < bestIdx) {
			bestScore, bestIdx, best = sw.bestScore, sw.bestIdx, sw.best
		}
		if sw == merged {
			continue
		}
		merged.examined += sw.examined
		for j := range merged.caches {
			for k, v := range sw.caches[j] {
				merged.caches[j][k] = v
			}
		}
	}
	if firstErr != nil {
		return Result{}, firstErr
	}

	// Refine: steepest-ascent unit transfers from the grid winner and
	// from the equal split (the grid can miss narrow ridges). The
	// climbs run sequentially against the merged caches.
	for _, start := range []resource.Config{best, resource.EqualSplit(topo, nJobs)} {
		cfg, score := o.hillClimb(topo, nJobs, start, merged.score)
		if score > bestScore {
			bestScore = score
			best = cfg
		}
	}
	if merged.err != nil {
		return Result{}, merged.err
	}

	finalScore := merged.score(best)
	finalObs := merged.observe(best)
	return Result{
		Best:        best,
		BestScore:   finalScore,
		BestObs:     finalObs,
		SamplesUsed: merged.examined,
		QoSMeetable: finalObs.AllQoSMet,
	}, nil
}

// chooseStride returns the smallest stride whose grid fits the budget.
func (o Oracle) chooseStride(topo resource.Topology, nJobs int) int {
	for stride := 1; stride < 8; stride++ {
		total := 1.0
		for _, spec := range topo {
			count := 0
			resource.ForEachComposition(spec.Units, nJobs, stride, func([]int) bool {
				count++
				return true
			})
			total *= float64(count)
			if total > float64(o.budget()) {
				break
			}
		}
		if total <= float64(o.budget()) {
			return stride
		}
	}
	return 8
}

// hillClimb performs steepest-ascent over single-unit transfers.
func (o Oracle) hillClimb(topo resource.Topology, nJobs int, start resource.Config,
	scoreOf func(resource.Config) float64) (resource.Config, float64) {
	best := start.Clone()
	bestScore := scoreOf(best)
	for {
		improved := false
		for r := range topo {
			for from := 0; from < nJobs; from++ {
				for to := 0; to < nJobs; to++ {
					cand := best.Clone()
					if !cand.Transfer(r, from, to, 1) {
						continue
					}
					if s := scoreOf(cand); s > bestScore {
						bestScore = s
						best = cand
						improved = true
					}
				}
			}
		}
		if !improved {
			return best, bestScore
		}
	}
}

// appendAllocKey appends a compact cache key for alloc to buf.
func appendAllocKey(buf []byte, a resource.Allocation) []byte {
	for _, u := range a {
		buf = append(buf, byte(u), byte(u>>8), ',')
	}
	return buf
}
