package policies

import (
	"testing"

	"clite/internal/bo"
	"clite/internal/resource"
	"clite/internal/server"
)

// easyMix is a comfortably co-locatable 2 LC + 1 BG mix.
func easyMix(t *testing.T, seed int64) *server.Machine {
	t.Helper()
	m := server.New(resource.Default(), server.DefaultSpec(), seed)
	if _, err := m.AddLC("memcached", 0.2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddLC("img-dnn", 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddBG("streamcluster"); err != nil {
		t.Fatal(err)
	}
	return m
}

// tightMix needs most of the machine for the LC jobs.
func tightMix(t *testing.T, seed int64) *server.Machine {
	t.Helper()
	m := server.New(resource.Default(), server.DefaultSpec(), seed)
	if _, err := m.AddLC("memcached", 0.4); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddLC("xapian", 0.3); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddBG("fluidanimate"); err != nil {
		t.Fatal(err)
	}
	return m
}

func allPolicies(seed int64) []Policy {
	return []Policy{
		Oracle{},
		CLITE{},
		PARTIES{},
		Heracles{},
		RandPlus{Seed: seed},
		Genetic{Seed: seed},
	}
}

func TestPolicyNamesAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range allPolicies(1) {
		if p.Name() == "" || seen[p.Name()] {
			t.Errorf("bad or duplicate policy name %q", p.Name())
		}
		seen[p.Name()] = true
	}
}

func TestEveryPolicyReturnsFeasibleConfig(t *testing.T) {
	for _, p := range allPolicies(2) {
		m := easyMix(t, 2)
		res, err := p.Run(m)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if err := res.Best.Validate(m.Topology()); err != nil {
			t.Errorf("%s: infeasible best config: %v", p.Name(), err)
		}
		if res.SamplesUsed <= 0 {
			t.Errorf("%s: no samples recorded", p.Name())
		}
		if res.BestScore < 0 || res.BestScore > 1 {
			t.Errorf("%s: score %v out of range", p.Name(), res.BestScore)
		}
	}
}

func TestOracleDominatesOnEasyMix(t *testing.T) {
	oracleRes, err := Oracle{}.Run(easyMix(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !oracleRes.QoSMeetable {
		t.Fatal("oracle must co-locate the easy mix")
	}
	for _, p := range []Policy{CLITE{}, PARTIES{}, RandPlus{Seed: 3}, Genetic{Seed: 3}} {
		res, err := p.Run(easyMix(t, 3))
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		// Online policies score from noisy observations, so allow a
		// small measurement-noise margin above the oracle.
		if res.BestScore > oracleRes.BestScore*1.05 {
			t.Errorf("%s score %v exceeds oracle %v beyond noise", p.Name(), res.BestScore, oracleRes.BestScore)
		}
	}
}

func TestCLITEWithinOracleBand(t *testing.T) {
	// Paper headline: CLITE within ~5% of ORACLE; allow 15% across
	// simulator seeds.
	oracleRes, err := Oracle{}.Run(easyMix(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const n = 3
	for seed := int64(0); seed < n; seed++ {
		res, err := CLITE{BO: bo.Options{Seed: 40 + seed}}.Run(easyMix(t, 40+seed))
		if err != nil {
			t.Fatal(err)
		}
		if !res.QoSMeetable {
			t.Fatalf("CLITE failed to co-locate the easy mix (seed %d)", seed)
		}
		sum += res.BestScore
	}
	if avg := sum / n; avg < 0.85*oracleRes.BestScore {
		t.Errorf("CLITE avg score %v below 85%% of oracle %v", avg, oracleRes.BestScore)
	}
}

func TestCLITEBeatsPARTIESOnBGPerformance(t *testing.T) {
	// Fig. 9a / Fig. 13: CLITE keeps optimizing for BG jobs after QoS
	// is met; PARTIES stops. Compare streamcluster's normalized perf.
	var clite, parties float64
	const n = 3
	for seed := int64(0); seed < n; seed++ {
		cRes, err := CLITE{BO: bo.Options{Seed: 50 + seed}}.Run(easyMix(t, 50+seed))
		if err != nil {
			t.Fatal(err)
		}
		pRes, err := PARTIES{}.Run(easyMix(t, 50+seed))
		if err != nil {
			t.Fatal(err)
		}
		clite += cRes.BestObs.NormPerf[2] / n
		parties += pRes.BestObs.NormPerf[2] / n
	}
	if clite <= parties {
		t.Errorf("CLITE BG perf %v should beat PARTIES %v", clite, parties)
	}
}

func TestHeraclesMeetsPrimaryOnlyQoS(t *testing.T) {
	m := easyMix(t, 5)
	res, err := Heracles{}.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	// The primary (memcached, job 0) must be protected...
	if !res.BestObs.QoSMet[0] {
		t.Errorf("Heracles failed its primary job: p95=%v target=%v", res.BestObs.P95[0], m.Jobs()[0].QoS)
	}
	// ...but Heracles cannot co-locate a second LC job (Fig. 7a).
	if res.QoSMeetable {
		t.Error("Heracles should not satisfy a second LC job's QoS")
	}
}

func TestHeraclesRequiresLCJob(t *testing.T) {
	m := server.New(resource.Default(), server.DefaultSpec(), 1)
	if _, err := m.AddBG("swaptions"); err != nil {
		t.Fatal(err)
	}
	if _, err := (Heracles{}.Run(m)); err == nil {
		t.Error("Heracles without an LC job should error")
	}
}

func TestPARTIESStabilizesQuicklyOnEasyMix(t *testing.T) {
	res, err := PARTIES{}.Run(easyMix(t, 6))
	if err != nil {
		t.Fatal(err)
	}
	if !res.QoSMeetable {
		t.Fatal("PARTIES should co-locate the easy mix")
	}
	// Fig. 15a: PARTIES samples fewer configurations than CLITE — it
	// stops at the first stable QoS-meeting configuration.
	if res.SamplesUsed > 60 {
		t.Errorf("PARTIES used %d samples; it should stop early", res.SamplesUsed)
	}
}

func TestPARTIESRespectsSampleBudget(t *testing.T) {
	res, err := PARTIES{MaxSamples: 25}.Run(tightMix(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplesUsed > 25 {
		t.Errorf("budget exceeded: %d > 25", res.SamplesUsed)
	}
}

func TestRandPlusUsesExactBudgetAndDedups(t *testing.T) {
	res, err := RandPlus{Samples: 30, Seed: 8}.Run(easyMix(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplesUsed != 30 {
		t.Errorf("RAND+ used %d samples, want 30", res.SamplesUsed)
	}
	// The de-dup filter should keep samples spread out: no two
	// identical configurations.
	seen := map[string]int{}
	for _, s := range res.History {
		seen[s.Config.Key()]++
	}
	for k, n := range seen {
		if n > 2 {
			t.Errorf("configuration %s sampled %d times despite dedup", k, n)
		}
	}
}

func TestGeneticImprovesOverItsOwnPopulationSeed(t *testing.T) {
	res, err := Genetic{Samples: 60, Seed: 9}.Run(easyMix(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplesUsed != 60 {
		t.Errorf("GENETIC used %d samples, want 60", res.SamplesUsed)
	}
	// Best score must beat the average of the initial population —
	// otherwise crossover/mutation did nothing.
	var popAvg float64
	pop := 8
	for _, s := range res.History[:pop] {
		popAvg += s.Score / float64(pop)
	}
	if res.BestScore <= popAvg {
		t.Errorf("GENETIC best %v should beat initial population average %v", res.BestScore, popAvg)
	}
}

func TestOracleIsDeterministic(t *testing.T) {
	a, err := Oracle{}.Run(easyMix(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Oracle{}.Run(easyMix(t, 11)) // different machine seed: ideal evals ignore noise
	if err != nil {
		t.Fatal(err)
	}
	if !a.Best.Equal(b.Best) || a.BestScore != b.BestScore {
		t.Errorf("oracle should be deterministic: %v (%v) vs %v (%v)", a.Best, a.BestScore, b.Best, b.BestScore)
	}
}

func TestOracleBudgetControlsStride(t *testing.T) {
	small, err := Oracle{Budget: 2000}.Run(easyMix(t, 12))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Oracle{Budget: 200000}.Run(easyMix(t, 12))
	if err != nil {
		t.Fatal(err)
	}
	if small.SamplesUsed >= big.SamplesUsed {
		t.Errorf("smaller budget should examine fewer configs: %d vs %d", small.SamplesUsed, big.SamplesUsed)
	}
	// The hill-climb refinement keeps even the small-budget oracle
	// close to the large one.
	if small.BestScore < 0.95*big.BestScore {
		t.Errorf("coarse oracle %v too far below fine oracle %v", small.BestScore, big.BestScore)
	}
}

func TestOracleUsesNoObservationWindows(t *testing.T) {
	m := easyMix(t, 13)
	if _, err := (Oracle{}.Run(m)); err != nil {
		t.Fatal(err)
	}
	if m.Observations() != 0 {
		t.Errorf("oracle is offline; it must not consume observation windows (used %d)", m.Observations())
	}
}

func TestTightMixHierarchy(t *testing.T) {
	// On the tight mix the ordering ORACLE ≥ CLITE must hold and both
	// must find QoS-meeting partitions.
	oracleRes, err := Oracle{}.Run(tightMix(t, 14))
	if err != nil {
		t.Fatal(err)
	}
	if !oracleRes.QoSMeetable {
		t.Fatal("oracle must co-locate the tight mix")
	}
	cliteRes, err := CLITE{BO: bo.Options{Seed: 14}}.Run(tightMix(t, 14))
	if err != nil {
		t.Fatal(err)
	}
	if !cliteRes.QoSMeetable {
		t.Error("CLITE should co-locate the tight mix")
	}
	if cliteRes.BestScore > oracleRes.BestScore*1.05 {
		t.Errorf("CLITE %v above oracle %v beyond noise", cliteRes.BestScore, oracleRes.BestScore)
	}
}
