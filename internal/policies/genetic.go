package policies

import (
	"sort"

	"clite/internal/core"
	"clite/internal/resource"
	"clite/internal/server"
	"clite/internal/stats"
)

// Genetic is the paper's GENETIC baseline: it keeps a population of
// configurations, crosses over the two highest-scoring ones
// (per-resource composition exchange keeps children feasible by
// construction), applies unit-transfer mutations, and stops after a
// pre-set sample budget.
type Genetic struct {
	// Population is the number of live configurations (default 8).
	Population int
	// Samples is the pre-set evaluation budget (default 80).
	Samples int
	// MutationRate is the probability a child receives each of up to
	// three unit-transfer mutations (default 0.5).
	MutationRate float64
	// Seed drives all stochastic choices.
	Seed int64
}

// Name implements Policy.
func (Genetic) Name() string { return "GENETIC" }

func (g Genetic) population() int {
	if g.Population > 0 {
		return g.Population
	}
	return 8
}

func (g Genetic) samples() int {
	if g.Samples > 0 {
		return g.Samples
	}
	return 120
}

func (g Genetic) mutationRate() float64 {
	if g.MutationRate > 0 {
		return g.MutationRate
	}
	return 0.5
}

type scoredConfig struct {
	cfg   resource.Config
	score float64
}

// Run implements Policy.
func (g Genetic) Run(m *server.Machine) (Result, error) {
	topo := m.Topology()
	jobs := m.Jobs()
	nJobs := len(jobs)
	rng := stats.NewRNG(g.Seed)

	var hist []core.Step
	evaluate := func(cfg resource.Config) (float64, error) {
		obs, err := m.Observe(cfg)
		if err != nil {
			return 0, err
		}
		var score float64
		hist, score = recordStep(hist, jobs, cfg, obs)
		return score, nil
	}

	// Seed population.
	var pop []scoredConfig
	for i := 0; i < g.population() && len(hist) < g.samples(); i++ {
		cfg := resource.Random(topo, nJobs, rng)
		score, err := evaluate(cfg)
		if err != nil {
			return Result{}, err
		}
		pop = append(pop, scoredConfig{cfg: cfg, score: score})
	}

	for len(hist) < g.samples() {
		sort.Slice(pop, func(i, j int) bool { return pop[i].score > pop[j].score })
		a, b := pop[0].cfg, pop[0].cfg
		if len(pop) > 1 {
			b = pop[1].cfg
		}
		child := g.crossover(topo, nJobs, a, b, rng)
		g.mutate(topo, nJobs, child, rng)
		score, err := evaluate(child)
		if err != nil {
			return Result{}, err
		}
		pop = append(pop, scoredConfig{cfg: child, score: score})
		// Keep population bounded: drop the weakest.
		if len(pop) > g.population() {
			sort.Slice(pop, func(i, j int) bool { return pop[i].score > pop[j].score })
			pop = pop[:g.population()]
		}
	}
	return bestOf(hist), nil
}

// crossover builds a child by inheriting, per resource, the entire
// composition (all jobs' shares of that resource) from one parent —
// the exchange that keeps the unit-sum constraint intact.
func (g Genetic) crossover(topo resource.Topology, nJobs int, a, b resource.Config, rng *stats.RNG) resource.Config {
	child := resource.NewConfig(topo, nJobs)
	for r := range topo {
		src := a
		if rng.Float64() < 0.5 {
			src = b
		}
		for j := 0; j < nJobs; j++ {
			child.Jobs[j][r] = src.Jobs[j][r]
		}
	}
	return child
}

// mutate applies up to three random unit transfers ("increasing one
// type of resource allocation of one job by one unit and decreasing
// allocation of another job by one unit", Sec. 5.1).
func (g Genetic) mutate(topo resource.Topology, nJobs int, cfg resource.Config, rng *stats.RNG) {
	for k := 0; k < 3; k++ {
		if rng.Float64() > g.mutationRate() {
			continue
		}
		r := rng.Intn(len(topo))
		from := rng.Intn(nJobs)
		to := rng.Intn(nJobs)
		cfg.Transfer(r, from, to, 1)
	}
}
