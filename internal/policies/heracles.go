package policies

import (
	"errors"

	"clite/internal/core"
	"clite/internal/resource"
	"clite/internal/server"
)

// Heracles reimplements the controller of Lo et al. (ISCA'15): it
// guarantees the QoS of exactly one latency-critical job (the first LC
// job placed on the machine) and treats everything else as best-effort
// work that may grow only while the primary has latency slack. The
// non-primary jobs are left *unpartitioned* among themselves — which
// is why Heracles cannot co-locate a second LC job at any load
// (Fig. 7a): the secondary LC job contends unmanaged inside the pool.
type Heracles struct {
	// MaxSamples bounds controller decision intervals (default 60).
	MaxSamples int
	// GrowSlack / ShrinkSlack are the primary-job slack thresholds for
	// taking resources back from, or releasing them to, the pool
	// (defaults 0.10 and 0.30).
	GrowSlack   float64
	ShrinkSlack float64
}

// Name implements Policy.
func (Heracles) Name() string { return "Heracles" }

func (h Heracles) maxSamples() int {
	if h.MaxSamples > 0 {
		return h.MaxSamples
	}
	return 60
}

func (h Heracles) growSlack() float64 {
	if h.GrowSlack > 0 {
		return h.GrowSlack
	}
	return 0.10
}

func (h Heracles) shrinkSlack() float64 {
	if h.ShrinkSlack > 0 {
		return h.ShrinkSlack
	}
	return 0.30
}

// Run implements Policy.
func (h Heracles) Run(m *server.Machine) (Result, error) {
	topo := m.Topology()
	jobs := m.Jobs()
	nJobs := len(jobs)
	nres := len(topo)

	primary := -1
	for j, job := range jobs {
		if job.IsLC() {
			primary = j
			break
		}
	}
	if primary < 0 {
		return Result{}, errors.New("policies: Heracles needs a latency-critical job")
	}
	shared := make([]bool, nJobs)
	for j := range jobs {
		shared[j] = j != primary
	}
	nPool := nJobs - 1

	// Start with the primary holding everything beyond the pool's
	// one-unit floors — Heracles grows best-effort work only when the
	// primary demonstrably has slack.
	primaryUnits := make([]int, nres)
	for r, spec := range topo {
		primaryUnits[r] = spec.Units - nPool
	}

	buildConfig := func() resource.Config {
		cfg := resource.NewConfig(topo, nJobs)
		for r, spec := range topo {
			cfg.Jobs[primary][r] = primaryUnits[r]
			remaining := spec.Units - primaryUnits[r]
			// The pool's shares are nominal: the machine degrades them
			// for unmanaged contention in ObserveShared.
			base, rem := remaining/max(nPool, 1), remaining%max(nPool, 1)
			i := 0
			for j := range cfg.Jobs {
				if j == primary {
					continue
				}
				cfg.Jobs[j][r] = base
				if i < rem {
					cfg.Jobs[j][r]++
				}
				i++
			}
		}
		return cfg
	}

	var hist []core.Step
	fsmResource := 0
	stable := 0
	const stableWindows = 3

	for sample := 0; sample < h.maxSamples(); sample++ {
		cfg := buildConfig()
		var obs server.Observation
		var err error
		if nPool > 0 {
			obs, err = m.ObserveShared(cfg, shared)
		} else {
			obs, err = m.Observe(cfg)
		}
		if err != nil {
			return Result{}, err
		}
		hist, _ = recordStep(hist, jobs, cfg, obs)

		slack := (jobs[primary].QoS - obs.P95[primary]) / jobs[primary].QoS
		switch {
		case slack < h.growSlack():
			// Throttle best-effort work: reclaim one unit of the FSM
			// resource for the primary.
			stable = 0
			grown := false
			for try := 0; try < nres && !grown; try++ {
				r := fsmResource
				if primaryUnits[r] < topo[r].Units-nPool {
					primaryUnits[r]++
					grown = true
				} else {
					fsmResource = (fsmResource + 1) % nres
				}
			}
			if !grown {
				// Primary already owns everything it can.
				stable++
			}
		case slack > h.shrinkSlack() && nPool > 0:
			// Release one unit of the FSM resource to the pool.
			stable = 0
			released := false
			for try := 0; try < nres && !released; try++ {
				r := fsmResource
				if primaryUnits[r] > 1 {
					primaryUnits[r]--
					released = true
				}
				fsmResource = (fsmResource + 1) % nres
			}
			if !released {
				stable++
			}
		default:
			stable++
		}
		if stable >= stableWindows {
			break
		}
	}
	return finalOf(hist), nil
}
