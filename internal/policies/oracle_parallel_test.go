package policies

import (
	"testing"

	"clite/internal/server"
)

// TestOracleParallelIsByteIdentical runs the sharded sweep with 1 and
// 4 workers and demands identical results: same winning configuration,
// bit-equal score, same sample count. The merge rule (highest score,
// ties to the lowest enumeration index) must reproduce the sequential
// first-maximum semantics exactly.
func TestOracleParallelIsByteIdentical(t *testing.T) {
	for name, build := range map[string]func(*testing.T, int64) *server.Machine{
		"easy":  easyMix,
		"tight": tightMix,
	} {
		// Small budget keeps the sweep quick while still exercising
		// multi-shard enumeration and the hill-climb refinement.
		seq, err := Oracle{Budget: 4000, Workers: 1}.Run(build(t, 5))
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}
		par, err := Oracle{Budget: 4000, Workers: 4}.Run(build(t, 5))
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if seq.Best.Key() != par.Best.Key() {
			t.Errorf("%s: best config diverged: %s vs %s", name, seq.Best.Key(), par.Best.Key())
		}
		if seq.BestScore != par.BestScore {
			t.Errorf("%s: score diverged: %v vs %v", name, seq.BestScore, par.BestScore)
		}
		if seq.SamplesUsed != par.SamplesUsed {
			t.Errorf("%s: samples diverged: %d vs %d", name, seq.SamplesUsed, par.SamplesUsed)
		}
		if seq.QoSMeetable != par.QoSMeetable {
			t.Errorf("%s: QoSMeetable diverged", name)
		}
	}
}
