package policies

import (
	"clite/internal/core"
	"clite/internal/resource"
	"clite/internal/server"
)

// PARTIES reimplements the finite-state-machine, one-resource-at-a-time
// partitioning controller of Chen et al. (ASPLOS'19), the paper's main
// comparison point. Each decision interval it:
//
//   - upsizes one resource of the most QoS-violating LC job by one
//     unit, taken from the job with the most slack (BG jobs count as
//     infinite slack);
//   - reverts the move and advances that job's per-job resource FSM if
//     the move did not measurably help — the trial-and-error cycling
//     the paper shows getting stuck in Fig. 9b;
//   - once every LC job meets QoS, donates slack resources to the BG
//     jobs, stopping at the first stable QoS-meeting configuration —
//     unlike CLITE it does not keep optimizing BG performance
//     (Fig. 15b).
type PARTIES struct {
	// MaxSamples bounds decision intervals before PARTIES gives up
	// (default 100, the budget shown in Fig. 9b).
	MaxSamples int
	// UpsizeSlack is the slack below which a job counts as violating
	// (default 0.05).
	UpsizeSlack float64
	// DownsizeSlack is the slack above which an LC job donates
	// resources to BG jobs (default 0.30).
	DownsizeSlack float64
}

// Name implements Policy.
func (PARTIES) Name() string { return "PARTIES" }

func (p PARTIES) maxSamples() int {
	if p.MaxSamples > 0 {
		return p.MaxSamples
	}
	return 100
}

func (p PARTIES) upsizeSlack() float64 {
	if p.UpsizeSlack > 0 {
		return p.UpsizeSlack
	}
	return 0.05
}

func (p PARTIES) downsizeSlack() float64 {
	if p.DownsizeSlack > 0 {
		return p.DownsizeSlack
	}
	// PARTIES "stops its decision making process as soon as it obtains
	// the QoS-meeting configuration" (Sec. 5.2): only resources a job
	// is clearly not using get donated, which is why its BG jobs end
	// far from the oracle allocation (Fig. 9a, Fig. 13).
	return 0.60
}

// move is one tentative FSM adjustment, kept so it can be reverted.
type move struct {
	resource, from, to int
	job                int // the job the move was meant to help
	prevP95            float64
	downsize           bool
}

// Run implements Policy.
func (p PARTIES) Run(m *server.Machine) (Result, error) {
	topo := m.Topology()
	jobs := m.Jobs()
	nJobs := len(jobs)
	nres := len(topo)

	cfg := startConfig(topo, jobs)
	fsm := make([]int, nJobs) // per-job next-resource pointer

	var hist []core.Step
	var pending *move
	stable := 0
	const stableWindows = 3

	for sample := 0; sample < p.maxSamples(); sample++ {
		obs, err := m.Observe(cfg)
		if err != nil {
			return Result{}, err
		}
		hist, _ = recordStep(hist, jobs, cfg, obs)

		// Judge the pending move by whether it helped its job.
		if pending != nil {
			helped := false
			if pending.downsize {
				// A donation is fine as long as QoS still holds.
				helped = obs.QoSMet[pending.job]
			} else if obs.P95[pending.job] < pending.prevP95*0.98 {
				helped = true
			}
			if !helped {
				cfg.Transfer(pending.resource, pending.to, pending.from, 1)
				fsm[pending.job] = (fsm[pending.job] + 1) % nres
				pending = nil
				continue
			}
			pending = nil
		}

		slacks := lcSlacks(jobs, obs)
		violator, worst := -1, p.upsizeSlack()
		for j, s := range slacks {
			if jobs[j].IsLC() && s < worst {
				worst = s
				violator = j
			}
		}
		if violator >= 0 {
			stable = 0
			mv := p.upsize(topo, jobs, cfg, fsm, slacks, violator, obs)
			if mv == nil {
				// No donor anywhere: PARTIES concludes the mix cannot
				// be co-located.
				break
			}
			pending = mv
			continue
		}

		// All LC jobs meet QoS: donate slack to BG jobs, then settle.
		mv := p.downsize(topo, jobs, cfg, fsm, slacks, obs)
		if mv == nil {
			stable++
			if stable >= stableWindows {
				break
			}
			continue
		}
		stable = 0
		pending = mv
	}

	// PARTIES' outcome is the configuration it stabilized on, not the
	// best transient it happened to visit.
	return finalOf(hist), nil
}

// startConfig reproduces PARTIES' starting point as observed in
// Fig. 9b: BG jobs are stripped to one unit of each resource and the
// LC jobs split the remainder evenly.
func startConfig(topo resource.Topology, jobs []server.Job) resource.Config {
	nJobs := len(jobs)
	var lcIdx, bgIdx []int
	for j, job := range jobs {
		if job.IsLC() {
			lcIdx = append(lcIdx, j)
		} else {
			bgIdx = append(bgIdx, j)
		}
	}
	if len(lcIdx) == 0 || len(bgIdx) == 0 {
		return resource.EqualSplit(topo, nJobs)
	}
	cfg := resource.NewConfig(topo, nJobs)
	for r, spec := range topo {
		remaining := spec.Units - len(bgIdx)
		for _, j := range bgIdx {
			cfg.Jobs[j][r] = 1
		}
		base := remaining / len(lcIdx)
		rem := remaining % len(lcIdx)
		for i, j := range lcIdx {
			cfg.Jobs[j][r] = base
			if i < rem {
				cfg.Jobs[j][r]++
			}
		}
	}
	return cfg
}

// lcSlacks returns per-job latency slack (QoS − p95)/QoS; BG jobs get
// +Inf-ish slack so they are always preferred donors.
func lcSlacks(jobs []server.Job, obs server.Observation) []float64 {
	slacks := make([]float64, len(jobs))
	for j, job := range jobs {
		if job.IsLC() {
			slacks[j] = (job.QoS - obs.P95[j]) / job.QoS
		} else {
			slacks[j] = 1e9
		}
	}
	return slacks
}

// upsize takes one unit of the violator's FSM resource from the job
// with the most slack, cycling resources until a donor exists.
func (p PARTIES) upsize(topo resource.Topology, jobs []server.Job, cfg resource.Config,
	fsm []int, slacks []float64, violator int, obs server.Observation) *move {
	nres := len(topo)
	for try := 0; try < nres; try++ {
		r := fsm[violator]
		donor := -1
		// Any job currently meeting QoS can donate — taking too much
		// just makes the donor the next violator, which is exactly the
		// FSM churn the paper describes PARTIES cycling through.
		bestSlack := 0.02
		for j := range jobs {
			if j == violator || cfg.Jobs[j][r] <= 1 {
				continue
			}
			if slacks[j] > bestSlack {
				bestSlack = slacks[j]
				donor = j
			}
		}
		if donor < 0 {
			// Nobody is comfortably meeting QoS: steal from whichever
			// job hurts least. This is the thrashing regime the paper
			// shows in Fig. 9b — PARTIES keeps cycling its FSM without
			// converging until the budget runs out.
			for j := range jobs {
				if j == violator || cfg.Jobs[j][r] <= 1 {
					continue
				}
				if donor < 0 || slacks[j] > slacks[donor] {
					donor = j
				}
			}
		}
		if donor >= 0 {
			cfg.Transfer(r, donor, violator, 1)
			return &move{resource: r, from: donor, to: violator, job: violator, prevP95: obs.P95[violator]}
		}
		fsm[violator] = (fsm[violator] + 1) % nres
	}
	return nil
}

// downsize donates one unit from the slackiest LC job to the BG job
// with the least of that resource, one step at a time.
func (p PARTIES) downsize(topo resource.Topology, jobs []server.Job, cfg resource.Config,
	fsm []int, slacks []float64, obs server.Observation) *move {
	donor, best := -1, p.downsizeSlack()
	for j, job := range jobs {
		if job.IsLC() && slacks[j] > best && slacks[j] < 1e8 {
			best = slacks[j]
			donor = j
		}
	}
	if donor < 0 {
		return nil
	}
	var bgIdx []int
	for j, job := range jobs {
		if !job.IsLC() {
			bgIdx = append(bgIdx, j)
		}
	}
	if len(bgIdx) == 0 {
		return nil
	}
	r := fsm[donor]
	if cfg.Jobs[donor][r] <= 1 {
		fsm[donor] = (fsm[donor] + 1) % len(topo)
		return nil
	}
	to := bgIdx[0]
	for _, j := range bgIdx {
		if cfg.Jobs[j][r] < cfg.Jobs[to][r] {
			to = j
		}
	}
	cfg.Transfer(r, donor, to, 1)
	return &move{resource: r, from: donor, to: to, job: donor, prevP95: obs.P95[donor], downsize: true}
}
