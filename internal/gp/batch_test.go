package gp

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// batchTestModel fits a Matérn GP on a deterministic random surface
// with the given conditioning worker count.
func batchTestModel(t *testing.T, workers int) (*GP, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	const n, dim = 40, 4
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = make([]float64, dim)
		for d := range x[i] {
			x[i][d] = rng.Float64()
		}
		y[i] = math.Sin(3*x[i][0]) + 0.5*x[i][1]*x[i][2] + 0.1*rng.NormFloat64()
	}
	model, err := FitMLEWorkers("matern52", x, y, workers)
	if err != nil {
		t.Fatalf("FitMLEWorkers(%d): %v", workers, err)
	}
	probes := make([][]float64, 64)
	for i := range probes {
		probes[i] = make([]float64, dim)
		for d := range probes[i] {
			probes[i][d] = rng.Float64()
		}
	}
	return model, probes
}

// TestPredictBatchEquivalence pins the batched posterior to the
// per-point path at batch sizes 1, 7, 64, and the empty batch: every
// mean and std must agree with Predict within 1e-10 (they are in fact
// bit-equal — the batch restructures only the interleaving across
// points, never a point's own operation chain). Run under -race this
// also covers concurrent batch evaluation with per-goroutine buffers,
// and the model itself must come out byte-identical whether its
// hyperparameter grid was conditioned with 1 worker or 4.
func TestPredictBatchEquivalence(t *testing.T) {
	model, probes := batchTestModel(t, 1)
	model4, _ := batchTestModel(t, 4)

	for _, size := range []int{0, 1, 7, 64} {
		xs := probes[:size]
		means := make([]float64, size)
		stds := make([]float64, size)
		var buf PredictBuf
		if err := model.PredictBatch(xs, means, stds, &buf); err != nil {
			t.Fatalf("batch %d: %v", size, err)
		}
		for i, x := range xs {
			m, s, err := model.Predict(x)
			if err != nil {
				t.Fatalf("batch %d point %d: %v", size, i, err)
			}
			if math.Abs(means[i]-m) > 1e-10 || math.Abs(stds[i]-s) > 1e-10 {
				t.Fatalf("batch %d point %d: batch (%v, %v) vs point (%v, %v)",
					size, i, means[i], stds[i], m, s)
			}
			if math.Float64bits(means[i]) != math.Float64bits(m) ||
				math.Float64bits(stds[i]) != math.Float64bits(s) {
				t.Fatalf("batch %d point %d: batch result not bit-equal to per-point", size, i)
			}
			// The 4-worker-conditioned model must be the same model.
			m4, s4, err := model4.Predict(x)
			if err != nil {
				t.Fatalf("workers=4 model, point %d: %v", i, err)
			}
			if math.Float64bits(m4) != math.Float64bits(m) ||
				math.Float64bits(s4) != math.Float64bits(s) {
				t.Fatalf("point %d: workers=4 model diverged from workers=1", i)
			}
		}
	}

	// Concurrent batch scoring with per-goroutine buffers: the model is
	// read-only during prediction, so four goroutines hammering
	// PredictBatch must be race-free and agree with the serial answer.
	refMeans := make([]float64, len(probes))
	refStds := make([]float64, len(probes))
	var refBuf PredictBuf
	if err := model.PredictBatch(probes, refMeans, refStds, &refBuf); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			means := make([]float64, len(probes))
			stds := make([]float64, len(probes))
			var buf PredictBuf
			if err := model.PredictBatch(probes, means, stds, &buf); err != nil {
				t.Error(err)
				return
			}
			for i := range means {
				if math.Float64bits(means[i]) != math.Float64bits(refMeans[i]) ||
					math.Float64bits(stds[i]) != math.Float64bits(refStds[i]) {
					t.Errorf("concurrent batch diverged at point %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestPredictBatchSteadyStateAllocs verifies the batch path reuses its
// flat scratch: repeated batches through one buffer must not allocate.
func TestPredictBatchSteadyStateAllocs(t *testing.T) {
	model, probes := batchTestModel(t, 1)
	means := make([]float64, len(probes))
	stds := make([]float64, len(probes))
	var buf PredictBuf
	if err := model.PredictBatch(probes, means, stds, &buf); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := model.PredictBatch(probes, means, stds, &buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state PredictBatch allocated %.1f times per run", allocs)
	}
}
