package gp

import (
	"fmt"
	"math"

	"clite/internal/par"
)

// Pool maintains one incrementally-conditioned GP per hyperparameter
// grid point so that per-iteration model selection stays exact while
// the per-iteration cost drops from O(grid·n³) (refit everything,
// what FitMLE does) to O(grid·n²) (extend every factor by one row).
// This is the BO engine's steady-state surrogate path: CLITE adds
// exactly one observation per window, so refitting from scratch
// re-derives n−1 rows of every Cholesky factor it already had.
//
// Observe fans the per-model appends out over a bounded worker pool;
// Best selects by log marginal likelihood with a grid-order argmax,
// so results are byte-identical whatever the worker count.
type Pool struct {
	family  string
	workers int
	models  []*GP
	lmls    []float64
	errs    []error
	n       int
}

// NewPool returns an empty pool over the FitMLE hyperparameter grid
// for the kernel family. workers bounds the per-update fan-out
// (0 means NumCPU, 1 forces sequential).
func NewPool(family string, workers int) (*Pool, error) {
	if _, err := KernelByName(family, 1, 1); err != nil {
		return nil, err
	}
	p := &Pool{
		family:  family,
		workers: workers,
		models:  make([]*GP, len(hyperGrid)),
		lmls:    make([]float64, len(hyperGrid)),
		errs:    make([]error, len(hyperGrid)),
	}
	for i, h := range hyperGrid {
		kernel, err := KernelByName(family, h.LengthScale, 1.0)
		if err != nil {
			return nil, err
		}
		p.models[i] = New(kernel, h.Noise)
	}
	return p, nil
}

// N returns the number of samples conditioned into the pool.
func (p *Pool) N() int { return p.n }

// Condition replaces every model's training set (full refits, run
// concurrently). Use it to seed a pool with the samples accumulated
// before it was created; Observe handles the per-iteration growth.
// The Fit ownership contract applies to the x rows.
func (p *Pool) Condition(x [][]float64, y []float64) error {
	par.ForEach(p.workers, len(p.models), func(i int) {
		p.update(i, func(m *GP) error { return m.Fit(x, y) })
	})
	p.n = len(x)
	return p.firstUsable()
}

// Observe folds one more sample into every model via rank-1 appends,
// run concurrently across the pool.
func (p *Pool) Observe(x []float64, y float64) error {
	par.ForEach(p.workers, len(p.models), func(i int) {
		// Append retries a full refit by itself when the model has no
		// retained factor (earlier fit failure) or the pivot collapses.
		p.update(i, func(m *GP) error { return m.Append(x, y) })
	})
	p.n++
	return p.firstUsable()
}

// update applies one conditioning step to model i and refreshes its
// cached selection criterion. Each invocation touches only slot i, so
// concurrent updates of distinct models never share state.
func (p *Pool) update(i int, step func(*GP) error) {
	if err := step(p.models[i]); err != nil {
		p.errs[i] = err
		p.lmls[i] = math.Inf(-1)
		return
	}
	lml, err := p.models[i].LogMarginalLikelihood()
	if err != nil {
		p.errs[i] = err
		p.lmls[i] = math.Inf(-1)
		return
	}
	p.errs[i] = nil
	p.lmls[i] = lml
}

// firstUsable reports an error only when no grid point is usable.
func (p *Pool) firstUsable() error {
	for _, err := range p.errs {
		if err == nil {
			return nil
		}
	}
	return fmt.Errorf("gp: no hyperparameter setting fit the data: %w", p.errs[len(p.errs)-1])
}

// Best returns the conditioned model with the highest log marginal
// likelihood, resolving ties by grid order (the same rule as FitMLE,
// so a pool grown sample by sample selects the same model a fresh
// FitMLE over the full set would).
func (p *Pool) Best() (*GP, error) {
	var best *GP
	bestLML := math.Inf(-1)
	for i, m := range p.models {
		if p.errs[i] != nil || m.chol == nil {
			continue
		}
		if p.lmls[i] > bestLML {
			bestLML = p.lmls[i]
			best = m
		}
	}
	if best == nil {
		return nil, p.firstUsable()
	}
	return best, nil
}
