// Package gp implements Gaussian-process regression — the surrogate
// model of CLITE's Bayesian-optimization engine (Sec. 4). It provides
// the Matérn 5/2 covariance the paper selects ("does not require
// restrictions on strong smoothness"), a squared-exponential kernel
// for ablation, exact posterior inference via Cholesky factorization,
// and log-marginal-likelihood hyperparameter selection over a small
// grid (the paper's design principle: no per-job-mix parameter tuning).
package gp

import (
	"fmt"
	"math"
)

// Kernel is a positive-definite covariance function over input vectors.
type Kernel interface {
	// Eval returns k(a, b).
	Eval(a, b []float64) float64
	// Name identifies the kernel family for logs and ablation tables.
	Name() string
}

// scaledDistance returns the ARD-scaled Euclidean distance between a
// and b with per-dimension length scales; a single length scale is
// broadcast to all dimensions.
func scaledDistance(a, b, lengthScales []float64) float64 {
	var sum float64
	for i := range a {
		l := lengthScales[0]
		if len(lengthScales) > 1 {
			l = lengthScales[i]
		}
		d := (a[i] - b[i]) / l
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Matern52 is the Matérn covariance with ν = 5/2:
// k(r) = σ²·(1 + √5·r + 5r²/3)·exp(−√5·r). It yields twice-
// differentiable sample paths — smooth enough to optimize over but
// without the unrealistic infinite smoothness of the RBF, which is why
// the paper chooses it for resource-partitioning surfaces.
type Matern52 struct {
	LengthScales []float64 // one per dimension, or a single shared scale
	Variance     float64   // σ², the signal variance
}

// Eval implements Kernel.
func (k Matern52) Eval(a, b []float64) float64 {
	r := scaledDistance(a, b, k.LengthScales)
	s5r := math.Sqrt(5) * r
	return k.Variance * (1 + s5r + 5*r*r/3) * math.Exp(-s5r)
}

// Name implements Kernel.
func (k Matern52) Name() string { return "matern52" }

// RBF is the squared-exponential kernel, used as an ablation
// comparator: k(r) = σ²·exp(−r²/2).
type RBF struct {
	LengthScales []float64
	Variance     float64
}

// Eval implements Kernel.
func (k RBF) Eval(a, b []float64) float64 {
	r := scaledDistance(a, b, k.LengthScales)
	return k.Variance * math.Exp(-r*r/2)
}

// Name implements Kernel.
func (k RBF) Name() string { return "rbf" }

// kStarInto fills out[i] = k(xs[i], x) for every row, hoisting the
// kernel's interface dispatch and the per-element broadcast branch of
// scaledDistance out of the loop. The specialized single-length-scale
// bodies perform the identical per-element operations as Eval (same
// subtraction, division, and accumulation order), so the results are
// bit-equal to calling Eval per row — they are a dispatch optimization,
// not a reformulation.
func kStarInto(k Kernel, xs [][]float64, x []float64, out []float64) {
	switch kk := k.(type) {
	case Matern52:
		if len(kk.LengthScales) == 1 {
			l, v := kk.LengthScales[0], kk.Variance
			for i, xi := range xs {
				out[i] = matern52Single(xi, x, l, v)
			}
			return
		}
	case RBF:
		if len(kk.LengthScales) == 1 {
			l, v := kk.LengthScales[0], kk.Variance
			for i, xi := range xs {
				out[i] = rbfSingle(xi, x, l, v)
			}
			return
		}
	}
	for i, xi := range xs {
		out[i] = k.Eval(xi, x)
	}
}

// kernelSelf returns k(x, x), short-circuiting the stationary families
// to their signal variance. This is bit-equal to Eval(x, x): every
// per-dimension difference is (x_i − x_i)/l = +0, so the distance is
// Sqrt(+0) = +0, every distance polynomial collapses to exactly 1,
// Exp(−0) = 1 exactly, and multiplying the variance by 1 is an exact
// identity — the shortcut removes work, not precision.
func kernelSelf(k Kernel, x []float64) float64 {
	switch kk := k.(type) {
	case Matern52:
		return kk.Variance
	case RBF:
		return kk.Variance
	}
	return k.Eval(x, x)
}

// distSingle is scaledDistance specialized to one shared length scale;
// the loop body is operation-for-operation the generic one with the
// broadcast branch resolved.
func distSingle(a, b []float64, l float64) float64 {
	var sum float64
	for i := range a {
		d := (a[i] - b[i]) / l
		sum += d * d
	}
	return math.Sqrt(sum)
}

func matern52Single(a, b []float64, l, variance float64) float64 {
	r := distSingle(a, b, l)
	s5r := math.Sqrt(5) * r
	return variance * (1 + s5r + 5*r*r/3) * math.Exp(-s5r)
}

func rbfSingle(a, b []float64, l, variance float64) float64 {
	r := distSingle(a, b, l)
	return variance * math.Exp(-r*r/2)
}

// KernelByName constructs a kernel family with the given length scale,
// for configuration surfaces ("matern52" or "rbf").
func KernelByName(name string, lengthScale, variance float64) (Kernel, error) {
	switch name {
	case "matern52", "":
		return Matern52{LengthScales: []float64{lengthScale}, Variance: variance}, nil
	case "rbf":
		return RBF{LengthScales: []float64{lengthScale}, Variance: variance}, nil
	default:
		return nil, fmt.Errorf("gp: unknown kernel %q", name)
	}
}
