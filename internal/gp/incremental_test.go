package gp

import (
	"math"
	"testing"

	"clite/internal/stats"
)

// randomSet draws n SPD-safe training points in [0,1]^dim: distinct
// random vectors with targets in [0,1], the regime the BO engine
// feeds the surrogate (configurations are de-duplicated before
// evaluation, so no two rows coincide).
func randomSet(rng *stats.RNG, n, dim int) ([][]float64, []float64) {
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = make([]float64, dim)
		for d := range xs[i] {
			xs[i][d] = rng.Float64()
		}
		ys[i] = rng.Float64()
	}
	return xs, ys
}

// TestAppendMatchesFreshFit is the incremental-conditioning property
// test: growing a model one Append at a time must agree with a fresh
// Fit on the extended set to 1e-10 in posterior mean and std, across
// random SPD-safe inputs, kernels, and probe points.
func TestAppendMatchesFreshFit(t *testing.T) {
	rng := stats.NewRNG(42)
	for trial := 0; trial < 40; trial++ {
		family := "matern52"
		if trial%2 == 1 {
			family = "rbf"
		}
		n := 2 + rng.Intn(30)
		dim := 1 + rng.Intn(12)
		noise := []float64{1e-4, 1e-3, 1e-2}[rng.Intn(3)]
		length := 0.1 + 0.5*rng.Float64()
		xs, ys := randomSet(rng, n, dim)

		kg, err := KernelByName(family, length, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		grown := New(kg, noise)
		if err := grown.Fit(xs[:1], ys[:1]); err != nil {
			t.Fatalf("trial %d: seed fit: %v", trial, err)
		}
		for i := 1; i < n; i++ {
			if err := grown.Append(xs[i], ys[i]); err != nil {
				t.Fatalf("trial %d: append %d: %v", trial, i, err)
			}
		}

		kf, _ := KernelByName(family, length, 1.0)
		fresh := New(kf, noise)
		if err := fresh.Fit(xs, ys); err != nil {
			t.Fatalf("trial %d: fresh fit: %v", trial, err)
		}

		for probe := 0; probe < 8; probe++ {
			x := make([]float64, dim)
			for d := range x {
				x[d] = rng.Float64()
			}
			gm, gs, err := grown.Predict(x)
			if err != nil {
				t.Fatal(err)
			}
			fm, fs, err := fresh.Predict(x)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(gm-fm) > 1e-10 || math.Abs(gs-fs) > 1e-10 {
				t.Fatalf("trial %d n=%d dim=%d: posterior diverged: grown (%.15g, %.15g) fresh (%.15g, %.15g)",
					trial, n, dim, gm, gs, fm, fs)
			}
		}
		glml, err := grown.LogMarginalLikelihood()
		if err != nil {
			t.Fatal(err)
		}
		flml, err := fresh.LogMarginalLikelihood()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(glml-flml) > 1e-8*(1+math.Abs(flml)) {
			t.Fatalf("trial %d: LML diverged: grown %v fresh %v", trial, glml, flml)
		}
	}
}

// TestAppendSurvivesDuplicatePoint appends the exact same input twice;
// the rank-1 pivot collapses and Append must fall back to a jittered
// refit instead of failing or corrupting the model.
func TestAppendSurvivesDuplicatePoint(t *testing.T) {
	rng := stats.NewRNG(7)
	xs, ys := randomSet(rng, 12, 4)
	kernel, _ := KernelByName("matern52", 0.3, 1.0)
	g := New(kernel, 1e-6)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	dup := append([]float64(nil), xs[3]...)
	for k := 0; k < 3; k++ {
		if err := g.Append(dup, ys[3]+0.01*float64(k)); err != nil {
			t.Fatalf("append duplicate %d: %v", k, err)
		}
	}
	if g.N() != 15 {
		t.Fatalf("N=%d, want 15", g.N())
	}
	mean, std, err := g.Predict(dup)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(mean) || math.IsNaN(std) {
		t.Fatalf("posterior corrupted: mean=%v std=%v", mean, std)
	}
}

// TestFitMLEParallelIsByteIdentical runs the hyperparameter grid with
// 1 and 8 workers and demands the selected model agree byte-for-byte
// (kernel, noise, and posterior at probes).
func TestFitMLEParallelIsByteIdentical(t *testing.T) {
	rng := stats.NewRNG(9)
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(25)
		dim := 2 + rng.Intn(10)
		xs, ys := randomSet(rng, n, dim)
		seq, err := FitMLEWorkers("matern52", xs, ys, 1)
		if err != nil {
			t.Fatal(err)
		}
		parM, err := FitMLEWorkers("matern52", xs, ys, 8)
		if err != nil {
			t.Fatal(err)
		}
		if seq.noise != parM.noise {
			t.Fatalf("selected noise diverged: %v vs %v", seq.noise, parM.noise)
		}
		for probe := 0; probe < 8; probe++ {
			x := make([]float64, dim)
			for d := range x {
				x[d] = rng.Float64()
			}
			sm, ss, _ := seq.Predict(x)
			pm, ps, _ := parM.Predict(x)
			if sm != pm || ss != ps {
				t.Fatalf("posterior diverged under parallel FitMLE: (%v,%v) vs (%v,%v)", sm, ss, pm, ps)
			}
		}
	}
}

// TestPoolMatchesFitMLE grows a pool sample by sample and checks Best
// tracks what a from-scratch FitMLE would select on every prefix.
func TestPoolMatchesFitMLE(t *testing.T) {
	rng := stats.NewRNG(21)
	n, dim := 28, 8
	xs, ys := randomSet(rng, n, dim)
	pool, err := NewPool("matern52", 4)
	if err != nil {
		t.Fatal(err)
	}
	const seedN = 10
	if err := pool.Condition(xs[:seedN], ys[:seedN]); err != nil {
		t.Fatal(err)
	}
	probe := make([]float64, dim)
	for i := seedN; i < n; i++ {
		if err := pool.Observe(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
		inc, err := pool.Best()
		if err != nil {
			t.Fatal(err)
		}
		ref, err := FitMLEWorkers("matern52", xs[:i+1], ys[:i+1], 1)
		if err != nil {
			t.Fatal(err)
		}
		if inc.noise != ref.noise {
			t.Fatalf("n=%d: pool selected noise %v, FitMLE %v", i+1, inc.noise, ref.noise)
		}
		for d := range probe {
			probe[d] = rng.Float64()
		}
		im, is, _ := inc.Predict(probe)
		rm, rs, _ := ref.Predict(probe)
		if math.Abs(im-rm) > 1e-10 || math.Abs(is-rs) > 1e-10 {
			t.Fatalf("n=%d: pool posterior (%v,%v) vs refit (%v,%v)", i+1, im, is, rm, rs)
		}
	}
	if pool.N() != n {
		t.Fatalf("pool.N=%d want %d", pool.N(), n)
	}
}

// TestPredictBatchMatchesPredict checks the bulk path returns exactly
// what per-point Predict does, and that PredictWith reuses its buffer.
func TestPredictBatchMatchesPredict(t *testing.T) {
	rng := stats.NewRNG(33)
	xs, ys := randomSet(rng, 20, 6)
	model, err := FitMLE("matern52", xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	probes := make([][]float64, 50)
	for i := range probes {
		probes[i] = make([]float64, 6)
		for d := range probes[i] {
			probes[i][d] = rng.Float64()
		}
	}
	means := make([]float64, len(probes))
	stds := make([]float64, len(probes))
	var buf PredictBuf
	if err := model.PredictBatch(probes, means, stds, &buf); err != nil {
		t.Fatal(err)
	}
	for i, x := range probes {
		m, s, err := model.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if m != means[i] || s != stds[i] {
			t.Fatalf("probe %d: batch (%v,%v) vs single (%v,%v)", i, means[i], stds[i], m, s)
		}
	}
	if err := model.PredictBatch(probes, means[:10], stds, &buf); err == nil {
		t.Fatal("short output slice should error")
	}
}

// TestFitDoesNotCopyRows pins the ownership contract: the GP must
// reference the caller's rows (no deep copy), and appending to the
// caller's outer slice must not disturb the model.
func TestFitDoesNotCopyRows(t *testing.T) {
	rng := stats.NewRNG(3)
	xs, ys := randomSet(rng, 8, 3)
	kernel, _ := KernelByName("matern52", 0.3, 1.0)
	g := New(kernel, 1e-3)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	if &g.x[0][0] != &xs[0][0] {
		t.Fatal("Fit deep-copied rows; the ownership contract says it must reference them")
	}
	m1, s1, _ := g.Predict(xs[2])
	// Growing the caller's outer slice must leave the model intact.
	extra := make([]float64, 3)
	_ = append(xs, extra)
	m2, s2, _ := g.Predict(xs[2])
	if m1 != m2 || s1 != s2 {
		t.Fatal("appending to the caller's slice disturbed the model")
	}
}
