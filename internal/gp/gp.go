package gp

import (
	"errors"
	"fmt"
	"math"

	"clite/internal/linalg"
	"clite/internal/par"
	"clite/internal/stats"
)

// GP is a Gaussian-process regressor. Targets are standardized
// internally, so callers can fit raw objective scores directly.
//
// A model can be conditioned two ways: Fit replaces the training set
// wholesale (O(n³)), Append folds in one more sample via a rank-1
// Cholesky extension (O(n²)). The BO engine appends one observation
// per iteration, which is what turns the per-window surrogate update
// from the dominant cost into noise.
type GP struct {
	kernel Kernel
	noise  float64 // observation noise variance (in standardized units)

	x          [][]float64 // training rows, shared with the caller (see Fit)
	yRaw       []float64   // targets in original units
	yStd       []float64   // standardized targets
	meanY, sdY float64
	jitter     float64 // diagonal jitter applied by the last factorization

	chol  *linalg.Chol
	alpha []float64
	kRow  []float64 // scratch for Append's covariance row

	// kmat/cholBuf are the retained refit scratch: the kernel matrix
	// and factor are rebuilt in place instead of reallocated, so a
	// from-scratch refit (Fit, or Append's fallback) is allocation-free
	// at steady state. chol aliases cholBuf after a successful refit
	// and is nil after a failed one (the no-model sentinel).
	kmat    *linalg.Matrix
	cholBuf *linalg.Chol
}

// ErrNoData is returned by Predict before any Fit.
var ErrNoData = errors.New("gp: model has no training data")

// New returns a GP with the kernel and observation-noise variance.
func New(kernel Kernel, noise float64) *GP {
	if noise <= 0 {
		noise = 1e-6
	}
	return &GP{kernel: kernel, noise: noise}
}

// Kernel returns the model's covariance function.
func (g *GP) Kernel() Kernel { return g.kernel }

// Fit conditions the GP on the samples (x[i], y[i]), replacing any
// previous data.
//
// Ownership contract: the GP keeps references to the x rows instead of
// deep-copying them (the BO engine refits every observation window,
// and with the engine already holding stable normalized copies the
// per-refit O(n·d) clone was pure churn). Callers must not mutate a
// row after passing it in; the outer slice itself is copied, so
// appending to the caller's slice is fine.
func (g *GP) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("gp: bad training set: %d inputs, %d targets", len(x), len(y))
	}
	dim := len(x[0])
	for i, xi := range x {
		if len(xi) != dim {
			return fmt.Errorf("gp: input %d has dimension %d, want %d", i, len(xi), dim)
		}
	}
	g.x = append(g.x[:0], x...)
	g.yRaw = append(g.yRaw[:0], y...)
	return g.refit()
}

// refit rebuilds the factorization and weights from g.x/g.yRaw into
// the retained kmat/cholBuf scratch — no per-refit matrix or factor
// allocation once the buffers have grown to the model's size.
func (g *GP) refit() error {
	g.restandardize()
	n := len(g.x)
	if g.kmat == nil {
		g.kmat = &linalg.Matrix{}
	}
	g.kmat.Resize(n, n)
	k := g.kmat
	for i := 0; i < n; i++ {
		// Row i against x[i:] through the dispatch-hoisted batch eval;
		// arguments are ordered (x[j], x[i]) — scaledDistance squares
		// each difference, so the symmetric value is bit-equal.
		row := k.Row(i)[i:]
		kStarInto(g.kernel, g.x[i:], g.x[i], row)
		for j := i + 1; j < n; j++ {
			k.Set(j, i, row[j-i])
		}
		k.Set(i, i, k.At(i, i)+g.noise)
	}
	if g.cholBuf == nil {
		g.cholBuf = linalg.NewChol(n)
	}
	jitter, err := g.cholBuf.Factor(k, 1e-2)
	if err != nil {
		g.chol = nil
		return fmt.Errorf("gp: kernel matrix: %w", err)
	}
	g.chol = g.cholBuf
	g.jitter = jitter
	g.solveAlpha()
	return nil
}

// restandardize recomputes the target standardization over g.yRaw.
func (g *GP) restandardize() {
	g.meanY = stats.Mean(g.yRaw)
	g.sdY = stats.StdDev(g.yRaw)
	if g.sdY < 1e-9 {
		g.sdY = 1
	}
	g.yStd = g.yStd[:0]
	for _, y := range g.yRaw {
		g.yStd = append(g.yStd, (y-g.meanY)/g.sdY)
	}
}

// solveAlpha recomputes alpha = K⁻¹·yStd into the reused buffer.
func (g *GP) solveAlpha() {
	n := len(g.yStd)
	if cap(g.alpha) < n {
		g.alpha = make([]float64, n)
	}
	g.alpha = g.alpha[:n]
	g.chol.SolveInto(g.yStd, g.alpha)
}

// Append conditions the model on one more sample without refitting:
// the Cholesky factor grows by a rank-1 forward substitution (O(n²))
// and the weights are re-solved against the retained factor. Target
// standardization is recomputed over the extended set, so the
// posterior is numerically the same one a fresh Fit on the extended
// data would produce (byte-identical while the factorization needs no
// new jitter; the incremental-conditioning test pins this).
//
// If the extended kernel matrix stops being positive definite under
// the stored jitter, Append transparently falls back to a full refit
// with a fresh jitter search. The same ownership contract as Fit
// applies to x.
func (g *GP) Append(x []float64, y float64) error {
	if len(g.x) > 0 && len(x) != len(g.x[0]) {
		return fmt.Errorf("gp: appended input has dimension %d, want %d", len(x), len(g.x[0]))
	}
	if g.chol == nil || g.chol.N() != len(g.x) || len(g.x) == 0 {
		// No retained factor (first sample, or a previous fit failed):
		// fall back to a full conditioning on the extended data.
		g.x = append(g.x, x)
		g.yRaw = append(g.yRaw, y)
		return g.refit()
	}
	n := len(g.x)
	if cap(g.kRow) < n {
		g.kRow = make([]float64, 0, 2*n)
	}
	g.kRow = g.kRow[:n]
	kStarInto(g.kernel, g.x, x, g.kRow)
	diag := kernelSelf(g.kernel, x) + g.noise + g.jitter
	g.x = append(g.x, x)
	g.yRaw = append(g.yRaw, y)
	if err := g.chol.AppendRow(g.kRow, diag); err != nil {
		// Sample clusters collapsed the pivot — refactor with a fresh
		// jitter ladder, exactly as a from-scratch Fit would.
		return g.refit()
	}
	g.restandardize()
	g.solveAlpha()
	return nil
}

// N returns the number of conditioned samples.
func (g *GP) N() int { return len(g.x) }

// PredictBuf holds the scratch vectors one posterior evaluation needs.
// Reusing a buffer across calls makes Predict allocation-free — the
// acquisition maximizer evaluates the posterior thousands of times per
// BO iteration. A buffer must not be shared between goroutines; give
// each worker its own (they are cheap and grow on demand).
type PredictBuf struct {
	kStar, v []float64
	// kFlat/vFlat are the point-major batch scratch of PredictBatch:
	// m points' covariance rows and solve vectors packed contiguously
	// with stride n.
	kFlat, vFlat []float64
}

func (b *PredictBuf) grow(n int) {
	if cap(b.kStar) < n {
		b.kStar = make([]float64, n)
		b.v = make([]float64, n)
	}
	b.kStar = b.kStar[:n]
	b.v = b.v[:n]
}

func (b *PredictBuf) growBatch(m, n int) {
	if cap(b.kFlat) < m*n {
		b.kFlat = make([]float64, m*n)
		b.vFlat = make([]float64, m*n)
	}
	b.kFlat = b.kFlat[:m*n]
	b.vFlat = b.vFlat[:m*n]
}

// Predict returns the posterior mean and standard deviation at x, in
// the original (unstandardized) target units. It allocates its own
// scratch and is safe for concurrent use; hot paths should hold a
// PredictBuf and call PredictWith instead.
func (g *GP) Predict(x []float64) (mean, std float64, err error) {
	var buf PredictBuf
	return g.PredictWith(&buf, x)
}

// PredictWith is Predict with caller-owned scratch: zero allocations
// once the buffer has grown to the model's size.
func (g *GP) PredictWith(buf *PredictBuf, x []float64) (mean, std float64, err error) {
	if g.chol == nil {
		return 0, 0, ErrNoData
	}
	n := len(g.x)
	buf.grow(n)
	kStarInto(g.kernel, g.x, x, buf.kStar)
	muStd := linalg.Dot(buf.kStar, g.alpha)
	g.chol.SolveLowerInto(buf.kStar, buf.v)
	varStd := kernelSelf(g.kernel, x) - linalg.Dot(buf.v, buf.v)
	if varStd < 0 {
		varStd = 0
	}
	return muStd*g.sdY + g.meanY, math.Sqrt(varStd) * g.sdY, nil
}

// PredictBatch evaluates the posterior at every xs[i], writing into
// means[i] and stds[i] (both must have len(xs)) through one reused
// buffer. It is the bulk form of PredictWith for callers that score
// whole candidate sets — per-point results are bit-equal to
// PredictWith, but the work is restructured around the batch: kernel
// dispatch is hoisted out of the covariance fill, and the forward
// solve runs factor-row-major so each packed Cholesky row is loaded
// once for all m points instead of once per point. Per point, the
// operation chain (covariance order, dot order, substitution order)
// is exactly PredictWith's — only the interleaving across points
// changes, which FP arithmetic cannot observe.
func (g *GP) PredictBatch(xs [][]float64, means, stds []float64, buf *PredictBuf) error {
	if len(means) != len(xs) || len(stds) != len(xs) {
		return fmt.Errorf("gp: PredictBatch needs %d-slot outputs, got %d/%d", len(xs), len(means), len(stds))
	}
	m := len(xs)
	if m == 0 {
		return nil
	}
	if g.chol == nil {
		return ErrNoData
	}
	n := len(g.x)
	buf.growBatch(m, n)
	for j, x := range xs {
		kStarInto(g.kernel, g.x, x, buf.kFlat[j*n:(j+1)*n])
	}
	// Means: each point's dot runs over its contiguous covariance row
	// in the same index order as PredictWith's Dot.
	for j := 0; j < m; j++ {
		means[j] = linalg.Dot(buf.kFlat[j*n:(j+1)*n], g.alpha)*g.sdY + g.meanY
	}
	// Batched forward substitution L·v_j = kStar_j: iterate factor rows
	// outermost so row i is resident while all m points consume it.
	for i := 0; i < n; i++ {
		row := g.chol.Row(i)
		d := row[i]
		for j := 0; j < m; j++ {
			v := buf.vFlat[j*n : j*n+i+1]
			sum := buf.kFlat[j*n+i]
			for k := 0; k < i; k++ {
				sum -= row[k] * v[k]
			}
			v[i] = sum / d
		}
	}
	for j, x := range xs {
		v := buf.vFlat[j*n : (j+1)*n]
		varStd := kernelSelf(g.kernel, x) - linalg.Dot(v, v)
		if varStd < 0 {
			varStd = 0
		}
		stds[j] = math.Sqrt(varStd) * g.sdY
	}
	return nil
}

// LogMarginalLikelihood returns the log evidence of the conditioned
// data under the model (standardized units), the criterion used for
// hyperparameter selection.
func (g *GP) LogMarginalLikelihood() (float64, error) {
	if g.chol == nil {
		return 0, ErrNoData
	}
	n := float64(len(g.yStd))
	return -0.5*linalg.Dot(g.yStd, g.alpha) -
		0.5*g.chol.LogDet() -
		0.5*n*math.Log(2*math.Pi), nil
}

// hyperGrid is the length-scale × noise grid FitMLE and Pool search.
// The grid tops out at 0.6: with inputs normalized to [0,1] a unit
// length scale declares the whole space "as good as sampled",
// collapsing posterior variance and killing acquisition-driven
// exploration in the early iterations.
var hyperGrid = func() []struct{ LengthScale, Noise float64 } {
	lengthScales := []float64{0.1, 0.2, 0.35, 0.6}
	noises := []float64{1e-4, 1e-3, 1e-2}
	grid := make([]struct{ LengthScale, Noise float64 }, 0, len(lengthScales)*len(noises))
	for _, l := range lengthScales {
		for _, nz := range noises {
			grid = append(grid, struct{ LengthScale, Noise float64 }{l, nz})
		}
	}
	return grid
}()

// FitMLE fits GPs across a small hyperparameter grid (length scale ×
// noise) for the given kernel family and returns the model with the
// highest log marginal likelihood. Inputs are assumed normalized to
// [0,1] per dimension (the BO engine guarantees this), which is what
// makes a fixed grid broadly applicable and keeps CLITE free of
// per-job-mix tuning. The grid points are fit concurrently across
// NumCPU-bounded workers.
func FitMLE(family string, x [][]float64, y []float64) (*GP, error) {
	return FitMLEWorkers(family, x, y, 0)
}

// FitMLEWorkers is FitMLE over an explicit worker count (0 means
// NumCPU, 1 forces the sequential path). The selection is a grid-order
// argmax over per-point results, so the returned model is
// byte-identical whatever the worker count — ties and float compares
// are resolved by grid position, never by goroutine arrival order.
func FitMLEWorkers(family string, x [][]float64, y []float64, workers int) (*GP, error) {
	if _, err := KernelByName(family, 1, 1); err != nil {
		return nil, err
	}
	models := make([]*GP, len(hyperGrid))
	lmls := make([]float64, len(hyperGrid))
	errs := make([]error, len(hyperGrid))
	par.ForEach(workers, len(hyperGrid), func(i int) {
		kernel, err := KernelByName(family, hyperGrid[i].LengthScale, 1.0)
		if err != nil {
			errs[i] = err
			return
		}
		model := New(kernel, hyperGrid[i].Noise)
		if err := model.Fit(x, y); err != nil {
			errs[i] = err
			return
		}
		lml, err := model.LogMarginalLikelihood()
		if err != nil {
			errs[i] = err
			return
		}
		models[i] = model
		lmls[i] = lml
	})
	var best *GP
	bestLML := math.Inf(-1)
	var lastErr error
	for i, model := range models {
		if model == nil {
			if errs[i] != nil {
				lastErr = errs[i]
			}
			continue
		}
		if lmls[i] > bestLML {
			bestLML = lmls[i]
			best = model
		}
	}
	if best == nil {
		return nil, fmt.Errorf("gp: no hyperparameter setting fit the data: %w", lastErr)
	}
	return best, nil
}
