package gp

import (
	"errors"
	"fmt"
	"math"

	"clite/internal/linalg"
	"clite/internal/stats"
)

// GP is a Gaussian-process regressor. Targets are standardized
// internally, so callers can fit raw objective scores directly.
type GP struct {
	kernel Kernel
	noise  float64 // observation noise variance (in standardized units)

	x          [][]float64
	yStd       []float64 // standardized targets
	meanY, sdY float64

	chol  *linalg.Matrix
	alpha []float64
}

// ErrNoData is returned by Predict before any Fit.
var ErrNoData = errors.New("gp: model has no training data")

// New returns a GP with the kernel and observation-noise variance.
func New(kernel Kernel, noise float64) *GP {
	if noise <= 0 {
		noise = 1e-6
	}
	return &GP{kernel: kernel, noise: noise}
}

// Kernel returns the model's covariance function.
func (g *GP) Kernel() Kernel { return g.kernel }

// Fit conditions the GP on the samples (x[i], y[i]). It replaces any
// previous data — CLITE refits after every observation window, and
// with the paper's sample counts (tens) the O(n³) refit is microseconds.
func (g *GP) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("gp: bad training set: %d inputs, %d targets", len(x), len(y))
	}
	dim := len(x[0])
	for i, xi := range x {
		if len(xi) != dim {
			return fmt.Errorf("gp: input %d has dimension %d, want %d", i, len(xi), dim)
		}
	}
	g.meanY = stats.Mean(y)
	g.sdY = stats.StdDev(y)
	if g.sdY < 1e-9 {
		g.sdY = 1
	}
	g.x = make([][]float64, len(x))
	g.yStd = make([]float64, len(y))
	for i := range x {
		g.x[i] = append([]float64(nil), x[i]...)
		g.yStd[i] = (y[i] - g.meanY) / g.sdY
	}
	n := len(x)
	k := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := g.kernel.Eval(g.x[i], g.x[j])
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
		k.Set(i, i, k.At(i, i)+g.noise)
	}
	chol, _, err := linalg.Cholesky(k, 1e-2)
	if err != nil {
		return fmt.Errorf("gp: kernel matrix: %w", err)
	}
	g.chol = chol
	g.alpha = linalg.CholeskySolve(chol, g.yStd)
	return nil
}

// N returns the number of conditioned samples.
func (g *GP) N() int { return len(g.x) }

// Predict returns the posterior mean and standard deviation at x, in
// the original (unstandardized) target units.
func (g *GP) Predict(x []float64) (mean, std float64, err error) {
	if g.chol == nil {
		return 0, 0, ErrNoData
	}
	n := len(g.x)
	kStar := make([]float64, n)
	for i := 0; i < n; i++ {
		kStar[i] = g.kernel.Eval(g.x[i], x)
	}
	muStd := linalg.Dot(kStar, g.alpha)
	v := linalg.SolveLower(g.chol, kStar)
	varStd := g.kernel.Eval(x, x) - linalg.Dot(v, v)
	if varStd < 0 {
		varStd = 0
	}
	return muStd*g.sdY + g.meanY, math.Sqrt(varStd) * g.sdY, nil
}

// LogMarginalLikelihood returns the log evidence of the conditioned
// data under the model (standardized units), the criterion used for
// hyperparameter selection.
func (g *GP) LogMarginalLikelihood() (float64, error) {
	if g.chol == nil {
		return 0, ErrNoData
	}
	n := float64(len(g.yStd))
	return -0.5*linalg.Dot(g.yStd, g.alpha) -
		0.5*linalg.LogDetFromCholesky(g.chol) -
		0.5*n*math.Log(2*math.Pi), nil
}

// FitMLE fits GPs across a small hyperparameter grid (length scale ×
// noise) for the given kernel family and returns the model with the
// highest log marginal likelihood. Inputs are assumed normalized to
// [0,1] per dimension (the BO engine guarantees this), which is what
// makes a fixed grid broadly applicable and keeps CLITE free of
// per-job-mix tuning.
func FitMLE(family string, x [][]float64, y []float64) (*GP, error) {
	// The grid tops out at 0.6: with inputs normalized to [0,1] a unit
	// length scale declares the whole space "as good as sampled",
	// collapsing posterior variance and killing acquisition-driven
	// exploration in the early iterations.
	lengthScales := []float64{0.1, 0.2, 0.35, 0.6}
	noises := []float64{1e-4, 1e-3, 1e-2}
	var best *GP
	bestLML := math.Inf(-1)
	var lastErr error
	for _, l := range lengthScales {
		for _, nz := range noises {
			kernel, err := KernelByName(family, l, 1.0)
			if err != nil {
				return nil, err
			}
			model := New(kernel, nz)
			if err := model.Fit(x, y); err != nil {
				lastErr = err
				continue
			}
			lml, err := model.LogMarginalLikelihood()
			if err != nil {
				lastErr = err
				continue
			}
			if lml > bestLML {
				bestLML = lml
				best = model
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("gp: no hyperparameter setting fit the data: %w", lastErr)
	}
	return best, nil
}
