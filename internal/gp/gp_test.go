package gp

import (
	"math"
	"testing"
	"testing/quick"

	"clite/internal/stats"
)

func TestKernelByName(t *testing.T) {
	m, err := KernelByName("matern52", 0.5, 1)
	if err != nil || m.Name() != "matern52" {
		t.Fatalf("matern52: %v %v", m, err)
	}
	r, err := KernelByName("rbf", 0.5, 1)
	if err != nil || r.Name() != "rbf" {
		t.Fatalf("rbf: %v %v", r, err)
	}
	d, err := KernelByName("", 0.5, 1)
	if err != nil || d.Name() != "matern52" {
		t.Fatal("default kernel should be matern52")
	}
	if _, err := KernelByName("linear", 0.5, 1); err == nil {
		t.Error("unknown kernel should error")
	}
}

func TestKernelProperties(t *testing.T) {
	kernels := []Kernel{
		Matern52{LengthScales: []float64{0.3}, Variance: 2},
		RBF{LengthScales: []float64{0.3}, Variance: 2},
	}
	a := []float64{0.1, 0.9}
	b := []float64{0.4, 0.2}
	for _, k := range kernels {
		if got := k.Eval(a, a); math.Abs(got-2) > 1e-12 {
			t.Errorf("%s: k(a,a) = %v, want variance 2", k.Name(), got)
		}
		if k.Eval(a, b) != k.Eval(b, a) {
			t.Errorf("%s: kernel not symmetric", k.Name())
		}
		if k.Eval(a, b) >= k.Eval(a, a) {
			t.Errorf("%s: distinct points should have lower covariance", k.Name())
		}
		if k.Eval(a, b) <= 0 {
			t.Errorf("%s: covariance should be positive", k.Name())
		}
	}
}

func TestKernelDecaysWithDistanceProperty(t *testing.T) {
	k := Matern52{LengthScales: []float64{0.5}, Variance: 1}
	f := func(x1, x2 uint8) bool {
		d1 := float64(x1) / 255
		d2 := float64(x2) / 255
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		near := k.Eval([]float64{0}, []float64{d1})
		far := k.Eval([]float64{0}, []float64{d2})
		return far <= near+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestARDLengthScales(t *testing.T) {
	// A short length scale on dim 0 makes distance in dim 0 matter more.
	k := Matern52{LengthScales: []float64{0.1, 10}, Variance: 1}
	alongFirst := k.Eval([]float64{0, 0}, []float64{0.5, 0})
	alongSecond := k.Eval([]float64{0, 0}, []float64{0, 0.5})
	if alongFirst >= alongSecond {
		t.Errorf("ARD: %v should be < %v", alongFirst, alongSecond)
	}
}

func TestPredictBeforeFit(t *testing.T) {
	g := New(Matern52{LengthScales: []float64{0.3}, Variance: 1}, 1e-4)
	if _, _, err := g.Predict([]float64{0}); err != ErrNoData {
		t.Errorf("expected ErrNoData, got %v", err)
	}
	if _, err := g.LogMarginalLikelihood(); err != ErrNoData {
		t.Errorf("expected ErrNoData, got %v", err)
	}
}

func TestFitValidation(t *testing.T) {
	g := New(Matern52{LengthScales: []float64{0.3}, Variance: 1}, 1e-4)
	if err := g.Fit(nil, nil); err == nil {
		t.Error("empty fit should fail")
	}
	if err := g.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if err := g.Fit([][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
		t.Error("ragged inputs should fail")
	}
}

func TestInterpolatesTrainingPoints(t *testing.T) {
	x := [][]float64{{0}, {0.25}, {0.5}, {0.75}, {1}}
	y := []float64{0, 2, 3, 2.5, 5}
	g := New(Matern52{LengthScales: []float64{0.3}, Variance: 1}, 1e-6)
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		mean, std, err := g.Predict(x[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mean-y[i]) > 0.05 {
			t.Errorf("mean at train point %v = %v, want %v", x[i], mean, y[i])
		}
		if std > 0.1 {
			t.Errorf("std at train point %v = %v, want ≈0", x[i], std)
		}
	}
}

func TestUncertaintyGrowsAwayFromData(t *testing.T) {
	x := [][]float64{{0.4}, {0.5}, {0.6}}
	y := []float64{1, 1.2, 1.1}
	g := New(Matern52{LengthScales: []float64{0.15}, Variance: 1}, 1e-6)
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	_, stdNear, _ := g.Predict([]float64{0.5})
	_, stdFar, _ := g.Predict([]float64{0.0})
	if stdFar <= stdNear {
		t.Errorf("uncertainty should grow away from data: near %v far %v", stdNear, stdFar)
	}
}

func TestPredictRecoversSmoothFunction(t *testing.T) {
	f := func(x float64) float64 { return math.Sin(4*x) + 0.5*x }
	var xs [][]float64
	var ys []float64
	for i := 0; i <= 20; i++ {
		x := float64(i) / 20
		xs = append(xs, []float64{x})
		ys = append(ys, f(x))
	}
	g, err := FitMLE("matern52", xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.13, 0.37, 0.61, 0.88} {
		mean, _, err := g.Predict([]float64{x})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mean-f(x)) > 0.1 {
			t.Errorf("prediction at %v = %v, want ≈%v", x, mean, f(x))
		}
	}
}

func TestFitMLEPrefersBetterLengthScale(t *testing.T) {
	// Data drawn from a fast-varying function should select a shorter
	// length scale than a constant function would need; we only check
	// that the MLE pick predicts better than the worst grid point.
	rng := stats.NewRNG(9)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 25; i++ {
		x := rng.Float64()
		xs = append(xs, []float64{x})
		ys = append(ys, math.Sin(12*x))
	}
	best, err := FitMLE("matern52", xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	long := New(Matern52{LengthScales: []float64{1.0}, Variance: 1}, 1e-2)
	if err := long.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	bestLML, _ := best.LogMarginalLikelihood()
	longLML, _ := long.LogMarginalLikelihood()
	if bestLML < longLML {
		t.Errorf("MLE pick (%v) should beat the long-scale model (%v)", bestLML, longLML)
	}
}

func TestFitMLEWorksWithConstantTargets(t *testing.T) {
	xs := [][]float64{{0}, {0.5}, {1}}
	ys := []float64{2, 2, 2}
	g, err := FitMLE("matern52", xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	mean, _, err := g.Predict([]float64{0.25})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-2) > 0.2 {
		t.Errorf("constant data should predict the constant: %v", mean)
	}
}

func TestMultiDimensionalFit(t *testing.T) {
	// f(x) = −‖x − 0.5‖²: a smooth bowl in 6 dimensions (the paper's
	// smallest real spaces are 10+ dimensional).
	rng := stats.NewRNG(11)
	f := func(x []float64) float64 {
		var s float64
		for _, v := range x {
			d := v - 0.5
			s -= d * d
		}
		return s
	}
	var xs [][]float64
	var ys []float64
	for i := 0; i < 60; i++ {
		x := make([]float64, 6)
		for d := range x {
			x[d] = rng.Float64()
		}
		xs = append(xs, x)
		ys = append(ys, f(x))
	}
	g, err := FitMLE("matern52", xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	center := []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5}
	corner := []float64{0, 0, 0, 0, 0, 0}
	mc, _, _ := g.Predict(center)
	mcorner, _, _ := g.Predict(corner)
	if mc <= mcorner {
		t.Errorf("GP should rank the bowl center above a corner: %v vs %v", mc, mcorner)
	}
}

func TestNReportsSampleCount(t *testing.T) {
	g := New(Matern52{LengthScales: []float64{0.3}, Variance: 1}, 1e-4)
	if g.N() != 0 {
		t.Error("fresh GP should have 0 samples")
	}
	if err := g.Fit([][]float64{{0}, {1}}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 {
		t.Errorf("N = %d, want 2", g.N())
	}
}

func TestDuplicatePointsDoNotBreakFit(t *testing.T) {
	// Clustered/duplicate samples are routine in BO; jitter must cope.
	xs := [][]float64{{0.5}, {0.5}, {0.5}, {0.51}}
	ys := []float64{1, 1.01, 0.99, 1.02}
	g := New(Matern52{LengthScales: []float64{0.3}, Variance: 1}, 1e-6)
	if err := g.Fit(xs, ys); err != nil {
		t.Fatalf("duplicate points should be survivable: %v", err)
	}
	mean, _, err := g.Predict([]float64{0.5})
	if err != nil || math.Abs(mean-1) > 0.1 {
		t.Errorf("prediction at duplicated point: %v, %v", mean, err)
	}
}
