// Package isolation simulates the resource-isolation tools of the
// paper's Table 1: taskset core affinity, Intel CAT way partitioning,
// Intel MBA bandwidth limiting, and the memory/blkio/qdisc cgroup
// controls. The simulated machine cannot of course enforce anything,
// but the actuators matter for fidelity in three ways: they translate
// unit allocations into the concrete settings the real tools accept
// (disjoint core lists, contiguous way bitmasks, MBA percentage
// steps), they reject physically impossible settings, and they account
// for the actuation latency the paper measures at under 100 ms per
// reconfiguration.
package isolation

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"clite/internal/resource"
)

// Action is one concrete actuator invocation, rendered the way an
// operator would see it in a log.
type Action struct {
	Tool    string
	Kind    resource.Kind
	Job     int
	Setting string // e.g. "cores 0-3", "mask 0x600", "mba 40%"
}

// String renders the action.
func (a Action) String() string {
	return fmt.Sprintf("%s[job%d]: %s", a.Tool, a.Job, a.Setting)
}

// perToolCost is the simulated latency of one actuator invocation.
// The paper reports the full reconfiguration of all tools at <100 ms;
// with five resources and up to a handful of jobs this constant lands
// in that envelope.
const perToolCost = 3 * time.Millisecond

// Manager owns the actuator state for one machine and converts
// partition configurations into per-tool settings.
type Manager struct {
	topo    resource.Topology
	applied []Action
	// cost accumulates simulated actuation time; the paper notes this
	// is off the hot path (overlappable with the previous window).
	cost time.Duration
}

// NewManager returns a manager for the topology.
func NewManager(t resource.Topology) *Manager {
	return &Manager{topo: t}
}

// Apply validates the configuration and computes the full set of
// actuator invocations that realize it, replacing the previous
// settings. It returns the actions taken.
func (m *Manager) Apply(cfg resource.Config) ([]Action, error) {
	if err := cfg.Validate(m.topo); err != nil {
		return nil, fmt.Errorf("isolation: %w", err)
	}
	var actions []Action
	for r, spec := range m.topo {
		shares := make([]int, cfg.NumJobs())
		for j := range cfg.Jobs {
			shares[j] = cfg.Jobs[j][r]
		}
		acts, err := renderResource(spec, shares)
		if err != nil {
			return nil, err
		}
		actions = append(actions, acts...)
	}
	m.applied = actions
	m.cost += time.Duration(len(actions)) * perToolCost
	return actions, nil
}

// Applied returns the last applied action set.
func (m *Manager) Applied() []Action { return m.applied }

// ActuationCost returns the cumulative simulated actuation latency.
func (m *Manager) ActuationCost() time.Duration { return m.cost }

// renderResource converts one resource's shares into tool actions.
func renderResource(spec resource.Spec, shares []int) ([]Action, error) {
	switch spec.Kind {
	case resource.Cores:
		return renderTaskset(spec, shares)
	case resource.LLCWays:
		return renderCAT(spec, shares)
	case resource.MemBandwidth:
		return renderPercent(spec, shares, "Intel MBA", "mba")
	case resource.MemCapacity:
		return renderCapacity(spec, shares, "memory cgroups", "memory.limit_in_bytes")
	case resource.DiskBandwidth:
		return renderCapacity(spec, shares, "blkio cgroups", "blkio.throttle")
	case resource.NetBandwidth:
		return renderCapacity(spec, shares, "qdisc", "tbf rate")
	default:
		return nil, fmt.Errorf("isolation: no tool for resource %v", spec.Kind)
	}
}

// renderTaskset assigns each job a disjoint, contiguous block of
// logical CPU ids, the way taskset -c pins co-located jobs.
func renderTaskset(spec resource.Spec, shares []int) ([]Action, error) {
	actions := make([]Action, 0, len(shares))
	next := 0
	for j, n := range shares {
		lo, hi := next, next+n-1
		if hi >= spec.Units {
			return nil, fmt.Errorf("isolation: core assignment overflows %d cores", spec.Units)
		}
		setting := fmt.Sprintf("-c %d-%d", lo, hi)
		if n == 1 {
			setting = fmt.Sprintf("-c %d", lo)
		}
		actions = append(actions, Action{Tool: "taskset", Kind: spec.Kind, Job: j, Setting: setting})
		next = hi + 1
	}
	return actions, nil
}

// renderCAT assigns each job a contiguous way bitmask; Intel CAT
// requires masks of contiguous set bits.
func renderCAT(spec resource.Spec, shares []int) ([]Action, error) {
	actions := make([]Action, 0, len(shares))
	shift := 0
	for j, n := range shares {
		if shift+n > spec.Units {
			return nil, fmt.Errorf("isolation: CAT mask overflows %d ways", spec.Units)
		}
		mask := ((1 << n) - 1) << shift
		actions = append(actions, Action{
			Tool: "Intel CAT", Kind: spec.Kind, Job: j,
			Setting: fmt.Sprintf("mask 0x%x", mask),
		})
		shift += n
	}
	return actions, nil
}

// renderPercent expresses shares as percentages of the resource, the
// granularity Intel MBA exposes.
func renderPercent(spec resource.Spec, shares []int, tool, verb string) ([]Action, error) {
	actions := make([]Action, 0, len(shares))
	for j, n := range shares {
		pct := 100 * n / spec.Units
		actions = append(actions, Action{
			Tool: tool, Kind: spec.Kind, Job: j,
			Setting: fmt.Sprintf("%s %d%%", verb, pct),
		})
	}
	return actions, nil
}

// renderCapacity expresses shares in the resource's physical unit.
func renderCapacity(spec resource.Spec, shares []int, tool, verb string) ([]Action, error) {
	actions := make([]Action, 0, len(shares))
	for j, n := range shares {
		amount := float64(n) * spec.UnitValue
		actions = append(actions, Action{
			Tool: tool, Kind: spec.Kind, Job: j,
			Setting: fmt.Sprintf("%s %.2f %s", verb, amount, spec.UnitLabel),
		})
	}
	return actions, nil
}

// VerifyDisjoint checks that the current action set partitions every
// exclusive resource without overlap (cores, LLC ways). It exists so
// tests (and paranoid callers) can audit the actuator translation.
func VerifyDisjoint(actions []Action) error {
	coresSeen := map[int]int{}
	var wayMasks []int
	for _, a := range actions {
		switch a.Tool {
		case "taskset":
			lo, hi, err := parseCoreRange(a.Setting)
			if err != nil {
				return err
			}
			for c := lo; c <= hi; c++ {
				if owner, dup := coresSeen[c]; dup {
					return fmt.Errorf("isolation: core %d assigned to jobs %d and %d", c, owner, a.Job)
				}
				coresSeen[c] = a.Job
			}
		case "Intel CAT":
			var mask int
			if _, err := fmt.Sscanf(a.Setting, "mask 0x%x", &mask); err != nil {
				return fmt.Errorf("isolation: bad CAT setting %q", a.Setting)
			}
			for _, other := range wayMasks {
				if mask&other != 0 {
					return fmt.Errorf("isolation: overlapping CAT masks 0x%x and 0x%x", mask, other)
				}
			}
			wayMasks = append(wayMasks, mask)
		}
	}
	return nil
}

func parseCoreRange(setting string) (lo, hi int, err error) {
	s := strings.TrimPrefix(setting, "-c ")
	if strings.Contains(s, "-") {
		if _, err := fmt.Sscanf(s, "%d-%d", &lo, &hi); err != nil {
			return 0, 0, fmt.Errorf("isolation: bad taskset setting %q", setting)
		}
		return lo, hi, nil
	}
	if _, err := fmt.Sscanf(s, "%d", &lo); err != nil {
		return 0, 0, fmt.Errorf("isolation: bad taskset setting %q", setting)
	}
	return lo, lo, nil
}

// Table1 renders the paper's Table 1 (shared resources, allocation
// methods, isolation tools) for the topology, for documentation
// commands.
func Table1(t resource.Topology) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-26s %-16s %s\n", "Shared Resource", "Allocation Method", "Isolation Tool", "Units")
	kinds := make([]resource.Spec, len(t))
	copy(kinds, t)
	sort.SliceStable(kinds, func(i, j int) bool { return kinds[i].Kind < kinds[j].Kind })
	for _, spec := range kinds {
		fmt.Fprintf(&b, "%-18s %-26s %-16s %d × %.2f %s\n",
			spec.Kind, spec.Kind.AllocationMethod(), spec.Kind.IsolationTool(),
			spec.Units, spec.UnitValue, spec.UnitLabel)
	}
	return b.String()
}
