package isolation

import (
	"strings"
	"testing"
	"testing/quick"

	"clite/internal/resource"
	"clite/internal/stats"
)

func TestApplyRendersAllTools(t *testing.T) {
	topo := resource.Default()
	m := NewManager(topo)
	cfg := resource.EqualSplit(topo, 2)
	actions, err := m.Apply(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 5 resources × 2 jobs.
	if len(actions) != 10 {
		t.Fatalf("got %d actions, want 10: %v", len(actions), actions)
	}
	tools := map[string]bool{}
	for _, a := range actions {
		tools[a.Tool] = true
	}
	for _, want := range []string{"taskset", "Intel CAT", "Intel MBA", "memory cgroups", "blkio cgroups"} {
		if !tools[want] {
			t.Errorf("missing tool %q in %v", want, actions)
		}
	}
	if got := m.Applied(); len(got) != 10 {
		t.Error("Applied should return the last action set")
	}
}

func TestApplyRejectsInfeasibleConfig(t *testing.T) {
	topo := resource.Default()
	m := NewManager(topo)
	bad := resource.EqualSplit(topo, 2)
	bad.Jobs[0][0] = 0
	if _, err := m.Apply(bad); err == nil {
		t.Error("expected validation error")
	}
}

func TestTasksetRendersDisjointContiguousRanges(t *testing.T) {
	topo := resource.Default()
	m := NewManager(topo)
	cfg := resource.Extremum(topo, 3, 0)
	actions, err := m.Apply(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sets []string
	for _, a := range actions {
		if a.Tool == "taskset" {
			sets = append(sets, a.Setting)
		}
	}
	// Job 0 gets 18 cores (0-17), jobs 1 and 2 one core each.
	want := []string{"-c 0-17", "-c 18", "-c 19"}
	for i, w := range want {
		if sets[i] != w {
			t.Errorf("taskset[%d] = %q, want %q", i, sets[i], w)
		}
	}
}

func TestCATMasksAreContiguousAndExhaustive(t *testing.T) {
	topo := resource.Default()
	m := NewManager(topo)
	cfg := resource.EqualSplit(topo, 4)
	actions, err := m.Apply(cfg)
	if err != nil {
		t.Fatal(err)
	}
	union := 0
	for _, a := range actions {
		if a.Tool != "Intel CAT" {
			continue
		}
		var mask int
		if _, err := parseMask(a.Setting, &mask); err != nil {
			t.Fatal(err)
		}
		if mask == 0 {
			t.Error("empty CAT mask")
		}
		// Contiguity: mask/lowest-set-bit must be all-ones.
		norm := mask / (mask & -mask)
		if norm&(norm+1) != 0 {
			t.Errorf("non-contiguous mask 0x%x", mask)
		}
		union |= mask
	}
	if union != (1<<11)-1 {
		t.Errorf("masks don't cover all 11 ways: 0x%x", union)
	}
}

func parseMask(setting string, mask *int) (int, error) {
	var n int
	n, err := sscanfMask(setting, mask)
	return n, err
}

func sscanfMask(setting string, mask *int) (int, error) {
	s := strings.TrimPrefix(setting, "mask 0x")
	var v int
	for _, c := range s {
		v <<= 4
		switch {
		case c >= '0' && c <= '9':
			v |= int(c - '0')
		case c >= 'a' && c <= 'f':
			v |= int(c-'a') + 10
		}
	}
	*mask = v
	return 1, nil
}

func TestVerifyDisjointAcceptsValidAndRejectsOverlap(t *testing.T) {
	topo := resource.Default()
	m := NewManager(topo)
	cfg := resource.EqualSplit(topo, 3)
	actions, err := m.Apply(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDisjoint(actions); err != nil {
		t.Fatalf("valid actions rejected: %v", err)
	}
	overlap := []Action{
		{Tool: "taskset", Job: 0, Setting: "-c 0-3"},
		{Tool: "taskset", Job: 1, Setting: "-c 3-5"},
	}
	if err := VerifyDisjoint(overlap); err == nil {
		t.Error("expected overlap rejection for cores")
	}
	catOverlap := []Action{
		{Tool: "Intel CAT", Job: 0, Setting: "mask 0x3"},
		{Tool: "Intel CAT", Job: 1, Setting: "mask 0x6"},
	}
	if err := VerifyDisjoint(catOverlap); err == nil {
		t.Error("expected overlap rejection for CAT masks")
	}
}

func TestDisjointnessPropertyOnRandomConfigs(t *testing.T) {
	topo := resource.Default()
	rng := stats.NewRNG(5)
	f := func(seed int64, jobsByte uint8) bool {
		nJobs := 2 + int(jobsByte%4)
		cfg := resource.Random(topo, nJobs, rng.Split(seed))
		m := NewManager(topo)
		actions, err := m.Apply(cfg)
		if err != nil {
			return false
		}
		return VerifyDisjoint(actions) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestActuationCostAccumulates(t *testing.T) {
	topo := resource.Default()
	m := NewManager(topo)
	cfg := resource.EqualSplit(topo, 2)
	if _, err := m.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	first := m.ActuationCost()
	if first <= 0 {
		t.Fatal("expected positive actuation cost")
	}
	if _, err := m.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	if m.ActuationCost() != 2*first {
		t.Errorf("cost should accumulate: %v then %v", first, m.ActuationCost())
	}
	// Paper: full reconfiguration below 100ms.
	if first > 100*1e6 {
		t.Errorf("one reconfiguration simulated at %v, paper says <100ms", first)
	}
}

func TestMBAPercentGranularity(t *testing.T) {
	topo := resource.Default()
	m := NewManager(topo)
	cfg := resource.EqualSplit(topo, 2)
	actions, err := m.Apply(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range actions {
		if a.Tool == "Intel MBA" && a.Setting != "mba 50%" {
			t.Errorf("MBA setting = %q, want 50%% for an equal split", a.Setting)
		}
	}
}

func TestTable1ListsEveryResource(t *testing.T) {
	out := Table1(resource.Default())
	for _, want := range []string{"taskset", "Intel CAT", "Intel MBA", "memory cgroups", "blkio cgroups"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestActionString(t *testing.T) {
	a := Action{Tool: "taskset", Job: 2, Setting: "-c 0-3"}
	if got := a.String(); got != "taskset[job2]: -c 0-3" {
		t.Errorf("Action.String = %q", got)
	}
}
