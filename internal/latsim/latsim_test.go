package latsim

import (
	"math"
	"testing"
	"testing/quick"

	"clite/internal/stats"
)

func TestCapacityAndUtilization(t *testing.T) {
	q := Queue{Servers: 4, ServiceRate: 100}
	if got := q.Capacity(); got != 400 {
		t.Errorf("Capacity = %v, want 400", got)
	}
	if got := q.Utilization(200); got != 0.5 {
		t.Errorf("Utilization = %v, want 0.5", got)
	}
	if !math.IsInf(Queue{}.Utilization(10), 1) {
		t.Error("zero-capacity utilization should be +Inf")
	}
}

func TestErlangCSingleServerIsRho(t *testing.T) {
	// For M/M/1 the waiting probability equals ρ.
	q := Queue{Servers: 1, ServiceRate: 10}
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		got := q.ErlangC(rho * 10)
		if math.Abs(got-rho) > 1e-9 {
			t.Errorf("ErlangC(rho=%v) = %v, want %v", rho, got, rho)
		}
	}
}

func TestErlangCKnownValue(t *testing.T) {
	// Classic call-center example: c=10 servers, a=8 Erlangs offered
	// load → C ≈ 0.4092 (standard tables).
	q := Queue{Servers: 10, ServiceRate: 1}
	got := q.ErlangC(8)
	if math.Abs(got-0.4092) > 0.002 {
		t.Errorf("ErlangC = %v, want ≈0.4092", got)
	}
}

func TestErlangCBounds(t *testing.T) {
	q := Queue{Servers: 5, ServiceRate: 10}
	if got := q.ErlangC(0); got != 0 {
		t.Errorf("ErlangC(0) = %v, want 0", got)
	}
	if got := q.ErlangC(60); got != 1 {
		t.Errorf("overloaded ErlangC = %v, want 1", got)
	}
	f := func(lamByte uint16) bool {
		lam := float64(lamByte%490) / 10.0 // < capacity 50
		c := q.ErlangC(lam)
		return c >= 0 && c <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResponseTailProperties(t *testing.T) {
	q := Queue{Servers: 3, ServiceRate: 50}
	lambda := 100.0
	if got := q.ResponseTail(lambda, 0); got != 1 {
		t.Errorf("Tail(0) = %v, want 1", got)
	}
	prev := 1.0
	for ts := 0.001; ts < 0.5; ts *= 1.7 {
		tail := q.ResponseTail(lambda, ts)
		if tail < -1e-12 || tail > prev+1e-12 {
			t.Fatalf("tail not monotone decreasing in [0,1]: %v at t=%v (prev %v)", tail, ts, prev)
		}
		prev = tail
	}
	if q.ResponseTail(lambda, 10) > 1e-6 {
		t.Error("tail should vanish for large t")
	}
}

func TestResponsePercentileInvertsTail(t *testing.T) {
	q := Queue{Servers: 2, ServiceRate: 200}
	lambda := 300.0
	for _, p := range []float64{50, 90, 95, 99} {
		ts := q.ResponsePercentile(lambda, p)
		tail := q.ResponseTail(lambda, ts)
		if math.Abs(tail-(1-p/100)) > 1e-6 {
			t.Errorf("percentile %v: tail(%v) = %v", p, ts, tail)
		}
	}
	if !math.IsInf(q.ResponsePercentile(500, 95), 1) {
		t.Error("overloaded percentile should be +Inf")
	}
}

func TestMeanResponseMM1(t *testing.T) {
	// M/M/1: E[T] = 1/(μ−λ).
	q := Queue{Servers: 1, ServiceRate: 10}
	got := q.MeanResponse(6)
	if math.Abs(got-0.25) > 1e-9 {
		t.Errorf("MeanResponse = %v, want 0.25", got)
	}
	if !math.IsInf(q.MeanResponse(10), 1) {
		t.Error("saturated mean should be +Inf")
	}
}

func TestP95MonotoneInLoad(t *testing.T) {
	q := Queue{Servers: 4, ServiceRate: 100}
	prev := 0.0
	for lam := 10.0; lam < 600; lam += 10 {
		p := q.P95(lam, 2.0)
		if p < prev-1e-9 {
			t.Fatalf("P95 not monotone at λ=%v: %v < %v", lam, p, prev)
		}
		prev = p
	}
}

func TestP95OverloadGrowsWithLoad(t *testing.T) {
	q := Queue{Servers: 2, ServiceRate: 100}
	atCap := q.P95(200, 2.0)
	beyond := q.P95(400, 2.0)
	if beyond <= atCap {
		t.Errorf("overload P95 should keep growing: %v vs %v", beyond, atCap)
	}
	if beyond > 6.0 {
		t.Errorf("overload P95 should stay on the order of the window: %v", beyond)
	}
}

func TestP95DegenerateQueue(t *testing.T) {
	if got := (Queue{}).P95(100, 2.0); got != 2.0 {
		t.Errorf("degenerate queue P95 = %v, want window", got)
	}
}

func TestMeasureP95NoiseShrinksWithLoad(t *testing.T) {
	q := Queue{Servers: 8, ServiceRate: 500}
	rng := stats.NewRNG(21)
	spread := func(lambda float64) float64 {
		ideal := q.P95(lambda, 2.0)
		var rel []float64
		for i := 0; i < 400; i++ {
			rel = append(rel, q.MeasureP95(lambda, 2.0, rng)/ideal)
		}
		return stats.StdDev(rel)
	}
	low := spread(20)    // 40 queries per window
	high := spread(2000) // 4000 queries per window
	if high >= low {
		t.Errorf("noise should shrink with more queries: %v vs %v", high, low)
	}
	if low > 0.7 || high > 0.05 {
		t.Errorf("noise out of calibrated range: low-load %v, high-load %v", low, high)
	}
}

func TestMeasureP95Unbiasedish(t *testing.T) {
	q := Queue{Servers: 4, ServiceRate: 250}
	rng := stats.NewRNG(31)
	ideal := q.P95(600, 2.0)
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		sum += q.MeasureP95(600, 2.0, rng)
	}
	if got := sum / n; math.Abs(got/ideal-1) > 0.02 {
		t.Errorf("measured mean %v vs ideal %v", got, ideal)
	}
}

// TestAnalyticMatchesDiscreteEventSim is the package's ground-truth
// check: the closed-form p95 must agree with a discrete-event
// simulation of the same queue.
func TestAnalyticMatchesDiscreteEventSim(t *testing.T) {
	cases := []struct {
		q      Queue
		lambda float64
	}{
		{Queue{Servers: 1, ServiceRate: 1000}, 600},
		{Queue{Servers: 4, ServiceRate: 300}, 700},
		{Queue{Servers: 8, ServiceRate: 100}, 500},
	}
	rng := stats.NewRNG(77)
	for _, c := range cases {
		var all []float64
		for rep := 0; rep < 30; rep++ {
			all = append(all, SimulateWindow(c.q, c.lambda, 10, rng.Split(int64(rep)))...)
		}
		simP95 := stats.Percentile(all, 95)
		anaP95 := c.q.ResponsePercentile(c.lambda, 95)
		if math.Abs(simP95/anaP95-1) > 0.08 {
			t.Errorf("c=%d μ=%v λ=%v: DES p95 %v vs analytic %v",
				c.q.Servers, c.q.ServiceRate, c.lambda, simP95, anaP95)
		}
	}
}

func TestSimulateWindowEdgeCases(t *testing.T) {
	rng := stats.NewRNG(1)
	if got := SimulateWindow(Queue{}, 10, 1, rng); got != nil {
		t.Error("degenerate queue should simulate nothing")
	}
	if got := SimulateWindow(Queue{Servers: 1, ServiceRate: 1}, 0, 1, rng); got != nil {
		t.Error("zero load should simulate nothing")
	}
	resp := SimulateWindow(Queue{Servers: 2, ServiceRate: 100}, 50, 2, rng)
	for i := 1; i < len(resp); i++ {
		if resp[i] < resp[i-1] {
			t.Fatal("responses should be sorted")
		}
		if resp[i] < 0 {
			t.Fatal("negative response time")
		}
	}
}
