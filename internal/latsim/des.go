package latsim

import (
	"container/heap"
	"sort"

	"clite/internal/stats"
)

// SimulateWindow runs a discrete-event simulation of an M/M/c FCFS
// queue over a window of the given length (seconds) and returns the
// per-request response times in completion order. It exists to
// validate the closed-form distribution in this package and to provide
// a ground-truth measurement mode for tests; the controller path uses
// the much cheaper analytic MeasureP95.
func SimulateWindow(q Queue, lambda, window float64, rng *stats.RNG) []float64 {
	if q.Servers <= 0 || q.ServiceRate <= 0 || lambda <= 0 || window <= 0 {
		return nil
	}
	type event struct {
		at   float64
		kind int // 0 = arrival, 1 = departure
		id   int
	}
	var pq eventQueue
	heap.Init(&pq)

	// Pre-generate arrivals over the window.
	arrivalAt := []float64{}
	t := rng.Exponential(1 / lambda)
	for t < window {
		arrivalAt = append(arrivalAt, t)
		t += rng.Exponential(1 / lambda)
	}
	for i, at := range arrivalAt {
		heap.Push(&pq, eventItem{at: at, kind: 0, id: i})
	}

	busy := 0
	var waiting []int // FIFO queue of request ids
	start := make([]float64, len(arrivalAt))
	var responses []float64

	serve := func(id int, now float64) {
		busy++
		heap.Push(&pq, eventItem{at: now + rng.Exponential(1/q.ServiceRate), kind: 1, id: id})
	}

	for pq.Len() > 0 {
		ev := heap.Pop(&pq).(eventItem)
		switch ev.kind {
		case 0: // arrival
			start[ev.id] = ev.at
			if busy < q.Servers {
				serve(ev.id, ev.at)
			} else {
				waiting = append(waiting, ev.id)
			}
		case 1: // departure
			busy--
			responses = append(responses, ev.at-start[ev.id])
			if len(waiting) > 0 {
				next := waiting[0]
				waiting = waiting[1:]
				serve(next, ev.at)
			}
		}
	}
	sort.Float64s(responses)
	return responses
}

type eventItem struct {
	at   float64
	kind int
	id   int
}

type eventQueue []eventItem

func (q eventQueue) Len() int            { return len(q) }
func (q eventQueue) Less(i, j int) bool  { return q[i].at < q[j].at }
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(eventItem)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}
