// Package latsim provides the tail-latency machinery under the
// simulated latency-critical workloads: exact M/M/c response-time
// distributions (Erlang-C), percentile inversion, overload behaviour,
// noisy windowed measurement, and a discrete-event simulator used to
// validate the analytic formulas.
//
// The paper measures each candidate resource partition by running the
// real system for a two-second observation window and reading the 95th
// percentile latency from performance counters. Here a workload's
// resource allocation determines a service rate and a parallelism
// level (see internal/workload); latsim turns those plus the offered
// load into the p95 an observation window would report, including the
// sampling noise a finite window implies.
package latsim

import (
	"math"

	"clite/internal/stats"
)

// Queue is an M/M/c queueing station: c homogeneous servers, each
// completing work at rate ServiceRate requests/second.
type Queue struct {
	Servers     int
	ServiceRate float64 // per-server μ, requests/second
}

// Capacity returns the maximum sustainable arrival rate c·μ.
func (q Queue) Capacity() float64 {
	return float64(q.Servers) * q.ServiceRate
}

// Utilization returns ρ = λ/(c·μ).
func (q Queue) Utilization(lambda float64) float64 {
	cap := q.Capacity()
	if cap <= 0 {
		return math.Inf(1)
	}
	return lambda / cap
}

// ErlangC returns the probability that an arriving request must wait,
// computed with the standard numerically-stable recurrence.
func (q Queue) ErlangC(lambda float64) float64 {
	c := q.Servers
	rho := q.Utilization(lambda)
	if rho >= 1 {
		return 1
	}
	if lambda <= 0 {
		return 0
	}
	a := lambda / q.ServiceRate // offered load in Erlangs
	// Erlang-B recurrence: B(0)=1, B(k) = a·B(k−1)/(k + a·B(k−1)).
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	// Erlang-C from Erlang-B.
	return b / (1 - rho*(1-b))
}

// ResponseTail returns P(T > t) for the sojourn time T (wait + service)
// of an M/M/c FCFS queue. The waiting time is exactly
// P(W > t) = C·e^{−θt} with θ = cμ−λ, and W is independent of the
// exponential service time S, giving a closed form for the tail.
func (q Queue) ResponseTail(lambda, t float64) float64 {
	mu := q.ServiceRate
	theta := q.Capacity() - lambda
	if theta <= 0 {
		if t <= 0 {
			return 1
		}
		return 1 // overloaded: handled by OverloadP95
	}
	return tailWith(q.ErlangC(lambda), mu, theta, t)
}

// tailWith evaluates the sojourn tail given a precomputed waiting
// probability pw = ErlangC(λ); pw depends only on (λ, q), so callers
// that probe many t values (percentile bisection) compute it once.
func tailWith(pw, mu, theta, t float64) float64 {
	if t <= 0 {
		return 1
	}
	if math.Abs(mu-theta) < 1e-9*mu {
		// Degenerate case μ ≈ θ: S+E is Gamma(2, μ).
		return (1-pw)*math.Exp(-mu*t) + pw*(1+mu*t)*math.Exp(-mu*t)
	}
	sTail := math.Exp(-mu * t)
	convTail := (mu*math.Exp(-theta*t) - theta*math.Exp(-mu*t)) / (mu - theta)
	return (1-pw)*sTail + pw*convTail
}

// ResponsePercentile inverts ResponseTail by bisection, returning the
// p-th percentile (p in (0,100)) of the sojourn time in seconds. The
// Erlang-C waiting probability is invariant across the bisection, so
// it is computed once and shared by every tail probe (the recurrence
// is O(c) and would otherwise dominate the 80-step search).
func (q Queue) ResponsePercentile(lambda, p float64) float64 {
	if q.Utilization(lambda) >= 1 {
		return math.Inf(1)
	}
	target := 1 - p/100
	// Bracket: the mean sojourn is 1/μ + C/θ; the percentile cannot
	// exceed a generous multiple of it.
	mu := q.ServiceRate
	theta := q.Capacity() - lambda
	pw := q.ErlangC(lambda)
	hi := (1/mu + pw/theta) * 50
	lo := 0.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if tailWith(pw, mu, theta, mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// MeanResponse returns E[T] = 1/μ + C/(cμ−λ), or +Inf when overloaded.
func (q Queue) MeanResponse(lambda float64) float64 {
	theta := q.Capacity() - lambda
	if theta <= 0 {
		return math.Inf(1)
	}
	return 1/q.ServiceRate + q.ErlangC(lambda)/theta
}

// overloadThreshold is the utilization beyond which the analytic
// steady-state percentile is replaced by transient overload growth:
// near saturation a two-second window never reaches steady state.
const overloadThreshold = 0.98

// tailInflation calibrates the service-variability correction added on
// top of the exact M/M/c percentile. Real serving stacks have service
// time distributions with coefficient of variation well above 1
// (garbage collection, lock convoys, request-size skew), which makes
// tail latency bend upward much earlier than the exponential-service
// model predicts — this Kingman-style ρ²/(1−ρ) term reproduces that
// hockey-stick shape, putting the Fig. 6 knees around 80–85%%
// utilization as in the paper instead of at 98%%.
const tailInflation = 2.0

// inflatedP95 is the measured-system p95: the exact M/M/c percentile
// plus the service-variability correction.
func (q Queue) inflatedP95(lambda float64) float64 {
	rho := q.Utilization(lambda)
	return q.ResponsePercentile(lambda, 95) +
		tailInflation/q.ServiceRate*rho*rho/(1-rho)
}

// OverloadP95 models the p95 an observation window of the given length
// reports when the station is saturated: the backlog grows at rate
// λ−cμ, so late-window requests see a queueing delay proportional to
// the elapsed window. It is continuous-ish with the analytic branch at
// the threshold and strictly increasing in λ, which gives search
// policies a gradient to climb out of infeasible regions.
func (q Queue) OverloadP95(lambda, window float64) float64 {
	cap := q.Capacity()
	if cap <= 0 {
		return window
	}
	// Base: the (inflation-corrected) p95 at the threshold utilization.
	base := q.inflatedP95(overloadThreshold * cap)
	excess := lambda/cap - overloadThreshold
	if excess < 0 {
		excess = 0
	}
	// Each unit of excess utilization adds backlog worth a fraction of
	// the window by its 95th percentile arrival.
	return base + 0.95*window*excess
}

// P95 returns the 95th-percentile latency for offered load lambda as a
// full observation window would report it in steady state, switching
// to the transient overload model near and beyond saturation.
func (q Queue) P95(lambda, window float64) float64 {
	if q.Servers <= 0 || q.ServiceRate <= 0 {
		return window
	}
	if q.Utilization(lambda) >= overloadThreshold {
		return q.OverloadP95(lambda, window)
	}
	return q.inflatedP95(lambda)
}

// MeasureP95 reports the p95 of one observation window: the analytic
// value perturbed by sampling noise whose magnitude shrinks with the
// number of queries observed in the window (few queries → a shaky
// percentile estimate, the effect the paper's two-second window is
// sized to control).
func (q Queue) MeasureP95(lambda, window float64, rng *stats.RNG) float64 {
	ideal := q.P95(lambda, window)
	n := lambda * window // expected queries in the window
	if n < 1 {
		n = 1
	}
	// The standard error of an empirical p95 over n samples scales as
	// ~1/√(n·p·(1−p)); 0.35 calibrates to a few percent of noise at
	// the paper's typical (thousands of queries per window) regime.
	sigma := stats.Clamp(0.35/math.Sqrt(n*0.05), 0.005, 0.6)
	return ideal * rng.LogNormalFactor(sigma)
}
