package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"clite/internal/par"
)

// The registry must hold exact counts when hammered from concurrent
// workers — the cluster pipeline and par.ForEach both write into it.
func TestRegistryConcurrentExactCounts(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 8, 10_000
	c := reg.Counter("test_total")
	h := reg.Histogram("test_hist", IterationBuckets())
	par.ForEach(workers, workers, func(w int) {
		// Half the workers resolve their own handles mid-flight, which
		// must return the same underlying metric.
		local := c
		if w%2 == 0 {
			local = reg.Counter("test_total")
		}
		for i := 0; i < perWorker; i++ {
			local.Inc()
			h.Observe(float64(i % 300))
			reg.Gauge("test_gauge").Set(float64(w))
		}
	})
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	wantSum := 0.0
	for i := 0; i < perWorker; i++ {
		wantSum += float64(i % 300)
	}
	wantSum *= workers
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %v, want %v", got, wantSum)
	}
	// Bucket totals must equal the observation count (no lost updates).
	var bucketTotal int64
	for _, m := range reg.Snapshot() {
		if m.Name == "test_hist" {
			for _, bk := range m.Buckets {
				bucketTotal += bk.Count
			}
		}
	}
	if bucketTotal != workers*perWorker {
		t.Errorf("bucket total = %d, want %d", bucketTotal, workers*perWorker)
	}
}

// Disabled telemetry must be free: nil handles swallow calls with zero
// allocations, which is what keeps CLITERun's disabled path identical
// to the uninstrumented build.
func TestNilHandlesZeroAlloc(t *testing.T) {
	var (
		tr  *Tracer
		reg *Registry
		c   *Counter
		g   *Gauge
		h   *Histogram
	)
	allocs := testing.AllocsPerRun(100, func() {
		tr.Emit(BOIteration(3, 0.1, 0.8, 7))
		tr.Emit(ObservationWindow(2.0, 1, false))
		tr.Emit(QoSViolation(2.0, 0, 0.004, 0.003))
		id := tr.Begin("screen", 1)
		tr.End("screen", 1, id, 4, true)
		tr.Merge(nil, 0)
		c.Inc()
		c.Add(5)
		g.Set(1.5)
		h.Observe(0.25)
		_ = reg.Counter("x")
		_ = reg.Gauge("y")
		_ = reg.Histogram("z", nil)
		_ = reg.Snapshot()
		_ = tr.Events()
		_ = tr.Len()
	})
	if allocs != 0 {
		t.Errorf("nil-guarded telemetry allocated %.1f per run, want 0", allocs)
	}
}

func TestTracerStepsMonotonic(t *testing.T) {
	tr := NewTracer()
	tr.Emit(BOIteration(0, 0.5, 0.2, 1))
	id := tr.Begin("assess", -1)
	tr.Emit(PlacementPhase("prefilter", 2, 3, true))
	tr.End("assess", -1, id, 3, true)
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("len = %d, want 4", len(events))
	}
	for i, ev := range events {
		if ev.Step != int64(i)+1 {
			t.Errorf("event %d has step %d", i, ev.Step)
		}
	}
	if events[1].Span != events[3].Span || events[1].Span == 0 {
		t.Errorf("span ids unmatched: begin=%d end=%d", events[1].Span, events[3].Span)
	}
	if events[0].Iter != 0 || events[0].Job != -1 {
		t.Errorf("BOIteration fields: %+v", events[0])
	}
}

// Merge must re-stamp steps and span ids so a merged stream looks like
// it was recorded on the destination tracer, and must tag node-less
// events with the committing node.
func TestMergeRestampsAndTagsNode(t *testing.T) {
	dst := NewTracer()
	dst.Begin("a", -1) // span 1, step 1
	src := NewTracer()
	sid := src.Begin("screen", -1)
	src.Emit(BOIteration(0, 0.4, 0.1, 2))
	src.End("screen", -1, sid, 2, true)
	dst.Merge(src, 3)

	events := dst.Events()
	if len(events) != 4 {
		t.Fatalf("len = %d, want 4", len(events))
	}
	for i, ev := range events {
		if ev.Step != int64(i)+1 {
			t.Errorf("event %d step = %d after merge", i, ev.Step)
		}
	}
	if events[1].Span != 2 || events[3].Span != 2 {
		t.Errorf("merged span not re-based: begin=%d end=%d", events[1].Span, events[3].Span)
	}
	for _, ev := range events[1:] {
		if ev.Node != 3 {
			t.Errorf("merged event not tagged with node: %+v", ev)
		}
	}
	// A later span on dst must not collide with the merged ids.
	if id := dst.Begin("b", -1); id != 3 {
		t.Errorf("next span id = %d, want 3", id)
	}
}

// The same sequence of emits must serialize to the same bytes — the
// foundation of the cross-run JSONL determinism tests at higher
// layers.
func TestJSONLDeterministic(t *testing.T) {
	build := func() *Tracer {
		tr := NewTracer()
		tr.Emit(BOIteration(1, 0.25, 0.75, 4))
		tr.Emit(QoSViolation(1.5, 2, 0.0041, 0.0030))
		tr.Emit(Termination("ei-drop", 12, 0.81))
		return tr
	}
	var a, b bytes.Buffer
	if err := build().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("JSONL streams differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), `"kind":"bo-iteration"`) {
		t.Errorf("missing bo-iteration line:\n%s", a.String())
	}
	if lines := strings.Count(a.String(), "\n"); lines != 3 {
		t.Errorf("want 3 lines, got %d", lines)
	}
}

func TestPrometheusText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("cluster_placements_total").Add(3)
	reg.Gauge("bo_best_score").Set(0.82)
	h := reg.Histogram("bo_acq_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)
	out := reg.PrometheusText()
	for _, want := range []string{
		"# TYPE bo_acq_seconds histogram",
		`bo_acq_seconds_bucket{le="0.001"} 1`,
		`bo_acq_seconds_bucket{le="+Inf"} 2`,
		"bo_acq_seconds_count 2",
		"# TYPE bo_best_score gauge",
		"bo_best_score 0.82",
		"# TYPE cluster_placements_total counter",
		"cluster_placements_total 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus text missing %q:\n%s", want, out)
		}
	}
	// Deterministic: snapshot order is sorted by name.
	if out != reg.PrometheusText() {
		t.Error("PrometheusText not deterministic")
	}
}

func TestSummaryFiltersAndAligns(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("cluster_placements_total").Add(2)
	reg.Counter("cluster_cache_hits_total").Add(7)
	reg.Counter("bo_iterations_total").Add(40)
	out := reg.Summary("cluster_")
	if strings.Contains(out, "bo_iterations_total") {
		t.Errorf("prefix filter leaked: %s", out)
	}
	if !strings.Contains(out, "cluster_placements_total") || !strings.Contains(out, "7") {
		t.Errorf("summary missing rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 rows, got %d:\n%s", len(lines), out)
	}
	// Aligned: the value column starts at the same offset on each line.
	if strings.Index(lines[0], "  2") < 0 && strings.Index(lines[0], "  7") < 0 {
		t.Errorf("summary rows unaligned:\n%s", out)
	}
}

// Quantile interpolates within the bucket holding the rank instead of
// snapping to a bound — the obs rollup's p95 depends on it.
func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_hist", []float64{1, 2, 4})
	// 2 in (0,1], 2 in (1,2], 4 in (2,4], 2 in (4,+Inf).
	for _, v := range []float64{0.5, 0.9, 1.5, 1.9, 2.5, 3, 3.5, 3.9, 5, 9} {
		h.Observe(v)
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 0},     // rank 0: bottom of the first bucket
		{0.1, 0.5}, // rank 1: halfway through the first bucket
		{0.2, 1},   // rank 2: exactly the first bound
		{0.4, 2},   // rank 4: exactly the second bound
		{0.5, 2.5}, // rank 5: a quarter into (2,4]
		{0.8, 4},   // rank 8: the last finite bound
		{0.95, 4},  // overflow bucket: clamp to the last finite bound
		{1, 4},     // same
		{-0.5, 0},  // q clamps to [0,1]
		{1.5, 4},   // same
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// The snapshot view must agree with the live histogram.
	for _, m := range reg.Snapshot() {
		if m.Name == "q_hist" {
			for _, c := range cases {
				if got := m.Quantile(c.q); got != c.want {
					t.Errorf("Metric.Quantile(%v) = %v, want %v", c.q, got, c.want)
				}
			}
		}
	}
	// Empty and nil histograms answer 0.
	if got := reg.Histogram("empty", nil).Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil Quantile = %v", got)
	}
}

// A tap must see every event exactly once, in final stream order,
// including events re-stamped by Merge — the obs store's feed.
func TestTapSeesFinalStreamOrder(t *testing.T) {
	tr := NewTracer()
	var tapped []Event
	tr.SetTap(func(ev Event) { tapped = append(tapped, ev) })

	tr.Emit(BOIteration(0, 0.3, 0.1, 1))
	id := tr.Begin("place", 2)
	src := NewTracer()
	sid := src.Begin("screen", -1)
	src.End("screen", -1, sid, 1, true)
	tr.Merge(src, 2)
	tr.End("place", 2, id, 1, true)

	events := tr.Events()
	if len(tapped) != len(events) {
		t.Fatalf("tap saw %d events, tracer has %d", len(tapped), len(events))
	}
	for i := range events {
		if tapped[i] != events[i] {
			t.Errorf("tap event %d = %+v, tracer has %+v", i, tapped[i], events[i])
		}
	}
	// Merged events reach the tap already re-stamped.
	if tapped[2].Step != 3 || tapped[2].Node != 2 {
		t.Errorf("merged event not re-stamped at tap: %+v", tapped[2])
	}
	// Detach: no further deliveries.
	tr.SetTap(nil)
	tr.Emit(Termination("done", 1, 0.5))
	if len(tapped) != len(events) {
		t.Errorf("tap fired after detach")
	}
}

func TestCountKindsAndKinds(t *testing.T) {
	events := []Event{
		BOIteration(0, 1, 0, 1),
		BOIteration(1, 0.5, 0.2, 2),
		Termination("stagnation", 5, 0.7),
	}
	counts := CountKinds(events)
	if counts[KindBOIteration] != 2 || counts[KindTermination] != 1 {
		t.Errorf("counts = %v", counts)
	}
	kinds := Kinds(events)
	if len(kinds) != 2 || kinds[0] != KindBOIteration {
		t.Errorf("kinds = %v", kinds)
	}
}
