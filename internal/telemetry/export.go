package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WriteJSONL streams the timeline as one JSON object per line, in step
// order. For a seeded run with deterministic merging the output is
// byte-identical across repeats and worker counts.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// PrometheusText renders the registry in the Prometheus text
// exposition format (counters, gauges, and cumulative histogram
// buckets), sorted by metric name.
func (r *Registry) PrometheusText() string {
	var b strings.Builder
	for _, m := range r.Snapshot() {
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.Name, m.Kind)
		switch m.Kind {
		case "histogram":
			cum := int64(0)
			for _, bk := range m.Buckets {
				cum += bk.Count
				le := "+Inf"
				if !math.IsInf(bk.UpperBound, 1) {
					le = trimFloat(bk.UpperBound)
				}
				fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", m.Name, le, cum)
			}
			fmt.Fprintf(&b, "%s_sum %s\n", m.Name, trimFloat(m.Sum))
			fmt.Fprintf(&b, "%s_count %d\n", m.Name, m.Count)
		default:
			fmt.Fprintf(&b, "%s %s\n", m.Name, trimFloat(m.Value))
		}
	}
	return b.String()
}

// Summary renders the registry as a human-readable two-column table,
// optionally restricted to metrics whose name starts with one of the
// given prefixes. Histograms render as count/mean; floats are rounded
// to 5 significant digits (the table is for eyes — PrometheusText and
// the JSONL stream keep full precision). Used by cmd/clite for its
// pipeline ledger so human output has one code path.
func (r *Registry) Summary(prefixes ...string) string {
	var rows [][2]string
	width := 0
	for _, m := range r.Snapshot() {
		if len(prefixes) > 0 && !hasAnyPrefix(m.Name, prefixes) {
			continue
		}
		var val string
		switch m.Kind {
		case "histogram":
			val = fmt.Sprintf("n=%d mean=%s", m.Count, roundFloat(m.Value))
		case "gauge":
			val = roundFloat(m.Value)
		default:
			val = fmt.Sprintf("%d", int64(m.Value))
		}
		rows = append(rows, [2]string{m.Name, val})
		if len(m.Name) > width {
			width = len(m.Name)
		}
	}
	var b strings.Builder
	for _, row := range rows {
		fmt.Fprintf(&b, "  %-*s  %s\n", width, row[0], row[1])
	}
	return b.String()
}

func hasAnyPrefix(s string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(s, p) {
			return true
		}
	}
	return false
}

// trimFloat formats v compactly: integers without a decimal point,
// everything else with minimal digits.
func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// roundFloat is trimFloat at 5 significant digits — the human-table
// form.
func roundFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.5g", v)
}

// CountKinds tallies events by kind — a convenience for tests and the
// harness telemetry experiment.
func CountKinds(events []Event) map[string]int {
	counts := make(map[string]int)
	for _, ev := range events {
		counts[ev.Kind]++
	}
	return counts
}

// Kinds returns the distinct kinds present in events, sorted.
func Kinds(events []Event) []string {
	counts := CountKinds(events)
	out := make([]string, 0, len(counts))
	for k := range counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
