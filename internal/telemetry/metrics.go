// Package telemetry is the repo's unified observability layer: a
// zero-dependency metrics registry (counters, gauges, fixed-bucket
// histograms) plus a structured trace of typed events, shared by the
// controller, the BO engine, the simulated machine, the fault
// injector, and the cluster scheduler.
//
// Two rules shape the design (DESIGN.md §10):
//
//   - Disabled means free. Every handle is nil-safe: a nil *Tracer,
//     *Counter, *Gauge, or *Histogram swallows its calls without
//     allocating, so instrumented hot paths cost two pointer compares
//     when telemetry is off and the controller's output stays
//     byte-identical to the uninstrumented build.
//
//   - Traces are deterministic. Events carry monotonic step numbers
//     and simulated time, never wall-clock reads, so the same seeded
//     run emits the same JSONL byte stream every time — including
//     under concurrent cluster screening, where speculative work
//     records into private tracers that are merged in commit order.
//     (Metrics may time wall-clock durations — an acquisition-
//     maximization histogram is a profile, not a trace — so only the
//     event stream carries the determinism guarantee.)
//
// Metric handles are resolved once (Registry.Counter et al. take a
// lock) and then updated atomically, which keeps them safe under
// internal/par workers without serializing the workers on the
// registry.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The nil
// Counter discards updates.
type Counter struct {
	name string
	v    atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n may be any non-negative delta; negative deltas are
// ignored to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for the nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float metric. The nil Gauge discards
// updates.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value (0 for the nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into a fixed ascending bucket layout
// (upper bounds, with an implicit +Inf overflow bucket). The layout is
// fixed at registration so concurrent observers never resize anything;
// all updates are atomic. The nil Histogram discards observations.
type Histogram struct {
	name    string
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	n       atomic.Int64
	sumBits atomic.Uint64 // float64 sum maintained by CAS
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 for the nil Histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observed values (0 for the nil Histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-th quantile (q clamped to [0,1]) of the
// observed distribution from the bucket counts, interpolating linearly
// within the target bucket rather than returning its upper bound —
// at low counts the upper bound can overstate a p95 by a whole bucket
// width (×3 in the latency layout). A bucket's observations are
// assumed uniform over (lower, upper], where lower is the previous
// bound (0 for the first bucket, matching the non-negative latency
// and count layouts). Ranks landing in the +Inf overflow bucket
// cannot be interpolated and return the highest finite bound. The
// empty and nil Histogram return 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return quantileFromBuckets(h.bounds, counts, q)
}

// Quantile estimates a quantile from a histogram snapshot using the
// same within-bucket interpolation as Histogram.Quantile. Non-histogram
// and empty metrics return 0.
func (m Metric) Quantile(q float64) float64 {
	if m.Kind != "histogram" || len(m.Buckets) == 0 {
		return 0
	}
	bounds := make([]float64, 0, len(m.Buckets)-1)
	counts := make([]int64, 0, len(m.Buckets))
	for _, b := range m.Buckets {
		if !math.IsInf(b.UpperBound, 1) {
			bounds = append(bounds, b.UpperBound)
		}
		counts = append(counts, b.Count)
	}
	return quantileFromBuckets(bounds, counts, q)
}

// quantileFromBuckets walks the per-bucket counts (len(bounds)+1, the
// last being the +Inf overflow) to the bucket containing the q-th rank
// and interpolates within it.
func quantileFromBuckets(bounds []float64, counts []int64, q float64) float64 {
	var n int64
	for _, c := range counts {
		n += c
	}
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		if i >= len(bounds) {
			// Overflow bucket: no upper bound to interpolate toward.
			return lo
		}
		hi := bounds[i]
		if rank <= float64(cum+c) {
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	if len(bounds) > 0 {
		return bounds[len(bounds)-1]
	}
	return 0
}

// LatencyBuckets is the fixed layout for second-denominated latencies
// and durations: 100µs to ~100s, roughly ×3 per step.
func LatencyBuckets() []float64 {
	return []float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1, 3, 10, 30, 100}
}

// IterationBuckets is the fixed layout for iteration and sample
// counts: powers of two up to 256.
func IterationBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
}

// Registry owns a namespace of metrics. Handle resolution (Counter,
// Gauge, Histogram) takes a lock and should happen once per
// instrumentation site; the returned handles update lock-free. The nil
// Registry resolves every name to the nil handle of the right type, so
// call sites need no own guards.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket layout on first use (later calls reuse the existing layout).
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		h = &Histogram{
			name:   name,
			bounds: bounds,
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// Bucket is one histogram bucket in a snapshot: the count of
// observations at or below UpperBound (non-cumulative per bucket; the
// +Inf overflow bucket has UpperBound = math.Inf(1)).
type Bucket struct {
	UpperBound float64
	Count      int64
}

// Metric is one metric's snapshot.
type Metric struct {
	Name string
	Kind string // "counter", "gauge", "histogram"
	// Value is the counter count or gauge level; for histograms it is
	// the mean observation (0 when empty).
	Value float64
	// Histogram-only fields.
	Count   int64
	Sum     float64
	Buckets []Bucket
}

// Snapshot returns every metric, sorted by name (kind breaks ties), so
// exports and comparisons are deterministic.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, h := range r.hists {
		m := Metric{Name: name, Kind: "histogram", Count: h.Count(), Sum: h.Sum()}
		if m.Count > 0 {
			m.Value = m.Sum / float64(m.Count)
		}
		for i := range h.counts {
			ub := math.Inf(1)
			if i < len(h.bounds) {
				ub = h.bounds[i]
			}
			m.Buckets = append(m.Buckets, Bucket{UpperBound: ub, Count: h.counts[i].Load()})
		}
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}
