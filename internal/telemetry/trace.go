package telemetry

import "sync"

// Event kinds. Each kind fixes which Event fields are meaningful; the
// taxonomy is catalogued in DESIGN.md §10.
const (
	KindBOIteration       = "bo-iteration"       // one optimizer step: Iter, Value=EI*, Aux=best score, N=samples
	KindObservationWindow = "observation-window" // one measurement window: At, N=violations, OK=all QoS met
	KindQoSViolation      = "qos-violation"      // one LC job over target: At, Job, Value=p95, Aux=target
	KindPlacementPhase    = "placement-phase"    // one pipeline phase: Name, Node, N=work units, OK
	KindFaultInjected     = "fault-injected"     // injector fired: Name=fault class, At
	KindResilienceAction  = "resilience-action"  // hardened controller acted: Name=action, N=attempt
	KindTermination       = "termination"        // search ended: Name=reason, N=samples, Value=best score
	KindSpanBegin         = "span-begin"         // Name, Span
	KindSpanEnd           = "span-end"           // Name, Span, matching begin's id
	KindLeaderElected     = "leader-elected"     // replica group chose a leader: At, Node=replica id, N=term
	KindReplicaDied       = "replica-died"       // controller replica lost: At, Node=replica id, Name=cause, N=still alive
	KindFailoverComplete  = "failover-complete"  // group serving again: At, Node=new leader, N=term, Value=unavailability (s)
	KindJobArrival        = "job-arrival"        // fleet arrival assigned to a cell: At, Name=workload, Node=cell, N=attempt, Value=load
	KindJobDeparture      = "job-departure"      // fleet job left its node: At, Name=workload, Node=global node
	KindFleetEpoch        = "fleet-epoch"        // epoch barrier crossed: At, Iter=epoch, N=placements this epoch, Value=fleet demand estimate
	KindSLOBurnAlert      = "slo-burn-alert"     // error budget burning too fast: At, Name=subject, Job=subject id, Value=fast-window burn rate, Aux=slow-window burn rate
	KindBudgetExhausted   = "budget-exhausted"   // error budget fully spent: At, Name=subject, Job=subject id, Value=budget consumed (≥1)
)

// Event is one entry on a run's timeline. Events never carry
// wall-clock readings: Step is a per-tracer monotonic sequence number
// and At is simulated time (seconds of observation windows), so a
// seeded run produces the same event stream on every machine.
//
// Int fields use -1 for "not applicable" rather than omitting the
// field, so job 0 and node 0 stay representable.
type Event struct {
	Step  int64   `json:"step"`
	Kind  string  `json:"kind"`
	Name  string  `json:"name,omitempty"`
	At    float64 `json:"at"`    // simulated seconds; -1 when the event has no clock
	Iter  int     `json:"iter"`  // optimizer iteration; -1 when n/a
	Job   int     `json:"job"`   // job index; -1 when n/a
	Node  int     `json:"node"`  // cluster node; -1 when n/a
	Span  int64   `json:"span"`  // span id for span-begin/span-end; 0 otherwise
	N     int     `json:"n"`     // kind-specific count (samples, violations, attempt...)
	Value float64 `json:"value"` // kind-specific primary value (EI*, p95, score...)
	Aux   float64 `json:"aux"`   // kind-specific secondary value (best score, target...)
	OK    bool    `json:"ok"`
}

// Tracer accumulates a run's event timeline. The nil Tracer discards
// everything, so instrumentation sites emit unconditionally. A Tracer
// is safe for concurrent use, but for deterministic streams concurrent
// writers must record into private Tracers that are merged in a fixed
// order (see Merge and DESIGN.md §10).
type Tracer struct {
	mu     sync.Mutex
	events []Event
	spans  int64
	tap    func(Event)
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// SetTap registers fn to observe every event as it lands on t's
// timeline — the subscription hook the SLO observability plane
// (internal/obs) hangs off. fn sees each event exactly once, fully
// stamped, in final stream order: events merged from private tracers
// (Merge, MergeDrain) reach the tap at merge time in merge order, so
// for a deterministic stream the tap's view is deterministic too.
//
// fn runs under the tracer's lock. It must be fast and must not call
// back into t (that would deadlock) or into any lock ordered before
// the tracer's. Passing nil detaches. The nil Tracer discards the
// call.
func (t *Tracer) SetTap(fn func(Event)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tap = fn
	t.mu.Unlock()
}

// Emit appends ev, stamping its Step with the next sequence number.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	ev.Step = int64(len(t.events)) + 1
	t.events = append(t.events, ev)
	if t.tap != nil {
		t.tap(ev)
	}
	t.mu.Unlock()
}

// Begin opens a named span and returns its id (0 for the nil Tracer).
func (t *Tracer) Begin(name string, node int) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	t.spans++
	id := t.spans
	ev := Event{
		Step: int64(len(t.events)) + 1,
		Kind: KindSpanBegin, Name: name,
		At: -1, Iter: -1, Job: -1, Node: node, Span: id,
	}
	t.events = append(t.events, ev)
	if t.tap != nil {
		t.tap(ev)
	}
	t.mu.Unlock()
	return id
}

// End closes the span opened by Begin. n and ok summarize the span's
// outcome (work units processed, success).
func (t *Tracer) End(name string, node int, id int64, n int, ok bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	ev := Event{
		Step: int64(len(t.events)) + 1,
		Kind: KindSpanEnd, Name: name,
		At: -1, Iter: -1, Job: -1, Node: node, Span: id, N: n, OK: ok,
	}
	t.events = append(t.events, ev)
	if t.tap != nil {
		t.tap(ev)
	}
	t.mu.Unlock()
}

// Len returns the number of recorded events (0 for the nil Tracer).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the timeline (nil for the nil Tracer).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Merge appends src's events onto t, re-stamping steps and span ids to
// continue t's sequences and tagging events that carry no node with
// the given node. This is how concurrent cluster screening stays
// deterministic: each speculative screen records into a private
// tracer, and only the committed screen is merged — in commit order,
// under the scheduler's lock — so the final stream is independent of
// worker count and interleaving.
func (t *Tracer) Merge(src *Tracer, node int) {
	if t == nil || src == nil {
		return
	}
	events := src.Events()
	t.mu.Lock()
	stepBase := int64(len(t.events))
	spanBase := t.spans
	for _, ev := range events {
		ev.Step += stepBase
		if ev.Span != 0 {
			ev.Span += spanBase
		}
		if ev.Node < 0 {
			ev.Node = node
		}
		t.events = append(t.events, ev)
		if t.tap != nil {
			t.tap(ev)
		}
	}
	src.mu.Lock()
	t.spans = spanBase + src.spans
	src.mu.Unlock()
	t.mu.Unlock()
}

// MergeDrain atomically takes src's whole timeline, appends it onto t
// with steps and span ids re-stamped to continue t's sequences, and
// resets src to empty so the next drain starts fresh. Non-negative
// Node fields are shifted by nodeShift — how a cell-local tracer's
// node ids (0..cellNodes-1) are translated into the fleet's global
// node namespace — while nodeless events (Node < 0) stay unattributed.
// Like Merge, determinism is the caller's contract: concurrent cells
// record into private tracers and the fleet drains them at the epoch
// barrier in cell order, so the merged stream is byte-identical for
// every shard count.
func (t *Tracer) MergeDrain(src *Tracer, nodeShift int) {
	if t == nil || src == nil {
		return
	}
	src.mu.Lock()
	events := src.events
	srcSpans := src.spans
	src.events = nil
	src.spans = 0
	src.mu.Unlock()
	t.mu.Lock()
	stepBase := int64(len(t.events))
	spanBase := t.spans
	for _, ev := range events {
		ev.Step += stepBase
		if ev.Span != 0 {
			ev.Span += spanBase
		}
		if ev.Node >= 0 {
			ev.Node += nodeShift
		}
		t.events = append(t.events, ev)
		if t.tap != nil {
			t.tap(ev)
		}
	}
	t.spans = spanBase + srcSpans
	t.mu.Unlock()
}

// BOIteration records one optimizer step: the acquisition maximum
// (expected improvement), the best objective score so far, and the
// number of samples evaluated.
func BOIteration(iter int, eiStar, best float64, samples int) Event {
	return Event{
		Kind: KindBOIteration, At: -1,
		Iter: iter, Job: -1, Node: -1,
		Value: eiStar, Aux: best, N: samples,
	}
}

// ObservationWindow records one measurement window at simulated time
// at: how many LC jobs violated their target and whether all QoS held.
func ObservationWindow(at float64, violations int, allMet bool) Event {
	return Event{
		Kind: KindObservationWindow, At: at,
		Iter: -1, Job: -1, Node: -1,
		N: violations, OK: allMet,
	}
}

// QoSViolation records one LC job exceeding its target in the window
// at simulated time at: measured p95 vs the QoS target, in seconds.
func QoSViolation(at float64, job int, p95, target float64) Event {
	return Event{
		Kind: KindQoSViolation, At: at,
		Iter: -1, Job: job, Node: -1,
		Value: p95, Aux: target,
	}
}

// PlacementPhase records one cluster-pipeline phase outcome (assess,
// cache-verify, screen, commit, admit, reject...): the node involved
// (-1 for cluster-wide phases), work units processed, and success.
func PlacementPhase(phase string, node, n int, ok bool) Event {
	return Event{
		Kind: KindPlacementPhase, Name: phase, At: -1,
		Iter: -1, Job: -1, Node: node,
		N: n, OK: ok,
	}
}

// FaultInjected records the injector firing one fault of the given
// class ("transient", "outlier", "partial-actuation", "node-failure")
// at simulated time at.
func FaultInjected(at float64, kind string) Event {
	return Event{
		Kind: KindFaultInjected, Name: kind, At: at,
		Iter: -1, Job: -1, Node: -1,
	}
}

// ResilienceAction records the hardened controller reacting ("retry",
// "remeasure", "confirm-violation", "fallback", "guard",
// "salvage-restart"); attempt is the kind-specific attempt or pass
// number.
func ResilienceAction(action string, attempt int) Event {
	return Event{
		Kind: KindResilienceAction, Name: action, At: -1,
		Iter: -1, Job: -1, Node: -1,
		N: attempt,
	}
}

// LeaderElected records the replica group electing replica id as
// leader for the given term at simulated time at.
func LeaderElected(at float64, id, term int) Event {
	return Event{
		Kind: KindLeaderElected, At: at,
		Iter: -1, Job: -1, Node: id,
		N: term,
	}
}

// ReplicaDied records a controller replica dying at simulated time at
// ("scheduled", "rate", "kill"); alive is the number of replicas still
// up afterwards.
func ReplicaDied(at float64, id int, cause string, alive int) Event {
	return Event{
		Kind: KindReplicaDied, Name: cause, At: at,
		Iter: -1, Job: -1, Node: id,
		N: alive,
	}
}

// FailoverComplete records the group serving again after a leader
// loss: the new leader, its term, and the unavailability window in
// simulated seconds (death to first servable instant).
func FailoverComplete(at float64, id, term int, window float64) Event {
	return Event{
		Kind: KindFailoverComplete, At: at,
		Iter: -1, Job: -1, Node: id,
		N: term, Value: window,
	}
}

// JobArrival records a fleet arrival being assigned to a cell by the
// mean-field pre-partitioner: the workload, its offered load, the cell
// index chosen, and the placement attempt (1 for first try, higher for
// cross-cell retries after a rejection or a node death).
func JobArrival(at float64, workload string, cell, attempt int, load float64) Event {
	return Event{
		Kind: KindJobArrival, Name: workload, At: at,
		Iter: -1, Job: -1, Node: cell,
		N: attempt, Value: load,
	}
}

// JobDeparture records a fleet job leaving its node at the end of its
// service time: the workload and the global node id it vacated.
func JobDeparture(at float64, workload string, node int) Event {
	return Event{
		Kind: KindJobDeparture, Name: workload, At: at,
		Iter: -1, Job: -1, Node: node,
	}
}

// FleetEpoch records one epoch barrier: the epoch index, how many
// placements committed inside it, and the partitioner's fleet-wide
// demand estimate (node-equivalents of resident load) at the barrier.
func FleetEpoch(at float64, epoch, placed int, demand float64) Event {
	return Event{
		Kind: KindFleetEpoch, At: at,
		Iter: epoch, Job: -1, Node: -1,
		N: placed, Value: demand,
	}
}

// SLOBurnAlert records an SLO subject (a job, a cell, the fleet, or
// the machine-wide window stream) burning its error budget faster than
// the alerting threshold in both the fast and slow windows at
// simulated time at. subject names the series ("job:memcached",
// "cell:3", "fleet", "windows"); id is the job or cell index (-1 for
// aggregates); fast and slow are the two windows' burn rates
// (bad-fraction ÷ budget, so 1.0 spends the budget exactly at the
// window's end).
func SLOBurnAlert(at float64, subject string, id int, fast, slow float64) Event {
	return Event{
		Kind: KindSLOBurnAlert, Name: subject, At: at,
		Iter: -1, Job: id, Node: -1,
		Value: fast, Aux: slow,
	}
}

// BudgetExhausted records an SLO subject having spent its whole error
// budget within the slow window at simulated time at: consumed is the
// budget multiple (≥1 at emission).
func BudgetExhausted(at float64, subject string, id int, consumed float64) Event {
	return Event{
		Kind: KindBudgetExhausted, Name: subject, At: at,
		Iter: -1, Job: id, Node: -1,
		Value: consumed,
	}
}

// Termination records why a search ended ("ei-drop", "stagnation",
// "iteration-cap", "infeasible", "fallback"), with the sample count
// and best objective score at that point.
func Termination(reason string, samples int, best float64) Event {
	return Event{
		Kind: KindTermination, Name: reason, At: -1,
		Iter: -1, Job: -1, Node: -1,
		N: samples, Value: best,
	}
}
