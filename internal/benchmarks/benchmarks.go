// Package benchmarks is the repo's before/after benchmark harness: a
// fixed suite of hot-path measurements (surrogate update, posterior
// prediction, acquisition maximization, ORACLE sweep, one BO engine
// turn, one cluster placement) runnable in two modes. Legacy drives
// the retained sequential and from-scratch-refit paths (FitMLEWorkers
// at one worker, the DisableIncrementalFit engine, Oracle and Maximize
// pinned to one worker, the scheduler with the profile cache and
// pre-filter off); the default drives the incremental, pooled,
// parallel, cached paths. cmd/bench serializes the two runs to
// BENCH_baseline.json and BENCH_after.json, and the tier-1 smoke test
// runs the quick form of the same suite so the harness itself cannot
// rot.
package benchmarks

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"clite/internal/bo"
	"clite/internal/cluster"
	"clite/internal/core"
	"clite/internal/fleet"
	"clite/internal/gp"
	"clite/internal/obs"
	"clite/internal/optimize"
	"clite/internal/policies"
	"clite/internal/profile"
	"clite/internal/resource"
	"clite/internal/server"
	"clite/internal/stats"
	"clite/internal/telemetry"
)

// Config selects the suite variant.
type Config struct {
	// Legacy drives the sequential/refit code paths instead of the
	// incremental/parallel ones.
	Legacy bool
	// Quick shrinks problem sizes and replaces testing.Benchmark with
	// a fixed-repetition manual timing pass — the tier-1 smoke form.
	Quick bool
	// Telemetry attaches a live tracer and metrics registry to the
	// telemetry-capable benches (CLITERun), measuring the enabled-path
	// overhead. Results from instrumented and uninstrumented runs are
	// not comparable; cmd/bench records the flag so -compare can refuse
	// to mix them.
	Telemetry bool
	// Obs attaches the SLO observability plane (DESIGN.md §15): a
	// tapped store with every LC job registered as an SLO subject on
	// CLITERun, and a store fed per-cell rollups at the epoch barrier
	// on FleetPlace. ObsOverheadCLITE/ObsOverheadFleet pair runs with
	// the flag off and on to measure the enabled cost.
	Obs bool
}

// Result is one benchmark's outcome, in the units `go test -bench`
// reports, plus optional benchmark-specific counters (e.g. the cluster
// placement bench logs BO iterations per placement and the profile
// cache hit rate).
type Result struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// GoBenchLine renders the result in the classic `go test -bench`
// format, so files of them feed straight into benchstat.
func (r Result) GoBenchLine() string {
	return fmt.Sprintf("Benchmark%s 1 %.0f ns/op %d B/op %d allocs/op",
		r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
}

func (c Config) workers() int {
	if c.Legacy {
		return 1
	}
	return 0
}

// bench is one suite entry's instantiated form: the timed operation,
// an optional untimed maintenance step to run every `every` operations
// (e.g. re-seeding the incremental window so steady state stays at the
// intended sample count), and an optional sampler of benchmark-
// specific counters taken once after the timed run.
type bench struct {
	op    func()
	reset func()
	every int
	extra func() map[string]float64
}

// spec is one suite entry.
type spec struct {
	name string
	make func(cfg Config) bench
}

func suite() []spec {
	return []spec{
		{"GPFit", gpFit},
		{"GPPredict", gpPredict},
		{"AcquisitionMaximize", acquisitionMaximize},
		{"OracleSweep", oracleSweep},
		{"BOEngineIteration", boEngineIteration},
		{"CLITERun", cliteRun},
		{"ClusterPlace", clusterPlace},
		{"FleetPlace", fleetPlace},
	}
}

// Run executes the suite under cfg, in suite order.
func Run(cfg Config) []Result {
	var out []Result
	for _, s := range suite() {
		b := s.make(cfg)
		var res Result
		if cfg.Quick {
			res = quickMeasure(s.name, b)
		} else {
			res = measure(s.name, b)
		}
		if b.extra != nil {
			res.Extra = b.extra()
		}
		out = append(out, res)
	}
	return out
}

// measure runs one bench under the standard go-benchmark driver.
func measure(name string, b bench) Result {
	r := testing.Benchmark(func(tb *testing.B) {
		tb.ReportAllocs()
		tb.ResetTimer()
		for i := 0; i < tb.N; i++ {
			if b.reset != nil && i > 0 && i%b.every == 0 {
				tb.StopTimer()
				b.reset()
				tb.StartTimer()
			}
			b.op()
		}
	})
	return Result{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// TelemetryOverhead times CLITERun with telemetry off and then on,
// under the standard benchmark driver (stable enough for a tolerance
// check even at quick problem sizes). The tier-1 overhead smoke test
// asserts the enabled path lands within a few percent of the disabled
// one — the telemetry layer's headline cost contract.
func TelemetryOverhead(quick bool) (off, on Result) {
	off = measure("CLITERun", cliteRun(Config{Quick: quick}))
	on = measure("CLITERun", cliteRun(Config{Quick: quick, Telemetry: true}))
	return off, on
}

// ObsOverheadCLITE times CLITERun with telemetry enabled, and then
// with the SLO observability plane tapped on top: store construction,
// job registration, and every per-event sink callback are all charged
// to the op. The tier-1 gate asserts the tapped run lands within 5%
// of the telemetry-only run.
func ObsOverheadCLITE(quick bool) (off, on Result) {
	off = measure("CLITERun", cliteRun(Config{Quick: quick, Telemetry: true}))
	on = measure("CLITERun", cliteRun(Config{Quick: quick, Telemetry: true, Obs: true}))
	return off, on
}

// ObsOverheadFleet times FleetPlace with and without an SLO store fed
// per-cell rollups at each epoch barrier. The barrier feed is the
// fleet's only obs touchpoint, so the contract is looser than the
// serving plane's: the tier-1 gate allows 10%.
func ObsOverheadFleet(quick bool) (off, on Result) {
	off = measure("FleetPlace", fleetPlace(Config{Quick: quick}))
	on = measure("FleetPlace", fleetPlace(Config{Quick: quick, Obs: true}))
	return off, on
}

// quickMeasure times a handful of repetitions directly — enough to
// prove the path runs and produce plausible magnitudes, cheap enough
// for the tier-1 race run.
func quickMeasure(name string, b bench) Result {
	const reps = 3
	allocs := int64(testing.AllocsPerRun(1, b.op))
	var total time.Duration
	for i := 0; i < reps; i++ {
		if b.reset != nil && i > 0 && i%b.every == 0 {
			b.reset()
		}
		start := time.Now()
		b.op()
		total += time.Since(start)
	}
	return Result{
		Name:        name,
		NsPerOp:     float64(total.Nanoseconds()) / reps,
		AllocsPerOp: allocs,
	}
}

func gpData(n, dim int, seed int64) ([][]float64, []float64) {
	rng := stats.NewRNG(seed)
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = make([]float64, dim)
		for d := range xs[i] {
			xs[i][d] = rng.Float64()
		}
		ys[i] = rng.Float64()
	}
	return xs, ys
}

// gpFit measures one per-iteration surrogate update at n≈50 (quick:
// n=16): legacy refits the whole hyperparameter grid from scratch,
// the default extends every retained factor by one row and re-selects.
func gpFit(cfg Config) bench {
	n, dim := 50, 15
	if cfg.Quick {
		n, dim = 16, 8
	}
	const window = 10
	xs, ys := gpData(n+window, dim, 1)
	if cfg.Legacy {
		return bench{op: func() {
			if _, err := gp.FitMLEWorkers("matern52", xs[:n], ys[:n], 1); err != nil {
				panic(err)
			}
		}}
	}
	pool, err := gp.NewPool("matern52", cfg.workers())
	if err != nil {
		panic(err)
	}
	i := n
	reset := func() {
		if err := pool.Condition(xs[:n], ys[:n]); err != nil {
			panic(err)
		}
		i = n
	}
	reset()
	op := func() {
		if i == n+window {
			reset() // timed fallback; Run's cadence normally prevents it
		}
		if err := pool.Observe(xs[i], ys[i]); err != nil {
			panic(err)
		}
		i++
		if _, err := pool.Best(); err != nil {
			panic(err)
		}
	}
	return bench{op: op, reset: reset, every: window}
}

// gpPredict measures one posterior evaluation: legacy through the
// allocating Predict, the default through PredictWith and a reused
// buffer.
func gpPredict(cfg Config) bench {
	n, dim := 50, 15
	if cfg.Quick {
		n, dim = 16, 8
	}
	xs, ys := gpData(n, dim, 2)
	model, err := gp.FitMLEWorkers("matern52", xs, ys, cfg.workers())
	if err != nil {
		panic(err)
	}
	probe := xs[0]
	if cfg.Legacy {
		return bench{op: func() {
			if _, _, err := model.Predict(probe); err != nil {
				panic(err)
			}
		}}
	}
	var buf gp.PredictBuf
	return bench{op: func() {
		if _, _, err := model.PredictWith(&buf, probe); err != nil {
			panic(err)
		}
	}}
}

// acquisitionMaximize measures one constrained multi-start EI-shaped
// maximization over the partition polytope, sequential in legacy mode
// and pool-fanned otherwise.
func acquisitionMaximize(cfg Config) bench {
	topo := resource.Default()
	nJobs := 3
	iters := 0
	if cfg.Quick {
		nJobs = 2
		iters = 10
	}
	target := resource.EqualSplit(topo, nJobs).Vector()
	objective := func(x []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - target[i]
			s -= d * d
		}
		return s
	}
	seed := int64(0)
	// The default path carries the multi-start arena across ops and
	// scores gradient probes in batches, as the engine does; legacy
	// allocates fresh per-start storage and probes point by point.
	var scratch *optimize.Scratch
	var batch func(xs [][]float64, out []float64)
	if !cfg.Legacy {
		scratch = new(optimize.Scratch)
		batch = func(xs [][]float64, out []float64) {
			for i, x := range xs {
				out[i] = objective(x)
			}
		}
	}
	return bench{op: func() {
		seed++
		optimize.Maximize(optimize.Problem{
			Topo: topo, NJobs: nJobs,
			Objective:      objective,
			BatchObjective: batch,
			FrozenJob:      -1,
			Iterations:     iters,
			RNG:            stats.NewRNG(seed),
			Workers:        cfg.workers(),
			Scratch:        scratch,
		})
	}}
}

func benchMachine(seed int64) *server.Machine {
	m := server.New(resource.Default(), server.DefaultSpec(), seed)
	if _, err := m.AddLC("memcached", 0.2); err != nil {
		panic(err)
	}
	if _, err := m.AddLC("img-dnn", 0.1); err != nil {
		panic(err)
	}
	if _, err := m.AddBG("streamcluster"); err != nil {
		panic(err)
	}
	return m
}

// oracleSweep measures the offline brute-force baseline. Legacy
// drives the retained full-walk/string-memo/per-config-ScoreJobs
// sweep at one worker; the default drives the block-sharded sweep
// with packed memo keys and cached log-term scoring, pinned at four
// workers — the acceptance configuration, which block sharding makes
// no slower than one worker even on a single core.
func oracleSweep(cfg Config) bench {
	m := benchMachine(1)
	budget := 0 // default 200k grid
	if cfg.Quick {
		budget = 2000
	}
	workers := cfg.workers()
	if !cfg.Legacy && !cfg.Quick {
		workers = 4
	}
	oracle := policies.Oracle{Budget: budget, Workers: workers, Legacy: cfg.Legacy}
	return bench{op: func() {
		if _, err := oracle.Run(m); err != nil {
			panic(err)
		}
	}}
}

// boEngineIteration measures short engine runs (fit + acquisition +
// candidate selection per turn). Legacy disables the incremental
// surrogate, the batched acquisition, and the worker pools, with a
// fresh engine per run; the default drives a Runner whose arenas —
// sample storage, seen-set, surrogate factors, multi-start and
// gradient scratch — persist across runs, the steady state of a
// controller re-optimizing after load changes.
func boEngineIteration(cfg Config) bench {
	topo := resource.Small()
	maxIter := 4
	if cfg.Quick {
		maxIter = 1
	}
	// The engine copies JobPerf out of each Evaluation, so one reused
	// slice serves every call.
	jobPerf := []float64{1, 1}
	eval := func(c resource.Config) (bo.Evaluation, error) {
		var s float64
		for _, a := range c.Jobs {
			s += float64(a[0])
		}
		return bo.Evaluation{Score: s / 20, JobPerf: jobPerf}, nil
	}
	seed := int64(0)
	if cfg.Legacy {
		return bench{op: func() {
			seed++
			if _, err := bo.Run(topo, 2, eval, bo.Options{
				Seed:                  seed,
				MaxIterations:         maxIter,
				Workers:               1,
				DisableIncrementalFit: true,
				DisableBatchedEI:      true,
			}); err != nil {
				panic(err)
			}
		}}
	}
	runner, err := bo.NewRunner(topo, 2)
	if err != nil {
		panic(err)
	}
	return bench{op: func() {
		seed++
		if _, err := runner.Run(eval, bo.Options{
			Seed:          seed,
			MaxIterations: maxIter,
			Workers:       cfg.workers(),
		}); err != nil {
			panic(err)
		}
	}}
}

// cliteRun measures one full controller invocation end to end — the
// path the telemetry layer instruments most densely (BO iterations,
// observation windows, QoS verdicts, termination). With cfg.Telemetry
// a fresh tracer and registry ride along each run and their allocation
// cost is charged to the op; without it the instrumented sites all hit
// their nil guards, which must cost nothing.
func cliteRun(cfg Config) bench {
	maxIter := 6
	if cfg.Quick {
		maxIter = 2
	}
	seed := int64(0)
	var runs, events float64
	op := func() {
		seed++
		m := benchMachine(seed)
		opts := core.Options{BO: bo.Options{
			Seed:                  seed,
			MaxIterations:         maxIter,
			Workers:               cfg.workers(),
			DisableIncrementalFit: cfg.Legacy,
		}}
		if cfg.Telemetry {
			opts.Trace = telemetry.NewTracer()
			opts.Metrics = telemetry.NewRegistry()
		}
		if cfg.Obs {
			// The SLO plane rides the tracer tap, so the store's whole
			// per-event cost — window settlement, burn-rate updates,
			// ring-bucket writes — lands inside the traced run.
			if opts.Trace == nil {
				opts.Trace = telemetry.NewTracer()
			}
			store := obs.NewStore(obs.Options{})
			for _, jt := range m.QoSTargets() {
				store.RegisterJob(jt.Job, jt.Name, obs.SLO{Target: jt.Target})
			}
			opts.Trace.SetTap(store.Sink())
		}
		res, err := core.New(m, opts).Run()
		if err != nil {
			panic(err)
		}
		runs++
		if res.SamplesUsed <= 0 {
			panic("cliteRun: no samples evaluated")
		}
		if opts.Trace != nil {
			events += float64(opts.Trace.Len())
		}
	}
	extra := func() map[string]float64 {
		out := map[string]float64{"telemetry": 0}
		if cfg.Telemetry {
			out["telemetry"] = 1
			if runs > 0 {
				out["trace_events_per_run"] = events / runs
			}
		}
		return out
	}
	return bench{op: op, extra: extra}
}

// clusterPlace measures one placement decision of a sustained,
// repetitive request stream against an 8-node pool — the profile
// cache, admission pre-filter, and concurrent screening pipeline end
// to end. Legacy pins all three layers off (cold sequential screening,
// the pre-cache admission path). The scheduler is rebuilt after each
// full pass so the pool never saturates; repeats land within a pass,
// which is where the cache earns its keep. Extra logs the work
// ledger: BO iterations per placement and the cache hit rate, the
// acceptance metrics for the pipeline.
func clusterPlace(cfg Config) bench {
	nodes, iters := 8, 6
	if cfg.Quick {
		nodes, iters = 4, 4
	}
	reqs := []cluster.Request{
		{Workload: "memcached", Load: 0.2},
		{Workload: "swaptions"},
		{Workload: "img-dnn", Load: 0.2},
		{Workload: "memcached", Load: 0.2},
		{Workload: "swaptions"},
		{Workload: "memcached", Load: 0.2},
		{Workload: "img-dnn", Load: 0.2},
		{Workload: "swaptions"},
	}
	// The profile cache outlives each per-pass scheduler — the
	// warehouse-wide profile store — so steady-state passes admit from
	// memoized screens.
	var shared *profile.Cache
	if !cfg.Legacy {
		shared = profile.NewCache(resource.Default())
	}
	newSched := func() *cluster.Scheduler {
		return cluster.New(cluster.Options{
			Nodes:               nodes,
			Seed:                42,
			ScreenIterations:    iters,
			ScreenWorkers:       cfg.workers(),
			DisableProfileCache: cfg.Legacy,
			DisablePrefilter:    cfg.Legacy,
			SharedProfiles:      shared,
		})
	}
	sched := newSched()
	i := 0
	var agg cluster.Stats
	op := func() {
		r := reqs[i%len(reqs)]
		i++
		if _, err := sched.Place(r); err != nil && !errors.Is(err, cluster.ErrUnplaceable) {
			panic(err)
		}
	}
	reset := func() {
		agg = addStats(agg, sched.Stats())
		sched = newSched()
		i = 0
	}
	extra := func() map[string]float64 {
		st := addStats(agg, sched.Stats())
		out := map[string]float64{
			"placements":    float64(st.Placements),
			"rejections":    float64(st.Rejections),
			"screens":       float64(st.Screens),
			"bo_iterations": float64(st.BOIterations),
		}
		if total := st.Placements + st.Rejections; total > 0 {
			out["bo_iters_per_placement"] = float64(st.BOIterations) / float64(total)
		}
		if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
			out["cache_hit_rate"] = float64(st.CacheHits) / float64(lookups)
		}
		return out
	}
	return bench{op: op, reset: reset, every: len(reqs), extra: extra}
}

// fleetPlace measures warehouse-scale placement throughput: one op is
// a complete fleet simulation — streamed arrivals and departures over
// a thousand nodes (quick: 128), every placement through the full
// pre-filter → cache → BO pipeline. Legacy runs the fleet as one
// monolithic scheduling domain (a single cell spanning every node,
// one shard), the state of the world before the fleet layer: each
// arrival assesses the whole fleet and all screening serializes. The
// default carves the fleet into 64-node cells run by four shards.
// Extra logs the acceptance metrics: end-to-end placements per
// wall-clock second, the profile-cache hit rate, and — default mode
// only — the measured throughput scaling from one shard to the
// configured count (≈1 on a single-core box, where the cell
// decomposition's structural win is what the ns/op comparison shows;
// the shards only stretch out on real cores).
func fleetPlace(cfg Config) bench {
	nodes, cellNodes, shards := 1024, 64, 4
	duration := 30.0
	if cfg.Quick {
		nodes, cellNodes, shards = 128, 32, 2
		duration = 4
	}
	if cfg.Legacy {
		cellNodes, shards = nodes, 1
	}
	newOpts := func(seed int64, shards int) fleet.Options {
		o := fleet.Options{
			Nodes:     nodes,
			CellNodes: cellNodes,
			Shards:    shards,
			Seed:      seed,
			Duration:  duration,
		}
		if cfg.Obs {
			o.Obs = obs.NewStore(obs.Options{})
		}
		return o
	}
	runOnce := func(opts fleet.Options) (fleet.Summary, time.Duration) {
		f, err := fleet.New(opts)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		sum, err := f.Run()
		if err != nil {
			panic(err)
		}
		if sum.Placements == 0 {
			panic("fleetPlace: fleet placed nothing")
		}
		return sum, time.Since(start)
	}
	seed := int64(0)
	var wall time.Duration
	var last fleet.Summary
	var placed, runs float64
	op := func() {
		seed++
		sum, dt := runOnce(newOpts(seed, shards))
		wall += dt
		last = sum
		placed += float64(sum.Placements)
		runs++
	}
	extra := func() map[string]float64 {
		out := map[string]float64{
			"nodes":              float64(nodes),
			"cells":              float64(last.Cells),
			"shards":             float64(last.Shards),
			"arrivals_per_run":   float64(last.Arrivals),
			"placements_per_run": float64(last.Placements),
		}
		if wall > 0 {
			out["placements_per_sec"] = placed / wall.Seconds()
		}
		if lookups := last.Cluster.CacheHits + last.Cluster.CacheMisses; lookups > 0 {
			out["cache_hit_rate"] = float64(last.Cluster.CacheHits) / float64(lookups)
		}
		if !cfg.Legacy && runs > 0 {
			// One untimed single-shard replay of the last seed measures
			// how much the shards themselves buy on this machine. The
			// decisions are byte-identical by construction; only the wall
			// clock may differ.
			_, dt1 := runOnce(newOpts(seed, 1))
			if dt1 > 0 {
				out["shard_scaling"] = dt1.Seconds() / (wall.Seconds() / runs)
			}
		}
		return out
	}
	return bench{op: op, extra: extra}
}

// addStats sums two scheduler stat ledgers, so clusterPlace can
// aggregate across the per-pass scheduler resets.
func addStats(a, b cluster.Stats) cluster.Stats {
	return cluster.Stats{
		Placements:       a.Placements + b.Placements,
		Rejections:       a.Rejections + b.Rejections,
		PrefilterRejects: a.PrefilterRejects + b.PrefilterRejects,
		CacheHits:        a.CacheHits + b.CacheHits,
		CacheMisses:      a.CacheMisses + b.CacheMisses,
		CacheNearHits:    a.CacheNearHits + b.CacheNearHits,
		Screens:          a.Screens + b.Screens,
		WarmScreens:      a.WarmScreens + b.WarmScreens,
		BOIterations:     a.BOIterations + b.BOIterations,
		VerifyWindows:    a.VerifyWindows + b.VerifyWindows,
	}
}
