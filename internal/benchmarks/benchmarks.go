// Package benchmarks is the repo's before/after benchmark harness: a
// fixed suite of hot-path measurements (surrogate update, posterior
// prediction, acquisition maximization, ORACLE sweep, one BO engine
// turn) runnable in two modes. Legacy drives the retained sequential
// and from-scratch-refit paths (FitMLEWorkers at one worker, the
// DisableIncrementalFit engine, Oracle and Maximize pinned to one
// worker); the default drives the incremental, pooled, parallel paths.
// cmd/bench serializes the two runs to BENCH_baseline.json and
// BENCH_after.json, and the tier-1 smoke test runs the quick form of
// the same suite so the harness itself cannot rot.
package benchmarks

import (
	"fmt"
	"testing"
	"time"

	"clite/internal/bo"
	"clite/internal/gp"
	"clite/internal/optimize"
	"clite/internal/policies"
	"clite/internal/resource"
	"clite/internal/server"
	"clite/internal/stats"
)

// Config selects the suite variant.
type Config struct {
	// Legacy drives the sequential/refit code paths instead of the
	// incremental/parallel ones.
	Legacy bool
	// Quick shrinks problem sizes and replaces testing.Benchmark with
	// a fixed-repetition manual timing pass — the tier-1 smoke form.
	Quick bool
}

// Result is one benchmark's outcome, in the units `go test -bench`
// reports.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// GoBenchLine renders the result in the classic `go test -bench`
// format, so files of them feed straight into benchstat.
func (r Result) GoBenchLine() string {
	return fmt.Sprintf("Benchmark%s 1 %.0f ns/op %d B/op %d allocs/op",
		r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
}

func (c Config) workers() int {
	if c.Legacy {
		return 1
	}
	return 0
}

// spec is one suite entry. make returns the timed operation, plus an
// optional untimed maintenance step to run every `every` operations
// (e.g. re-seeding the incremental window so steady state stays at the
// intended sample count).
type spec struct {
	name string
	make func(cfg Config) (op func(), reset func(), every int)
}

func suite() []spec {
	return []spec{
		{"GPFit", gpFit},
		{"GPPredict", gpPredict},
		{"AcquisitionMaximize", acquisitionMaximize},
		{"OracleSweep", oracleSweep},
		{"BOEngineIteration", boEngineIteration},
	}
}

// Run executes the suite under cfg, in suite order.
func Run(cfg Config) []Result {
	var out []Result
	for _, s := range suite() {
		op, reset, every := s.make(cfg)
		if cfg.Quick {
			out = append(out, quickMeasure(s.name, op, reset, every))
			continue
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if reset != nil && i > 0 && i%every == 0 {
					b.StopTimer()
					reset()
					b.StartTimer()
				}
				op()
			}
		})
		out = append(out, Result{
			Name:        s.name,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	return out
}

// quickMeasure times a handful of repetitions directly — enough to
// prove the path runs and produce plausible magnitudes, cheap enough
// for the tier-1 race run.
func quickMeasure(name string, op func(), reset func(), every int) Result {
	const reps = 3
	allocs := int64(testing.AllocsPerRun(1, op))
	var total time.Duration
	for i := 0; i < reps; i++ {
		if reset != nil && i > 0 && i%every == 0 {
			reset()
		}
		start := time.Now()
		op()
		total += time.Since(start)
	}
	return Result{
		Name:        name,
		NsPerOp:     float64(total.Nanoseconds()) / reps,
		AllocsPerOp: allocs,
	}
}

func gpData(n, dim int, seed int64) ([][]float64, []float64) {
	rng := stats.NewRNG(seed)
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = make([]float64, dim)
		for d := range xs[i] {
			xs[i][d] = rng.Float64()
		}
		ys[i] = rng.Float64()
	}
	return xs, ys
}

// gpFit measures one per-iteration surrogate update at n≈50 (quick:
// n=16): legacy refits the whole hyperparameter grid from scratch,
// the default extends every retained factor by one row and re-selects.
func gpFit(cfg Config) (func(), func(), int) {
	n, dim := 50, 15
	if cfg.Quick {
		n, dim = 16, 8
	}
	const window = 10
	xs, ys := gpData(n+window, dim, 1)
	if cfg.Legacy {
		return func() {
			if _, err := gp.FitMLEWorkers("matern52", xs[:n], ys[:n], 1); err != nil {
				panic(err)
			}
		}, nil, 0
	}
	pool, err := gp.NewPool("matern52", cfg.workers())
	if err != nil {
		panic(err)
	}
	i := n
	reset := func() {
		if err := pool.Condition(xs[:n], ys[:n]); err != nil {
			panic(err)
		}
		i = n
	}
	reset()
	op := func() {
		if i == n+window {
			reset() // timed fallback; Run's cadence normally prevents it
		}
		if err := pool.Observe(xs[i], ys[i]); err != nil {
			panic(err)
		}
		i++
		if _, err := pool.Best(); err != nil {
			panic(err)
		}
	}
	return op, reset, window
}

// gpPredict measures one posterior evaluation: legacy through the
// allocating Predict, the default through PredictWith and a reused
// buffer.
func gpPredict(cfg Config) (func(), func(), int) {
	n, dim := 50, 15
	if cfg.Quick {
		n, dim = 16, 8
	}
	xs, ys := gpData(n, dim, 2)
	model, err := gp.FitMLEWorkers("matern52", xs, ys, cfg.workers())
	if err != nil {
		panic(err)
	}
	probe := xs[0]
	if cfg.Legacy {
		return func() {
			if _, _, err := model.Predict(probe); err != nil {
				panic(err)
			}
		}, nil, 0
	}
	var buf gp.PredictBuf
	return func() {
		if _, _, err := model.PredictWith(&buf, probe); err != nil {
			panic(err)
		}
	}, nil, 0
}

// acquisitionMaximize measures one constrained multi-start EI-shaped
// maximization over the partition polytope, sequential in legacy mode
// and pool-fanned otherwise.
func acquisitionMaximize(cfg Config) (func(), func(), int) {
	topo := resource.Default()
	nJobs := 3
	iters := 0
	if cfg.Quick {
		nJobs = 2
		iters = 10
	}
	target := resource.EqualSplit(topo, nJobs).Vector()
	objective := func(x []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - target[i]
			s -= d * d
		}
		return s
	}
	seed := int64(0)
	return func() {
		seed++
		optimize.Maximize(optimize.Problem{
			Topo: topo, NJobs: nJobs,
			Objective:  objective,
			FrozenJob:  -1,
			Iterations: iters,
			RNG:        stats.NewRNG(seed),
			Workers:    cfg.workers(),
		})
	}, nil, 0
}

func benchMachine(seed int64) *server.Machine {
	m := server.New(resource.Default(), server.DefaultSpec(), seed)
	if _, err := m.AddLC("memcached", 0.2); err != nil {
		panic(err)
	}
	if _, err := m.AddLC("img-dnn", 0.1); err != nil {
		panic(err)
	}
	if _, err := m.AddBG("streamcluster"); err != nil {
		panic(err)
	}
	return m
}

// oracleSweep measures the offline brute-force baseline, sharded
// across workers unless legacy.
func oracleSweep(cfg Config) (func(), func(), int) {
	m := benchMachine(1)
	budget := 0 // default 200k grid
	if cfg.Quick {
		budget = 2000
	}
	oracle := policies.Oracle{Budget: budget, Workers: cfg.workers()}
	return func() {
		if _, err := oracle.Run(m); err != nil {
			panic(err)
		}
	}, nil, 0
}

// boEngineIteration measures short engine runs (fit + acquisition +
// candidate selection per turn); legacy disables the incremental
// surrogate and the worker pools.
func boEngineIteration(cfg Config) (func(), func(), int) {
	topo := resource.Small()
	maxIter := 4
	if cfg.Quick {
		maxIter = 1
	}
	eval := func(c resource.Config) (bo.Evaluation, error) {
		var s float64
		for _, a := range c.Jobs {
			s += float64(a[0])
		}
		return bo.Evaluation{Score: s / 20, JobPerf: []float64{1, 1}}, nil
	}
	seed := int64(0)
	return func() {
		seed++
		if _, err := bo.Run(topo, 2, eval, bo.Options{
			Seed:                  seed,
			MaxIterations:         maxIter,
			Workers:               cfg.workers(),
			DisableIncrementalFit: cfg.Legacy,
		}); err != nil {
			panic(err)
		}
	}, nil, 0
}
