// Package harness regenerates every table and figure of the paper's
// evaluation (Sec. 5) on the simulated testbed: it assembles job
// mixes, runs the competing co-location policies, and formats the
// results as the same rows and series the paper reports. The
// per-experiment index in DESIGN.md maps each experiment to the
// function here that reproduces it.
package harness

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: the textual analogue of one
// paper table or figure.
type Table struct {
	ID     string // "fig7", "table1", ...
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

func pct(x float64) string {
	return fmt.Sprintf("%.0f%%", x*100)
}

func f3(x float64) string {
	return fmt.Sprintf("%.3f", x)
}

func ms(x float64) string {
	return fmt.Sprintf("%.2fms", x*1000)
}
