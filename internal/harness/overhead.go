package harness

import (
	"fmt"

	"clite/internal/bo"
	"clite/internal/policies"
)

// Fig15a reproduces the overhead comparison: configurations sampled by
// each technique before settling, across mixes of growing size.
func Fig15a(cfg Config) (Table, error) {
	t := Table{
		ID:     "fig15a",
		Title:  "sampling overhead: configurations evaluated before settling",
		Header: []string{"mix", "CLITE", "PARTIES", "RAND+", "GENETIC", "ORACLE"},
	}
	mixes := []Mix{
		{LC: []LCJob{{Name: "memcached", Load: 0.2}}, BG: []string{"swaptions"}},
		{LC: []LCJob{{Name: "memcached", Load: 0.2}, {Name: "img-dnn", Load: 0.2}}, BG: []string{"swaptions"}},
		{LC: []LCJob{{Name: "memcached", Load: 0.2}, {Name: "img-dnn", Load: 0.2}, {Name: "xapian", Load: 0.2}}, BG: []string{"swaptions"}},
		{LC: []LCJob{{Name: "memcached", Load: 0.2}, {Name: "img-dnn", Load: 0.2}}, BG: []string{"swaptions", "freqmine"}},
	}
	if cfg.Coarse {
		mixes = mixes[1:3]
	}
	pols := append(onlinePolicies(cfg.Seed), policies.Oracle{})
	for _, mix := range mixes {
		row := []string{fmt.Sprintf("%dLC+%dBG", len(mix.LC), len(mix.BG))}
		for _, p := range pols {
			res, err := runPolicy(p, mix, cfg.Seed)
			if err != nil {
				return Table{}, err
			}
			row = append(row, fmt.Sprintf("%d", res.SamplesUsed))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = "paper: RAND+/GENETIC use fixed high budgets; CLITE slightly above PARTIES; ORACLE needs 1000s (offline)"
	return t, nil
}

// Fig15b reproduces the quality-vs-samples trace: CLITE keeps
// improving the BG job (fluidanimate) after meeting QoS, while PARTIES
// stabilizes at whatever it first reaches.
func Fig15b(cfg Config) (Table, error) {
	mix := Mix{
		LC: []LCJob{
			{Name: "img-dnn", Load: 0.1},
			{Name: "memcached", Load: 0.1},
			{Name: "masstree", Load: 0.1},
		},
		BG: []string{"fluidanimate"},
	}
	t := Table{
		ID:     "fig15b",
		Title:  "best-so-far score and fluidanimate perf vs samples: " + mix.Describe(),
		Header: []string{"policy", "sample", "best score so far", "fluidanimate perf", "all QoS met"},
	}
	stride := 5
	if cfg.Coarse {
		stride = 10
	}
	pols := []policies.Policy{
		policies.CLITE{BO: bo.Options{Seed: cfg.Seed}},
		policies.PARTIES{},
	}
	for _, p := range pols {
		res, err := runPolicy(p, mix, cfg.Seed)
		if err != nil {
			return Table{}, err
		}
		bestSoFar, bestBG := 0.0, 0.0
		met := false
		for i, step := range res.History {
			if step.Score > bestSoFar {
				bestSoFar = step.Score
				bestBG = step.Obs.NormPerf[3]
			}
			if step.Obs.AllQoSMet {
				met = true
			}
			if i%stride == 0 || i == len(res.History)-1 {
				t.Rows = append(t.Rows, []string{
					p.Name(), fmt.Sprintf("%d", i), f3(bestSoFar), pct(bestBG), fmt.Sprintf("%v", met),
				})
			}
		}
	}
	t.Notes = "paper: both meet QoS at similar times; only CLITE keeps improving the BG job afterwards"
	return t, nil
}
