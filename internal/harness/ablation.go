package harness

import (
	"fmt"

	"clite/internal/bo"
	"clite/internal/policies"
)

// Ablation quantifies the Sec. 4 design choices the paper calls out:
// acquisition function, covariance kernel, bootstrap construction, and
// the dropout-copy policy. Each variant runs the same mix and reports
// score and samples; the paper's claim is that CLITE's benefits are
// robust to reasonable parameter choices while the structural pieces
// (engineered bootstrap, EI, dropout) each earn their keep.
func Ablation(cfg Config) (Table, error) {
	mix := Mix{
		LC: []LCJob{{Name: "memcached", Load: 0.1}, {Name: "img-dnn", Load: 0.1}, {Name: "masstree", Load: 0.1}},
		BG: []string{"streamcluster"},
	}
	variants := []struct {
		name string
		opts bo.Options
	}{
		{"paper config (EI ζ=0.01, Matérn 5/2)", bo.Options{}},
		{"acquisition: PI", bo.Options{Acquisition: bo.PI{Zeta: 0.01}}},
		{"acquisition: UCB β=2", bo.Options{Acquisition: bo.UCB{Beta: 2}}},
		{"acquisition: EI ζ=0.1", bo.Options{Acquisition: bo.EI{Zeta: 0.1}}},
		{"kernel: RBF", bo.Options{KernelFamily: "rbf"}},
		{"bootstrap: random", bo.Options{RandomBootstrap: true}},
		{"dropout: off", bo.Options{DisableDropout: true}},
		{"dropout: random job", bo.Options{RandomDropout: true}},
	}
	repeats := 3
	if cfg.Coarse {
		repeats = 1
		variants = variants[:4]
	}
	t := Table{
		ID:     "ablation",
		Title:  "CLITE design-choice ablation on " + mix.Describe(),
		Header: []string{"variant", "avg score", "QoS-met runs", "avg samples"},
	}
	for _, v := range variants {
		var score float64
		var samples int
		met := 0
		for rep := 0; rep < repeats; rep++ {
			opts := v.opts
			opts.Seed = cfg.Seed + int64(rep)*31
			res, err := runPolicy(policies.CLITE{BO: opts}, mix, opts.Seed)
			if err != nil {
				return Table{}, err
			}
			score += res.BestScore / float64(repeats)
			samples += res.SamplesUsed / repeats
			if res.QoSMeetable {
				met++
			}
		}
		t.Rows = append(t.Rows, []string{
			v.name, f3(score), fmt.Sprintf("%d/%d", met, repeats), fmt.Sprintf("%d", samples),
		})
	}
	t.Notes = "paper Sec. 5.2: CLITE performs within ~2% under reasonably-chosen parameters, no per-mix tuning"
	return t, nil
}
