package harness

import (
	"reflect"
	"testing"
)

func TestSLOBurnCoarse(t *testing.T) {
	tbl, err := SLOBurn(Config{Seed: 1, Coarse: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 { // 3 shapes × 2 fault rates
		t.Fatalf("rows = %d, want 6", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Fatalf("row width %d != header width %d: %v", len(row), len(tbl.Header), row)
		}
		if row[2] == "0" {
			t.Errorf("row %v observed no windows", row)
		}
	}
	// The faulted rows must burn at least as much budget as clean ones
	// for the same shape, measured by alert count.
	for i := 0; i < len(tbl.Rows); i += 2 {
		clean, faulted := tbl.Rows[i], tbl.Rows[i+1]
		if clean[6] > faulted[6] && len(clean[6]) >= len(faulted[6]) {
			t.Errorf("faults reduced alerts: clean %v vs faulted %v", clean, faulted)
		}
	}
	// Deterministic: the same seed replays the identical table.
	again, err := SLOBurn(Config{Seed: 1, Coarse: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tbl, again) {
		t.Error("sloburn table did not replay identically")
	}
}
