package harness

import (
	"clite/internal/bo"
	"clite/internal/policies"
	"clite/internal/workload"
)

// Fig12 reproduces the BG-performance heatmap: streamcluster's
// isolation-normalized throughput when co-located with memcached and
// xapian across a load grid, for PARTIES, CLITE, and ORACLE.
func Fig12(cfg Config) ([]Table, error) {
	loads := []float64{0.2, 0.4, 0.6, 0.8}
	if cfg.Coarse {
		loads = []float64{0.3, 0.6}
	}
	pols := []policies.Policy{
		policies.PARTIES{},
		policies.CLITE{BO: bo.Options{Seed: cfg.Seed}},
		policies.Oracle{},
	}
	var out []Table
	for _, p := range pols {
		t := Table{
			ID:     "fig12",
			Title:  "streamcluster perf (normalized to isolation) vs memcached × xapian loads — " + p.Name(),
			Header: []string{"memcached \\ xapian"},
		}
		for _, l := range loads {
			t.Header = append(t.Header, pct(l))
		}
		for _, mcLoad := range loads {
			row := []string{pct(mcLoad)}
			for _, xpLoad := range loads {
				mix := Mix{
					LC: []LCJob{{Name: "memcached", Load: mcLoad}, {Name: "xapian", Load: xpLoad}},
					BG: []string{"streamcluster"},
				}
				res, err := runPolicy(p, mix, cfg.Seed)
				if err != nil {
					return nil, err
				}
				cell := "X"
				if res.QoSMeetable {
					cell = pct(res.BestObs.NormPerf[2])
				}
				row = append(row, cell)
			}
			t.Rows = append(t.Rows, row)
		}
		t.Notes = "QoS of both LC jobs met wherever a percentage is shown; X = not co-locatable"
		out = append(out, t)
	}
	return out, nil
}

// Fig13 reproduces the BG-job performance comparison across 3-LC
// mixes: each BG job's throughput relative to what ORACLE achieves for
// it in the same mix.
func Fig13(cfg Config) (Table, error) {
	t := Table{
		ID:     "fig13",
		Title:  "BG-job performance relative to ORACLE (3 LC + 1 BG)",
		Header: []string{"mix", "CLITE", "PARTIES", "RAND+", "GENETIC"},
	}
	bgs := []string{"blackscholes", "fluidanimate", "streamcluster", "canneal"}
	if cfg.Coarse {
		bgs = bgs[:2]
	}
	for _, bg := range bgs {
		mix := Mix{
			LC: []LCJob{
				{Name: "img-dnn", Load: 0.1},
				{Name: "xapian", Load: 0.1},
				{Name: "memcached", Load: 0.1},
			},
			BG: []string{bg},
		}
		oracleM, err := buildMachine(mix, cfg.Seed)
		if err != nil {
			return Table{}, err
		}
		oracleRes, err := policies.Oracle{}.Run(oracleM)
		if err != nil {
			return Table{}, err
		}
		oracleBG := meanBGPerf(oracleM, oracleRes.BestObs)
		row := []string{mix.Describe()}
		vals, err := bgPerfVsOracle(mix, oracleBG, cfg)
		if err != nil {
			return Table{}, err
		}
		for _, v := range vals {
			row = append(row, pct(v))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = "paper: CLITE > 75% of ORACLE on average; competitors often < 30% (0 = LC QoS not met); " +
		"cells average over repeated runs"
	return t, nil
}

// bgPerfVsOracle runs each online policy a few times on the mix and
// averages the BG-performance-vs-ORACLE ratio (a run that misses LC
// QoS contributes 0, the paper's convention).
func bgPerfVsOracle(mix Mix, oracleBG float64, cfg Config) ([]float64, error) {
	repeats := 3
	if cfg.Coarse {
		repeats = 2
	}
	nPol := len(onlinePolicies(cfg.Seed))
	vals := make([]float64, nPol)
	for rep := 0; rep < repeats; rep++ {
		seed := cfg.Seed + int64(rep)*271
		for i, p := range onlinePolicies(seed) {
			m, err := buildMachine(mix, seed)
			if err != nil {
				return nil, err
			}
			res, err := p.Run(m)
			if err != nil {
				return nil, err
			}
			if res.QoSMeetable {
				vals[i] += ratioOrZero(meanBGPerf(m, res.BestObs), oracleBG) / float64(repeats)
			}
		}
	}
	return vals, nil
}

// Fig14 reproduces the multiple-BG-job mixes: three BG jobs co-located
// with two LC jobs; metric is the mean BG performance relative to
// ORACLE's.
func Fig14(cfg Config) (Table, error) {
	t := Table{
		ID:     "fig14",
		Title:  "mean BG performance relative to ORACLE (2 LC + 3 BG)",
		Header: []string{"mix", "CLITE", "PARTIES", "RAND+", "GENETIC"},
	}
	bgMixes := [][]string{
		{"blackscholes", "fluidanimate", "streamcluster"},
		{"swaptions", "freqmine", "canneal"},
	}
	if cfg.Coarse {
		bgMixes = bgMixes[:1]
	}
	for _, bgs := range bgMixes {
		mix := Mix{
			LC: []LCJob{{Name: "memcached", Load: 0.2}, {Name: "img-dnn", Load: 0.2}},
			BG: bgs,
		}
		oracleM, err := buildMachine(mix, cfg.Seed)
		if err != nil {
			return Table{}, err
		}
		oracleRes, err := policies.Oracle{}.Run(oracleM)
		if err != nil {
			return Table{}, err
		}
		oracleBG := meanBGPerf(oracleM, oracleRes.BestObs)
		label := ""
		for i, bg := range bgs {
			if i > 0 {
				label += "+"
			}
			label += workload.Acronym(bg)
		}
		row := []string{"2LC+" + label}
		vals, err := bgPerfVsOracle(mix, oracleBG, cfg)
		if err != nil {
			return Table{}, err
		}
		for _, v := range vals {
			row = append(row, pct(v))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = "paper: CLITE ≈88% of optimal on average; next best < 75%; cells average over repeated runs"
	return t, nil
}
