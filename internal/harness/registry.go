package harness

import (
	"fmt"
	"sort"

	"clite/internal/par"
)

// Experiment is one reproducible table/figure of the paper.
type Experiment struct {
	ID    string
	Brief string
	Run   func(Config) ([]Table, error)
}

func single(f func(Config) (Table, error)) func(Config) ([]Table, error) {
	return func(cfg Config) ([]Table, error) {
		t, err := f(cfg)
		if err != nil {
			return nil, err
		}
		return []Table{t}, nil
	}
}

func static(f func() Table) func(Config) ([]Table, error) {
	return func(Config) ([]Table, error) { return []Table{f()}, nil }
}

// Experiments returns the full per-experiment index (DESIGN.md), in
// paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "shared resources and isolation tools", static(Table1)},
		{"table2", "testbed configuration", static(Table2)},
		{"table3", "LC and BG workloads", static(Table3)},
		{"fig6", "isolation QPS vs p95 knees (QoS targets)", single(Fig6)},
		{"fig7", "max memcached load, 3 LC jobs, per policy", Fig7},
		{"fig8", "max memcached load, 3 LC + blackscholes, per policy", Fig8},
		{"fig9a", "allocation snapshot PARTIES vs CLITE vs ORACLE", single(Fig9a)},
		{"fig9b", "search trace on a mix PARTIES struggles with", single(Fig9b)},
		{"fig10", "mean LC perf normalized to ORACLE", single(Fig10)},
		{"fig11", "run-to-run variability", single(Fig11)},
		{"fig12", "BG perf heatmap (streamcluster)", Fig12},
		{"fig13", "BG perf vs ORACLE across 3-LC mixes", single(Fig13)},
		{"fig14", "multi-BG mixes vs ORACLE", single(Fig14)},
		{"fig15a", "sampling overhead per technique", single(Fig15a)},
		{"fig15b", "quality vs samples trace", single(Fig15b)},
		{"fig16", "dynamic load adaptation", single(Fig16)},
		{"ablation", "CLITE design-choice ablation", single(Ablation)},
		{"doe", "FFD/RSM design-space-exploration comparison (Sec. 5.2)", single(DOE)},
		{"faultsweep", "QoS retention vs observation-fault rate (hardened controller)", single(FaultSweep)},
		{"placement", "cluster placement pipeline: screening work per admitted job", single(Placement)},
		{"fleetscale", "fleet streaming placement: traffic shapes over sharded cells", single(FleetScale)},
		{"sloburn", "SLO burn-rate alerting: budget spend under faults × traffic shapes", single(SLOBurn)},
		{"telemetry", "telemetry timelines: events emitted per scenario", single(Telemetry)},
		{"failover", "replicated control plane: leader death, failover, quorum loss", single(Failover)},
	}
}

// ExperimentResult is one experiment's outcome from RunAll.
type ExperimentResult struct {
	ID     string
	Tables []Table
	Err    error
}

// RunAll executes the experiments over a bounded worker pool (workers
// 0 means NumCPU, 1 forces the sequential path) and returns results in
// input order. Every experiment seeds its own RNGs from cfg.Seed and
// builds its own machines, so the runs share no mutable state; the
// index-addressed result slots keep the output independent of
// completion order (DESIGN.md §8).
func RunAll(exps []Experiment, cfg Config, workers int) []ExperimentResult {
	out := make([]ExperimentResult, len(exps))
	par.ForEach(workers, len(exps), func(i int) {
		tables, err := exps[i].Run(cfg)
		out[i] = ExperimentResult{ID: exps[i].ID, Tables: tables, Err: err}
	})
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (have %v)", id, ids)
}
