package harness

import (
	"fmt"

	"clite/internal/bo"
	"clite/internal/policies"
	"clite/internal/stats"
)

// fig10Mixes are the two three-LC sets of Fig. 10/11: the third job's
// load sweeps while the other two sit at 10%.
func fig10Mixes() []struct {
	fixed [2]LCJob
	sweep string
} {
	return []struct {
		fixed [2]LCJob
		sweep string
	}{
		{fixed: [2]LCJob{{Name: "img-dnn", Load: 0.1}, {Name: "xapian", Load: 0.1}}, sweep: "memcached"},
		{fixed: [2]LCJob{{Name: "specjbb", Load: 0.1}, {Name: "masstree", Load: 0.1}}, sweep: "xapian"},
	}
}

// Fig10 reproduces the mean LC performance comparison: the average
// isolation-normalized performance of three co-located LC jobs (no BG
// jobs), normalized to ORACLE, as the third job's load grows.
func Fig10(cfg Config) (Table, error) {
	t := Table{
		ID:     "fig10",
		Title:  "mean LC-job performance normalized to ORACLE (3 LC jobs, no BG)",
		Header: []string{"mix", "sweep-load", "CLITE", "PARTIES", "RAND+", "GENETIC"},
	}
	sweepLoads := []float64{0.2, 0.4, 0.6}
	if cfg.Coarse {
		sweepLoads = []float64{0.2, 0.5}
	}
	for _, mc := range fig10Mixes() {
		for _, load := range sweepLoads {
			mix := Mix{LC: []LCJob{mc.fixed[0], mc.fixed[1], {Name: mc.sweep, Load: load}}}
			oracleM, err := buildMachine(mix, cfg.Seed)
			if err != nil {
				return Table{}, err
			}
			oracleRes, err := policies.Oracle{}.Run(oracleM)
			if err != nil {
				return Table{}, err
			}
			row := []string{mc.fixed[0].Name + "+" + mc.fixed[1].Name + "+" + mc.sweep, pct(load)}
			if !oracleRes.QoSMeetable {
				// The paper's Fig. 10 only spans co-locatable loads.
				row = append(row, "mix not co-locatable", "", "", "")
				t.Rows = append(t.Rows, row)
				continue
			}
			oraclePerf := meanLCPerf(oracleM, oracleRes.BestObs)
			for _, p := range onlinePolicies(cfg.Seed) {
				m, err := buildMachine(mix, cfg.Seed)
				if err != nil {
					return Table{}, err
				}
				res, err := p.Run(m)
				if err != nil {
					return Table{}, err
				}
				// A run that misses QoS reports 0 (the paper's
				// convention for failed co-locations).
				val := 0.0
				if res.QoSMeetable {
					val = ratioOrZero(meanLCPerf(m, res.BestObs), oraclePerf)
				}
				row = append(row, pct(val))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = "paper: CLITE ≈96–98% of ORACLE; PARTIES 74–85%; RAND+/GENETIC < 80%"
	return t, nil
}

// Fig11 reproduces the run-to-run variability comparison: the standard
// deviation (as % of mean) of the chosen configuration's performance
// across repeated runs of the same mix.
func Fig11(cfg Config) (Table, error) {
	t := Table{
		ID:     "fig11",
		Title:  "variability of final performance across repeated runs (lower is better)",
		Header: []string{"mix", "policy", "stddev % of mean"},
	}
	repeats := 5
	if cfg.Coarse {
		repeats = 3
	}
	mixes := []Mix{
		{LC: []LCJob{{Name: "img-dnn", Load: 0.1}, {Name: "xapian", Load: 0.1}, {Name: "memcached", Load: 0.1}}},
		{LC: []LCJob{{Name: "specjbb", Load: 0.1}, {Name: "masstree", Load: 0.1}, {Name: "xapian", Load: 0.1}}},
	}
	for _, mix := range mixes {
		for _, kind := range []string{"CLITE", "PARTIES", "RAND+", "GENETIC"} {
			var perfs []float64
			for rep := 0; rep < repeats; rep++ {
				seed := cfg.Seed + int64(rep)*101 + 7
				var p policies.Policy
				switch kind {
				case "CLITE":
					p = policies.CLITE{BO: bo.Options{Seed: seed}}
				case "PARTIES":
					p = policies.PARTIES{}
				case "RAND+":
					p = policies.RandPlus{Seed: seed}
				case "GENETIC":
					p = policies.Genetic{Seed: seed}
				}
				m, err := buildMachine(mix, seed)
				if err != nil {
					return Table{}, err
				}
				res, err := p.Run(m)
				if err != nil {
					return Table{}, err
				}
				perfs = append(perfs, meanLCPerf(m, res.BestObs))
			}
			t.Rows = append(t.Rows, []string{
				mix.Describe(), kind,
				fmt.Sprintf("%.1f%%", 100*stats.CoefficientOfVariation(perfs)),
			})
		}
	}
	t.Notes = "paper: CLITE < 7%; PARTIES/GENETIC/RAND+ often > 20%"
	return t, nil
}
