package harness

import "testing"

// TestChaosSmoke is the `make chaossmoke` gate: a short failover sweep
// (coarse mode: scheduled death, 25% death rate, quorum loss) that
// must commit work through leader churn with zero divergent decisions
// and bounded unavailability. CI runs it alongside tier1 + fuzzsmoke.
func TestChaosSmoke(t *testing.T) {
	rows, err := FailoverScenarios(Config{Seed: 1, Coarse: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("coarse sweep ran %d scenarios, want >= 3 (two fault rates + quorum loss)", len(rows))
	}
	sawFailover := false
	for _, r := range rows {
		if r.Divergent != 0 {
			t.Errorf("scenario %q: %d divergent decisions, want 0 — the replicated state machine broke determinism", r.Scenario, r.Divergent)
		}
		if r.Committed == 0 {
			t.Errorf("scenario %q committed nothing; the group never served", r.Scenario)
		}
		if r.Failovers > 0 {
			sawFailover = true
			// Unavailability is bounded by the lease plus the client's
			// retry discretization (max backoff + one request interval).
			if r.MaxUnavail <= 0 || r.MaxUnavail > 5+4+1 {
				t.Errorf("scenario %q: unavailability window %.2fs outside (0, 10]", r.Scenario, r.MaxUnavail)
			}
		}
	}
	if !sawFailover {
		t.Error("the sweep injected leader deaths but no failover completed")
	}
	// The quorum-loss scenario must have rejected writes (degraded),
	// not crashed or diverged.
	last := rows[len(rows)-1]
	if last.DegradedRejcs == 0 {
		t.Errorf("quorum-loss scenario %q: expected degraded write rejections, got none", last.Scenario)
	}
	if last.Committed >= len(failoverStream()) {
		t.Errorf("quorum-loss scenario %q committed the whole stream; quorum loss never bit", last.Scenario)
	}
}
