package harness

import (
	"fmt"

	"clite/internal/bo"
	"clite/internal/core"
	"clite/internal/resource"
)

// Fig16 reproduces the dynamic-load adaptation experiment: img-dnn and
// masstree hold 10% load while memcached steps 10% → 20% → 30%; CLITE
// monitors the converged partition, detects each violation, re-runs,
// and stabilizes on a new partition each time.
func Fig16(cfg Config) (Table, error) {
	mix := Mix{
		LC: []LCJob{
			{Name: "img-dnn", Load: 0.1},
			{Name: "masstree", Load: 0.1},
			{Name: "memcached", Load: 0.1},
		},
		BG: []string{"fluidanimate"},
	}
	m, err := buildMachine(mix, cfg.Seed)
	if err != nil {
		return Table{}, err
	}
	memcachedIdx := 2
	ctrl := core.New(m, core.Options{BO: bo.Options{Seed: cfg.Seed}})

	t := Table{
		ID:     "fig16",
		Title:  "dynamic load adaptation: memcached 10% → 20% → 30%",
		Header: []string{"phase", "memcached load", "samples", "all QoS met", "fluidanimate perf", "memcached cores/ways/bw"},
	}
	topo := resource.Default()
	record := func(phase string, load float64, res core.Result) {
		alloc := res.Best.Jobs[memcachedIdx]
		t.Rows = append(t.Rows, []string{
			phase, pct(load), fmt.Sprintf("%d", res.SamplesUsed),
			fmt.Sprintf("%v", res.BestObs.AllQoSMet),
			pct(res.BestObs.NormPerf[3]),
			fmt.Sprintf("%d/%d/%d", alloc[0], alloc[1], alloc[topo.Index(resource.MemBandwidth)]),
		})
	}

	res, err := ctrl.Run()
	if err != nil {
		return Table{}, err
	}
	record("initial", 0.1, res)

	for _, load := range []float64{0.2, 0.3} {
		if err := m.SetLoad(memcachedIdx, load); err != nil {
			return Table{}, err
		}
		reinvoke, err := ctrl.Monitor(res.Best, 5)
		if err != nil {
			return Table{}, err
		}
		if !reinvoke {
			// Old partition still holds; note it and move on.
			obs, err := m.Observe(res.Best)
			if err != nil {
				return Table{}, err
			}
			alloc := res.Best.Jobs[memcachedIdx]
			t.Rows = append(t.Rows, []string{
				"no re-invocation needed", pct(load), "0",
				fmt.Sprintf("%v", obs.AllQoSMet), pct(obs.NormPerf[3]),
				fmt.Sprintf("%d/%d/%d", alloc[0], alloc[1], alloc[topo.Index(resource.MemBandwidth)]),
			})
			continue
		}
		res, err = ctrl.Rerun(res)
		if err != nil {
			return Table{}, err
		}
		record("re-converged", load, res)
	}
	t.Notes = "paper: CLITE reacts to each load step and stabilizes on a new partition; " +
		"the BG job's share shrinks as memcached's load grows"
	return t, nil
}
