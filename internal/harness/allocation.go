package harness

import (
	"fmt"

	"clite/internal/bo"
	"clite/internal/policies"
	"clite/internal/resource"
)

// fig9Mix is the Sec. 5.2 deep-dive mix: three LC jobs plus
// streamcluster (9a) / blackscholes (9b).
func fig9aMix() Mix {
	// 10% loads: this four-job mix has real slack here, so the policies
	// differentiate on how much of it they convert into BG throughput
	// (memory capacity makes the mix infeasible beyond ~15%; DESIGN.md).
	return Mix{
		LC: []LCJob{
			{Name: "img-dnn", Load: 0.1},
			{Name: "memcached", Load: 0.1},
			{Name: "masstree", Load: 0.1},
		},
		BG: []string{"streamcluster"},
	}
}

// Fig9a compares the resource allocations PARTIES and CLITE settle on
// for the same mix, plus the BG job's performance relative to ORACLE —
// the paper's "89% vs 39% of ORACLE" observation.
func Fig9a(cfg Config) (Table, error) {
	mix := fig9aMix()
	topo := resource.Default()
	t := Table{
		ID:     "fig9a",
		Title:  "resource allocation snapshot: " + mix.Describe(),
		Header: []string{"job", "policy"},
	}
	for _, spec := range topo {
		t.Header = append(t.Header, spec.Kind.String()+"(%)")
	}

	oracleRes, err := runPolicy(policies.Oracle{}, mix, cfg.Seed)
	if err != nil {
		return Table{}, err
	}
	names := []string{"img-dnn", "memcached", "masstree", "streamcluster"}
	pols := []policies.Policy{
		policies.PARTIES{},
		policies.CLITE{BO: bo.Options{Seed: cfg.Seed}},
		policies.Oracle{},
	}
	var bgNote string
	for _, p := range pols {
		res, err := runPolicy(p, mix, cfg.Seed)
		if err != nil {
			return Table{}, err
		}
		for j, name := range names {
			row := []string{name, p.Name()}
			for r, spec := range topo {
				row = append(row, fmt.Sprintf("%.0f", 100*float64(res.Best.Jobs[j][r])/float64(spec.Units)))
			}
			t.Rows = append(t.Rows, row)
		}
		bgPerf := res.BestObs.NormPerf[3]
		bgNote += fmt.Sprintf("%s: streamcluster at %.0f%% of ORACLE; ", p.Name(),
			100*ratioOrZero(bgPerf, oracleRes.BestObs.NormPerf[3]))
	}
	t.Notes = bgNote
	return t, nil
}

// Fig9b traces the per-sample search behaviour of PARTIES vs CLITE on
// a mix PARTIES struggles with: whether each scheme reaches (and
// keeps) a QoS-meeting configuration as samples accrue.
func Fig9b(cfg Config) (Table, error) {
	// Loads picked from the Fig. 8 frontier: the mix is co-locatable
	// (ORACLE and CLITE succeed) but beyond what PARTIES' coordinate
	// descent reaches before its budget runs out.
	mix := Mix{
		LC: []LCJob{
			{Name: "img-dnn", Load: 0.1},
			{Name: "memcached", Load: 0.3},
			{Name: "masstree", Load: 0.1},
		},
		BG: []string{"blackscholes"},
	}
	t := Table{
		ID:     "fig9b",
		Title:  "search trace: " + mix.Describe(),
		Header: []string{"policy", "sample", "score", "all-QoS-met", "cores img/mc/mt/bs"},
	}
	pols := []policies.Policy{
		policies.PARTIES{},
		policies.CLITE{BO: bo.Options{Seed: cfg.Seed}},
	}
	stride := 5
	if cfg.Coarse {
		stride = 10
	}
	for _, p := range pols {
		res, err := runPolicy(p, mix, cfg.Seed)
		if err != nil {
			return Table{}, err
		}
		firstMet := -1
		for i, step := range res.History {
			if step.Obs.AllQoSMet && firstMet < 0 {
				firstMet = i
			}
			if i%stride != 0 && i != len(res.History)-1 {
				continue
			}
			cores := ""
			for j := range step.Config.Jobs {
				if j > 0 {
					cores += "/"
				}
				cores += fmt.Sprintf("%d", step.Config.Jobs[j][0])
			}
			t.Rows = append(t.Rows, []string{
				p.Name(), fmt.Sprintf("%d", i), f3(step.Score),
				fmt.Sprintf("%v", step.Obs.AllQoSMet), cores,
			})
		}
		summary := "never meets all QoS"
		if firstMet >= 0 {
			summary = fmt.Sprintf("first meets all QoS at sample %d", firstMet)
		}
		t.Rows = append(t.Rows, []string{p.Name(), "summary", f3(res.BestScore),
			fmt.Sprintf("%v", res.QoSMeetable), summary})
	}
	return t, nil
}
