package harness

import (
	"errors"
	"fmt"

	"clite/internal/bo"
	"clite/internal/core"
	"clite/internal/faults"
	"clite/internal/server"
)

// FaultSweep measures QoS retention under a sweep of observation-fault
// rates: each default mix is run through the hardened controller with
// the fault injector set to a transient rate r, an outlier rate r, and
// a partial-actuation rate r/2, and the returned partition is checked
// against noise-free ground truth. Retention is the fraction of mixes
// whose returned partition genuinely meets every QoS target. The rate-0
// row runs the unhardened baseline and anchors the sweep: resilience
// adds no accounting footprint when nothing goes wrong.
func FaultSweep(cfg Config) (Table, error) {
	t := Table{
		ID:     "faultsweep",
		Title:  "QoS retention of the hardened controller vs observation-fault rate",
		Header: []string{"fault rate", "QoS retention", "mean samples", "mean retries", "fallbacks"},
	}
	mixes := []Mix{
		{LC: []LCJob{{Name: "memcached", Load: 0.2}}, BG: []string{"swaptions"}},
		{LC: []LCJob{{Name: "memcached", Load: 0.2}, {Name: "img-dnn", Load: 0.2}}, BG: []string{"swaptions"}},
		{LC: []LCJob{{Name: "memcached", Load: 0.2}, {Name: "img-dnn", Load: 0.2}, {Name: "xapian", Load: 0.2}}, BG: []string{"swaptions"}},
		{LC: []LCJob{{Name: "memcached", Load: 0.2}, {Name: "img-dnn", Load: 0.2}}, BG: []string{"swaptions", "freqmine"}},
	}
	rates := []float64{0, 0.05, 0.10, 0.20, 0.30}
	if cfg.Coarse {
		mixes = mixes[1:3]
		rates = []float64{0, 0.10, 0.20}
	}
	for _, rate := range rates {
		retained, samples, retries, fallbacks := 0, 0, 0, 0
		for i, mix := range mixes {
			m, err := buildMachine(mix, cfg.Seed)
			if err != nil {
				return Table{}, err
			}
			plan := faults.Plan{
				Seed:             cfg.Seed*1000 + int64(i),
				Transient:        rate,
				Outlier:          rate,
				PartialActuation: rate / 2,
			}
			obs, err := faults.Wrap(m, plan)
			if err != nil {
				return Table{}, err
			}
			ctrl := core.New(obs, core.Options{
				BO:         bo.Options{Seed: cfg.Seed},
				Resilience: core.Resilience{Enabled: rate > 0},
			})
			res, err := ctrl.Run()
			if err != nil {
				// A run the fault mix killed outright (retry budget gone
				// before any safe window existed) is lost retention, not
				// a broken sweep.
				if errors.Is(err, server.ErrObservationFailed) || errors.Is(err, server.ErrNodeFailed) {
					continue
				}
				return Table{}, fmt.Errorf("rate %.2f mix %s: %w", rate, mix.Describe(), err)
			}
			samples += res.SamplesUsed
			retries += res.Retries
			if res.FellBack {
				fallbacks++
			}
			if res.QoSMeetable && res.Best.NumJobs() > 0 {
				truth, err := m.ObserveIdeal(res.Best)
				if err != nil {
					return Table{}, err
				}
				if truth.AllQoSMet {
					retained++
				}
			}
		}
		n := float64(len(mixes))
		t.Rows = append(t.Rows, []string{
			pct(rate),
			pct(float64(retained) / n),
			fmt.Sprintf("%.1f", float64(samples)/n),
			fmt.Sprintf("%.1f", float64(retries)/n),
			fmt.Sprintf("%d", fallbacks),
		})
	}
	t.Notes = "retention checked against noise-free ground truth; rate 0 runs the unhardened baseline (retries always 0 there)"
	return t, nil
}
