package harness

import (
	"errors"
	"fmt"

	"clite/internal/cluster"
	"clite/internal/faults"
	"clite/internal/replica"
	"clite/internal/telemetry"
)

// failoverStream is the request stream every failover scenario
// replays: a mixed LC/BG arrival sequence long enough to straddle the
// injected leader deaths.
func failoverStream() []cluster.Request {
	return []cluster.Request{
		{Workload: "img-dnn", Load: 0.2},
		{Workload: "memcached", Load: 0.2},
		{Workload: "swaptions"},
		{Workload: "xapian", Load: 0.2},
		{Workload: "memcached", Load: 0.2},
		{Workload: "freqmine"},
		{Workload: "img-dnn", Load: 0.2},
		{Workload: "masstree", Load: 0.2},
		{Workload: "streamcluster"},
		{Workload: "memcached", Load: 0.2},
	}
}

// FailoverRow is one scenario's outcome, exposed for the chaos-smoke
// gate (make chaossmoke) which asserts Divergent == 0 at every rate.
type FailoverRow struct {
	Scenario      string
	Committed     int
	Failovers     int
	Divergent     int
	MaxUnavail    float64
	Retries       int64
	DegradedRejcs int64
}

// runFailoverScenario drives the request stream through a 3-replica
// group under the given control-fault plan and compares every
// committed decision, byte for byte, against the uninterrupted
// unreplicated reference run.
func runFailoverScenario(cfg Config, plan faults.ControlPlan, stream []cluster.Request) (FailoverRow, error) {
	sched := cluster.Options{Nodes: 3, Seed: cfg.Seed, ScreenIterations: 12, ScreenWorkers: 1}
	tr, reg := telemetry.NewTracer(), telemetry.NewRegistry()
	g, err := replica.NewGroup(replica.Options{
		Scheduler: sched,
		Lease:     5,
		Faults:    plan,
		Trace:     tr,
		Metrics:   reg,
	})
	if err != nil {
		return FailoverRow{}, err
	}
	c := &replica.Client{Group: g}
	for _, req := range stream {
		_, err := c.Place(req)
		switch {
		case err == nil, errors.Is(err, cluster.ErrUnplaceable):
		case errors.Is(err, replica.ErrDegraded), errors.Is(err, replica.ErrTimeout):
			// Quorum loss (or an outage outliving the client budget)
			// ends the write stream; the scenario reports how far it got.
		default:
			return FailoverRow{}, err
		}
	}

	// Reference: the same stream through one unreplicated scheduler,
	// truncated to what the group actually committed.
	ref := cluster.New(sched)
	var want []string
	for _, req := range stream {
		p, err := ref.Place(req)
		unplaceable := errors.Is(err, cluster.ErrUnplaceable)
		if err != nil && !unplaceable {
			return FailoverRow{}, err
		}
		want = append(want, replica.PlaceDigest(req, p, unplaceable))
	}
	row := FailoverRow{
		Retries:       reg.Counter("replica_client_retries_total").Value(),
		DegradedRejcs: reg.Counter("replica_degraded_rejects_total").Value(),
	}
	decisions := g.Decisions()
	row.Committed = len(decisions)
	for i, d := range decisions {
		if i >= len(want) || d.Digest != want[i] {
			row.Divergent++
		}
	}
	for _, ev := range tr.Events() {
		if ev.Kind == telemetry.KindFailoverComplete {
			row.Failovers++
			if ev.Value > row.MaxUnavail {
				row.MaxUnavail = ev.Value
			}
		}
	}
	return row, nil
}

// FailoverScenarios runs the failover sweep and returns the raw rows:
// a fault-free baseline, scheduled single-leader deaths, rate-driven
// deaths at increasing rates, and a quorum-loss scenario that must
// degrade to read-only rather than diverge or crash. The chaos-smoke
// gate calls this directly.
func FailoverScenarios(cfg Config) ([]FailoverRow, error) {
	type scenario struct {
		name string
		plan faults.ControlPlan
	}
	scenarios := []scenario{
		{"no faults", faults.ControlPlan{}},
		{"scheduled death t=2.5s", faults.ControlPlan{LeaderDeathAt: []float64{2.5}}},
		{"death rate 10%", faults.ControlPlan{Seed: cfg.Seed + 1, DeathRate: 0.10, MaxDeaths: 1}},
		{"death rate 25%", faults.ControlPlan{Seed: cfg.Seed + 2, DeathRate: 0.25, MaxDeaths: 1}},
		{"rpc loss 20% + delay", faults.ControlPlan{Seed: cfg.Seed + 4, RPCLoss: 0.2, RPCDelay: 0.2}},
		{"quorum loss (2 deaths)", faults.ControlPlan{LeaderDeathAt: []float64{2.5, 14.5}}},
	}
	if cfg.Coarse {
		scenarios = []scenario{scenarios[1], scenarios[3], scenarios[5]}
	}
	stream := failoverStream()
	var rows []FailoverRow
	for _, sc := range scenarios {
		row, err := runFailoverScenario(cfg, sc.plan, stream)
		if err != nil {
			return nil, fmt.Errorf("failover scenario %q: %w", sc.name, err)
		}
		row.Scenario = sc.name
		rows = append(rows, row)
	}
	return rows, nil
}

// Failover is the harness experiment: controller replicas killed
// mid-stream must fail over within the lease window and keep the
// placement stream byte-identical to an uninterrupted single-
// controller run; losing the quorum must degrade to read-only, never
// diverge.
func Failover(cfg Config) (Table, error) {
	t := Table{
		ID:     "failover",
		Title:  "replicated control plane under controller death and RPC faults",
		Header: []string{"scenario", "committed", "failovers", "divergent", "max unavail (s)", "client retries", "degraded rejects"},
	}
	rows, err := FailoverScenarios(cfg)
	if err != nil {
		return Table{}, err
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Scenario,
			fmt.Sprintf("%d/%d", r.Committed, len(failoverStream())),
			fmt.Sprintf("%d", r.Failovers),
			fmt.Sprintf("%d", r.Divergent),
			fmt.Sprintf("%.2f", r.MaxUnavail),
			fmt.Sprintf("%d", r.Retries),
			fmt.Sprintf("%d", r.DegradedRejcs),
		})
	}
	t.Notes = "3 replicas, 5s lease; decisions compared byte-for-byte against an unreplicated run under the same seed; divergent must be 0 everywhere"
	return t, nil
}
