package harness

import (
	"fmt"
	"reflect"

	"clite/internal/faults"
	"clite/internal/fleet"
)

// FleetScale exercises the fleet layer across its traffic shapes and
// verifies its headline contract in the same pass: each row streams
// one shape's arrivals through the sharded fleet and reports the job
// ledger and per-placement screening work, and the "decisions 1=N
// shards" column re-runs the identical fleet monolithically (one
// shard) and byte-compares the decision logs. Every figure in the
// table is deterministic — wall-clock throughput lives in the
// FleetPlace benchmark, not here, so regenerated docs never drift.
func FleetScale(cfg Config) (Table, error) {
	t := Table{
		ID:    "fleetscale",
		Title: "Fleet streaming placement: traffic shapes over sharded cells",
		Header: []string{
			"traffic", "arrivals", "placed", "rejected", "lost",
			"rehomed", "screens", "BO iters/job", "cache hit rate", "decisions 1=N shards",
		},
		Notes: "Each row simulates the same seeded fleet twice, with N scheduler shards and with one, " +
			"and compares the decision logs entry for entry; the shard count is a pure concurrency knob. " +
			"Rehomed counts jobs displaced by node deaths that a surviving node absorbed.",
	}
	nodes, cellNodes, shards := 256, 64, 4
	duration := 8.0
	if cfg.Coarse {
		nodes, cellNodes, shards = 128, 32, 2
		duration = 4
	}
	rows := []struct {
		name    string
		traffic fleet.Traffic
		deaths  faults.FleetPlan
	}{
		{"diurnal", fleet.Traffic{Shape: fleet.ShapeDiurnal}, faults.FleetPlan{}},
		{"bursty", fleet.Traffic{Shape: fleet.ShapeBursty}, faults.FleetPlan{}},
		{"heavytail", fleet.Traffic{Shape: fleet.ShapeHeavyTail}, faults.FleetPlan{}},
		{"diurnal+deaths", fleet.Traffic{Shape: fleet.ShapeDiurnal},
			faults.FleetPlan{Seed: cfg.Seed, DeathRate: 0.5, MaxDeaths: 3}},
	}
	for _, row := range rows {
		opts := fleet.Options{
			Nodes:     nodes,
			CellNodes: cellNodes,
			Shards:    shards,
			Seed:      cfg.Seed,
			Duration:  duration,
			Traffic:   row.traffic,
			Deaths:    row.deaths,
		}
		sum, err := runFleet(opts)
		if err != nil {
			return Table{}, fmt.Errorf("fleetscale %s: %w", row.name, err)
		}
		mono := opts
		mono.Shards = 1
		monoSum, err := runFleet(mono)
		if err != nil {
			return Table{}, fmt.Errorf("fleetscale %s (1 shard): %w", row.name, err)
		}
		identical := "identical"
		if !reflect.DeepEqual(sum.Decisions, monoSum.Decisions) {
			identical = "DIVERGED"
		}
		perJob := 0.0
		if total := sum.Placements + sum.Rejections; total > 0 {
			perJob = float64(sum.Cluster.BOIterations) / float64(total)
		}
		hitRate := "-"
		if lookups := sum.Cluster.CacheHits + sum.Cluster.CacheMisses; lookups > 0 {
			hitRate = fmt.Sprintf("%.0f%%", 100*float64(sum.Cluster.CacheHits)/float64(lookups))
		}
		t.Rows = append(t.Rows, []string{
			row.name,
			fmt.Sprintf("%d", sum.Arrivals),
			fmt.Sprintf("%d", sum.Placements),
			fmt.Sprintf("%d", sum.Rejections),
			fmt.Sprintf("%d", sum.Lost),
			fmt.Sprintf("%d", sum.Rehomed),
			fmt.Sprintf("%d", sum.Cluster.Screens),
			fmt.Sprintf("%.1f", perJob),
			hitRate,
			identical,
		})
	}
	return t, nil
}

// runFleet builds and runs one fleet (fleets are single-use).
func runFleet(opts fleet.Options) (fleet.Summary, error) {
	f, err := fleet.New(opts)
	if err != nil {
		return fleet.Summary{}, err
	}
	return f.Run()
}
