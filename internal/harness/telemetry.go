package harness

import (
	"fmt"

	"clite/internal/bo"
	"clite/internal/cluster"
	"clite/internal/core"
	"clite/internal/faults"
	"clite/internal/telemetry"
)

// Telemetry exercises the unified telemetry layer end to end: a clean
// single-node CLITE run, a hardened run under fault injection, and a
// cluster placement stream are each executed with a trace and a
// metrics registry attached, and the table reports the event timeline
// each produced — BO iterations, observation windows, QoS violations,
// faults, resilience actions — alongside the registry's iteration
// counter. The timelines are deterministic (monotonic steps, no
// wall-clock), so the table reproduces exactly for a given seed.
func Telemetry(cfg Config) (Table, error) {
	t := Table{
		ID:    "telemetry",
		Title: "Telemetry timelines: events emitted per scenario",
		Header: []string{
			"scenario", "events", "bo iters", "windows",
			"qos violations", "faults", "resilience", "terminations",
		},
		Notes: "event counts from the JSONL trace; timelines carry simulated time only, so runs replay byte-identically",
	}
	mix := Mix{
		LC: []LCJob{{Name: "memcached", Load: 0.4}, {Name: "img-dnn", Load: 0.3}},
		BG: []string{"swaptions"},
	}
	iters := 12
	if cfg.Coarse {
		iters = 8
	}

	// Each row reports the trace; the registry is cross-checked so the
	// two sinks can never silently diverge.
	row := func(name string, tr *telemetry.Tracer, reg *telemetry.Registry) error {
		kinds := telemetry.CountKinds(tr.Events())
		if name != "cluster" {
			if got := int(reg.Counter("bo_iterations_total").Value()); got != kinds[telemetry.KindBOIteration] {
				return fmt.Errorf("telemetry %s: registry has %d bo iterations, trace has %d",
					name, got, kinds[telemetry.KindBOIteration])
			}
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", tr.Len()),
			fmt.Sprintf("%d", kinds[telemetry.KindBOIteration]),
			fmt.Sprintf("%d", kinds[telemetry.KindObservationWindow]),
			fmt.Sprintf("%d", kinds[telemetry.KindQoSViolation]),
			fmt.Sprintf("%d", kinds[telemetry.KindFaultInjected]),
			fmt.Sprintf("%d", kinds[telemetry.KindResilienceAction]),
			fmt.Sprintf("%d", kinds[telemetry.KindTermination]),
		})
		return nil
	}

	// Clean single-node run.
	{
		m, err := buildMachine(mix, cfg.Seed)
		if err != nil {
			return Table{}, err
		}
		tr, reg := telemetry.NewTracer(), telemetry.NewRegistry()
		ctrl := core.New(m, core.Options{
			BO:      bo.Options{Seed: cfg.Seed, MaxIterations: iters},
			Trace:   tr,
			Metrics: reg,
		})
		if _, err := ctrl.Run(); err != nil {
			return Table{}, fmt.Errorf("telemetry clean run: %w", err)
		}
		if err := row("clean", tr, reg); err != nil {
			return Table{}, err
		}
	}

	// Hardened run under fault injection.
	{
		m, err := buildMachine(mix, cfg.Seed)
		if err != nil {
			return Table{}, err
		}
		plan := faults.Plan{Seed: cfg.Seed, Transient: 0.15, Outlier: 0.15, PartialActuation: 0.05}
		tr, reg := telemetry.NewTracer(), telemetry.NewRegistry()
		obs, err := faults.Wrap(m, plan)
		if err != nil {
			return Table{}, err
		}
		ctrl := core.New(obs, core.Options{
			BO:         bo.Options{Seed: cfg.Seed, MaxIterations: iters},
			Resilience: core.Resilience{Enabled: true},
			Trace:      tr,
			Metrics:    reg,
		})
		if _, err := ctrl.Run(); err != nil {
			return Table{}, fmt.Errorf("telemetry faulted run: %w", err)
		}
		if err := row("faulted-hardened", tr, reg); err != nil {
			return Table{}, err
		}
	}

	// Cluster placement stream.
	{
		tr, reg := telemetry.NewTracer(), telemetry.NewRegistry()
		s := cluster.New(cluster.Options{
			Nodes: 3, Seed: cfg.Seed, ScreenIterations: 8,
			Trace: tr, Metrics: reg,
		})
		stream := []cluster.Request{
			{Workload: "memcached", Load: 0.2},
			{Workload: "swaptions"},
			{Workload: "img-dnn", Load: 0.2},
			{Workload: "memcached", Load: 0.2},
		}
		for _, req := range stream {
			if _, err := s.Place(req); err != nil {
				return Table{}, fmt.Errorf("telemetry cluster run: %w", err)
			}
		}
		if err := row("cluster", tr, reg); err != nil {
			return Table{}, err
		}
	}
	return t, nil
}
