package harness

import (
	"errors"
	"fmt"

	"clite/internal/bo"
	"clite/internal/core"
	"clite/internal/faults"
	"clite/internal/fleet"
	"clite/internal/obs"
	"clite/internal/server"
	"clite/internal/telemetry"
)

// SLOBurn sweeps the SLO observability plane (DESIGN.md §15) across
// fault rate × traffic shape, exercising both of the store's feeds in
// one scenario per row. The serving plane: a hardened CLITE run under
// observation-fault injection at the row's rate streams its window
// timeline into the store through a tracer tap, with every LC job
// registered as an SLO subject — faulted windows violate QoS, burn
// error budget, and trip the multi-window alert machine. The
// placement plane: a fleet under the row's traffic shape feeds the
// same store per-cell rollups at its epoch barrier. The row reports
// the budget consumed, the alerts fired, and the mean simulated time
// from a bad episode's first violation to its alert.
func SLOBurn(cfg Config) (Table, error) {
	t := Table{
		ID:    "sloburn",
		Title: "SLO burn-rate alerting: budget spend under faults × traffic shapes",
		Header: []string{
			"traffic", "fault rate", "windows", "bad", "consumed",
			"burn fast/slow", "alerts", "mean time-to-alert", "fleet placed",
		},
		Notes: "Each row taps one hardened faulted CLITE run (serving windows, per-job SLO subjects) and " +
			"one fleet run under the traffic shape (per-cell placement rollups) into a single SLO store. " +
			"Windows/bad/consumed/burn read the machine-wide window subject (budget 0.1, window 60 s); " +
			"alerts totals SLOBurnAlert and BudgetExhausted events across every subject; mean time-to-alert " +
			"is simulated seconds from an episode's first bad window to its alert. Deterministic per seed.",
	}
	mix := Mix{
		LC: []LCJob{{Name: "memcached", Load: 0.3}, {Name: "img-dnn", Load: 0.2}},
		BG: []string{"swaptions"},
	}
	nodes, cellNodes, shards := 256, 64, 4
	duration := 8.0
	rates := []float64{0, 0.10, 0.25}
	if cfg.Coarse {
		nodes, cellNodes, shards = 128, 32, 2
		duration = 4
		rates = []float64{0, 0.25}
	}
	shapes := []fleet.Shape{fleet.ShapeDiurnal, fleet.ShapeBursty, fleet.ShapeHeavyTail}
	for _, shape := range shapes {
		for _, rate := range rates {
			store := obs.NewStore(obs.Options{})

			// Serving plane: hardened controller under observation
			// faults, tapped into the store.
			m, err := buildMachine(mix, cfg.Seed)
			if err != nil {
				return Table{}, err
			}
			for _, jt := range m.QoSTargets() {
				store.RegisterJob(jt.Job, jt.Name, obs.SLO{Target: jt.Target})
			}
			tr := telemetry.NewTracer()
			tr.SetTap(store.Sink())
			var target server.Observer = m
			copts := core.Options{BO: bo.Options{Seed: cfg.Seed}, Trace: tr}
			if rate > 0 {
				target, err = faults.Wrap(m, faults.Plan{
					Seed: cfg.Seed, Transient: rate, Outlier: rate, PartialActuation: rate / 2,
				})
				if err != nil {
					return Table{}, err
				}
				copts.Resilience = core.Resilience{Enabled: true}
			}
			if _, err := core.New(target, copts).Run(); err != nil &&
				!errors.Is(err, server.ErrObservationFailed) && !errors.Is(err, server.ErrNodeFailed) {
				return Table{}, fmt.Errorf("sloburn %s/%.2f: %w", shape, rate, err)
			}

			// Placement plane: a fleet under the traffic shape feeds the
			// same store at its epoch barrier.
			sum, err := runFleet(fleet.Options{
				Nodes: nodes, CellNodes: cellNodes, Shards: shards,
				Seed: cfg.Seed, Duration: duration,
				Traffic: fleet.Traffic{Shape: shape},
				Obs:     store,
			})
			if err != nil {
				return Table{}, fmt.Errorf("sloburn %s/%.2f fleet: %w", shape, rate, err)
			}

			w := store.WindowsStatus()
			tta := "-"
			if mtta := meanTimeToAlert(store); mtta > 0 {
				tta = fmt.Sprintf("%.1fs", mtta)
			}
			t.Rows = append(t.Rows, []string{
				string(shape),
				fmt.Sprintf("%.2f", rate),
				fmt.Sprintf("%d", w.Windows),
				fmt.Sprintf("%d", w.Violations),
				fmt.Sprintf("%.2f", w.BudgetConsumed),
				fmt.Sprintf("%.1f/%.1f", w.BurnFast, w.BurnSlow),
				fmt.Sprintf("%d", store.AlertCount()),
				tta,
				fmt.Sprintf("%d", sum.Placements),
			})
		}
	}
	return t, nil
}

// meanTimeToAlert averages the per-subject mean time-to-alert over
// the subjects that alerted (jobs and the machine-wide window
// stream).
func meanTimeToAlert(store *obs.Store) float64 {
	var sum float64
	var n int
	for _, js := range store.JobStatuses() {
		if js.MeanTimeToAlert > 0 {
			sum += js.MeanTimeToAlert
			n++
		}
	}
	if w := store.WindowsStatus(); w.MeanTimeToAlert > 0 {
		sum += w.MeanTimeToAlert
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
