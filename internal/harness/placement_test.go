package harness

import (
	"strconv"
	"testing"
)

// TestPlacementLayersMonotonicallyRemoveWork checks the experiment's
// whole point: each pipeline layer must strictly reduce the screening
// work the same request stream costs.
func TestPlacementLayersMonotonicallyRemoveWork(t *testing.T) {
	tbl, err := Placement(Config{Seed: 1, Coarse: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("got %d rows, want cold/prefilter/full", len(tbl.Rows))
	}
	screens := make([]int, 3)
	for i, row := range tbl.Rows {
		n, err := strconv.Atoi(row[3])
		if err != nil {
			t.Fatalf("row %d screens %q: %v", i, row[3], err)
		}
		screens[i] = n
	}
	if !(screens[0] > screens[1] && screens[1] >= screens[2]) {
		t.Errorf("screening work not decreasing across layers: %v", screens)
	}
	// The admitted/rejected split must not change: the layers remove
	// work, never placements.
	for col := 1; col <= 2; col++ {
		if tbl.Rows[0][col] != tbl.Rows[1][col] || tbl.Rows[1][col] != tbl.Rows[2][col] {
			t.Errorf("column %d diverges across pipelines: %v / %v / %v",
				col, tbl.Rows[0][col], tbl.Rows[1][col], tbl.Rows[2][col])
		}
	}
	if tbl.Rows[2][5] == "-" {
		t.Error("full pipeline reported no cache lookups")
	}
}
