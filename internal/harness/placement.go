package harness

import (
	"errors"
	"fmt"

	"clite/internal/cluster"
)

// Placement measures the cluster placement pipeline layer by layer: a
// repetitive request stream — the warehouse case, where the same few
// job shapes arrive over and over — is driven through the scheduler
// with the throughput layers enabled one at a time, and the table
// reports how much BO screening work each layer removes. The "cold"
// row is the pre-cache admission path (every candidate pays a full
// screening run); "prefilter" adds the analytical admission bound;
// "full" adds the co-location profile cache and concurrent screening.
// Placement decisions are identical across rows' worker counts by
// construction (DESIGN.md §9); what changes is the work ledger.
func Placement(cfg Config) (Table, error) {
	t := Table{
		ID:    "placement",
		Title: "Cluster placement pipeline: screening work per admitted job",
		Header: []string{
			"pipeline", "placed", "rejected", "screens",
			"BO iters/job", "cache hit rate", "prefilter rejects", "verify windows",
		},
		Notes: "BO iters/job counts evaluated configurations (bootstrap included) per placement decision; " +
			"the cache hit rate is over exact profile-cache lookups.",
	}
	nodes, passes := 6, 2
	stream := []cluster.Request{
		{Workload: "memcached", Load: 0.2},
		{Workload: "swaptions"},
		{Workload: "img-dnn", Load: 0.2},
		{Workload: "memcached", Load: 0.2},
		{Workload: "swaptions"},
		{Workload: "memcached", Load: 1.4}, // hopeless: the pre-filter's showcase
		{Workload: "img-dnn", Load: 0.2},
		{Workload: "swaptions"},
	}
	if cfg.Coarse {
		nodes, passes = 4, 1
		stream = stream[:6]
	}
	rows := []struct {
		name string
		opts cluster.Options
	}{
		{"cold", cluster.Options{
			Nodes: nodes, Seed: cfg.Seed, ScreenIterations: 8,
			ScreenWorkers: 1, DisableProfileCache: true, DisablePrefilter: true,
		}},
		{"prefilter", cluster.Options{
			Nodes: nodes, Seed: cfg.Seed, ScreenIterations: 8,
			ScreenWorkers: 1, DisableProfileCache: true,
		}},
		{"full", cluster.Options{
			Nodes: nodes, Seed: cfg.Seed, ScreenIterations: 8,
		}},
	}
	for _, row := range rows {
		s := cluster.New(row.opts)
		for p := 0; p < passes; p++ {
			for _, req := range stream {
				if _, err := s.Place(req); err != nil && !errors.Is(err, cluster.ErrUnplaceable) {
					return Table{}, fmt.Errorf("placement %s: %w", row.name, err)
				}
			}
		}
		st := s.Stats()
		total := st.Placements + st.Rejections
		perJob := 0.0
		if total > 0 {
			perJob = float64(st.BOIterations) / float64(total)
		}
		hitRate := "-"
		if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
			hitRate = fmt.Sprintf("%.0f%%", 100*float64(st.CacheHits)/float64(lookups))
		}
		t.Rows = append(t.Rows, []string{
			row.name,
			fmt.Sprintf("%d", st.Placements),
			fmt.Sprintf("%d", st.Rejections),
			fmt.Sprintf("%d", st.Screens),
			fmt.Sprintf("%.1f", perJob),
			hitRate,
			fmt.Sprintf("%d", st.PrefilterRejects),
			fmt.Sprintf("%d", st.VerifyWindows),
		})
	}
	return t, nil
}
