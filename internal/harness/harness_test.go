package harness

import (
	"strings"
	"testing"

	"clite/internal/policies"
)

func TestTableRendering(t *testing.T) {
	tab := Table{
		ID:     "t",
		Title:  "demo",
		Header: []string{"a", "long-header", "c"},
		Rows: [][]string{
			{"1", "2", "3"},
			{"wide-cell", "x", "y"},
		},
		Notes: "hello",
	}
	out := tab.String()
	for _, want := range []string{"== t: demo ==", "long-header", "wide-cell", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	// Columns align: every row line must be at least as wide as the
	// first column's widest cell.
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[3], "1        ") {
		t.Errorf("column not padded: %q", lines[3])
	}
}

func TestFormattingHelpers(t *testing.T) {
	if got := pct(0.426); got != "43%" {
		t.Errorf("pct = %q", got)
	}
	if got := f3(0.12345); got != "0.123" {
		t.Errorf("f3 = %q", got)
	}
	if got := ms(0.00402); got != "4.02ms" {
		t.Errorf("ms = %q", got)
	}
}

func TestMixDescribe(t *testing.T) {
	mix := Mix{
		LC: []LCJob{{Name: "memcached", Load: 0.3}, {Name: "xapian", Load: 0.1}},
		BG: []string{"canneal", "swaptions"},
	}
	if got := mix.Describe(); got != "memcached@30+xapian@10/canneal+swaptions" {
		t.Errorf("Describe = %q", got)
	}
}

func TestFaultSweepReportsRetention(t *testing.T) {
	tab, err := FaultSweep(Config{Seed: 1, Coarse: true})
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "faultsweep" || len(tab.Rows) != 3 {
		t.Fatalf("unexpected table: %+v", tab)
	}
	// Rate 0 is the unhardened baseline: full retention, zero retries,
	// zero fallbacks.
	base := tab.Rows[0]
	if base[0] != "0%" || base[1] != "100%" || base[3] != "0.0" || base[4] != "0" {
		t.Errorf("rate-0 row should be a clean baseline: %v", base)
	}
	// The hardened controller must hold full retention through the 10%
	// fault mix (the acceptance criterion) and report its repair work.
	faulted := tab.Rows[1]
	if faulted[1] != "100%" {
		t.Errorf("10%% fault mix should retain QoS on the default mixes: %v", faulted)
	}
	if faulted[3] == "0.0" {
		t.Errorf("faulted sweep should show retries: %v", faulted)
	}
}

func TestFleetScaleDecisionsShardInvariant(t *testing.T) {
	tab, err := FleetScale(Config{Seed: 5, Coarse: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("fleetscale has %d rows, want 4", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if got := row[len(row)-1]; got != "identical" {
			t.Errorf("traffic %s: decision logs diverged across shard counts: %v", row[0], row)
		}
		if row[1] == "0" {
			t.Errorf("traffic %s generated no arrivals: %v", row[0], row)
		}
	}
}

func TestRegistryCoversEveryPaperExperiment(t *testing.T) {
	want := []string{
		"table1", "table2", "table3",
		"fig6", "fig7", "fig8", "fig9a", "fig9b", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15a", "fig15b", "fig16", "ablation", "doe",
		"faultsweep", "placement", "fleetscale", "sloburn", "telemetry", "failover",
	}
	exps := Experiments()
	if len(exps) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(exps), len(want))
	}
	for i, id := range want {
		if exps[i].ID != id {
			t.Errorf("experiment %d = %s, want %s (paper order)", i, exps[i].ID, id)
		}
		if exps[i].Brief == "" || exps[i].Run == nil {
			t.Errorf("experiment %s incomplete", id)
		}
	}
	if _, err := Lookup("fig7"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown lookup should fail")
	}
}

func TestStaticTables(t *testing.T) {
	t1 := Table1()
	if len(t1.Rows) != 5 {
		t.Errorf("Table1 rows = %d, want 5 resources", len(t1.Rows))
	}
	t2 := Table2()
	if len(t2.Rows) != 10 {
		t.Errorf("Table2 rows = %d, want 10 components", len(t2.Rows))
	}
	t3 := Table3()
	if len(t3.Rows) != 11 {
		t.Errorf("Table3 rows = %d, want 11 workloads", len(t3.Rows))
	}
}

func TestFig6ShapesAndKnees(t *testing.T) {
	tab, err := Fig6(Config{Seed: 1, Coarse: true})
	if err != nil {
		t.Fatal(err)
	}
	knees := 0
	for _, row := range tab.Rows {
		if row[1] == "knee" {
			knees++
		}
	}
	if knees != 5 {
		t.Errorf("Fig6 should mark 5 knees, found %d", knees)
	}
}

func TestBuildMachineRejectsUnknownJobs(t *testing.T) {
	if _, err := buildMachine(Mix{LC: []LCJob{{Name: "nope", Load: 0.1}}}, 1); err == nil {
		t.Error("expected error for unknown LC workload")
	}
	if _, err := buildMachine(Mix{BG: []string{"nope"}}, 1); err == nil {
		t.Error("expected error for unknown BG workload")
	}
}

func TestMaxSupportedLoadLadder(t *testing.T) {
	// The oracle supports a light memcached probe next to light jobs,
	// and reports 0 when the probe is hopeless even at the smallest
	// candidate load.
	base := Mix{LC: []LCJob{{Name: "img-dnn", Load: 0.1}}}
	got, err := maxSupportedLoad(policies.Oracle{}, base, "memcached", []float64{0.4, 0.2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got == 0 {
		t.Error("light mix should support some memcached load")
	}
	heavy := Mix{LC: []LCJob{
		{Name: "img-dnn", Load: 0.9},
		{Name: "masstree", Load: 0.9},
		{Name: "specjbb", Load: 0.9},
	}}
	got, err = maxSupportedLoad(policies.Oracle{}, heavy, "memcached", []float64{1.0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("three 90%% jobs + memcached@100%% should be impossible, got %v", got)
	}
}

func TestRatioOrZero(t *testing.T) {
	if got := ratioOrZero(1, 0); got != 0 {
		t.Errorf("zero denominator should yield 0, got %v", got)
	}
	if got := ratioOrZero(1, 2); got != 0.5 {
		t.Errorf("ratio = %v", got)
	}
}
