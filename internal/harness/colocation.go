package harness

import (
	"fmt"

	"clite/internal/bo"
	"clite/internal/policies"
)

// heatmapLoads returns the grid of loads for the two fixed LC jobs.
func heatmapLoads(cfg Config) []float64 {
	if cfg.Coarse {
		return []float64{0.1, 0.5, 0.9}
	}
	return []float64{0.1, 0.3, 0.5, 0.7, 0.9}
}

// probeCandidates is the descending ladder of loads tried for the
// probe job (memcached) in Fig. 7/8.
func probeCandidates(cfg Config) []float64 {
	if cfg.Coarse {
		return []float64{1.0, 0.6, 0.3, 0.1}
	}
	return []float64{1.0, 0.8, 0.6, 0.4, 0.2, 0.1}
}

// colocationHeatmap runs one policy over the masstree × img-dnn load
// grid and reports the maximum supported memcached load per cell.
func colocationHeatmap(p policies.Policy, cfg Config, bg []string) (Table, error) {
	loads := heatmapLoads(cfg)
	t := Table{
		Header: []string{"img-dnn \\ masstree"},
	}
	for _, l := range loads {
		t.Header = append(t.Header, pct(l))
	}
	for _, imgLoad := range loads {
		row := []string{pct(imgLoad)}
		for _, mtLoad := range loads {
			base := Mix{
				LC: []LCJob{{Name: "masstree", Load: mtLoad}, {Name: "img-dnn", Load: imgLoad}},
				BG: bg,
			}
			maxLoad, err := maxSupportedLoad(p, base, "memcached", probeCandidates(cfg), cfg.Seed)
			if err != nil {
				return Table{}, err
			}
			cell := "X"
			if maxLoad > 0 {
				cell = pct(maxLoad)
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig7 reproduces the three-LC co-location heatmaps: the maximum
// memcached load supportable next to masstree and img-dnn at the given
// loads, per policy ("X" = no load co-locatable).
func Fig7(cfg Config) ([]Table, error) {
	pols := []policies.Policy{
		policies.Heracles{},
		policies.PARTIES{},
		policies.CLITE{BO: bo.Options{Seed: cfg.Seed}},
		policies.Oracle{},
	}
	var out []Table
	for _, p := range pols {
		t, err := colocationHeatmap(p, cfg, nil)
		if err != nil {
			return nil, err
		}
		t.ID = "fig7"
		t.Title = fmt.Sprintf("max memcached load co-located with masstree × img-dnn — %s", p.Name())
		out = append(out, t)
	}
	return out, nil
}

// Fig8 is Fig7 with a blackscholes BG job added to the mix.
func Fig8(cfg Config) ([]Table, error) {
	pols := []policies.Policy{
		policies.PARTIES{},
		policies.CLITE{BO: bo.Options{Seed: cfg.Seed}},
		policies.Oracle{},
	}
	var out []Table
	for _, p := range pols {
		t, err := colocationHeatmap(p, cfg, []string{"blackscholes"})
		if err != nil {
			return nil, err
		}
		t.ID = "fig8"
		t.Title = fmt.Sprintf("max memcached load with masstree × img-dnn + blackscholes BG — %s", p.Name())
		out = append(out, t)
	}
	return out, nil
}
