package harness

import (
	"fmt"
	"testing"
)

// TestRunAllParallelMatchesSequential runs a slice of the registry
// with 1 and 4 workers and demands the rendered tables be identical:
// every experiment seeds its own RNGs and machines from cfg.Seed, so
// sharing a process with other experiments must not change a digit.
func TestRunAllParallelMatchesSequential(t *testing.T) {
	ids := []string{"table1", "table2", "table3", "fig6", "doe"}
	var exps []Experiment
	for _, id := range ids {
		e, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	cfg := Config{Seed: 3, Coarse: true}
	render := func(results []ExperimentResult) []string {
		var out []string
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("%s: %v", r.ID, r.Err)
			}
			s := r.ID
			for _, tb := range r.Tables {
				s += "\n" + fmt.Sprint(tb)
			}
			out = append(out, s)
		}
		return out
	}
	seq := render(RunAll(exps, cfg, 1))
	par := render(RunAll(exps, cfg, 4))
	if len(seq) != len(par) {
		t.Fatalf("result counts diverged: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("experiment %s output diverged under parallel RunAll", ids[i])
		}
	}
}
