package harness

import (
	"fmt"

	"clite/internal/bo"
	"clite/internal/policies"
	"clite/internal/resource"
	"clite/internal/server"
	"clite/internal/stats"
)

// Config scales the experiments. Coarse mode shrinks grids and repeat
// counts so benchmarks finish quickly; full mode matches the paper's
// resolutions more closely.
type Config struct {
	// Seed drives every stochastic component; the same seed
	// regenerates identical tables.
	Seed int64
	// Coarse selects the reduced grids (benchmark scale).
	Coarse bool
}

// LCJob specifies one latency-critical job in a mix.
type LCJob struct {
	Name string
	Load float64 // fraction of calibrated max load
}

// Mix is a co-location scenario: LC jobs at loads plus BG jobs.
type Mix struct {
	LC []LCJob
	BG []string
}

// Describe renders the mix compactly, e.g. "memcached@20+img-dnn@10/streamcluster".
func (m Mix) Describe() string {
	s := ""
	for i, j := range m.LC {
		if i > 0 {
			s += "+"
		}
		s += fmt.Sprintf("%s@%.0f", j.Name, j.Load*100)
	}
	for i, b := range m.BG {
		if i == 0 {
			s += "/"
		} else {
			s += "+"
		}
		s += b
	}
	return s
}

// buildMachine places the mix on a fresh simulated machine.
func buildMachine(mix Mix, seed int64) (*server.Machine, error) {
	m := server.New(resource.Default(), server.DefaultSpec(), seed)
	for _, j := range mix.LC {
		if _, err := m.AddLC(j.Name, j.Load); err != nil {
			return nil, err
		}
	}
	for _, b := range mix.BG {
		if _, err := m.AddBG(b); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// runPolicy executes one policy on a fresh machine hosting the mix.
func runPolicy(p policies.Policy, mix Mix, seed int64) (policies.Result, error) {
	m, err := buildMachine(mix, seed)
	if err != nil {
		return policies.Result{}, err
	}
	return p.Run(m)
}

// onlinePolicies returns the online schemes in the paper's comparison
// order, seeded deterministically.
func onlinePolicies(seed int64) []policies.Policy {
	return []policies.Policy{
		policies.CLITE{BO: bo.Options{Seed: seed}},
		policies.PARTIES{},
		policies.RandPlus{Seed: seed},
		policies.Genetic{Seed: seed},
	}
}

// maxSupportedLoad finds the highest candidate load (descending order)
// of the probe LC job at which the policy still meets every QoS
// target; 0 means the probe cannot be co-located at all (the paper's
// "X" cells in Fig. 7/8).
func maxSupportedLoad(p policies.Policy, baseMix Mix, probe string, candidates []float64, seed int64) (float64, error) {
	for _, load := range candidates {
		mix := Mix{LC: append(append([]LCJob(nil), baseMix.LC...), LCJob{Name: probe, Load: load}), BG: baseMix.BG}
		res, err := runPolicy(p, mix, seed)
		if err != nil {
			return 0, err
		}
		if res.QoSMeetable {
			return load, nil
		}
	}
	return 0, nil
}

// meanLCPerf averages the LC jobs' isolation-normalized performance in
// an observation (the Fig. 10 metric).
func meanLCPerf(m *server.Machine, obs server.Observation) float64 {
	var vals []float64
	for i, job := range m.Jobs() {
		if job.IsLC() {
			vals = append(vals, stats.Clamp(obs.NormPerf[i], 0, 1.5))
		}
	}
	return stats.Mean(vals)
}

// meanBGPerf averages the BG jobs' isolation-normalized performance
// (the Fig. 12–14 metric).
func meanBGPerf(m *server.Machine, obs server.Observation) float64 {
	var vals []float64
	for i, job := range m.Jobs() {
		if !job.IsLC() {
			vals = append(vals, stats.Clamp(obs.NormPerf[i], 0, 1.5))
		}
	}
	return stats.Mean(vals)
}

// ratioOrZero guards normalization against a zero denominator.
func ratioOrZero(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return num / den
}
