package harness

import (
	"fmt"

	"clite/internal/isolation"
	"clite/internal/qos"
	"clite/internal/resource"
	"clite/internal/server"
	"clite/internal/workload"
)

// Table1 reproduces the paper's Table 1: shared resources, allocation
// methods and isolation tools.
func Table1() Table {
	t := Table{
		ID:     "table1",
		Title:  "Shared resources and isolation tools",
		Header: []string{"Shared Resource", "Allocation Method", "Isolation Tool", "Units"},
	}
	for _, spec := range resource.Default() {
		t.Rows = append(t.Rows, []string{
			spec.Kind.String(),
			spec.Kind.AllocationMethod(),
			spec.Kind.IsolationTool(),
			fmt.Sprintf("%d × %.2f %s", spec.Units, spec.UnitValue, spec.UnitLabel),
		})
	}
	t.Notes = "simulated actuators; see internal/isolation — " +
		"rendered tool settings pass the disjointness audit: " + firstLine(isolation.Table1(resource.Default()))
	return t
}

func firstLine(s string) string {
	for i, c := range s {
		if c == '\n' {
			return s[:i]
		}
	}
	return s
}

// Table2 reproduces the paper's Table 2: the testbed configuration.
func Table2() Table {
	spec := server.DefaultSpec()
	t := Table{
		ID:     "table2",
		Title:  "Experimental testbed configuration (simulated)",
		Header: []string{"Component", "Specification"},
	}
	rows := [][2]string{
		{"CPU Model", spec.CPUModel},
		{"Number of Sockets", fmt.Sprintf("%d", spec.Sockets)},
		{"Processor Speed", fmt.Sprintf("%.2fGHz", spec.SpeedGHz)},
		{"Logical Processor Cores", fmt.Sprintf("%d Cores (%d physical cores)", spec.LogicalCores, spec.PhysicalCores)},
		{"Private L1 & L2 Cache Size", fmt.Sprintf("%dKB and %dKB", spec.L1KB, spec.L2KB)},
		{"Shared L3 Cache Size", fmt.Sprintf("%d KB (%d-way set associative)", spec.L3KB, spec.L3Ways)},
		{"Memory Capacity", fmt.Sprintf("%d GB", spec.MemoryGB)},
		{"Operating System", spec.OS},
		{"SSD Capacity", fmt.Sprintf("%d GB", spec.SSDGB)},
		{"HDD Capacity", fmt.Sprintf("%d TB", spec.HDDTB)},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r[0], r[1]})
	}
	return t
}

// Table3 reproduces the paper's Table 3: the LC and BG workloads.
func Table3() Table {
	t := Table{
		ID:     "table3",
		Title:  "LC and BG workloads driving the evaluation",
		Header: []string{"Workload", "Class", "Description"},
	}
	for _, p := range workload.All() {
		name := p.Name
		if p.Class == workload.Background {
			name = fmt.Sprintf("%s (%s)", p.Name, workload.Acronym(p.Name))
		}
		t.Rows = append(t.Rows, []string{name, p.Class.String(), p.Desc})
	}
	return t
}

// Fig6 reproduces the isolation QPS-vs-p95 sweeps and the knee-derived
// QoS targets (Fig. 6 methodology).
func Fig6(cfg Config) (Table, error) {
	t := Table{
		ID:     "fig6",
		Title:  "QPS vs p95 tail latency in isolation; QoS = knee",
		Header: []string{"workload", "load(frac of knee QPS)", "QPS", "p95", "at-knee"},
	}
	topo := resource.Default()
	points := 12
	if cfg.Coarse {
		points = 6
	}
	for _, p := range workload.LC() {
		cal, err := qos.Calibrate(p, topo)
		if err != nil {
			return Table{}, err
		}
		stride := len(cal.Curve) / points
		if stride < 1 {
			stride = 1
		}
		for i := 0; i < len(cal.Curve); i += stride {
			pt := cal.Curve[i]
			knee := ""
			if pt.QPS == cal.MaxQPS {
				knee = "<-- knee (QoS target)"
			}
			t.Rows = append(t.Rows, []string{
				p.Name,
				fmt.Sprintf("%.2f", pt.QPS/cal.MaxQPS),
				fmt.Sprintf("%.0f", pt.QPS),
				ms(pt.P95),
				knee,
			})
		}
		t.Rows = append(t.Rows, []string{
			p.Name, "knee", fmt.Sprintf("%.0f", cal.MaxQPS), ms(cal.QoSTarget), "QoS target / max load",
		})
	}
	t.Notes = "loads elsewhere in the evaluation are fractions of each workload's knee QPS"
	return t, nil
}
