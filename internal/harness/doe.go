package harness

import (
	"fmt"

	"clite/internal/bo"
	"clite/internal/doe"
	"clite/internal/policies"
)

// DOE reproduces the paper's Sec. 5.2 comparison with design-space-
// exploration methods: a two-level fractional factorial design and a
// response-surface method against CLITE, PARTIES and GENETIC on the
// same mix. The paper's verdict — the static designs need 2–8× the
// samples and still produce lower-quality partitions, because the
// objective surface changes with every job mix — is what the sample
// and score columns show.
func DOE(cfg Config) (Table, error) {
	mix := Mix{
		LC: []LCJob{{Name: "memcached", Load: 0.3}, {Name: "xapian", Load: 0.1}},
		BG: []string{"streamcluster"},
	}
	t := Table{
		ID:     "doe",
		Title:  "design-space exploration methods vs adaptive search on " + mix.Describe(),
		Header: []string{"technique", "samples", "QoS met", "score", "BG perf"},
	}
	pols := []policies.Policy{
		policies.CLITE{BO: bo.Options{Seed: cfg.Seed}},
		policies.PARTIES{},
		policies.Genetic{Seed: cfg.Seed},
		doe.FFD{Seed: cfg.Seed},
		doe.RSM{Seed: cfg.Seed},
	}
	for _, p := range pols {
		res, err := runPolicy(p, mix, cfg.Seed)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			p.Name(), fmt.Sprintf("%d", res.SamplesUsed),
			fmt.Sprintf("%v", res.QoSMeetable), f3(res.BestScore),
			pct(res.BestObs.NormPerf[2]),
		})
	}
	t.Notes = "paper Sec. 5.2: FFD/RSM need 2–8× the samples of the adaptive techniques and " +
		"could not find QoS-meeting partitions for the harder mixes; their fitted models do not " +
		"transfer across job mixes"
	return t, nil
}
