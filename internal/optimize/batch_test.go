package optimize

import (
	"math"
	"testing"

	"clite/internal/resource"
	"clite/internal/stats"
)

func quadProblem(seed int64) Problem {
	topo := resource.Small()
	nJobs := 2
	target := resource.EqualSplit(topo, nJobs).Vector()
	objective := func(x []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - target[i]
			s -= d * d
		}
		return s
	}
	return Problem{
		Topo: topo, NJobs: nJobs,
		Objective: objective,
		FrozenJob: -1,
		RNG:       stats.NewRNG(seed),
		Workers:   1,
	}
}

// TestMaximizeBatchObjectiveIdentical pins the batched-gradient path
// to the scalar one: with a BatchObjective that scores rows through
// the same function, every returned vector must be byte-identical.
func TestMaximizeBatchObjectiveIdentical(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		ref := Maximize(quadProblem(seed))

		p := quadProblem(seed)
		obj := p.Objective
		p.BatchObjective = func(xs [][]float64, out []float64) {
			for i, x := range xs {
				out[i] = obj(x)
			}
		}
		got := Maximize(p)
		if len(got) != len(ref) {
			t.Fatalf("seed %d: length %d vs %d", seed, len(got), len(ref))
		}
		for i := range ref {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("seed %d coord %d: batched %v vs scalar %v", seed, i, got[i], ref[i])
			}
		}
	}
}

// TestMaximizeScratchIdenticalAndReused pins the scratch-arena path to
// the allocating one and verifies the arena actually gets reused.
func TestMaximizeScratchIdenticalAndReused(t *testing.T) {
	var scratch Scratch
	for seed := int64(1); seed <= 5; seed++ {
		ref := Maximize(quadProblem(seed))
		p := quadProblem(seed)
		p.Scratch = &scratch
		got := Maximize(p)
		for i := range ref {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("seed %d coord %d: scratch %v vs fresh %v", seed, i, got[i], ref[i])
			}
		}
	}
	// Steady state: repeated maximizations through one scratch must not
	// allocate (the RNG is recreated outside the measured closure).
	// sync.Pool sheds items under the race detector, so the count is
	// only meaningful in a normal build.
	if raceEnabled {
		t.Skip("allocation counts are nondeterministic under -race (sync.Pool shedding)")
	}
	probs := make([]Problem, 4)
	for i := range probs {
		probs[i] = quadProblem(int64(i + 10))
		probs[i].Scratch = &scratch
	}
	Maximize(probs[0])
	allocs := testing.AllocsPerRun(5, func() {
		for i := range probs {
			probs[i].RNG = stats.NewRNG(int64(i + 10)) //lint:allow detrand fixed seeds; reset per run so each measured pass draws the same stream
			Maximize(probs[i])
		}
	})
	// Per call the fixed costs are the RNG and the fan-out closure
	// capture (~5 allocs); the per-start and per-probe storage — the
	// part that used to scale with the search — must all be
	// arena-backed. 4 calls ⇒ ~20; anything near the old ~60/call
	// means the arena regressed.
	if allocs > 24 {
		t.Fatalf("steady-state Maximize allocated %.1f times per run (want ≤ 24 fixed costs)", allocs)
	}
}
